(* hbbp — the HBBP instruction-mix tool over the simulated system.

   Mirrors the paper's tool structure: a collector (dual-LBR PMU
   session) and an analyzer (BBEC reconstruction + pivot-table mixes),
   wrapped in one CLI:

     hbbp list
     hbbp profile fitter-sse
     hbbp mix test40 --by mnemonic --method hbbp --top 25
     hbbp mix hello --by symbol --rings
     hbbp bias fitter-sse
     hbbp train
     hbbp capabilities
*)

open Cmdliner
open Hbbp_core
open Hbbp_analyzer
module Telemetry = Hbbp_telemetry.Telemetry

(* One-line diagnostic on stderr + nonzero exit; never a raw backtrace. *)
let die fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "hbbp: %s@." msg;
      exit 1)
    fmt

let find_workload name =
  match Hbbp_workloads.Registry.find name with
  | w -> w
  | exception Invalid_argument msg -> die "%s" msg

(* ---- graceful shutdown --------------------------------------------- *)

(* SIGINT/SIGTERM latch a flag; resumable commands poll it at safe
   points (shard boundaries, archive boundaries), durably publish their
   progress (manifest / checkpoint) and exit with the conventional
   128+signal status.  The handlers only set the flag — all real work
   happens on the main path, so no state is torn mid-write. *)
let stop_signal = Atomic.make 0
let should_stop () = Atomic.get stop_signal <> 0

let install_signal_handlers () =
  let arm s =
    try ignore (Sys.signal s (Sys.Signal_handle (Atomic.set stop_signal)))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  arm Sys.sigint;
  arm Sys.sigterm

(* Flush telemetry (the [with_telemetry] finalizer never runs once we
   [exit]) and leave with the typed shutdown status. *)
let exit_interrupted ~hint =
  Telemetry.finalize Format.std_formatter;
  Format.eprintf "hbbp: interrupted; progress saved — %s@." hint;
  let s = Atomic.get stop_signal in
  exit (if s = Sys.sigterm then 143 else 130)

let profile_of name = Pipeline.run (find_workload name)

(* ---- telemetry flags ------------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run to $(docv); \
           load it in Perfetto (ui.perfetto.dev) or chrome://tracing. \
           Defaults to $(b,HBBP_TRACE) when set.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", `Json); ("table", `Table) ])) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "After the run, print the metrics-registry snapshot as $(b,json) \
           or $(b,table). Defaults to $(b,HBBP_METRICS) when set.")

let metrics_stream_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-stream" ] ~docv:"FILE"
        ~doc:
          "While the run executes, append full metric-registry snapshots \
           to $(docv) as JSONL (one object per line with a monotonic \
           $(i,seq)), so long runs are observable before they finish. \
           Defaults to $(b,HBBP_METRICS_STREAM) when set.")

(* Arm telemetry before the work, flush it after (also on [die]/raise:
   [exit] does not run the finalizer, which is fine — a failed run has
   nothing worth flushing). *)
let with_telemetry trace metrics stream f =
  Telemetry.configure ?trace ?metrics ?metrics_stream:stream ();
  let v = f () in
  Telemetry.finalize Format.std_formatter;
  v

(* ---- fault injection ------------------------------------------------ *)

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Arm the deterministic fault-injection plan $(docv), e.g. \
           $(b,seed=7,pmu.drop=0.05,arch.flips=3) (keys: seed, pmu.drop, \
           pmu.burst_every, pmu.burst_len, pmu.skid, pmu.jitter, \
           lbr.truncate, lbr.stuck, lbr.misrotate, rec.drop_comm, \
           rec.drop_mmap, rec.drop_sample, rec.reorder, arch.flips, \
           arch.truncate). Defaults to $(b,HBBP_FAULTS) when set; faults \
           stay disarmed otherwise.")

(* Arm the plan around the work, always disarm, and surface what was
   actually injected: a stderr tally, plus faults.* counters when the
   metrics registry is on (added here, not in lib/faults, so the fault
   library stays dependency-free). *)
let with_faults spec f =
  let spec =
    match spec with Some _ -> spec | None -> Sys.getenv_opt "HBBP_FAULTS"
  in
  match spec with
  | None -> f ()
  | Some spec ->
      let plan =
        match Hbbp_faults.Fault_plan.of_string spec with
        | Ok plan -> plan
        | Error msg -> die "--faults: %s" msg
      in
      Hbbp_faults.Faults.reset_tally ();
      Hbbp_faults.Faults.arm plan;
      Fun.protect ~finally:Hbbp_faults.Faults.disarm @@ fun () ->
      let v = f () in
      let tally = Hbbp_faults.Faults.tally () in
      if Hbbp_telemetry.Metrics.enabled () then
        List.iter
          (fun (k, n) ->
            Hbbp_telemetry.Metrics.add
              (Hbbp_telemetry.Metrics.counter ("faults." ^ k))
              n)
          tally;
      if tally <> [] then begin
        Format.eprintf "hbbp: faults injected (plan %s):@."
          (Hbbp_faults.Fault_plan.to_string plan);
        List.iter
          (fun (k, n) -> Format.eprintf "  %-28s %8d@." k n)
          tally
      end;
      v

(* ---- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter print_endline Hbbp_workloads.Registry.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads")
    Term.(const run $ const ())

(* ---- profile ------------------------------------------------------- *)

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,hbbp list)).")

let workloads_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"WORKLOAD"
        ~doc:"Workload name(s) (see $(b,hbbp list)).")

(* [profile] accepts workloads both positionally and via --workload, so
   scripted invocations can spell them uniformly with other flags. *)
let workloads_pos_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name(s) (see $(b,hbbp list)).")

let workload_opt_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"Workload name(s); repeatable, merged with positional names.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains to fan independent workload runs over (default: \
           $(b,HBBP_JOBS) or the host's recommended domain count). \
           Results are identical for every N.")

let engine_conv =
  let parse s =
    match Hbbp_cpu.Machine.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.conv
    (parse, fun ppf e ->
       Format.pp_print_string ppf (Hbbp_cpu.Machine.engine_name e))

let engine_arg =
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,superblock) (chained block closures, \
           default), $(b,block) (per-block closures, dispatcher between \
           blocks) or $(b,legacy) (per-instruction loop).  Every engine \
           retires a bit-identical stream; the choice only affects \
           simulation speed.  Defaults to $(b,HBBP_ENGINE) when set.")

let config_with_engine engine =
  match engine with
  | None -> Pipeline.default_config
  | Some engine -> { Pipeline.default_config with Pipeline.engine }

let profile_cmd =
  let run positional named jobs engine faults trace metrics stream =
    let names = positional @ named in
    if names = [] then die "profile: no workload given (see 'hbbp list')";
    let ws = List.map find_workload names in
    with_telemetry trace metrics stream @@ fun () ->
    with_faults faults @@ fun () ->
    let profiles =
      Pipeline.run_many ?jobs ~config:(config_with_engine engine) ws
    in
    List.iter
      (fun (p : Pipeline.profile) ->
        Format.printf "%a@.@." Report.summary p;
        Report.method_comparison Format.std_formatter p;
        Format.printf "@.Top mnemonics (HBBP):@.";
        Pivot.render Format.std_formatter
          (Views.top_mnemonics 15 (Pipeline.full_mix_of p p.Pipeline.hbbp));
        Format.printf "@.Per-mnemonic errors vs instrumentation:@.";
        Report.error_table Format.std_formatter ~top:15 p p.Pipeline.hbbp)
      profiles
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile workload(s) end to end and report accuracy/overheads; \
          multiple workloads run in parallel (-j)")
    Term.(
      const run $ workloads_pos_arg $ workload_opt_arg $ jobs_arg $ engine_arg
      $ faults_arg $ trace_arg $ metrics_arg $ metrics_stream_arg)

(* ---- mix ----------------------------------------------------------- *)

let dimension_conv =
  let parse = function
    | "mnemonic" -> Ok Pivot.Mnem
    | "symbol" | "function" -> Ok Pivot.Symbol
    | "module" -> Ok Pivot.Image
    | "block" -> Ok Pivot.Block
    | "isa" -> Ok Pivot.Isa_set
    | "category" -> Ok Pivot.Category
    | "packing" -> Ok Pivot.Packing
    | "ring" -> Ok Pivot.Ring_level
    | s -> Error (`Msg (Printf.sprintf "unknown dimension %S" s))
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Pivot.dimension_to_string d))

let method_conv =
  let parse = function
    | "hbbp" -> Ok `Hbbp
    | "ebs" -> Ok `Ebs
    | "lbr" -> Ok `Lbr
    | "sde" | "reference" -> Ok `Sde
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  Arg.conv
    ( parse,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with `Hbbp -> "hbbp" | `Ebs -> "ebs" | `Lbr -> "lbr" | `Sde -> "sde") )

let mix_cmd =
  let by =
    Arg.(
      value
      & opt_all dimension_conv [ Pivot.Mnem ]
      & info [ "by" ] ~docv:"DIM"
          ~doc:
            "Pivot dimension(s): mnemonic, symbol, module, block, isa, \
             category, packing, ring. Repeatable.")
  in
  let method_ =
    Arg.(
      value
      & opt method_conv `Hbbp
      & info [ "method" ] ~docv:"METHOD" ~doc:"BBEC source: hbbp, ebs, lbr, sde.")
  in
  let top =
    Arg.(value & opt int 30 & info [ "top" ] ~docv:"N" ~doc:"Rows to print.")
  in
  let user_only =
    Arg.(
      value & flag
      & info [ "user-only" ] ~doc:"Restrict to ring-3 code (like PIN/SDE).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run name by method_ top user_only csv =
    let p = profile_of name in
    let bbec =
      match method_ with
      | `Hbbp -> p.Pipeline.hbbp
      | `Ebs -> p.Pipeline.ebs.Ebs_estimator.bbec
      | `Lbr -> p.Pipeline.lbr.Lbr_estimator.bbec
      | `Sde -> p.Pipeline.reference
    in
    let mix =
      if user_only then Pipeline.mix_of p bbec else Pipeline.full_mix_of p bbec
    in
    let table = Pivot.top top (Pivot.pivot ~dims:by mix) in
    if csv then print_string (Pivot.to_csv table)
    else Pivot.render Format.std_formatter table
  in
  Cmd.v
    (Cmd.info "mix" ~doc:"Print a pivot-table instruction mix")
    Term.(const run $ workload_arg $ by $ method_ $ top $ user_only $ csv)

(* ---- bias ---------------------------------------------------------- *)

let bias_cmd =
  let run name =
    let p = profile_of name in
    Format.printf "%d snapshots, %d flagged blocks@." p.Pipeline.bias.Bias.snapshots
      (List.length (Bias.flagged_blocks p.Pipeline.bias));
    Format.printf "%-12s %8s %8s %10s %10s %9s %8s@." "branch" "entry0" "deep"
      "e0 share" "deep share" "adjacent" "failed";
    List.iteri
      (fun k (s : Bias.branch_stat) ->
        if k < 20 then
          Format.printf "%#-12x %8d %8d %9.3f%% %9.3f%% %9d %8d@." s.src
            s.entry0_count s.deep_count (100.0 *. s.entry0_share)
            (100.0 *. s.deep_share) s.adjacent_streams s.failed_streams)
      p.Pipeline.bias.Bias.stats
  in
  Cmd.v
    (Cmd.info "bias" ~doc:"Show LBR entry[0] bias statistics per branch")
    Term.(const run $ workload_arg)

(* ---- train --------------------------------------------------------- *)

let train_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit graphviz instead of ASCII.")
  in
  let run dot jobs faults trace metrics stream =
    with_telemetry trace metrics stream @@ fun () ->
    with_faults faults @@ fun () ->
    let tree, dataset =
      Training.build ?jobs (Hbbp_workloads.Training_set.all ())
    in
    if dot then print_string (Hbbp_mltree.Render.dot dataset tree)
    else begin
      print_string (Hbbp_mltree.Render.ascii dataset tree);
      (match Training.learned_cutoff tree with
      | Some c -> Printf.printf "learned block-length cutoff: %.1f\n" c
      | None -> print_endline "root split not on block length");
      let imp =
        Hbbp_mltree.Cart.feature_importances tree
          ~n_features:(Array.length Feature.names)
      in
      Array.iteri
        (fun k v -> Printf.printf "importance %-20s %.3f\n" Feature.names.(k) v)
        imp
    end
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Run the HBBP criteria search on the training corpus (profiled \
          in parallel, -j)")
    Term.(const run $ dot $ jobs_arg $ faults_arg $ trace_arg $ metrics_arg $ metrics_stream_arg)

(* ---- collect / analyze --------------------------------------------- *)

let output_arg =
  Arg.(
    value
    & opt string "perf.hbbp"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Archive path.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Split each archive's record stream into $(docv) contiguous \
           shards ($(i,NAME.0ofN.hbbp) …), each a complete, independently \
           analyzable archive; pass them all to $(b,hbbp analyze) or \
           $(b,hbbp stats) to merge them back exactly.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Continue an interrupted run from its durable progress record \
           (collection manifest / analysis checkpoint) instead of \
           starting over; the final output is byte-identical to an \
           uninterrupted run.")

(* Kill-window widener for the chaos harness: a per-shard publication
   delay so an external SIGKILL reliably lands between shards. *)
let shard_delay () =
  match Sys.getenv_opt "HBBP_SHARD_DELAY" with
  | None -> 0.0
  | Some s -> ( match float_of_string_opt s with Some d -> d | None -> 0.0)

let collect_cmd =
  let run names output shards jobs engine faults resume trace metrics stream
      =
    if shards < 1 then die "collect: --shards must be at least 1";
    let ws = List.map find_workload names in
    install_signal_handlers ();
    with_telemetry trace metrics stream @@ fun () ->
    with_faults faults @@ fun () ->
    let single = match names with [ _ ] -> true | _ -> false in
    let delay = shard_delay () in
    if resume || delay > 0.0 then
      (* Resumable path: each workload re-collects deterministically and
         republishes only missing or torn shards, guided by the
         manifest.  Sequential — shard reuse accounting and the chaos
         kill window both want a single publication stream. *)
      List.iter2
        (fun name w ->
          let path = if single then output else name ^ ".hbbp" in
          match
            Recover.collect_sharded ~config:(config_with_engine engine)
              ~resume ~should_stop ~inter_shard_delay_s:delay ~shards ~path
              w
          with
          | paths, statuses ->
              List.iter2
                (fun p status ->
                  Format.printf "%s %s@."
                    (match status with
                    | Recover.Reused -> "reused"
                    | Recover.Written -> "wrote")
                    p)
                paths statuses
          | exception Recover.Interrupted ->
              exit_interrupted ~hint:"rerun with --resume")
        names ws
    else begin
      let archives =
        Pipeline.collect_many ?jobs ~config:(config_with_engine engine) ws
      in
      List.iter2
        (fun name (archive : Hbbp_collector.Perf_data.t) ->
          let path = if single then output else name ^ ".hbbp" in
          let paths =
            Hbbp_collector.Perf_data.save_sharded archive ~shards ~path
          in
          let n = List.length archive.Hbbp_collector.Perf_data.records in
          List.iteri
            (fun i p ->
              (* The i-th shard holds the records in [lo, hi). *)
              let lo = i * n / shards and hi = (i + 1) * n / shards in
              Format.printf
                "wrote %s: %d records, %d images, EBS/LBR periods %d/%d@." p
                (hi - lo)
                (List.length archive.Hbbp_collector.Perf_data.analysis_images)
                archive.Hbbp_collector.Perf_data.ebs_period
                archive.Hbbp_collector.Perf_data.lbr_period)
            paths)
        names archives
    end
  in
  Cmd.v
    (Cmd.info "collect"
       ~doc:
         "Run only the collection side (no instrumentation) and write \
          portable perf.data-style archives; with several workloads the \
          collections run in parallel (-j) and each archive lands in \
          $(i,WORKLOAD).hbbp; $(b,--shards) splits each record stream \
          over several archives. Shards are published atomically with a \
          sidecar manifest; an interrupted collection continues with \
          $(b,--resume), converging to byte-identical archives")
    Term.(
      const run $ workloads_arg $ output_arg $ shards_arg $ jobs_arg
      $ engine_arg $ faults_arg $ resume_arg $ trace_arg $ metrics_arg
      $ metrics_stream_arg)

let archives_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "Archive(s) written by $(b,hbbp collect); shards of one \
           collection are streamed and merged into a single \
           reconstruction.")

let repair_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("off", Pipeline.Off);
             ("report", Pipeline.Report);
             ("apply", Pipeline.Apply);
           ])
        Pipeline.Report
    & info [ "repair" ] ~docv:"MODE"
        ~doc:
          "Count-repair policy: $(b,off) skips the pass, $(b,report) \
           (default) measures what repair would do, $(b,apply) replaces \
           the HBBP counts with the repaired vector.  The quality \
           verdict always reflects the pre-repair flow check.")

let emit_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-profile" ] ~docv:"FILE"
        ~doc:
          "Write the reconstruction as a compiler-consumable PGO \
           artifact (LLVM-profdata-shaped JSON: per-function block \
           weights and branch probabilities) to $(docv), atomically.")

let emit_profile ~workload ~mode path (r : Pipeline.reconstruction) =
  let json =
    Profile_export.to_json ~workload
      ?repair:
        (Option.map
           (fun rep -> (mode = Pipeline.Apply, rep))
           r.Pipeline.r_repair)
      r.Pipeline.r_static r.Pipeline.r_hbbp
  in
  Hbbp_durable.Durable.write_file ~path json;
  Format.printf "profile written to %s@." path

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Save a durable analysis checkpoint to $(docv) after each \
           consumed archive (default when resuming: \
           $(i,FIRST_ARCHIVE).ckpt); $(b,--resume) restarts from it. \
           Deleted automatically on success.")

let analyze_cmd =
  let top =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows to print.")
  in
  let run paths top checkpoint resume repair profile_out trace metrics stream
      =
    install_signal_handlers ();
    with_telemetry trace metrics stream @@ fun () ->
    let checkpoint =
      match (checkpoint, resume) with
      | (Some _ as c), _ -> c
      | None, true -> Some (List.hd paths ^ ".ckpt")
      | None, false -> None
    in
    let result =
      match checkpoint with
      | None -> Pipeline.analyze_archives ~repair paths
      | Some checkpoint -> (
          try
            Recover.analyze_archives ~repair ~resume ~should_stop ~checkpoint
              paths
          with Recover.Interrupted ->
            exit_interrupted ~hint:"rerun with --resume")
    in
    match result with
    | Error msg -> die "%s" msg
    | Ok (meta, r) ->
        let partial = r.Pipeline.r_partial in
        List.iter
          (fun f ->
            Format.eprintf "hbbp: warning: %a@."
              Hbbp_collector.Perf_data.pp_fault f)
          (Pipeline.Partial.faults partial);
        Format.printf
          "workload %s: %d archive(s), %d records, %d blocks, %d LBR \
           snapshots, %d flagged@."
          meta.Hbbp_collector.Perf_data.workload_name (List.length paths)
          (Pipeline.Partial.record_count partial)
          (Static.total_blocks r.Pipeline.r_static)
          r.Pipeline.r_lbr.Lbr_estimator.snapshots
          (List.length (Bias.flagged_blocks r.Pipeline.r_bias));
        Format.printf "quality: %a@." Pipeline.pp_quality r.Pipeline.r_quality;
        Option.iter
          (fun rep -> Format.printf "%a@." Hbbp_verifier.Repair.pp_report rep)
          r.Pipeline.r_repair;
        Format.printf "@.Instruction mix (HBBP):@.";
        Pivot.render Format.std_formatter
          (Views.top_mnemonics top
             (Mix.of_bbec r.Pipeline.r_static r.Pipeline.r_hbbp));
        Option.iter
          (fun path ->
            emit_profile
              ~workload:meta.Hbbp_collector.Perf_data.workload_name
              ~mode:repair path r)
          profile_out;
        (match r.Pipeline.r_quality with
        | Pipeline.Full -> ()
        | Pipeline.Degraded _ -> exit 2)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze archive(s) offline, streaming the records in bounded \
          chunks; several shards merge into one reconstruction, \
          bit-identical to analyzing the unsharded archive. With \
          $(b,--checkpoint) the merged state is durably checkpointed \
          between archives and $(b,--resume) restarts from it. Exits 2 \
          when the reconstruction is degraded, 1 when an archive is \
          unreadable or shard metadata disagrees")
    Term.(
      const run $ archives_arg $ top $ checkpoint_arg $ resume_arg
      $ repair_mode_arg $ emit_profile_arg $ trace_arg $ metrics_arg
      $ metrics_stream_arg)

(* ---- stats ---------------------------------------------------------- *)

let stats_cmd =
  (* One reconstruction's stat block — everything comes off the merged
     partial state and the finalized estimators, so the same printer
     serves a single archive and a merged shard set. *)
  let print_stats header meta (r : Pipeline.reconstruction) =
    let partial = r.Pipeline.r_partial in
    let lbr = r.Pipeline.r_lbr in
    let streams =
      lbr.Lbr_estimator.usable_streams
      + lbr.Lbr_estimator.inconsistent_streams
      + lbr.Lbr_estimator.discarded_streams
    in
    let failure_rate =
      if streams = 0 then 0.0
      else
        float_of_int (streams - lbr.Lbr_estimator.usable_streams)
        /. float_of_int streams
    in
    Format.printf "%s: workload %s@." header
      meta.Hbbp_collector.Perf_data.workload_name;
    Format.printf "  records             %8d@."
      (Pipeline.Partial.record_count partial);
    Format.printf "  EBS samples         %8d (+%d unattributed)@."
      (Pipeline.Partial.ebs_samples partial)
      r.Pipeline.r_ebs.Ebs_estimator.unattributed;
    Format.printf "  LBR snapshots       %8d@."
      (Pipeline.Partial.lbr_snapshots partial);
    Format.printf "  lost / other        %8d / %d@."
      (Pipeline.Partial.lost_records partial)
      (Pipeline.Partial.other_samples partial);
    Format.printf "  EBS / LBR periods   %8d / %d@."
      meta.Hbbp_collector.Perf_data.ebs_period
      meta.Hbbp_collector.Perf_data.lbr_period;
    Format.printf
      "  streams             %8d usable, %d inconsistent, %d discarded \
       (%.1f%% walk failures)@."
      lbr.Lbr_estimator.usable_streams lbr.Lbr_estimator.inconsistent_streams
      lbr.Lbr_estimator.discarded_streams (100.0 *. failure_rate);
    Format.printf "  bias-flagged blocks %8d@."
      (List.length (Bias.flagged_blocks r.Pipeline.r_bias));
    Format.printf "  static blocks       %8d@."
      (Static.total_blocks r.Pipeline.r_static);
    (match Pipeline.Partial.faults partial with
    | [] -> Format.printf "  integrity              clean@."
    | faults ->
        Format.printf "  integrity           %8d fault(s), salvaged@."
          (List.length faults);
        List.iter
          (fun f ->
            Format.printf "    - %a@." Hbbp_collector.Perf_data.pp_fault f)
          faults);
    Format.printf "  quality             %a@." Pipeline.pp_quality
      r.Pipeline.r_quality;
    match r.Pipeline.r_quality with Pipeline.Full -> false | Pipeline.Degraded _ -> true
  in
  let health_arg =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "After the analysis, print the rolled-up health verdict \
             (ok/warn/critical with reasons) assembled from the run's \
             degrade.*, verify.*, lbr.*, pmu.*, faults.*, pool.* and \
             gc.* metrics; a critical verdict also exits 2.")
  in
  let run paths health trace metrics stream =
    let degraded = ref false in
    let critical = ref false in
    (* The rollup reads the metrics registry, so --health turns it on
       even when no snapshot printing was requested. *)
    if health then Hbbp_telemetry.Metrics.enable ();
    with_telemetry trace metrics stream (fun () ->
        (* Per-archive stats stream each file independently... *)
        List.iter
          (fun path ->
            match Pipeline.analyze_archives [ path ] with
            | Error msg -> die "%s" msg
            | Ok (meta, r) ->
                if print_stats path meta r then degraded := true)
          paths;
        (* ... and several archives also get the merged view (when their
           metadata is compatible, i.e. they are shards of one
           collection).  The merged verdict drives the exit code: shards
           that starve a channel individually can be healthy together. *)
        if List.length paths > 1 then
          (match Pipeline.analyze_archives paths with
          | Error msg ->
              Format.eprintf "hbbp: no merged view: %s@." msg
          | Ok (meta, r) ->
              Format.printf "@.";
              degraded :=
                print_stats
                  (Printf.sprintf "merged (%d archives)" (List.length paths))
                  meta r);
        if health then begin
          let verdict = Telemetry.health () in
          Format.printf "@.%a" Hbbp_telemetry.Health.pp verdict;
          match verdict with
          | Hbbp_telemetry.Health.Critical _ -> critical := true
          | Hbbp_telemetry.Health.Ok | Hbbp_telemetry.Health.Warn _ -> ()
        end);
    if !degraded || !critical then exit 2
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print collection and sampling-health statistics of archive(s), \
          streamed in bounded chunks: record volume, sample split, \
          stream-walk failure rate, bias flags, salvage/integrity status; \
          several archives also report their merged reconstruction, and \
          $(b,--health) a rolled-up ok/warn/critical verdict. Exits 2 \
          when the (merged) reconstruction is degraded or the verdict is \
          critical, 1 when an archive is unreadable")
    Term.(
      const run $ archives_arg $ health_arg $ trace_arg $ metrics_arg
      $ metrics_stream_arg)

(* ---- lint ----------------------------------------------------------- *)

module V = Hbbp_verifier

(* One lint target: a workload name (linted in place) or the whole set
   of archive paths (shards of one collection, linted from their
   metadata and flow-checked through the streamed reconstruction). *)
type lint_result = {
  lr_target : string;
  lr_kind : [ `Workload | `Archive ];
  lr_diags : V.Diagnostic.t list;
  lr_flow : V.Flow.report option;
}

let lint_errors r =
  V.Diagnostic.count_errors r.lr_diags
  +
  match r.lr_flow with
  | Some f
    when f.V.Flow.conservation_error
         > Pipeline.default_thresholds.Pipeline.max_conservation_error ->
      1
  | Some _ | None -> 0

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Version of the machine-readable lint report below; bump on any
   shape change so CI consumers can pin what they parse. *)
let lint_schema_version = 1

let lint_json results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":%d,\"targets\":[" lint_schema_version);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"target\":\"%s\",\"kind\":\"%s\",\"diagnostics\":["
           (json_escape r.lr_target)
           (match r.lr_kind with
           | `Workload -> "workload"
           | `Archive -> "archive"));
      List.iteri
        (fun j (d : V.Diagnostic.t) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\",\"image\":\"%s\""
               (V.Diagnostic.rule_id d.V.Diagnostic.rule)
               (V.Diagnostic.severity_to_string d.V.Diagnostic.severity)
               (json_escape d.V.Diagnostic.image));
          Option.iter
            (fun a -> Buffer.add_string buf (Printf.sprintf ",\"addr\":%d" a))
            d.V.Diagnostic.addr;
          Option.iter
            (fun b -> Buffer.add_string buf (Printf.sprintf ",\"block\":%d" b))
            d.V.Diagnostic.block;
          Buffer.add_string buf
            (Printf.sprintf ",\"message\":\"%s\"}"
               (json_escape d.V.Diagnostic.message)))
        r.lr_diags;
      Buffer.add_string buf "]";
      Option.iter
        (fun (f : V.Flow.report) ->
          Buffer.add_string buf
            (Printf.sprintf
               ",\"flow\":{\"conservation_error\":%.6f,\"total_residual\":%.1f,\"total_flow\":%.1f,\"checked_blocks\":%d,\"entry_blocks\":%d,\"violation\":%b}"
               f.V.Flow.conservation_error f.V.Flow.total_residual
               f.V.Flow.total_flow f.V.Flow.checked_blocks
               f.V.Flow.entry_blocks
               (f.V.Flow.conservation_error
               > Pipeline.default_thresholds.Pipeline.max_conservation_error)))
        r.lr_flow;
      Buffer.add_string buf
        (Printf.sprintf ",\"errors\":%d}" (lint_errors r)))
    results;
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d}"
       (List.fold_left (fun acc r -> acc + lint_errors r) 0 results));
  Buffer.contents buf

let lint_cmd =
  let targets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "Workload name (see $(b,hbbp list)) or archive file written by \
             $(b,hbbp collect).  All archive paths together are analyzed \
             as shards of one collection.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a machine-readable JSON report on stdout.")
  in
  let flow =
    Arg.(
      value & flag
      & info [ "flow" ]
          ~doc:
            "Also profile each workload target and flow-check its HBBP \
             reconstruction (archive targets are always flow-checked).")
  in
  let lint_workload ~flow name =
    let w = find_workload name in
    let diags = V.Lint.process w.Workload.analysis_process in
    let diags =
      (* The live process only differs for self-patching kernels; lint
         it too, but keep one copy of findings common to both views. *)
      if w.Workload.live_process == w.Workload.analysis_process then diags
      else
        diags
        @ List.filter
            (fun d -> not (List.mem d diags))
            (V.Lint.process w.Workload.live_process)
    in
    let flow_report =
      if flow then begin
        let p = Pipeline.run w in
        Some (V.Flow.check p.Pipeline.static p.Pipeline.hbbp)
      end
      else None
    in
    { lr_target = name; lr_kind = `Workload; lr_diags = diags;
      lr_flow = flow_report }
  in
  let lint_archives paths =
    match Pipeline.analyze_archives paths with
    | Error msg -> die "%s" msg
    | Ok (meta, r) ->
        let process =
          Hbbp_program.Process.create
            meta.Hbbp_collector.Perf_data.analysis_images
        in
        let diags = V.Lint.process process in
        let flow_report =
          V.Flow.check r.Pipeline.r_static r.Pipeline.r_hbbp
        in
        {
          lr_target = String.concat " " paths;
          lr_kind = `Archive;
          lr_diags = diags;
          lr_flow = Some flow_report;
        }
  in
  let run targets json flow trace metrics stream =
    let archives, workloads =
      List.partition Sys.file_exists targets
    in
    with_telemetry trace metrics stream @@ fun () ->
    let results =
      List.map (lint_workload ~flow) workloads
      @ (if archives = [] then [] else [ lint_archives archives ])
    in
    if json then print_endline (lint_json results)
    else
      List.iter
        (fun r ->
          List.iter
            (fun d -> Format.printf "%a@." V.Diagnostic.pp d)
            r.lr_diags;
          (match r.lr_flow with
          | Some f ->
              Format.printf "%s: flow conservation error %.4f%s@."
                r.lr_target f.V.Flow.conservation_error
                (if
                   f.V.Flow.conservation_error
                   > Pipeline.default_thresholds
                       .Pipeline.max_conservation_error
                 then " (VIOLATION)"
                 else "")
          | None -> ());
          let errors = lint_errors r in
          let warnings = List.length r.lr_diags - V.Diagnostic.count_errors r.lr_diags in
          Format.printf "%s: %s@." r.lr_target
            (if errors = 0 && warnings = 0 then "clean"
             else Printf.sprintf "%d error(s), %d warning(s)" errors warnings))
        results;
    let total = List.fold_left (fun acc r -> acc + lint_errors r) 0 results in
    if total > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify workload images (decode totality, encoding \
          round-trip, basic-block tiling, terminator placement, branch \
          targets, CFG edge soundness, reachability, executable-graph \
          agreement) and flow-check archive reconstructions against \
          Kirchhoff conservation. Exits 0 when clean, 2 on findings, 1 \
          when a target is unreadable")
    Term.(const run $ targets $ json $ flow $ trace_arg $ metrics_arg $ metrics_stream_arg)

(* ---- repair --------------------------------------------------------- *)

type repair_result = {
  rr_target : string;
  rr_kind : [ `Workload | `Archive ];
  rr_report : V.Repair.report;
  rr_raw_error : float option;  (* mix error vs reference, workloads only *)
  rr_repaired_error : float option;
}

let repair_violation r =
  r.rr_report.V.Repair.post.V.Flow.conservation_error
  > Pipeline.default_thresholds.Pipeline.max_conservation_error

let repair_schema_version = 1

let repair_json results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":%d,\"targets\":["
       repair_schema_version);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let rep = r.rr_report in
      let opt_float = function
        | Some v -> Printf.sprintf "%.6f" v
        | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"target\":\"%s\",\"kind\":\"%s\",\"pre_conservation_error\":%.6f,\"post_conservation_error\":%.6f,\"iterations\":%d,\"converged\":%b,\"adjusted_blocks\":%d,\"moved_mass\":%.1f,\"raw_mix_error\":%s,\"repaired_mix_error\":%s,\"violation\":%b}"
           (json_escape r.rr_target)
           (match r.rr_kind with
           | `Workload -> "workload"
           | `Archive -> "archive")
           rep.V.Repair.pre.V.Flow.conservation_error
           rep.V.Repair.post.V.Flow.conservation_error
           rep.V.Repair.iterations rep.V.Repair.converged
           rep.V.Repair.adjusted_blocks rep.V.Repair.moved_mass
           (opt_float r.rr_raw_error)
           (opt_float r.rr_repaired_error)
           (repair_violation r)))
    results;
  Buffer.add_string buf
    (Printf.sprintf "],\"violations\":%d}"
       (List.length (List.filter repair_violation results)));
  Buffer.contents buf

let repair_cmd =
  let targets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "Workload name (see $(b,hbbp list)) or archive file written \
             by $(b,hbbp collect).  All archive paths together are \
             analyzed as shards of one collection.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a machine-readable JSON report on stdout.")
  in
  let repair_workload name =
    let p = profile_of name in
    let rep =
      match p.Pipeline.repair_report with
      | Some rep -> rep
      | None -> die "%s: pipeline config disabled repair" name
    in
    let err bbec =
      (Pipeline.error_report p bbec).Error.avg_weighted_error
    in
    ( {
        rr_target = name;
        rr_kind = `Workload;
        rr_report = rep;
        rr_raw_error = Some (err p.Pipeline.hbbp);
        rr_repaired_error = Some (err rep.V.Repair.repaired);
      },
      (p.Pipeline.static, name) )
  in
  let repair_archives paths =
    match Pipeline.analyze_archives paths with
    | Error msg -> die "%s" msg
    | Ok (meta, r) ->
        let rep = Option.get r.Pipeline.r_repair in
        ( {
            rr_target = String.concat " " paths;
            rr_kind = `Archive;
            rr_report = rep;
            rr_raw_error = None;
            rr_repaired_error = None;
          },
          ( r.Pipeline.r_static,
            meta.Hbbp_collector.Perf_data.workload_name ) )
  in
  let run targets json profile_out trace metrics stream =
    with_telemetry trace metrics stream @@ fun () ->
    let archives, workloads = List.partition Sys.file_exists targets in
    let results =
      List.map repair_workload workloads
      @ if archives = [] then [] else [ repair_archives archives ]
    in
    (match (profile_out, results) with
    | None, _ -> ()
    | Some path, [ (r, (static, workload)) ] ->
        let jsn =
          Profile_export.to_json ~workload
            ~repair:(true, r.rr_report)
            static r.rr_report.V.Repair.repaired
        in
        Hbbp_durable.Durable.write_file ~path jsn;
        Format.printf "profile written to %s@." path
    | Some _, _ ->
        die "--emit-profile needs exactly one target (or one archive set)");
    let results = List.map fst results in
    if json then print_endline (repair_json results)
    else
      List.iter
        (fun r ->
          Format.printf "%s: %a@." r.rr_target V.Repair.pp_report
            r.rr_report;
          match (r.rr_raw_error, r.rr_repaired_error) with
          | Some raw, Some fixed ->
              Format.printf
                "%s: weighted mix error vs reference %.4f -> %.4f@."
                r.rr_target raw fixed
          | _ -> ())
        results;
    if List.exists repair_violation results then exit 2
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Project reconstructed HBBP counts onto the flow-conservation \
          polytope of the CFG (weighted Kirchhoff repair; low-confidence \
          blocks absorb the correction) and report the residual shrink; \
          workload targets also report the weighted mix error against \
          the instrumentation reference before and after.  Exits 2 when \
          a repaired reconstruction still violates the conservation \
          threshold, 1 when a target is unreadable")
    Term.(
      const run $ targets $ json $ emit_profile_arg $ trace_arg
      $ metrics_arg $ metrics_stream_arg)

(* ---- loops ---------------------------------------------------------- *)

let loops_cmd =
  let run name =
    let p = profile_of name in
    Loop_view.render Format.std_formatter
      (Loop_view.report p.Pipeline.static p.Pipeline.hbbp)
  in
  Cmd.v
    (Cmd.info "loops"
       ~doc:"Natural loops with composition and estimated trip counts")
    Term.(const run $ workload_arg)

(* ---- doctor --------------------------------------------------------- *)

let doctor_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a machine-readable report on stdout: \
             $(i,{\"reports\":[...]}) with one entry per workload.")
  in
  let max_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Try every job count from 1 to $(docv) (default: the host's \
             recommended domain count, capped at 4).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shards to split the archive into, i.e. parallel task \
             granularity (default: twice the maximum job count).")
  in
  let run positional named json max_jobs shards engine trace metrics stream =
    let names =
      match positional @ named with [] -> [ "mcf"; "hello" ] | ns -> ns
    in
    let ws = List.map find_workload names in
    with_telemetry trace metrics stream @@ fun () ->
    let reports =
      List.map
        (fun w ->
          Doctor.run ?max_jobs ?shards ~config:(config_with_engine engine) w)
        ws
    in
    if json then
      print_endline
        (Printf.sprintf "{\"reports\":[%s]}"
           (String.concat "," (List.map Doctor.to_json reports)))
    else
      List.iteri
        (fun k r ->
          if k > 0 then Format.printf "@.";
          Doctor.pp Format.std_formatter r)
        reports;
    if List.exists (fun r -> not r.Doctor.rep_consistent) reports then exit 2
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Attribute parallel (in)efficiency of the sharded analysis path: \
          collect an archive, shard it, replay the stream→merge→finalize \
          analysis at -j 1..N and report speedup, efficiency, the serial \
          merge tail, per-worker utilization and busy-time imbalance, \
          per-domain GC activity, task-size statistics and the top \
          allocation sites by span. Defaults to the $(b,mcf) and \
          $(b,hello) workloads. Exits 2 if any job count reconstructs \
          different counts (determinism violation)")
    Term.(
      const run $ workloads_pos_arg $ workload_opt_arg $ json $ max_jobs
      $ shards $ engine_arg $ trace_arg $ metrics_arg $ metrics_stream_arg)

(* ---- capabilities --------------------------------------------------- *)

let capabilities_cmd =
  let run () =
    let module C = Hbbp_collector.Capabilities in
    List.iter
      (fun gen ->
        Printf.printf "%s (%d):\n" (C.generation_to_string gen) (C.year gen);
        List.iter
          (fun cls ->
            Printf.printf "  %-14s %s\n"
              (C.event_class_to_string cls)
              (C.support_to_string (C.support gen cls)))
          C.event_classes)
      C.generations
  in
  Cmd.v
    (Cmd.info "capabilities"
       ~doc:"Show instruction-specific event support by PMU generation")
    Term.(const run $ const ())

let () =
  let doc = "Low-overhead dynamic instruction mixes via Hybrid Basic Block Profiling" in
  let info = Cmd.info "hbbp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; profile_cmd; mix_cmd; bias_cmd; train_cmd;
            collect_cmd; analyze_cmd; stats_cmd; lint_cmd; repair_cmd;
            loops_cmd; doctor_cmd; capabilities_cmd ]))
