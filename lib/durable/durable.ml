(* Atomic whole-file publication: write a sibling tmp file, fsync it,
   rename over the destination.  POSIX rename is atomic within a
   filesystem, so a reader (or a crash) sees either the old complete
   file or the new complete file — never a torn mix.

   The [io.*] fault family injects syscall-level failures here:
   ENOSPC aborts the write (tmp removed, typed error raised), EINTR
   and short writes are absorbed by the write loop, and transient
   fsync/rename failures are retried through [Retry]. *)

module Faults = Hbbp_faults.Faults

exception No_space of string

let () =
  Printexc.register_printer (function
    | No_space path -> Some (Printf.sprintf "Durable.No_space(%S)" path)
    | _ -> None)

let writes_cell = Atomic.make 0
let bytes_cell = Atomic.make 0

let tally () =
  let w = Atomic.get writes_cell and b = Atomic.get bytes_cell in
  (if w > 0 then [ ("durable.writes", w) ] else [])
  @ if b > 0 then [ ("durable.bytes", b) ] else []

let reset_tally () =
  Atomic.set writes_cell 0;
  Atomic.set bytes_cell 0

let tmp_suffix = ".tmp"

(* Unique per process so concurrent writers of the same path never
   share a staging file; [remove_stale ~path] matches on the prefix. *)
let tmp_path path = Printf.sprintf "%s%s.%d" path tmp_suffix (Unix.getpid ())

let remove_stale ~path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ tmp_suffix in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          if String.starts_with ~prefix entry then begin
            (try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ());
            n + 1
          end
          else n)
        0 entries

(* Flush the directory so the rename itself survives a crash.  Not all
   filesystems support fsync on a directory fd; failure is harmless
   (the data file is already durable). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_file ?(fsync = true) ?retry ~path contents =
  let inj = Faults.io_injector () in
  let policy = Option.value retry ~default:Retry.default in
  let tmp = tmp_path path in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  let cleanup () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Sys.remove tmp with Sys_error _ -> ()
  in
  match
    (match inj with
    | Some i when Faults.io_enospc i ->
        raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp))
    | _ -> ());
    let len = String.length contents in
    let pos = ref 0 in
    while !pos < len do
      let remaining = len - !pos in
      let wrote =
        try
          (match inj with
          | Some i when Faults.io_eintr i ->
              raise (Unix.Unix_error (Unix.EINTR, "write", tmp))
          | _ -> ());
          let chunk =
            match inj with
            | Some i -> (
                match Faults.io_short_write i ~len:remaining with
                | Some n -> n
                | None -> remaining)
            | None -> remaining
          in
          Unix.write_substring fd contents !pos chunk
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      pos := !pos + wrote
    done;
    if fsync then
      Retry.with_retry ~policy (fun () ->
          (match inj with
          | Some i when Faults.io_fsync_fail i ->
              raise (Unix.Unix_error (Unix.EBUSY, "fsync", tmp))
          | _ -> ());
          Unix.fsync fd);
    Unix.close fd;
    Retry.with_retry ~policy (fun () ->
        (match inj with
        | Some i when Faults.io_rename_fail i ->
            raise (Unix.Unix_error (Unix.EBUSY, "rename", tmp))
        | _ -> ());
        Unix.rename tmp path);
    if fsync then fsync_dir (Filename.dirname path)
  with
  | () ->
      ignore (Atomic.fetch_and_add writes_cell 1);
      ignore (Atomic.fetch_and_add bytes_cell (String.length contents))
  | exception Unix.Unix_error (Unix.ENOSPC, _, _) ->
      cleanup ();
      raise (No_space path)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      cleanup ();
      Printexc.raise_with_backtrace e bt

let write_bytes ?fsync ?retry ~path data =
  write_file ?fsync ?retry ~path (Bytes.unsafe_to_string data)
