(** Crash-safe whole-file writes: tmp + write + [fsync] + [rename].

    Every durable artifact in the system (archives, shards, manifests,
    checkpoints, bench JSON, trace dumps) is published through
    {!write_file}, so a [kill -9] at any byte offset leaves either the
    previous complete file or the new complete file on disk — never a
    torn one.  The staging file lives in the destination directory
    (rename is only atomic within one filesystem) under
    [<path>.tmp.<pid>].

    The [io.*] fault family ({!Fault_plan.io}) injects seeded failures
    at each syscall in the sequence; with no plan armed the extra cost
    is one atomic load per write. *)

(** Raised when the filesystem reports no space (real or injected);
    the staging file has been removed and the destination is
    untouched. *)
exception No_space of string

(** [write_file ~path contents] — atomically replace [path] with
    [contents].  [fsync] (default true) makes the data and the rename
    durable before returning; pass [false] for outputs where crash
    durability doesn't matter (benches).  Transient [fsync]/[rename]
    failures are retried under [retry] (default {!Retry.default});
    exhaustion raises {!Retry.Exhausted}. *)
val write_file : ?fsync:bool -> ?retry:Retry.policy -> path:string -> string -> unit

(** As {!write_file} for [bytes] (no copy). *)
val write_bytes : ?fsync:bool -> ?retry:Retry.policy -> path:string -> bytes -> unit

(** [remove_stale ~path] — delete leftover [<path>.tmp.*] staging
    files from interrupted runs (called on [--resume]); returns the
    number removed. *)
val remove_stale : path:string -> int

(** {1 Tally}

    Process-wide counters ([durable.writes], [durable.bytes]) since
    the last {!reset_tally}, surfaced as metrics by the telemetry
    layer. *)

val tally : unit -> (string * int) list
val reset_tally : unit -> unit
