module Fault_prng = Hbbp_faults.Fault_prng

type policy = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
  seed : int64;
}

let default =
  {
    max_attempts = 4;
    base_delay_s = 0.001;
    max_delay_s = 0.05;
    jitter = 0.25;
    seed = 1L;
  }

exception Exhausted of { attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Exhausted { attempts; last } ->
        Some
          (Printf.sprintf "Retry.Exhausted(attempts=%d, last=%s)" attempts
             (Printexc.to_string last))
    | _ -> None)

(* Process-wide tallies, mirrored into the telemetry registry by
   [Telemetry.health]/[finalize] the same way [Faults.tally] is. *)
let attempts_cell = Atomic.make 0
let exhausted_cell = Atomic.make 0

let tally () =
  let a = Atomic.get attempts_cell and e = Atomic.get exhausted_cell in
  (if a > 0 then [ ("retry.attempts", a) ] else [])
  @ if e > 0 then [ ("retry.exhausted", e) ] else []

let reset_tally () =
  Atomic.set attempts_cell 0;
  Atomic.set exhausted_cell 0

let transient = function
  | Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK | EBUSY), _, _) -> true
  | _ -> false

let backoff_s policy prng attempt =
  let base = policy.base_delay_s *. (2.0 ** float_of_int (attempt - 1)) in
  let base = Float.min policy.max_delay_s base in
  base *. (1.0 +. (policy.jitter *. Fault_prng.float prng))

let with_retry ?(policy = default) ?(is_transient = transient) f =
  let prng = Fault_prng.create ~seed:policy.seed in
  let rec go attempt =
    try f ()
    with e when is_transient e ->
      if attempt >= policy.max_attempts then begin
        ignore (Atomic.fetch_and_add exhausted_cell 1);
        raise (Exhausted { attempts = attempt; last = e })
      end
      else begin
        ignore (Atomic.fetch_and_add attempts_cell 1);
        let d = backoff_s policy prng attempt in
        if d > 0.0 then Unix.sleepf d;
        go (attempt + 1)
      end
  in
  go 1
