(** Bounded, seeded retry with exponential backoff for transient I/O.

    A retry loop is only sound when the wrapped operation is
    idempotent; every use in this codebase wraps a single syscall
    ([fsync], [rename]) or a whole-file rewrite, both of which are.

    Backoff jitter draws from a {!Fault_prng} stream seeded from the
    policy, so sleep schedules — like everything else in the system —
    are reproducible. *)

type policy = {
  max_attempts : int;  (** Total tries, including the first. *)
  base_delay_s : float;  (** Backoff before the second try. *)
  max_delay_s : float;  (** Per-try backoff cap (before jitter). *)
  jitter : float;  (** Extra uniform fraction in [0, jitter]. *)
  seed : int64;  (** Seed for the jitter draws. *)
}

(** 4 attempts, 1ms base doubling to a 50ms cap, 25% jitter. *)
val default : policy

(** Raised when all attempts failed transiently; [last] is the final
    failure. *)
exception Exhausted of { attempts : int; last : exn }

(** The default transiency predicate: [EINTR], [EAGAIN],
    [EWOULDBLOCK], [EBUSY]. *)
val transient : exn -> bool

(** [with_retry f] — run [f], retrying on transient failures with
    capped exponential backoff.  Non-transient exceptions propagate
    immediately; transient exhaustion raises {!Exhausted}. *)
val with_retry : ?policy:policy -> ?is_transient:(exn -> bool) -> (unit -> 'a) -> 'a

(** {1 Tally}

    Process-wide counters of retries taken and retries exhausted since
    the last {!reset_tally} — surfaced as [retry.*] metrics by the
    telemetry layer. *)

val tally : unit -> (string * int) list
val reset_tally : unit -> unit
