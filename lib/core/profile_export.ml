open Hbbp_program
open Hbbp_analyzer

let schema_version = 1

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Finite floats only; counts are sums of finite samples, but guard the
   serialization anyway — NaN/inf would produce invalid JSON. *)
let flt v = Printf.sprintf "%.17g" (if Float.is_finite v then v else 0.)

type fn = {
  fn_name : string;
  fn_image : string;
  fn_ring : string;
  fn_entry : int;
  mutable fn_blocks : (int * int * float) list;  (* addr, instrs, count *)
  mutable fn_branches : (int * int * float * float) list;
      (* branch addr, taken target, taken count, not-taken count *)
}

let to_json ?(workload = "") ?repair static (bbec : Bbec.t) =
  let fns = Hashtbl.create 64 in
  let order = ref [] in
  let fn_of (img : Image.t) (b : Basic_block.t) =
    let name, entry =
      match Image.symbol_at img b.Basic_block.addr with
      | Some (s : Symbol.t) -> (s.Symbol.name, s.Symbol.addr)
      | None -> (img.Image.name, img.Image.base)
    in
    let key = (img.Image.name, entry) in
    match Hashtbl.find_opt fns key with
    | Some fn -> fn
    | None ->
        let fn =
          {
            fn_name = name;
            fn_image = img.Image.name;
            fn_ring =
              (if Ring.equal img.Image.ring Ring.User then "user"
               else "kernel");
            fn_entry = entry;
            fn_blocks = [];
            fn_branches = [];
          }
        in
        Hashtbl.add fns key fn;
        order := key :: !order;
        fn
  in
  let total_flow = ref 0. in
  Static.iter
    (fun gid img b ->
      let c = Bbec.count bbec gid in
      total_flow := !total_flow +. c;
      let fn = fn_of img b in
      fn.fn_blocks <-
        (b.Basic_block.addr, Array.length b.Basic_block.instrs, c)
        :: fn.fn_blocks;
      match b.Basic_block.term with
      | Basic_block.Term_cond target ->
          let count_at gid_opt =
            match gid_opt with
            | Some g -> Bbec.count bbec g
            | None -> 0.
          in
          let taken = count_at (Static.find_starting static target) in
          let not_taken = count_at (Static.next_in_layout static gid) in
          let branch_addr =
            let addrs = b.Basic_block.addrs in
            if Array.length addrs > 0 then addrs.(Array.length addrs - 1)
            else b.Basic_block.addr
          in
          fn.fn_branches <-
            (branch_addr, target, taken, not_taken) :: fn.fn_branches
      | _ -> ())
    static;
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"schema_version\": %d,\n" schema_version);
  add "  \"format\": \"hbbp-pgo\",\n";
  add (Printf.sprintf "  \"workload\": \"%s\",\n" (json_escape workload));
  add
    (Printf.sprintf "  \"method\": \"%s\",\n"
       (json_escape (Bbec.method_to_string bbec.Bbec.method_)));
  add (Printf.sprintf "  \"total_flow\": %s,\n" (flt !total_flow));
  (match repair with
  | None -> add "  \"repair\": null,\n"
  | Some (applied, (r : Hbbp_verifier.Repair.report)) ->
      add
        (Printf.sprintf
           "  \"repair\": {\"applied\": %b, \"converged\": %b, \
            \"iterations\": %d, \"adjusted_blocks\": %d, \"moved_mass\": \
            %s, \"pre_conservation_error\": %s, \
            \"post_conservation_error\": %s},\n"
           applied r.Hbbp_verifier.Repair.converged
           r.Hbbp_verifier.Repair.iterations
           r.Hbbp_verifier.Repair.adjusted_blocks
           (flt r.Hbbp_verifier.Repair.moved_mass)
           (flt
              r.Hbbp_verifier.Repair.pre
                .Hbbp_verifier.Flow.conservation_error)
           (flt
              r.Hbbp_verifier.Repair.post
                .Hbbp_verifier.Flow.conservation_error)));
  add "  \"functions\": [";
  let keys = List.rev !order in
  List.iteri
    (fun i key ->
      let fn = Hashtbl.find fns key in
      let blocks = List.sort compare (List.rev fn.fn_blocks) in
      let branches = List.sort compare (List.rev fn.fn_branches) in
      let entry_count =
        match Static.find_starting static fn.fn_entry with
        | Some g -> Bbec.count bbec g
        | None -> 0.
      in
      let total =
        List.fold_left (fun acc (_, _, c) -> acc +. c) 0. blocks
      in
      if i > 0 then add ",";
      add "\n    {\n";
      add
        (Printf.sprintf "      \"name\": \"%s\",\n" (json_escape fn.fn_name));
      add
        (Printf.sprintf "      \"image\": \"%s\",\n"
           (json_escape fn.fn_image));
      add (Printf.sprintf "      \"ring\": \"%s\",\n" fn.fn_ring);
      add (Printf.sprintf "      \"entry_address\": %d,\n" fn.fn_entry);
      add
        (Printf.sprintf "      \"entry_count\": %s,\n" (flt entry_count));
      add (Printf.sprintf "      \"total_count\": %s,\n" (flt total));
      add "      \"blocks\": [";
      List.iteri
        (fun j (addr, len, c) ->
          if j > 0 then add ",";
          add
            (Printf.sprintf
               "\n        {\"address\": %d, \"instructions\": %d, \
                \"count\": %s}"
               addr len (flt c)))
        blocks;
      add "\n      ],\n";
      add "      \"branches\": [";
      List.iteri
        (fun j (addr, target, taken, not_taken) ->
          if j > 0 then add ",";
          let all = taken +. not_taken in
          let p = if all > 0. then taken /. all else 0.5 in
          add
            (Printf.sprintf
               "\n        {\"address\": %d, \"taken_target\": %d, \
                \"taken\": %s, \"not_taken\": %s, \"probability\": %s}"
               addr target (flt taken) (flt not_taken) (flt p)))
        branches;
      add "\n      ]\n    }")
    keys;
  add "\n  ]\n}\n";
  Buffer.contents buf
