(** Checkpoint file for resumable streaming analysis.

    Records which archives have been fully folded into the running
    {!Pipeline.Partial} plus the serialized partial itself, in the
    same versioned CRC-guarded section framing as the archive format.
    Saved atomically ({!Hbbp_durable.Durable}) after every consumed
    archive, so a [kill -9] leaves a loadable checkpoint naming a
    prefix of the work — what [analyze --resume] restarts from. *)

type t = {
  done_paths : string list;  (** Archives fully folded in, in order. *)
  partial : bytes;  (** {!Pipeline.Partial.serialize} of the merged state. *)
}

val to_bytes : t -> bytes

(** Typed failure on bad magic/version, CRC mismatch or truncation —
    a damaged checkpoint is reported, never silently trusted. *)
val of_bytes : bytes -> (t, string) result

(** Atomic durable write; counts [checkpoint.saves] / [checkpoint.bytes]. *)
val save : t -> path:string -> unit

(** [None] when no checkpoint file exists. *)
val load : path:string -> (t, string) result option

(** Delete the checkpoint (after a successful finalize). *)
val remove : path:string -> unit
