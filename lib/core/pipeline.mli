(** End-to-end profiling of one workload.

    A single deterministic execution of the workload drives, side by
    side: the clean timing model, the instrumenting reference tool, the
    dual-LBR PMU collection, and exact PMU counting-mode cross-checks.
    From the collected records the pipeline reconstructs EBS, LBR and
    HBBP BBECs, detects LBR bias, applies the kernel text patch, and
    computes the runtime-overhead models. *)

open Hbbp_isa
open Hbbp_cpu
open Hbbp_analyzer
open Hbbp_collector

(** {1 Reconstruction quality}

    Graceful degradation: instead of aborting when the collected data is
    damaged or a channel is starved, the pipeline reconstructs what it
    can and labels the result.  [Full] means every channel passed its
    health thresholds and no archive faults were recorded; [Degraded]
    carries the complete list of reasons. *)

type degrade_reason =
  | Archive_fault of string
      (** A fault from the archive's salvage ledger
          ({!Hbbp_collector.Perf_data.fault}, rendered). *)
  | Lost_records of int
      (** The record stream reported ring-buffer loss ([Record.Lost]). *)
  | Ebs_starved of { samples : int; unattributed_share : float }
      (** EBS channel below {!thresholds.min_ebs_samples} or above
          {!thresholds.max_unattributed_share}. *)
  | Lbr_starved of { snapshots : int; failure_rate : float }
      (** LBR channel below {!thresholds.min_lbr_snapshots} or above
          {!thresholds.max_stream_failure}. *)
  | Fallback of [ `Ebs_only | `Lbr_only ]
      (** Exactly one channel was starved, so the fusion criteria were
          overridden to reconstruct from the healthy channel alone. *)
  | Flow_violation of {
      conservation_error : float;
      total_residual : float;
      worst_block : int option;  (** Global id of the worst offender. *)
    }
      (** The fused BBEC breaks Kirchhoff flow conservation on the CFG
          beyond {!thresholds.max_conservation_error}
          ({!Hbbp_verifier.Flow.check}): the reconstruction is
          internally inconsistent even though every channel passed its
          own health checks. *)

type quality = Full | Degraded of degrade_reason list

val pp_degrade_reason : Format.formatter -> degrade_reason -> unit
val pp_quality : Format.formatter -> quality -> unit

(** Channel-health thresholds that trip degradation (and, when exactly
    one channel is bad, single-channel fallback). *)
type thresholds = {
  min_ebs_samples : int;
  max_unattributed_share : float;
  min_lbr_snapshots : int;
  max_stream_failure : float;
  max_lost_records : int;
  max_conservation_error : float;
      (** Trip point for the {!Flow_violation} verdict.  The default
          (0.15) sits ~4x above the worst healthy sampled
          reconstruction of the bundled workloads (~0.035) while
          systematic corruption scores near 1. *)
}

val default_thresholds : thresholds

(** What {!finalize} does with the flow-conservation count-repair pass
    ({!Hbbp_verifier.Repair}): [Off] skips it; [Report] (the default)
    runs it and records the report on [r_repair] without touching the
    counts; [Apply] additionally replaces [r_hbbp] with the repaired
    BBEC.  The degradation verdict always reflects the {e pre}-repair
    flow check, so [Apply] cannot launder a corrupt reconstruction into
    a [Full] verdict. *)
type repair_mode = Off | Report | Apply

type config = {
  model : Pmu_model.t;
  criteria : Criteria.t;
  periods : [ `Auto | `Fixed of Period.pair ];
      (** [`Auto] uses the workload's runtime class (Table 4 policy). *)
  sde : Hbbp_instrument.Sde.config;
  max_instructions : int;
  count_events : Pmu_event.t list;
      (** Extra counting-mode events for cross-checking. *)
  thresholds : thresholds;
  keep_records : bool;
      (** Retain the raw record stream on {!profile.records}.  Default
          {b false} (breaking change): reconstruction state is bounded,
          so holding every record alive is opt-in.  [record_count] is
          always populated. *)
  engine : Machine.engine;
      (** Execution engine for the simulated runs.  All engines retire
          bit-identical streams; this only selects dispatch cost.
          Default {!Machine.default_engine} (superblock unless the
          [HBBP_ENGINE] environment variable overrides it). *)
  repair : repair_mode;
      (** Count-repair policy for every reconstruction this config
          drives.  Default {!Report}. *)
}

val default_config : config

type profile = {
  workload : Workload.t;
  config : config;
  stats : Machine.run_stats;
  pmu_health : Pmu.health;
      (** Sampling-health accounting of the session PMU: PMI count, skid
          displacement histogram, shadow slides, LBR snapshot/anomaly
          counts and dropped records. *)
  clean_cycles : int;
  static : Static.t;  (** Kernel-patched analysis view. *)
  static_unpatched : Static.t;  (** Raw on-disk view (kernel mismatch). *)
  reference : Bbec.t;  (** Instrumentation ground truth (user mode). *)
  reference_mix : (Mnemonic.t * float) list;
  ebs : Ebs_estimator.t;
  lbr : Lbr_estimator.t;
  bias : Bias.t;
  hbbp : Bbec.t;
  sim_periods : Period.pair;
  paper_periods : Period.pair;
  collection_overhead : float;  (** Fraction of clean runtime. *)
  sde_slowdown : float;  (** Instrumented / clean runtime factor. *)
  sde_total : int64;
  sde_lost_kernel : int;
  pmu_counts : (Pmu_event.t * int64) list;
  records : Record.t list;
      (** Raw record stream — [[]] unless {!config.keep_records}. *)
  record_count : int;  (** Records collected (kept or not). *)
  quality : quality;  (** Degradation verdict of the reconstruction. *)
  repair_report : Hbbp_verifier.Repair.report option;
      (** Count-repair report ([None] when {!config.repair} is [Off]).
          [hbbp] is the repaired BBEC iff the mode was [Apply]. *)
}

val run : ?config:config -> Workload.t -> profile

(** [run_many ?jobs workloads] — profile every workload, fanned out over
    a {!Hbbp_util.Domain_pool} of [jobs] domains (default: [HBBP_JOBS]
    or the host's recommended domain count).  Results come back in input
    order and are {b byte-identical} to sequential {!run} regardless of
    [jobs]: every machine, PMU, SDE and PRNG is private to one task and
    no mutable state crosses domains. *)
val run_many : ?jobs:int -> ?config:config -> Workload.t list -> profile list

(** {1 Offline analysis}

    The production split the paper describes: collection happens on the
    target machine; analysis later, from the archive alone (no ground
    truth available, so no error reports — just mixes). *)

(** Mergeable partial reconstruction state (the streaming core).  Feed
    record chunks in arrival order; merge partials built from contiguous
    shards; finalize into a {!reconstruction}.  The accumulators live in
    the integer domain, so [merge] is exact — one chunk, many chunks, or
    per-shard partials merged later are all {b bit-identical} after
    finalization. *)
module Partial : sig
  type t

  (** All partials destined to merge must share the {e same} [static]
      (physical equality is checked) and periods. *)
  val create :
    static:Static.t -> ebs_period:int -> lbr_period:int -> unit -> t

  (** Feed one record chunk (emits one telemetry span per chunk). *)
  val feed : t -> Record.t list -> unit

  (** Append archive-salvage faults to this partial's ledger; they reach
      the quality verdict at finalization. *)
  val note_faults : t -> Perf_data.fault list -> unit

  (** [merge a b] — [a]'s stream followed by [b]'s.  Pure; associative,
      and commutative up to ledger order.
      @raise Invalid_argument on static/period mismatch. *)
  val merge : t -> t -> t

  val static : t -> Static.t
  val ebs_period : t -> int
  val lbr_period : t -> int
  val record_count : t -> int
  val ebs_samples : t -> int
  val lbr_snapshots : t -> int
  val other_samples : t -> int
  val lost_records : t -> int
  val faults : t -> Perf_data.fault list

  (** {2 Checkpointing}

      A partial serializes to a versioned, CRC-guarded binary blob
      (the archive's v2 section framing over the accumulator state).
      The state is integer-domain throughout, so
      [restore ~static (serialize p)] rebuilds a partial that
      finalizes {e byte-identically} to [p] — the property [--resume]
      rests on. *)

  (** Serialize the full accumulator state (everything except the
      static view, which the restorer supplies). *)
  val serialize : t -> bytes

  (** [restore ~static data] — rebuild a partial over [static] (which
      must describe the same program the serialized partial was
      accumulated against — block counts are checked).  Returns a
      typed error on damage: bad magic/version, CRC mismatch,
      truncation, or a block-count mismatch. *)
  val restore : static:Static.t -> bytes -> (t, string) result
end

type reconstruction = {
  r_static : Static.t;
  r_ebs : Ebs_estimator.t;
  r_lbr : Lbr_estimator.t;
  r_bias : Bias.t;
  r_hbbp : Bbec.t;
  r_quality : quality;
  r_flow : Hbbp_verifier.Flow.report;
      (** Conservation check of the fused counts, {e before} any
          repair. *)
  r_repair : Hbbp_verifier.Repair.report option;
      (** Count-repair report ([None] when the repair mode is [Off]).
          [r_hbbp] is the repaired BBEC iff the mode was [Apply]. *)
  r_partial : Partial.t;
      (** The mergeable state this reconstruction was finalized from
          (enables {!merge_reconstructions}). *)
}

(** [finalize partial] — turn accumulated state into a reconstruction:
    estimator finalization, bias resolution, quality assessment over the
    partial's merged totals (ledger faults, lost records, channel
    starvation → fallback), fusion.  [replay] re-yields the partial's
    record stream for the bias contamination pass; it is only consulted
    when bias pass one flagged a branch, so clean streams stay
    single-pass.  With [replay] omitted, contamination is skipped
    ({!Hbbp_analyzer.Bias.finalize}).  [repair] selects the count-repair
    policy (default [Report]). *)
val finalize :
  ?criteria:Criteria.t ->
  ?thresholds:thresholds ->
  ?repair:repair_mode ->
  ?replay:((Record.t list -> unit) -> unit) ->
  Partial.t ->
  reconstruction

(** [reconstruct ~static ~ebs_period ~lbr_period records] — rebuild all
    three BBEC estimates from a raw record stream.

    [ledger] feeds archive faults discovered during loading into the
    quality verdict.  If exactly one channel fails its [thresholds], the
    fusion criteria are overridden to a single-channel rule and a
    [Fallback] reason is recorded; if both fail, [criteria] is kept
    (there is no better channel to prefer) and both starvation reasons
    are reported. *)
val reconstruct :
  ?criteria:Criteria.t ->
  ?thresholds:thresholds ->
  ?repair:repair_mode ->
  ?ledger:Perf_data.fault list ->
  static:Static.t ->
  ebs_period:int ->
  lbr_period:int ->
  Record.t list ->
  reconstruction

(** [reconstruct_stream ~static ~ebs_period ~lbr_period chunks] —
    chunked reconstruction: [chunks ()] yields record chunks until
    [None]; resident state is the accumulators plus one chunk.  [replay]
    must re-yield the same stream when provided (bias contamination,
    second pass — only taken when pass one flags).  Bit-identical to
    {!reconstruct} on the concatenated chunks. *)
val reconstruct_stream :
  ?criteria:Criteria.t ->
  ?thresholds:thresholds ->
  ?repair:repair_mode ->
  ?ledger:Perf_data.fault list ->
  ?replay:((Record.t list -> unit) -> unit) ->
  static:Static.t ->
  ebs_period:int ->
  lbr_period:int ->
  (unit -> Record.t list option) ->
  reconstruction

(** [merge_reconstructions a b] — re-finalize the merged partial state
    of two reconstructions over the same static view ([a]'s stream
    followed by [b]'s): estimates add exactly, and quality/fallback/bias
    are re-resolved over the {e combined} totals — merging two degraded
    shards can yield a [Full] result and vice versa.  [replay] re-yields
    the combined stream for bias contamination.
    @raise Invalid_argument when the partials don't share a static view
    or disagree on periods. *)
val merge_reconstructions :
  ?criteria:Criteria.t ->
  ?thresholds:thresholds ->
  ?repair:repair_mode ->
  ?replay:((Record.t list -> unit) -> unit) ->
  reconstruction ->
  reconstruction ->
  reconstruction

(** [collect_archive ?config workload] — run only the collection side and
    package it as a portable archive. *)
val collect_archive : ?config:config -> Workload.t -> Perf_data.t

(** [collect_many ?jobs workloads] — parallel {!collect_archive} with the
    same determinism guarantee as {!run_many}. *)
val collect_many :
  ?jobs:int -> ?config:config -> Workload.t list -> Perf_data.t list

(** [analyze_archive ?criteria ?thresholds ?ledger archive] — offline
    analysis of a loaded archive (applies the live-kernel-text patch
    from the archive).  Pass the salvage [ledger] returned by
    {!Hbbp_collector.Perf_data.load} so archive damage is reflected in
    [r_quality]. *)
val analyze_archive :
  ?criteria:Criteria.t ->
  ?thresholds:thresholds ->
  ?repair:repair_mode ->
  ?ledger:Perf_data.fault list ->
  Perf_data.t ->
  reconstruction

(** [analyze_archives paths] — streaming multi-archive analysis: each
    archive is chunk-streamed off disk ({!Perf_data.Stream}) into its
    own partial, partials merge in path order, and the result is
    finalized over the merged totals (salvage ledgers, lost records and
    channel thresholds included).  All archives must carry the same
    workload name and sampling periods — the shards
    {!Perf_data.save_sharded} writes do; the returned metadata (with
    [records = []]) comes from the first archive.  [Error] carries a
    rendered diagnostic (unreadable archive or shard metadata
    mismatch).  Bit-identical to loading everything and running batch
    {!analyze_archive} on the concatenated records.
    @raise Invalid_argument when [paths] is empty. *)
val analyze_archives :
  ?criteria:Criteria.t ->
  ?thresholds:thresholds ->
  ?repair:repair_mode ->
  ?chunk_records:int ->
  string list ->
  (Perf_data.t * reconstruction, string) result

(** {1 Derived views} *)

(** [mix_of profile method] — user-mode instruction mix of the given
    BBEC method. *)
val mix_of : profile -> Bbec.t -> Mix.t

(** Mix including kernel blocks (what only PMU methods can see). *)
val full_mix_of : profile -> Bbec.t -> Mix.t

(** [error_report profile bbec] — user-mode mnemonic mix of [bbec]
    compared against the instrumentation reference. *)
val error_report : profile -> Bbec.t -> Error.report

(** Feature vector of a block (uses this profile's bias and EBS data). *)
val features : profile -> int -> float array

(** Instrumentation total vs PMU counting-mode instruction count
    (paper section VII.B); the relative difference should be tiny unless
    the instrumentation tool is buggy. *)
val sde_pmu_discrepancy : profile -> float
