open Hbbp_analyzer
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics

type example = { features : float array; label : int; weight : float }

let examples ?(min_exec = 100.0) (p : Pipeline.profile) =
  let out = ref [] in
  Static.iter
    (fun gid _ _ ->
      let truth = Bbec.count p.reference gid in
      if truth >= min_exec then begin
        let ebs_est = Bbec.count p.ebs.Ebs_estimator.bbec gid in
        let lbr_est = Bbec.count p.lbr.Lbr_estimator.bbec gid in
        if ebs_est > 0.0 || lbr_est > 0.0 then begin
          let ebs_err = Float.abs (ebs_est -. truth) in
          let lbr_err = Float.abs (lbr_est -. truth) in
          let label =
            if ebs_err <= lbr_err then Criteria.class_ebs else Criteria.class_lbr
          in
          out :=
            { features = Pipeline.features p gid; label; weight = truth }
            :: !out
        end
      end)
    p.static;
  List.rev !out

let dataset examples =
  let n = List.length examples in
  let features = Array.make n [||] in
  let labels = Array.make n 0 in
  let weights = Array.make n 0.0 in
  List.iteri
    (fun k e ->
      features.(k) <- e.features;
      labels.(k) <- e.label;
      weights.(k) <- e.weight)
    examples;
  Hbbp_mltree.Dataset.create ~feature_names:Feature.names
    ~class_names:Criteria.class_names ~features ~labels ~weights

let train ?params ?min_exec profiles =
  let all =
    Trace.with_span ~cat:"train" "training.examples" (fun () ->
        List.concat_map (fun p -> examples ?min_exec p) profiles)
  in
  let d = dataset all in
  if Metrics.enabled () then
    Metrics.add (Metrics.counter "training.examples") (List.length all);
  let tree =
    Trace.with_span ~cat:"train" "training.cart_train" (fun () ->
        Hbbp_mltree.Cart.train ?params d)
  in
  (tree, d)

let build ?jobs ?params ?min_exec workloads =
  Trace.with_span ~cat:"train" "training.build" @@ fun () ->
  train ?params ?min_exec (Pipeline.run_many ?jobs workloads)

let learned_cutoff tree =
  match Hbbp_mltree.Cart.root_split tree with
  | Some (feature, threshold) when feature = Feature.index_block_length ->
      Some threshold
  | Some _ | None -> None
