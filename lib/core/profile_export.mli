(** Compiler-consumable profile artifact: the reconstructed (and
    optionally repaired) block counts serialized as the
    LLVM-profdata-shaped JSON a PGO consumer wants — per-function block
    weights plus branch probabilities — rather than the instruction-mix
    views the rest of the repo reports.

    {1 Schema (version 1)}

    {v
    {
      "schema_version": 1,
      "format": "hbbp-pgo",
      "workload": "<name>",
      "method": "EBS" | "LBR" | "HBBP" | "SDE",
      "total_flow": <float>,            // sum of all block counts
      "repair": null | {
        "applied": <bool>,              // counts are the repaired ones
        "converged": <bool>,
        "iterations": <int>,
        "adjusted_blocks": <int>,
        "moved_mass": <float>,
        "pre_conservation_error": <float>,
        "post_conservation_error": <float>
      },
      "functions": [
        {
          "name": "<symbol or image name>",
          "image": "<image name>",
          "ring": "user" | "kernel",
          "entry_address": <int>,
          "entry_count": <float>,       // count of the entry block (0 if
                                        // the entry is not a block start)
          "total_count": <float>,       // sum over the function's blocks
          "blocks": [
            { "address": <int>, "instructions": <int>, "count": <float> }
          ],
          "branches": [
            { "address": <int>,         // the branch instruction
              "taken_target": <int>,
              "taken": <float>,         // counts of the two successor
              "not_taken": <float>,     //   blocks (flow estimate)
              "probability": <float> }  // taken / (taken + not_taken),
                                        // 0.5 when both are zero
          ]
        }
      ]
    }
    v}

    Blocks outside every symbol are grouped under a pseudo-function
    named after their image.  Functions appear in image order then
    ascending entry address; blocks and branches in ascending address —
    the output is byte-stable for a given (static, bbec) pair. *)

open Hbbp_analyzer

val schema_version : int

(** [to_json ?workload ?repair static bbec] — render the artifact.
    [repair] is [(applied, report)]: the {!Hbbp_verifier.Repair} report
    to embed, with [applied] telling the consumer whether [bbec] is the
    repaired vector or merely a checked one. *)
val to_json :
  ?workload:string ->
  ?repair:bool * Hbbp_verifier.Repair.report ->
  Static.t ->
  Bbec.t ->
  string
