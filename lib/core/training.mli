(** The HBBP criteria search (paper section IV.B).

    Training examples are basic blocks from (non-SPEC) training
    workloads.  Each block is labelled "EBS" or "LBR" according to which
    estimate lands closer to the instrumentation ground truth, and
    weighted by its execution count.  A classification tree fit to these
    examples yields the decision criteria; on the shipped model the root
    split lands on block length with a cutoff near 18. *)

type example = {
  features : float array;
  label : int;  (** {!Criteria.class_ebs} or {!Criteria.class_lbr}. *)
  weight : float;
}

(** [examples profile] — labelled blocks of one profiled workload.
    Blocks whose reference count is below [min_exec] (default 100) carry
    too much sampling noise to label and are skipped, as are blocks
    neither method saw. *)
val examples : ?min_exec:float -> Pipeline.profile -> example list

val dataset : example list -> Hbbp_mltree.Dataset.t

(** [train profiles] — fit a tree over all examples of all profiles. *)
val train :
  ?params:Hbbp_mltree.Cart.params ->
  ?min_exec:float ->
  Pipeline.profile list ->
  Hbbp_mltree.Cart.t * Hbbp_mltree.Dataset.t

(** [build workloads] — profile the training workloads (in parallel over
    [jobs] domains, see {!Pipeline.run_many}) and fit the criteria tree.
    The profiling dominates the cost of the criteria search; the tree is
    identical for every [jobs]. *)
val build :
  ?jobs:int ->
  ?params:Hbbp_mltree.Cart.params ->
  ?min_exec:float ->
  Workload.t list ->
  Hbbp_mltree.Cart.t * Hbbp_mltree.Dataset.t

(** [learned_cutoff tree] — the root-split threshold when the root splits
    on block length (the paper's headline finding). *)
val learned_cutoff : Hbbp_mltree.Cart.t -> float option
