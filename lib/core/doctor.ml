(* Parallel-efficiency attribution for the sharded analysis path.

   The observed problem (ROADMAP): fanning the analysis out over
   domains can be *slower* than running it sequentially.  The doctor
   turns that one number into an attribution: it collects one archive,
   shards it, then replays the shard-stream → merge → finalize path at
   every job count from 1 to N, measuring per run

   - wall clock, split into the parallel stream phase and the serial
     merge+finalize tail (the Amdahl term);
   - per-worker busy/wait from the pool's own accounting, giving
     utilization and busy-time imbalance;
   - per-domain GC activity, bracketed around each task with
     domain-local [Gc.quick_stat] (OCaml gives no GC *time*, so event
     and word counts are the honest attribution unit);
   - task-size statistics from the per-task wall clocks;
   - the top allocation sites by span, from the runtime profiler's
     exclusive [alloc.span.*.words] accounting.

   Every job count must produce the identical reconstruction (the
   pool's determinism contract); the doctor cross-checks that too. *)

open Hbbp_analyzer
open Hbbp_collector
module Pool = Hbbp_util.Domain_pool
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics
module Runtime_profiler = Hbbp_telemetry.Runtime_profiler

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Report types                                                        *)

type domain_gc = {
  dg_domain : int;  (** Runtime domain id ([Domain.self]). *)
  dg_tasks : int;
  dg_busy_s : float;  (** Sum of this domain's task wall clocks. *)
  dg_minor : int;
  dg_major : int;
  dg_allocated_words : float;
}

type jobs_run = {
  jr_jobs : int;
  jr_wall_s : float;
  jr_stream_s : float;
  jr_merge_s : float;
  jr_speedup : float;
  jr_efficiency : float;
  jr_utilization : float;
  jr_imbalance : float;
  jr_task_mean_s : float;
  jr_task_max_s : float;
  jr_domains : domain_gc list;
}

type alloc_site = { site_span : string; site_words : int }

type report = {
  rep_workload : string;
  rep_shards : int;
  rep_records : int;
  rep_runs : jobs_run list;
  rep_consistent : bool;
  rep_degraded : bool;
  rep_sampler : string;
  rep_alloc_sites : alloc_site list;
}

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

let allocated_words (s : Gc.stat) =
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* Stream one shard into a fresh partial.  The static view is shared
   (immutable) so merged partials satisfy [Partial.merge]'s physical
   equality check. *)
let partial_of_shard ~static ~ebs_period ~lbr_period path =
  match Perf_data.Stream.open_file path with
  | Error e ->
      failwith (Format.asprintf "doctor: %s: %a" path Perf_data.pp_error e)
  | Ok s ->
      Fun.protect
        ~finally:(fun () -> Perf_data.Stream.close s)
        (fun () ->
          let p = Pipeline.Partial.create ~static ~ebs_period ~lbr_period () in
          let rec pump () =
            match Perf_data.Stream.next s with
            | Some chunk ->
                Pipeline.Partial.feed p chunk;
                pump ()
            | None -> ()
          in
          pump ();
          Pipeline.Partial.note_faults p (Perf_data.Stream.ledger s);
          p)

(* Bias-contamination replay over the shard files, same as
   [Pipeline.analyze_archives] uses — only consulted when pass one
   flagged a branch. *)
let replay_paths paths f =
  List.iter
    (fun path ->
      match Perf_data.Stream.open_file path with
      | Error _ -> ()
      | Ok s ->
          Fun.protect
            ~finally:(fun () -> Perf_data.Stream.close s)
            (fun () ->
              let rec pump () =
                match Perf_data.Stream.next s with
                | Some chunk ->
                    f chunk;
                    pump ()
                | None -> ()
              in
              pump ()))
    paths

(* One full analysis pass at a given job count.  Returns the
   reconstruction plus everything measured on the way. *)
let analyze_at ~static ~ebs_period ~lbr_period ~paths ~jobs =
  Trace.with_span ~cat:"doctor"
    ~args:[ ("jobs", string_of_int jobs) ]
    "analyze"
  @@ fun () ->
  (* Per-task measurements: (domain id, wall s, quick_stat before/after).
     Appended under a lock from whichever domain ran the task. *)
  let task_lock = Mutex.create () in
  let task_log : (int * float * Gc.stat * Gc.stat) list ref = ref [] in
  let t0 = now () in
  let partials, worker_stats =
    Pool.with_pool ~jobs (fun pool ->
        let ps =
          Pool.map pool
            (fun path ->
              let dom = (Domain.self () :> int) in
              let g0 = Gc.quick_stat () in
              let w0 = now () in
              let p = partial_of_shard ~static ~ebs_period ~lbr_period path in
              let w1 = now () in
              let g1 = Gc.quick_stat () in
              Mutex.lock task_lock;
              task_log := (dom, w1 -. w0, g0, g1) :: !task_log;
              Mutex.unlock task_lock;
              p)
            paths
        in
        (ps, Pool.stats pool))
  in
  let t_stream = now () in
  let merged =
    match partials with
    | p :: rest -> List.fold_left Pipeline.Partial.merge p rest
    | [] -> invalid_arg "Doctor: no shards"
  in
  let r = Pipeline.finalize ~replay:(replay_paths paths) merged in
  let t1 = now () in
  (* Busy-time imbalance over the workers that actually ran tasks: the
     even-partition ideal is 1.0; the serial bottleneck worker shows up
     as max/mean > 1. *)
  let active =
    List.filter
      (fun (s : Pool.worker_stats) -> s.Pool.tasks > 0)
      (Array.to_list worker_stats)
  in
  let busy = List.map (fun (s : Pool.worker_stats) -> s.Pool.busy_s) active in
  let wait = List.map (fun (s : Pool.worker_stats) -> s.Pool.wait_s) active in
  let sum = List.fold_left ( +. ) 0.0 in
  let imbalance =
    match busy with
    | [] -> 1.0
    | _ ->
        let mean = sum busy /. float_of_int (List.length busy) in
        if mean <= 0.0 then 1.0
        else List.fold_left Float.max 0.0 busy /. mean
  in
  let utilization =
    let b = sum busy and w = sum wait in
    if b +. w <= 0.0 then 1.0 else b /. (b +. w)
  in
  let walls = List.map (fun (_, w, _, _) -> w) !task_log in
  let task_mean =
    match walls with
    | [] -> 0.0
    | _ -> sum walls /. float_of_int (List.length walls)
  in
  let task_max = List.fold_left Float.max 0.0 walls in
  (* Aggregate GC deltas by the domain that ran the task. *)
  let by_domain = Hashtbl.create 8 in
  List.iter
    (fun (dom, wall, g0, g1) ->
      let cur =
        match Hashtbl.find_opt by_domain dom with
        | Some c -> c
        | None ->
            {
              dg_domain = dom;
              dg_tasks = 0;
              dg_busy_s = 0.0;
              dg_minor = 0;
              dg_major = 0;
              dg_allocated_words = 0.0;
            }
      in
      Hashtbl.replace by_domain dom
        {
          cur with
          dg_tasks = cur.dg_tasks + 1;
          dg_busy_s = cur.dg_busy_s +. wall;
          dg_minor =
            cur.dg_minor + g1.Gc.minor_collections - g0.Gc.minor_collections;
          dg_major =
            cur.dg_major + g1.Gc.major_collections - g0.Gc.major_collections;
          dg_allocated_words =
            cur.dg_allocated_words +. allocated_words g1
            -. allocated_words g0;
        })
    !task_log;
  let domains =
    List.sort
      (fun a b -> compare a.dg_domain b.dg_domain)
      (Hashtbl.fold (fun _ v acc -> v :: acc) by_domain [])
  in
  ( r,
    {
      jr_jobs = jobs;
      jr_wall_s = t1 -. t0;
      jr_stream_s = t_stream -. t0;
      jr_merge_s = t1 -. t_stream;
      (* Filled in relative to the jobs=1 run afterwards. *)
      jr_speedup = 1.0;
      jr_efficiency = 1.0;
      jr_utilization = utilization;
      jr_imbalance = imbalance;
      jr_task_mean_s = task_mean;
      jr_task_max_s = task_max;
      jr_domains = domains;
    } )

(* Exclusive per-span allocation deltas between two registry
   snapshots. *)
let alloc_sites_between ~before ~after =
  let words_of snap =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Metrics.Counter n
          when String.starts_with ~prefix:"alloc.span." name
               && Filename.check_suffix name ".words" ->
            let span =
              String.sub name 11 (String.length name - 11 - 6)
            in
            Some (span, n)
        | _ -> None)
      snap
  in
  let base = words_of before in
  List.filter_map
    (fun (span, n) ->
      let n0 =
        match List.assoc_opt span base with Some n0 -> n0 | None -> 0
      in
      if n - n0 > 0 then Some { site_span = span; site_words = n - n0 }
      else None)
    (words_of after)
  |> List.sort (fun a b -> compare b.site_words a.site_words)

let default_max_jobs () = min 4 (Domain.recommended_domain_count ())

let run ?max_jobs ?shards ?config (w : Workload.t) =
  let max_jobs =
    match max_jobs with Some n -> max 1 n | None -> default_max_jobs ()
  in
  let shards = match shards with Some n -> max 1 n | None -> 2 * max_jobs in
  Trace.with_span ~cat:"doctor"
    ~args:[ ("workload", w.Workload.name) ]
    "doctor"
  @@ fun () ->
  (* The profiler and registry feed the allocation-site table; remember
     what was already on so the doctor restores rather than tears down
     someone else's observability. *)
  let metrics_were_on = Metrics.enabled () in
  let profiler_was_on = Runtime_profiler.enabled () in
  Metrics.enable ();
  Runtime_profiler.enable ();
  let sampler = Runtime_profiler.arm_sampler () in
  Fun.protect
    ~finally:(fun () ->
      Runtime_profiler.disarm_sampler ();
      if not profiler_was_on then Runtime_profiler.disable ();
      if not metrics_were_on then Metrics.disable ())
  @@ fun () ->
  let archive =
    Trace.with_span ~cat:"doctor" "collect" (fun () ->
        match Pipeline.collect_many ~jobs:1 ?config [ w ] with
        | [ a ] -> a
        | _ -> assert false)
  in
  let base = Filename.temp_file "hbbp-doctor" ".hbbp" in
  let paths = Perf_data.save_sharded archive ~shards ~path:base in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (List.sort_uniq compare (base :: paths)))
  @@ fun () ->
  let static = Static.create_exn (Perf_data.analysis_process archive) in
  let ebs_period = archive.Perf_data.ebs_period in
  let lbr_period = archive.Perf_data.lbr_period in
  let before = Metrics.snapshot () in
  let results =
    List.init max_jobs (fun k ->
        analyze_at ~static ~ebs_period ~lbr_period ~paths ~jobs:(k + 1))
  in
  let after = Metrics.snapshot () in
  let t1 =
    match results with (_, jr) :: _ -> jr.jr_wall_s | [] -> assert false
  in
  let runs =
    List.map
      (fun (_, jr) ->
        let j = float_of_int jr.jr_jobs in
        {
          jr with
          jr_speedup = (if jr.jr_wall_s > 0.0 then t1 /. jr.jr_wall_s else 1.0);
          jr_efficiency =
            (if jr.jr_wall_s > 0.0 then t1 /. (j *. jr.jr_wall_s) else 1.0);
        })
      results
  in
  let counts (r : Pipeline.reconstruction) = r.Pipeline.r_hbbp.Bbec.counts in
  let consistent =
    match results with
    | (r0, _) :: rest ->
        List.for_all (fun (r, _) -> compare (counts r0) (counts r) = 0) rest
    | [] -> true
  in
  let degraded =
    match results with
    | (r, _) :: _ -> (
        match r.Pipeline.r_quality with
        | Pipeline.Full -> false
        | Pipeline.Degraded _ -> true)
    | [] -> false
  in
  {
    rep_workload = w.Workload.name;
    rep_shards = shards;
    rep_records = List.length archive.Perf_data.records;
    rep_runs = runs;
    rep_consistent = consistent;
    rep_degraded = degraded;
    rep_sampler = Runtime_profiler.sampler_mode_name sampler;
    rep_alloc_sites = alloc_sites_between ~before ~after;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (r : report) =
  let buf = Buffer.create 1024 in
  let run_json (jr : jobs_run) =
    Printf.sprintf
      "{\"jobs\":%d,\"wall_s\":%.6f,\"stream_s\":%.6f,\"merge_s\":%.6f,\"speedup\":%.4f,\"efficiency\":%.4f,\"utilization\":%.4f,\"imbalance\":%.4f,\"task_mean_s\":%.6f,\"task_max_s\":%.6f,\"domains\":[%s]}"
      jr.jr_jobs jr.jr_wall_s jr.jr_stream_s jr.jr_merge_s jr.jr_speedup
      jr.jr_efficiency jr.jr_utilization jr.jr_imbalance jr.jr_task_mean_s
      jr.jr_task_max_s
      (String.concat ","
         (List.map
            (fun d ->
              Printf.sprintf
                "{\"domain\":%d,\"tasks\":%d,\"busy_s\":%.6f,\"minor_collections\":%d,\"major_collections\":%d,\"allocated_words\":%.0f}"
                d.dg_domain d.dg_tasks d.dg_busy_s d.dg_minor d.dg_major
                d.dg_allocated_words)
            jr.jr_domains))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"workload\":\"%s\",\"shards\":%d,\"records\":%d,\"sampler\":\"%s\",\"consistent\":%b,\"degraded\":%b,\"runs\":[%s],\"alloc_sites\":[%s]}"
       (escape r.rep_workload) r.rep_shards r.rep_records
       (escape r.rep_sampler) r.rep_consistent r.rep_degraded
       (String.concat "," (List.map run_json r.rep_runs))
       (String.concat ","
          (List.map
             (fun s ->
               Printf.sprintf "{\"span\":\"%s\",\"words\":%d}"
                 (escape s.site_span) s.site_words)
             r.rep_alloc_sites)));
  Buffer.contents buf

let pp ppf (r : report) =
  Format.fprintf ppf
    "doctor: workload %s, %d records over %d shard(s); sampler %s@."
    r.rep_workload r.rep_records r.rep_shards r.rep_sampler;
  Format.fprintf ppf "  %4s %9s %9s %9s %8s %11s %12s %10s@." "jobs" "wall s"
    "stream s" "merge s" "speedup" "efficiency" "utilization" "imbalance";
  List.iter
    (fun jr ->
      Format.fprintf ppf "  %4d %9.4f %9.4f %9.4f %8.3f %11.3f %12.3f %10.3f@."
        jr.jr_jobs jr.jr_wall_s jr.jr_stream_s jr.jr_merge_s jr.jr_speedup
        jr.jr_efficiency jr.jr_utilization jr.jr_imbalance)
    r.rep_runs;
  (match
     List.find_opt (fun jr -> jr.jr_jobs = List.length r.rep_runs) r.rep_runs
   with
  | Some last when last.jr_domains <> [] ->
      Format.fprintf ppf "  per-domain GC at -j %d:@." last.jr_jobs;
      List.iter
        (fun d ->
          Format.fprintf ppf
            "    domain %-3d %5d task(s) %8.4fs busy, %6d minor / %4d major \
             collections, %.0f words@."
            d.dg_domain d.dg_tasks d.dg_busy_s d.dg_minor d.dg_major
            d.dg_allocated_words)
        last.jr_domains
  | _ -> ());
  (match r.rep_alloc_sites with
  | [] -> ()
  | sites ->
      Format.fprintf ppf "  top allocation sites by span:@.";
      List.iteri
        (fun k s ->
          if k < 8 then
            Format.fprintf ppf "    %-20s %12d words@." s.site_span
              s.site_words)
        sites);
  Format.fprintf ppf "  reconstruction: %s, %s@."
    (if r.rep_consistent then "identical at every job count"
     else "INCONSISTENT ACROSS JOB COUNTS")
    (if r.rep_degraded then "degraded" else "full quality")
