(** Parallel-efficiency attribution for the sharded analysis path
    ([hbbp doctor]).

    {!run} collects one archive, shards it, then replays the
    shard-stream → merge → finalize analysis at every job count from 1
    to [max_jobs], measuring where the wall clock goes: the parallel
    stream phase vs the serial merge tail, per-worker busy/wait
    (utilization, busy-time imbalance), per-domain GC activity
    (domain-local [Gc.quick_stat] bracketed around each task — OCaml
    exposes GC event/word counts, not GC time, so counts are the
    attribution unit), task-size statistics, and the runtime profiler's
    exclusive per-span allocation accounting.

    The doctor also cross-checks the pool's determinism contract: every
    job count must produce an identical reconstruction
    ([rep_consistent]). *)

type domain_gc = {
  dg_domain : int;  (** Runtime domain id ([Domain.self]). *)
  dg_tasks : int;
  dg_busy_s : float;  (** Sum of this domain's task wall clocks. *)
  dg_minor : int;  (** Minor collections during this domain's tasks. *)
  dg_major : int;
  dg_allocated_words : float;
}

(** One analysis pass at a fixed job count. *)
type jobs_run = {
  jr_jobs : int;
  jr_wall_s : float;  (** Stream + merge + finalize, end to end. *)
  jr_stream_s : float;  (** Parallel shard-stream phase. *)
  jr_merge_s : float;  (** Serial merge + finalize tail (Amdahl term). *)
  jr_speedup : float;  (** [t1 / tj]. *)
  jr_efficiency : float;  (** [t1 / (jobs * tj)]; 1.0 is perfect scaling. *)
  jr_utilization : float;  (** busy / (busy + wait) over active workers. *)
  jr_imbalance : float;
      (** max worker busy / mean worker busy; 1.0 is a perfectly even
          partition. *)
  jr_task_mean_s : float;
  jr_task_max_s : float;
  jr_domains : domain_gc list;  (** Sorted by domain id. *)
}

type alloc_site = { site_span : string; site_words : int }

type report = {
  rep_workload : string;
  rep_shards : int;
  rep_records : int;
  rep_runs : jobs_run list;  (** In job-count order, 1 first. *)
  rep_consistent : bool;
      (** Every job count reconstructed identical HBBP counts. *)
  rep_degraded : bool;  (** The reconstruction's quality verdict. *)
  rep_sampler : string;  (** Allocation sampler mode actually armed. *)
  rep_alloc_sites : alloc_site list;
      (** Spans by exclusive words allocated, descending. *)
}

(** [run workload] — collect, shard and attribute.  [max_jobs] defaults
    to [min 4 recommended_domain_count]; [shards] to [2 * max_jobs].
    Enables the metrics registry and runtime profiler for the duration
    if they were off, and restores them after. *)
val run :
  ?max_jobs:int -> ?shards:int -> ?config:Pipeline.config -> Workload.t ->
  report

(** Single JSON object, no trailing newline. *)
val to_json : report -> string

val pp : Format.formatter -> report -> unit
