(* Resumable collection and analysis.

   Collection: `collect_sharded` is `collect + save_sharded` with a
   progressive manifest and per-shard byte comparison, so an
   interrupted run re-publishes only what is missing or torn — and a
   complete verified manifest skips the collection entirely.
   Correctness rests on determinism: a collection is a pure function
   of (workload, config), so re-collected shard bytes are identical
   to what the interrupted run would have written.

   Analysis: `analyze_archives` is Pipeline.analyze_archives with a
   checkpoint after every consumed archive.  Partials merge
   associatively over integers, so restoring the merged prefix and
   folding the remaining archives finalizes byte-identically to an
   uninterrupted run. *)

open Hbbp_analyzer
open Hbbp_collector
module Durable = Hbbp_durable.Durable
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics

exception Interrupted

let () =
  Printexc.register_printer (function
    | Interrupted -> Some "Recover.Interrupted"
    | _ -> None)

let c name n = Metrics.add (Metrics.counter name) n

(* ------------------------------------------------------------------ *)
(* Resumable sharded collection                                        *)

type shard_status = Reused | Written

let shard_paths ~shards ~path =
  if shards = 1 then [ path ]
  else List.init shards (fun i -> Perf_data.shard_path path i shards)

(* All shards the manifest names verify on disk and the set is
   complete for the requested sharding. *)
let manifest_complete ~dir ~shards m =
  m.Manifest.complete && m.Manifest.shards = shards
  && List.length m.Manifest.written = shards
  && List.for_all (Manifest.shard_ok ~dir) m.Manifest.written

let collect_sharded ?config ?version ?(resume = false)
    ?(should_stop = fun () -> false) ?(inter_shard_delay_s = 0.0) ~shards
    ~path (w : Workload.t) =
  if shards < 1 then invalid_arg "Recover.collect_sharded: shards < 1";
  let dir = Filename.dirname path in
  let paths = shard_paths ~shards ~path in
  let fast_path =
    if not resume then None
    else
      match Manifest.load ~archive_path:path with
      | Some (Ok m) when manifest_complete ~dir ~shards m -> Some m
      | Some (Ok _) | Some (Error _) | None -> None
  in
  match fast_path with
  | Some _ ->
      (* The previous run finished publishing: nothing to redo. *)
      c "recover.manifest_hits" 1;
      c "recover.shards_reused" shards;
      (paths, List.map (fun _ -> Reused) paths)
  | None ->
      if resume then begin
        c "recover.resumes" 1;
        (* Interrupted writes may have left staging files behind. *)
        List.iter
          (fun p -> ignore (Durable.remove_stale ~path:p))
          (path :: Manifest.path_for path :: paths)
      end;
      let archive = Pipeline.collect_archive ?config w in
      let parts = Perf_data.sharded_bytes ?version archive ~shards ~path in
      let written = ref [] in
      let save_manifest ~complete =
        Manifest.save
          {
            Manifest.label = w.Workload.name;
            shards;
            written = List.rev !written;
            complete;
          }
          ~archive_path:path
      in
      let statuses =
        List.mapi
          (fun i (p, data) ->
            if should_stop () then begin
              save_manifest ~complete:false;
              raise Interrupted
            end;
            if inter_shard_delay_s > 0.0 && i > 0 then
              Unix.sleepf inter_shard_delay_s;
            let status =
              let reusable =
                resume
                &&
                match In_channel.with_open_bin p In_channel.input_all with
                | exception Sys_error _ -> false
                | existing -> String.equal existing (Bytes.to_string data)
              in
              if reusable then begin
                c "recover.shards_reused" 1;
                Reused
              end
              else begin
                Durable.write_bytes ~path:p data;
                if resume then c "recover.shards_rewritten" 1;
                Written
              end
            in
            written :=
              Manifest.shard_of_bytes ~index:i ~file:(Filename.basename p)
                data
              :: !written;
            save_manifest ~complete:false;
            status)
          parts
      in
      save_manifest ~complete:true;
      (paths, statuses)

(* ------------------------------------------------------------------ *)
(* Checkpointed streaming analysis                                     *)

let default_checkpoint_every = 1

(* One archive streamed into a fresh partial over the shared static
   view — the same fold Pipeline.analyze_archives performs, via the
   public Stream API. *)
let partial_of_path ?chunk_records ~static ~meta0 path =
  let render e = Format.asprintf "%a" Perf_data.pp_error e in
  Trace.with_span ~cat:"analyze" ~args:[ ("path", path) ] "archive"
  @@ fun () ->
  match Perf_data.Stream.open_file ?chunk_records path with
  | Error e -> Error (Printf.sprintf "%s: %s" path (render e))
  | Ok s ->
      Fun.protect
        ~finally:(fun () -> Perf_data.Stream.close s)
        (fun () ->
          let m = Perf_data.Stream.meta s in
          if
            m.Perf_data.workload_name <> meta0.Perf_data.workload_name
            || m.Perf_data.ebs_period <> meta0.Perf_data.ebs_period
            || m.Perf_data.lbr_period <> meta0.Perf_data.lbr_period
          then
            Error
              (Printf.sprintf
                 "%s: shard metadata mismatch (workload %S, periods %d/%d; \
                  expected %S, %d/%d)"
                 path m.Perf_data.workload_name m.Perf_data.ebs_period
                 m.Perf_data.lbr_period meta0.Perf_data.workload_name
                 meta0.Perf_data.ebs_period meta0.Perf_data.lbr_period)
          else begin
            let p =
              Pipeline.Partial.create ~static
                ~ebs_period:m.Perf_data.ebs_period
                ~lbr_period:m.Perf_data.lbr_period ()
            in
            let rec pump () =
              match Perf_data.Stream.next s with
              | Some chunk ->
                  Pipeline.Partial.feed p chunk;
                  pump ()
              | None -> ()
            in
            pump ();
            Pipeline.Partial.note_faults p (Perf_data.Stream.ledger s);
            Ok p
          end)

(* [prefix_of done_paths paths] — [Some rest] when [done_paths] is a
   prefix of [paths] (the checkpoint matches this invocation). *)
let rec prefix_of done_paths paths =
  match (done_paths, paths) with
  | [], rest -> Some rest
  | d :: ds, p :: ps when String.equal d p -> prefix_of ds ps
  | _ -> None

let analyze_archives ?criteria ?thresholds ?repair ?chunk_records
    ?(checkpoint_every = default_checkpoint_every) ?(resume = false)
    ?(should_stop = fun () -> false) ~checkpoint paths =
  if paths = [] then invalid_arg "Recover.analyze_archives: no archives";
  if checkpoint_every < 1 then
    invalid_arg "Recover.analyze_archives: checkpoint_every < 1";
  let ( let* ) = Result.bind in
  (* Metadata and the shared static view always come from the first
     archive, resumed or not — restore needs the same static instance
     every partial merges against. *)
  let* meta0, static =
    match Perf_data.Stream.open_file ?chunk_records (List.hd paths) with
    | Error e ->
        Error
          (Format.asprintf "%s: %a" (List.hd paths) Perf_data.pp_error e)
    | Ok s ->
        Fun.protect
          ~finally:(fun () -> Perf_data.Stream.close s)
          (fun () ->
            let m = Perf_data.Stream.meta s in
            Ok (m, Static.create_exn (Perf_data.analysis_process m)))
  in
  (* A checkpoint is trusted only when it loads cleanly, restores
     cleanly, and names a prefix of the requested paths; anything else
     falls back to a full run (a resume must never produce different
     bytes than the uninterrupted analysis). *)
  let restored =
    if not resume then None
    else
      match Checkpoint.load ~path:checkpoint with
      | None -> None
      | Some (Error _) -> None
      | Some (Ok ck) -> (
          match prefix_of ck.Checkpoint.done_paths paths with
          | None -> None
          | Some rest -> (
              match ck.Checkpoint.done_paths with
              | [] -> None
              | _ -> (
                  match
                    Pipeline.Partial.restore ~static ck.Checkpoint.partial
                  with
                  | Error _ -> None
                  | Ok p ->
                      c "checkpoint.restores" 1;
                      Some (ck.Checkpoint.done_paths, p, rest))))
  in
  let done_rev, merged, rest =
    match restored with
    | Some (done_paths, p, rest) -> (List.rev done_paths, Some p, rest)
    | None -> ([], None, paths)
  in
  let done_rev = ref done_rev and merged = ref merged in
  let since_checkpoint = ref 0 in
  let save_checkpoint () =
    match !merged with
    | None -> ()
    | Some p ->
        Checkpoint.save
          {
            Checkpoint.done_paths = List.rev !done_rev;
            partial = Pipeline.Partial.serialize p;
          }
          ~path:checkpoint;
        since_checkpoint := 0
  in
  let* () =
    List.fold_left
      (fun acc path ->
        let* () = acc in
        if should_stop () then begin
          save_checkpoint ();
          raise Interrupted
        end;
        let* p = partial_of_path ?chunk_records ~static ~meta0 path in
        (merged :=
           match !merged with
           | None -> Some p
           | Some m -> Some (Pipeline.Partial.merge m p));
        done_rev := path :: !done_rev;
        incr since_checkpoint;
        if !since_checkpoint >= checkpoint_every then save_checkpoint ();
        Ok ())
      (Ok ()) rest
  in
  match !merged with
  | None -> Error "no archives were analyzed"
  | Some m ->
      (* Bias contamination second pass over the combined stream —
         identical to Pipeline.analyze_archives. *)
      let replay f =
        List.iter
          (fun path ->
            match Perf_data.Stream.open_file ?chunk_records path with
            | Error _ -> ()
            | Ok s ->
                Fun.protect
                  ~finally:(fun () -> Perf_data.Stream.close s)
                  (fun () ->
                    let rec pump () =
                      match Perf_data.Stream.next s with
                      | Some chunk ->
                          f chunk;
                          pump ()
                      | None -> ()
                    in
                    pump ()))
          paths
      in
      let r = Pipeline.finalize ?criteria ?thresholds ?repair ~replay m in
      Checkpoint.remove ~path:checkpoint;
      Ok (meta0, r)
