open Hbbp_isa
open Hbbp_analyzer

let pp_pct ppf v = Format.fprintf ppf "%.2f%%" (v *. 100.0)

let summary ppf (p : Pipeline.profile) =
  Format.fprintf ppf
    "@[<v>workload %s: %d instructions, %d cycles, %d taken branches, %d \
     kernel-mode@,\
     collection: EBS period %d / LBR period %d (sim), overhead %a (paper \
     periods %d / %d)@,\
     instrumentation: slowdown %.2fx, %Ld counted, %d kernel lost@,\
     LBR: %d snapshots, %d usable / %d inconsistent / %d discarded streams@,\
     bias: %d flagged blocks@,\
     quality: %a@]"
    p.workload.Workload.name p.stats.retired p.stats.cycles
    p.stats.taken_branches p.stats.kernel_retired p.sim_periods.ebs
    p.sim_periods.lbr pp_pct p.collection_overhead p.paper_periods.ebs
    p.paper_periods.lbr p.sde_slowdown p.sde_total p.sde_lost_kernel
    p.lbr.Lbr_estimator.snapshots p.lbr.Lbr_estimator.usable_streams
    p.lbr.Lbr_estimator.inconsistent_streams
    p.lbr.Lbr_estimator.discarded_streams
    (List.length (Bias.flagged_blocks p.bias))
    Pipeline.pp_quality p.quality

let error_table ppf ?(top = 20) (p : Pipeline.profile) bbec =
  let report = Pipeline.error_report p bbec in
  Format.fprintf ppf "%-12s %14s %14s %8s@." "mnemonic" "reference" "measured"
    "error";
  List.iteri
    (fun k (e : Error.per_mnemonic) ->
      if k < top then
        Format.fprintf ppf "%-12s %14.0f %14.0f %7.2f%%@."
          (Mnemonic.to_string e.mnemonic)
          e.reference e.measured (e.error *. 100.0))
    report.per_mnemonic;
  Format.fprintf ppf "average weighted error: %a@." pp_pct
    report.avg_weighted_error

let method_comparison ppf (p : Pipeline.profile) =
  let aw bbec = (Pipeline.error_report p bbec).Error.avg_weighted_error in
  Format.fprintf ppf
    "%s: avg weighted error HBBP %a | LBR %a | EBS %a (SDE slowdown %.2fx, \
     HBBP overhead %a)@."
    p.workload.Workload.name pp_pct (aw p.hbbp) pp_pct
    (aw p.lbr.Lbr_estimator.bbec) pp_pct (aw p.ebs.Ebs_estimator.bbec)
    p.sde_slowdown pp_pct p.collection_overhead
