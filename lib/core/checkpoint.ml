(* Checkpoint file for a resumable streaming analysis: which archive
   paths have been fully folded in, plus the serialized merged partial
   ({!Pipeline.Partial.serialize}).  Same framing discipline as the
   partial blob itself: magic, version byte, CRC-guarded
   length-prefixed sections.  Published through Durable, so the file
   on disk is always a complete checkpoint — the previous one or the
   new one. *)

module Durable = Hbbp_durable.Durable
module Metrics = Hbbp_telemetry.Metrics

type t = { done_paths : string list; partial : bytes }

let magic = "HBBPCKPT"
let version = 1

let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let to_bytes t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  let section write_payload =
    let p = Buffer.create 1024 in
    write_payload p;
    let payload = Buffer.to_bytes p in
    w_i64 buf (Bytes.length payload);
    w_i64 buf (Hbbp_util.Crc32.bytes payload);
    Buffer.add_bytes buf payload
  in
  section (fun p ->
      w_i64 p (List.length t.done_paths);
      List.iter
        (fun path ->
          w_i64 p (String.length path);
          Buffer.add_string p path)
        t.done_paths);
  section (fun p -> Buffer.add_bytes p t.partial);
  Buffer.to_bytes buf

exception Bad of string

type cursor = { data : bytes; mutable pos : int; limit : int }

let need c n = if c.pos + n > c.limit then raise (Bad "truncated checkpoint")

let r_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let r_section c parse =
  let len = r_i64 c in
  if len < 0 then raise (Bad "negative section length");
  let crc = r_i64 c in
  need c len;
  if Hbbp_util.Crc32.bytes ~off:c.pos ~len c.data <> crc then
    raise (Bad "checkpoint section CRC mismatch");
  let sub = { data = c.data; pos = c.pos; limit = c.pos + len } in
  let v = parse sub in
  if sub.pos <> sub.limit then raise (Bad "trailing section bytes");
  c.pos <- c.pos + len;
  v

let of_bytes data =
  try
    if Bytes.length data < String.length magic + 1 then
      raise (Bad "truncated header");
    if not (String.equal (Bytes.sub_string data 0 (String.length magic)) magic)
    then raise (Bad "bad checkpoint magic");
    let c = { data; pos = String.length magic; limit = Bytes.length data } in
    (match Bytes.get_uint8 c.data c.pos with
    | v when v = version -> c.pos <- c.pos + 1
    | v -> raise (Bad (Printf.sprintf "unsupported checkpoint version %d" v)));
    let done_paths =
      r_section c (fun s ->
          let n = r_i64 s in
          if n < 0 then raise (Bad "negative path count");
          List.init n (fun _ ->
              let len = r_i64 s in
              if len < 0 then raise (Bad "negative path length");
              need s len;
              let path = Bytes.sub_string s.data s.pos len in
              s.pos <- s.pos + len;
              path))
    in
    let partial =
      r_section c (fun s ->
          let b = Bytes.sub s.data s.pos (s.limit - s.pos) in
          s.pos <- s.limit;
          b)
    in
    if c.pos <> c.limit then raise (Bad "trailing bytes");
    Ok { done_paths; partial }
  with Bad msg -> Error msg

let save t ~path =
  let data = to_bytes t in
  Durable.write_bytes ~path data;
  Metrics.add (Metrics.counter "checkpoint.saves") 1;
  Metrics.add (Metrics.counter "checkpoint.bytes") (Bytes.length data)

let load ~path =
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Some (Error e)
    | text -> Some (of_bytes (Bytes.of_string text))

let remove ~path = if Sys.file_exists path then Sys.remove path
