open Hbbp_isa
open Hbbp_program
open Hbbp_cpu
open Hbbp_analyzer
open Hbbp_collector
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics

(* ------------------------------------------------------------------ *)
(* Reconstruction quality and graceful degradation                     *)

type degrade_reason =
  | Archive_fault of string
  | Lost_records of int
  | Ebs_starved of { samples : int; unattributed_share : float }
  | Lbr_starved of { snapshots : int; failure_rate : float }
  | Fallback of [ `Ebs_only | `Lbr_only ]
  | Flow_violation of {
      conservation_error : float;
      total_residual : float;
      worst_block : int option;
    }

type quality = Full | Degraded of degrade_reason list

let pp_degrade_reason ppf = function
  | Archive_fault s -> Format.fprintf ppf "archive: %s" s
  | Lost_records n -> Format.fprintf ppf "%d lost records" n
  | Ebs_starved { samples; unattributed_share } ->
      Format.fprintf ppf "EBS starved (%d samples, %.0f%% unattributed)"
        samples (100.0 *. unattributed_share)
  | Lbr_starved { snapshots; failure_rate } ->
      Format.fprintf ppf "LBR starved (%d snapshots, %.0f%% stream failures)"
        snapshots (100.0 *. failure_rate)
  | Fallback `Ebs_only -> Format.pp_print_string ppf "EBS-only fallback"
  | Fallback `Lbr_only -> Format.pp_print_string ppf "LBR-only fallback"
  | Flow_violation { conservation_error; total_residual; worst_block } ->
      Format.fprintf ppf
        "flow conservation violated (error %.3f, %.0f unexplained \
         executions%a)"
        conservation_error total_residual
        (fun ppf -> function
          | Some gid -> Format.fprintf ppf ", worst at block %d" gid
          | None -> ())
        worst_block

let pp_quality ppf = function
  | Full -> Format.pp_print_string ppf "full"
  | Degraded reasons ->
      Format.fprintf ppf "degraded (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_degrade_reason)
        reasons

type thresholds = {
  min_ebs_samples : int;
  max_unattributed_share : float;
  min_lbr_snapshots : int;
  max_stream_failure : float;
  max_lost_records : int;
  max_conservation_error : float;
}

let default_thresholds =
  {
    min_ebs_samples = 8;
    max_unattributed_share = 0.5;
    min_lbr_snapshots = 4;
    max_stream_failure = 0.6;
    max_lost_records = 0;
    (* Healthy sampled reconstructions of the bundled workloads stay
       under 0.035; systematic corruption pushes the score towards 1. *)
    max_conservation_error = 0.15;
  }

type repair_mode = Off | Report | Apply

type config = {
  model : Pmu_model.t;
  criteria : Criteria.t;
  periods : [ `Auto | `Fixed of Period.pair ];
  sde : Hbbp_instrument.Sde.config;
  max_instructions : int;
  count_events : Pmu_event.t list;
  thresholds : thresholds;
  keep_records : bool;
  engine : Machine.engine;
  repair : repair_mode;
}

let default_config =
  {
    model = Pmu_model.default;
    criteria = Criteria.default;
    periods = `Auto;
    sde = Hbbp_instrument.Sde.default_config;
    max_instructions = 2_000_000_000;
    count_events = [ Pmu_event.Inst_retired_any ];
    thresholds = default_thresholds;
    keep_records = false;
    engine = Machine.default_engine ();
    repair = Report;
  }

type profile = {
  workload : Workload.t;
  config : config;
  stats : Machine.run_stats;
  pmu_health : Pmu.health;
  clean_cycles : int;
  static : Static.t;
  static_unpatched : Static.t;
  reference : Bbec.t;
  reference_mix : (Mnemonic.t * float) list;
  ebs : Ebs_estimator.t;
  lbr : Lbr_estimator.t;
  bias : Bias.t;
  hbbp : Bbec.t;
  sim_periods : Period.pair;
  paper_periods : Period.pair;
  collection_overhead : float;
  sde_slowdown : float;
  sde_total : int64;
  sde_lost_kernel : int;
  pmu_counts : (Pmu_event.t * int64) list;
  records : Record.t list;
  record_count : int;
  quality : quality;
  repair_report : Hbbp_verifier.Repair.report option;
}

let user_maps static =
  List.filter_map
    (fun (img : Image.t) ->
      if Ring.equal img.ring Ring.User then
        Static.map_of_image static img.name
      else None)
    (Process.images (Static.process static))

(* ------------------------------------------------------------------ *)
(* Mergeable partial reconstruction state                              *)

(* Everything a reconstruction needs from the record stream, in
   mergeable form: the estimator and bias accumulators (integer-domain,
   so merges are exact) plus the stream-level tallies the quality
   verdict reads.  Chunks feed in arrival order; partials from
   contiguous shards merge in order; [finalize] turns the merged state
   into a reconstruction.  Feeding a stream as one chunk, as many
   chunks, or as per-shard partials merged later all produce
   bit-identical reconstructions. *)
module Partial = struct
  type t = {
    static : Static.t;
    ebs_period : int;
    lbr_period : int;
    ebs_acc : Ebs_estimator.Acc.acc;
    lbr_acc : Lbr_estimator.Acc.acc;
    bias_acc : Bias.Acc.acc;
    mutable records : int;
    mutable ebs_samples : int;
    mutable lbr_snapshots : int;
    mutable other_samples : int;
    mutable lost : int;
    mutable faults_rev : Perf_data.fault list;
  }

  let create ~static ~ebs_period ~lbr_period () =
    {
      static;
      ebs_period;
      lbr_period;
      ebs_acc = Ebs_estimator.Acc.create static;
      lbr_acc = Lbr_estimator.Acc.create static;
      bias_acc = Bias.Acc.create ();
      records = 0;
      ebs_samples = 0;
      lbr_snapshots = 0;
      other_samples = 0;
      lost = 0;
      faults_rev = [];
    }

  let static t = t.static
  let ebs_period t = t.ebs_period
  let lbr_period t = t.lbr_period
  let record_count t = t.records
  let ebs_samples t = t.ebs_samples
  let lbr_snapshots t = t.lbr_snapshots
  let other_samples t = t.other_samples
  let lost_records t = t.lost
  let faults t = List.rev t.faults_rev

  let add t (r : Record.t) =
    t.records <- t.records + 1;
    match r with
    | Record.Sample s -> (
        match s.Record.event with
        | Pmu_event.Inst_retired_prec_dist ->
            t.ebs_samples <- t.ebs_samples + 1;
            Ebs_estimator.Acc.add t.static t.ebs_acc
              { Sample_db.ip = s.Record.ip; ring = s.Record.ring }
        | Pmu_event.Br_inst_retired_near_taken ->
            t.lbr_snapshots <- t.lbr_snapshots + 1;
            let sample =
              { Sample_db.entries = s.Record.lbr; ring = s.Record.ring }
            in
            Lbr_estimator.Acc.add t.static t.lbr_acc sample;
            Bias.Acc.add t.static t.bias_acc sample
        | _ -> t.other_samples <- t.other_samples + 1)
    | Record.Lost n -> t.lost <- t.lost + n
    | Record.Comm _ | Record.Mmap _ | Record.Fork _ -> ()

  let feed t chunk =
    Trace.with_span ~cat:"analyze" "chunk" (fun () -> List.iter (add t) chunk)

  let note_faults t faults =
    List.iter (fun f -> t.faults_rev <- f :: t.faults_rev) faults

  let merge a b =
    if not (a.static == b.static) then
      invalid_arg "Pipeline.Partial.merge: partials must share one static view";
    if a.ebs_period <> b.ebs_period || a.lbr_period <> b.lbr_period then
      invalid_arg "Pipeline.Partial.merge: sampling period mismatch";
    {
      static = a.static;
      ebs_period = a.ebs_period;
      lbr_period = a.lbr_period;
      ebs_acc = Ebs_estimator.Acc.merge a.ebs_acc b.ebs_acc;
      lbr_acc = Lbr_estimator.Acc.merge a.lbr_acc b.lbr_acc;
      bias_acc = Bias.Acc.merge a.bias_acc b.bias_acc;
      records = a.records + b.records;
      ebs_samples = a.ebs_samples + b.ebs_samples;
      lbr_snapshots = a.lbr_snapshots + b.lbr_snapshots;
      other_samples = a.other_samples + b.other_samples;
      lost = a.lost + b.lost;
      faults_rev = b.faults_rev @ a.faults_rev;
    }

  (* ---------------------------------------------------------------- *)
  (* Checkpoint serialization: the archive's v2 framing style — magic,
     version byte, CRC-guarded length-prefixed sections — over the
     accumulator state.  Everything in a partial is integer-domain
     (tallies, counts, sorted assoc lists), so serialize/restore is an
     exact round trip and a resumed analysis finalizes to the same
     bytes as an uninterrupted one. *)

  let magic = "HBBPPART"
  let serialize_version = 1

  let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

  let w_str buf s =
    w_i64 buf (String.length s);
    Buffer.add_string buf s

  let section_code = function
    | Perf_data.Header -> 0
    | Perf_data.Images -> 1
    | Perf_data.Kernel_text -> 2
    | Perf_data.Records -> 3

  let section_of_code = function
    | 0 -> Some Perf_data.Header
    | 1 -> Some Perf_data.Images
    | 2 -> Some Perf_data.Kernel_text
    | 3 -> Some Perf_data.Records
    | _ -> None

  let serialize t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf magic;
    Buffer.add_uint8 buf serialize_version;
    let section write_payload =
      let p = Buffer.create 1024 in
      write_payload p;
      let payload = Buffer.to_bytes p in
      w_i64 buf (Bytes.length payload);
      w_i64 buf (Hbbp_util.Crc32.bytes payload);
      Buffer.add_bytes buf payload
    in
    section (fun p ->
        w_i64 p t.ebs_period;
        w_i64 p t.lbr_period;
        w_i64 p t.records;
        w_i64 p t.ebs_samples;
        w_i64 p t.lbr_snapshots;
        w_i64 p t.other_samples;
        w_i64 p t.lost);
    section (fun p ->
        let raw, unattributed = Ebs_estimator.Acc.export t.ebs_acc in
        w_i64 p unattributed;
        w_i64 p (Array.length raw);
        Array.iter (w_i64 p) raw);
    section (fun p ->
        let r = Lbr_estimator.Acc.export t.lbr_acc in
        w_i64 p r.Lbr_estimator.Acc.r_total_blocks;
        w_i64 p r.Lbr_estimator.Acc.r_snapshots;
        w_i64 p r.Lbr_estimator.Acc.r_usable;
        w_i64 p r.Lbr_estimator.Acc.r_inconsistent;
        w_i64 p r.Lbr_estimator.Acc.r_discarded;
        let by_k = r.Lbr_estimator.Acc.r_by_k in
        w_i64 p (Array.length by_k);
        Array.iter
          (fun row ->
            w_i64 p (Array.length row);
            Array.iter (w_i64 p) row)
          by_k);
    section (fun p ->
        let r = Bias.Acc.export t.bias_acc in
        w_i64 p r.Bias.Acc.r_snapshots;
        w_i64 p r.Bias.Acc.r_deep_total;
        let table bindings =
          w_i64 p (List.length bindings);
          List.iter
            (fun (k, v) ->
              w_i64 p k;
              w_i64 p v)
            bindings
        in
        table r.Bias.Acc.r_entry0;
        table r.Bias.Acc.r_deep;
        table r.Bias.Acc.r_adjacent;
        table r.Bias.Acc.r_failed);
    section (fun p ->
        let faults = List.rev t.faults_rev in
        w_i64 p (List.length faults);
        List.iter
          (fun f ->
            match f with
            | Perf_data.Checksum_mismatch s ->
                Buffer.add_uint8 p 0;
                Buffer.add_uint8 p (section_code s)
            | Perf_data.Truncated_records { expected; salvaged } ->
                Buffer.add_uint8 p 1;
                w_i64 p (match expected with None -> -1 | Some e -> e);
                w_i64 p salvaged
            | Perf_data.Corrupt_records { index; reason; salvaged } ->
                Buffer.add_uint8 p 2;
                w_i64 p index;
                w_i64 p salvaged;
                w_str p reason)
          faults);
    Buffer.to_bytes buf

  exception Bad of string

  type cursor = { data : bytes; mutable pos : int; limit : int }

  let need c n =
    if c.pos + n > c.limit then raise (Bad "truncated checkpoint state")

  let r_i64 c =
    need c 8;
    let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
    c.pos <- c.pos + 8;
    v

  let r_u8 c =
    need c 1;
    let v = Bytes.get_uint8 c.data c.pos in
    c.pos <- c.pos + 1;
    v

  let r_str c =
    let n = r_i64 c in
    if n < 0 then raise (Bad "negative string length");
    need c n;
    let s = Bytes.sub_string c.data c.pos n in
    c.pos <- c.pos + n;
    s

  let r_array c =
    let n = r_i64 c in
    if n < 0 then raise (Bad "negative array length");
    Array.init n (fun _ -> r_i64 c)

  (* One CRC-guarded section: bounds the cursor to the payload, runs
     the parser, then checks the parser consumed exactly the payload. *)
  let r_section c parse =
    let len = r_i64 c in
    if len < 0 then raise (Bad "negative section length");
    let crc = r_i64 c in
    need c len;
    if Hbbp_util.Crc32.bytes ~off:c.pos ~len c.data <> crc then
      raise (Bad "section CRC mismatch");
    let sub = { data = c.data; pos = c.pos; limit = c.pos + len } in
    let v = parse sub in
    if sub.pos <> sub.limit then raise (Bad "trailing section bytes");
    c.pos <- c.pos + len;
    v

  let restore ~static data =
    try
      if Bytes.length data < String.length magic + 1 then
        raise (Bad "truncated header");
      if
        not
          (String.equal
             (Bytes.sub_string data 0 (String.length magic))
             magic)
      then raise (Bad "bad magic");
      let c =
        { data; pos = String.length magic; limit = Bytes.length data }
      in
      (match r_u8 c with
      | v when v = serialize_version -> ()
      | v -> raise (Bad (Printf.sprintf "unsupported version %d" v)));
      let ebs_period, lbr_period, records, ebs_samples, lbr_snapshots,
          other_samples, lost =
        r_section c (fun s ->
            let ebs_period = r_i64 s in
            let lbr_period = r_i64 s in
            let records = r_i64 s in
            let ebs_samples = r_i64 s in
            let lbr_snapshots = r_i64 s in
            let other_samples = r_i64 s in
            let lost = r_i64 s in
            ( ebs_period, lbr_period, records, ebs_samples, lbr_snapshots,
              other_samples, lost ))
      in
      let ebs_acc =
        r_section c (fun s ->
            let unattributed = r_i64 s in
            let raw = r_array s in
            if Array.length raw <> Static.total_blocks static then
              raise (Bad "EBS block count does not match the static view");
            Ebs_estimator.Acc.import (raw, unattributed))
      in
      let lbr_acc =
        r_section c (fun s ->
            let total_blocks = r_i64 s in
            if total_blocks <> Static.total_blocks static then
              raise (Bad "LBR block count does not match the static view");
            let snapshots = r_i64 s in
            let usable = r_i64 s in
            let inconsistent = r_i64 s in
            let discarded = r_i64 s in
            let n_k = r_i64 s in
            if n_k < 0 then raise (Bad "negative row count");
            let by_k = Array.init n_k (fun _ -> r_array s) in
            Array.iter
              (fun row ->
                let n = Array.length row in
                if n <> 0 && n <> total_blocks then
                  raise (Bad "LBR row length mismatch"))
              by_k;
            Lbr_estimator.Acc.import
              {
                Lbr_estimator.Acc.r_total_blocks = total_blocks;
                r_by_k = by_k;
                r_snapshots = snapshots;
                r_usable = usable;
                r_inconsistent = inconsistent;
                r_discarded = discarded;
              })
      in
      let bias_acc =
        r_section c (fun s ->
            let snapshots = r_i64 s in
            let deep_total = r_i64 s in
            let table () =
              let n = r_i64 s in
              if n < 0 then raise (Bad "negative table size");
              List.init n (fun _ ->
                  let k = r_i64 s in
                  let v = r_i64 s in
                  (k, v))
            in
            let entry0 = table () in
            let deep = table () in
            let adjacent = table () in
            let failed = table () in
            Bias.Acc.import
              {
                Bias.Acc.r_entry0 = entry0;
                r_deep = deep;
                r_adjacent = adjacent;
                r_failed = failed;
                r_snapshots = snapshots;
                r_deep_total = deep_total;
              })
      in
      let faults =
        r_section c (fun s ->
            let n = r_i64 s in
            if n < 0 then raise (Bad "negative fault count");
            List.init n (fun _ ->
                match r_u8 s with
                | 0 -> (
                    let code = r_u8 s in
                    match section_of_code code with
                    | Some sec -> Perf_data.Checksum_mismatch sec
                    | None ->
                        raise (Bad (Printf.sprintf "bad section code %d" code)))
                | 1 ->
                    let expected = r_i64 s in
                    let salvaged = r_i64 s in
                    Perf_data.Truncated_records
                      {
                        expected = (if expected < 0 then None else Some expected);
                        salvaged;
                      }
                | 2 ->
                    let index = r_i64 s in
                    let salvaged = r_i64 s in
                    let reason = r_str s in
                    Perf_data.Corrupt_records { index; reason; salvaged }
                | t -> raise (Bad (Printf.sprintf "bad fault tag %d" t))))
      in
      if c.pos <> c.limit then raise (Bad "trailing bytes");
      Ok
        {
          static;
          ebs_period;
          lbr_period;
          ebs_acc;
          lbr_acc;
          bias_acc;
          records;
          ebs_samples;
          lbr_snapshots;
          other_samples;
          lost;
          faults_rev = List.rev faults;
        }
    with Bad msg -> Error msg
end

type reconstruction = {
  r_static : Static.t;
  r_ebs : Ebs_estimator.t;
  r_lbr : Lbr_estimator.t;
  r_bias : Bias.t;
  r_hbbp : Bbec.t;
  r_quality : quality;
  r_flow : Hbbp_verifier.Flow.report;
  r_repair : Hbbp_verifier.Repair.report option;
  r_partial : Partial.t;
}

(* Sampling-health counters of one reconstruction: everything the paper
   blames estimator error on, as observed by the analyzer itself. *)
let record_reconstruction_metrics (r : reconstruction) =
  if Metrics.enabled () then begin
    let c name n = Metrics.add (Metrics.counter name) n in
    let ebs_samples =
      Array.fold_left ( + ) r.r_ebs.Ebs_estimator.unattributed
        r.r_ebs.Ebs_estimator.raw
    in
    c "ebs.samples" ebs_samples;
    c "ebs.unattributed_samples" r.r_ebs.Ebs_estimator.unattributed;
    c "lbr.snapshots" r.r_lbr.Lbr_estimator.snapshots;
    c "lbr.streams_usable" r.r_lbr.Lbr_estimator.usable_streams;
    c "lbr.streams_inconsistent" r.r_lbr.Lbr_estimator.inconsistent_streams;
    c "lbr.streams_discarded" r.r_lbr.Lbr_estimator.discarded_streams;
    let streams =
      r.r_lbr.Lbr_estimator.usable_streams
      + r.r_lbr.Lbr_estimator.inconsistent_streams
      + r.r_lbr.Lbr_estimator.discarded_streams
    in
    Metrics.set
      (Metrics.gauge "lbr.stream_failure_rate")
      (if streams = 0 then 0.0
       else
         float_of_int (streams - r.r_lbr.Lbr_estimator.usable_streams)
         /. float_of_int streams);
    c "bias.flagged_blocks" (List.length (Bias.flagged_blocks r.r_bias));
    match r.r_quality with
    | Full -> ()
    | Degraded reasons ->
        c "degrade.reconstructions" 1;
        c "degrade.reasons" (List.length reasons);
        List.iter
          (function
            | Fallback `Ebs_only -> c "degrade.fallback_ebs_only" 1
            | Fallback `Lbr_only -> c "degrade.fallback_lbr_only" 1
            | Archive_fault _ -> c "degrade.archive_faults" 1
            | Lost_records n -> c "degrade.lost_records" n
            | Flow_violation _ -> c "degrade.flow_violations" 1
            | Ebs_starved _ | Lbr_starved _ -> ())
          reasons
  end

(* Channel health against the configured thresholds: the analyzer-side
   analogue of the PMU's own sampling-health accounting.  A channel is
   "starved" when it cannot plausibly support per-block estimation on
   its own — the situations the paper's decision criteria assume never
   happen on healthy hardware. *)
let assess_quality (th : thresholds) ~ledger ~lost ~(ebs : Ebs_estimator.t)
    ~(lbr : Lbr_estimator.t) =
  let ebs_total =
    Array.fold_left ( + ) ebs.Ebs_estimator.unattributed ebs.Ebs_estimator.raw
  in
  let unattributed_share =
    if ebs_total = 0 then 1.0
    else float_of_int ebs.Ebs_estimator.unattributed /. float_of_int ebs_total
  in
  let ebs_bad =
    ebs_total < th.min_ebs_samples
    || unattributed_share > th.max_unattributed_share
  in
  let streams =
    lbr.Lbr_estimator.usable_streams
    + lbr.Lbr_estimator.inconsistent_streams
    + lbr.Lbr_estimator.discarded_streams
  in
  let failure_rate =
    if streams = 0 then 0.0
    else
      float_of_int (streams - lbr.Lbr_estimator.usable_streams)
      /. float_of_int streams
  in
  let lbr_bad =
    lbr.Lbr_estimator.snapshots < th.min_lbr_snapshots
    || failure_rate > th.max_stream_failure
  in
  let fallback =
    if ebs_bad && not lbr_bad then Some `Lbr_only
    else if lbr_bad && not ebs_bad then Some `Ebs_only
    else None
  in
  let reasons =
    List.map
      (fun f -> Archive_fault (Format.asprintf "%a" Perf_data.pp_fault f))
      ledger
    @ (if lost > th.max_lost_records then [ Lost_records lost ] else [])
    @ (if ebs_bad then
         [ Ebs_starved { samples = ebs_total; unattributed_share } ]
       else [])
    @ (if lbr_bad then
         [ Lbr_starved { snapshots = lbr.Lbr_estimator.snapshots; failure_rate } ]
       else [])
    @ match fallback with Some f -> [ Fallback f ] | None -> []
  in
  let quality = if reasons = [] then Full else Degraded reasons in
  (quality, fallback)

(* Single-channel reconstruction reuses the fusion path: a length rule
   with cutoff 0 sends every block to EBS, cutoff max_int to LBR. *)
let fallback_criteria = function
  | `Ebs_only -> Criteria.Length_rule { cutoff = 0; bias_to_ebs = false }
  | `Lbr_only -> Criteria.Length_rule { cutoff = max_int; bias_to_ebs = false }

(* Turn accumulated partial state into a reconstruction.  [replay]
   re-yields the record stream for the bias contamination pass, which
   only runs when pass one flagged something; without it, contamination
   is skipped (see {!Bias.finalize}).  All reconstruction entry points —
   batch, streaming, merged shards — go through here, which is what
   makes them bit-identical. *)
let finalize ?(criteria = Criteria.default) ?(thresholds = default_thresholds)
    ?(repair = Report) ?replay (p : Partial.t) =
  let span name f = Trace.with_span ~cat:"analyze" name f in
  let static = Partial.static p in
  let ebs =
    span "ebs_finalize" (fun () ->
        Ebs_estimator.finalize static ~period:(Partial.ebs_period p)
          p.Partial.ebs_acc)
  in
  let lbr =
    span "lbr_finalize" (fun () ->
        Lbr_estimator.finalize static ~period:(Partial.lbr_period p)
          p.Partial.lbr_acc)
  in
  let bias_replay =
    Option.map
      (fun iter f ->
        iter (fun chunk ->
            List.iter
              (fun (r : Record.t) ->
                match r with
                | Record.Sample s
                  when Pmu_event.equal s.Record.event
                         Pmu_event.Br_inst_retired_near_taken ->
                    f { Sample_db.entries = s.Record.lbr; ring = s.Record.ring }
                | _ -> ())
              chunk))
      replay
  in
  let bias =
    span "bias_finalize" (fun () ->
        Bias.finalize static p.Partial.bias_acc ~replay:bias_replay)
  in
  let quality, fallback =
    assess_quality thresholds ~ledger:(Partial.faults p)
      ~lost:(Partial.lost_records p) ~ebs ~lbr
  in
  let criteria =
    match fallback with
    | None -> criteria
    | Some which -> fallback_criteria which
  in
  let hbbp =
    span "fuse" (fun () -> Combine.fuse static ~criteria ~bias ~ebs ~lbr)
  in
  (* Kirchhoff cross-check of the fused counts: badly non-conserving
     flow means the reconstruction is internally inconsistent no matter
     how healthy each channel looked on its own. *)
  let fstruct, flow =
    Trace.with_span ~cat:"verify" "flow_check" (fun () ->
        let s = Hbbp_verifier.Flow.structure static in
        (s, Hbbp_verifier.Flow.check_with s hbbp))
  in
  if Metrics.enabled () then begin
    Metrics.set
      (Metrics.gauge "verify.conservation_error")
      flow.Hbbp_verifier.Flow.conservation_error;
    Metrics.set
      (Metrics.gauge "verify.flow_residual")
      flow.Hbbp_verifier.Flow.total_residual;
    Metrics.add
      (Metrics.counter "verify.flow_checks")
      1;
    if
      flow.Hbbp_verifier.Flow.conservation_error
      > thresholds.max_conservation_error
    then Metrics.add (Metrics.counter "verify.flow_violations") 1
  end;
  let quality =
    if
      flow.Hbbp_verifier.Flow.conservation_error
      > thresholds.max_conservation_error
    then begin
      let reason =
        Flow_violation
          {
            conservation_error = flow.Hbbp_verifier.Flow.conservation_error;
            total_residual = flow.Hbbp_verifier.Flow.total_residual;
            worst_block =
              (match flow.Hbbp_verifier.Flow.worst with
              | w :: _ -> Some w.Hbbp_verifier.Flow.gid
              | [] -> None);
          }
      in
      match quality with
      | Full -> Degraded [ reason ]
      | Degraded reasons -> Degraded (reasons @ [ reason ])
    end
    else quality
  in
  (* Count repair: project the fused counts onto the conservation
     polytope, low-confidence blocks absorbing the correction.  The
     quality verdict above is deliberately based on the *pre*-repair
     check — Apply mode cleans the counts but cannot launder a corrupt
     reconstruction into a Full verdict. *)
  let repair_report =
    match repair with
    | Off -> None
    | Report | Apply ->
        let weights =
          Hbbp_verifier.Repair.confidence
            ~use_ebs:
              (Array.map
                 (function
                   | Criteria.Use_ebs -> true
                   | Criteria.Use_lbr -> false)
                 (Combine.decisions static ~criteria ~bias ~ebs ~lbr))
            ~ebs_raw:ebs.Ebs_estimator.raw
            ~lbr_weight:lbr.Lbr_estimator.weight
            (Static.total_blocks static)
        in
        let rep =
          Trace.with_span ~cat:"verify" "repair" (fun () ->
              Hbbp_verifier.Repair.repair ~weights fstruct hbbp)
        in
        if Metrics.enabled () then begin
          Metrics.add (Metrics.counter "repair.runs") 1;
          Metrics.set
            (Metrics.gauge "repair.pre_conservation_error")
            rep.Hbbp_verifier.Repair.pre.Hbbp_verifier.Flow.conservation_error;
          Metrics.set
            (Metrics.gauge "repair.post_conservation_error")
            rep.Hbbp_verifier.Repair.post.Hbbp_verifier.Flow.conservation_error;
          Metrics.add
            (Metrics.counter "repair.adjusted_blocks")
            rep.Hbbp_verifier.Repair.adjusted_blocks;
          Metrics.add
            (Metrics.counter "repair.sweeps")
            rep.Hbbp_verifier.Repair.iterations;
          Metrics.set
            (Metrics.gauge "repair.moved_mass")
            rep.Hbbp_verifier.Repair.moved_mass;
          if repair = Apply then
            Metrics.add (Metrics.counter "repair.applied") 1
        end;
        Some rep
  in
  let hbbp =
    match (repair, repair_report) with
    | Apply, Some rep -> rep.Hbbp_verifier.Repair.repaired
    | _ -> hbbp
  in
  let r =
    {
      r_static = static;
      r_ebs = ebs;
      r_lbr = lbr;
      r_bias = bias;
      r_hbbp = hbbp;
      r_quality = quality;
      r_flow = flow;
      r_repair = repair_report;
      r_partial = p;
    }
  in
  record_reconstruction_metrics r;
  r

let reconstruct ?criteria ?thresholds ?repair ?(ledger = []) ~static
    ~ebs_period ~lbr_period records =
  let p = Partial.create ~static ~ebs_period ~lbr_period () in
  Partial.note_faults p ledger;
  Partial.feed p records;
  finalize ?criteria ?thresholds ?repair ~replay:(fun f -> f records) p

(* Chunked streaming reconstruction: [chunks ()] yields record chunks
   until [None]; state stays bounded by the accumulators plus one chunk.
   [replay] must re-yield the same stream when provided — the bias
   contamination pass needs a second look only when pass one flags a
   branch, so clean streams are single-pass. *)
let reconstruct_stream ?criteria ?thresholds ?repair ?(ledger = []) ?replay
    ~static ~ebs_period ~lbr_period chunks =
  let p = Partial.create ~static ~ebs_period ~lbr_period () in
  Partial.note_faults p ledger;
  let rec pump () =
    match chunks () with
    | Some chunk ->
        Partial.feed p chunk;
        pump ()
    | None -> ()
  in
  pump ();
  finalize ?criteria ?thresholds ?repair ?replay p

(* Merging finalized reconstructions re-finalizes the merged partial
   state — the estimator/bias accumulators are the mergeable core; the
   finalized arrays themselves are not (fallback and bias are
   non-linear).  [replay] re-yields the {e combined} stream for the
   contamination pass. *)
let merge_reconstructions ?criteria ?thresholds ?repair ?replay a b =
  finalize ?criteria ?thresholds ?repair ?replay
    (Partial.merge a.r_partial b.r_partial)

let collect_archive ?(config = default_config) (w : Workload.t) =
  Trace.with_span ~cat:"pipeline"
    ~args:[ ("workload", w.Workload.name) ]
    "collect_archive"
  @@ fun () ->
  let sim_periods =
    match config.periods with
    | `Auto -> Period.simulation w.Workload.runtime_class
    | `Fixed pair -> pair
  in
  let machine =
    Machine.create ~process:w.Workload.live_process ~engine:config.engine ()
  in
  let session = Session.configure config.model sim_periods in
  Machine.add_observer machine (Pmu.observer (Session.pmu session));
  let (_ : Machine.run_stats) =
    Trace.with_span ~cat:"pipeline" "execute" (fun () ->
        Machine.run machine ~entry:w.Workload.entry
          ~max_instructions:config.max_instructions ())
  in
  Trace.with_span ~cat:"pipeline" "archive" (fun () ->
      Perf_data.of_session ~workload_name:w.Workload.name ~session
        ~analysis:w.Workload.analysis_process ~live:w.Workload.live_process)

let analyze_archive ?criteria ?thresholds ?repair ?ledger
    (archive : Perf_data.t) =
  let static = Static.create_exn (Perf_data.analysis_process archive) in
  reconstruct ?criteria ?thresholds ?repair ?ledger ~static
    ~ebs_period:archive.Perf_data.ebs_period
    ~lbr_period:archive.Perf_data.lbr_period archive.Perf_data.records

(* Streaming multi-archive analysis: one partial per archive (chunked
   off the file, never materializing a record list), merged in path
   order, finalized over the merged totals.  All archives must agree on
   workload name and sampling periods (shards of one collection do);
   the static view is built once, from the first archive's metadata. *)
let analyze_archives ?criteria ?thresholds ?repair ?chunk_records paths =
  if paths = [] then invalid_arg "Pipeline.analyze_archives: no archives";
  let render e = Format.asprintf "%a" Perf_data.pp_error e in
  let exception Fail of string in
  try
    let meta = ref None and static = ref None in
    let partial_of_path path =
      Trace.with_span ~cat:"analyze" ~args:[ ("path", path) ] "archive"
      @@ fun () ->
      match Perf_data.Stream.open_file ?chunk_records path with
      | Error e -> raise (Fail (Printf.sprintf "%s: %s" path (render e)))
      | Ok s ->
          Fun.protect
            ~finally:(fun () -> Perf_data.Stream.close s)
            (fun () ->
              let m = Perf_data.Stream.meta s in
              let st =
                match !static with
                | None ->
                    let st =
                      Static.create_exn (Perf_data.analysis_process m)
                    in
                    meta := Some m;
                    static := Some st;
                    st
                | Some st ->
                    let m0 = Option.get !meta in
                    if
                      m.Perf_data.workload_name
                      <> m0.Perf_data.workload_name
                      || m.Perf_data.ebs_period <> m0.Perf_data.ebs_period
                      || m.Perf_data.lbr_period <> m0.Perf_data.lbr_period
                    then
                      raise
                        (Fail
                           (Printf.sprintf
                              "%s: shard metadata mismatch (workload %S, \
                               periods %d/%d; expected %S, %d/%d)"
                              path m.Perf_data.workload_name
                              m.Perf_data.ebs_period m.Perf_data.lbr_period
                              m0.Perf_data.workload_name
                              m0.Perf_data.ebs_period
                              m0.Perf_data.lbr_period));
                    st
              in
              let p =
                Partial.create ~static:st
                  ~ebs_period:m.Perf_data.ebs_period
                  ~lbr_period:m.Perf_data.lbr_period ()
              in
              let rec pump () =
                match Perf_data.Stream.next s with
                | Some chunk ->
                    Partial.feed p chunk;
                    pump ()
                | None -> ()
              in
              pump ();
              Partial.note_faults p (Perf_data.Stream.ledger s);
              p)
    in
    let partials = List.map partial_of_path paths in
    let merged =
      match partials with
      | p :: rest -> List.fold_left Partial.merge p rest
      | [] -> assert false
    in
    (* Second pass for bias contamination — only consulted when pass one
       flagged a branch, so clean runs never reopen the files. *)
    let replay f =
      List.iter
        (fun path ->
          match Perf_data.Stream.open_file ?chunk_records path with
          | Error _ -> () (* readable moments ago; best effort *)
          | Ok s ->
              Fun.protect
                ~finally:(fun () -> Perf_data.Stream.close s)
                (fun () ->
                  let rec pump () =
                    match Perf_data.Stream.next s with
                    | Some chunk ->
                        f chunk;
                        pump ()
                    | None -> ()
                  in
                  pump ()))
        paths
    in
    Ok (Option.get !meta, finalize ?criteria ?thresholds ?repair ~replay merged)
  with
  | Fail msg -> Error msg
  | Sys_error msg -> Error msg

(* Run-level counters: execution volume plus the PMU's sampling-health
   accounting (the repo observing its own collection quality, the way
   the paper accounts for perf's). *)
let record_run_metrics (p : profile) =
  if Metrics.enabled () then begin
    let c name n = Metrics.add (Metrics.counter name) n in
    c "pipeline.runs" 1;
    c "pipeline.retired" p.stats.Machine.retired;
    c "pipeline.cycles" p.stats.Machine.cycles;
    c "pipeline.taken_branches" p.stats.Machine.taken_branches;
    c "pipeline.kernel_retired" p.stats.Machine.kernel_retired;
    c "pipeline.records" p.record_count;
    Metrics.set
      (Metrics.gauge "pipeline.collection_overhead")
      p.collection_overhead;
    Metrics.set (Metrics.gauge "pipeline.sde_slowdown") p.sde_slowdown;
    let h = p.pmu_health in
    c "pmu.pmi_count" h.Pmu.pmi_count;
    c "pmu.shadow_slides" h.Pmu.shadow_slides;
    c "pmu.lbr_snapshots" h.Pmu.lbr_snapshots;
    c "pmu.lbr_stuck_snapshots" h.Pmu.stuck_snapshots;
    c "pmu.lbr_misrotated_snapshots" h.Pmu.misrotated_snapshots;
    c "pmu.lbr_dropped_records" h.Pmu.dropped_records;
    let skid =
      Metrics.histogram
        ~bounds:(Array.init (Pmu.max_skid_bucket + 1) float_of_int)
        "pmu.skid_displacement"
    in
    Array.iteri
      (fun d n -> if n > 0 then Metrics.observe ~n skid (float_of_int d))
      h.Pmu.skid_hist;
    c "sde.lost_kernel_instructions" p.sde_lost_kernel
  end

let run ?(config = default_config) (w : Workload.t) =
  Trace.with_span ~cat:"pipeline" ~args:[ ("workload", w.Workload.name) ] "run"
  @@ fun () ->
  let sim_periods, paper_periods =
    match config.periods with
    | `Auto -> (Period.simulation w.runtime_class, Period.paper w.runtime_class)
    | `Fixed pair -> (pair, Period.paper w.runtime_class)
  in
  (* Static views: what the analyzer finds on disk, and the same view
     with kernel text patched from the live image (the paper's remedy). *)
  let static_unpatched, static =
    Trace.with_span ~cat:"pipeline" "static" (fun () ->
        let static_unpatched = Static.create_exn w.analysis_process in
        let static =
          if w.analysis_process == w.live_process then static_unpatched
          else Kernel_patch.patch_static static_unpatched ~live:w.live_process
        in
        (static_unpatched, static))
  in
  (* One execution, three observers. *)
  let machine =
    Machine.create ~process:w.live_process ~engine:config.engine ()
  in
  let sde = Hbbp_instrument.Sde.create config.sde (user_maps static) in
  let session = Session.configure config.model sim_periods in
  let counting = Pmu.create config.model
      (List.map
         (fun event -> { Pmu.event; mode = Pmu.Counting })
         config.count_events)
  in
  Machine.add_observer machine (Hbbp_instrument.Sde.observer sde);
  Machine.add_observer machine (Pmu.observer (Session.pmu session));
  Machine.add_observer machine (Pmu.observer counting);
  let stats =
    Trace.with_span ~cat:"pipeline" "execute" (fun () ->
        Machine.run machine ~entry:w.entry
          ~max_instructions:config.max_instructions ())
  in
  (* Collection output and reconstruction. *)
  let records =
    Trace.with_span ~cat:"pipeline" "collect" (fun () ->
        Session.records session w.live_process ~pid:1 ~name:w.name)
  in
  let r =
    reconstruct ~criteria:config.criteria ~thresholds:config.thresholds
      ~repair:config.repair ~static
      ~ebs_period:(Session.ebs_period session)
      ~lbr_period:(Session.lbr_period session) records
  in
  let ebs = r.r_ebs and lbr = r.r_lbr and bias = r.r_bias and hbbp = r.r_hbbp in
  let reference, reference_mix =
    Trace.with_span ~cat:"pipeline" "reference" (fun () ->
        ( Bbec.of_block_counts static (Hbbp_instrument.Sde.block_counts sde),
          Mix.of_histogram (Hbbp_instrument.Sde.histogram sde) ))
  in
  let collection_overhead =
    Session.overhead_fraction ~paper:paper_periods ~stats ~model:config.model
  in
  let sde_slowdown =
    if stats.cycles = 0 then 1.0
    else
      float_of_int (Hbbp_instrument.Sde.instrumented_cycles sde)
      /. float_of_int stats.cycles
  in
  let p =
    {
      workload = w;
      config;
      stats;
      pmu_health = Pmu.health (Session.pmu session);
      clean_cycles = stats.cycles;
      static;
      static_unpatched;
      reference;
      reference_mix;
      ebs;
      lbr;
      bias;
      hbbp;
      sim_periods;
      paper_periods;
      collection_overhead;
      sde_slowdown;
      sde_total = Hbbp_instrument.Sde.total_instructions sde;
      sde_lost_kernel = Hbbp_instrument.Sde.lost_kernel_instructions sde;
      pmu_counts = Pmu.counts counting;
      records = (if config.keep_records then records else []);
      record_count = List.length records;
      quality = r.r_quality;
      repair_report = r.r_repair;
    }
  in
  record_run_metrics p;
  p

(* Each task builds its own machine, PMU session, SDE and PRNG from the
   workload alone, so fanning out over domains cannot perturb results:
   the profile of a workload is a pure function of (workload, config). *)
let run_many ?jobs ?(config = default_config) workloads =
  Hbbp_util.Domain_pool.run ?jobs (fun w -> run ~config w) workloads

let collect_many ?jobs ?(config = default_config) workloads =
  Hbbp_util.Domain_pool.run ?jobs (fun w -> collect_archive ~config w) workloads

let mix_of profile bbec = Mix.user_only (Mix.of_bbec profile.static bbec)
let full_mix_of profile bbec = Mix.of_bbec profile.static bbec

let error_report profile bbec =
  Error.compare_mixes ~reference:profile.reference_mix
    ~measured:(Mix.mnemonic_totals (mix_of profile bbec))

let features profile gid =
  Feature.of_block profile.static ~bias:profile.bias ~ebs:profile.ebs
    ~lbr:profile.lbr ~gid

let sde_pmu_discrepancy profile =
  let user_retired = profile.stats.retired - profile.stats.kernel_retired in
  if user_retired = 0 then 0.0
  else
    Float.abs (Int64.to_float profile.sde_total -. float_of_int user_retired)
    /. float_of_int user_retired
