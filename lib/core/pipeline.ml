open Hbbp_isa
open Hbbp_program
open Hbbp_cpu
open Hbbp_analyzer
open Hbbp_collector
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics

type config = {
  model : Pmu_model.t;
  criteria : Criteria.t;
  periods : [ `Auto | `Fixed of Period.pair ];
  sde : Hbbp_instrument.Sde.config;
  max_instructions : int;
  count_events : Pmu_event.t list;
}

let default_config =
  {
    model = Pmu_model.default;
    criteria = Criteria.default;
    periods = `Auto;
    sde = Hbbp_instrument.Sde.default_config;
    max_instructions = 2_000_000_000;
    count_events = [ Pmu_event.Inst_retired_any ];
  }

type profile = {
  workload : Workload.t;
  config : config;
  stats : Machine.run_stats;
  pmu_health : Pmu.health;
  clean_cycles : int;
  static : Static.t;
  static_unpatched : Static.t;
  reference : Bbec.t;
  reference_mix : (Mnemonic.t * float) list;
  ebs : Ebs_estimator.t;
  lbr : Lbr_estimator.t;
  bias : Bias.t;
  hbbp : Bbec.t;
  sim_periods : Period.pair;
  paper_periods : Period.pair;
  collection_overhead : float;
  sde_slowdown : float;
  sde_total : int64;
  sde_lost_kernel : int;
  pmu_counts : (Pmu_event.t * int64) list;
  records : Record.t list;
}

let user_maps static =
  List.filter_map
    (fun (img : Image.t) ->
      if Ring.equal img.ring Ring.User then
        Static.map_of_image static img.name
      else None)
    (Process.images (Static.process static))

type reconstruction = {
  r_static : Static.t;
  r_ebs : Ebs_estimator.t;
  r_lbr : Lbr_estimator.t;
  r_bias : Bias.t;
  r_hbbp : Bbec.t;
}

(* Sampling-health counters of one reconstruction: everything the paper
   blames estimator error on, as observed by the analyzer itself. *)
let record_reconstruction_metrics (r : reconstruction) =
  if Metrics.enabled () then begin
    let c name n = Metrics.add (Metrics.counter name) n in
    let ebs_samples =
      Array.fold_left ( + ) r.r_ebs.Ebs_estimator.unattributed
        r.r_ebs.Ebs_estimator.raw
    in
    c "ebs.samples" ebs_samples;
    c "ebs.unattributed_samples" r.r_ebs.Ebs_estimator.unattributed;
    c "lbr.snapshots" r.r_lbr.Lbr_estimator.snapshots;
    c "lbr.streams_usable" r.r_lbr.Lbr_estimator.usable_streams;
    c "lbr.streams_inconsistent" r.r_lbr.Lbr_estimator.inconsistent_streams;
    c "lbr.streams_discarded" r.r_lbr.Lbr_estimator.discarded_streams;
    let streams =
      r.r_lbr.Lbr_estimator.usable_streams
      + r.r_lbr.Lbr_estimator.inconsistent_streams
      + r.r_lbr.Lbr_estimator.discarded_streams
    in
    Metrics.set
      (Metrics.gauge "lbr.stream_failure_rate")
      (if streams = 0 then 0.0
       else
         float_of_int (streams - r.r_lbr.Lbr_estimator.usable_streams)
         /. float_of_int streams);
    c "bias.flagged_blocks" (List.length (Bias.flagged_blocks r.r_bias))
  end

let reconstruct ?(criteria = Criteria.default) ~static ~ebs_period ~lbr_period
    records =
  let span name f = Trace.with_span ~cat:"analyze" name f in
  let db = span "sample_db" (fun () -> Sample_db.of_records records) in
  let ebs =
    span "ebs_estimate" (fun () ->
        Ebs_estimator.estimate static ~period:ebs_period db.Sample_db.ebs)
  in
  let lbr =
    span "lbr_estimate" (fun () ->
        Lbr_estimator.estimate static ~period:lbr_period db.Sample_db.lbr)
  in
  let bias = span "bias_detect" (fun () -> Bias.detect static db.Sample_db.lbr) in
  let hbbp =
    span "fuse" (fun () -> Combine.fuse static ~criteria ~bias ~ebs ~lbr)
  in
  let r =
    { r_static = static; r_ebs = ebs; r_lbr = lbr; r_bias = bias; r_hbbp = hbbp }
  in
  record_reconstruction_metrics r;
  r

let collect_archive ?(config = default_config) (w : Workload.t) =
  Trace.with_span ~cat:"pipeline"
    ~args:[ ("workload", w.Workload.name) ]
    "collect_archive"
  @@ fun () ->
  let sim_periods =
    match config.periods with
    | `Auto -> Period.simulation w.Workload.runtime_class
    | `Fixed pair -> pair
  in
  let machine = Machine.create ~process:w.Workload.live_process () in
  let session = Session.configure config.model sim_periods in
  Machine.add_observer machine (Pmu.observer (Session.pmu session));
  let (_ : Machine.run_stats) =
    Trace.with_span ~cat:"pipeline" "execute" (fun () ->
        Machine.run machine ~entry:w.Workload.entry
          ~max_instructions:config.max_instructions ())
  in
  Trace.with_span ~cat:"pipeline" "archive" (fun () ->
      Perf_data.of_session ~workload_name:w.Workload.name ~session
        ~analysis:w.Workload.analysis_process ~live:w.Workload.live_process)

let analyze_archive ?criteria (archive : Perf_data.t) =
  let static = Static.create_exn (Perf_data.analysis_process archive) in
  reconstruct ?criteria ~static ~ebs_period:archive.Perf_data.ebs_period
    ~lbr_period:archive.Perf_data.lbr_period archive.Perf_data.records

(* Run-level counters: execution volume plus the PMU's sampling-health
   accounting (the repo observing its own collection quality, the way
   the paper accounts for perf's). *)
let record_run_metrics (p : profile) =
  if Metrics.enabled () then begin
    let c name n = Metrics.add (Metrics.counter name) n in
    c "pipeline.runs" 1;
    c "pipeline.retired" p.stats.Machine.retired;
    c "pipeline.cycles" p.stats.Machine.cycles;
    c "pipeline.taken_branches" p.stats.Machine.taken_branches;
    c "pipeline.kernel_retired" p.stats.Machine.kernel_retired;
    c "pipeline.records" (List.length p.records);
    Metrics.set
      (Metrics.gauge "pipeline.collection_overhead")
      p.collection_overhead;
    Metrics.set (Metrics.gauge "pipeline.sde_slowdown") p.sde_slowdown;
    let h = p.pmu_health in
    c "pmu.pmi_count" h.Pmu.pmi_count;
    c "pmu.shadow_slides" h.Pmu.shadow_slides;
    c "pmu.lbr_snapshots" h.Pmu.lbr_snapshots;
    c "pmu.lbr_stuck_snapshots" h.Pmu.stuck_snapshots;
    c "pmu.lbr_misrotated_snapshots" h.Pmu.misrotated_snapshots;
    c "pmu.lbr_dropped_records" h.Pmu.dropped_records;
    let skid =
      Metrics.histogram
        ~bounds:(Array.init (Pmu.max_skid_bucket + 1) float_of_int)
        "pmu.skid_displacement"
    in
    Array.iteri
      (fun d n -> if n > 0 then Metrics.observe ~n skid (float_of_int d))
      h.Pmu.skid_hist;
    c "sde.lost_kernel_instructions" p.sde_lost_kernel
  end

let run ?(config = default_config) (w : Workload.t) =
  Trace.with_span ~cat:"pipeline" ~args:[ ("workload", w.Workload.name) ] "run"
  @@ fun () ->
  let sim_periods, paper_periods =
    match config.periods with
    | `Auto -> (Period.simulation w.runtime_class, Period.paper w.runtime_class)
    | `Fixed pair -> (pair, Period.paper w.runtime_class)
  in
  (* Static views: what the analyzer finds on disk, and the same view
     with kernel text patched from the live image (the paper's remedy). *)
  let static_unpatched, static =
    Trace.with_span ~cat:"pipeline" "static" (fun () ->
        let static_unpatched = Static.create_exn w.analysis_process in
        let static =
          if w.analysis_process == w.live_process then static_unpatched
          else Kernel_patch.patch_static static_unpatched ~live:w.live_process
        in
        (static_unpatched, static))
  in
  (* One execution, three observers. *)
  let machine = Machine.create ~process:w.live_process () in
  let sde = Hbbp_instrument.Sde.create config.sde (user_maps static) in
  let session = Session.configure config.model sim_periods in
  let counting = Pmu.create config.model
      (List.map
         (fun event -> { Pmu.event; mode = Pmu.Counting })
         config.count_events)
  in
  Machine.add_observer machine (Hbbp_instrument.Sde.observer sde);
  Machine.add_observer machine (Pmu.observer (Session.pmu session));
  Machine.add_observer machine (Pmu.observer counting);
  let stats =
    Trace.with_span ~cat:"pipeline" "execute" (fun () ->
        Machine.run machine ~entry:w.entry
          ~max_instructions:config.max_instructions ())
  in
  (* Collection output and reconstruction. *)
  let records =
    Trace.with_span ~cat:"pipeline" "collect" (fun () ->
        Session.records session w.live_process ~pid:1 ~name:w.name)
  in
  let r =
    reconstruct ~criteria:config.criteria ~static
      ~ebs_period:(Session.ebs_period session)
      ~lbr_period:(Session.lbr_period session) records
  in
  let ebs = r.r_ebs and lbr = r.r_lbr and bias = r.r_bias and hbbp = r.r_hbbp in
  let reference, reference_mix =
    Trace.with_span ~cat:"pipeline" "reference" (fun () ->
        ( Bbec.of_block_counts static (Hbbp_instrument.Sde.block_counts sde),
          Mix.of_histogram (Hbbp_instrument.Sde.histogram sde) ))
  in
  let collection_overhead =
    Session.overhead_fraction ~paper:paper_periods ~stats ~model:config.model
  in
  let sde_slowdown =
    if stats.cycles = 0 then 1.0
    else
      float_of_int (Hbbp_instrument.Sde.instrumented_cycles sde)
      /. float_of_int stats.cycles
  in
  let p =
    {
      workload = w;
      config;
      stats;
      pmu_health = Pmu.health (Session.pmu session);
      clean_cycles = stats.cycles;
      static;
      static_unpatched;
      reference;
      reference_mix;
      ebs;
      lbr;
      bias;
      hbbp;
      sim_periods;
      paper_periods;
      collection_overhead;
      sde_slowdown;
      sde_total = Hbbp_instrument.Sde.total_instructions sde;
      sde_lost_kernel = Hbbp_instrument.Sde.lost_kernel_instructions sde;
      pmu_counts = Pmu.counts counting;
      records;
    }
  in
  record_run_metrics p;
  p

(* Each task builds its own machine, PMU session, SDE and PRNG from the
   workload alone, so fanning out over domains cannot perturb results:
   the profile of a workload is a pure function of (workload, config). *)
let run_many ?jobs ?(config = default_config) workloads =
  Hbbp_util.Domain_pool.run ?jobs (fun w -> run ~config w) workloads

let collect_many ?jobs ?(config = default_config) workloads =
  Hbbp_util.Domain_pool.run ?jobs (fun w -> collect_archive ~config w) workloads

let mix_of profile bbec = Mix.user_only (Mix.of_bbec profile.static bbec)
let full_mix_of profile bbec = Mix.of_bbec profile.static bbec

let error_report profile bbec =
  Error.compare_mixes ~reference:profile.reference_mix
    ~measured:(Mix.mnemonic_totals (mix_of profile bbec))

let features profile gid =
  Feature.of_block profile.static ~bias:profile.bias ~ebs:profile.ebs
    ~lbr:profile.lbr ~gid

let sde_pmu_discrepancy profile =
  let user_retired = profile.stats.retired - profile.stats.kernel_retired in
  if user_retired = 0 then 0.0
  else
    Float.abs (Int64.to_float profile.sde_total -. float_of_int user_retired)
    /. float_of_int user_retired
