(** Resumable collection and checkpointed streaming analysis.

    Both entry points rest on determinism already guaranteed
    elsewhere: a collection is a pure function of (workload, config),
    and {!Pipeline.Partial.merge} is associative over integer
    accumulators — so re-running the missing suffix of an interrupted
    run converges to output {e byte-identical} to the uninterrupted
    one (the kill-chaos suite enforces this). *)

open Hbbp_collector

(** Raised when [should_stop] reported true at a safe point; all
    progress up to that point has been durably published (manifest /
    checkpoint), so a later [--resume] continues from it. *)
exception Interrupted

(** How one shard was settled: [Reused] — the on-disk file already
    held the exact bytes; [Written] — it was (re)published. *)
type shard_status = Reused | Written

(** The shard files [collect_sharded ~shards ~path] publishes. *)
val shard_paths : shards:int -> path:string -> string list

(** [collect_sharded ~shards ~path w] — collect [w] and publish its
    shards with a progressive {!Manifest} sidecar.

    With [resume]: a complete manifest whose shards all verify (size +
    CRC) skips the collection entirely; otherwise stale staging files
    are removed, the workload is re-collected, and each shard is
    byte-compared against disk — identical files are kept ([Reused],
    counted in [recover.shards_reused]), everything else is atomically
    (re)written ([Written], counted in [recover.shards_rewritten]).

    [should_stop] is polled at shard boundaries; when it reports true
    the manifest so far is saved and {!Interrupted} raised.
    [inter_shard_delay_s] widens the publication window (chaos
    testing). *)
val collect_sharded :
  ?config:Pipeline.config ->
  ?version:int ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?inter_shard_delay_s:float ->
  shards:int ->
  path:string ->
  Workload.t ->
  string list * shard_status list

val default_checkpoint_every : int

(** [analyze_archives ~checkpoint paths] —
    {!Pipeline.analyze_archives} with a {!Checkpoint} saved after
    every [checkpoint_every] consumed archives (default
    {!default_checkpoint_every}).

    With [resume], a checkpoint at [checkpoint] that loads cleanly,
    restores cleanly against the first archive's static view, and
    names a prefix of [paths] is continued from ([checkpoint.restores]
    metric); any damage or mismatch silently falls back to a full
    run.  [should_stop] is polled between archives; when it reports
    true the current state is checkpointed and {!Interrupted} raised.
    On success the checkpoint file is deleted and the result is
    byte-identical to the uninterrupted analysis. *)
val analyze_archives :
  ?criteria:Criteria.t ->
  ?thresholds:Pipeline.thresholds ->
  ?repair:Pipeline.repair_mode ->
  ?chunk_records:int ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  checkpoint:string ->
  string list ->
  (Perf_data.t * Pipeline.reconstruction, string) result
