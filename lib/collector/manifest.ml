(* Sidecar manifest of a sharded collection: which shards have been
   published, with the exact size and CRC-32 of each, and whether the
   set is complete.  The manifest is rewritten (atomically, via
   Durable) after every shard, so after a kill -9 at any point the
   manifest names exactly the shards that were durably published —
   what `--resume` trusts instead of re-reading every archive. *)

module Durable = Hbbp_durable.Durable
module Crc32 = Hbbp_util.Crc32

type shard = { index : int; file : string; size : int; crc32 : int }

type t = {
  label : string;
  shards : int;
  written : shard list;  (* ascending index order *)
  complete : bool;
}

let magic_line = "hbbp-manifest v1"

let path_for archive_path = archive_path ^ ".manifest"

let shard_of_bytes ~index ~file data =
  { index; file; size = Bytes.length data; crc32 = Crc32.bytes data }

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b magic_line;
  Buffer.add_char b '\n';
  Printf.bprintf b "label %s\n" t.label;
  Printf.bprintf b "shards %d\n" t.shards;
  List.iter
    (fun s ->
      (* Basename last: it is the only field that may contain spaces. *)
      Printf.bprintf b "shard %d %d %08x %s\n" s.index s.size s.crc32 s.file)
    t.written;
  if t.complete then Buffer.add_string b "complete\n";
  Buffer.contents b

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' text)
  in
  match lines with
  | first :: rest when String.equal first magic_line ->
      let strip_prefix p l =
        if String.starts_with ~prefix:p l then
          Some (String.sub l (String.length p) (String.length l - String.length p))
        else None
      in
      List.fold_left
        (fun acc line ->
          let* t = acc in
          match strip_prefix "label " line with
          | Some label -> Ok { t with label }
          | None -> (
              match strip_prefix "shards " line with
              | Some n -> (
                  match int_of_string_opt n with
                  | Some shards when shards >= 1 -> Ok { t with shards }
                  | _ -> Error (Printf.sprintf "manifest: bad shard count %S" n))
              | None -> (
                  match strip_prefix "shard " line with
                  | Some body -> (
                      match String.split_on_char ' ' body with
                      | index :: size :: crc :: (_ :: _ as file_parts) -> (
                          match
                            ( int_of_string_opt index,
                              int_of_string_opt size,
                              int_of_string_opt ("0x" ^ crc) )
                          with
                          | Some index, Some size, Some crc32 ->
                              Ok
                                {
                                  t with
                                  written =
                                    t.written
                                    @ [
                                        {
                                          index;
                                          file = String.concat " " file_parts;
                                          size;
                                          crc32;
                                        };
                                      ];
                                }
                          | _ ->
                              Error
                                (Printf.sprintf "manifest: bad shard line %S"
                                   line))
                      | _ ->
                          Error
                            (Printf.sprintf "manifest: bad shard line %S" line))
                  | None ->
                      if String.equal line "complete" then
                        Ok { t with complete = true }
                      else Error (Printf.sprintf "manifest: bad line %S" line))))
        (Ok { label = ""; shards = 0; written = []; complete = false })
        rest
  | _ -> Error "manifest: bad magic line"

let save t ~archive_path =
  Durable.write_file ~path:(path_for archive_path) (to_string t)

let load ~archive_path =
  let path = path_for archive_path in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Some (Error e)
    | text -> Some (of_string text)

(* A shard entry is trusted only when the named file exists with the
   recorded size and CRC — the archive's own section checksums guard
   parsing, this guards "is it the bytes the manifest promised". *)
let shard_ok ~dir s =
  let path = Filename.concat dir s.file in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> false
  | data ->
      String.length data = s.size && Crc32.string data = s.crc32

let verified_indices ~dir t =
  List.filter_map (fun s -> if shard_ok ~dir s then Some s.index else None)
    t.written
