(** Sidecar manifest of a sharded collection.

    Lives next to the archive at [<path>.manifest] and is rewritten
    atomically after every published shard, so at any kill point it
    names exactly the set of durably published shards.  [--resume]
    reads it back, re-verifies each named shard by size and CRC-32,
    and only re-collects what is missing or torn.

    The format is line-oriented text:

    {v hbbp-manifest v1
       label mcf
       shards 3
       shard 0 15816 f0a1b2c3 trace.0of3.hbbp
       shard 1 15704 9d8e7f60 trace.1of3.hbbp
       shard 2 15790 01234567 trace.2of3.hbbp
       complete v}

    A manifest without the trailing [complete] line describes an
    interrupted collection. *)

type shard = {
  index : int;
  file : string;  (** Basename, relative to the archive's directory. *)
  size : int;
  crc32 : int;
}

type t = {
  label : string;  (** Free-form (the workload name). *)
  shards : int;
  written : shard list;  (** Ascending index order. *)
  complete : bool;
}

(** [path_for archive_path] — the sidecar path, [archive_path ^ ".manifest"]. *)
val path_for : string -> string

(** Describe one published shard (computes the CRC). *)
val shard_of_bytes : index:int -> file:string -> bytes -> shard

val to_string : t -> string
val of_string : string -> (t, string) result

(** Atomically (re)write the sidecar for [archive_path]. *)
val save : t -> archive_path:string -> unit

(** [None] when no sidecar exists. *)
val load : archive_path:string -> (t, string) result option

(** Does the named shard exist in [dir] with the recorded size and
    CRC-32? *)
val shard_ok : dir:string -> shard -> bool

(** Indices of the written shards that verify on disk. *)
val verified_indices : dir:string -> t -> int list
