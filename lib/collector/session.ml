open Hbbp_program
open Hbbp_cpu
module Faults = Hbbp_faults.Faults

type t = { pmu : Pmu.t; ebs_period : int; lbr_period : int }

let configure model (pair : Period.pair) =
  let pmu =
    Pmu.create model
      [
        {
          Pmu.event = Pmu_event.Inst_retired_prec_dist;
          mode = Pmu.Sampling { period = pair.ebs; lbr = true };
        };
        {
          Pmu.event = Pmu_event.Br_inst_retired_near_taken;
          mode = Pmu.Sampling { period = pair.lbr; lbr = true };
        };
      ]
  in
  { pmu; ebs_period = pair.ebs; lbr_period = pair.lbr }

let pmu t = t.pmu
let ebs_period t = t.ebs_period
let lbr_period t = t.lbr_period

let records t process ~pid ~name =
  let header =
    Record.Comm { pid; name }
    :: List.map
         (fun (img : Image.t) ->
           Record.Mmap
             {
               addr = img.base;
               len = Image.size img;
               name = img.name;
               ring = img.ring;
             })
         (Process.images process)
  in
  let samples =
    List.map
      (fun (s : Pmu.sample) ->
        Record.Sample
          {
            Record.event = s.event;
            ip = s.ip;
            lbr = s.lbr;
            ring = s.ring;
            time = s.cycles;
          })
      (Pmu.samples t.pmu)
  in
  let stream = header @ samples in
  (* Collector-layer fault injection: when a plan with record faults is
     armed, drop/reorder records and — like perf reporting ring-buffer
     overruns — close the stream with a LOST record summarizing the
     damage, so analyzers can see that data went missing. *)
  match Faults.stream_injector () with
  | None -> stream
  | Some inj ->
      let classify : Record.t -> Faults.record_class = function
        | Record.Comm _ -> Faults.Rec_comm
        | Record.Mmap _ -> Faults.Rec_mmap
        | Record.Sample _ -> Faults.Rec_sample
        | Record.Fork _ | Record.Lost _ -> Faults.Rec_other
      in
      let kept, dropped = Faults.apply_stream inj ~classify stream in
      if dropped > 0 then kept @ [ Record.Lost dropped ] else kept

let overhead_fraction ~(paper : Period.pair) ~(stats : Machine.run_stats)
    ~(model : Pmu_model.t) =
  if stats.cycles = 0 then 0.0
  else
    let ebs_pmis = float_of_int stats.retired /. float_of_int paper.ebs in
    let lbr_pmis =
      float_of_int stats.taken_branches /. float_of_int paper.lbr
    in
    (ebs_pmis +. lbr_pmis)
    *. float_of_int model.pmi_cost_cycles
    /. float_of_int stats.cycles
