(** On-disk archive of a collection run — the moral equivalent of a
    perf.data file plus the bits a later analysis needs:

    - the mapped images (name, base, ring, symbols and {e on-disk} code —
      what an analyzer could read from the filesystem);
    - the live [.text] of every kernel image, captured at collection time
      (paper section III.C: the self-modifying kernel remedy needs it);
    - the record stream (comm/mmap/samples/lost).

    The current format (v2) is a length-prefixed little-endian binary
    with a magic header and {b four checksummed sections} (header,
    images, kernel text, records): each section carries its payload
    length, item count and CRC-32, so readers detect truncation and bit
    rot before parsing.  v1 archives (flat, no integrity data) are still
    readable.

    Reading {b salvages} rather than aborts: a truncated or corrupt
    record stream yields its parseable prefix plus a typed fault
    {!ledger}; only damage to the metadata sections (without which
    nothing can be analyzed) is a hard {!error}. *)

open Hbbp_program

type t = {
  workload_name : string;
  ebs_period : int;
  lbr_period : int;
  analysis_images : Image.t list;  (** What is findable on disk. *)
  live_kernel_text : (string * bytes) list;  (** Image name → live code. *)
  records : Record.t list;
}

(** [of_session ~workload_name ~session ~analysis ~live] assembles the
    archive from a finished collection: [analysis] is the process an
    offline analyzer could reconstruct (disk kernel), [live] the process
    that ran. *)
val of_session :
  workload_name:string ->
  session:Session.t ->
  analysis:Process.t ->
  live:Process.t ->
  t

(** [analysis_process t] — the images as mapped, kernel text patched with
    the captured live text (ready for {!Hbbp_analyzer.Static.create}). *)
val analysis_process : t -> Process.t

(** {1 Errors, faults and salvage} *)

(** Hard errors: nothing usable could be recovered. *)
type error = Bad_magic | Bad_version of int | Truncated | Corrupt of string

val pp_error : Format.formatter -> error -> unit

type section = Header | Images | Kernel_text | Records

val section_name : section -> string

(** One entry of the fault ledger: damage the reader detected and
    survived.  A non-empty ledger means the archive was salvaged and any
    analysis of it is degraded. *)
type fault =
  | Checksum_mismatch of section
      (** Section payload present but CRC-32 did not match (v2 only). *)
  | Truncated_records of { expected : int option; salvaged : int }
      (** The record stream was cut short; [expected] is the declared
          record count when known (v2, or a v1 count that was readable). *)
  | Corrupt_records of { index : int; reason : string; salvaged : int }
      (** Record [index] failed to parse; the stream was kept up to it. *)

val pp_fault : Format.formatter -> fault -> unit

(** A successful (possibly salvaged) read. *)
type read = { archive : t; ledger : fault list }

(** {1 Serialization} *)

val current_version : int

(** [to_bytes ?version t] — serialize; [version] is [2] (default,
    checksummed sections) or [1] (legacy flat format).
    @raise Invalid_argument on any other version. *)
val to_bytes : ?version:int -> t -> bytes

(** Total: returns [Ok] (with a ledger describing any salvage) or a
    typed [Error] — never raises, whatever the input bytes. *)
val of_bytes : bytes -> (read, error) result

(** [save ?version t ~path] — write the archive atomically
    ({!Hbbp_durable.Durable.write_bytes}: tmp + fsync + rename), so a
    crash mid-write never leaves a torn file.  When a fault plan with
    archive faults is armed ({!Hbbp_faults.Faults.arm}), the serialized
    bytes are mangled (bit flips / truncation) before hitting disk. *)
val save : ?version:int -> t -> path:string -> unit

val load : path:string -> (read, error) result

(** {1 Sharded writing}

    [save_sharded ?version t ~shards ~path] splits the record stream
    into [shards] contiguous slices and writes one archive per slice
    (identical metadata, so each shard is independently analyzable);
    returns the paths written.  ["trace.hbbp"] with 3 shards becomes
    ["trace.0of3.hbbp"] … ["trace.2of3.hbbp"]; with [shards = 1] the
    archive is written to [path] unchanged.  Concatenating the shards'
    record streams in order reproduces [t.records] exactly.  Each
    shard is published atomically, and a complete {!Manifest} sidecar
    is written last.
    @raise Invalid_argument when [shards < 1]. *)
val save_sharded :
  ?version:int -> t -> shards:int -> path:string -> string list

(** [shard_path path i shards] — the name of shard [i]:
    ["trace.hbbp"] → ["trace.0of3.hbbp"]. *)
val shard_path : string -> int -> int -> string

(** [sharded_bytes ?version t ~shards ~path] — the exact
    (path, bytes) each shard of {!save_sharded} would publish, without
    touching the filesystem (archive-fault mangling included).  The
    unit of comparison for resumable collection. *)
val sharded_bytes :
  ?version:int -> t -> shards:int -> path:string -> (string * bytes) list

(** {1 Chunked streaming reader}

    Reads an archive's records in bounded chunks instead of
    materializing the whole list: metadata sections are parsed up front
    (they must be held anyway), then records are yielded straight off
    the file through a small pending buffer, with the section CRC folded
    incrementally ({!Hbbp_util.Crc32.update}).  Salvage semantics are
    {b identical} to {!of_bytes}: the records handed out and the final
    {!Stream.ledger} match the batch reader byte for byte, whatever the
    damage.  (A parse fault is only classified once the remaining
    payload is fully buffered, so a damaged archive can cost its tail in
    memory — but clean archives stream in O(chunk) space.  v1 archives
    have no section structure and fall back to buffered reading.) *)
module Stream : sig
  type stream

  (** Default records per {!next} chunk (4096). *)
  val default_chunk_records : int

  (** Open an archive for streaming.  Fails with the same typed errors
      as {!of_bytes} (bad magic/version, or damaged {e metadata}
      sections — record damage is salvaged, not an error).
      @raise Invalid_argument when [chunk_records < 1]. *)
  val open_file : ?chunk_records:int -> string -> (stream, error) result

  (** The archive's metadata with [records = []] — enough for
      {!analysis_process} and shard-compatibility checks. *)
  val meta : stream -> t

  (** Next chunk of records (at most [chunk_records]), [None] when
      exhausted. *)
  val next : stream -> Record.t list option

  (** Salvage ledger, equal to what {!of_bytes} would report.  Complete
      once {!next} returned [None]; calling it earlier drains (and
      discards) the remaining records first. *)
  val ledger : stream -> fault list

  val close : stream -> unit
end

(** [fold_file ~init ~f path] — stream every record chunk of the archive
    at [path] through [f]; returns the metadata (with [records = []]),
    the final accumulator and the salvage ledger. *)
val fold_file :
  ?chunk_records:int ->
  init:'acc ->
  f:('acc -> Record.t list -> 'acc) ->
  string ->
  (t * 'acc * fault list, error) result
