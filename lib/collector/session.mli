(** The HBBP collection session.

    Simultaneous EBS and LBR collection is not supported by the kernel,
    so (paper section V.A) the collector programs {b two counters, both in
    LBR mode}, within a single execution:

    - [INST_RETIRED:PREC_DIST] sampling — the {b EBS source}: the eventing
      IP is kept, the LBR payload is discarded at analysis time;
    - [BR_INST_RETIRED:NEAR_TAKEN] sampling — the {b LBR source}: the LBR
      stack is kept, the eventing IP is discarded.

    The workload runs once and the output stream contains both kinds of
    data. *)

open Hbbp_program
open Hbbp_cpu

type t

(** [configure model pair] builds the dual-LBR PMU configuration. *)
val configure : Pmu_model.t -> Period.pair -> t

(** The PMU to attach to the machine ({!Machine.add_observer} its
    {!Pmu.observer}). *)
val pmu : t -> Pmu.t

(** [records t process ~pid ~name] — the perf.data-style stream: COMM and
    MMAP records for every image, then all samples.

    When a fault plan with collector faults is armed
    ({!Hbbp_faults.Faults.arm}), records are dropped/reordered per the
    plan and a trailing [Lost] record reports how many were dropped
    (perf's ring-buffer-overrun convention).  Disarmed, the hook is a
    single [option] load. *)
val records : t -> Process.t -> pid:int -> name:string -> Record.t list

val ebs_period : t -> int
val lbr_period : t -> int

(** [overhead_fraction ~paper ~stats ~model] — modelled runtime overhead
    of collection at the {e paper-scale} periods: PMIs per cycle times
    the per-PMI cost.  This is what the paper reports as "time penalty"
    (0.5% on SPEC, 2.3% on Test40). *)
val overhead_fraction :
  paper:Period.pair -> stats:Machine.run_stats -> model:Pmu_model.t -> float
