open Hbbp_program
open Hbbp_cpu
module Crc32 = Hbbp_util.Crc32
module Faults = Hbbp_faults.Faults

type t = {
  workload_name : string;
  ebs_period : int;
  lbr_period : int;
  analysis_images : Image.t list;
  live_kernel_text : (string * bytes) list;
  records : Record.t list;
}

let of_session ~workload_name ~session ~analysis ~live =
  {
    workload_name;
    ebs_period = Session.ebs_period session;
    lbr_period = Session.lbr_period session;
    analysis_images = Process.images analysis;
    live_kernel_text =
      List.filter_map
        (fun (img : Image.t) ->
          if Ring.equal img.ring Ring.Kernel then
            Some (img.name, Bytes.copy img.code)
          else None)
        (Process.images live);
    records = Session.records session live ~pid:1 ~name:workload_name;
  }

let analysis_process t =
  let images =
    List.map
      (fun (img : Image.t) ->
        match List.assoc_opt img.name t.live_kernel_text with
        | Some live_code when Ring.equal img.ring Ring.Kernel ->
            Image.make ~name:img.name ~base:img.base ~code:live_code
              ~symbols:img.symbols ~ring:img.ring
        | _ -> img)
      t.analysis_images
  in
  Process.create images

(* ------------------------------------------------------------------ *)
(* Binary format                                                       *)

type error = Bad_magic | Bad_version of int | Truncated | Corrupt of string

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Truncated -> Format.pp_print_string ppf "truncated archive"
  | Corrupt what -> Format.fprintf ppf "corrupt archive: %s" what

type section = Header | Images | Kernel_text | Records

let section_name = function
  | Header -> "header"
  | Images -> "images"
  | Kernel_text -> "kernel text"
  | Records -> "records"

type fault =
  | Checksum_mismatch of section
  | Truncated_records of { expected : int option; salvaged : int }
  | Corrupt_records of { index : int; reason : string; salvaged : int }

let pp_fault ppf = function
  | Checksum_mismatch s ->
      Format.fprintf ppf "%s section checksum mismatch" (section_name s)
  | Truncated_records { expected = Some n; salvaged } ->
      Format.fprintf ppf "records truncated: salvaged %d of %d" salvaged n
  | Truncated_records { expected = None; salvaged } ->
      Format.fprintf ppf "records truncated: salvaged %d (total unknown)"
        salvaged
  | Corrupt_records { index; reason; salvaged } ->
      Format.fprintf ppf "record %d corrupt (%s): salvaged %d" index reason
        salvaged

type read = { archive : t; ledger : fault list }

let magic = "HBBPDATA"

(* v1: one flat length-prefixed stream, no integrity data.
   v2: the same primitives, but grouped into four sections — header,
   images, kernel text, records — each preceded by (payload length,
   item count, CRC-32).  Readers can verify integrity before parsing
   and salvage the record stream independently of the metadata. *)
let current_version = 2

(* -- writer -- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_string buf s =
  w_i64 buf (String.length s);
  Buffer.add_string buf s

let w_bytes buf b =
  w_i64 buf (Bytes.length b);
  Buffer.add_bytes buf b

let w_list buf f items =
  w_i64 buf (List.length items);
  List.iter (f buf) items

let w_ring buf = function Ring.User -> w_u8 buf 0 | Ring.Kernel -> w_u8 buf 1

let w_image buf (img : Image.t) =
  w_string buf img.name;
  w_i64 buf img.base;
  w_ring buf img.ring;
  w_bytes buf img.code;
  w_list buf
    (fun buf (s : Symbol.t) ->
      w_string buf s.name;
      w_i64 buf s.addr;
      w_i64 buf s.size)
    img.symbols

let w_event buf e = w_string buf (Pmu_event.to_string e)

let w_record buf (r : Record.t) =
  match r with
  | Record.Comm { pid; name } ->
      w_u8 buf 0;
      w_i64 buf pid;
      w_string buf name
  | Record.Mmap { addr; len; name; ring } ->
      w_u8 buf 1;
      w_i64 buf addr;
      w_i64 buf len;
      w_string buf name;
      w_ring buf ring
  | Record.Fork { parent; child } ->
      w_u8 buf 2;
      w_i64 buf parent;
      w_i64 buf child
  | Record.Sample s ->
      w_u8 buf 3;
      w_event buf s.Record.event;
      w_i64 buf s.Record.ip;
      w_ring buf s.Record.ring;
      w_i64 buf s.Record.time;
      w_i64 buf (Array.length s.Record.lbr);
      Array.iter
        (fun (e : Lbr.entry) ->
          w_i64 buf e.src;
          w_i64 buf e.tgt)
        s.Record.lbr
  | Record.Lost n ->
      w_u8 buf 4;
      w_i64 buf n

let w_header_payload buf t =
  w_string buf t.workload_name;
  w_i64 buf t.ebs_period;
  w_i64 buf t.lbr_period

let w_kernel_text buf (name, code) =
  w_string buf name;
  w_bytes buf code

(* A v2 section: payload length, item count, CRC-32 of the payload,
   then the payload itself. *)
let w_section buf ~count payload =
  let p = Buffer.contents payload in
  w_i64 buf (String.length p);
  w_i64 buf count;
  w_i64 buf (Crc32.string p);
  Buffer.add_string buf p

let to_bytes ?(version = current_version) t =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_u8 buf version;
  (match version with
  | 1 ->
      w_header_payload buf t;
      w_list buf w_image t.analysis_images;
      w_list buf w_kernel_text t.live_kernel_text;
      w_list buf w_record t.records
  | 2 ->
      let payload f =
        let b = Buffer.create 4096 in
        f b;
        b
      in
      w_section buf ~count:0 (payload (fun b -> w_header_payload b t));
      w_section buf
        ~count:(List.length t.analysis_images)
        (payload (fun b -> List.iter (w_image b) t.analysis_images));
      w_section buf
        ~count:(List.length t.live_kernel_text)
        (payload (fun b -> List.iter (w_kernel_text b) t.live_kernel_text));
      w_section buf
        ~count:(List.length t.records)
        (payload (fun b -> List.iter (w_record b) t.records))
  | v -> invalid_arg (Printf.sprintf "Perf_data.to_bytes: unknown version %d" v));
  Buffer.to_bytes buf

(* -- reader -- *)

exception Parse of error

(* A bounded cursor: [limit] caps every read, so a corrupt length in one
   v2 section can never pull bytes from the next one, and no arithmetic
   on attacker-controlled lengths can overflow past the buffer. *)
type cursor = { data : bytes; mutable pos : int; limit : int }

let remaining c = c.limit - c.pos
let need c n = if n < 0 || n > remaining c then raise (Parse Truncated)

let r_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.data c.pos in
  c.pos <- c.pos + 1;
  v

let r_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  if v < 0 then raise (Parse (Corrupt "negative length"));
  v

let r_string c =
  let n = r_i64 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_bytes c =
  let n = r_i64 c in
  need c n;
  let b = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  b

(* Guard a parsed item count against the bytes that could possibly back
   it (every item needs at least [min_item_size] bytes), so a flipped
   count field raises a typed error instead of attempting a giant
   allocation. *)
let r_count c ~min_item_size =
  let n = r_i64 c in
  if min_item_size > 0 && n > remaining c / min_item_size then
    raise (Parse (Corrupt (Printf.sprintf "implausible count %d" n)));
  n

let r_list c ?(min_item_size = 1) f =
  let n = r_count c ~min_item_size in
  List.init n (fun _ -> f c)

let r_ring c =
  match r_u8 c with
  | 0 -> Ring.User
  | 1 -> Ring.Kernel
  | v -> raise (Parse (Corrupt (Printf.sprintf "ring tag %d" v)))

let r_image c =
  let name = r_string c in
  let base = r_i64 c in
  let ring = r_ring c in
  let code = r_bytes c in
  let symbols =
    r_list c ~min_item_size:24 (fun c ->
        let name = r_string c in
        let addr = r_i64 c in
        let size = r_i64 c in
        Symbol.make ~name ~addr ~size)
  in
  Image.make ~name ~base ~code ~symbols ~ring

let r_kernel_text c =
  let name = r_string c in
  let code = r_bytes c in
  (name, code)

let r_record c =
  match r_u8 c with
  | 0 ->
      let pid = r_i64 c in
      let name = r_string c in
      Record.Comm { pid; name }
  | 1 ->
      let addr = r_i64 c in
      let len = r_i64 c in
      let name = r_string c in
      let ring = r_ring c in
      Record.Mmap { addr; len; name; ring }
  | 2 ->
      let parent = r_i64 c in
      let child = r_i64 c in
      Record.Fork { parent; child }
  | 3 ->
      let event_name = r_string c in
      let event =
        match Pmu_event.of_string event_name with
        | Some e -> e
        | None -> raise (Parse (Corrupt ("event " ^ event_name)))
      in
      let ip = r_i64 c in
      let ring = r_ring c in
      let time = r_i64 c in
      let n = r_count c ~min_item_size:16 in
      let lbr =
        Array.init n (fun _ ->
            let src = r_i64 c in
            let tgt = r_i64 c in
            { Lbr.src; tgt })
      in
      Record.Sample { Record.event; ip; lbr; ring; time }
  | 4 -> Record.Lost (r_i64 c)
  | tag -> raise (Parse (Corrupt (Printf.sprintf "record tag %d" tag)))

(* Salvage loop: read up to [expected] records, keeping the parseable
   prefix.  Returns the records, how many were salvaged and the error
   that ended the walk (if any). *)
let r_records_salvage c ~expected =
  let rec go acc i =
    if i >= expected then (List.rev acc, i, None)
    else
      match r_record c with
      | r -> go (r :: acc) (i + 1)
      | exception Parse e -> (List.rev acc, i, Some e)
  in
  go [] 0

let records_fault ~expected ~salvaged = function
  | Truncated -> Truncated_records { expected; salvaged }
  | Corrupt reason -> Corrupt_records { index = salvaged; reason; salvaged }
  | Bad_magic | Bad_version _ ->
      Corrupt_records { index = salvaged; reason = "malformed"; salvaged }

(* -- v1 reader: metadata errors are fatal, the trailing record list is
   salvaged to its parseable prefix -- *)

let of_bytes_v1 c =
  let workload_name = r_string c in
  let ebs_period = r_i64 c in
  let lbr_period = r_i64 c in
  let analysis_images = r_list c ~min_item_size:26 r_image in
  let live_kernel_text = r_list c ~min_item_size:16 r_kernel_text in
  let ledger = ref [] in
  let records =
    match r_count c ~min_item_size:1 with
    | exception Parse e ->
        ledger := [ records_fault ~expected:None ~salvaged:0 e ];
        []
    | expected -> (
        let records, salvaged, err = r_records_salvage c ~expected in
        match err with
        | None -> records
        | Some e ->
            ledger := [ records_fault ~expected:(Some expected) ~salvaged e ];
            records)
  in
  {
    archive =
      { workload_name; ebs_period; lbr_period; analysis_images;
        live_kernel_text; records };
    ledger = !ledger;
  }

(* -- v2 reader -- *)

(* Read one section header and return a cursor bounded to its payload,
   plus the declared item count and integrity flags.  [complete] is
   false when the payload itself is cut short. *)
let r_section c =
  let len = r_i64 c in
  let count = r_i64 c in
  let crc = r_i64 c in
  let avail = min len (remaining c) in
  let complete = avail = len in
  let crc_ok = complete && Crc32.bytes ~off:c.pos ~len c.data = crc in
  let sub = { data = c.data; pos = c.pos; limit = c.pos + avail } in
  c.pos <- c.pos + avail;
  (sub, count, complete, crc_ok)

(* Metadata sections (header, images, kernel text) must be complete and
   checksum-clean: without intact images there is nothing to analyze. *)
let r_meta_section c ~section parse =
  let sub, count, complete, crc_ok = r_section c in
  if not complete then raise (Parse Truncated);
  if not crc_ok then
    raise (Parse (Corrupt (section_name section ^ " checksum mismatch")));
  parse sub count

let of_bytes_v2 c =
  let workload_name = ref "" and ebs_period = ref 0 and lbr_period = ref 0 in
  r_meta_section c ~section:Header (fun sub _ ->
      workload_name := r_string sub;
      ebs_period := r_i64 sub;
      lbr_period := r_i64 sub);
  let analysis_images =
    r_meta_section c ~section:Images (fun sub count ->
        List.init count (fun _ -> r_image sub))
  in
  let live_kernel_text =
    r_meta_section c ~section:Kernel_text (fun sub count ->
        List.init count (fun _ -> r_kernel_text sub))
  in
  (* The records section is salvageable: a truncated or corrupt stream
     yields its parseable prefix plus a ledger, never a failure. *)
  let ledger = ref [] in
  let records =
    match r_section c with
    | exception Parse _ ->
        ledger := [ Truncated_records { expected = None; salvaged = 0 } ];
        []
    | sub, expected, complete, crc_ok -> (
        if complete && not crc_ok then
          ledger := [ Checksum_mismatch Records ];
        let records, salvaged, err = r_records_salvage sub ~expected in
        match err with
        | None ->
            if not complete then
              ledger :=
                Truncated_records { expected = Some expected; salvaged }
                :: !ledger;
            records
        | Some e ->
            ledger :=
              records_fault ~expected:(Some expected) ~salvaged e :: !ledger;
            records)
  in
  {
    archive =
      { workload_name = !workload_name; ebs_period = !ebs_period;
        lbr_period = !lbr_period; analysis_images; live_kernel_text; records };
    ledger = List.rev !ledger;
  }

let of_bytes data =
  try
    if Bytes.length data < String.length magic then raise (Parse Truncated);
    if
      not (String.equal (Bytes.sub_string data 0 (String.length magic)) magic)
    then raise (Parse Bad_magic);
    let c =
      { data; pos = String.length magic; limit = Bytes.length data }
    in
    match r_u8 c with
    | 1 -> Ok (of_bytes_v1 c)
    | 2 -> Ok (of_bytes_v2 c)
    | v -> raise (Parse (Bad_version v))
  with Parse e -> Error e

let save ?version t ~path =
  let data = Faults.mangle_archive (to_bytes ?version t) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc data)

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      of_bytes data)
