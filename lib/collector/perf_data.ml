open Hbbp_program
open Hbbp_cpu
module Crc32 = Hbbp_util.Crc32
module Faults = Hbbp_faults.Faults

type t = {
  workload_name : string;
  ebs_period : int;
  lbr_period : int;
  analysis_images : Image.t list;
  live_kernel_text : (string * bytes) list;
  records : Record.t list;
}

let of_session ~workload_name ~session ~analysis ~live =
  {
    workload_name;
    ebs_period = Session.ebs_period session;
    lbr_period = Session.lbr_period session;
    analysis_images = Process.images analysis;
    live_kernel_text =
      List.filter_map
        (fun (img : Image.t) ->
          if Ring.equal img.ring Ring.Kernel then
            Some (img.name, Bytes.copy img.code)
          else None)
        (Process.images live);
    records = Session.records session live ~pid:1 ~name:workload_name;
  }

let analysis_process t =
  let images =
    List.map
      (fun (img : Image.t) ->
        match List.assoc_opt img.name t.live_kernel_text with
        | Some live_code when Ring.equal img.ring Ring.Kernel ->
            Image.make ~name:img.name ~base:img.base ~code:live_code
              ~symbols:img.symbols ~ring:img.ring
        | _ -> img)
      t.analysis_images
  in
  Process.create images

(* ------------------------------------------------------------------ *)
(* Binary format                                                       *)

type error = Bad_magic | Bad_version of int | Truncated | Corrupt of string

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Truncated -> Format.pp_print_string ppf "truncated archive"
  | Corrupt what -> Format.fprintf ppf "corrupt archive: %s" what

type section = Header | Images | Kernel_text | Records

let section_name = function
  | Header -> "header"
  | Images -> "images"
  | Kernel_text -> "kernel text"
  | Records -> "records"

type fault =
  | Checksum_mismatch of section
  | Truncated_records of { expected : int option; salvaged : int }
  | Corrupt_records of { index : int; reason : string; salvaged : int }

let pp_fault ppf = function
  | Checksum_mismatch s ->
      Format.fprintf ppf "%s section checksum mismatch" (section_name s)
  | Truncated_records { expected = Some n; salvaged } ->
      Format.fprintf ppf "records truncated: salvaged %d of %d" salvaged n
  | Truncated_records { expected = None; salvaged } ->
      Format.fprintf ppf "records truncated: salvaged %d (total unknown)"
        salvaged
  | Corrupt_records { index; reason; salvaged } ->
      Format.fprintf ppf "record %d corrupt (%s): salvaged %d" index reason
        salvaged

type read = { archive : t; ledger : fault list }

let magic = "HBBPDATA"

(* v1: one flat length-prefixed stream, no integrity data.
   v2: the same primitives, but grouped into four sections — header,
   images, kernel text, records — each preceded by (payload length,
   item count, CRC-32).  Readers can verify integrity before parsing
   and salvage the record stream independently of the metadata. *)
let current_version = 2

(* -- writer -- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_string buf s =
  w_i64 buf (String.length s);
  Buffer.add_string buf s

let w_bytes buf b =
  w_i64 buf (Bytes.length b);
  Buffer.add_bytes buf b

let w_list buf f items =
  w_i64 buf (List.length items);
  List.iter (f buf) items

let w_ring buf = function Ring.User -> w_u8 buf 0 | Ring.Kernel -> w_u8 buf 1

let w_image buf (img : Image.t) =
  w_string buf img.name;
  w_i64 buf img.base;
  w_ring buf img.ring;
  w_bytes buf img.code;
  w_list buf
    (fun buf (s : Symbol.t) ->
      w_string buf s.name;
      w_i64 buf s.addr;
      w_i64 buf s.size)
    img.symbols

let w_event buf e = w_string buf (Pmu_event.to_string e)

let w_record buf (r : Record.t) =
  match r with
  | Record.Comm { pid; name } ->
      w_u8 buf 0;
      w_i64 buf pid;
      w_string buf name
  | Record.Mmap { addr; len; name; ring } ->
      w_u8 buf 1;
      w_i64 buf addr;
      w_i64 buf len;
      w_string buf name;
      w_ring buf ring
  | Record.Fork { parent; child } ->
      w_u8 buf 2;
      w_i64 buf parent;
      w_i64 buf child
  | Record.Sample s ->
      w_u8 buf 3;
      w_event buf s.Record.event;
      w_i64 buf s.Record.ip;
      w_ring buf s.Record.ring;
      w_i64 buf s.Record.time;
      w_i64 buf (Array.length s.Record.lbr);
      Array.iter
        (fun (e : Lbr.entry) ->
          w_i64 buf e.src;
          w_i64 buf e.tgt)
        s.Record.lbr
  | Record.Lost n ->
      w_u8 buf 4;
      w_i64 buf n

let w_header_payload buf t =
  w_string buf t.workload_name;
  w_i64 buf t.ebs_period;
  w_i64 buf t.lbr_period

let w_kernel_text buf (name, code) =
  w_string buf name;
  w_bytes buf code

(* A v2 section: payload length, item count, CRC-32 of the payload,
   then the payload itself. *)
let w_section buf ~count payload =
  let p = Buffer.contents payload in
  w_i64 buf (String.length p);
  w_i64 buf count;
  w_i64 buf (Crc32.string p);
  Buffer.add_string buf p

let to_bytes ?(version = current_version) t =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_u8 buf version;
  (match version with
  | 1 ->
      w_header_payload buf t;
      w_list buf w_image t.analysis_images;
      w_list buf w_kernel_text t.live_kernel_text;
      w_list buf w_record t.records
  | 2 ->
      let payload f =
        let b = Buffer.create 4096 in
        f b;
        b
      in
      w_section buf ~count:0 (payload (fun b -> w_header_payload b t));
      w_section buf
        ~count:(List.length t.analysis_images)
        (payload (fun b -> List.iter (w_image b) t.analysis_images));
      w_section buf
        ~count:(List.length t.live_kernel_text)
        (payload (fun b -> List.iter (w_kernel_text b) t.live_kernel_text));
      w_section buf
        ~count:(List.length t.records)
        (payload (fun b -> List.iter (w_record b) t.records))
  | v -> invalid_arg (Printf.sprintf "Perf_data.to_bytes: unknown version %d" v));
  Buffer.to_bytes buf

(* -- reader -- *)

exception Parse of error

(* A bounded cursor: [limit] caps every read, so a corrupt length in one
   v2 section can never pull bytes from the next one, and no arithmetic
   on attacker-controlled lengths can overflow past the buffer. *)
type cursor = { data : bytes; mutable pos : int; limit : int }

let remaining c = c.limit - c.pos
let need c n = if n < 0 || n > remaining c then raise (Parse Truncated)

let r_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.data c.pos in
  c.pos <- c.pos + 1;
  v

let r_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  if v < 0 then raise (Parse (Corrupt "negative length"));
  v

let r_string c =
  let n = r_i64 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_bytes c =
  let n = r_i64 c in
  need c n;
  let b = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  b

(* Guard a parsed item count against the bytes that could possibly back
   it (every item needs at least [min_item_size] bytes), so a flipped
   count field raises a typed error instead of attempting a giant
   allocation. *)
let r_count c ~min_item_size =
  let n = r_i64 c in
  if min_item_size > 0 && n > remaining c / min_item_size then
    raise (Parse (Corrupt (Printf.sprintf "implausible count %d" n)));
  n

let r_list c ?(min_item_size = 1) f =
  let n = r_count c ~min_item_size in
  List.init n (fun _ -> f c)

let r_ring c =
  match r_u8 c with
  | 0 -> Ring.User
  | 1 -> Ring.Kernel
  | v -> raise (Parse (Corrupt (Printf.sprintf "ring tag %d" v)))

let r_image c =
  let name = r_string c in
  let base = r_i64 c in
  let ring = r_ring c in
  let code = r_bytes c in
  let symbols =
    r_list c ~min_item_size:24 (fun c ->
        let name = r_string c in
        let addr = r_i64 c in
        let size = r_i64 c in
        Symbol.make ~name ~addr ~size)
  in
  Image.make ~name ~base ~code ~symbols ~ring

let r_kernel_text c =
  let name = r_string c in
  let code = r_bytes c in
  (name, code)

let r_record c =
  match r_u8 c with
  | 0 ->
      let pid = r_i64 c in
      let name = r_string c in
      Record.Comm { pid; name }
  | 1 ->
      let addr = r_i64 c in
      let len = r_i64 c in
      let name = r_string c in
      let ring = r_ring c in
      Record.Mmap { addr; len; name; ring }
  | 2 ->
      let parent = r_i64 c in
      let child = r_i64 c in
      Record.Fork { parent; child }
  | 3 ->
      let event_name = r_string c in
      let event =
        match Pmu_event.of_string event_name with
        | Some e -> e
        | None -> raise (Parse (Corrupt ("event " ^ event_name)))
      in
      let ip = r_i64 c in
      let ring = r_ring c in
      let time = r_i64 c in
      let n = r_count c ~min_item_size:16 in
      let lbr =
        Array.init n (fun _ ->
            let src = r_i64 c in
            let tgt = r_i64 c in
            { Lbr.src; tgt })
      in
      Record.Sample { Record.event; ip; lbr; ring; time }
  | 4 -> Record.Lost (r_i64 c)
  | tag -> raise (Parse (Corrupt (Printf.sprintf "record tag %d" tag)))

(* Salvage loop: read up to [expected] records, keeping the parseable
   prefix.  Returns the records, how many were salvaged and the error
   that ended the walk (if any). *)
let r_records_salvage c ~expected =
  let rec go acc i =
    if i >= expected then (List.rev acc, i, None)
    else
      match r_record c with
      | r -> go (r :: acc) (i + 1)
      | exception Parse e -> (List.rev acc, i, Some e)
  in
  go [] 0

let records_fault ~expected ~salvaged = function
  | Truncated -> Truncated_records { expected; salvaged }
  | Corrupt reason -> Corrupt_records { index = salvaged; reason; salvaged }
  | Bad_magic | Bad_version _ ->
      Corrupt_records { index = salvaged; reason = "malformed"; salvaged }

(* -- v1 reader: metadata errors are fatal, the trailing record list is
   salvaged to its parseable prefix -- *)

let of_bytes_v1 c =
  let workload_name = r_string c in
  let ebs_period = r_i64 c in
  let lbr_period = r_i64 c in
  let analysis_images = r_list c ~min_item_size:26 r_image in
  let live_kernel_text = r_list c ~min_item_size:16 r_kernel_text in
  let ledger = ref [] in
  let records =
    match r_count c ~min_item_size:1 with
    | exception Parse e ->
        ledger := [ records_fault ~expected:None ~salvaged:0 e ];
        []
    | expected -> (
        let records, salvaged, err = r_records_salvage c ~expected in
        match err with
        | None -> records
        | Some e ->
            ledger := [ records_fault ~expected:(Some expected) ~salvaged e ];
            records)
  in
  {
    archive =
      { workload_name; ebs_period; lbr_period; analysis_images;
        live_kernel_text; records };
    ledger = !ledger;
  }

(* -- v2 reader -- *)

(* Read one section header and return a cursor bounded to its payload,
   plus the declared item count and integrity flags.  [complete] is
   false when the payload itself is cut short. *)
let r_section c =
  let len = r_i64 c in
  let count = r_i64 c in
  let crc = r_i64 c in
  let avail = min len (remaining c) in
  let complete = avail = len in
  let crc_ok = complete && Crc32.bytes ~off:c.pos ~len c.data = crc in
  let sub = { data = c.data; pos = c.pos; limit = c.pos + avail } in
  c.pos <- c.pos + avail;
  (sub, count, complete, crc_ok)

(* Metadata sections (header, images, kernel text) must be complete and
   checksum-clean: without intact images there is nothing to analyze. *)
let r_meta_section c ~section parse =
  let sub, count, complete, crc_ok = r_section c in
  if not complete then raise (Parse Truncated);
  if not crc_ok then
    raise (Parse (Corrupt (section_name section ^ " checksum mismatch")));
  parse sub count

let of_bytes_v2 c =
  let workload_name = ref "" and ebs_period = ref 0 and lbr_period = ref 0 in
  r_meta_section c ~section:Header (fun sub _ ->
      workload_name := r_string sub;
      ebs_period := r_i64 sub;
      lbr_period := r_i64 sub);
  let analysis_images =
    r_meta_section c ~section:Images (fun sub count ->
        List.init count (fun _ -> r_image sub))
  in
  let live_kernel_text =
    r_meta_section c ~section:Kernel_text (fun sub count ->
        List.init count (fun _ -> r_kernel_text sub))
  in
  (* The records section is salvageable: a truncated or corrupt stream
     yields its parseable prefix plus a ledger, never a failure. *)
  let ledger = ref [] in
  let records =
    match r_section c with
    | exception Parse _ ->
        ledger := [ Truncated_records { expected = None; salvaged = 0 } ];
        []
    | sub, expected, complete, crc_ok -> (
        if complete && not crc_ok then
          ledger := [ Checksum_mismatch Records ];
        let records, salvaged, err = r_records_salvage sub ~expected in
        match err with
        | None ->
            if not complete then
              ledger :=
                Truncated_records { expected = Some expected; salvaged }
                :: !ledger;
            records
        | Some e ->
            ledger :=
              records_fault ~expected:(Some expected) ~salvaged e :: !ledger;
            records)
  in
  {
    archive =
      { workload_name = !workload_name; ebs_period = !ebs_period;
        lbr_period = !lbr_period; analysis_images; live_kernel_text; records };
    ledger = List.rev !ledger;
  }

let of_bytes data =
  try
    if Bytes.length data < String.length magic then raise (Parse Truncated);
    if
      not (String.equal (Bytes.sub_string data 0 (String.length magic)) magic)
    then raise (Parse Bad_magic);
    let c =
      { data; pos = String.length magic; limit = Bytes.length data }
    in
    match r_u8 c with
    | 1 -> Ok (of_bytes_v1 c)
    | 2 -> Ok (of_bytes_v2 c)
    | v -> raise (Parse (Bad_version v))
  with Parse e -> Error e

(* Durable publication: tmp + fsync + rename, so a kill at any byte
   offset leaves the previous archive (or nothing) — never a torn
   file.  Archive faults (bit flips / truncation) are applied to the
   serialized bytes first, exactly as before: they model damage to the
   data, not to the write path (that is the io.* family, injected
   inside Durable itself). *)
let save ?version t ~path =
  let data = Faults.mangle_archive (to_bytes ?version t) in
  Hbbp_durable.Durable.write_bytes ~path data

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      of_bytes data)

(* ------------------------------------------------------------------ *)
(* Sharded writing                                                     *)

(* "trace.hbbp" → "trace.0of3.hbbp"; extensionless names get the shard
   tag appended. *)
let shard_path path index shards =
  let ext = Filename.extension path in
  let stem = if ext = "" then path else Filename.remove_extension path in
  Printf.sprintf "%s.%dof%d%s" stem index shards ext

(* The exact bytes each shard would hold on disk (mangled per the
   armed archive-fault plan, like [save]) without writing anything —
   the unit of work resumable collection compares and publishes. *)
let sharded_bytes ?version t ~shards ~path =
  if shards < 1 then invalid_arg "Perf_data.sharded_bytes: shards < 1";
  if shards = 1 then [ (path, Faults.mangle_archive (to_bytes ?version t)) ]
  else begin
    let records = Array.of_list t.records in
    let n = Array.length records in
    List.init shards (fun i ->
        let lo = i * n / shards and hi = (i + 1) * n / shards in
        let slice = Array.to_list (Array.sub records lo (hi - lo)) in
        ( shard_path path i shards,
          Faults.mangle_archive (to_bytes ?version { t with records = slice })
        ))
  end

let save_sharded ?version t ~shards ~path =
  let parts = sharded_bytes ?version t ~shards ~path in
  let written =
    List.mapi
      (fun i (p, data) ->
        Hbbp_durable.Durable.write_bytes ~path:p data;
        Manifest.shard_of_bytes ~index:i ~file:(Filename.basename p) data)
      parts
  in
  (* One progressive rewrite per shard would also be correct; a plain
     [save_sharded] is not resumable, so a single complete manifest at
     the end records the collection for later verification. *)
  Manifest.save
    {
      Manifest.label = t.workload_name;
      shards;
      written;
      complete = true;
    }
    ~archive_path:path;
  List.map fst parts

(* ------------------------------------------------------------------ *)
(* Chunked streaming reader                                            *)

module Stream = struct
  let default_chunk_records = 4096

  (* Refill granularity of the pending buffer (it grows as needed when a
     single record straddles more than this). *)
  let read_block = 1 lsl 16

  type source =
    | Buffered of Record.t list ref
        (* v1 fallback: the record list is materialized up front. *)
    | Chunked of chunked

  and chunked = {
    ic : in_channel;
    mutable buf : bytes;  (** Pending (read but unparsed) payload bytes. *)
    mutable b_start : int;
    mutable b_stop : int;
    mutable crc : Hbbp_util.Crc32.state;
    crc_declared : int;
    avail : int;  (** Payload bytes physically present in the file. *)
    complete : bool;  (** [avail = payload_len]. *)
    expected : int;  (** Declared record count. *)
    mutable fed : int;  (** Payload bytes consumed from the file. *)
    mutable emitted : int;  (** Records handed out so far. *)
    mutable parse_fault : fault option;
    mutable finished : bool;
  }

  type stream = {
    meta : t;  (** [records = []]. *)
    chunk_records : int;
    mutable s_ledger : fault list option;  (** [Some] once known. *)
    source : source;
  }

  let meta s = s.meta

  (* -- byte plumbing for the chunked (v2) source -- *)

  let refill (c : chunked) =
    if c.fed >= c.avail then false
    else begin
      if c.b_start > 0 then begin
        Bytes.blit c.buf c.b_start c.buf 0 (c.b_stop - c.b_start);
        c.b_stop <- c.b_stop - c.b_start;
        c.b_start <- 0
      end;
      if c.b_stop = Bytes.length c.buf then begin
        let grown = Bytes.create (2 * Bytes.length c.buf) in
        Bytes.blit c.buf 0 grown 0 c.b_stop;
        c.buf <- grown
      end;
      let want = min (Bytes.length c.buf - c.b_stop) (c.avail - c.fed) in
      let n = input c.ic c.buf c.b_stop want in
      if n = 0 then false (* file shrank under us; treat as exhausted *)
      else begin
        c.crc <- Hbbp_util.Crc32.update c.crc ~off:c.b_stop ~len:n c.buf;
        c.b_stop <- c.b_stop + n;
        c.fed <- c.fed + n;
        true
      end
    end

  (* Pull any payload bytes we never buffered through the CRC so the
     checksum verdict covers the whole section, exactly like the batch
     reader's whole-payload CRC. *)
  let drain (c : chunked) =
    let scratch = Bytes.create read_block in
    let rec go () =
      if c.fed < c.avail then begin
        let n = input c.ic scratch 0 (min read_block (c.avail - c.fed)) in
        if n > 0 then begin
          c.crc <- Hbbp_util.Crc32.update c.crc ~off:0 ~len:n scratch;
          c.fed <- c.fed + n;
          go ()
        end
      end
    in
    go ()

  (* Final ledger, reproducing the batch reader's entries and order:
     a records-section checksum mismatch first (only decidable for a
     complete section), then the salvage fault — or, when every declared
     record parsed but the payload was physically cut short, the
     truncation entry the batch reader records for that case. *)
  let finish (c : chunked) =
    drain c;
    c.finished <- true;
    let crc_ok = Hbbp_util.Crc32.finish c.crc = c.crc_declared in
    let checksum =
      if c.complete && not crc_ok then [ Checksum_mismatch Records ] else []
    in
    checksum
    @
    match c.parse_fault with
    | Some f -> [ f ]
    | None ->
        if (not c.complete) && c.emitted >= c.expected then
          [ Truncated_records
              { expected = Some c.expected; salvaged = c.emitted } ]
        else []

  (* Parse up to [limit] records out of the pending buffer, refilling on
     demand.  A parse failure is only classified once the entire
     remaining payload is buffered — at that point the cursor sees
     exactly the bytes the batch reader would, so the fault (and the
     salvaged prefix) match [of_bytes] verbatim. *)
  let next_chunked (s : stream) (c : chunked) =
    if c.finished then None
    else begin
      let out = ref [] and n_out = ref 0 in
      let finished = ref false in
      while (not !finished) && !n_out < s.chunk_records do
        if c.emitted >= c.expected then begin
          s.s_ledger <- Some (finish c);
          finished := true
        end
        else begin
          let cur = { data = c.buf; pos = c.b_start; limit = c.b_stop } in
          match r_record cur with
          | r ->
              c.b_start <- cur.pos;
              c.emitted <- c.emitted + 1;
              out := r :: !out;
              incr n_out
          | exception Parse e ->
              if not (refill c) then begin
                c.parse_fault <-
                  Some
                    (records_fault ~expected:(Some c.expected)
                       ~salvaged:c.emitted e);
                s.s_ledger <- Some (finish c);
                finished := true
              end
        end
      done;
      match List.rev !out with [] -> None | chunk -> Some chunk
    end

  let next s =
    match s.source with
    | Buffered rest -> (
        match !rest with
        | [] -> None
        | records ->
            let rec take acc n rs =
              if n = 0 then (List.rev acc, rs)
              else
                match rs with
                | [] -> (List.rev acc, [])
                | r :: tl -> take (r :: acc) (n - 1) tl
            in
            let chunk, tl = take [] s.chunk_records records in
            rest := tl;
            Some chunk)
    | Chunked c -> next_chunked s c

  (* The ledger is complete once the stream is exhausted; calling it
     earlier drains the remaining records. *)
  let ledger s =
    match s.s_ledger with
    | Some l -> l
    | None ->
        let rec drain_all () =
          match next s with Some _ -> drain_all () | None -> ()
        in
        drain_all ();
        (match s.s_ledger with Some l -> l | None -> [])

  let close s =
    match s.source with
    | Buffered _ -> ()
    | Chunked c -> close_in c.ic

  (* -- opening -- *)

  let read_exactly ic n =
    let b = Bytes.create n in
    really_input ic b 0 n;
    b

  (* A v2 metadata section, streamed: header, bounded payload, CRC
     verdict — same rules as the batch [r_meta_section] (must be
     complete and checksum-clean). *)
  let r_meta_section_stream ic ~total ~section parse =
    let left = total - pos_in ic in
    if left < 24 then raise (Parse Truncated);
    let hdr = read_exactly ic 24 in
    let hc = { data = hdr; pos = 0; limit = 24 } in
    let len = r_i64 hc in
    let count = r_i64 hc in
    let crc = r_i64 hc in
    if len > total - pos_in ic then raise (Parse Truncated);
    let payload = read_exactly ic len in
    if Crc32.bytes payload <> crc then
      raise (Parse (Corrupt (section_name section ^ " checksum mismatch")));
    parse { data = payload; pos = 0; limit = len } count

  let open_v2 ic ~total ~chunk_records =
    let workload_name = ref "" and ebs_period = ref 0 and lbr_period = ref 0 in
    r_meta_section_stream ic ~total ~section:Header (fun sub _ ->
        workload_name := r_string sub;
        ebs_period := r_i64 sub;
        lbr_period := r_i64 sub);
    let analysis_images =
      r_meta_section_stream ic ~total ~section:Images (fun sub count ->
          List.init count (fun _ -> r_image sub))
    in
    let live_kernel_text =
      r_meta_section_stream ic ~total ~section:Kernel_text (fun sub count ->
          List.init count (fun _ -> r_kernel_text sub))
    in
    let meta =
      { workload_name = !workload_name; ebs_period = !ebs_period;
        lbr_period = !lbr_period; analysis_images; live_kernel_text;
        records = [] }
    in
    (* Records section header: unreadable (truncated or malformed) means
       an empty, fully-faulted stream — same as the batch reader. *)
    match
      let left = total - pos_in ic in
      if left < 24 then raise (Parse Truncated);
      let hdr = read_exactly ic 24 in
      let hc = { data = hdr; pos = 0; limit = 24 } in
      let len = r_i64 hc in
      let count = r_i64 hc in
      let crc = r_i64 hc in
      (len, count, crc)
    with
    | exception Parse _ ->
        {
          meta;
          chunk_records;
          s_ledger =
            Some [ Truncated_records { expected = None; salvaged = 0 } ];
          source = Buffered (ref []);
        }
    | len, expected, crc_declared ->
        let avail = min len (total - pos_in ic) in
        let c =
          {
            ic;
            buf = Bytes.create read_block;
            b_start = 0;
            b_stop = 0;
            crc = Hbbp_util.Crc32.init ();
            crc_declared;
            avail;
            complete = avail = len;
            expected;
            fed = 0;
            emitted = 0;
            parse_fault = None;
            finished = false;
          }
        in
        { meta; chunk_records; s_ledger = None; source = Chunked c }

  let open_file ?(chunk_records = default_chunk_records) path =
    if chunk_records < 1 then
      invalid_arg "Perf_data.Stream.open_file: chunk_records < 1";
    let ic = open_in_bin path in
    match
      let total = in_channel_length ic in
      if total < String.length magic then raise (Parse Truncated);
      let m = read_exactly ic (String.length magic) in
      if not (String.equal (Bytes.to_string m) magic) then
        raise (Parse Bad_magic);
      if total < String.length magic + 1 then raise (Parse Truncated);
      match input_byte ic with
      | 1 ->
          (* v1 has no section structure to stream: fall back to the
             batch reader and chunk the materialized list.  Memory
             bounding is a v2-only property. *)
          let rest = read_exactly ic (total - pos_in ic) in
          let { archive; ledger } =
            of_bytes_v1 { data = rest; pos = 0; limit = Bytes.length rest }
          in
          {
            meta = { archive with records = [] };
            chunk_records;
            s_ledger = Some ledger;
            source = Buffered (ref archive.records);
          }
      | 2 -> open_v2 ic ~total ~chunk_records
      | v -> raise (Parse (Bad_version v))
    with
    | s -> Ok s
    | exception Parse e ->
        close_in_noerr ic;
        Error e
    | exception End_of_file ->
        close_in_noerr ic;
        Error Truncated
end

let fold_file ?chunk_records ~init ~f path =
  match Stream.open_file ?chunk_records path with
  | Error e -> Error e
  | Ok s ->
      Fun.protect
        ~finally:(fun () -> Stream.close s)
        (fun () ->
          let rec go acc =
            match Stream.next s with
            | Some chunk -> go (f acc chunk)
            | None -> (Stream.meta s, acc, Stream.ledger s)
          in
          Ok (go init))
