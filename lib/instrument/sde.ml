open Hbbp_isa
open Hbbp_program
open Hbbp_cpu

type config = { probe_cost : int; bug_mnemonic : Mnemonic.t option }

let default_config = { probe_cost = 12; bug_mnemonic = None }

(* Per-instruction emulation cost: decode + translate + emulate.  Wider
   and microcoded instructions are disproportionately expensive under
   emulation, which is what makes vector-heavy scientific codes suffer
    the most (Table 1: 68-76x on "all other benchmarks" / Hydro-post vs
   4x on SPEC overall). *)
let emulation_cost (i : Instruction.t) =
  let m = i.mnemonic in
  let base =
    match Mnemonic.isa_set m with
    | Mnemonic.Base -> (
        match Mnemonic.category m with
        | Mnemonic.Branch -> 7
        | Mnemonic.Call | Mnemonic.Ret -> 14
        | Mnemonic.Divide -> 18
        | Mnemonic.Sync -> 20
        | Mnemonic.System -> 60
        | _ -> 4)
    | Mnemonic.X87 -> (
        match Mnemonic.category m with
        | Mnemonic.Transcendental -> 160
        | Mnemonic.Divide | Mnemonic.Sqrt -> 60
        | _ -> 28)
    | Mnemonic.Sse -> (
        match Mnemonic.packing m with
        | Mnemonic.Packed -> 38
        | Mnemonic.Scalar_fp | Mnemonic.Not_vector -> 22)
    | Mnemonic.Avx | Mnemonic.Avx2 -> (
        match Mnemonic.category m with
        | Mnemonic.Fma -> 160
        | _ -> (
            match Mnemonic.packing m with
            | Mnemonic.Packed -> 110
            | Mnemonic.Scalar_fp | Mnemonic.Not_vector -> 30))
  in
  let memory =
    if Instruction.reads_memory i || Instruction.writes_memory i then 6 else 0
  in
  base + memory

(* Dense per-map leader index: [s_ids.(addr - s_base)] is the flat block
   id of the leader at [addr], or -1.  The observer resolves every
   retired instruction's address, so this must not be a hash lookup —
   a range check plus an array load replaces hashing and the [Some]
   allocation of [Hashtbl.find_opt] on the armed hot path. *)
type seg = { s_base : int; s_limit : int; s_ids : int array }

type t = {
  config : config;
  leaders : seg array;  (* sorted by base; one per map with blocks *)
  maps : Bb_map.t array;
  map_of_block : int array;  (* flat id -> index into maps *)
  local_id : int array;  (* flat id -> block id within its map *)
  counts : int array;  (* flat id -> exact execution count *)
  histogram : int64 array;  (* indexed by mnemonic code *)
  mutable total : int64;
  mutable lost_kernel : int;
  mutable emulation_cycles : int;
  mutable native_cycles : int;
}

let create config maps =
  let maps = Array.of_list maps in
  let flat = ref [] in
  let flat_count = ref 0 in
  let segs = ref [] in
  Array.iteri
    (fun map_idx map ->
      let blocks = Bb_map.blocks map in
      if Array.length blocks > 0 then begin
        let lo = ref max_int and hi = ref min_int in
        Array.iter
          (fun (b : Basic_block.t) ->
            if b.addr < !lo then lo := b.addr;
            if b.addr > !hi then hi := b.addr)
          blocks;
        let ids = Array.make (!hi - !lo + 1) (-1) in
        Array.iter
          (fun (b : Basic_block.t) ->
            ids.(b.addr - !lo) <- !flat_count;
            flat := (map_idx, b.id) :: !flat;
            incr flat_count)
          blocks;
        segs := { s_base = !lo; s_limit = !hi + 1; s_ids = ids } :: !segs
      end)
    maps;
  let pairs = Array.of_list (List.rev !flat) in
  let leaders = Array.of_list (List.rev !segs) in
  Array.sort (fun a b -> compare a.s_base b.s_base) leaders;
  {
    config;
    leaders;
    maps;
    map_of_block = Array.map fst pairs;
    local_id = Array.map snd pairs;
    counts = Array.make !flat_count 0;
    histogram = Array.make (Mnemonic.max_code + 1) 0L;
    total = 0L;
    lost_kernel = 0;
    emulation_cycles = 0;
    native_cycles = 0;
  }

(* Flat id of the block leader at [addr], or -1. *)
let flat_of_addr t addr =
  let segs = t.leaders in
  let n = Array.length segs in
  let rec find k =
    if k = n then -1
    else
      let s = Array.unsafe_get segs k in
      if addr >= s.s_base && addr < s.s_limit then
        Array.unsafe_get s.s_ids (addr - s.s_base)
      else find (k + 1)
  in
  find 0

let observer t : Machine.observer =
 fun r ->
  let node = r.node in
  if Ring.equal node.Exec_graph.ring Ring.Kernel then begin
    (* Invisible to user-mode instrumentation; native time still passes. *)
    t.lost_kernel <- t.lost_kernel + 1;
    t.emulation_cycles <- t.emulation_cycles + node.Exec_graph.issue_cost
  end
  else begin
    let code = Mnemonic.to_code node.Exec_graph.instr.Instruction.mnemonic in
    t.histogram.(code) <- Int64.add t.histogram.(code) 1L;
    t.total <- Int64.add t.total 1L;
    t.emulation_cycles <-
      t.emulation_cycles + emulation_cost node.Exec_graph.instr;
    let flat = flat_of_addr t node.Exec_graph.addr in
    if flat >= 0 then begin
      t.counts.(flat) <- t.counts.(flat) + 1;
      t.emulation_cycles <- t.emulation_cycles + t.config.probe_cost
    end
  end;
  t.native_cycles <- r.cycles

let block_count t map (block : Basic_block.t) =
  match flat_of_addr t block.addr with
  | flat when flat >= 0 && t.maps.(t.map_of_block.(flat)) == map ->
      t.counts.(flat)
  | _ -> 0

let block_counts t =
  let out = ref [] in
  Array.iteri
    (fun flat count ->
      if count > 0 then
        let map = t.maps.(t.map_of_block.(flat)) in
        let block = Bb_map.block map t.local_id.(flat) in
        out := (map, block, count) :: !out)
    t.counts;
  List.rev !out

let histogram t =
  let out = ref [] in
  Array.iteri
    (fun code count ->
      if Int64.compare count 0L > 0 then
        match Mnemonic.of_code code with
        | Some m ->
            let count =
              match t.config.bug_mnemonic with
              | Some bug when Mnemonic.equal bug m -> Int64.div count 2L
              | Some _ | None -> count
            in
            out := (m, count) :: !out
        | None -> ())
    t.histogram;
  List.rev !out

let total_instructions t =
  (* The injected bug drops half the executions of one mnemonic from the
     tool's internal accounting, exactly the kind of defect the paper's
     PMU cross-check caught on x264ref (footnote 2). *)
  match t.config.bug_mnemonic with
  | None -> t.total
  | Some bug ->
      Int64.sub t.total (Int64.div t.histogram.(Mnemonic.to_code bug) 2L)
let lost_kernel_instructions t = t.lost_kernel
let instrumented_cycles t = t.emulation_cycles

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  Array.fill t.histogram 0 (Array.length t.histogram) 0L;
  t.total <- 0L;
  t.lost_kernel <- 0;
  t.emulation_cycles <- 0;
  t.native_cycles <- 0
