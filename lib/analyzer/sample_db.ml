open Hbbp_program
open Hbbp_cpu
module Record = Hbbp_collector.Record

type ebs_sample = { ip : int; ring : Ring.t }
type lbr_sample = { entries : Lbr.entry array; ring : Ring.t }

type t = {
  ebs : ebs_sample array;
  lbr : lbr_sample array;
  lost : int;
  other : int;
}

(* Incremental construction: records are fed in arrival order and kept
   in reversed accumulation lists until [finalize].  Merging two builders
   concatenates their streams (left before right), so splitting a record
   stream into contiguous shards and merging the per-shard builders in
   order reproduces [of_records] on the whole stream exactly. *)
module Builder = struct
  type db = t

  type t = {
    mutable ebs_rev : ebs_sample list;
    mutable lbr_rev : lbr_sample list;
    mutable lost : int;
    mutable other : int;
  }

  let create () = { ebs_rev = []; lbr_rev = []; lost = 0; other = 0 }

  let add b (r : Record.t) =
    match r with
    | Record.Sample s -> (
        match s.event with
        | Pmu_event.Inst_retired_prec_dist ->
            b.ebs_rev <- { ip = s.ip; ring = s.ring } :: b.ebs_rev
        | Pmu_event.Br_inst_retired_near_taken ->
            b.lbr_rev <- { entries = s.lbr; ring = s.ring } :: b.lbr_rev
        | _ -> b.other <- b.other + 1)
    | Record.Lost n -> b.lost <- b.lost + n
    | Record.Comm _ | Record.Mmap _ | Record.Fork _ -> ()

  let add_list b records = List.iter (add b) records

  let merge a b =
    {
      ebs_rev = b.ebs_rev @ a.ebs_rev;
      lbr_rev = b.lbr_rev @ a.lbr_rev;
      lost = a.lost + b.lost;
      other = a.other + b.other;
    }

  let finalize b : db =
    {
      ebs = Array.of_list (List.rev b.ebs_rev);
      lbr = Array.of_list (List.rev b.lbr_rev);
      lost = b.lost;
      other = b.other;
    }
end

let of_records records =
  let b = Builder.create () in
  Builder.add_list b records;
  Builder.finalize b
