(** Splitting the raw record stream into the two HBBP data sources
    (paper section V.A):

    - EBS source: samples of [INST_RETIRED:PREC_DIST] — the eventing IP
      is kept, the LBR payload discarded;
    - LBR source: samples of [BR_INST_RETIRED:NEAR_TAKEN] — the LBR stack
      is kept, the eventing IP discarded. *)

open Hbbp_program
open Hbbp_cpu

type ebs_sample = { ip : int; ring : Ring.t }
type lbr_sample = { entries : Lbr.entry array; ring : Ring.t }

type t = {
  ebs : ebs_sample array;
  lbr : lbr_sample array;
  lost : int;
  other : int;  (** Samples of events the analyzer does not consume. *)
}

(** Incremental construction for chunked record streams: feed records as
    they arrive, merge builders from contiguous shards, finalize once.
    [of_records] is implemented on top of this, so the two agree
    exactly. *)
module Builder : sig
  type db := t

  type t

  val create : unit -> t

  (** Feed one record (arrival order matters: samples keep stream
      order). *)
  val add : t -> Hbbp_collector.Record.t -> unit

  val add_list : t -> Hbbp_collector.Record.t list -> unit

  (** [merge a b] — the builder for [a]'s records followed by [b]'s.
      Associative; pure (neither input is consumed). *)
  val merge : t -> t -> t

  val finalize : t -> db
end

val of_records : Hbbp_collector.Record.t list -> t
