type method_ = Ebs | Lbr | Hbbp | Reference
type t = { method_ : method_; counts : float array }

let method_to_string = function
  | Ebs -> "EBS"
  | Lbr -> "LBR"
  | Hbbp -> "HBBP"
  | Reference -> "SDE"

let create method_ total = { method_; counts = Array.make total 0.0 }

let of_block_counts static triples =
  let t = create Reference (Static.total_blocks static) in
  List.iter
    (fun (map, block, count) ->
      match Static.global_id static map block with
      | Some gid -> t.counts.(gid) <- float_of_int count
      | None -> ())
    triples;
  t

let merge a b =
  if a.method_ <> b.method_ then invalid_arg "Bbec.merge: method mismatch";
  if Array.length a.counts <> Array.length b.counts then
    invalid_arg "Bbec.merge: block count mismatch";
  {
    method_ = a.method_;
    counts = Array.init (Array.length a.counts) (fun gid ->
        a.counts.(gid) +. b.counts.(gid));
  }

let count t gid =
  if gid >= 0 && gid < Array.length t.counts then t.counts.(gid) else 0.0

let total_instructions static t =
  let total = ref 0.0 in
  Static.iter
    (fun gid _ block ->
      total :=
        !total
        +. (t.counts.(gid) *. float_of_int (Hbbp_program.Basic_block.length block)))
    static;
  !total
