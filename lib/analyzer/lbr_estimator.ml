type t = {
  bbec : Bbec.t;
  weight : float array;
  period : int;
  snapshots : int;
  usable_streams : int;
  inconsistent_streams : int;
  discarded_streams : int;
}

(* Mergeable accumulator.  A snapshot with [k] usable streams
   contributes 1/k per visited block, which is float arithmetic — and
   float sums are not associative, so merging finalized weights would
   not be bit-stable across shard splits.  Instead the accumulator keeps
   the state in the integer domain: one visit-tally row per snapshot
   stream count [k] ([by_k.(k).(gid)] = block visits from k-stream
   snapshots).  Integer rows merge exactly (associative and
   commutative), and [finalize] converts rows to weights in a fixed
   order (ascending k), so any partition of the snapshot stream yields
   bit-identical results. *)
module Acc = struct
  type acc = {
    total_blocks : int;
    mutable by_k : int array array;  (** Index k; row [|.|] = unused. *)
    mutable snapshots : int;
    mutable usable : int;
    mutable inconsistent : int;
    mutable discarded : int;
  }

  let create static =
    {
      total_blocks = Static.total_blocks static;
      by_k = [||];
      snapshots = 0;
      usable = 0;
      inconsistent = 0;
      discarded = 0;
    }

  let row acc k =
    if k >= Array.length acc.by_k then begin
      let grown = Array.make (k + 1) [||] in
      Array.blit acc.by_k 0 grown 0 (Array.length acc.by_k);
      acc.by_k <- grown
    end;
    if Array.length acc.by_k.(k) = 0 then
      acc.by_k.(k) <- Array.make acc.total_blocks 0;
    acc.by_k.(k)

  let add static acc (s : Sample_db.lbr_sample) =
    acc.snapshots <- acc.snapshots + 1;
    let n = Array.length s.entries in
    if n >= 2 then begin
      (* Two passes: classify the snapshot's streams first, then
         normalise the snapshot to one sample over its usable streams
         (= 1/(N-1) when all N-1 are usable, the paper's weighting). *)
      let walked = ref [] in
      for idx = 1 to n - 1 do
        let target = s.entries.(idx - 1).Hbbp_cpu.Lbr.tgt in
        let src = s.entries.(idx).Hbbp_cpu.Lbr.src in
        match Stream_walk.walk static ~target ~src with
        | Stream_walk.Blocks gids ->
            acc.usable <- acc.usable + 1;
            walked := gids :: !walked
        | Stream_walk.Inconsistent -> acc.inconsistent <- acc.inconsistent + 1
        | Stream_walk.Bad -> acc.discarded <- acc.discarded + 1
      done;
      match !walked with
      | [] -> ()
      | streams ->
          let r = row acc (List.length streams) in
          List.iter
            (List.iter (fun gid -> r.(gid) <- r.(gid) + 1))
            streams
    end

  let merge a b =
    if a.total_blocks <> b.total_blocks then
      invalid_arg "Lbr_estimator.Acc.merge: block count mismatch";
    let n_k = max (Array.length a.by_k) (Array.length b.by_k) in
    let pick (acc : acc) k =
      if k < Array.length acc.by_k then acc.by_k.(k) else [||]
    in
    let by_k =
      Array.init n_k (fun k ->
          match (pick a k, pick b k) with
          | [||], [||] -> [||]
          | [||], r | r, [||] -> Array.copy r
          | ra, rb -> Array.init a.total_blocks (fun g -> ra.(g) + rb.(g)))
    in
    {
      total_blocks = a.total_blocks;
      by_k;
      snapshots = a.snapshots + b.snapshots;
      usable = a.usable + b.usable;
      inconsistent = a.inconsistent + b.inconsistent;
      discarded = a.discarded + b.discarded;
    }

  (* Checkpoint support: integer state only, so the round trip is
     exact.  Empty rows stay empty (length 0), preserving the sparse
     representation [merge] and [finalize] rely on. *)
  type repr = {
    r_total_blocks : int;
    r_by_k : int array array;
    r_snapshots : int;
    r_usable : int;
    r_inconsistent : int;
    r_discarded : int;
  }

  let export acc =
    {
      r_total_blocks = acc.total_blocks;
      r_by_k = Array.map Array.copy acc.by_k;
      r_snapshots = acc.snapshots;
      r_usable = acc.usable;
      r_inconsistent = acc.inconsistent;
      r_discarded = acc.discarded;
    }

  let import r =
    {
      total_blocks = r.r_total_blocks;
      by_k = Array.map Array.copy r.r_by_k;
      snapshots = r.r_snapshots;
      usable = r.r_usable;
      inconsistent = r.r_inconsistent;
      discarded = r.r_discarded;
    }
end

let finalize _static ~period (acc : Acc.acc) =
  let weight = Array.make acc.Acc.total_blocks 0.0 in
  Array.iteri
    (fun k r ->
      if Array.length r > 0 then begin
        let w = 1.0 /. float_of_int k in
        Array.iteri
          (fun gid n ->
            if n > 0 then weight.(gid) <- weight.(gid) +. (float_of_int n *. w))
          r
      end)
    acc.Acc.by_k;
  let bbec = Bbec.create Bbec.Lbr acc.Acc.total_blocks in
  Array.iteri
    (fun gid w -> bbec.Bbec.counts.(gid) <- w *. float_of_int period)
    weight;
  {
    bbec;
    weight;
    period;
    snapshots = acc.Acc.snapshots;
    usable_streams = acc.Acc.usable;
    inconsistent_streams = acc.Acc.inconsistent;
    discarded_streams = acc.Acc.discarded;
  }

let estimate static ~period samples =
  let acc = Acc.create static in
  Array.iter (Acc.add static acc) samples;
  finalize static ~period acc
