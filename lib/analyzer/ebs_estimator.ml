type t = { bbec : Bbec.t; raw : int array; unattributed : int; period : int }

(* Mergeable accumulator: the whole EBS estimate is determined by the
   integer per-block sample tally plus the unattributed count, so shards
   merge with plain integer addition — exactly associative and
   commutative — and [finalize] turns the merged tally into counts. *)
module Acc = struct
  type acc = { raw : int array; mutable unattributed : int }

  let create static =
    { raw = Array.make (Static.total_blocks static) 0; unattributed = 0 }

  let add static acc (s : Sample_db.ebs_sample) =
    match Static.find static s.ip with
    | Some gid -> acc.raw.(gid) <- acc.raw.(gid) + 1
    | None -> acc.unattributed <- acc.unattributed + 1

  let merge a b =
    if Array.length a.raw <> Array.length b.raw then
      invalid_arg "Ebs_estimator.Acc.merge: block count mismatch";
    {
      raw = Array.init (Array.length a.raw) (fun gid -> a.raw.(gid) + b.raw.(gid));
      unattributed = a.unattributed + b.unattributed;
    }

  (* Checkpoint support: the accumulator state is integers only, so a
     round trip through export/import is exact. *)
  let export acc = (Array.copy acc.raw, acc.unattributed)
  let import (raw, unattributed) = { raw = Array.copy raw; unattributed }
end

let finalize static ~period (acc : Acc.acc) =
  let raw = Array.copy acc.Acc.raw in
  let bbec = Bbec.create Bbec.Ebs (Array.length raw) in
  Static.iter
    (fun gid _ block ->
      let len = Hbbp_program.Basic_block.length block in
      if raw.(gid) > 0 && len > 0 then
        bbec.Bbec.counts.(gid) <-
          float_of_int raw.(gid) *. float_of_int period /. float_of_int len)
    static;
  { bbec; raw; unattributed = acc.Acc.unattributed; period }

let estimate static ~period samples =
  let acc = Acc.create static in
  Array.iter (Acc.add static acc) samples;
  finalize static ~period acc
