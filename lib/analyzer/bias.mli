(** LBR bias detection (paper section III.C).

    Some branches appear at entry[0] of the LBR stack a disproportionate
    number of times (up to ~50%).  Since [source[0]] has no matching
    [target[-1]], the stream ending there is unusable, and when a branch
    monopolises that slot the blocks around it are systematically
    mis-counted.  When the analyzer observes a branch over-represented at
    entry[0] relative to its share of the deeper entries, it labels the
    branch's basic block with a {b bias flag}: its LBR-based count is
    suspect.  The flag is one of HBBP's classifier features. *)

type branch_stat = {
  src : int;  (** Branch source address. *)
  entry0_count : int;
  deep_count : int;  (** Appearances at entries 1..N-1. *)
  entry0_share : float;
  deep_share : float;
  adjacent_streams : int;  (** Streams starting at this branch's records. *)
  failed_streams : int;  (** Of those, how many could not be walked. *)
}

type t = {
  flags : bool array;  (** Per global block id. *)
  stats : branch_stat list;  (** Branches sorted by entry0 share. *)
  snapshots : int;
}

type params = {
  min_snapshots : int;  (** Below this, never flag (default 30). *)
  min_entry0 : int;  (** Minimum absolute entry[0] sightings (default 8). *)
  min_entry0_share : float;
      (** Only branches hot enough to matter are flagged: their entry[0]
          share must reach this floor (default 0.04). *)
  share_factor : float;
      (** Flag when entry0 share exceeds this multiple of the deep share
          (default 1.25). *)
  min_failures : int;
      (** Second symptom — record loss: minimum failed adjacent streams
          (default 12). *)
  failure_rate : float;
      (** ... and minimum failure rate among them (default 0.10). *)
}

val default_params : params

(** Pass-one accumulator: per-branch integer tallies (entry[0]/deep
    sightings, adjacent/failed streams).  Merges across shards with
    plain addition — exactly associative and commutative. *)
module Acc : sig
  type acc

  val create : unit -> acc
  val add : Static.t -> acc -> Sample_db.lbr_sample -> unit

  (** Pure: returns a fresh accumulator, inputs are unchanged. *)
  val merge : acc -> acc -> acc

  (** Checkpoint support: per-branch tallies as key-sorted assoc lists
      (deterministic serialization); [import (export acc)] is
      behaviourally identical to [acc] — [finalize] sorts its stats,
      so table iteration order never reaches the output. *)
  type repr = {
    r_entry0 : (int * int) list;
    r_deep : (int * int) list;
    r_adjacent : (int * int) list;
    r_failed : (int * int) list;
    r_snapshots : int;
    r_deep_total : int;
  }

  val export : acc -> repr
  val import : repr -> acc
end

(** [finalize static acc ~replay] — resolve flags from the merged
    tallies, then (only when something was flagged) run the
    contamination pass over the snapshots again via [replay] — an
    iterator re-yielding the accumulated snapshots in order.  With
    [replay = None] contamination is skipped: only the flagged branches'
    own blocks (plus the static one-hop spill) are marked.  Branch stats
    are sorted by entry[0] share with a source-address tiebreak, so the
    result is deterministic however the accumulator was assembled. *)
val finalize :
  ?params:params ->
  Static.t ->
  Acc.acc ->
  replay:((Sample_db.lbr_sample -> unit) -> unit) option ->
  t

(** One-shot detection; equals accumulate + [finalize] with an in-memory
    replay. *)
val detect : ?params:params -> Static.t -> Sample_db.lbr_sample array -> t
val flagged_blocks : t -> int list
