type branch_stat = {
  src : int;
  entry0_count : int;
  deep_count : int;
  entry0_share : float;
  deep_share : float;
  adjacent_streams : int;
  failed_streams : int;
}

type t = { flags : bool array; stats : branch_stat list; snapshots : int }

type params = {
  min_snapshots : int;
  min_entry0 : int;
  min_entry0_share : float;
  share_factor : float;
  min_failures : int;
  failure_rate : float;
}

let default_params =
  { min_snapshots = 30; min_entry0 = 8; min_entry0_share = 0.04;
    share_factor = 1.25; min_failures = 12; failure_rate = 0.10 }

(* Detection is two-pass.  Pass one (the accumulator below) gathers
   per-branch integer tallies — entry[0] sightings, deep sightings,
   adjacent and failed streams — which merge across shards with plain
   addition, exactly.  Pass two (contamination, inside [finalize]) needs
   the snapshots again, but only runs when pass one flagged something:
   callers provide a {e replay} of the snapshot stream, which a
   streaming pipeline satisfies by re-reading its archives. *)
module Acc = struct
  type acc = {
    entry0 : (int, int) Hashtbl.t;
    deep : (int, int) Hashtbl.t;
    adjacent : (int, int) Hashtbl.t;
    failed : (int, int) Hashtbl.t;
    mutable snapshots : int;
    mutable deep_total : int;
  }

  let create () =
    {
      entry0 = Hashtbl.create 256;
      deep = Hashtbl.create 1024;
      adjacent = Hashtbl.create 1024;
      failed = Hashtbl.create 1024;
      snapshots = 0;
      deep_total = 0;
    }

  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

  (* Per branch: how many streams START at one of its records, and how
     many of those cannot be walked.  A missing LBR record after a branch
     merges the following stream, which then usually fails to walk — a
     high failure rate is the observable signature of record loss. *)
  let add static acc (s : Sample_db.lbr_sample) =
    let n = Array.length s.entries in
    if n >= 2 then begin
      acc.snapshots <- acc.snapshots + 1;
      bump acc.entry0 s.entries.(0).Hbbp_cpu.Lbr.src;
      for k = 1 to n - 1 do
        bump acc.deep s.entries.(k).Hbbp_cpu.Lbr.src;
        acc.deep_total <- acc.deep_total + 1;
        let owner = s.entries.(k - 1).Hbbp_cpu.Lbr.src in
        bump acc.adjacent owner;
        match
          Stream_walk.walk static ~target:s.entries.(k - 1).Hbbp_cpu.Lbr.tgt
            ~src:s.entries.(k).Hbbp_cpu.Lbr.src
        with
        | Stream_walk.Blocks _ -> ()
        | Stream_walk.Inconsistent | Stream_walk.Bad -> bump acc.failed owner
      done
    end

  let merge a b =
    let sum src dst =
      let out = Hashtbl.copy dst in
      Hashtbl.iter
        (fun key n ->
          Hashtbl.replace out key
            (n + Option.value ~default:0 (Hashtbl.find_opt out key)))
        src;
      out
    in
    {
      entry0 = sum b.entry0 a.entry0;
      deep = sum b.deep a.deep;
      adjacent = sum b.adjacent a.adjacent;
      failed = sum b.failed a.failed;
      snapshots = a.snapshots + b.snapshots;
      deep_total = a.deep_total + b.deep_total;
    }

  (* Checkpoint support.  Tables export as key-sorted assoc lists, so
     the serialized form is deterministic however the table was
     populated; [finalize] sorts its stats anyway, so import order
     cannot perturb results. *)
  type repr = {
    r_entry0 : (int * int) list;
    r_deep : (int * int) list;
    r_adjacent : (int * int) list;
    r_failed : (int * int) list;
    r_snapshots : int;
    r_deep_total : int;
  }

  let sorted_bindings table =
    List.sort
      (fun (a, _) (b, _) -> compare (a : int) b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

  let table_of_bindings bindings =
    let t = Hashtbl.create (max 16 (List.length bindings)) in
    List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings;
    t

  let export acc =
    {
      r_entry0 = sorted_bindings acc.entry0;
      r_deep = sorted_bindings acc.deep;
      r_adjacent = sorted_bindings acc.adjacent;
      r_failed = sorted_bindings acc.failed;
      r_snapshots = acc.snapshots;
      r_deep_total = acc.deep_total;
    }

  let import r =
    {
      entry0 = table_of_bindings r.r_entry0;
      deep = table_of_bindings r.r_deep;
      adjacent = table_of_bindings r.r_adjacent;
      failed = table_of_bindings r.r_failed;
      snapshots = r.r_snapshots;
      deep_total = r.r_deep_total;
    }
end

let finalize ?(params = default_params) static (acc : Acc.acc) ~replay =
  let flags = Array.make (Static.total_blocks static) false in
  let flagged_srcs = Hashtbl.create 16 in
  let stats = ref [] in
  if acc.Acc.snapshots >= params.min_snapshots then
    Hashtbl.iter
      (fun src entry0_count ->
        let deep_count =
          Option.value ~default:0 (Hashtbl.find_opt acc.Acc.deep src)
        in
        let entry0_share =
          float_of_int entry0_count /. float_of_int acc.Acc.snapshots
        in
        let deep_share =
          if acc.Acc.deep_total = 0 then 0.0
          else float_of_int deep_count /. float_of_int acc.Acc.deep_total
        in
        let adjacent_streams =
          Option.value ~default:0 (Hashtbl.find_opt acc.Acc.adjacent src)
        in
        let failed_streams =
          Option.value ~default:0 (Hashtbl.find_opt acc.Acc.failed src)
        in
        stats :=
          { src; entry0_count; deep_count; entry0_share; deep_share;
            adjacent_streams; failed_streams }
          :: !stats;
        let entry0_symptom =
          entry0_count >= params.min_entry0
          && entry0_share >= params.min_entry0_share
          && entry0_share > params.share_factor *. deep_share
        in
        let failure_symptom =
          failed_streams >= params.min_failures
          && adjacent_streams > 0
          && float_of_int failed_streams /. float_of_int adjacent_streams
             > params.failure_rate
        in
        if entry0_symptom || failure_symptom then begin
          Hashtbl.replace flagged_srcs src ();
          match Static.find static src with
          | Some gid -> flags.(gid) <- true
          | None -> ()
        end)
      acc.Acc.entry0;
  (* Contamination spreads beyond the anomalous branch itself: every
     count whose supporting stream is ADJACENT to a record of a flagged
     branch (ends at its source, or starts at its target) is suspect.
     Flag the blocks those streams visit, so HBBP can route the whole
     neighbourhood away from LBR data. *)
  let contaminate (s : Sample_db.lbr_sample) =
    let n = Array.length s.entries in
    let flag_forward_from addr limit =
      (* Flag the layout neighbourhood following [addr] — used when a
         suspect stream cannot even be walked. *)
      match Static.find_starting static addr with
      | None -> ()
      | Some gid0 ->
          let rec go gid k =
            if k < limit then begin
              flags.(gid) <- true;
              match Static.next_in_layout static gid with
              | Some next -> go next (k + 1)
              | None -> ()
            end
          in
          go gid0 0
    in
    let flag_walk ~target ~src =
      match Stream_walk.walk static ~target ~src with
      | Stream_walk.Blocks gids ->
          List.iter (fun gid -> flags.(gid) <- true) gids
      | Stream_walk.Inconsistent | Stream_walk.Bad ->
          flag_forward_from target 4;
          Option.iter
            (fun gid -> flags.(gid) <- true)
            (Static.find static src)
    in
    for k = 0 to n - 1 do
      if Hashtbl.mem flagged_srcs s.entries.(k).Hbbp_cpu.Lbr.src then begin
        (* Stream ending at this record. *)
        if k >= 1 then
          flag_walk ~target:s.entries.(k - 1).Hbbp_cpu.Lbr.tgt
            ~src:s.entries.(k).Hbbp_cpu.Lbr.src;
        (* Stream starting at this record's target. *)
        if k + 1 < n then
          flag_walk ~target:s.entries.(k).Hbbp_cpu.Lbr.tgt
            ~src:s.entries.(k + 1).Hbbp_cpu.Lbr.src
      end
    done
  in
  if Hashtbl.length flagged_srcs > 0 then
    Option.iter (fun iter -> iter contaminate) replay;
  (* One hop along static control flow: a suspect stream's distortion
     spills onto the blocks its endpoints branch to. *)
  if Hashtbl.length flagged_srcs > 0 then begin
    let seed = Array.copy flags in
    Array.iteri
      (fun gid is_flagged ->
        if is_flagged then begin
          let _, _, block = Static.block static gid in
          let flag_target addr =
            Option.iter
              (fun g -> flags.(g) <- true)
              (Static.find_starting static addr)
          in
          match block.Hbbp_program.Basic_block.term with
          | Hbbp_program.Basic_block.Term_jump a -> flag_target a
          | Hbbp_program.Basic_block.Term_cond a ->
              flag_target a;
              Option.iter
                (fun g -> flags.(g) <- true)
                (Static.next_in_layout static gid)
          | Hbbp_program.Basic_block.Term_fallthrough ->
              Option.iter
                (fun g -> flags.(g) <- true)
                (Static.next_in_layout static gid)
          | Hbbp_program.Basic_block.Term_call _
          | Hbbp_program.Basic_block.Term_indirect_jump
          | Hbbp_program.Basic_block.Term_ret
          | Hbbp_program.Basic_block.Term_syscall
          | Hbbp_program.Basic_block.Term_sysret
          | Hbbp_program.Basic_block.Term_halt ->
              ()
        end)
      seed
  end;
  (* Deterministic order regardless of hashtable history (direct build
     vs shard merges): share descending, then source address. *)
  let stats =
    List.sort
      (fun a b ->
        match compare b.entry0_share a.entry0_share with
        | 0 -> compare a.src b.src
        | c -> c)
      !stats
  in
  { flags; stats; snapshots = acc.Acc.snapshots }

let detect ?params static samples =
  let acc = Acc.create () in
  Array.iter (Acc.add static acc) samples;
  finalize ?params static acc ~replay:(Some (fun f -> Array.iter f samples))

let flagged_blocks t =
  let out = ref [] in
  Array.iteri (fun gid f -> if f then out := gid :: !out) t.flags;
  List.rev !out
