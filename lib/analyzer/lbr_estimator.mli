(** BBEC estimation from LBR stacks (paper section III.B).

    Each snapshot of depth N yields N-1 {e streams}: between
    [Target[i-1]] and [Source[i]] no branch was taken, so every basic
    block laid out between those addresses executed.  Streams are
    weighted so that a whole snapshot counts as one sample — 1/(N-1) when
    all N-1 streams are usable (the paper's weighting), 1/(usable)
    otherwise — and multiplying a block's accumulated weight by the
    sampling period estimates its execution count.

    Streams are validated during the walk: a stream that would cross an
    always-taken terminator (unconditional jump, call, return) is
    {e inconsistent} — execution claims straight-line flow where the
    static code says that is impossible.  This is exactly the symptom
    self-modifying kernel code produces when the analyzer disassembles
    the on-disk image (section III.C); such streams are dropped and
    counted. *)

type t = {
  bbec : Bbec.t;
  weight : float array;
  period : int;
  snapshots : int;
  usable_streams : int;
  inconsistent_streams : int;
      (** Walk crossed an always-taken terminator. *)
  discarded_streams : int;
      (** Unresolvable endpoints, backwards ranges, or over-long walks. *)
}

(** Mergeable accumulator for chunked/sharded streams.  Snapshot weights
    (1/usable-streams) are float, and float sums are not associative —
    so the accumulator stays in the integer domain: one per-block visit
    tally per snapshot stream count [k].  Integer tallies merge exactly
    (associative and commutative), and {!finalize} converts them to
    weights in a fixed order, so every partition of a snapshot stream
    reconstructs bit-identically. *)
module Acc : sig
  type acc

  val create : Static.t -> acc
  val add : Static.t -> acc -> Sample_db.lbr_sample -> unit

  (** Pure: returns a fresh accumulator, inputs are unchanged.
      @raise Invalid_argument when the block counts differ. *)
  val merge : acc -> acc -> acc

  (** Checkpoint support: the full integer state of one accumulator.
      Rows of [r_by_k] with length 0 are "no stream of that depth
      seen" (the sparse representation); [import (export acc)] is an
      exact copy. *)
  type repr = {
    r_total_blocks : int;
    r_by_k : int array array;
    r_snapshots : int;
    r_usable : int;
    r_inconsistent : int;
    r_discarded : int;
  }

  val export : acc -> repr
  val import : repr -> acc
end

(** [finalize static ~period acc] — convert the merged visit tallies to
    period-scaled block counts (ascending-[k] summation order). *)
val finalize : Static.t -> period:int -> Acc.acc -> t

val estimate : Static.t -> period:int -> Sample_db.lbr_sample array -> t
