(** Basic Block Execution Counts over a {!Static} view, indexed by global
    block id. *)

type method_ = Ebs | Lbr | Hbbp | Reference

type t = { method_ : method_; counts : float array }

val method_to_string : method_ -> string
val create : method_ -> int -> t

(** [of_block_counts static triples] — exact counts (e.g. from
    instrumentation) projected onto the global numbering. *)
val of_block_counts :
  Static.t ->
  (Hbbp_program.Bb_map.t * Hbbp_program.Basic_block.t * int) list ->
  t

(** [merge a b] — elementwise sum of two BBECs over the same static view
    (counts from disjoint record shards add).  Commutative, and exactly
    associative whenever the counts are integer-valued (as both sampling
    estimators produce before period scaling).
    @raise Invalid_argument on method or size mismatch. *)
val merge : t -> t -> t

(** [count t gid] — 0 for out-of-range ids. *)
val count : t -> int -> float

(** Total dynamic instructions implied by the counts. *)
val total_instructions : Static.t -> t -> float
