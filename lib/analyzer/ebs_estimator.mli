(** BBEC estimation from EBS samples (paper section III.A).

    Classic EBS attributes each IP sample to a single instruction; the
    paper's enhancement applies every sample to {e all instructions of the
    enclosing basic block} — if one instruction of the block retired, the
    whole block did.  To convert to an execution count the per-block
    sample tally is multiplied by the sampling period and divided by the
    block's instruction length. *)

type t = {
  bbec : Bbec.t;
  raw : int array;  (** Samples landing in each block. *)
  unattributed : int;  (** IPs outside any known block (e.g. skid past a
                           function end into padding, or unmapped). *)
  period : int;
}

(** Mergeable accumulator for chunked/sharded streams.  The state is the
    integer per-block sample tally, so [merge] is exactly associative and
    commutative, and feeding any partition of a sample stream through
    accumulators then merging reproduces the batch estimate
    bit-for-bit. *)
module Acc : sig
  type acc

  val create : Static.t -> acc
  val add : Static.t -> acc -> Sample_db.ebs_sample -> unit

  (** Pure: returns a fresh accumulator, inputs are unchanged.
      @raise Invalid_argument when the block counts differ. *)
  val merge : acc -> acc -> acc

  (** Checkpoint support: (per-block raw tallies, unattributed count).
      [import (export acc)] is an exact copy. *)
  val export : acc -> int array * int

  val import : int array * int -> acc
end

(** [finalize static ~period acc] — scale the merged tally into a BBEC
    (samples × period / block length). *)
val finalize : Static.t -> period:int -> Acc.acc -> t

val estimate : Static.t -> period:int -> Sample_db.ebs_sample array -> t
