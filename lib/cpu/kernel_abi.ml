open Hbbp_program

let syscall_entry = "syscall_entry"

let entry_addr process =
  Option.map
    (fun ((_ : Image.t), (s : Symbol.t)) -> s.addr)
    (Process.find_symbol process syscall_entry)

let sys_nop = 0
let sys_getpid = 1
let sys_bufclear = 2
let sys_copy = 3
let sys_stat = 4
let first_module_syscall = 16
