type entry = { src : int; tgt : int }

(* Split int arrays rather than an [entry array]: [push] runs once per
   retired taken branch on armed runs, and with this layout it is two
   immediate stores — no record allocation, no GC write barrier, no
   modulo.  Entries are only materialized as records at [snapshot]
   time, which is rare (once per delivered PMI). *)
type t = {
  srcs : int array;
  tgts : int array;
  mutable head : int;  (* slot receiving the next push *)
  mutable filled : int;
}

let create ~depth =
  { srcs = Array.make depth 0; tgts = Array.make depth 0; head = 0; filled = 0 }

let depth t = Array.length t.srcs

let push t ~src ~tgt =
  let h = t.head in
  Array.unsafe_set t.srcs h src;
  Array.unsafe_set t.tgts h tgt;
  let h = h + 1 in
  t.head <- (if h = Array.length t.srcs then 0 else h);
  if t.filled < Array.length t.srcs then t.filled <- t.filled + 1

let snapshot t =
  let d = Array.length t.srcs in
  let oldest = if t.filled < d then 0 else t.head in
  Array.init t.filled (fun k ->
      let j = (oldest + k) mod d in
      { src = t.srcs.(j); tgt = t.tgts.(j) })

let overwrite_oldest t e =
  if t.filled > 0 then begin
    let oldest = if t.filled < Array.length t.srcs then 0 else t.head in
    t.srcs.(oldest) <- e.src;
    t.tgts.(oldest) <- e.tgt
  end

let clear t =
  t.head <- 0;
  t.filled <- 0

let fill_level t = t.filled
