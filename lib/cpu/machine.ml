open Hbbp_isa
open Hbbp_program

type retirement = {
  mutable node : Exec_graph.node;
  mutable taken_src : int;
  mutable taken_tgt : int;
  mutable retired_index : int;
  mutable cycles : int;
  mutable shadow_active : bool;
}

type observer = retirement -> unit

type run_stats = {
  retired : int;
  cycles : int;
  taken_branches : int;
  kernel_retired : int;
}

exception Runaway of int
exception Machine_fault of string

(* ------------------------------------------------------------------ *)
(* Engines.

   [Legacy] is the seed per-instruction loop, kept verbatim as the
   differential-testing reference.  [Block] executes cached basic-block
   closures and returns to the dense block cache at every block
   boundary.  [Superblock] additionally chains direct successors
   (fall-through and taken edges) through mutable pointers patched on
   first traversal, so steady-state execution only consults the cache
   when an indirect target changes.  All three retire bit-identical
   streams; they differ only in dispatch cost. *)
type engine = Legacy | Block | Superblock

let engine_name = function
  | Legacy -> "legacy"
  | Block -> "block"
  | Superblock -> "superblock"

let engine_of_string = function
  | "legacy" -> Some Legacy
  | "block" -> Some Block
  | "superblock" -> Some Superblock
  | _ -> None

let all_engines = [ Legacy; Block; Superblock ]

(* The env override exists for A/B without touching call sites (the CLI
   flag is the documented interface); unknown values silently keep the
   default so a stale variable cannot change semantics — engines are
   bit-identical anyway. *)
let default_engine () =
  match Sys.getenv_opt "HBBP_ENGINE" with
  | Some s -> ( match engine_of_string s with Some e -> e | None -> Superblock)
  | None -> Superblock

(* A basic block compiled to straight-line kernels (tier 1) plus the
   mutable successor links that superblock chaining patches (tier 2).
   [c_taken] is keyed by [c_taken_addr] so one slot serves both direct
   branches (the guard always passes) and indirect ones (it degrades
   into a monomorphic inline cache). *)
type compiled = {
  c_nodes : Exec_graph.node array;
  c_kernels : Exec.kernel array;
  c_last : Exec_graph.node;
  c_len : int;
  c_cost : int;  (** Sum of member issue costs. *)
  c_kernel_count : int;  (** Members retiring in ring 0. *)
  mutable c_fall : compiled option;
  mutable c_taken_addr : int;  (** Address [c_taken] resolves; -1 = none. *)
  mutable c_taken : compiled option;
}

type t = {
  graph : Exec_graph.t;
  st : State.t;
  process : Process.t;
  engine : engine;
  mutable observers_rev : observer list;
      (* Accumulated in reverse; frozen to an array at [run] time so
         [add_observer] stays O(1) instead of re-copying an array. *)
  kernel_entry : int option;
  cache : compiled Exec_graph.table;
      (* Compiled blocks keyed by entry address — dense per-segment
         arrays, so resolving an indirect branch target to compiled
         code costs the same as [Exec_graph.node_at]. *)
  scratch : retirement;
}

let fault fmt = Format.kasprintf (fun s -> raise (Machine_fault s)) fmt

let create ~process ?(seed = 42L) ?engine () =
  let graph = Exec_graph.build_exn process in
  let st = State.create ~seed () in
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  let dummy_node =
    (* Any node serves as the scratch record's initial value. *)
    let exception Found of Exec_graph.node in
    try
      List.iter
        (fun (img : Image.t) ->
          match Exec_graph.node_at graph img.base with
          | Some n -> raise (Found n)
          | None -> ())
        (Process.images process);
      fault "process has no decodable code"
    with Found n -> n
  in
  {
    graph;
    st;
    process;
    engine;
    observers_rev = [];
    kernel_entry = Kernel_abi.entry_addr process;
    cache = Exec_graph.create_table graph;
    scratch =
      {
        node = dummy_node;
        taken_src = -1;
        taken_tgt = -1;
        retired_index = 0;
        cycles = 0;
        shadow_active = false;
      };
  }

let state t = t.st
let process t = t.process
let engine t = t.engine

let add_observer t obs = t.observers_rev <- obs :: t.observers_rev

(* The sentinel "return address" pushed below the entry frame: returning
   to it ends the run. *)
let sentinel = 0

(* Compiled block whose entry is [addr]: dense cache hit, or compile the
   graph's (cached) basic block on a miss. *)
let compiled_at t addr =
  match Exec_graph.table_find t.cache addr with
  | Some c -> c
  | None -> (
      match Exec_graph.block_at t.graph addr with
      | None -> fault "branch to unmapped address %#x" addr
      | Some (b : Exec_graph.block) ->
          let c =
            {
              c_nodes = b.b_nodes;
              c_kernels = Array.map Exec.compile b.b_nodes;
              c_last = b.b_last;
              c_len = b.b_len;
              c_cost = b.b_cost;
              c_kernel_count = b.b_kernel;
              c_fall = None;
              c_taken_addr = -1;
              c_taken = None;
            }
          in
          Exec_graph.table_set t.cache addr c;
          c)

(* ------------------------------------------------------------------ *)
(* Legacy engine: the seed per-instruction loop, unchanged.  Kept as
   the reference the tiered engines are differentially tested against. *)

let run_legacy t ~entry ~max_instructions =
  let st = t.st in
  let retired = ref 0 in
  let cycles = ref 0 in
  let shadow_until = ref 0 in
  let taken_branches = ref 0 in
  let kernel_retired = ref 0 in
  let observers = Array.of_list (List.rev t.observers_rev) in
  let nobs = Array.length observers in
  let scratch = t.scratch in
  let node0 =
    match Exec_graph.node_at t.graph entry with
    | Some n -> n
    | None -> fault "entry point %#x is not mapped code" entry
  in
  (* Resolve the node for a taken-branch target: per-node target cache
     first, dense lookup only on a miss. *)
  let resolve (node : Exec_graph.node) tgt =
    match node.target with
    | Some tn when tn.Exec_graph.addr = tgt -> tn
    | Some _ | None -> (
        match Exec_graph.node_at t.graph tgt with
        | Some n -> n
        | None -> fault "branch to unmapped address %#x" tgt)
  in
  let notify (node : Exec_graph.node) shadow_active =
    scratch.node <- node;
    scratch.retired_index <- !retired - 1;
    scratch.cycles <- !cycles;
    scratch.shadow_active <- shadow_active;
    for k = 0 to nobs - 1 do
      observers.(k) scratch
    done
  in
  (* One dispatch on [control] per retirement does everything: branch
     accounting, observer notification (scratch updates are skipped
     entirely when nobody listens), next-node resolution. *)
  let rec loop (node : Exec_graph.node) =
    if !retired >= max_instructions then raise (Runaway !retired);
    st.ip <- node.addr;
    let control = Exec.step st node in
    let shadow_active = !cycles < !shadow_until in
    let cycle_before = !cycles in
    cycles := !cycles + node.issue_cost;
    if node.long_latency then begin
      let until = cycle_before + node.latency in
      if until > !shadow_until then shadow_until := until
    end;
    incr retired;
    if node.kernel then incr kernel_retired;
    match control with
    | Exec.Fall -> (
        if nobs > 0 then begin
          scratch.taken_src <- -1;
          scratch.taken_tgt <- -1;
          notify node shadow_active
        end;
        match node.fall with
        | Some n -> loop n
        | None ->
            fault "execution fell off code at %#x" (node.addr + node.len))
    | Exec.Taken tgt ->
        incr taken_branches;
        if nobs > 0 then begin
          scratch.taken_src <- node.addr;
          scratch.taken_tgt <- tgt;
          notify node shadow_active
        end;
        (* Returning to the sentinel frame ends the run. *)
        if tgt <> sentinel then loop (resolve node tgt)
    | Exec.Syscall_enter ra -> (
        match t.kernel_entry with
        | None -> fault "SYSCALL with no kernel mapped (at %#x)" node.addr
        | Some kentry ->
            State.set_gpr st Operand.RCX (Int64.of_int ra);
            st.ring <- Ring.Kernel;
            incr taken_branches;
            if nobs > 0 then begin
              scratch.taken_src <- node.addr;
              scratch.taken_tgt <- kentry;
              notify node shadow_active
            end;
            loop (resolve node kentry))
    | Exec.Sysret_exit tgt ->
        st.ring <- Ring.User;
        incr taken_branches;
        if nobs > 0 then begin
          scratch.taken_src <- node.addr;
          scratch.taken_tgt <- tgt;
          notify node shadow_active
        end;
        if tgt <> sentinel then loop (resolve node tgt)
    | Exec.Halt ->
        if nobs > 0 then begin
          scratch.taken_src <- -1;
          scratch.taken_tgt <- -1;
          notify node shadow_active
        end
  in
  loop node0;
  {
    retired = !retired;
    cycles = !cycles;
    taken_branches = !taken_branches;
    kernel_retired = !kernel_retired;
  }

(* ------------------------------------------------------------------ *)
(* Tiered engines.

   Two block-level specializations share the successor logic:

   - [exec_armed] retires node by node with exactly the legacy loop's
     ordering — runaway check, [st.ip], kernel, shadow/cycle/counter
     updates, observer notification — so armed runs are bit-identical
     to the seed loop while still dodging its mnemonic dispatch and
     [node_at] resolution.

   - [exec_bare] runs a whole block straight-line with per-block
     counter updates.  It is only entered when no observer is armed
     (nothing can see intermediate cycle counts or the PMI shadow) and
     when the whole block fits the remaining instruction budget;
     otherwise it delegates the block to [exec_armed], whose
     per-instruction budget check raises [Runaway] at exactly the
     retirement the legacy loop would.  That due-by-N budgeting is
     what keeps sampling semantics identical across engines. *)

let run_tiered t ~entry ~max_instructions ~chain =
  let st = t.st in
  let retired = ref 0 in
  let cycles = ref 0 in
  let shadow_until = ref 0 in
  let taken_branches = ref 0 in
  let kernel_retired = ref 0 in
  let observers = Array.of_list (List.rev t.observers_rev) in
  let nobs = Array.length observers in
  let scratch = t.scratch in
  let c0 =
    match Exec_graph.node_at t.graph entry with
    | None -> fault "entry point %#x is not mapped code" entry
    | Some _ -> compiled_at t entry
  in
  (* Successor resolution; [chain] decides whether the link is patched
     into the block (superblock) or re-looked-up per transition. *)
  let fall_of (c : compiled) =
    match c.c_fall with
    | Some c' -> c'
    | None -> (
        let last = c.c_last in
        match last.Exec_graph.fall with
        | None -> fault "execution fell off code at %#x" (last.addr + last.len)
        | Some n ->
            let c' = compiled_at t n.Exec_graph.addr in
            if chain then c.c_fall <- Some c';
            c')
  in
  let taken_of (c : compiled) tgt =
    if c.c_taken_addr = tgt then
      match c.c_taken with Some c' -> c' | None -> assert false
    else begin
      let c' = compiled_at t tgt in
      if chain then begin
        c.c_taken_addr <- tgt;
        c.c_taken <- Some c'
      end;
      c'
    end
  in
  let notify (node : Exec_graph.node) shadow_active =
    scratch.node <- node;
    scratch.retired_index <- !retired - 1;
    scratch.cycles <- !cycles;
    scratch.shadow_active <- shadow_active;
    for k = 0 to nobs - 1 do
      observers.(k) scratch
    done
  in
  (* Timing-model and counter updates for one retirement; returns
     whether a long-latency shadow inhibited PMI at this retirement.
     Field-for-field the legacy loop's update block. *)
  let retire (node : Exec_graph.node) =
    let shadow_active = !cycles < !shadow_until in
    let cycle_before = !cycles in
    cycles := !cycles + node.issue_cost;
    if node.long_latency then begin
      let until = cycle_before + node.latency in
      if until > !shadow_until then shadow_until := until
    end;
    incr retired;
    if node.kernel then incr kernel_retired;
    shadow_active
  in
  let rec exec_armed (c : compiled) =
    let kernels = c.c_kernels and nodes = c.c_nodes in
    let lastk = c.c_len - 1 in
    for k = 0 to lastk - 1 do
      if !retired >= max_instructions then raise (Runaway !retired);
      let node = Array.unsafe_get nodes k in
      st.ip <- node.Exec_graph.addr;
      ignore ((Array.unsafe_get kernels k) st : Exec.control);
      let shadow_active = retire node in
      if nobs > 0 then begin
        scratch.taken_src <- -1;
        scratch.taken_tgt <- -1;
        notify node shadow_active
      end
    done;
    if !retired >= max_instructions then raise (Runaway !retired);
    let node = c.c_last in
    st.ip <- node.Exec_graph.addr;
    let control = (Array.unsafe_get kernels lastk) st in
    let shadow_active = retire node in
    match control with
    | Exec.Fall ->
        if nobs > 0 then begin
          scratch.taken_src <- -1;
          scratch.taken_tgt <- -1;
          notify node shadow_active
        end;
        exec_armed (fall_of c)
    | Exec.Taken tgt ->
        incr taken_branches;
        if nobs > 0 then begin
          scratch.taken_src <- node.addr;
          scratch.taken_tgt <- tgt;
          notify node shadow_active
        end;
        if tgt <> sentinel then exec_armed (taken_of c tgt)
    | Exec.Syscall_enter ra -> (
        match t.kernel_entry with
        | None -> fault "SYSCALL with no kernel mapped (at %#x)" node.addr
        | Some kentry ->
            State.set_gpr st Operand.RCX (Int64.of_int ra);
            st.ring <- Ring.Kernel;
            incr taken_branches;
            if nobs > 0 then begin
              scratch.taken_src <- node.addr;
              scratch.taken_tgt <- kentry;
              notify node shadow_active
            end;
            exec_armed (taken_of c kentry))
    | Exec.Sysret_exit tgt ->
        st.ring <- Ring.User;
        incr taken_branches;
        if nobs > 0 then begin
          scratch.taken_src <- node.addr;
          scratch.taken_tgt <- tgt;
          notify node shadow_active
        end;
        if tgt <> sentinel then exec_armed (taken_of c tgt)
    | Exec.Halt ->
        if nobs > 0 then begin
          scratch.taken_src <- -1;
          scratch.taken_tgt <- -1;
          notify node shadow_active
        end
  in
  let rec exec_bare (c : compiled) =
    if !retired + c.c_len > max_instructions then
      (* The block cannot fully retire within budget: fall back to the
         per-instruction loop, which raises [Runaway] at the exact
         retirement the legacy engine would. *)
      exec_armed c
    else begin
      (* No kernel (nor fault handler) reads [State.t.ip], so the
         per-instruction [st.ip] stores of the armed loop are dead here;
         the terminator's store below keeps the post-run value identical
         to the legacy engine's. *)
      let kernels = c.c_kernels in
      let lastk = c.c_len - 1 in
      for k = 0 to lastk - 1 do
        ignore ((Array.unsafe_get kernels k) st : Exec.control)
      done;
      let node = c.c_last in
      st.ip <- node.Exec_graph.addr;
      let control = (Array.unsafe_get kernels lastk) st in
      retired := !retired + c.c_len;
      cycles := !cycles + c.c_cost;
      kernel_retired := !kernel_retired + c.c_kernel_count;
      match control with
      | Exec.Fall -> exec_bare (fall_of c)
      | Exec.Taken tgt ->
          incr taken_branches;
          if tgt <> sentinel then exec_bare (taken_of c tgt)
      | Exec.Syscall_enter ra -> (
          match t.kernel_entry with
          | None -> fault "SYSCALL with no kernel mapped (at %#x)" node.addr
          | Some kentry ->
              State.set_gpr st Operand.RCX (Int64.of_int ra);
              st.ring <- Ring.Kernel;
              incr taken_branches;
              exec_bare (taken_of c kentry))
      | Exec.Sysret_exit tgt ->
          st.ring <- Ring.User;
          incr taken_branches;
          if tgt <> sentinel then exec_bare (taken_of c tgt)
      | Exec.Halt -> ()
    end
  in
  if nobs > 0 then exec_armed c0 else exec_bare c0;
  {
    retired = !retired;
    cycles = !cycles;
    taken_branches = !taken_branches;
    kernel_retired = !kernel_retired;
  }

let run t ~entry ?(max_instructions = 2_000_000_000) () =
  let st = t.st in
  State.reset_registers st;
  let rsp = Layout.initial_rsp - 8 in
  State.set_gpr st Operand.RSP (Int64.of_int rsp);
  Memory.write_i64 st.mem rsp (Int64.of_int sentinel);
  st.ip <- entry;
  match t.engine with
  | Legacy -> run_legacy t ~entry ~max_instructions
  | Block -> run_tiered t ~entry ~max_instructions ~chain:false
  | Superblock -> run_tiered t ~entry ~max_instructions ~chain:true
