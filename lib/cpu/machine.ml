open Hbbp_isa
open Hbbp_program

type retirement = {
  mutable node : Exec_graph.node;
  mutable taken_src : int;
  mutable taken_tgt : int;
  mutable retired_index : int;
  mutable cycles : int;
  mutable shadow_active : bool;
}

type observer = retirement -> unit

type run_stats = {
  retired : int;
  cycles : int;
  taken_branches : int;
  kernel_retired : int;
}

exception Runaway of int
exception Machine_fault of string

type t = {
  graph : Exec_graph.t;
  st : State.t;
  process : Process.t;
  mutable observers_rev : observer list;
      (* Accumulated in reverse; frozen to an array at [run] time so
         [add_observer] stays O(1) instead of re-copying an array. *)
  kernel_entry : int option;
  scratch : retirement;
}

let fault fmt = Format.kasprintf (fun s -> raise (Machine_fault s)) fmt

let create ~process ?(seed = 42L) () =
  let graph = Exec_graph.build_exn process in
  let st = State.create ~seed () in
  let kernel_entry =
    Option.map
      (fun ((_ : Image.t), (s : Symbol.t)) -> s.addr)
      (Process.find_symbol process Kernel_abi.syscall_entry)
  in
  let dummy_node =
    (* Any node serves as the scratch record's initial value. *)
    let exception Found of Exec_graph.node in
    try
      List.iter
        (fun (img : Image.t) ->
          match Exec_graph.node_at graph img.base with
          | Some n -> raise (Found n)
          | None -> ())
        (Process.images process);
      fault "process has no decodable code"
    with Found n -> n
  in
  {
    graph;
    st;
    process;
    observers_rev = [];
    kernel_entry;
    scratch =
      {
        node = dummy_node;
        taken_src = -1;
        taken_tgt = -1;
        retired_index = 0;
        cycles = 0;
        shadow_active = false;
      };
  }

let state t = t.st
let process t = t.process

let add_observer t obs = t.observers_rev <- obs :: t.observers_rev

(* The sentinel "return address" pushed below the entry frame: returning
   to it ends the run. *)
let sentinel = 0

let run t ~entry ?(max_instructions = 2_000_000_000) () =
  let st = t.st in
  State.reset_registers st;
  let rsp = Layout.initial_rsp - 8 in
  State.set_gpr st Operand.RSP (Int64.of_int rsp);
  Memory.write_i64 st.mem rsp (Int64.of_int sentinel);
  st.ip <- entry;
  let retired = ref 0 in
  let cycles = ref 0 in
  let shadow_until = ref 0 in
  let taken_branches = ref 0 in
  let kernel_retired = ref 0 in
  let observers = Array.of_list (List.rev t.observers_rev) in
  let nobs = Array.length observers in
  let scratch = t.scratch in
  let node0 =
    match Exec_graph.node_at t.graph entry with
    | Some n -> n
    | None -> fault "entry point %#x is not mapped code" entry
  in
  (* Resolve the node for a taken-branch target: per-node target cache
     first, dense lookup only on a miss. *)
  let resolve (node : Exec_graph.node) tgt =
    match node.target with
    | Some tn when tn.Exec_graph.addr = tgt -> tn
    | Some _ | None -> (
        match Exec_graph.node_at t.graph tgt with
        | Some n -> n
        | None -> fault "branch to unmapped address %#x" tgt)
  in
  let notify (node : Exec_graph.node) shadow_active =
    scratch.node <- node;
    scratch.retired_index <- !retired - 1;
    scratch.cycles <- !cycles;
    scratch.shadow_active <- shadow_active;
    for k = 0 to nobs - 1 do
      observers.(k) scratch
    done
  in
  (* One dispatch on [control] per retirement does everything: branch
     accounting, observer notification (scratch updates are skipped
     entirely when nobody listens), next-node resolution. *)
  let rec loop (node : Exec_graph.node) =
    if !retired >= max_instructions then raise (Runaway !retired);
    st.ip <- node.addr;
    let control = Exec.step st node in
    let shadow_active = !cycles < !shadow_until in
    let cycle_before = !cycles in
    cycles := !cycles + node.issue_cost;
    if node.long_latency then begin
      let until = cycle_before + node.latency in
      if until > !shadow_until then shadow_until := until
    end;
    incr retired;
    if node.kernel then incr kernel_retired;
    match control with
    | Exec.Fall -> (
        if nobs > 0 then begin
          scratch.taken_src <- -1;
          scratch.taken_tgt <- -1;
          notify node shadow_active
        end;
        match node.fall with
        | Some n -> loop n
        | None ->
            fault "execution fell off code at %#x" (node.addr + node.len))
    | Exec.Taken tgt ->
        incr taken_branches;
        if nobs > 0 then begin
          scratch.taken_src <- node.addr;
          scratch.taken_tgt <- tgt;
          notify node shadow_active
        end;
        (* Returning to the sentinel frame ends the run. *)
        if tgt <> sentinel then loop (resolve node tgt)
    | Exec.Syscall_enter ra -> (
        match t.kernel_entry with
        | None -> fault "SYSCALL with no kernel mapped (at %#x)" node.addr
        | Some kentry ->
            State.set_gpr st Operand.RCX (Int64.of_int ra);
            st.ring <- Ring.Kernel;
            incr taken_branches;
            if nobs > 0 then begin
              scratch.taken_src <- node.addr;
              scratch.taken_tgt <- kentry;
              notify node shadow_active
            end;
            loop (resolve node kentry))
    | Exec.Sysret_exit tgt ->
        st.ring <- Ring.User;
        incr taken_branches;
        if nobs > 0 then begin
          scratch.taken_src <- node.addr;
          scratch.taken_tgt <- tgt;
          notify node shadow_active
        end;
        if tgt <> sentinel then loop (resolve node tgt)
    | Exec.Halt ->
        if nobs > 0 then begin
          scratch.taken_src <- -1;
          scratch.taken_tgt <- -1;
          notify node shadow_active
        end
  in
  loop node0;
  {
    retired = !retired;
    cycles = !cycles;
    taken_branches = !taken_branches;
    kernel_retired = !kernel_retired;
  }
