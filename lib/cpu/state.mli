(** Mutable architectural state of the simulated CPU. *)

open Hbbp_isa
open Hbbp_program

type regfile = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed integer register file: reads are a single load, writes a
    single store — no allocation, no GC write barrier on the
    executor's hottest path. *)

type t = {
  gprs : regfile;  (** 16 general-purpose registers. *)
  vregs : float array array;
      (** 16 vector registers of 8 lanes each.  Lane values are held as
          OCaml floats; packed-single ops use 4 (xmm) or 8 (ymm) lanes,
          packed-double ops 2 or 4.  This value-level model preserves data
          flow (and hence control flow) without bit-exact SIMD. *)
  x87 : float array;  (** 8-slot x87 register stack. *)
  mutable x87_top : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable off : bool;  (** Overflow flag ([of] is a keyword). *)
  mem : Memory.t;
  prng : Prng.t;  (** Workload-visible randomness (e.g. RDTSC jitter). *)
  mutable ring : Ring.t;
  mutable ip : int;
}

val create : ?seed:int64 -> unit -> t

val get_gpr : t -> Operand.gpr -> int64
val set_gpr : t -> Operand.gpr -> int64 -> unit

(** [vreg_index r] — the register file slot of an [Xmm]/[Ymm] operand. *)
val vreg_index : Operand.reg -> int

(** [lane_count reg elem] — active lanes for a packed op on [reg]. *)
val lane_count : Operand.reg -> Mnemonic.element -> int

(** x87 stack access relative to top-of-stack. *)
val x87_get : t -> int -> float

val x87_set : t -> int -> float -> unit
val x87_push : t -> float -> unit
val x87_pop : t -> float

(** [effective_address s m] resolves [base + index*scale + disp]. *)
val effective_address : t -> Operand.mem -> int

(** Reset flags and registers to their boot values (memory preserved). *)
val reset_registers : t -> unit
