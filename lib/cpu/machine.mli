(** The CPU simulator's top-level run loop.

    The machine retires instructions one by one, charging cycles per the
    timing model and notifying registered observers of every retirement.
    Observers implement both software instrumentation (exact counting) and
    the PMU (sampled counting) — running them side by side over a single
    deterministic execution is what lets the experiments compare methods
    on identical ground truth. *)

open Hbbp_program

(** One retired instruction.  The record is a mutable scratch buffer
    reused across retirements: observers must copy anything they keep. *)
type retirement = {
  mutable node : Exec_graph.node;
  mutable taken_src : int;  (** -1 unless a taken branch retired. *)
  mutable taken_tgt : int;
  mutable retired_index : int;
  mutable cycles : int;  (** Cumulative cycle count after this retirement. *)
  mutable shadow_active : bool;
      (** PMI delivery was inhibited at this retirement because a
          long-latency instruction was still in flight. *)
}

type observer = retirement -> unit

type run_stats = {
  retired : int;
  cycles : int;
  taken_branches : int;
  kernel_retired : int;  (** Retirements in ring 0. *)
}

exception Runaway of int
(** Instruction budget exceeded — a workload failed to terminate. *)

exception Machine_fault of string

(** How [run] drives the execution graph.  All engines retire
    bit-identical streams — same {!run_stats}, same observer
    notifications, same faults — and differ only in dispatch cost:

    - [Legacy]: the seed per-instruction loop; the differential-testing
      reference.
    - [Block]: per basic block, one cached closure of pre-compiled
      instruction kernels executes the whole block straight-line; the
      dense block cache is consulted at every block boundary.
    - [Superblock]: additionally chains direct fall-through/taken
      successors through pointers patched on first traversal, so
      steady-state execution re-enters the dispatcher only when an
      indirect target (RET, indirect JMP/CALL) changes destination. *)
type engine = Legacy | Block | Superblock

val engine_name : engine -> string
val engine_of_string : string -> engine option
val all_engines : engine list

(** [Superblock] unless the [HBBP_ENGINE] environment variable names
    another engine (unknown values are ignored). *)
val default_engine : unit -> engine

type t

(** [create ~process ()] builds the execution graph from the process's
    {e live} images.  [seed] feeds workload-visible randomness;
    [engine] defaults to {!default_engine}. *)
val create : process:Process.t -> ?seed:int64 -> ?engine:engine -> unit -> t

val state : t -> State.t
val process : t -> Process.t
val engine : t -> engine

(** O(1); the observer set is frozen when [run] starts. *)
val add_observer : t -> observer -> unit

(** [run t ~entry ()] — executes from [entry] until the entry function
    returns (to the sentinel return address) or retires [HLT].
    @raise Runaway when [max_instructions] (default [2_000_000_000]) is hit.
    @raise Machine_fault on execution falling off mapped code, or SYSCALL
    with no kernel mapped. *)
val run : t -> entry:int -> ?max_instructions:int -> unit -> run_stats
