(** The contract between user code, the machine and the kernel image. *)

(** Symbol the machine jumps to on SYSCALL.  RAX carries the syscall
    number; RCX carries the user return address (consumed by SYSRET).
    The kernel clobbers RAX (return value), RCX, RDX, R11 and R14. *)
val syscall_entry : string

(** [entry_addr process] — resolved address of {!syscall_entry} in the
    process's live images; [None] when no kernel is mapped.  The machine
    jumps here on every SYSCALL. *)
val entry_addr : Hbbp_program.Process.t -> int option

(** Well-known syscall numbers implemented by {!Kernel.build}. *)
val sys_nop : int

val sys_getpid : int
val sys_bufclear : int
val sys_copy : int
val sys_stat : int

(** First number available for externally registered (module) services. *)
val first_module_syscall : int
