(** Instruction semantics.

    [step] executes exactly one instruction against the architectural
    state and reports how control continues.  Data semantics are faithful
    for integer and scalar-FP code and value-level (per-lane, not
    bit-exact) for SIMD — sufficient to drive realistic, data-dependent
    control flow, which is what the profiling experiments need. *)

type control =
  | Fall  (** Continue at the next instruction. *)
  | Taken of int  (** A taken branch (jump, taken Jcc, call, ret). *)
  | Syscall_enter of int  (** SYSCALL retired; payload = return address. *)
  | Sysret_exit of int  (** SYSRET retired; payload = target address. *)
  | Halt

exception Fault of string
(** Raised on malformed operand combinations or division-free contract
    violations — indicates a bug in a workload, not a recoverable
    condition. *)

(** [step state node] — executes [node.instr].  [state.ip] is expected to
    equal [node.addr]. *)
val step : State.t -> Exec_graph.node -> control

type kernel = State.t -> control
(** A pre-compiled instruction: the mnemonic dispatch, operand shapes,
    register codes, effective-address forms, immediates and direct
    branch targets of one node resolved into a single closure. *)

(** [compile node] specializes [node] into a {!kernel} computing exactly
    the state transition of [step state node] — same values, same
    evaluation order, same faults.  Instructions without a
    specialization (rare forms, cross-lane shuffles) get a [step]
    thunk, so compiling never changes behaviour, only cost. *)
val compile : Exec_graph.node -> kernel

(** [compile_specialized node] is the specializer behind {!compile}:
    [None] means the node would run through the [step] fallback.
    Exposed so tests and benchmarks can measure specialization
    coverage on real workloads. *)
val compile_specialized : Exec_graph.node -> kernel option
