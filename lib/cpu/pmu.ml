open Hbbp_isa
open Hbbp_program
module Faults = Hbbp_faults.Faults

type counter_mode = Counting | Sampling of { period : int; lbr : bool }
type counter_config = { event : Pmu_event.t; mode : counter_mode }

type sample = {
  event : Pmu_event.t;
  ip : int;
  lbr : Lbr.entry array;
  ring : Ring.t;
  retired_index : int;
  cycles : int;
}

type counter = {
  config : counter_config;
  mutable value : int;  (* progress towards the next overflow *)
  mutable total : int64;
}

type pending = {
  counter_idx : int;
  mutable skid_left : int;
  branch_based : bool;  (* skid counts taken branches, not retirements *)
  trigger : Lbr.entry option;  (* the branch that caused the overflow *)
  mutable waiting_shadow : bool;
}

(* Sampling-health accounting (paper sections III.A/III.C): everything
   the analyzer's error structure is later blamed on, counted at the
   source so the pipeline can observe its own collection quality. *)
type health = {
  pmi_count : int;
  skid_hist : int array;
  shadow_slides : int;
  lbr_snapshots : int;
  stuck_snapshots : int;
  misrotated_snapshots : int;
  dropped_records : int;
}

(* Skid displacements above this land in the overflow slot. *)
let max_skid_bucket = 16

type t = {
  model : Pmu_model.t;
  counters : counter array;
  lbr : Lbr.t;
  prng : Prng.t;
  mutable samples_rev : sample list;
  mutable pendings : pending list;
  mutable pmi_count : int;
  mutable last_cycles : int;
  mutable stuck_entry : Lbr.entry option;
      (* The quirk: a branch record stuck in the oldest LBR slots. *)
  mutable stuck_left : int;  (* Snapshots the stuck record persists for. *)
  mutable drop_next_push : bool;
      (* The quirk's second face: the recording of the taken branch that
         follows a quirky one is occasionally lost. *)
  skid_hist : int array;  (* drawn skid per overflow; last slot = overflow *)
  mutable shadow_slides : int;
  mutable lbr_snapshots : int;
  mutable stuck_snapshots : int;
  mutable misrotated_snapshots : int;
  mutable dropped_records : int;
  mutable faults : Faults.pmu_injector option;
      (* Chaos hook; [None] unless a fault plan with PMU faults is armed
         at creation, so the disarmed hot path is one field load. *)
}

let create model configs =
  if List.length configs > 4 then
    invalid_arg "Pmu.create: at most 4 counters per core";
  let precise_sampling =
    List.filter
      (fun c ->
        match c.mode with
        | Sampling _ -> Pmu_event.is_precise c.event
        | Counting -> false)
      configs
  in
  if List.length precise_sampling > 1 then
    invalid_arg "Pmu.create: only one precise event can sample at a time";
  {
    model;
    counters =
      Array.of_list
        (List.map (fun config -> { config; value = 0; total = 0L }) configs);
    lbr = Lbr.create ~depth:model.lbr_depth;
    prng = Prng.create ~seed:model.seed;
    samples_rev = [];
    pendings = [];
    pmi_count = 0;
    last_cycles = 0;
    stuck_entry = None;
    stuck_left = 0;
    drop_next_push = false;
    skid_hist = Array.make (max_skid_bucket + 2) 0;
    shadow_slides = 0;
    lbr_snapshots = 0;
    stuck_snapshots = 0;
    misrotated_snapshots = 0;
    dropped_records = 0;
    faults = Faults.pmu_injector ();
  }

(* How much a retirement advances a counter for a given event. *)
let increment (e : Pmu_event.t) (r : Machine.retirement) ~cycles_delta =
  let m = r.node.instr.Instruction.mnemonic in
  match e with
  | Pmu_event.Inst_retired_any | Pmu_event.Inst_retired_prec_dist -> 1
  | Pmu_event.Br_inst_retired_near_taken -> if r.taken_src >= 0 then 1 else 0
  | Pmu_event.Cpu_clk_unhalted -> cycles_delta
  | Pmu_event.Arith_divider_cycles -> (
      match Mnemonic.category m with
      | Mnemonic.Divide -> Latency.latency m
      | _ -> 0)
  | Pmu_event.Fp_comp_ops_sse | Pmu_event.Fp_comp_ops_avx
  | Pmu_event.Fp_comp_ops_x87 | Pmu_event.Simd_int_128 -> (
      let computational =
        match Mnemonic.category m with
        | Mnemonic.Arithmetic | Mnemonic.Divide | Mnemonic.Sqrt
        | Mnemonic.Transcendental | Mnemonic.Fma ->
            true
        | _ -> false
      in
      if not computational then 0
      else
        let set = Mnemonic.isa_set m and elem = Mnemonic.element m in
        let fp =
          match elem with
          | Mnemonic.Fp32 | Mnemonic.Fp64 -> true
          | Mnemonic.Int_elem | Mnemonic.No_elem -> false
        in
        match e with
        | Pmu_event.Fp_comp_ops_sse ->
            if fp && Mnemonic.equal_isa_set set Mnemonic.Sse then 1 else 0
        | Pmu_event.Fp_comp_ops_avx ->
            if
              fp
              && (Mnemonic.equal_isa_set set Mnemonic.Avx
                 || Mnemonic.equal_isa_set set Mnemonic.Avx2)
            then 1
            else 0
        | Pmu_event.Fp_comp_ops_x87 ->
            if Mnemonic.equal_isa_set set Mnemonic.X87 then 1 else 0
        | Pmu_event.Simd_int_128 -> (
            match (set, elem) with
            | (Mnemonic.Sse | Mnemonic.Avx2), Mnemonic.Int_elem -> 1
            | _, _ -> 0)
        | _ -> 0)

(* Mild anomaly (all branches, low rate): the buffer is mis-rotated by
   one slot — the triggering branch appears oldest, one genuine stream is
   lost and one bogus stream fabricated. *)
let misrotate snap =
  let n = Array.length snap in
  Array.init n (fun k -> if k = 0 then snap.(n - 1) else snap.(k - 1))

(* The hard quirk (hash-selected branches): the triggering branch's
   record gets STUCK in the two oldest slots of the buffer and persists
   there across the next few snapshots, as if those slots stopped being
   rewritten.  The analyzer sees the same branch at entry[0] a
   disproportionate number of times — up to ~50% for a hot branch, the
   paper's exact symptom — while the genuine oldest streams are lost and
   bogus streams anchored at the stuck branch's source/target fabricate
   weight over the blocks around it: concentrated over- and
   under-counting, as in Table 3. *)
let stick snap (e : Lbr.entry) =
  let out = Array.copy snap in
  let n = Array.length out in
  if n > 2 then begin
    out.(0) <- e;
    out.(1) <- e
  end;
  out

let snapshot_lbr t ~branch_based ~trigger =
  let snap = Lbr.snapshot t.lbr in
  if Array.length snap = 0 then snap
  else begin
    t.lbr_snapshots <- t.lbr_snapshots + 1;
    if not branch_based then snap
    else begin
      (match trigger with
      | Some (entry : Lbr.entry)
        when Pmu_model.is_quirk_branch t.model entry.src
             && Prng.bool t.prng t.model.quirk_probability ->
          t.stuck_entry <- Some entry;
          t.stuck_left <- 2 + Prng.int t.prng 5
      | Some _ | None -> ());
      match t.stuck_entry with
      | Some e when t.stuck_left > 0 ->
          t.stuck_left <- t.stuck_left - 1;
          if t.stuck_left = 0 then t.stuck_entry <- None;
          t.stuck_snapshots <- t.stuck_snapshots + 1;
          stick snap e
      | Some _ | None ->
          if Prng.bool t.prng t.model.global_anomaly_probability then begin
            t.misrotated_snapshots <- t.misrotated_snapshots + 1;
            misrotate snap
          end
          else snap
    end
  end

(* Injected LBR corruption (chaos testing): forced stuck/mis-rotated
   snapshots reuse the genuine quirk transforms; truncation keeps only
   the newest entries, as if the buffer stopped short. *)
let inject_lbr_faults inj ~(trigger : Lbr.entry option) snap =
  if Array.length snap = 0 then snap
  else begin
    let f = Faults.lbr_fault inj in
    let snap =
      if f.Faults.stick then
        let e =
          match trigger with Some e -> e | None -> snap.(Array.length snap - 1)
        in
        stick snap e
      else snap
    in
    let snap = if f.Faults.misrotate then misrotate snap else snap in
    let keep = f.Faults.truncate in
    if keep > 0 && keep < Array.length snap then
      Array.sub snap (Array.length snap - keep) keep
    else snap
  end

let deliver t pending (r : Machine.retirement) =
  let counter = t.counters.(pending.counter_idx) in
  let lbr_enabled =
    match counter.config.mode with
    | Sampling { lbr; _ } -> lbr
    | Counting -> false
  in
  let lbr =
    if lbr_enabled then
      snapshot_lbr t ~branch_based:pending.branch_based
        ~trigger:pending.trigger
    else [||]
  in
  let lbr =
    match t.faults with
    | None -> lbr
    | Some inj -> inject_lbr_faults inj ~trigger:pending.trigger lbr
  in
  t.pmi_count <- t.pmi_count + 1;
  (* Injected sample loss: the PMI happened (it is counted, it cost
     cycles) but the sample record never reaches the stream — a ring
     buffer overrun seen from inside the PMU. *)
  let lost =
    match t.faults with
    | None -> false
    | Some inj -> Faults.drop_sample inj
  in
  if not lost then
    t.samples_rev <-
      {
        event = counter.config.event;
        ip = r.node.Exec_graph.addr;
        lbr;
        ring = r.node.Exec_graph.ring;
        retired_index = r.retired_index;
        cycles = r.cycles;
      }
      :: t.samples_rev

let skid_for t (e : Pmu_event.t) =
  match e with
  | Pmu_event.Br_inst_retired_near_taken ->
      Pmu_model.draw_skid t.prng t.model.branch_skid
  | Pmu_event.Inst_retired_prec_dist ->
      Pmu_model.draw_skid t.prng t.model.precise_skid
  | _ -> Pmu_model.draw_skid t.prng t.model.imprecise_skid

let observer t : Machine.observer =
 fun r ->
  let cycles_delta = r.cycles - t.last_cycles in
  t.last_cycles <- r.cycles;
  (* 1. LBR tracks every retired taken branch — except records lost to
     the quirk. *)
  if r.taken_src >= 0 then begin
    if t.drop_next_push then begin
      t.drop_next_push <- false;
      t.dropped_records <- t.dropped_records + 1
    end
    else Lbr.push t.lbr ~src:r.taken_src ~tgt:r.taken_tgt;
    if
      (Pmu_model.is_quirk_branch t.model r.taken_src
      && Prng.bool t.prng t.model.quirk_drop_probability)
      || Prng.bool t.prng t.model.global_drop_probability
    then t.drop_next_push <- true
  end;
  (* 2. Advance pending PMIs (created at earlier retirements). *)
  if t.pendings <> [] then begin
    let still_pending = ref [] in
    List.iter
      (fun p ->
        let shadow_blocked = t.model.shadow_enabled && r.shadow_active in
        if p.waiting_shadow then
          if shadow_blocked then still_pending := p :: !still_pending
          else deliver t p r
        else begin
          let applicable = (not p.branch_based) || r.taken_src >= 0 in
          if applicable then p.skid_left <- p.skid_left - 1;
          if p.skid_left <= 0 && applicable then
            if
              shadow_blocked
              && Prng.bool t.prng t.model.shadow_slide_probability
            then begin
              p.waiting_shadow <- true;
              t.shadow_slides <- t.shadow_slides + 1;
              still_pending := p :: !still_pending
            end
            else deliver t p r
          else still_pending := p :: !still_pending
        end)
      (List.rev t.pendings);
    t.pendings <- List.rev !still_pending
  end;
  (* 3. Count, detect overflows, create new pendings.  A for-loop, not
     [Array.iteri]: the latter allocates a fresh closure over [r] and
     [cycles_delta] on every retirement of an armed run. *)
  let counters = t.counters in
  for idx = 0 to Array.length counters - 1 do
    let c = Array.unsafe_get counters idx in
    begin
      let inc = increment c.config.event r ~cycles_delta in
      if inc > 0 then begin
        c.total <- Int64.add c.total (Int64.of_int inc);
        match c.config.mode with
        | Counting -> ()
        | Sampling { period; _ } ->
            c.value <- c.value + inc;
            if c.value >= period then begin
              c.value <- c.value - period;
              let branch_based =
                Pmu_event.equal c.config.event
                  Pmu_event.Br_inst_retired_near_taken
              in
              let trigger =
                if branch_based && r.taken_src >= 0 then
                  Some { Lbr.src = r.taken_src; tgt = r.taken_tgt }
                else None
              in
              let skid = skid_for t c.config.event in
              let skid =
                match t.faults with
                | None -> skid
                | Some inj -> skid + Faults.extra_skid inj
              in
              let bucket = if skid <= max_skid_bucket then skid else max_skid_bucket + 1 in
              t.skid_hist.(bucket) <- t.skid_hist.(bucket) + 1;
              let p =
                { counter_idx = idx; skid_left = skid; branch_based; trigger;
                  waiting_shadow = false }
              in
              if skid = 0 then
                if
                  t.model.shadow_enabled && r.shadow_active
                  && Prng.bool t.prng t.model.shadow_slide_probability
                then begin
                  p.waiting_shadow <- true;
                  t.shadow_slides <- t.shadow_slides + 1;
                  t.pendings <- p :: t.pendings
                end
                else deliver t p r
              else t.pendings <- p :: t.pendings
            end
      end
    end
  done

let samples t = List.rev t.samples_rev
let counts t =
  Array.to_list (Array.map (fun c -> (c.config.event, c.total)) t.counters)

let pmi_count t = t.pmi_count

let health t =
  {
    pmi_count = t.pmi_count;
    skid_hist = Array.copy t.skid_hist;
    shadow_slides = t.shadow_slides;
    lbr_snapshots = t.lbr_snapshots;
    stuck_snapshots = t.stuck_snapshots;
    misrotated_snapshots = t.misrotated_snapshots;
    dropped_records = t.dropped_records;
  }

let reset t =
  Array.iter
    (fun c ->
      c.value <- 0;
      c.total <- 0L)
    t.counters;
  Lbr.clear t.lbr;
  t.samples_rev <- [];
  t.pendings <- [];
  t.pmi_count <- 0;
  t.last_cycles <- 0;
  t.stuck_entry <- None;
  t.stuck_left <- 0;
  t.drop_next_push <- false;
  Array.fill t.skid_hist 0 (Array.length t.skid_hist) 0;
  t.shadow_slides <- 0;
  t.lbr_snapshots <- 0;
  t.stuck_snapshots <- 0;
  t.misrotated_snapshots <- 0;
  t.dropped_records <- 0;
  t.faults <- Faults.pmu_injector ()
