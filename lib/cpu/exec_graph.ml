open Hbbp_isa
open Hbbp_program

type node = {
  addr : int;
  instr : Instruction.t;
  len : int;
  ring : Ring.t;
  kernel : bool;
  issue_cost : int;
  latency : int;
  long_latency : bool;
  mutable fall : node option;
  mutable target : node option;
}

(* One contiguous decoded image.  [slots] is indexed by [addr - base],
   making [node_at] a range check plus an array load — the Hashtbl this
   replaces was the dominant cost of resolving indirect branches (every
   RET) on the [Machine.run] path. *)
type segment = { base : int; limit : int; slots : node option array }

type t = { segments : segment array; count : int }

(* Retirement charge: one issue slot, plus a flat memory penalty, plus a
   fraction of long latencies that out-of-order execution cannot hide. *)
let issue_cost_of instr =
  let lat = Latency.latency instr.Instruction.mnemonic in
  let mem =
    if Instruction.reads_memory instr || Instruction.writes_memory instr then 2
    else 0
  in
  let stall =
    (* Out-of-order execution hides short latencies entirely; only the
       long tail leaks into retirement. *)
    if lat >= Latency.long_latency_threshold then lat / 4
    else if lat >= 8 then 1
    else 0
  in
  1 + mem + stall

let node_at t addr =
  let segments = t.segments in
  let n = Array.length segments in
  let rec find k =
    if k >= n then None
    else
      let s = Array.unsafe_get segments k in
      if addr >= s.base && addr < s.limit then
        Array.unsafe_get s.slots (addr - s.base)
      else find (k + 1)
  in
  find 0

let build (process : Process.t) =
  let rec decode_all acc = function
    | [] -> Ok (List.rev acc)
    | (img : Image.t) :: rest -> (
        match Disasm.image img with
        | Error _ as e -> e
        | Ok decoded -> decode_all ((img, decoded) :: acc) rest)
  in
  match decode_all [] (Process.images process) with
  | Error e -> Error e
  | Ok decoded_images ->
      let count = ref 0 in
      let segments =
        List.filter_map
          (fun ((img : Image.t), (decoded : Disasm.decoded array)) ->
            if Array.length decoded = 0 then None
            else begin
              let lo = ref max_int and hi = ref min_int in
              Array.iter
                (fun (d : Disasm.decoded) ->
                  if d.addr < !lo then lo := d.addr;
                  if d.addr + d.len > !hi then hi := d.addr + d.len)
                decoded;
              let slots = Array.make (!hi - !lo) None in
              let kernel = Ring.equal img.ring Ring.Kernel in
              Array.iter
                (fun (d : Disasm.decoded) ->
                  let latency = Latency.latency d.instr.mnemonic in
                  let node =
                    {
                      addr = d.addr;
                      instr = d.instr;
                      len = d.len;
                      ring = img.ring;
                      kernel;
                      issue_cost = issue_cost_of d.instr;
                      latency;
                      long_latency = latency >= Latency.long_latency_threshold;
                      fall = None;
                      target = None;
                    }
                  in
                  if slots.(d.addr - !lo) = None then incr count;
                  slots.(d.addr - !lo) <- Some node)
                decoded;
              Some { base = !lo; limit = !hi; slots }
            end)
          decoded_images
      in
      let t = { segments = Array.of_list segments; count = !count } in
      (* Link direct control-flow edges now that every node exists. *)
      Array.iter
        (fun s ->
          Array.iter
            (function
              | None -> ()
              | Some node -> (
                  node.fall <- node_at t (node.addr + node.len);
                  match Instruction.rel_displacement node.instr with
                  | Some disp when Instruction.is_branch node.instr ->
                      node.target <- node_at t (node.addr + node.len + disp)
                  | Some _ | None -> ()))
            s.slots)
        t.segments;
      Ok t

let build_exn process =
  match build process with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "%a" Disasm.pp_error e)

let node_count t = t.count
