open Hbbp_isa
open Hbbp_program

type node = {
  addr : int;
  instr : Instruction.t;
  len : int;
  ring : Ring.t;
  kernel : bool;
  issue_cost : int;
  latency : int;
  long_latency : bool;
  mutable fall : node option;
  mutable target : node option;
}

(* A straight-line run of nodes: every node but the last always falls
   through, and the last either is a terminator (branch/syscall/halt)
   or has no decodable fall-through.  Blocks are keyed by their {e
   entry} address and may overlap — a branch into the middle of one
   block simply starts another — which is what makes the cache safe
   without splitting at join points. *)
type block = {
  b_nodes : node array;
  b_last : node;
  b_len : int;
  b_cost : int;  (** Sum of member issue costs. *)
  b_kernel : int;  (** Members retiring in ring 0. *)
  b_long_latency : bool;  (** Any member casts a PMI shadow. *)
}

(* One contiguous decoded image.  [slots] is indexed by [addr - base],
   making [node_at] a range check plus an array load — the Hashtbl this
   replaces was the dominant cost of resolving indirect branches (every
   RET) on the [Machine.run] path.  [blocks] is the lazily filled
   basic-block cache, same indexing. *)
type segment = {
  base : int;
  limit : int;
  slots : node option array;
  blocks : block option array;
}

type t = { segments : segment array; count : int }

(* Address-indexed side table mirroring the graph's segment layout:
   a range check plus a dense array load, like [node_at].  The tiered
   executor keys its compiled-closure cache through one of these. *)
type 'a table = {
  tbl_base : int array;
  tbl_limit : int array;
  tbl_slots : 'a option array array;
}

(* Retirement charge: one issue slot, plus a flat memory penalty, plus a
   fraction of long latencies that out-of-order execution cannot hide. *)
let issue_cost_of instr =
  let lat = Latency.latency instr.Instruction.mnemonic in
  let mem =
    if Instruction.reads_memory instr || Instruction.writes_memory instr then 2
    else 0
  in
  let stall =
    (* Out-of-order execution hides short latencies entirely; only the
       long tail leaks into retirement. *)
    if lat >= Latency.long_latency_threshold then lat / 4
    else if lat >= 8 then 1
    else 0
  in
  1 + mem + stall

let node_at t addr =
  let segments = t.segments in
  let n = Array.length segments in
  let rec find k =
    if k >= n then None
    else
      let s = Array.unsafe_get segments k in
      if addr >= s.base && addr < s.limit then
        Array.unsafe_get s.slots (addr - s.base)
      else find (k + 1)
  in
  find 0

(* A terminator is any instruction whose [Exec.step] can return
   something other than [Fall]: branches (including SYSCALL/SYSRET via
   their branch kinds) and HLT.  Everything else always falls through,
   which is what lets whole blocks execute without control dispatch. *)
let is_terminator (instr : Instruction.t) =
  Instruction.is_branch instr
  || Mnemonic.equal instr.Instruction.mnemonic Mnemonic.HLT

(* Blocks are capped so pathological straight-line code (and the
   overlapping suffixes of jumps into block middles) keeps compilation
   and cache footprint bounded; the executor chains capped blocks
   through their fall-through like any other block boundary. *)
let max_block_len = 64

let build_block entry =
  let rec collect node acc n =
    if is_terminator node.instr || n >= max_block_len then
      List.rev (node :: acc)
    else
      match node.fall with
      | None -> List.rev (node :: acc)
      | Some next -> collect next (node :: acc) (n + 1)
  in
  let nodes = Array.of_list (collect entry [] 1) in
  let cost = ref 0 and kernel = ref 0 and long = ref false in
  Array.iter
    (fun n ->
      cost := !cost + n.issue_cost;
      if n.kernel then incr kernel;
      if n.long_latency then long := true)
    nodes;
  {
    b_nodes = nodes;
    b_last = nodes.(Array.length nodes - 1);
    b_len = Array.length nodes;
    b_cost = !cost;
    b_kernel = !kernel;
    b_long_latency = !long;
  }

let block_at t addr =
  let segments = t.segments in
  let n = Array.length segments in
  let rec find k =
    if k >= n then None
    else
      let s = Array.unsafe_get segments k in
      if addr >= s.base && addr < s.limit then begin
        let off = addr - s.base in
        match Array.unsafe_get s.blocks off with
        | Some _ as b -> b
        | None -> (
            match Array.unsafe_get s.slots off with
            | None -> None
            | Some entry ->
                let b = build_block entry in
                s.blocks.(off) <- Some b;
                Some b)
      end
      else find (k + 1)
  in
  find 0

let create_table t =
  {
    tbl_base = Array.map (fun s -> s.base) t.segments;
    tbl_limit = Array.map (fun s -> s.limit) t.segments;
    tbl_slots =
      Array.map (fun s -> Array.make (Array.length s.slots) None) t.segments;
  }

let table_find tbl addr =
  let n = Array.length tbl.tbl_base in
  let rec find k =
    if k >= n then None
    else if
      addr >= Array.unsafe_get tbl.tbl_base k
      && addr < Array.unsafe_get tbl.tbl_limit k
    then
      Array.unsafe_get
        (Array.unsafe_get tbl.tbl_slots k)
        (addr - Array.unsafe_get tbl.tbl_base k)
    else find (k + 1)
  in
  find 0

let table_set tbl addr v =
  let n = Array.length tbl.tbl_base in
  let rec find k =
    if k >= n then ()
    else if addr >= tbl.tbl_base.(k) && addr < tbl.tbl_limit.(k) then
      tbl.tbl_slots.(k).(addr - tbl.tbl_base.(k)) <- Some v
    else find (k + 1)
  in
  find 0

let build (process : Process.t) =
  let rec decode_all acc = function
    | [] -> Ok (List.rev acc)
    | (img : Image.t) :: rest -> (
        match Disasm.image img with
        | Error _ as e -> e
        | Ok decoded -> decode_all ((img, decoded) :: acc) rest)
  in
  match decode_all [] (Process.images process) with
  | Error e -> Error e
  | Ok decoded_images ->
      let count = ref 0 in
      let segments =
        List.filter_map
          (fun ((img : Image.t), (decoded : Disasm.decoded array)) ->
            if Array.length decoded = 0 then None
            else begin
              let lo = ref max_int and hi = ref min_int in
              Array.iter
                (fun (d : Disasm.decoded) ->
                  if d.addr < !lo then lo := d.addr;
                  if d.addr + d.len > !hi then hi := d.addr + d.len)
                decoded;
              let size = !hi - !lo in
              let slots = Array.make size None in
              let blocks = Array.make size None in
              let kernel = Ring.equal img.ring Ring.Kernel in
              Array.iter
                (fun (d : Disasm.decoded) ->
                  let latency = Latency.latency d.instr.mnemonic in
                  let node =
                    {
                      addr = d.addr;
                      instr = d.instr;
                      len = d.len;
                      ring = img.ring;
                      kernel;
                      issue_cost = issue_cost_of d.instr;
                      latency;
                      long_latency = latency >= Latency.long_latency_threshold;
                      fall = None;
                      target = None;
                    }
                  in
                  if slots.(d.addr - !lo) = None then incr count;
                  slots.(d.addr - !lo) <- Some node)
                decoded;
              Some { base = !lo; limit = !hi; slots; blocks }
            end)
          decoded_images
      in
      let t = { segments = Array.of_list segments; count = !count } in
      (* Link direct control-flow edges now that every node exists. *)
      Array.iter
        (fun s ->
          Array.iter
            (function
              | None -> ()
              | Some node -> (
                  node.fall <- node_at t (node.addr + node.len);
                  match Instruction.rel_displacement node.instr with
                  | Some disp when Instruction.is_branch node.instr ->
                      node.target <- node_at t (node.addr + node.len + disp)
                  | Some _ | None -> ()))
            s.slots)
        t.segments;
      Ok t

let build_exn process =
  match build process with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "%a" Disasm.pp_error e)

let node_count t = t.count
