(** Pre-decoded executable form of a process.

    Decoding once and linking direct control-flow edges keeps the
    interpreter fast enough to retire hundreds of millions of
    instructions. *)

open Hbbp_isa
open Hbbp_program

type node = {
  addr : int;
  instr : Instruction.t;
  len : int;
  ring : Ring.t;
  kernel : bool;  (** [Ring.equal ring Kernel], precomputed for the run loop. *)
  issue_cost : int;  (** Cycles the retirement itself charges. *)
  latency : int;  (** Full result latency; drives the shadow model. *)
  long_latency : bool;
  mutable fall : node option;  (** Node at [addr + len]. *)
  mutable target : node option;  (** Direct branch target, if any. *)
}

type t

(** [build process] decodes every image of the process.  For kernel
    images this must be the {e live} image — the one that actually
    executes. *)
val build : Process.t -> (t, Disasm.error) result

val build_exn : Process.t -> t

(** [node_at t addr] — O(1): a per-image range check plus a dense
    base-offset array load.  No hashing on the execution path. *)
val node_at : t -> int -> node option

val node_count : t -> int
