(** Pre-decoded executable form of a process.

    Decoding once and linking direct control-flow edges keeps the
    interpreter fast enough to retire hundreds of millions of
    instructions. *)

open Hbbp_isa
open Hbbp_program

type node = {
  addr : int;
  instr : Instruction.t;
  len : int;
  ring : Ring.t;
  kernel : bool;  (** [Ring.equal ring Kernel], precomputed for the run loop. *)
  issue_cost : int;  (** Cycles the retirement itself charges. *)
  latency : int;  (** Full result latency; drives the shadow model. *)
  long_latency : bool;
  mutable fall : node option;  (** Node at [addr + len]. *)
  mutable target : node option;  (** Direct branch target, if any. *)
}

type t

(** [build process] decodes every image of the process.  For kernel
    images this must be the {e live} image — the one that actually
    executes. *)
val build : Process.t -> (t, Disasm.error) result

val build_exn : Process.t -> t

(** [node_at t addr] — O(1): a per-image range check plus a dense
    base-offset array load.  No hashing on the execution path. *)
val node_at : t -> int -> node option

val node_count : t -> int

(** {1 Basic blocks}

    The tiered executor's unit of work: a straight-line run of nodes in
    which only the last can redirect control.  Blocks are keyed by
    entry address and may overlap (a branch into the middle of one
    block starts another), so no splitting at join points is needed. *)

type block = {
  b_nodes : node array;  (** In execution order; length ≥ 1. *)
  b_last : node;  (** [b_nodes.(b_len - 1)]. *)
  b_len : int;
  b_cost : int;  (** Sum of member issue costs. *)
  b_kernel : int;  (** Members retiring in ring 0. *)
  b_long_latency : bool;  (** Any member casts a PMI shadow. *)
}

(** Can [Exec.step] of this instruction return anything but [Fall]?
    True for branches (incl. SYSCALL/SYSRET) and HLT. *)
val is_terminator : Instruction.t -> bool

(** Blocks longer than this are split; the tail continues as the
    fall-through successor of the capped block. *)
val max_block_len : int

(** [block_at t addr] — the (cached) basic block whose entry is [addr],
    or [None] when [addr] holds no decoded instruction.  First call per
    address walks the fall-through chain and caches; later calls are a
    range check plus an array load. *)
val block_at : t -> int -> block option

(** {1 Address-indexed side tables}

    Dense per-segment caches mirroring the graph layout — the closure
    cache of the tiered executor lives in one of these, so resolving an
    indirect branch target to compiled code costs the same as
    [node_at]: no hashing. *)

type 'a table

val create_table : t -> 'a table
val table_find : 'a table -> int -> 'a option
val table_set : 'a table -> int -> 'a -> unit
