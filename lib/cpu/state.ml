open Hbbp_isa
open Hbbp_program

(* The integer register file lives in a bigarray rather than an
   [int64 array]: elements are stored unboxed, so the executor's
   register reads cost one load and writes cost one store — no
   allocation and no [caml_modify] write barrier, which dominate the
   per-retirement budget with a boxed representation. *)
type regfile = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  gprs : regfile;
  vregs : float array array;
  x87 : float array;
  mutable x87_top : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable off : bool;
  mem : Memory.t;
  prng : Prng.t;
  mutable ring : Ring.t;
  mutable ip : int;
}

let create ?(seed = 42L) () =
  let gprs = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 16 in
  Bigarray.Array1.fill gprs 0L;
  {
    gprs;
    vregs = Array.init 16 (fun _ -> Array.make 8 0.0);
    x87 = Array.make 8 0.0;
    x87_top = 0;
    zf = false;
    sf = false;
    cf = false;
    off = false;
    mem = Memory.create Layout.memory_regions;
    prng = Prng.create ~seed;
    ring = Ring.User;
    ip = 0;
  }

let get_gpr t g = Bigarray.Array1.get t.gprs (Operand.gpr_code g)
let set_gpr t g v = Bigarray.Array1.set t.gprs (Operand.gpr_code g) v

let vreg_index = function
  | Operand.Xmm i | Operand.Ymm i -> i
  | Operand.Gpr _ | Operand.St _ ->
      invalid_arg "State.vreg_index: not a vector register"

let lane_count reg (elem : Mnemonic.element) =
  match (reg, elem) with
  | Operand.Ymm _, Mnemonic.Fp64 -> 4
  | Operand.Ymm _, (Mnemonic.Fp32 | Mnemonic.Int_elem | Mnemonic.No_elem) -> 8
  | _, Mnemonic.Fp64 -> 2
  | _, (Mnemonic.Fp32 | Mnemonic.Int_elem | Mnemonic.No_elem) -> 4

let x87_get t i = t.x87.((t.x87_top + i) land 7)
let x87_set t i v = t.x87.((t.x87_top + i) land 7) <- v

let x87_push t v =
  t.x87_top <- (t.x87_top - 1) land 7;
  t.x87.(t.x87_top) <- v

let x87_pop t =
  let v = t.x87.(t.x87_top) in
  t.x87_top <- (t.x87_top + 1) land 7;
  v

let effective_address t { Operand.base; index; scale; disp } =
  let base_v = Int64.to_int (get_gpr t base) in
  let index_v =
    match index with
    | None -> 0
    | Some g -> Int64.to_int (get_gpr t g) * scale
  in
  base_v + index_v + disp

let reset_registers t =
  Bigarray.Array1.fill t.gprs 0L;
  Array.iter (fun v -> Array.fill v 0 8 0.0) t.vregs;
  Array.fill t.x87 0 8 0.0;
  t.x87_top <- 0;
  t.zf <- false;
  t.sf <- false;
  t.cf <- false;
  t.off <- false;
  t.ring <- Ring.User;
  t.ip <- 0
