(** The Performance Monitoring Unit.

    Counters can run in counting mode (exact totals, used for
    cross-checking instrumentation results — paper section VII.B) or in
    sampling mode with a period; sampling counters may have LBR capture
    enabled.  The sampling path implements the skid, shadowing and LBR
    anomaly models from {!Pmu_model}.

    Chaos hook: when a fault plan with PMU faults is armed
    ({!Hbbp_faults.Faults.arm}) at {!create} time, the PMU additionally
    injects sample loss (random and bursty), extra skid / PMI jitter and
    forced LBR snapshot corruption (stuck, mis-rotated, truncated), all
    deterministic in the plan seed.  Disarmed, every hook site is a
    single load of an immutable [None] field. *)

open Hbbp_program

type counter_mode =
  | Counting
  | Sampling of { period : int; lbr : bool }

type counter_config = { event : Pmu_event.t; mode : counter_mode }

type sample = {
  event : Pmu_event.t;
  ip : int;  (** Eventing IP (where the PMI observed retirement). *)
  lbr : Lbr.entry array;  (** Oldest first; empty if LBR capture is off. *)
  ring : Ring.t;
  retired_index : int;
  cycles : int;
}

type t

(** [create model configs] —
    @raise Invalid_argument for more than 4 counters or more than one
    precise sampling event (the x86 restriction the paper works around
    with its dual-LBR collection). *)
val create : Pmu_model.t -> counter_config list -> t

(** Register this PMU on a machine. *)
val observer : t -> Machine.observer

(** Samples in delivery order. *)
val samples : t -> sample list

(** Final totals of every counter, including sampling ones. *)
val counts : t -> (Pmu_event.t * int64) list

(** Number of PMIs taken — input to the overhead model. *)
val pmi_count : t -> int

(** Sampling-health accounting: how much the collection machinery
    distorted what it observed.  These are the quantities the paper
    reasons about when explaining per-method error structure (skid and
    shadowing for EBS, the entry[0]/record-loss quirk for LBR), counted
    at the source so the pipeline can report its own collection
    quality. *)
type health = {
  pmi_count : int;  (** Samples delivered (PMIs taken). *)
  skid_hist : int array;
      (** Drawn skid displacement per counter overflow; index [d] is a
          displacement of exactly [d] retirements, the last slot counts
          displacements beyond {!max_skid_bucket}. *)
  shadow_slides : int;
      (** PMIs that slid past a shadow window before delivering. *)
  lbr_snapshots : int;  (** Non-empty LBR snapshots captured. *)
  stuck_snapshots : int;
      (** Snapshots corrupted by the stuck-entry[0] quirk. *)
  misrotated_snapshots : int;
      (** Snapshots mis-rotated by one slot (the mild anomaly). *)
  dropped_records : int;
      (** Taken-branch records lost to the record-loss quirk. *)
}

val max_skid_bucket : int

val health : t -> health

val reset : t -> unit
