type region = { base : int; data : Bytes.t }
type t = { regions : region array; mutable hot : int }

exception Fault of int

let create specs =
  let regions =
    specs
    |> List.map (fun (base, size) -> { base; data = Bytes.make size '\000' })
    |> List.sort (fun a b -> compare a.base b.base)
    |> Array.of_list
  in
  Array.iteri
    (fun k r ->
      if k > 0 then
        let prev = regions.(k - 1) in
        if prev.base + Bytes.length prev.data > r.base then
          invalid_arg "Memory.create: overlapping regions")
    regions;
  { regions; hot = 0 }

(* Hot path: consult the last-hit region first — consecutive accesses
   overwhelmingly land in the same region (stack runs, array sweeps) —
   and fall back to a linear scan that refreshes the cache.  Regions
   never overlap, so which region resolves an address is unique and the
   cache cannot change results, only the number of compares.  Each
   accessor resolves inline (rather than through a [find] returning a
   tuple) so the per-access cost is the compare pair and the byte load,
   with no allocation. *)

let region_for t addr len =
  let regions = t.regions in
  let r = Array.unsafe_get regions t.hot in
  let off = addr - r.base in
  if off >= 0 && off + len <= Bytes.length r.data then r
  else begin
    let n = Array.length regions in
    let rec scan k =
      if k = n then raise (Fault addr)
      else
        let r = Array.unsafe_get regions k in
        let off = addr - r.base in
        if off >= 0 && off + len <= Bytes.length r.data then begin
          t.hot <- k;
          r
        end
        else scan (k + 1)
    in
    scan 0
  end

let read_u8 t addr =
  let r = region_for t addr 1 in
  Bytes.get_uint8 r.data (addr - r.base)

let write_u8 t addr v =
  let r = region_for t addr 1 in
  Bytes.set_uint8 r.data (addr - r.base) (v land 0xff)

let read_i64 t addr =
  let r = region_for t addr 8 in
  Bytes.get_int64_le r.data (addr - r.base)

let write_i64 t addr v =
  let r = region_for t addr 8 in
  Bytes.set_int64_le r.data (addr - r.base) v

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

let read_i32 t addr =
  let r = region_for t addr 4 in
  Bytes.get_int32_le r.data (addr - r.base)

let write_i32 t addr v =
  let r = region_for t addr 4 in
  Bytes.set_int32_le r.data (addr - r.base) v

let read_f32 t addr = Int32.float_of_bits (read_i32 t addr)
let write_f32 t addr v = write_i32 t addr (Int32.bits_of_float v)

let is_mapped t addr =
  match region_for t addr 1 with
  | _ -> true
  | exception Fault _ -> false
