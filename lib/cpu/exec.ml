open Hbbp_isa

type control =
  | Fall
  | Taken of int
  | Syscall_enter of int
  | Sysret_exit of int
  | Halt

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

(* ------------------------------------------------------------------ *)
(* Integer operand access                                              *)

let rd_int (st : State.t) = function
  | Operand.Reg (Operand.Gpr g) -> State.get_gpr st g
  | Operand.Imm v -> v
  | Operand.Mem m -> Memory.read_i64 st.mem (State.effective_address st m)
  | Operand.Reg _ -> fault "integer read from vector register"
  | Operand.Rel _ -> fault "integer read from Rel operand"

let wr_int (st : State.t) op v =
  match op with
  | Operand.Reg (Operand.Gpr g) -> State.set_gpr st g v
  | Operand.Mem m -> Memory.write_i64 st.mem (State.effective_address st m) v
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "integer write to non-lvalue"

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)

let set_zs (st : State.t) v =
  st.zf <- Int64.equal v 0L;
  st.sf <- Int64.compare v 0L < 0

let set_logic_flags st v =
  set_zs st v;
  st.cf <- false;
  st.off <- false

let set_add_flags (st : State.t) a b r =
  set_zs st r;
  st.cf <- Int64.unsigned_compare r a < 0;
  let sa = Int64.compare a 0L < 0
  and sb = Int64.compare b 0L < 0
  and sr = Int64.compare r 0L < 0 in
  st.off <- sa = sb && sr <> sa

let set_sub_flags (st : State.t) a b r =
  set_zs st r;
  st.cf <- Int64.unsigned_compare a b < 0;
  let sa = Int64.compare a 0L < 0
  and sb = Int64.compare b 0L < 0
  and sr = Int64.compare r 0L < 0 in
  st.off <- sa <> sb && sr <> sa

let condition (st : State.t) (m : Mnemonic.t) =
  match m with
  | JZ | CMOVZ | SETZ -> st.zf
  | JNZ | CMOVNZ | SETNZ -> not st.zf
  | JLE | SETLE -> st.zf || st.sf <> st.off
  | JNLE -> (not st.zf) && st.sf = st.off
  | JL -> st.sf <> st.off
  | JNL -> st.sf = st.off
  | JB -> st.cf
  | JNB -> not st.cf
  | JBE -> st.cf || st.zf
  | JNBE -> (not st.cf) && not st.zf
  | JS -> st.sf
  | JNS -> not st.sf
  | _ -> fault "condition of non-conditional mnemonic"

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)

let push (st : State.t) v =
  let rsp = Int64.sub (State.get_gpr st Operand.RSP) 8L in
  State.set_gpr st Operand.RSP rsp;
  Memory.write_i64 st.mem (Int64.to_int rsp) v

let pop (st : State.t) =
  let rsp = State.get_gpr st Operand.RSP in
  let v = Memory.read_i64 st.mem (Int64.to_int rsp) in
  State.set_gpr st Operand.RSP (Int64.add rsp 8L);
  v

(* ------------------------------------------------------------------ *)
(* Scalar FP access (value-level: SS and SD both map to OCaml floats;  *)
(* the memory width differs)                                           *)

let rd_fp (st : State.t) ~wide = function
  | Operand.Reg (Operand.Xmm i) | Operand.Reg (Operand.Ymm i) ->
      st.vregs.(i).(0)
  | Operand.Mem m ->
      let a = State.effective_address st m in
      if wide then Memory.read_f64 st.mem a else Memory.read_f32 st.mem a
  | Operand.Imm v -> Int64.to_float v
  | Operand.Reg _ | Operand.Rel _ -> fault "fp read from bad operand"

let wr_fp (st : State.t) ~wide op v =
  match op with
  | Operand.Reg (Operand.Xmm i) | Operand.Reg (Operand.Ymm i) ->
      st.vregs.(i).(0) <- v
  | Operand.Mem m ->
      let a = State.effective_address st m in
      if wide then Memory.write_f64 st.mem a v else Memory.write_f32 st.mem a v
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "fp write to non-lvalue"

let is_wide (m : Mnemonic.t) =
  match Mnemonic.element m with
  | Mnemonic.Fp64 -> true
  | Mnemonic.Fp32 | Mnemonic.Int_elem | Mnemonic.No_elem -> false

(* ------------------------------------------------------------------ *)
(* Vector access                                                       *)

let dest_reg (i : Instruction.t) =
  match i.operands.(0) with
  | Operand.Reg r -> r
  | Operand.Mem _ | Operand.Imm _ | Operand.Rel _ ->
      fault "vector destination is not a register"

let lanes_of (i : Instruction.t) =
  (* Lane count from the first register operand (dest for reg forms). *)
  let rec first_reg k =
    if k >= Array.length i.operands then Operand.Xmm 0
    else
      match i.operands.(k) with
      | Operand.Reg ((Operand.Xmm _ | Operand.Ymm _) as r) -> r
      | _ -> first_reg (k + 1)
  in
  State.lane_count (first_reg 0) (Mnemonic.element i.mnemonic)

let rd_vec (st : State.t) ~lanes ~wide op =
  match op with
  | Operand.Reg ((Operand.Xmm i | Operand.Ymm i)) ->
      Array.sub st.vregs.(i) 0 lanes
  | Operand.Mem m ->
      let a = State.effective_address st m in
      let width = if wide then 8 else 4 in
      Array.init lanes (fun k ->
          if wide then Memory.read_f64 st.mem (a + (k * width))
          else Memory.read_f32 st.mem (a + (k * width)))
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "vector read from bad operand"

let wr_vec (st : State.t) ~wide op values =
  match op with
  | Operand.Reg ((Operand.Xmm i | Operand.Ymm i)) ->
      Array.blit values 0 st.vregs.(i) 0 (Array.length values)
  | Operand.Mem m ->
      let a = State.effective_address st m in
      let width = if wide then 8 else 4 in
      Array.iteri
        (fun k v ->
          if wide then Memory.write_f64 st.mem (a + (k * width)) v
          else Memory.write_f32 st.mem (a + (k * width)) v)
        values
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "vector write to non-lvalue"

(* Binary vector op: SSE form [op dst, src] computes dst := f dst src;
   AVX three-operand form [op dst, a, b] computes dst := f a b. *)
let vec_binop st (i : Instruction.t) f =
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let a, b =
    if Array.length i.operands >= 3 then
      ( rd_vec st ~lanes ~wide i.operands.(1),
        rd_vec st ~lanes ~wide i.operands.(2) )
    else
      ( rd_vec st ~lanes ~wide i.operands.(0),
        rd_vec st ~lanes ~wide i.operands.(1) )
  in
  wr_vec st ~wide i.operands.(0) (Array.init lanes (fun k -> f a.(k) b.(k)))

let vec_unop st (i : Instruction.t) f =
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let src = i.operands.(Array.length i.operands - 1) in
  let a = rd_vec st ~lanes ~wide src in
  wr_vec st ~wide i.operands.(0) (Array.map f a)

(* Bitwise ops work on the IEEE bits of each lane so that the common
   XOR-zeroing idiom produces exact zeros. *)
let bits32 f a b =
  Int32.float_of_bits (f (Int32.bits_of_float a) (Int32.bits_of_float b))

(* Scalar binary op over lane 0 / memory. *)
let fp_binop st (i : Instruction.t) f =
  let wide = is_wide i.mnemonic in
  let a, b =
    if Array.length i.operands >= 3 then
      (rd_fp st ~wide i.operands.(1), rd_fp st ~wide i.operands.(2))
    else (rd_fp st ~wide i.operands.(0), rd_fp st ~wide i.operands.(1))
  in
  wr_fp st ~wide i.operands.(0) (f a b)

let fp_compare (st : State.t) (i : Instruction.t) =
  let wide = is_wide i.mnemonic in
  let a = rd_fp st ~wide i.operands.(0)
  and b = rd_fp st ~wide i.operands.(1) in
  st.zf <- a = b;
  st.cf <- a < b;
  st.sf <- false;
  st.off <- false

let int_of_imm = function
  | Operand.Imm v -> Int64.to_int v
  | Operand.Reg _ | Operand.Mem _ | Operand.Rel _ ->
      fault "expected immediate operand"

(* ------------------------------------------------------------------ *)
(* x87 helpers: [op] with a memory operand uses it as the rhs against  *)
(* ST0; with an St operand uses that stack slot.                       *)

let x87_rhs (st : State.t) (i : Instruction.t) =
  if Array.length i.operands = 0 then State.x87_get st 1
  else
    match i.operands.(0) with
    | Operand.Reg (Operand.St k) -> State.x87_get st k
    | Operand.Mem m -> Memory.read_f64 st.mem (State.effective_address st m)
    | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
        fault "bad x87 operand"

let branch_target (node : Exec_graph.node) =
  match node.target with
  | Some t -> t.addr
  | None -> (
      match Instruction.rel_displacement node.instr with
      | Some disp -> node.addr + node.len + disp
      | None -> fault "direct branch without displacement at %#x" node.addr)

(* ------------------------------------------------------------------ *)

let step (st : State.t) (node : Exec_graph.node) =
  let i = node.instr in
  let ops = i.operands in
  let next_addr = node.addr + node.len in
  match i.mnemonic with
  (* ---- data transfer ---- *)
  | MOV ->
      wr_int st ops.(0) (rd_int st ops.(1));
      Fall
  | MOVZX ->
      wr_int st ops.(0) (Int64.logand (rd_int st ops.(1)) 0xFFFFL);
      Fall
  | MOVSX ->
      let v = rd_int st ops.(1) in
      wr_int st ops.(0) (Int64.shift_right (Int64.shift_left v 48) 48);
      Fall
  | MOVSXD ->
      let v = rd_int st ops.(1) in
      wr_int st ops.(0) (Int64.shift_right (Int64.shift_left v 32) 32);
      Fall
  | LEA -> (
      match ops.(1) with
      | Operand.Mem m ->
          wr_int st ops.(0) (Int64.of_int (State.effective_address st m));
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
          fault "LEA needs a memory operand")
  | XCHG ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      wr_int st ops.(0) b;
      wr_int st ops.(1) a;
      Fall
  | CMOVZ | CMOVNZ ->
      if condition st i.mnemonic then wr_int st ops.(0) (rd_int st ops.(1));
      Fall
  | SETZ | SETNZ | SETLE ->
      wr_int st ops.(0) (if condition st i.mnemonic then 1L else 0L);
      Fall
  | PUSH ->
      push st (rd_int st ops.(0));
      Fall
  | POP ->
      wr_int st ops.(0) (pop st);
      Fall
  (* ---- integer arithmetic ---- *)
  | ADD ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let r = Int64.add a b in
      set_add_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | ADC ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let c = if st.cf then 1L else 0L in
      let r = Int64.add (Int64.add a b) c in
      set_add_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | SUB ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let r = Int64.sub a b in
      set_sub_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | SBB ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let c = if st.cf then 1L else 0L in
      let r = Int64.sub (Int64.sub a b) c in
      set_sub_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | INC ->
      let r = Int64.add (rd_int st ops.(0)) 1L in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | DEC ->
      let r = Int64.sub (rd_int st ops.(0)) 1L in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | NEG ->
      let v = rd_int st ops.(0) in
      let r = Int64.neg v in
      set_zs st r;
      st.cf <- not (Int64.equal v 0L);
      wr_int st ops.(0) r;
      Fall
  | IMUL ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let r = Int64.mul a b in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | MUL ->
      let a = State.get_gpr st Operand.RAX and b = rd_int st ops.(0) in
      let r = Int64.mul a b in
      set_zs st r;
      State.set_gpr st Operand.RAX r;
      State.set_gpr st Operand.RDX 0L;
      Fall
  | IDIV | DIV ->
      (* Division by zero is defined as 0/0 remainder to keep the machine
         total; workloads are written to avoid it. *)
      let a = State.get_gpr st Operand.RAX and b = rd_int st ops.(0) in
      let q, r =
        if Int64.equal b 0L then (0L, 0L) else (Int64.div a b, Int64.rem a b)
      in
      State.set_gpr st Operand.RAX q;
      State.set_gpr st Operand.RDX r;
      set_zs st q;
      Fall
  | CDQ ->
      State.set_gpr st Operand.RDX
        (if Int64.compare (State.get_gpr st Operand.RAX) 0L < 0 then -1L else 0L);
      Fall
  | CDQE ->
      let v = State.get_gpr st Operand.RAX in
      State.set_gpr st Operand.RAX
        (Int64.shift_right (Int64.shift_left v 32) 32);
      Fall
  (* ---- logic / compare / shift ---- *)
  | AND ->
      let r = Int64.logand (rd_int st ops.(0)) (rd_int st ops.(1)) in
      set_logic_flags st r;
      wr_int st ops.(0) r;
      Fall
  | OR ->
      let r = Int64.logor (rd_int st ops.(0)) (rd_int st ops.(1)) in
      set_logic_flags st r;
      wr_int st ops.(0) r;
      Fall
  | XOR ->
      let r = Int64.logxor (rd_int st ops.(0)) (rd_int st ops.(1)) in
      set_logic_flags st r;
      wr_int st ops.(0) r;
      Fall
  | NOT ->
      wr_int st ops.(0) (Int64.lognot (rd_int st ops.(0)));
      Fall
  | TEST ->
      set_logic_flags st (Int64.logand (rd_int st ops.(0)) (rd_int st ops.(1)));
      Fall
  | CMP ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      set_sub_flags st a b (Int64.sub a b);
      Fall
  | SHL ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let r = Int64.shift_left (rd_int st ops.(0)) sh in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | SHR ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let r = Int64.shift_right_logical (rd_int st ops.(0)) sh in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | SAR ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let r = Int64.shift_right (rd_int st ops.(0)) sh in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | ROL ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let v = rd_int st ops.(0) in
      let r =
        if sh = 0 then v
        else
          Int64.logor (Int64.shift_left v sh)
            (Int64.shift_right_logical v (64 - sh))
      in
      wr_int st ops.(0) r;
      Fall
  | ROR ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let v = rd_int st ops.(0) in
      let r =
        if sh = 0 then v
        else
          Int64.logor
            (Int64.shift_right_logical v sh)
            (Int64.shift_left v (64 - sh))
      in
      wr_int st ops.(0) r;
      Fall
  (* ---- control flow ---- *)
  | JMP -> (
      match ops.(0) with
      | Operand.Rel _ -> Taken (branch_target node)
      | (Operand.Reg _ | Operand.Mem _) as op ->
          Taken (Int64.to_int (rd_int st op))
      | Operand.Imm v -> Taken (Int64.to_int v))
  | JZ | JNZ | JLE | JNLE | JL | JNL | JB | JNB | JBE | JNBE | JS | JNS ->
      if condition st i.mnemonic then Taken (branch_target node) else Fall
  | CALL_NEAR ->
      push st (Int64.of_int next_addr);
      (match ops.(0) with
      | Operand.Rel _ -> Taken (branch_target node)
      | (Operand.Reg _ | Operand.Mem _) as op ->
          Taken (Int64.to_int (rd_int st op))
      | Operand.Imm v -> Taken (Int64.to_int v))
  | RET_NEAR -> Taken (Int64.to_int (pop st))
  | SYSCALL -> Syscall_enter next_addr
  | SYSRET -> Sysret_exit (Int64.to_int (State.get_gpr st Operand.RCX))
  | HLT -> Halt
  (* ---- sync ---- *)
  | XADD | LOCK_XADD ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      wr_int st ops.(1) a;
      let r = Int64.add a b in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | CMPXCHG | LOCK_CMPXCHG ->
      let dest = rd_int st ops.(0) in
      let rax = State.get_gpr st Operand.RAX in
      if Int64.equal dest rax then begin
        wr_int st ops.(0) (rd_int st ops.(1));
        st.zf <- true
      end
      else begin
        State.set_gpr st Operand.RAX dest;
        st.zf <- false
      end;
      Fall
  | MFENCE | LFENCE | SFENCE | PAUSE -> Fall
  | NOP -> Fall
  | CPUID ->
      State.set_gpr st Operand.RAX 0x306E4L;
      State.set_gpr st Operand.RBX 0L;
      State.set_gpr st Operand.RCX 0L;
      State.set_gpr st Operand.RDX 0L;
      Fall
  | RDTSC ->
      State.set_gpr st Operand.RAX
        (Int64.logand (Prng.next st.prng) 0x7FFFFFFFL);
      State.set_gpr st Operand.RDX 0L;
      Fall
  (* ---- x87 ---- *)
  | FLD -> (
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          let v = State.x87_get st k in
          State.x87_push st v;
          Fall
      | Operand.Mem m ->
          State.x87_push st (Memory.read_f64 st.mem (State.effective_address st m));
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FLD operand")
  | FILD -> (
      match ops.(0) with
      | Operand.Mem m ->
          State.x87_push st
            (Int64.to_float (Memory.read_i64 st.mem (State.effective_address st m)));
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FILD operand")
  | FST | FSTP -> (
      let v = State.x87_get st 0 in
      (match ops.(0) with
      | Operand.Reg (Operand.St k) -> State.x87_set st k v
      | Operand.Mem m -> Memory.write_f64 st.mem (State.effective_address st m) v
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FST operand");
      if Mnemonic.equal i.mnemonic FSTP then ignore (State.x87_pop st);
      Fall)
  | FISTP -> (
      match ops.(0) with
      | Operand.Mem m ->
          Memory.write_i64 st.mem (State.effective_address st m)
            (Int64.of_float (State.x87_get st 0));
          ignore (State.x87_pop st);
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FISTP operand")
  | FXCH -> (
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          let a = State.x87_get st 0 and b = State.x87_get st k in
          State.x87_set st 0 b;
          State.x87_set st k a;
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Mem _ | Operand.Rel _ ->
          fault "bad FXCH operand")
  | FADD ->
      State.x87_set st 0 (State.x87_get st 0 +. x87_rhs st i);
      Fall
  | FSUB ->
      State.x87_set st 0 (State.x87_get st 0 -. x87_rhs st i);
      Fall
  | FMUL ->
      State.x87_set st 0 (State.x87_get st 0 *. x87_rhs st i);
      Fall
  | FDIV ->
      let d = x87_rhs st i in
      State.x87_set st 0 (if d = 0.0 then 0.0 else State.x87_get st 0 /. d);
      Fall
  | FSQRT ->
      State.x87_set st 0 (sqrt (Float.abs (State.x87_get st 0)));
      Fall
  | FABS ->
      State.x87_set st 0 (Float.abs (State.x87_get st 0));
      Fall
  | FCHS ->
      State.x87_set st 0 (-.State.x87_get st 0);
      Fall
  | FCOM | FCOMI ->
      let a = State.x87_get st 0 and b = x87_rhs st i in
      st.zf <- a = b;
      st.cf <- a < b;
      st.sf <- false;
      st.off <- false;
      Fall
  | FSIN ->
      State.x87_set st 0 (sin (State.x87_get st 0));
      Fall
  | FCOS ->
      State.x87_set st 0 (cos (State.x87_get st 0));
      Fall
  | FPTAN ->
      State.x87_set st 0 (tan (State.x87_get st 0));
      Fall
  | F2XM1 ->
      State.x87_set st 0 ((2.0 ** State.x87_get st 0) -. 1.0);
      Fall
  | FYL2X ->
      let x = State.x87_get st 0 in
      let y = State.x87_get st 1 in
      ignore (State.x87_pop st);
      State.x87_set st 0 (y *. (log (Float.abs x +. 1e-300) /. log 2.0));
      Fall
  (* ---- scalar SSE/AVX fp ---- *)
  | MOVSS | MOVSD | VMOVSS | VMOVSD ->
      let wide = is_wide i.mnemonic in
      wr_fp st ~wide ops.(0) (rd_fp st ~wide ops.(Array.length ops - 1));
      Fall
  | ADDSS | ADDSD | VADDSS | VADDSD ->
      fp_binop st i ( +. );
      Fall
  | SUBSS | SUBSD | VSUBSS ->
      fp_binop st i ( -. );
      Fall
  | MULSS | MULSD | VMULSS | VMULSD ->
      fp_binop st i ( *. );
      Fall
  | DIVSS | DIVSD | VDIVSS | VDIVSD ->
      fp_binop st i (fun a b -> if b = 0.0 then 0.0 else a /. b);
      Fall
  | SQRTSS | SQRTSD | VSQRTSD ->
      let wide = is_wide i.mnemonic in
      wr_fp st ~wide ops.(0)
        (sqrt (Float.abs (rd_fp st ~wide ops.(Array.length ops - 1))));
      Fall
  | MAXSS ->
      fp_binop st i Float.max;
      Fall
  | MINSS ->
      fp_binop st i Float.min;
      Fall
  | COMISS | COMISD | UCOMISS | UCOMISD | VUCOMISD | VCOMISS ->
      fp_compare st i;
      Fall
  | CVTSI2SS | CVTSI2SD | VCVTSI2SD ->
      let wide = is_wide i.mnemonic in
      wr_fp st ~wide ops.(0)
        (Int64.to_float (rd_int st ops.(Array.length ops - 1)));
      Fall
  | CVTSD2SI | CVTSS2SI | VCVTSD2SI ->
      let wide = is_wide i.mnemonic in
      wr_int st ops.(0)
        (Int64.of_float (Float.round (rd_fp st ~wide ops.(1))));
      Fall
  | CVTTSD2SI ->
      wr_int st ops.(0) (Int64.of_float (Float.trunc (rd_fp st ~wide:true ops.(1))));
      Fall
  | CVTSS2SD ->
      wr_fp st ~wide:true ops.(0) (rd_fp st ~wide:false ops.(1));
      Fall
  | CVTSD2SS ->
      wr_fp st ~wide:false ops.(0) (rd_fp st ~wide:true ops.(1));
      Fall
  (* ---- vector moves ---- *)
  | MOVAPS | MOVUPS | MOVAPD | MOVUPD | MOVDQA | MOVDQU
  | VMOVAPS | VMOVUPS | VMOVAPD | VMOVUPD ->
      let lanes = lanes_of i in
      let wide = is_wide i.mnemonic in
      wr_vec st ~wide ops.(0)
        (rd_vec st ~lanes ~wide ops.(Array.length ops - 1));
      Fall
  (* ---- packed arithmetic ---- *)
  | ADDPS | ADDPD | VADDPS | VADDPD ->
      vec_binop st i ( +. );
      Fall
  | SUBPS | SUBPD | VSUBPS | VSUBPD ->
      vec_binop st i ( -. );
      Fall
  | MULPS | MULPD | VMULPS | VMULPD ->
      vec_binop st i ( *. );
      Fall
  | DIVPS | DIVPD | VDIVPS | VDIVPD ->
      vec_binop st i (fun a b -> if b = 0.0 then 0.0 else a /. b);
      Fall
  | SQRTPS | SQRTPD | VSQRTPS | VSQRTPD ->
      vec_unop st i (fun v -> sqrt (Float.abs v));
      Fall
  | MAXPS | VMAXPS ->
      vec_binop st i Float.max;
      Fall
  | MINPS | VMINPS ->
      vec_binop st i Float.min;
      Fall
  | CMPPS ->
      vec_binop st i (fun a b -> if a < b then 1.0 else 0.0);
      Fall
  (* ---- packed logic (bitwise over lane bits) ---- *)
  | ANDPS | ANDPD | PAND | VANDPS | VPAND ->
      vec_binop st i (bits32 Int32.logand);
      Fall
  | ORPS | POR ->
      vec_binop st i (bits32 Int32.logor);
      Fall
  | XORPS | XORPD | PXOR | VXORPS | VXORPD | VPXOR ->
      vec_binop st i (bits32 Int32.logxor);
      Fall
  (* ---- packed integer ---- *)
  | PADDD | PADDQ | VPADDD ->
      vec_binop st i ( +. );
      Fall
  | PSUBD ->
      vec_binop st i ( -. );
      Fall
  | PMULLD | VPMULLD ->
      vec_binop st i ( *. );
      Fall
  | PCMPEQD ->
      vec_binop st i (fun a b -> if a = b then 1.0 else 0.0);
      Fall
  | PSLLD ->
      let sh = float_of_int (1 lsl (int_of_imm ops.(1) land 31)) in
      let lanes = lanes_of i in
      let a = rd_vec st ~lanes ~wide:false ops.(0) in
      wr_vec st ~wide:false ops.(0) (Array.map (fun v -> v *. sh) a);
      Fall
  | PSRLD ->
      let sh = float_of_int (1 lsl (int_of_imm ops.(1) land 31)) in
      let lanes = lanes_of i in
      let a = rd_vec st ~lanes ~wide:false ops.(0) in
      wr_vec st ~wide:false ops.(0) (Array.map (fun v -> v /. sh) a);
      Fall
  (* ---- shuffles ---- *)
  | SHUFPS | VSHUFPS ->
      let sel = int_of_imm ops.(Array.length ops - 1) in
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s =
        rd_vec st ~lanes:4 ~wide:false
          ops.(if Array.length ops >= 4 then 2 else 1)
      in
      let r =
        [|
          d.(sel land 3);
          d.((sel lsr 2) land 3);
          s.((sel lsr 4) land 3);
          s.((sel lsr 6) land 3);
        |]
      in
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | PSHUFD | VPERMILPS ->
      let sel = int_of_imm ops.(Array.length ops - 1) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      let r = Array.init 4 (fun k -> s.((sel lsr (2 * k)) land 3)) in
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | UNPCKLPS | PUNPCKLDQ ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| d.(0); s.(0); d.(1); s.(1) |];
      Fall
  | UNPCKHPS ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| d.(2); s.(2); d.(3); s.(3) |];
      Fall
  | MOVHLPS ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| s.(2); s.(3); d.(2); d.(3) |];
      Fall
  | MOVLHPS ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| d.(0); d.(1); s.(0); s.(1) |];
      Fall
  | VBROADCASTSS | VPBROADCASTD ->
      let v = rd_fp st ~wide:false ops.(1) in
      let lanes = State.lane_count (dest_reg i) (Mnemonic.element i.mnemonic) in
      wr_vec st ~wide:false ops.(0) (Array.make lanes v);
      Fall
  | VBROADCASTSD ->
      let v = rd_fp st ~wide:true ops.(1) in
      wr_vec st ~wide:true ops.(0) (Array.make 4 v);
      Fall
  | VINSERTF128 ->
      let which = int_of_imm ops.(Array.length ops - 1) land 1 in
      let a = rd_vec st ~lanes:8 ~wide:false ops.(1) in
      let b = rd_vec st ~lanes:4 ~wide:false ops.(2) in
      let r = Array.copy a in
      Array.blit b 0 r (which * 4) 4;
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | VEXTRACTF128 ->
      let which = int_of_imm ops.(Array.length ops - 1) land 1 in
      let s = rd_vec st ~lanes:8 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) (Array.sub s (which * 4) 4);
      Fall
  | VPERM2F128 ->
      let sel = int_of_imm ops.(Array.length ops - 1) in
      let a = rd_vec st ~lanes:8 ~wide:false ops.(1) in
      let b = rd_vec st ~lanes:8 ~wide:false ops.(2) in
      let half src which = Array.sub src (which * 4) 4 in
      let pick nib =
        if nib land 2 = 0 then half a (nib land 1) else half b (nib land 1)
      in
      let r = Array.append (pick (sel land 3)) (pick ((sel lsr 4) land 3)) in
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | VGATHERDPS -> (
      match (ops.(1), ops.(2)) with
      | Operand.Mem m, Operand.Reg ((Operand.Xmm _ | Operand.Ymm _) as idx) ->
          let base = State.effective_address st m in
          let lanes = State.lane_count (dest_reg i) Mnemonic.Fp32 in
          let indices = st.vregs.(State.vreg_index idx) in
          let r =
            Array.init lanes (fun k ->
                Memory.read_f32 st.mem (base + (4 * int_of_float indices.(k))))
          in
          wr_vec st ~wide:false ops.(0) r;
          Fall
      | _, _ -> fault "VGATHERDPS expects (dst, mem, index-reg)")
  | VZEROUPPER ->
      Array.iter (fun v -> Array.fill v 4 4 0.0) st.vregs;
      Fall
  | VZEROALL ->
      Array.iter (fun v -> Array.fill v 0 8 0.0) st.vregs;
      Fall
  (* ---- FMA ---- *)
  | VFMADD213PS | VFMADD213PD ->
      (* dst := src1 * dst + src2 *)
      let lanes = lanes_of i in
      let wide = is_wide i.mnemonic in
      let d = rd_vec st ~lanes ~wide ops.(0) in
      let a = rd_vec st ~lanes ~wide ops.(1) in
      let b = rd_vec st ~lanes ~wide ops.(2) in
      wr_vec st ~wide ops.(0)
        (Array.init lanes (fun k -> (a.(k) *. d.(k)) +. b.(k)));
      Fall
  | VFMADD231SS | VFMADD231SD ->
      (* dst := src1 * src2 + dst *)
      let wide = is_wide i.mnemonic in
      let d = rd_fp st ~wide ops.(0) in
      let a = rd_fp st ~wide ops.(1) in
      let b = rd_fp st ~wide ops.(2) in
      wr_fp st ~wide ops.(0) ((a *. b) +. d);
      Fall
