open Hbbp_isa

type control =
  | Fall
  | Taken of int
  | Syscall_enter of int
  | Sysret_exit of int
  | Halt

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

(* ------------------------------------------------------------------ *)
(* Integer operand access                                              *)

let rd_int (st : State.t) = function
  | Operand.Reg (Operand.Gpr g) -> State.get_gpr st g
  | Operand.Imm v -> v
  | Operand.Mem m -> Memory.read_i64 st.mem (State.effective_address st m)
  | Operand.Reg _ -> fault "integer read from vector register"
  | Operand.Rel _ -> fault "integer read from Rel operand"

let wr_int (st : State.t) op v =
  match op with
  | Operand.Reg (Operand.Gpr g) -> State.set_gpr st g v
  | Operand.Mem m -> Memory.write_i64 st.mem (State.effective_address st m) v
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "integer write to non-lvalue"

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)

(* Flag updates use direct comparisons at known [int64] type — the
   compiler turns those into unboxed machine compares, where the
   [Int64.compare]/[Int64.unsigned_compare] functions cost a C call per
   flag.  [ult] is unsigned less-than via the usual sign-bit flip;
   identical to [Int64.unsigned_compare a b < 0]. *)
let ult (a : int64) (b : int64) =
  Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int

let set_zs (st : State.t) (v : int64) =
  st.zf <- v = 0L;
  st.sf <- v < 0L

let set_logic_flags st v =
  set_zs st v;
  st.cf <- false;
  st.off <- false

let set_add_flags (st : State.t) (a : int64) (b : int64) (r : int64) =
  set_zs st r;
  st.cf <- ult r a;
  let sa = a < 0L and sb = b < 0L and sr = r < 0L in
  st.off <- sa = sb && sr <> sa

let set_sub_flags (st : State.t) (a : int64) (b : int64) (r : int64) =
  set_zs st r;
  st.cf <- ult a b;
  let sa = a < 0L and sb = b < 0L and sr = r < 0L in
  st.off <- sa <> sb && sr <> sa

let condition (st : State.t) (m : Mnemonic.t) =
  match m with
  | JZ | CMOVZ | SETZ -> st.zf
  | JNZ | CMOVNZ | SETNZ -> not st.zf
  | JLE | SETLE -> st.zf || st.sf <> st.off
  | JNLE -> (not st.zf) && st.sf = st.off
  | JL -> st.sf <> st.off
  | JNL -> st.sf = st.off
  | JB -> st.cf
  | JNB -> not st.cf
  | JBE -> st.cf || st.zf
  | JNBE -> (not st.cf) && not st.zf
  | JS -> st.sf
  | JNS -> not st.sf
  | _ -> fault "condition of non-conditional mnemonic"

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)

let push (st : State.t) v =
  let rsp = Int64.sub (State.get_gpr st Operand.RSP) 8L in
  State.set_gpr st Operand.RSP rsp;
  Memory.write_i64 st.mem (Int64.to_int rsp) v

let pop (st : State.t) =
  let rsp = State.get_gpr st Operand.RSP in
  let v = Memory.read_i64 st.mem (Int64.to_int rsp) in
  State.set_gpr st Operand.RSP (Int64.add rsp 8L);
  v

(* ------------------------------------------------------------------ *)
(* Scalar FP access (value-level: SS and SD both map to OCaml floats;  *)
(* the memory width differs)                                           *)

let rd_fp (st : State.t) ~wide = function
  | Operand.Reg (Operand.Xmm i) | Operand.Reg (Operand.Ymm i) ->
      st.vregs.(i).(0)
  | Operand.Mem m ->
      let a = State.effective_address st m in
      if wide then Memory.read_f64 st.mem a else Memory.read_f32 st.mem a
  | Operand.Imm v -> Int64.to_float v
  | Operand.Reg _ | Operand.Rel _ -> fault "fp read from bad operand"

let wr_fp (st : State.t) ~wide op v =
  match op with
  | Operand.Reg (Operand.Xmm i) | Operand.Reg (Operand.Ymm i) ->
      st.vregs.(i).(0) <- v
  | Operand.Mem m ->
      let a = State.effective_address st m in
      if wide then Memory.write_f64 st.mem a v else Memory.write_f32 st.mem a v
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "fp write to non-lvalue"

let is_wide (m : Mnemonic.t) =
  match Mnemonic.element m with
  | Mnemonic.Fp64 -> true
  | Mnemonic.Fp32 | Mnemonic.Int_elem | Mnemonic.No_elem -> false

(* ------------------------------------------------------------------ *)
(* Vector access                                                       *)

let dest_reg (i : Instruction.t) =
  match i.operands.(0) with
  | Operand.Reg r -> r
  | Operand.Mem _ | Operand.Imm _ | Operand.Rel _ ->
      fault "vector destination is not a register"

let lanes_of (i : Instruction.t) =
  (* Lane count from the first register operand (dest for reg forms). *)
  let rec first_reg k =
    if k >= Array.length i.operands then Operand.Xmm 0
    else
      match i.operands.(k) with
      | Operand.Reg ((Operand.Xmm _ | Operand.Ymm _) as r) -> r
      | _ -> first_reg (k + 1)
  in
  State.lane_count (first_reg 0) (Mnemonic.element i.mnemonic)

let rd_vec (st : State.t) ~lanes ~wide op =
  match op with
  | Operand.Reg ((Operand.Xmm i | Operand.Ymm i)) ->
      Array.sub st.vregs.(i) 0 lanes
  | Operand.Mem m ->
      let a = State.effective_address st m in
      let width = if wide then 8 else 4 in
      Array.init lanes (fun k ->
          if wide then Memory.read_f64 st.mem (a + (k * width))
          else Memory.read_f32 st.mem (a + (k * width)))
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "vector read from bad operand"

let wr_vec (st : State.t) ~wide op values =
  match op with
  | Operand.Reg ((Operand.Xmm i | Operand.Ymm i)) ->
      Array.blit values 0 st.vregs.(i) 0 (Array.length values)
  | Operand.Mem m ->
      let a = State.effective_address st m in
      let width = if wide then 8 else 4 in
      Array.iteri
        (fun k v ->
          if wide then Memory.write_f64 st.mem (a + (k * width)) v
          else Memory.write_f32 st.mem (a + (k * width)) v)
        values
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fault "vector write to non-lvalue"

(* Binary vector op: SSE form [op dst, src] computes dst := f dst src;
   AVX three-operand form [op dst, a, b] computes dst := f a b. *)
let vec_binop st (i : Instruction.t) f =
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let a, b =
    if Array.length i.operands >= 3 then
      ( rd_vec st ~lanes ~wide i.operands.(1),
        rd_vec st ~lanes ~wide i.operands.(2) )
    else
      ( rd_vec st ~lanes ~wide i.operands.(0),
        rd_vec st ~lanes ~wide i.operands.(1) )
  in
  wr_vec st ~wide i.operands.(0) (Array.init lanes (fun k -> f a.(k) b.(k)))

let vec_unop st (i : Instruction.t) f =
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let src = i.operands.(Array.length i.operands - 1) in
  let a = rd_vec st ~lanes ~wide src in
  wr_vec st ~wide i.operands.(0) (Array.map f a)

(* Bitwise ops work on the IEEE bits of each lane so that the common
   XOR-zeroing idiom produces exact zeros. *)
let bits32 f a b =
  Int32.float_of_bits (f (Int32.bits_of_float a) (Int32.bits_of_float b))

(* Scalar binary op over lane 0 / memory. *)
let fp_binop st (i : Instruction.t) f =
  let wide = is_wide i.mnemonic in
  let a, b =
    if Array.length i.operands >= 3 then
      (rd_fp st ~wide i.operands.(1), rd_fp st ~wide i.operands.(2))
    else (rd_fp st ~wide i.operands.(0), rd_fp st ~wide i.operands.(1))
  in
  wr_fp st ~wide i.operands.(0) (f a b)

let fp_compare (st : State.t) (i : Instruction.t) =
  let wide = is_wide i.mnemonic in
  let a = rd_fp st ~wide i.operands.(0)
  and b = rd_fp st ~wide i.operands.(1) in
  st.zf <- a = b;
  st.cf <- a < b;
  st.sf <- false;
  st.off <- false

let int_of_imm = function
  | Operand.Imm v -> Int64.to_int v
  | Operand.Reg _ | Operand.Mem _ | Operand.Rel _ ->
      fault "expected immediate operand"

(* ------------------------------------------------------------------ *)
(* x87 helpers: [op] with a memory operand uses it as the rhs against  *)
(* ST0; with an St operand uses that stack slot.                       *)

let x87_rhs (st : State.t) (i : Instruction.t) =
  if Array.length i.operands = 0 then State.x87_get st 1
  else
    match i.operands.(0) with
    | Operand.Reg (Operand.St k) -> State.x87_get st k
    | Operand.Mem m -> Memory.read_f64 st.mem (State.effective_address st m)
    | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
        fault "bad x87 operand"

let branch_target (node : Exec_graph.node) =
  match node.target with
  | Some t -> t.addr
  | None -> (
      match Instruction.rel_displacement node.instr with
      | Some disp -> node.addr + node.len + disp
      | None -> fault "direct branch without displacement at %#x" node.addr)

(* ------------------------------------------------------------------ *)

let step (st : State.t) (node : Exec_graph.node) =
  let i = node.instr in
  let ops = i.operands in
  let next_addr = node.addr + node.len in
  match i.mnemonic with
  (* ---- data transfer ---- *)
  | MOV ->
      wr_int st ops.(0) (rd_int st ops.(1));
      Fall
  | MOVZX ->
      wr_int st ops.(0) (Int64.logand (rd_int st ops.(1)) 0xFFFFL);
      Fall
  | MOVSX ->
      let v = rd_int st ops.(1) in
      wr_int st ops.(0) (Int64.shift_right (Int64.shift_left v 48) 48);
      Fall
  | MOVSXD ->
      let v = rd_int st ops.(1) in
      wr_int st ops.(0) (Int64.shift_right (Int64.shift_left v 32) 32);
      Fall
  | LEA -> (
      match ops.(1) with
      | Operand.Mem m ->
          wr_int st ops.(0) (Int64.of_int (State.effective_address st m));
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
          fault "LEA needs a memory operand")
  | XCHG ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      wr_int st ops.(0) b;
      wr_int st ops.(1) a;
      Fall
  | CMOVZ | CMOVNZ ->
      if condition st i.mnemonic then wr_int st ops.(0) (rd_int st ops.(1));
      Fall
  | SETZ | SETNZ | SETLE ->
      wr_int st ops.(0) (if condition st i.mnemonic then 1L else 0L);
      Fall
  | PUSH ->
      push st (rd_int st ops.(0));
      Fall
  | POP ->
      wr_int st ops.(0) (pop st);
      Fall
  (* ---- integer arithmetic ---- *)
  | ADD ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let r = Int64.add a b in
      set_add_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | ADC ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let c = if st.cf then 1L else 0L in
      let r = Int64.add (Int64.add a b) c in
      set_add_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | SUB ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let r = Int64.sub a b in
      set_sub_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | SBB ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let c = if st.cf then 1L else 0L in
      let r = Int64.sub (Int64.sub a b) c in
      set_sub_flags st a b r;
      wr_int st ops.(0) r;
      Fall
  | INC ->
      let r = Int64.add (rd_int st ops.(0)) 1L in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | DEC ->
      let r = Int64.sub (rd_int st ops.(0)) 1L in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | NEG ->
      let v = rd_int st ops.(0) in
      let r = Int64.neg v in
      set_zs st r;
      st.cf <- v <> 0L;
      wr_int st ops.(0) r;
      Fall
  | IMUL ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      let r = Int64.mul a b in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | MUL ->
      let a = State.get_gpr st Operand.RAX and b = rd_int st ops.(0) in
      let r = Int64.mul a b in
      set_zs st r;
      State.set_gpr st Operand.RAX r;
      State.set_gpr st Operand.RDX 0L;
      Fall
  | IDIV | DIV ->
      (* Division by zero is defined as 0/0 remainder to keep the machine
         total; workloads are written to avoid it. *)
      let a = State.get_gpr st Operand.RAX and b = rd_int st ops.(0) in
      let q, r =
        if b = 0L then (0L, 0L) else (Int64.div a b, Int64.rem a b)
      in
      State.set_gpr st Operand.RAX q;
      State.set_gpr st Operand.RDX r;
      set_zs st q;
      Fall
  | CDQ ->
      State.set_gpr st Operand.RDX
        (if State.get_gpr st Operand.RAX < 0L then -1L else 0L);
      Fall
  | CDQE ->
      let v = State.get_gpr st Operand.RAX in
      State.set_gpr st Operand.RAX
        (Int64.shift_right (Int64.shift_left v 32) 32);
      Fall
  (* ---- logic / compare / shift ---- *)
  | AND ->
      let r = Int64.logand (rd_int st ops.(0)) (rd_int st ops.(1)) in
      set_logic_flags st r;
      wr_int st ops.(0) r;
      Fall
  | OR ->
      let r = Int64.logor (rd_int st ops.(0)) (rd_int st ops.(1)) in
      set_logic_flags st r;
      wr_int st ops.(0) r;
      Fall
  | XOR ->
      let r = Int64.logxor (rd_int st ops.(0)) (rd_int st ops.(1)) in
      set_logic_flags st r;
      wr_int st ops.(0) r;
      Fall
  | NOT ->
      wr_int st ops.(0) (Int64.lognot (rd_int st ops.(0)));
      Fall
  | TEST ->
      set_logic_flags st (Int64.logand (rd_int st ops.(0)) (rd_int st ops.(1)));
      Fall
  | CMP ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      set_sub_flags st a b (Int64.sub a b);
      Fall
  | SHL ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let r = Int64.shift_left (rd_int st ops.(0)) sh in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | SHR ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let r = Int64.shift_right_logical (rd_int st ops.(0)) sh in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | SAR ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let r = Int64.shift_right (rd_int st ops.(0)) sh in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | ROL ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let v = rd_int st ops.(0) in
      let r =
        if sh = 0 then v
        else
          Int64.logor (Int64.shift_left v sh)
            (Int64.shift_right_logical v (64 - sh))
      in
      wr_int st ops.(0) r;
      Fall
  | ROR ->
      let sh = Int64.to_int (rd_int st ops.(1)) land 63 in
      let v = rd_int st ops.(0) in
      let r =
        if sh = 0 then v
        else
          Int64.logor
            (Int64.shift_right_logical v sh)
            (Int64.shift_left v (64 - sh))
      in
      wr_int st ops.(0) r;
      Fall
  (* ---- control flow ---- *)
  | JMP -> (
      match ops.(0) with
      | Operand.Rel _ -> Taken (branch_target node)
      | (Operand.Reg _ | Operand.Mem _) as op ->
          Taken (Int64.to_int (rd_int st op))
      | Operand.Imm v -> Taken (Int64.to_int v))
  | JZ | JNZ | JLE | JNLE | JL | JNL | JB | JNB | JBE | JNBE | JS | JNS ->
      if condition st i.mnemonic then Taken (branch_target node) else Fall
  | CALL_NEAR ->
      push st (Int64.of_int next_addr);
      (match ops.(0) with
      | Operand.Rel _ -> Taken (branch_target node)
      | (Operand.Reg _ | Operand.Mem _) as op ->
          Taken (Int64.to_int (rd_int st op))
      | Operand.Imm v -> Taken (Int64.to_int v))
  | RET_NEAR -> Taken (Int64.to_int (pop st))
  | SYSCALL -> Syscall_enter next_addr
  | SYSRET -> Sysret_exit (Int64.to_int (State.get_gpr st Operand.RCX))
  | HLT -> Halt
  (* ---- sync ---- *)
  | XADD | LOCK_XADD ->
      let a = rd_int st ops.(0) and b = rd_int st ops.(1) in
      wr_int st ops.(1) a;
      let r = Int64.add a b in
      set_zs st r;
      wr_int st ops.(0) r;
      Fall
  | CMPXCHG | LOCK_CMPXCHG ->
      let dest = rd_int st ops.(0) in
      let rax = State.get_gpr st Operand.RAX in
      if dest = rax then begin
        wr_int st ops.(0) (rd_int st ops.(1));
        st.zf <- true
      end
      else begin
        State.set_gpr st Operand.RAX dest;
        st.zf <- false
      end;
      Fall
  | MFENCE | LFENCE | SFENCE | PAUSE -> Fall
  | NOP -> Fall
  | CPUID ->
      State.set_gpr st Operand.RAX 0x306E4L;
      State.set_gpr st Operand.RBX 0L;
      State.set_gpr st Operand.RCX 0L;
      State.set_gpr st Operand.RDX 0L;
      Fall
  | RDTSC ->
      State.set_gpr st Operand.RAX
        (Int64.logand (Prng.next st.prng) 0x7FFFFFFFL);
      State.set_gpr st Operand.RDX 0L;
      Fall
  (* ---- x87 ---- *)
  | FLD -> (
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          let v = State.x87_get st k in
          State.x87_push st v;
          Fall
      | Operand.Mem m ->
          State.x87_push st (Memory.read_f64 st.mem (State.effective_address st m));
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FLD operand")
  | FILD -> (
      match ops.(0) with
      | Operand.Mem m ->
          State.x87_push st
            (Int64.to_float (Memory.read_i64 st.mem (State.effective_address st m)));
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FILD operand")
  | FST | FSTP -> (
      let v = State.x87_get st 0 in
      (match ops.(0) with
      | Operand.Reg (Operand.St k) -> State.x87_set st k v
      | Operand.Mem m -> Memory.write_f64 st.mem (State.effective_address st m) v
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FST operand");
      if Mnemonic.equal i.mnemonic FSTP then ignore (State.x87_pop st);
      Fall)
  | FISTP -> (
      match ops.(0) with
      | Operand.Mem m ->
          Memory.write_i64 st.mem (State.effective_address st m)
            (Int64.of_float (State.x87_get st 0));
          ignore (State.x87_pop st);
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fault "bad FISTP operand")
  | FXCH -> (
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          let a = State.x87_get st 0 and b = State.x87_get st k in
          State.x87_set st 0 b;
          State.x87_set st k a;
          Fall
      | Operand.Reg _ | Operand.Imm _ | Operand.Mem _ | Operand.Rel _ ->
          fault "bad FXCH operand")
  | FADD ->
      State.x87_set st 0 (State.x87_get st 0 +. x87_rhs st i);
      Fall
  | FSUB ->
      State.x87_set st 0 (State.x87_get st 0 -. x87_rhs st i);
      Fall
  | FMUL ->
      State.x87_set st 0 (State.x87_get st 0 *. x87_rhs st i);
      Fall
  | FDIV ->
      let d = x87_rhs st i in
      State.x87_set st 0 (if d = 0.0 then 0.0 else State.x87_get st 0 /. d);
      Fall
  | FSQRT ->
      State.x87_set st 0 (sqrt (Float.abs (State.x87_get st 0)));
      Fall
  | FABS ->
      State.x87_set st 0 (Float.abs (State.x87_get st 0));
      Fall
  | FCHS ->
      State.x87_set st 0 (-.State.x87_get st 0);
      Fall
  | FCOM | FCOMI ->
      let a = State.x87_get st 0 and b = x87_rhs st i in
      st.zf <- a = b;
      st.cf <- a < b;
      st.sf <- false;
      st.off <- false;
      Fall
  | FSIN ->
      State.x87_set st 0 (sin (State.x87_get st 0));
      Fall
  | FCOS ->
      State.x87_set st 0 (cos (State.x87_get st 0));
      Fall
  | FPTAN ->
      State.x87_set st 0 (tan (State.x87_get st 0));
      Fall
  | F2XM1 ->
      State.x87_set st 0 ((2.0 ** State.x87_get st 0) -. 1.0);
      Fall
  | FYL2X ->
      let x = State.x87_get st 0 in
      let y = State.x87_get st 1 in
      ignore (State.x87_pop st);
      State.x87_set st 0 (y *. (log (Float.abs x +. 1e-300) /. log 2.0));
      Fall
  (* ---- scalar SSE/AVX fp ---- *)
  | MOVSS | MOVSD | VMOVSS | VMOVSD ->
      let wide = is_wide i.mnemonic in
      wr_fp st ~wide ops.(0) (rd_fp st ~wide ops.(Array.length ops - 1));
      Fall
  | ADDSS | ADDSD | VADDSS | VADDSD ->
      fp_binop st i ( +. );
      Fall
  | SUBSS | SUBSD | VSUBSS ->
      fp_binop st i ( -. );
      Fall
  | MULSS | MULSD | VMULSS | VMULSD ->
      fp_binop st i ( *. );
      Fall
  | DIVSS | DIVSD | VDIVSS | VDIVSD ->
      fp_binop st i (fun a b -> if b = 0.0 then 0.0 else a /. b);
      Fall
  | SQRTSS | SQRTSD | VSQRTSD ->
      let wide = is_wide i.mnemonic in
      wr_fp st ~wide ops.(0)
        (sqrt (Float.abs (rd_fp st ~wide ops.(Array.length ops - 1))));
      Fall
  | MAXSS ->
      fp_binop st i Float.max;
      Fall
  | MINSS ->
      fp_binop st i Float.min;
      Fall
  | COMISS | COMISD | UCOMISS | UCOMISD | VUCOMISD | VCOMISS ->
      fp_compare st i;
      Fall
  | CVTSI2SS | CVTSI2SD | VCVTSI2SD ->
      let wide = is_wide i.mnemonic in
      wr_fp st ~wide ops.(0)
        (Int64.to_float (rd_int st ops.(Array.length ops - 1)));
      Fall
  | CVTSD2SI | CVTSS2SI | VCVTSD2SI ->
      let wide = is_wide i.mnemonic in
      wr_int st ops.(0)
        (Int64.of_float (Float.round (rd_fp st ~wide ops.(1))));
      Fall
  | CVTTSD2SI ->
      wr_int st ops.(0) (Int64.of_float (Float.trunc (rd_fp st ~wide:true ops.(1))));
      Fall
  | CVTSS2SD ->
      wr_fp st ~wide:true ops.(0) (rd_fp st ~wide:false ops.(1));
      Fall
  | CVTSD2SS ->
      wr_fp st ~wide:false ops.(0) (rd_fp st ~wide:true ops.(1));
      Fall
  (* ---- vector moves ---- *)
  | MOVAPS | MOVUPS | MOVAPD | MOVUPD | MOVDQA | MOVDQU
  | VMOVAPS | VMOVUPS | VMOVAPD | VMOVUPD ->
      let lanes = lanes_of i in
      let wide = is_wide i.mnemonic in
      wr_vec st ~wide ops.(0)
        (rd_vec st ~lanes ~wide ops.(Array.length ops - 1));
      Fall
  (* ---- packed arithmetic ---- *)
  | ADDPS | ADDPD | VADDPS | VADDPD ->
      vec_binop st i ( +. );
      Fall
  | SUBPS | SUBPD | VSUBPS | VSUBPD ->
      vec_binop st i ( -. );
      Fall
  | MULPS | MULPD | VMULPS | VMULPD ->
      vec_binop st i ( *. );
      Fall
  | DIVPS | DIVPD | VDIVPS | VDIVPD ->
      vec_binop st i (fun a b -> if b = 0.0 then 0.0 else a /. b);
      Fall
  | SQRTPS | SQRTPD | VSQRTPS | VSQRTPD ->
      vec_unop st i (fun v -> sqrt (Float.abs v));
      Fall
  | MAXPS | VMAXPS ->
      vec_binop st i Float.max;
      Fall
  | MINPS | VMINPS ->
      vec_binop st i Float.min;
      Fall
  | CMPPS ->
      vec_binop st i (fun a b -> if a < b then 1.0 else 0.0);
      Fall
  (* ---- packed logic (bitwise over lane bits) ---- *)
  | ANDPS | ANDPD | PAND | VANDPS | VPAND ->
      vec_binop st i (bits32 Int32.logand);
      Fall
  | ORPS | POR ->
      vec_binop st i (bits32 Int32.logor);
      Fall
  | XORPS | XORPD | PXOR | VXORPS | VXORPD | VPXOR ->
      vec_binop st i (bits32 Int32.logxor);
      Fall
  (* ---- packed integer ---- *)
  | PADDD | PADDQ | VPADDD ->
      vec_binop st i ( +. );
      Fall
  | PSUBD ->
      vec_binop st i ( -. );
      Fall
  | PMULLD | VPMULLD ->
      vec_binop st i ( *. );
      Fall
  | PCMPEQD ->
      vec_binop st i (fun a b -> if a = b then 1.0 else 0.0);
      Fall
  | PSLLD ->
      let sh = float_of_int (1 lsl (int_of_imm ops.(1) land 31)) in
      let lanes = lanes_of i in
      let a = rd_vec st ~lanes ~wide:false ops.(0) in
      wr_vec st ~wide:false ops.(0) (Array.map (fun v -> v *. sh) a);
      Fall
  | PSRLD ->
      let sh = float_of_int (1 lsl (int_of_imm ops.(1) land 31)) in
      let lanes = lanes_of i in
      let a = rd_vec st ~lanes ~wide:false ops.(0) in
      wr_vec st ~wide:false ops.(0) (Array.map (fun v -> v /. sh) a);
      Fall
  (* ---- shuffles ---- *)
  | SHUFPS | VSHUFPS ->
      let sel = int_of_imm ops.(Array.length ops - 1) in
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s =
        rd_vec st ~lanes:4 ~wide:false
          ops.(if Array.length ops >= 4 then 2 else 1)
      in
      let r =
        [|
          d.(sel land 3);
          d.((sel lsr 2) land 3);
          s.((sel lsr 4) land 3);
          s.((sel lsr 6) land 3);
        |]
      in
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | PSHUFD | VPERMILPS ->
      let sel = int_of_imm ops.(Array.length ops - 1) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      let r = Array.init 4 (fun k -> s.((sel lsr (2 * k)) land 3)) in
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | UNPCKLPS | PUNPCKLDQ ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| d.(0); s.(0); d.(1); s.(1) |];
      Fall
  | UNPCKHPS ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| d.(2); s.(2); d.(3); s.(3) |];
      Fall
  | MOVHLPS ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| s.(2); s.(3); d.(2); d.(3) |];
      Fall
  | MOVLHPS ->
      let d = rd_vec st ~lanes:4 ~wide:false ops.(0) in
      let s = rd_vec st ~lanes:4 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) [| d.(0); d.(1); s.(0); s.(1) |];
      Fall
  | VBROADCASTSS | VPBROADCASTD ->
      let v = rd_fp st ~wide:false ops.(1) in
      let lanes = State.lane_count (dest_reg i) (Mnemonic.element i.mnemonic) in
      wr_vec st ~wide:false ops.(0) (Array.make lanes v);
      Fall
  | VBROADCASTSD ->
      let v = rd_fp st ~wide:true ops.(1) in
      wr_vec st ~wide:true ops.(0) (Array.make 4 v);
      Fall
  | VINSERTF128 ->
      let which = int_of_imm ops.(Array.length ops - 1) land 1 in
      let a = rd_vec st ~lanes:8 ~wide:false ops.(1) in
      let b = rd_vec st ~lanes:4 ~wide:false ops.(2) in
      let r = Array.copy a in
      Array.blit b 0 r (which * 4) 4;
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | VEXTRACTF128 ->
      let which = int_of_imm ops.(Array.length ops - 1) land 1 in
      let s = rd_vec st ~lanes:8 ~wide:false ops.(1) in
      wr_vec st ~wide:false ops.(0) (Array.sub s (which * 4) 4);
      Fall
  | VPERM2F128 ->
      let sel = int_of_imm ops.(Array.length ops - 1) in
      let a = rd_vec st ~lanes:8 ~wide:false ops.(1) in
      let b = rd_vec st ~lanes:8 ~wide:false ops.(2) in
      let half src which = Array.sub src (which * 4) 4 in
      let pick nib =
        if nib land 2 = 0 then half a (nib land 1) else half b (nib land 1)
      in
      let r = Array.append (pick (sel land 3)) (pick ((sel lsr 4) land 3)) in
      wr_vec st ~wide:false ops.(0) r;
      Fall
  | VGATHERDPS -> (
      match (ops.(1), ops.(2)) with
      | Operand.Mem m, Operand.Reg ((Operand.Xmm _ | Operand.Ymm _) as idx) ->
          let base = State.effective_address st m in
          let lanes = State.lane_count (dest_reg i) Mnemonic.Fp32 in
          let indices = st.vregs.(State.vreg_index idx) in
          let r =
            Array.init lanes (fun k ->
                Memory.read_f32 st.mem (base + (4 * int_of_float indices.(k))))
          in
          wr_vec st ~wide:false ops.(0) r;
          Fall
      | _, _ -> fault "VGATHERDPS expects (dst, mem, index-reg)")
  | VZEROUPPER ->
      Array.iter (fun v -> Array.fill v 4 4 0.0) st.vregs;
      Fall
  | VZEROALL ->
      Array.iter (fun v -> Array.fill v 0 8 0.0) st.vregs;
      Fall
  (* ---- FMA ---- *)
  | VFMADD213PS | VFMADD213PD ->
      (* dst := src1 * dst + src2 *)
      let lanes = lanes_of i in
      let wide = is_wide i.mnemonic in
      let d = rd_vec st ~lanes ~wide ops.(0) in
      let a = rd_vec st ~lanes ~wide ops.(1) in
      let b = rd_vec st ~lanes ~wide ops.(2) in
      wr_vec st ~wide ops.(0)
        (Array.init lanes (fun k -> (a.(k) *. d.(k)) +. b.(k)));
      Fall
  | VFMADD231SS | VFMADD231SD ->
      (* dst := src1 * src2 + dst *)
      let wide = is_wide i.mnemonic in
      let d = rd_fp st ~wide ops.(0) in
      let a = rd_fp st ~wide ops.(1) in
      let b = rd_fp st ~wide ops.(2) in
      wr_fp st ~wide ops.(0) ((a *. b) +. d);
      Fall

(* ------------------------------------------------------------------ *)
(* Compiled instruction kernels (tier 1 of the tiered executor).

   [compile node] pre-resolves everything [step] re-derives on every
   execution — the mnemonic dispatch, operand constructor matches,
   register codes, effective-address shapes, immediates, lane counts
   and direct branch targets — into one specialized closure.  The
   closures compute {e exactly} the state transitions of [step], in the
   same order, so a run through compiled kernels is bit-identical to a
   stepped run; anything without a specialization (or with a malformed
   operand list) falls back to a [step] thunk, which also preserves the
   exact fault behaviour of the legacy path. *)

(* Pre-resolved effective address: register codes and displacement are
   baked in; only the register file is read at execution. *)
let compile_ea (m : Operand.mem) =
  let b = Operand.gpr_code m.Operand.base in
  let disp = m.Operand.disp in
  match m.Operand.index with
  | None -> fun (st : State.t) ->
      Int64.to_int (Bigarray.Array1.unsafe_get st.gprs b) + disp
  | Some ix ->
      let x = Operand.gpr_code ix in
      let scale = m.Operand.scale in
      fun (st : State.t) ->
        Int64.to_int (Bigarray.Array1.unsafe_get st.gprs b)
        + (Int64.to_int (Bigarray.Array1.unsafe_get st.gprs x) * scale)
        + disp

let compile_rd_int (op : Operand.t) : State.t -> int64 =
  match op with
  | Operand.Reg (Operand.Gpr g) ->
      let c = Operand.gpr_code g in
      fun st -> Bigarray.Array1.unsafe_get st.gprs c
  | Operand.Imm v -> fun _ -> v
  | Operand.Mem m ->
      let ea = compile_ea m in
      fun st -> Memory.read_i64 st.mem (ea st)
  | Operand.Reg _ | Operand.Rel _ -> fun st -> rd_int st op

let compile_wr_int (op : Operand.t) : State.t -> int64 -> unit =
  match op with
  | Operand.Reg (Operand.Gpr g) ->
      let c = Operand.gpr_code g in
      fun st v -> Bigarray.Array1.unsafe_set st.gprs c v
  | Operand.Mem m ->
      let ea = compile_ea m in
      fun st v -> Memory.write_i64 st.mem (ea st) v
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> fun st v -> wr_int st op v

let compile_rd_fp ~wide (op : Operand.t) : State.t -> float =
  match op with
  | Operand.Reg (Operand.Xmm i | Operand.Ymm i) ->
      fun st -> Array.unsafe_get (Array.unsafe_get st.vregs i) 0
  | Operand.Mem m ->
      let ea = compile_ea m in
      if wide then fun st -> Memory.read_f64 st.mem (ea st)
      else fun st -> Memory.read_f32 st.mem (ea st)
  | Operand.Imm v ->
      let f = Int64.to_float v in
      fun _ -> f
  | Operand.Reg _ | Operand.Rel _ -> fun st -> rd_fp st ~wide op

let compile_wr_fp ~wide (op : Operand.t) : State.t -> float -> unit =
  match op with
  | Operand.Reg (Operand.Xmm i | Operand.Ymm i) ->
      fun st v -> Array.unsafe_set (Array.unsafe_get st.vregs i) 0 v
  | Operand.Mem m ->
      let ea = compile_ea m in
      if wide then fun st v -> Memory.write_f64 st.mem (ea st) v
      else fun st v -> Memory.write_f32 st.mem (ea st) v
  | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ ->
      fun st v -> wr_fp st ~wide op v

(* Per-lane vector binop with the operand shapes pre-matched.  Writing
   lane [k] before reading lane [k+1] is equivalent to [vec_binop]'s
   copy-then-write because no binop reads across lanes and register
   aliasing is lane-independent. *)
let compile_vec_binop (node : Exec_graph.node) (f : float -> float -> float) :
    (State.t -> control) option =
  let i = node.instr in
  let ops = i.operands in
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let width = if wide then 8 else 4 in
  let lane_read st a k =
    if wide then Memory.read_f64 st.State.mem (a + (k * width))
    else Memory.read_f32 st.State.mem (a + (k * width))
  in
  match ops with
  | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d);
       Operand.Reg (Operand.Xmm s | Operand.Ymm s) |] ->
      Some
        (fun (st : State.t) ->
          let dv = Array.unsafe_get st.vregs d
          and sv = Array.unsafe_get st.vregs s in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k
              (f (Array.unsafe_get dv k) (Array.unsafe_get sv k))
          done;
          Fall)
  | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d); Operand.Mem m |] ->
      let ea = compile_ea m in
      Some
        (fun st ->
          let dv = Array.unsafe_get st.vregs d in
          let a = ea st in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k (f (Array.unsafe_get dv k) (lane_read st a k))
          done;
          Fall)
  | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d);
       Operand.Reg (Operand.Xmm s1 | Operand.Ymm s1);
       Operand.Reg (Operand.Xmm s2 | Operand.Ymm s2) |] ->
      Some
        (fun st ->
          let dv = Array.unsafe_get st.vregs d
          and av = Array.unsafe_get st.vregs s1
          and bv = Array.unsafe_get st.vregs s2 in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k
              (f (Array.unsafe_get av k) (Array.unsafe_get bv k))
          done;
          Fall)
  | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d);
       Operand.Reg (Operand.Xmm s1 | Operand.Ymm s1); Operand.Mem m |] ->
      let ea = compile_ea m in
      Some
        (fun st ->
          let dv = Array.unsafe_get st.vregs d
          and av = Array.unsafe_get st.vregs s1 in
          let a = ea st in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k (f (Array.unsafe_get av k) (lane_read st a k))
          done;
          Fall)
  | _ -> None

let compile_vec_unop (node : Exec_graph.node) (f : float -> float) :
    (State.t -> control) option =
  let i = node.instr in
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let width = if wide then 8 else 4 in
  match i.operands with
  | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d);
       Operand.Reg (Operand.Xmm s | Operand.Ymm s) |] ->
      Some
        (fun (st : State.t) ->
          let dv = Array.unsafe_get st.vregs d
          and sv = Array.unsafe_get st.vregs s in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k (f (Array.unsafe_get sv k))
          done;
          Fall)
  | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d); Operand.Mem m |] ->
      let ea = compile_ea m in
      Some
        (fun st ->
          let dv = Array.unsafe_get st.vregs d in
          let a = ea st in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k
              (f
                 (if wide then Memory.read_f64 st.mem (a + (k * width))
                  else Memory.read_f32 st.mem (a + (k * width))))
          done;
          Fall)
  | _ -> None

(* Vector register/memory moves (MOVAPS family). *)
let compile_vec_mov (node : Exec_graph.node) : (State.t -> control) option =
  let i = node.instr in
  let lanes = lanes_of i in
  let wide = is_wide i.mnemonic in
  let width = if wide then 8 else 4 in
  let ops = i.operands in
  match (ops.(0), ops.(Array.length ops - 1)) with
  | ( Operand.Reg (Operand.Xmm d | Operand.Ymm d),
      Operand.Reg (Operand.Xmm s | Operand.Ymm s) ) ->
      Some
        (fun (st : State.t) ->
          Array.blit
            (Array.unsafe_get st.vregs s)
            0
            (Array.unsafe_get st.vregs d)
            0 lanes;
          Fall)
  | Operand.Reg (Operand.Xmm d | Operand.Ymm d), Operand.Mem m ->
      let ea = compile_ea m in
      Some
        (fun st ->
          let dv = Array.unsafe_get st.vregs d in
          let a = ea st in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k
              (if wide then Memory.read_f64 st.mem (a + (k * width))
               else Memory.read_f32 st.mem (a + (k * width)))
          done;
          Fall)
  | Operand.Mem m, Operand.Reg (Operand.Xmm s | Operand.Ymm s) ->
      let ea = compile_ea m in
      Some
        (fun st ->
          let sv = Array.unsafe_get st.vregs s in
          let a = ea st in
          for k = 0 to lanes - 1 do
            if wide then
              Memory.write_f64 st.mem (a + (k * width)) (Array.unsafe_get sv k)
            else
              Memory.write_f32 st.mem (a + (k * width)) (Array.unsafe_get sv k)
          done;
          Fall)
  | _ -> None

(* x87 right-hand side, pre-matched. *)
let compile_x87_rhs (i : Instruction.t) : (State.t -> float) option =
  if Array.length i.operands = 0 then Some (fun st -> State.x87_get st 1)
  else
    match i.operands.(0) with
    | Operand.Reg (Operand.St k) -> Some (fun st -> State.x87_get st k)
    | Operand.Mem m ->
        let ea = compile_ea m in
        Some (fun st -> Memory.read_f64 st.State.mem (ea st))
    | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> None

let some (f : State.t -> control) = Some f

(* ------------------------------------------------------------------ *)
(* Flat hot-form kernels.

   The composed forms below assemble kernels from small rd/wr closures.
   With the unboxed register file that composition has a hidden cost:
   every [int64] or [float] crossing a closure boundary is re-boxed
   (one minor allocation each), so a register-register ALU op pays
   three allocations per retirement and a helper call per flag group.
   For the operand shapes that dominate real instruction mixes —
   register/register, register/immediate, simple loads, the x87 stack
   forms and scalar-SSE register forms — we emit single flat closures
   whose whole read/compute/flags/write sequence stays inside one
   function body, where the compiler keeps every intermediate unboxed.
   Flag updates are written out inline and are field-for-field those
   of [set_add_flags]/[set_sub_flags]/[set_logic_flags]/[set_zs]. *)

module BA = Bigarray.Array1

let rsp_code = Operand.gpr_code Operand.RSP

let direct_target_of (node : Exec_graph.node) =
  match node.target with
  | Some t -> Some t.Exec_graph.addr
  | None -> (
      match Instruction.rel_displacement node.instr with
      | Some disp -> Some (node.addr + node.len + disp)
      | None -> None)

let compile_flat (node : Exec_graph.node) : (State.t -> control) option =
  let i = node.instr in
  let ops = i.operands in
  match (i.mnemonic, ops) with
  (* ---- data transfer ---- *)
  | MOV, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          BA.unsafe_set st.gprs dc (BA.unsafe_get st.gprs sc);
          Fall)
  | MOV, [| Operand.Reg (Operand.Gpr d); Operand.Imm v |] ->
      let dc = Operand.gpr_code d in
      some (fun st -> BA.unsafe_set st.gprs dc v; Fall)
  | MOV, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] ->
      let dc = Operand.gpr_code d and ea = compile_ea m in
      some (fun st ->
          BA.unsafe_set st.gprs dc (Memory.read_i64 st.mem (ea st));
          Fall)
  | MOV, [| Operand.Mem m; Operand.Reg (Operand.Gpr s) |] ->
      let sc = Operand.gpr_code s and ea = compile_ea m in
      some (fun st ->
          Memory.write_i64 st.mem (ea st) (BA.unsafe_get st.gprs sc);
          Fall)
  | MOV, [| Operand.Mem m; Operand.Imm v |] ->
      let ea = compile_ea m in
      some (fun st -> Memory.write_i64 st.mem (ea st) v; Fall)
  | MOVZX, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          BA.unsafe_set st.gprs dc
            (Int64.logand (BA.unsafe_get st.gprs sc) 0xFFFFL);
          Fall)
  | MOVSXD, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          BA.unsafe_set st.gprs dc
            (Int64.shift_right
               (Int64.shift_left (BA.unsafe_get st.gprs sc) 32)
               32);
          Fall)
  | MOVSXD, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] ->
      let dc = Operand.gpr_code d and ea = compile_ea m in
      some (fun st ->
          BA.unsafe_set st.gprs dc
            (Int64.shift_right
               (Int64.shift_left (Memory.read_i64 st.mem (ea st)) 32)
               32);
          Fall)
  | LEA, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] -> (
      let dc = Operand.gpr_code d in
      let b = Operand.gpr_code m.Operand.base and disp = m.Operand.disp in
      match m.Operand.index with
      | None ->
          some (fun st ->
              BA.unsafe_set st.gprs dc
                (Int64.of_int
                   (Int64.to_int (BA.unsafe_get st.gprs b) + disp));
              Fall)
      | Some ix ->
          let x = Operand.gpr_code ix and scale = m.Operand.scale in
          some (fun st ->
              BA.unsafe_set st.gprs dc
                (Int64.of_int
                   (Int64.to_int (BA.unsafe_get st.gprs b)
                   + (Int64.to_int (BA.unsafe_get st.gprs x) * scale)
                   + disp));
              Fall))
  | CMOVZ, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          if st.zf then BA.unsafe_set st.gprs dc (BA.unsafe_get st.gprs sc);
          Fall)
  | CMOVNZ, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          if not st.zf then
            BA.unsafe_set st.gprs dc (BA.unsafe_get st.gprs sc);
          Fall)
  | SETZ, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          BA.unsafe_set st.gprs dc (if st.zf then 1L else 0L);
          Fall)
  | SETNZ, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          BA.unsafe_set st.gprs dc (if st.zf then 0L else 1L);
          Fall)
  | SETLE, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          BA.unsafe_set st.gprs dc
            (if st.zf || st.sf <> st.off then 1L else 0L);
          Fall)
  (* ---- stack ---- *)
  | PUSH, [| Operand.Reg (Operand.Gpr s) |] ->
      let sc = Operand.gpr_code s in
      some (fun st ->
          let rsp = Int64.sub (BA.unsafe_get st.gprs rsp_code) 8L in
          BA.unsafe_set st.gprs rsp_code rsp;
          Memory.write_i64 st.mem (Int64.to_int rsp)
            (BA.unsafe_get st.gprs sc);
          Fall)
  | PUSH, [| Operand.Imm v |] ->
      some (fun st ->
          let rsp = Int64.sub (BA.unsafe_get st.gprs rsp_code) 8L in
          BA.unsafe_set st.gprs rsp_code rsp;
          Memory.write_i64 st.mem (Int64.to_int rsp) v;
          Fall)
  | POP, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let rsp = BA.unsafe_get st.gprs rsp_code in
          let v = Memory.read_i64 st.mem (Int64.to_int rsp) in
          BA.unsafe_set st.gprs rsp_code (Int64.add rsp 8L);
          BA.unsafe_set st.gprs dc v;
          Fall)
  | RET_NEAR, _ ->
      some (fun st ->
          let rsp = BA.unsafe_get st.gprs rsp_code in
          let v = Memory.read_i64 st.mem (Int64.to_int rsp) in
          BA.unsafe_set st.gprs rsp_code (Int64.add rsp 8L);
          Taken (Int64.to_int v))
  | CALL_NEAR, [| Operand.Rel _ |] -> (
      match direct_target_of node with
      | Some tgt ->
          let ra = Int64.of_int (node.addr + node.len) in
          let tk = Taken tgt in
          some (fun st ->
              let rsp = Int64.sub (BA.unsafe_get st.gprs rsp_code) 8L in
              BA.unsafe_set st.gprs rsp_code rsp;
              Memory.write_i64 st.mem (Int64.to_int rsp) ra;
              tk)
      | None -> None)
  (* ---- integer ALU, inline flags ---- *)
  | ADD, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc
          and b = BA.unsafe_get st.gprs sc in
          let r = Int64.add a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor r Int64.min_int < Int64.logxor a Int64.min_int;
          let sa = a < 0L and sb = b < 0L and sr = r < 0L in
          st.off <- sa = sb && sr <> sa;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | ADD, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      let sb = b < 0L in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc in
          let r = Int64.add a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor r Int64.min_int < Int64.logxor a Int64.min_int;
          let sa = a < 0L and sr = r < 0L in
          st.off <- sa = sb && sr <> sa;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | ADD, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] ->
      let dc = Operand.gpr_code d and ea = compile_ea m in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc in
          let b = Memory.read_i64 st.mem (ea st) in
          let r = Int64.add a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor r Int64.min_int < Int64.logxor a Int64.min_int;
          let sa = a < 0L and sb = b < 0L and sr = r < 0L in
          st.off <- sa = sb && sr <> sa;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | SUB, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc
          and b = BA.unsafe_get st.gprs sc in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
          let sa = a < 0L and sb = b < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | SUB, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      let sb = b < 0L and xb = Int64.logxor b Int64.min_int in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < xb;
          let sa = a < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | SUB, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] ->
      let dc = Operand.gpr_code d and ea = compile_ea m in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc in
          let b = Memory.read_i64 st.mem (ea st) in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
          let sa = a < 0L and sb = b < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | CMP, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc
          and b = BA.unsafe_get st.gprs sc in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
          let sa = a < 0L and sb = b < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          Fall)
  | CMP, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      let sb = b < 0L and xb = Int64.logxor b Int64.min_int in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < xb;
          let sa = a < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          Fall)
  | CMP, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] ->
      let dc = Operand.gpr_code d and ea = compile_ea m in
      some (fun st ->
          let a = BA.unsafe_get st.gprs dc in
          let b = Memory.read_i64 st.mem (ea st) in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < Int64.logxor b Int64.min_int;
          let sa = a < 0L and sb = b < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          Fall)
  | CMP, [| Operand.Mem m; Operand.Imm b |] ->
      let ea = compile_ea m in
      let sb = b < 0L and xb = Int64.logxor b Int64.min_int in
      some (fun st ->
          let a = Memory.read_i64 st.mem (ea st) in
          let r = Int64.sub a b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- Int64.logxor a Int64.min_int < xb;
          let sa = a < 0L and sr = r < 0L in
          st.off <- sa <> sb && sr <> sa;
          Fall)
  | TEST, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let r =
            Int64.logand (BA.unsafe_get st.gprs dc)
              (BA.unsafe_get st.gprs sc)
          in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          Fall)
  | TEST, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let r = Int64.logand (BA.unsafe_get st.gprs dc) b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          Fall)
  | AND, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let r =
            Int64.logand (BA.unsafe_get st.gprs dc)
              (BA.unsafe_get st.gprs sc)
          in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | AND, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let r = Int64.logand (BA.unsafe_get st.gprs dc) b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | OR, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let r =
            Int64.logor (BA.unsafe_get st.gprs dc) (BA.unsafe_get st.gprs sc)
          in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | OR, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let r = Int64.logor (BA.unsafe_get st.gprs dc) b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | XOR, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let r =
            Int64.logxor (BA.unsafe_get st.gprs dc)
              (BA.unsafe_get st.gprs sc)
          in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | XOR, [| Operand.Reg (Operand.Gpr d); Operand.Imm b |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let r = Int64.logxor (BA.unsafe_get st.gprs dc) b in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- false;
          st.off <- false;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | INC, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let r = Int64.add (BA.unsafe_get st.gprs dc) 1L in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | DEC, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let r = Int64.sub (BA.unsafe_get st.gprs dc) 1L in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | NEG, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          let v = BA.unsafe_get st.gprs dc in
          let r = Int64.neg v in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          st.cf <- v <> 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | NOT, [| Operand.Reg (Operand.Gpr d) |] ->
      let dc = Operand.gpr_code d in
      some (fun st ->
          BA.unsafe_set st.gprs dc
            (Int64.lognot (BA.unsafe_get st.gprs dc));
          Fall)
  | IMUL, [| Operand.Reg (Operand.Gpr d); Operand.Reg (Operand.Gpr s) |] ->
      let dc = Operand.gpr_code d and sc = Operand.gpr_code s in
      some (fun st ->
          let r =
            Int64.mul (BA.unsafe_get st.gprs dc) (BA.unsafe_get st.gprs sc)
          in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | IMUL, [| Operand.Reg (Operand.Gpr d); Operand.Mem m |] ->
      let dc = Operand.gpr_code d and ea = compile_ea m in
      some (fun st ->
          let r =
            Int64.mul (BA.unsafe_get st.gprs dc)
              (Memory.read_i64 st.mem (ea st))
          in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | SHL, [| Operand.Reg (Operand.Gpr d); Operand.Imm v |] ->
      let dc = Operand.gpr_code d in
      let sh = Int64.to_int v land 63 in
      some (fun st ->
          let r = Int64.shift_left (BA.unsafe_get st.gprs dc) sh in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | SHR, [| Operand.Reg (Operand.Gpr d); Operand.Imm v |] ->
      let dc = Operand.gpr_code d in
      let sh = Int64.to_int v land 63 in
      some (fun st ->
          let r = Int64.shift_right_logical (BA.unsafe_get st.gprs dc) sh in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  | SAR, [| Operand.Reg (Operand.Gpr d); Operand.Imm v |] ->
      let dc = Operand.gpr_code d in
      let sh = Int64.to_int v land 63 in
      some (fun st ->
          let r = Int64.shift_right (BA.unsafe_get st.gprs dc) sh in
          st.zf <- r = 0L;
          st.sf <- r < 0L;
          BA.unsafe_set st.gprs dc r;
          Fall)
  (* ---- conditional branches, condition inlined per mnemonic ---- *)
  | (JZ | JNZ | JLE | JNLE | JL | JNL | JB | JNB | JBE | JNBE | JS | JNS), _
    -> (
      match direct_target_of node with
      | None -> None
      | Some tgt -> (
          let tk = Taken tgt in
          match i.mnemonic with
          | JZ -> some (fun st -> if st.zf then tk else Fall)
          | JNZ -> some (fun st -> if st.zf then Fall else tk)
          | JLE ->
              some (fun st -> if st.zf || st.sf <> st.off then tk else Fall)
          | JNLE ->
              some (fun st ->
                  if (not st.zf) && st.sf = st.off then tk else Fall)
          | JL -> some (fun st -> if st.sf <> st.off then tk else Fall)
          | JNL -> some (fun st -> if st.sf = st.off then tk else Fall)
          | JB -> some (fun st -> if st.cf then tk else Fall)
          | JNB -> some (fun st -> if st.cf then Fall else tk)
          | JBE -> some (fun st -> if st.cf || st.zf then tk else Fall)
          | JNBE ->
              some (fun st -> if (not st.cf) && not st.zf then tk else Fall)
          | JS -> some (fun st -> if st.sf then tk else Fall)
          | _ -> some (fun st -> if st.sf then Fall else tk)))
  (* ---- x87 stack forms, register file inlined ---- *)
  | FLD, [| Operand.Reg (Operand.St k) |] ->
      some (fun st ->
          let v = Array.unsafe_get st.x87 ((st.x87_top + k) land 7) in
          let top = (st.x87_top - 1) land 7 in
          st.x87_top <- top;
          Array.unsafe_set st.x87 top v;
          Fall)
  | FLD, [| Operand.Mem m |] ->
      let ea = compile_ea m in
      some (fun st ->
          let v = Memory.read_f64 st.mem (ea st) in
          let top = (st.x87_top - 1) land 7 in
          st.x87_top <- top;
          Array.unsafe_set st.x87 top v;
          Fall)
  | (FST | FSTP), [| Operand.Reg (Operand.St k) |] ->
      let pops = Mnemonic.equal i.mnemonic FSTP in
      some (fun st ->
          let top = st.x87_top in
          Array.unsafe_set st.x87
            ((top + k) land 7)
            (Array.unsafe_get st.x87 top);
          if pops then st.x87_top <- (top + 1) land 7;
          Fall)
  | (FST | FSTP), [| Operand.Mem m |] ->
      let pops = Mnemonic.equal i.mnemonic FSTP in
      let ea = compile_ea m in
      some (fun st ->
          let top = st.x87_top in
          Memory.write_f64 st.mem (ea st) (Array.unsafe_get st.x87 top);
          if pops then st.x87_top <- (top + 1) land 7;
          Fall)
  | FXCH, [| Operand.Reg (Operand.St k) |] ->
      some (fun st ->
          let top = st.x87_top in
          let j = (top + k) land 7 in
          let a = Array.unsafe_get st.x87 top
          and b = Array.unsafe_get st.x87 j in
          Array.unsafe_set st.x87 top b;
          Array.unsafe_set st.x87 j a;
          Fall)
  | (FADD | FSUB | FMUL), [| Operand.Reg (Operand.St k) |] ->
      let m = i.mnemonic in
      some (fun st ->
          let top = st.x87_top in
          let a = Array.unsafe_get st.x87 top
          and b = Array.unsafe_get st.x87 ((top + k) land 7) in
          Array.unsafe_set st.x87 top
            (match m with
            | FADD -> a +. b
            | FSUB -> a -. b
            | _ -> a *. b);
          Fall)
  | (FADD | FSUB | FMUL), [| Operand.Mem m |] ->
      let mn = i.mnemonic in
      let ea = compile_ea m in
      some (fun st ->
          let top = st.x87_top in
          let a = Array.unsafe_get st.x87 top
          and b = Memory.read_f64 st.mem (ea st) in
          Array.unsafe_set st.x87 top
            (match mn with
            | FADD -> a +. b
            | FSUB -> a -. b
            | _ -> a *. b);
          Fall)
  (* ---- scalar SSE register forms, lane 0 inlined ---- *)
  | (MOVSS | MOVSD), [| Operand.Reg (Operand.Xmm d); Operand.Reg (Operand.Xmm s) |]
    ->
      some (fun st ->
          Array.unsafe_set
            (Array.unsafe_get st.vregs d)
            0
            (Array.unsafe_get (Array.unsafe_get st.vregs s) 0);
          Fall)
  | (MOVSS | MOVSD), [| Operand.Reg (Operand.Xmm d); Operand.Mem m |] ->
      let wide = is_wide i.mnemonic in
      let ea = compile_ea m in
      some (fun st ->
          Array.unsafe_set
            (Array.unsafe_get st.vregs d)
            0
            (if wide then Memory.read_f64 st.mem (ea st)
             else Memory.read_f32 st.mem (ea st));
          Fall)
  | (MOVSS | MOVSD), [| Operand.Mem m; Operand.Reg (Operand.Xmm s) |] ->
      let wide = is_wide i.mnemonic in
      let ea = compile_ea m in
      some (fun st ->
          let v = Array.unsafe_get (Array.unsafe_get st.vregs s) 0 in
          if wide then Memory.write_f64 st.mem (ea st) v
          else Memory.write_f32 st.mem (ea st) v;
          Fall)
  | ( (ADDSS | ADDSD | SUBSS | SUBSD | MULSS | MULSD | DIVSS | DIVSD),
      [| Operand.Reg (Operand.Xmm d); Operand.Reg (Operand.Xmm s) |] ) -> (
      match i.mnemonic with
      | ADDSS | ADDSD ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              Array.unsafe_set dv 0
                (Array.unsafe_get dv 0
                +. Array.unsafe_get (Array.unsafe_get st.vregs s) 0);
              Fall)
      | SUBSS | SUBSD ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              Array.unsafe_set dv 0
                (Array.unsafe_get dv 0
                -. Array.unsafe_get (Array.unsafe_get st.vregs s) 0);
              Fall)
      | MULSS | MULSD ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              Array.unsafe_set dv 0
                (Array.unsafe_get dv 0
                *. Array.unsafe_get (Array.unsafe_get st.vregs s) 0);
              Fall)
      | _ ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              let b = Array.unsafe_get (Array.unsafe_get st.vregs s) 0 in
              Array.unsafe_set dv 0
                (if b = 0.0 then 0.0 else Array.unsafe_get dv 0 /. b);
              Fall))
  | ( (ADDSS | ADDSD | SUBSS | SUBSD | MULSS | MULSD | DIVSS | DIVSD),
      [| Operand.Reg (Operand.Xmm d); Operand.Mem m |] ) -> (
      let wide = is_wide i.mnemonic in
      let ea = compile_ea m in
      let rd_mem st a =
        if wide then Memory.read_f64 st.State.mem a
        else Memory.read_f32 st.State.mem a
      in
      match i.mnemonic with
      | ADDSS | ADDSD ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              Array.unsafe_set dv 0
                (Array.unsafe_get dv 0 +. rd_mem st (ea st));
              Fall)
      | SUBSS | SUBSD ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              Array.unsafe_set dv 0
                (Array.unsafe_get dv 0 -. rd_mem st (ea st));
              Fall)
      | MULSS | MULSD ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              Array.unsafe_set dv 0
                (Array.unsafe_get dv 0 *. rd_mem st (ea st));
              Fall)
      | _ ->
          some (fun st ->
              let dv = Array.unsafe_get st.vregs d in
              let b = rd_mem st (ea st) in
              Array.unsafe_set dv 0
                (if b = 0.0 then 0.0 else Array.unsafe_get dv 0 /. b);
              Fall))
  | ( (COMISS | COMISD | UCOMISS | UCOMISD),
      [| Operand.Reg (Operand.Xmm x); Operand.Reg (Operand.Xmm y) |] ) ->
      some (fun st ->
          let a = Array.unsafe_get (Array.unsafe_get st.vregs x) 0
          and b = Array.unsafe_get (Array.unsafe_get st.vregs y) 0 in
          st.zf <- a = b;
          st.cf <- a < b;
          st.sf <- false;
          st.off <- false;
          Fall)
  | FCHS, [||] ->
      some (fun st ->
          let top = st.x87_top in
          Array.unsafe_set st.x87 top (-.Array.unsafe_get st.x87 top);
          Fall)
  | FABS, [||] ->
      some (fun st ->
          let top = st.x87_top in
          Array.unsafe_set st.x87 top (Float.abs (Array.unsafe_get st.x87 top));
          Fall)
  | FILD, [| Operand.Mem m |] ->
      let ea = compile_ea m in
      some (fun st ->
          let v = Int64.to_float (Memory.read_i64 st.mem (ea st)) in
          let top = (st.x87_top - 1) land 7 in
          st.x87_top <- top;
          Array.unsafe_set st.x87 top v;
          Fall)
  | ( VBROADCASTSS,
      [| Operand.Reg ((Operand.Xmm d | Operand.Ymm d) as dr);
         Operand.Reg (Operand.Xmm s | Operand.Ymm s) |] ) ->
      let lanes = State.lane_count dr (Mnemonic.element i.mnemonic) in
      some (fun st ->
          let v = Array.unsafe_get (Array.unsafe_get st.vregs s) 0 in
          let dv = Array.unsafe_get st.vregs d in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k v
          done;
          Fall)
  | ( VBROADCASTSS,
      [| Operand.Reg ((Operand.Xmm d | Operand.Ymm d) as dr); Operand.Mem m |]
    ) ->
      let lanes = State.lane_count dr (Mnemonic.element i.mnemonic) in
      let ea = compile_ea m in
      some (fun st ->
          let v = Memory.read_f32 st.mem (ea st) in
          let dv = Array.unsafe_get st.vregs d in
          for k = 0 to lanes - 1 do
            Array.unsafe_set dv k v
          done;
          Fall)
  | _ -> None

(* The specializing compiler proper.  Returns [None] for anything whose
   execution should go through [step] (rare forms, cross-lane shuffles,
   malformed operand lists).  Flat hot-form kernels take precedence;
   the composed forms cover the remaining shapes. *)
let compile_specialized (node : Exec_graph.node) : (State.t -> control) option
    =
  match compile_flat node with
  | Some _ as k -> k
  | None ->
  let i = node.instr in
  let ops = i.operands in
  let next_addr = node.addr + node.len in
  (* Direct branch target, resolved like [branch_target] but at compile
     time; [None] when there is no Rel operand (register/memory forms
     keep their dynamic resolution). *)
  let direct_target =
    match node.target with
    | Some t -> Some t.Exec_graph.addr
    | None -> (
        match Instruction.rel_displacement i with
        | Some disp -> Some (next_addr + disp)
        | None -> None)
  in
  match i.mnemonic with
  (* ---- data transfer ---- *)
  | MOV ->
      let rd = compile_rd_int ops.(1) and wr = compile_wr_int ops.(0) in
      some (fun st -> wr st (rd st); Fall)
  | MOVZX ->
      let rd = compile_rd_int ops.(1) and wr = compile_wr_int ops.(0) in
      some (fun st -> wr st (Int64.logand (rd st) 0xFFFFL); Fall)
  | MOVSX ->
      let rd = compile_rd_int ops.(1) and wr = compile_wr_int ops.(0) in
      some (fun st ->
          wr st (Int64.shift_right (Int64.shift_left (rd st) 48) 48);
          Fall)
  | MOVSXD ->
      let rd = compile_rd_int ops.(1) and wr = compile_wr_int ops.(0) in
      some (fun st ->
          wr st (Int64.shift_right (Int64.shift_left (rd st) 32) 32);
          Fall)
  | LEA -> (
      match ops.(1) with
      | Operand.Mem m ->
          let ea = compile_ea m and wr = compile_wr_int ops.(0) in
          some (fun st -> wr st (Int64.of_int (ea st)); Fall)
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> None)
  | CMOVZ | CMOVNZ ->
      let m = i.mnemonic in
      let rd = compile_rd_int ops.(1) and wr = compile_wr_int ops.(0) in
      some (fun st -> (if condition st m then wr st (rd st)); Fall)
  | SETZ | SETNZ | SETLE ->
      let m = i.mnemonic in
      let wr = compile_wr_int ops.(0) in
      some (fun st -> wr st (if condition st m then 1L else 0L); Fall)
  | PUSH ->
      let rd = compile_rd_int ops.(0) in
      some (fun st -> push st (rd st); Fall)
  | POP ->
      let wr = compile_wr_int ops.(0) in
      some (fun st -> wr st (pop st); Fall)
  (* ---- integer arithmetic ---- *)
  | ADD ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let a = rd0 st and b = rd1 st in
          let r = Int64.add a b in
          set_add_flags st a b r;
          wr0 st r;
          Fall)
  | ADC ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let a = rd0 st and b = rd1 st in
          let c = if st.cf then 1L else 0L in
          let r = Int64.add (Int64.add a b) c in
          set_add_flags st a b r;
          wr0 st r;
          Fall)
  | SUB ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let a = rd0 st and b = rd1 st in
          let r = Int64.sub a b in
          set_sub_flags st a b r;
          wr0 st r;
          Fall)
  | SBB ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let a = rd0 st and b = rd1 st in
          let c = if st.cf then 1L else 0L in
          let r = Int64.sub (Int64.sub a b) c in
          set_sub_flags st a b r;
          wr0 st r;
          Fall)
  | INC ->
      let rd0 = compile_rd_int ops.(0) and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let r = Int64.add (rd0 st) 1L in
          set_zs st r;
          wr0 st r;
          Fall)
  | DEC ->
      let rd0 = compile_rd_int ops.(0) and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let r = Int64.sub (rd0 st) 1L in
          set_zs st r;
          wr0 st r;
          Fall)
  | NEG ->
      let rd0 = compile_rd_int ops.(0) and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let v = rd0 st in
          let r = Int64.neg v in
          set_zs st r;
          st.cf <- v <> 0L;
          wr0 st r;
          Fall)
  | IMUL ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let r = Int64.mul (rd0 st) (rd1 st) in
          set_zs st r;
          wr0 st r;
          Fall)
  | MUL ->
      let rd0 = compile_rd_int ops.(0) in
      let rax = Operand.gpr_code Operand.RAX
      and rdx = Operand.gpr_code Operand.RDX in
      some (fun st ->
          let r = Int64.mul (Bigarray.Array1.unsafe_get st.gprs rax) (rd0 st) in
          set_zs st r;
          Bigarray.Array1.unsafe_set st.gprs rax r;
          Bigarray.Array1.unsafe_set st.gprs rdx 0L;
          Fall)
  | IDIV | DIV ->
      let rd0 = compile_rd_int ops.(0) in
      let rax = Operand.gpr_code Operand.RAX
      and rdx = Operand.gpr_code Operand.RDX in
      some (fun st ->
          let a = Bigarray.Array1.unsafe_get st.gprs rax and b = rd0 st in
          let q, r =
            if b = 0L then (0L, 0L)
            else (Int64.div a b, Int64.rem a b)
          in
          Bigarray.Array1.unsafe_set st.gprs rax q;
          Bigarray.Array1.unsafe_set st.gprs rdx r;
          set_zs st q;
          Fall)
  | CDQ ->
      let rax = Operand.gpr_code Operand.RAX
      and rdx = Operand.gpr_code Operand.RDX in
      some (fun st ->
          Bigarray.Array1.unsafe_set st.gprs rdx
            (if Bigarray.Array1.unsafe_get st.gprs rax < 0L then -1L
             else 0L);
          Fall)
  | CDQE ->
      let rax = Operand.gpr_code Operand.RAX in
      some (fun st ->
          let v = Bigarray.Array1.unsafe_get st.gprs rax in
          Bigarray.Array1.unsafe_set st.gprs rax
            (Int64.shift_right (Int64.shift_left v 32) 32);
          Fall)
  (* ---- logic / compare / shift ---- *)
  | AND ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let r = Int64.logand (rd0 st) (rd1 st) in
          set_logic_flags st r;
          wr0 st r;
          Fall)
  | OR ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let r = Int64.logor (rd0 st) (rd1 st) in
          set_logic_flags st r;
          wr0 st r;
          Fall)
  | XOR ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let r = Int64.logxor (rd0 st) (rd1 st) in
          set_logic_flags st r;
          wr0 st r;
          Fall)
  | NOT ->
      let rd0 = compile_rd_int ops.(0) and wr0 = compile_wr_int ops.(0) in
      some (fun st -> wr0 st (Int64.lognot (rd0 st)); Fall)
  | TEST ->
      let rd0 = compile_rd_int ops.(0) and rd1 = compile_rd_int ops.(1) in
      some (fun st ->
          set_logic_flags st (Int64.logand (rd0 st) (rd1 st));
          Fall)
  | CMP ->
      let rd0 = compile_rd_int ops.(0) and rd1 = compile_rd_int ops.(1) in
      some (fun st ->
          let a = rd0 st and b = rd1 st in
          set_sub_flags st a b (Int64.sub a b);
          Fall)
  | SHL ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let sh = Int64.to_int (rd1 st) land 63 in
          let r = Int64.shift_left (rd0 st) sh in
          set_zs st r;
          wr0 st r;
          Fall)
  | SHR ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let sh = Int64.to_int (rd1 st) land 63 in
          let r = Int64.shift_right_logical (rd0 st) sh in
          set_zs st r;
          wr0 st r;
          Fall)
  | SAR ->
      let rd0 = compile_rd_int ops.(0)
      and rd1 = compile_rd_int ops.(1)
      and wr0 = compile_wr_int ops.(0) in
      some (fun st ->
          let sh = Int64.to_int (rd1 st) land 63 in
          let r = Int64.shift_right (rd0 st) sh in
          set_zs st r;
          wr0 st r;
          Fall)
  (* ---- control flow ---- *)
  | JMP -> (
      match ops.(0) with
      | Operand.Rel _ -> (
          match direct_target with
          | Some tgt ->
              let tk = Taken tgt in
              some (fun _ -> tk)
          | None -> None)
      | (Operand.Reg _ | Operand.Mem _) as op ->
          let rd = compile_rd_int op in
          some (fun st -> Taken (Int64.to_int (rd st)))
      | Operand.Imm v ->
          let tk = Taken (Int64.to_int v) in
          some (fun _ -> tk))
  | (JZ | JNZ | JLE | JNLE | JL | JNL | JB | JNB | JBE | JNBE | JS | JNS) as m
    -> (
      match direct_target with
      | Some tgt ->
          let tk = Taken tgt in
          some (fun st -> if condition st m then tk else Fall)
      | None -> None)
  | CALL_NEAR -> (
      let ra = Int64.of_int next_addr in
      match ops.(0) with
      | Operand.Rel _ -> (
          match direct_target with
          | Some tgt ->
              let tk = Taken tgt in
              some (fun st -> push st ra; tk)
          | None -> None)
      | (Operand.Reg _ | Operand.Mem _) as op ->
          let rd = compile_rd_int op in
          some (fun st ->
              push st ra;
              Taken (Int64.to_int (rd st)))
      | Operand.Imm v ->
          let tk = Taken (Int64.to_int v) in
          some (fun st -> push st ra; tk))
  | RET_NEAR -> some (fun st -> Taken (Int64.to_int (pop st)))
  | SYSCALL ->
      let c = Syscall_enter next_addr in
      some (fun _ -> c)
  | SYSRET ->
      let rcx = Operand.gpr_code Operand.RCX in
      some (fun st -> Sysret_exit (Int64.to_int (Bigarray.Array1.unsafe_get st.gprs rcx)))
  | HLT -> some (fun _ -> Halt)
  (* ---- no-ops ---- *)
  | MFENCE | LFENCE | SFENCE | PAUSE | NOP -> some (fun _ -> Fall)
  (* ---- x87 ---- *)
  | FLD -> (
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          some (fun st -> State.x87_push st (State.x87_get st k); Fall)
      | Operand.Mem m ->
          let ea = compile_ea m in
          some (fun st ->
              State.x87_push st (Memory.read_f64 st.mem (ea st));
              Fall)
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> None)
  | FST | FSTP -> (
      let pops = Mnemonic.equal i.mnemonic FSTP in
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          some (fun st ->
              State.x87_set st k (State.x87_get st 0);
              if pops then ignore (State.x87_pop st);
              Fall)
      | Operand.Mem m ->
          let ea = compile_ea m in
          some (fun st ->
              Memory.write_f64 st.mem (ea st) (State.x87_get st 0);
              if pops then ignore (State.x87_pop st);
              Fall)
      | Operand.Reg _ | Operand.Imm _ | Operand.Rel _ -> None)
  | FXCH -> (
      match ops.(0) with
      | Operand.Reg (Operand.St k) ->
          some (fun st ->
              let a = State.x87_get st 0 and b = State.x87_get st k in
              State.x87_set st 0 b;
              State.x87_set st k a;
              Fall)
      | Operand.Reg _ | Operand.Imm _ | Operand.Mem _ | Operand.Rel _ -> None)
  | FADD -> (
      match compile_x87_rhs i with
      | Some rhs ->
          some (fun st -> State.x87_set st 0 (State.x87_get st 0 +. rhs st); Fall)
      | None -> None)
  | FSUB -> (
      match compile_x87_rhs i with
      | Some rhs ->
          some (fun st -> State.x87_set st 0 (State.x87_get st 0 -. rhs st); Fall)
      | None -> None)
  | FMUL -> (
      match compile_x87_rhs i with
      | Some rhs ->
          some (fun st -> State.x87_set st 0 (State.x87_get st 0 *. rhs st); Fall)
      | None -> None)
  | FDIV -> (
      match compile_x87_rhs i with
      | Some rhs ->
          some (fun st ->
              let d = rhs st in
              State.x87_set st 0
                (if d = 0.0 then 0.0 else State.x87_get st 0 /. d);
              Fall)
      | None -> None)
  (* ---- scalar SSE/AVX fp ---- *)
  | MOVSS | MOVSD | VMOVSS | VMOVSD ->
      let wide = is_wide i.mnemonic in
      let rd = compile_rd_fp ~wide ops.(Array.length ops - 1)
      and wr = compile_wr_fp ~wide ops.(0) in
      some (fun st -> wr st (rd st); Fall)
  | ADDSS | ADDSD | VADDSS | VADDSD | SUBSS | SUBSD | VSUBSS | MULSS | MULSD
  | VMULSS | VMULSD | DIVSS | DIVSD | VDIVSS | VDIVSD | MAXSS | MINSS ->
      let f : float -> float -> float =
        match i.mnemonic with
        | ADDSS | ADDSD | VADDSS | VADDSD -> ( +. )
        | SUBSS | SUBSD | VSUBSS -> ( -. )
        | MULSS | MULSD | VMULSS | VMULSD -> ( *. )
        | MAXSS -> Float.max
        | MINSS -> Float.min
        | _ -> fun a b -> if b = 0.0 then 0.0 else a /. b
      in
      let wide = is_wide i.mnemonic in
      let three = Array.length ops >= 3 in
      let rda = compile_rd_fp ~wide ops.(if three then 1 else 0)
      and rdb = compile_rd_fp ~wide ops.(if three then 2 else 1)
      and wr = compile_wr_fp ~wide ops.(0) in
      some (fun st -> wr st (f (rda st) (rdb st)); Fall)
  | SQRTSS | SQRTSD | VSQRTSD ->
      let wide = is_wide i.mnemonic in
      let rd = compile_rd_fp ~wide ops.(Array.length ops - 1)
      and wr = compile_wr_fp ~wide ops.(0) in
      some (fun st -> wr st (sqrt (Float.abs (rd st))); Fall)
  | COMISS | COMISD | UCOMISS | UCOMISD | VUCOMISD | VCOMISS ->
      let wide = is_wide i.mnemonic in
      let rda = compile_rd_fp ~wide ops.(0)
      and rdb = compile_rd_fp ~wide ops.(1) in
      some (fun st ->
          let a = rda st and b = rdb st in
          st.zf <- a = b;
          st.cf <- a < b;
          st.sf <- false;
          st.off <- false;
          Fall)
  | CVTSI2SS | CVTSI2SD | VCVTSI2SD ->
      let wide = is_wide i.mnemonic in
      let rd = compile_rd_int ops.(Array.length ops - 1)
      and wr = compile_wr_fp ~wide ops.(0) in
      some (fun st -> wr st (Int64.to_float (rd st)); Fall)
  | CVTSD2SI | CVTSS2SI | VCVTSD2SI ->
      let wide = is_wide i.mnemonic in
      let rd = compile_rd_fp ~wide ops.(1) and wr = compile_wr_int ops.(0) in
      some (fun st -> wr st (Int64.of_float (Float.round (rd st))); Fall)
  | CVTTSD2SI ->
      let rd = compile_rd_fp ~wide:true ops.(1)
      and wr = compile_wr_int ops.(0) in
      some (fun st -> wr st (Int64.of_float (Float.trunc (rd st))); Fall)
  | CVTSS2SD ->
      let rd = compile_rd_fp ~wide:false ops.(1)
      and wr = compile_wr_fp ~wide:true ops.(0) in
      some (fun st -> wr st (rd st); Fall)
  | CVTSD2SS ->
      let rd = compile_rd_fp ~wide:true ops.(1)
      and wr = compile_wr_fp ~wide:false ops.(0) in
      some (fun st -> wr st (rd st); Fall)
  (* ---- vector moves ---- *)
  | MOVAPS | MOVUPS | MOVAPD | MOVUPD | MOVDQA | MOVDQU
  | VMOVAPS | VMOVUPS | VMOVAPD | VMOVUPD ->
      compile_vec_mov node
  (* ---- packed arithmetic / logic / integer ---- *)
  | ADDPS | ADDPD | VADDPS | VADDPD | PADDD | PADDQ | VPADDD ->
      compile_vec_binop node ( +. )
  | SUBPS | SUBPD | VSUBPS | VSUBPD | PSUBD -> compile_vec_binop node ( -. )
  | MULPS | MULPD | VMULPS | VMULPD | PMULLD | VPMULLD ->
      compile_vec_binop node ( *. )
  | DIVPS | DIVPD | VDIVPS | VDIVPD ->
      compile_vec_binop node (fun a b -> if b = 0.0 then 0.0 else a /. b)
  | SQRTPS | SQRTPD | VSQRTPS | VSQRTPD ->
      compile_vec_unop node (fun v -> sqrt (Float.abs v))
  | MAXPS | VMAXPS -> compile_vec_binop node Float.max
  | MINPS | VMINPS -> compile_vec_binop node Float.min
  | CMPPS -> compile_vec_binop node (fun a b -> if a < b then 1.0 else 0.0)
  | PCMPEQD -> compile_vec_binop node (fun a b -> if a = b then 1.0 else 0.0)
  | ANDPS | ANDPD | PAND | VANDPS | VPAND ->
      compile_vec_binop node (bits32 Int32.logand)
  | ORPS | POR -> compile_vec_binop node (bits32 Int32.logor)
  | XORPS | XORPD | PXOR | VXORPS | VXORPD | VPXOR ->
      compile_vec_binop node (bits32 Int32.logxor)
  (* ---- FMA ---- *)
  | VFMADD213PS | VFMADD213PD -> (
      let lanes = lanes_of i in
      match ops with
      | [| Operand.Reg (Operand.Xmm d | Operand.Ymm d);
           Operand.Reg (Operand.Xmm a | Operand.Ymm a);
           Operand.Reg (Operand.Xmm b | Operand.Ymm b) |] ->
          some (fun (st : State.t) ->
              let dv = Array.unsafe_get st.vregs d
              and av = Array.unsafe_get st.vregs a
              and bv = Array.unsafe_get st.vregs b in
              for k = 0 to lanes - 1 do
                Array.unsafe_set dv k
                  ((Array.unsafe_get av k *. Array.unsafe_get dv k)
                  +. Array.unsafe_get bv k)
              done;
              Fall)
      | _ -> None)
  | VFMADD231SS | VFMADD231SD ->
      let wide = is_wide i.mnemonic in
      let rdd = compile_rd_fp ~wide ops.(0)
      and rda = compile_rd_fp ~wide ops.(1)
      and rdb = compile_rd_fp ~wide ops.(2)
      and wr = compile_wr_fp ~wide ops.(0) in
      some (fun st -> wr st ((rda st *. rdb st) +. rdd st); Fall)
  (* Everything else (shuffles, broadcasts, gathers, sync RMW, system,
     transcendentals, rare x87 forms) executes through [step]. *)
  | _ -> None

type kernel = State.t -> control

let compile (node : Exec_graph.node) : kernel =
  match compile_specialized node with
  | Some k -> k
  | None | (exception _) -> fun st -> step st node
