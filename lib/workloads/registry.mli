(** Name-based registry of every workload in the suite — the CLI tool's
    and examples' entry point. *)

val names : string list

(** [find name] — builds the workload.  Underscores are accepted for
    hyphens ([fitter_avx] = [fitter-avx]).
    @raise Invalid_argument for unknown names (message lists options). *)
val find : string -> Hbbp_core.Workload.t
