let specials =
  [
    ("test40", fun () -> Test40.workload ());
    ("hydro-post", fun () -> Hydro.workload ());
    ("hello", fun () -> Kernelbench.workload ());
    ("fitter-x87", fun () -> Fitter.workload Fitter.X87);
    ("fitter-sse", fun () -> Fitter.workload Fitter.Sse);
    ("fitter-avx", fun () -> Fitter.workload Fitter.Avx);
    ("fitter-avx-noinline", fun () -> Fitter.workload Fitter.Avx_noinline);
    ("clforward-before", fun () -> Clforward.workload Clforward.Before);
    ("clforward-after", fun () -> Clforward.workload Clforward.After);
  ]

let names =
  Spec.names @ List.map fst specials @ Training_set.names

let find raw =
  (* Accept underscores for hyphens ([fitter_avx] = [fitter-avx]) so
     shell-friendly spellings resolve; exact names always win. *)
  let name =
    if List.mem raw names then raw
    else
      let dashed = String.map (function '_' -> '-' | c -> c) raw in
      if List.mem dashed names then dashed else raw
  in
  match List.assoc_opt name specials with
  | Some build -> build ()
  | None ->
      if List.mem name Spec.names then Spec.find name
      else if List.mem name Training_set.names then
        List.nth (Training_set.all ())
          (Option.get
             (List.find_index (String.equal name) Training_set.names))
      else
        invalid_arg
          (Printf.sprintf "unknown workload %S; available: %s" name
             (String.concat ", " names))
