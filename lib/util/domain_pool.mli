(** A fixed-size pool of OCaml 5 domains with a shared work queue.

    The pool exists to fan independent, deterministic tasks out over
    cores: profiling runs, training-set construction, bench sweeps.
    Tasks must not share mutable state — each closure owns everything it
    touches — which is what makes results identical regardless of the
    job count.

    A pool with [jobs = 1] spawns no domains at all: every [map] runs
    sequentially in the calling domain — a plain [List.map] plus the
    same per-task accounting the workers keep.  Calls into the
    same pool from different threads are serialized by the queue; do not
    call [map] from inside a task of the same pool (the waiting caller
    occupies no worker, but a nested map would deadlock once all workers
    wait on each other). *)

(** [default_jobs ()] — the [HBBP_JOBS] environment variable when set to
    a positive integer, otherwise {!Domain.recommended_domain_count}. *)
val default_jobs : unit -> int

(** Cooperative cancellation.  A token is handed to each supervised
    task; long-running work calls {!Token.check} at chunk boundaries
    and unwinds via {!Token.Cancelled} when the task was cancelled or
    overran its deadline.  Checks are two atomic/clock reads — cheap
    enough for per-chunk use. *)
module Token : sig
  type t

  exception Cancelled

  (** [create ?deadline_s ()] — a live token; with [deadline_s] it
      auto-cancels that many seconds after creation. *)
  val create : ?deadline_s:float -> unit -> t

  val cancel : t -> unit
  val cancelled : t -> bool

  (** Raise {!Cancelled} if {!cancelled}. *)
  val check : t -> unit

  (** Seconds since [create]. *)
  val elapsed_s : t -> float
end

(** A supervised task overran its deadline (raised in the caller by
    {!map_supervised}, for the lowest-indexed timed-out task). *)
exception Timeout of { index : int; elapsed_s : float }

type t

(** Lifetime accounting of one worker: tasks it executed, wall-clock
    spent running them, and wall-clock spent waiting for the queue
    (idle).  The single-job sequential path reports the equivalent
    numbers for the calling domain in slot 0 ([wait_s = 0]), so the
    accounting is populated for every job count. *)
type worker_stats = { tasks : int; busy_s : float; wait_s : float }

(** [busy / (busy + wait)]; [0.] when the worker never ran. *)
val utilization : worker_stats -> float

(** [create ?jobs ()] — spawn a pool of [jobs] worker domains
    (default {!default_jobs}; values below 1 are clamped to 1).
    [jobs = 1] spawns none. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [stats pool] — per-worker accounting so far, indexed by worker
    (length {!jobs}).  Safe to call at any time; a consistent snapshot
    is taken under the pool lock.  When metrics are enabled
    ({!Hbbp_telemetry.Metrics.enabled}), {!shutdown} also folds these
    numbers into the registry as [pool.tasks], [pool.utilization] and
    per-domain [pool.domain<k>.*] metrics. *)
val stats : t -> worker_stats array

(** The newest {!timeline_capacity} task intervals of one worker,
    oldest first, as absolute [Unix.gettimeofday] (start, stop) pairs;
    [dropped] counts older intervals the ring has forgotten. *)
type worker_timeline = { intervals : (float * float) array; dropped : int }

val timeline_capacity : int

(** [timeline pool] — per-worker task timelines, indexed like {!stats}
    (the sequential path records into slot 0).  A consistent snapshot
    under the pool lock.  When tracing is enabled, {!shutdown} replays
    these intervals into the trace as per-worker [pool.worker<k>.busy]
    0/1 counter tracks — the pool's occupancy rendered as square waves
    aligned with the pipeline spans. *)
val timeline : t -> worker_timeline array

(** [map pool f xs] — apply [f] to every element, in parallel across the
    pool's workers, returning results in input order.  If one or more
    applications raise, the exception of the {e lowest-indexed} failing
    element is re-raised in the caller (with its backtrace) after all
    tasks have settled, so the failure surfaced is deterministic. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_supervised pool ?deadline_s ?watchdog_interval_s f xs] —
    {!map}, but each task receives a fresh {!Token.t} (deadline
    [deadline_s] from task start) and is expected to {!Token.check} it
    at chunk boundaries.  A task that unwinds via {!Token.Cancelled}
    surfaces as {!Timeout} — subject to the same lowest-index law as
    ordinary exceptions, and counted in the [pool.timeouts] metric.

    With more than one job and a deadline, a watchdog domain polls the
    in-flight tokens every [watchdog_interval_s] (default
    [deadline_s / 4], clamped to [1ms, 250ms]): it force-cancels
    overrunning tasks and counts workers that still haven't unwound
    two intervals later in [pool.watchdog_stuck] — the signature of a
    task that stopped reaching its chunk boundaries.  The watchdog
    never kills a domain (OCaml offers no safe preemption); it makes
    the hang visible instead of silent. *)
val map_supervised :
  t ->
  ?deadline_s:float ->
  ?watchdog_interval_s:float ->
  (Token.t -> 'a -> 'b) ->
  'a list ->
  'b list

val map_supervised_array :
  t ->
  ?deadline_s:float ->
  ?watchdog_interval_s:float ->
  (Token.t -> 'a -> 'b) ->
  'a array ->
  'b array

(** [map_reduce pool ~map ~fold ~init xs] — parallel map, then a
    sequential in-order fold in the calling domain (deterministic for
    non-commutative folds). *)
val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc -> 'a list ->
  'acc

(** [shutdown pool] — drain and join the workers.  Idempotent.  Using
    the pool afterwards raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] — [create], run [f], [shutdown] (also on
    exception). *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [run ?jobs f xs] — one-shot [with_pool] + [map]. *)
val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
