let default_jobs () =
  match Sys.getenv_opt "HBBP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type t = {
  n_jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.n_jobs

let worker pool =
  let rec next () =
    Mutex.lock pool.lock;
    let rec await () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else begin
        Condition.wait pool.work_ready pool.lock;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock pool.lock;
    match job with
    | Some run ->
        run ();
        next ()
    | None -> ()
  in
  next ()

let create ?jobs () =
  let n_jobs =
    match jobs with Some n -> max 1 n | None -> default_jobs ()
  in
  let pool =
    {
      n_jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if n_jobs > 1 then
    pool.workers <- List.init n_jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  if pool.closed then Mutex.unlock pool.lock
  else begin
    pool.closed <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let map_array pool f xs =
  let n = Array.length xs in
  if pool.closed then invalid_arg "Domain_pool: pool is shut down";
  if n = 0 then [||]
  else if pool.n_jobs = 1 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let failure = ref None in
    let remaining = ref n in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let task k () =
      (match f xs.(k) with
      | v ->
          Mutex.lock done_lock;
          results.(k) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock done_lock;
          (* Keep the lowest-indexed failure so the surfaced exception
             does not depend on scheduling. *)
          (match !failure with
          | Some (k0, _, _) when k0 < k -> ()
          | Some _ | None -> failure := Some (k, e, bt)));
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock done_lock
    in
    Mutex.lock pool.lock;
    for k = 0 to n - 1 do
      Queue.add (task k) pool.queue
    done;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

let map_reduce pool ~map:f ~fold ~init xs =
  List.fold_left fold init (map pool f xs)

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?jobs f xs = with_pool ?jobs (fun pool -> map pool f xs)
