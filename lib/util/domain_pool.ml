module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics

let default_jobs () =
  match Sys.getenv_opt "HBBP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Cancellation tokens                                                 *)

module Token = struct
  type t = {
    flag : bool Atomic.t;
    deadline : float option;  (* absolute gettimeofday, from create *)
    started : float;
  }

  exception Cancelled

  let create ?deadline_s () =
    let started = now () in
    {
      flag = Atomic.make false;
      deadline = Option.map (fun d -> started +. d) deadline_s;
      started;
    }

  let cancel t = Atomic.set t.flag true

  let cancelled t =
    Atomic.get t.flag
    || match t.deadline with Some d -> now () > d | None -> false

  let check t = if cancelled t then raise Cancelled
  let elapsed_s t = now () -. t.started
end

exception Timeout of { index : int; elapsed_s : float }

let () =
  Printexc.register_printer (function
    | Timeout { index; elapsed_s } ->
        Some
          (Printf.sprintf "Domain_pool.Timeout(index=%d, elapsed_s=%.3f)"
             index elapsed_s)
    | _ -> None)

type worker_stats = { tasks : int; busy_s : float; wait_s : float }

let utilization (s : worker_stats) =
  let total = s.busy_s +. s.wait_s in
  if total <= 0.0 then 0.0 else s.busy_s /. total

type worker_timeline = { intervals : (float * float) array; dropped : int }

(* Newest [timeline_capacity] task intervals are kept per worker; older
   ones are counted in [dropped].  4096 tasks ≈ tens of full bench
   sweeps — big enough that a drop means a genuinely task-stormy run. *)
let timeline_capacity = 4096

(* One accounting cell per worker (cell 0 doubles as the caller's cell
   on the single-job sequential path).  Workers update their own cell
   under the pool lock; [stats] reads under the same lock. *)
type cell = {
  mutable c_tasks : int;
  mutable c_busy_s : float;
  mutable c_wait_s : float;
  (* Ring of (start, stop) gettimeofday pairs, oldest overwritten. *)
  t_ring : (float * float) array;
  mutable t_next : int;
  mutable t_len : int;
  mutable t_dropped : int;
}

(* Under the pool lock, alongside the busy/tasks update. *)
let note_interval cell ~t0 ~t1 =
  cell.t_ring.(cell.t_next) <- (t0, t1);
  cell.t_next <- (cell.t_next + 1) mod timeline_capacity;
  if cell.t_len < timeline_capacity then cell.t_len <- cell.t_len + 1
  else cell.t_dropped <- cell.t_dropped + 1

type t = {
  n_jobs : int;
  (* A job returns its completion continuation; the worker accounts the
     task in its cell BEFORE invoking it, so by the time the submitter
     observes completion, [stats] already includes the task. *)
  queue : (unit -> unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  cells : cell array;
}

let jobs t = t.n_jobs

let worker pool idx =
  let cell = pool.cells.(idx) in
  let rec next () =
    let arrived = now () in
    Mutex.lock pool.lock;
    let rec await () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else begin
        Condition.wait pool.work_ready pool.lock;
        await ()
      end
    in
    let job = await () in
    cell.c_wait_s <- cell.c_wait_s +. (now () -. arrived);
    Mutex.unlock pool.lock;
    match job with
    | Some run ->
        let t0 = now () in
        let complete = run () in
        let t1 = now () in
        Mutex.lock pool.lock;
        cell.c_tasks <- cell.c_tasks + 1;
        cell.c_busy_s <- cell.c_busy_s +. (t1 -. t0);
        note_interval cell ~t0 ~t1;
        Mutex.unlock pool.lock;
        complete ();
        next ()
    | None -> ()
  in
  next ()

let create ?jobs () =
  let n_jobs =
    match jobs with Some n -> max 1 n | None -> default_jobs ()
  in
  let recommended = Domain.recommended_domain_count () in
  if n_jobs > recommended then
    Printf.eprintf
      "hbbp: warning: %d jobs exceeds the %d recommended domains on this \
       host; expect oversubscription\n\
       %!"
      n_jobs recommended;
  let pool =
    {
      n_jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
      workers = [];
      cells =
        Array.init n_jobs (fun _ ->
            {
              c_tasks = 0;
              c_busy_s = 0.0;
              c_wait_s = 0.0;
              t_ring = Array.make timeline_capacity (0.0, 0.0);
              t_next = 0;
              t_len = 0;
              t_dropped = 0;
            });
    }
  in
  if n_jobs > 1 then
    pool.workers <-
      List.init n_jobs (fun idx -> Domain.spawn (fun () -> worker pool idx));
  pool

let stats pool =
  Mutex.lock pool.lock;
  let out =
    Array.map
      (fun c -> { tasks = c.c_tasks; busy_s = c.c_busy_s; wait_s = c.c_wait_s })
      pool.cells
  in
  Mutex.unlock pool.lock;
  out

let timeline pool =
  Mutex.lock pool.lock;
  let out =
    Array.map
      (fun c ->
        (* Chronological: the ring's oldest entry sits at [t_next] once
           it has wrapped, at 0 before. *)
        let first =
          if c.t_len < timeline_capacity then 0 else c.t_next
        in
        {
          intervals =
            Array.init c.t_len (fun k ->
                c.t_ring.((first + k) mod timeline_capacity));
          dropped = c.t_dropped;
        })
      pool.cells
  in
  Mutex.unlock pool.lock;
  out

(* Fold the pool's lifetime accounting into the metrics registry —
   called once, by the first [shutdown]. *)
let emit_metrics pool =
  if Metrics.enabled () then begin
    let all = stats pool in
    let tasks = Array.fold_left (fun acc s -> acc + s.tasks) 0 all in
    let busy = Array.fold_left (fun acc s -> acc +. s.busy_s) 0.0 all in
    let wait = Array.fold_left (fun acc s -> acc +. s.wait_s) 0.0 all in
    Metrics.add (Metrics.counter "pool.tasks") tasks;
    Metrics.set
      (Metrics.gauge "pool.utilization")
      (if busy +. wait <= 0.0 then 0.0 else busy /. (busy +. wait));
    Array.iteri
      (fun k s ->
        let name part = Printf.sprintf "pool.domain%d.%s" k part in
        Metrics.add (Metrics.counter (name "tasks")) s.tasks;
        Metrics.set (Metrics.gauge (name "busy_s")) s.busy_s;
        Metrics.set (Metrics.gauge (name "wait_s")) s.wait_s;
        Metrics.set (Metrics.gauge (name "utilization")) (utilization s))
      all
  end

(* Replay each worker's retained task intervals as a 0/1 "busy" counter
   track, so Perfetto shows the pool's occupancy as square waves aligned
   with the pipeline spans.  Counter tracks are keyed by name, so each
   worker gets its own; timestamps come from the recorded wall-clock
   pairs, not from emission time. *)
let emit_timeline pool =
  if Trace.enabled () then
    Array.iteri
      (fun k (tl : worker_timeline) ->
        let name = Printf.sprintf "pool.worker%d.busy" k in
        Array.iter
          (fun (t0, t1) ->
            Trace.counter ~ts_us:(Trace.us_of_abs t0) name [ ("busy", 1.0) ];
            Trace.counter ~ts_us:(Trace.us_of_abs t1) name [ ("busy", 0.0) ])
          tl.intervals;
        if tl.dropped > 0 && Metrics.enabled () then
          Metrics.add
            (Metrics.counter (Printf.sprintf "pool.domain%d.timeline_dropped" k))
            tl.dropped)
      (timeline pool)

let shutdown pool =
  Mutex.lock pool.lock;
  if pool.closed then Mutex.unlock pool.lock
  else begin
    pool.closed <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.workers;
    pool.workers <- [];
    emit_metrics pool;
    emit_timeline pool
  end

(* The shared fan-out engine: [apply k x] runs task [k].  Both the
   plain and the supervised map go through here, so the lowest-index
   exception law holds identically for ordinary failures and typed
   timeouts. *)
let map_core pool apply xs =
  let n = Array.length xs in
  if pool.closed then invalid_arg "Domain_pool: pool is shut down";
  if n = 0 then [||]
  else if pool.n_jobs = 1 then begin
    (* Sequential path: no domains, but the same accounting as the
       workers so [stats] is equivalent regardless of the job count.
       The first exception propagates immediately — which is the
       lowest-indexed one, since tasks run in order. *)
    let cell = pool.cells.(0) in
    Array.mapi
      (fun k x ->
        let t0 = now () in
        let v = apply k x in
        let t1 = now () in
        cell.c_tasks <- cell.c_tasks + 1;
        cell.c_busy_s <- cell.c_busy_s +. (t1 -. t0);
        note_interval cell ~t0 ~t1;
        v)
      xs
  end
  else begin
    let results = Array.make n None in
    let failure = ref None in
    let remaining = ref n in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let task k () =
      (match apply k xs.(k) with
      | v ->
          Mutex.lock done_lock;
          results.(k) <- Some v;
          Mutex.unlock done_lock
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock done_lock;
          (* Keep the lowest-indexed failure so the surfaced exception
             does not depend on scheduling. *)
          (match !failure with
          | Some (k0, _, _) when k0 < k -> ()
          | Some _ | None -> failure := Some (k, e, bt));
          Mutex.unlock done_lock);
      fun () ->
        Mutex.lock done_lock;
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock done_lock
    in
    Mutex.lock pool.lock;
    for k = 0 to n - 1 do
      Queue.add (task k) pool.queue
    done;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let map_array pool f xs =
  map_core pool
    (fun _ x -> Trace.with_span ~cat:"pool" "task" (fun () -> f x))
    xs

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Supervised map: per-task deadlines, cooperative cancellation, a
   watchdog for workers that stop cooperating.                         *)

(* Watchdog view of one in-flight task.  The mutable fields are only
   ever written by the watchdog domain itself; workers publish/retract
   whole slots through the enclosing Atomic. *)
type supervision_slot = {
  s_tok : Token.t;
  mutable s_cancelled_at : float;
  mutable s_flagged : bool;
}

let watchdog_loop slots ~interval_s ~stop =
  let grace = 2.0 *. interval_s in
  while not (Atomic.get stop) do
    Unix.sleepf interval_s;
    Array.iter
      (fun cell ->
        match Atomic.get cell with
        | None -> ()
        | Some s ->
            if Token.cancelled s.s_tok then begin
              if s.s_cancelled_at = 0.0 then begin
                (* Past deadline: make the cancellation explicit so
                   chunk-boundary checks fire even if the task's own
                   clock reads lag. *)
                Token.cancel s.s_tok;
                s.s_cancelled_at <- now ()
              end
              else if (not s.s_flagged) && now () -. s.s_cancelled_at > grace
              then begin
                (* Cancelled a while ago and still running: the worker
                   is not reaching its chunk boundaries. *)
                s.s_flagged <- true;
                Metrics.add (Metrics.counter "pool.watchdog_stuck") 1
              end
            end)
      slots
  done

let default_watchdog_interval deadline_s =
  Float.max 0.001 (Float.min 0.25 (deadline_s /. 4.0))

let map_supervised_array pool ?deadline_s ?watchdog_interval_s f xs =
  let n = Array.length xs in
  let slots = Array.init n (fun _ -> Atomic.make None) in
  let watchdog =
    match deadline_s with
    | Some d when pool.n_jobs > 1 && n > 0 ->
        let interval_s =
          match watchdog_interval_s with
          | Some i -> Float.max 0.001 i
          | None -> default_watchdog_interval d
        in
        let stop = Atomic.make false in
        let dom = Domain.spawn (fun () -> watchdog_loop slots ~interval_s ~stop) in
        Some (stop, dom)
    | _ -> None
  in
  let apply k x =
    let tok = Token.create ?deadline_s () in
    Atomic.set slots.(k)
      (Some { s_tok = tok; s_cancelled_at = 0.0; s_flagged = false });
    Fun.protect
      ~finally:(fun () -> Atomic.set slots.(k) None)
      (fun () ->
        try Trace.with_span ~cat:"pool" "task" (fun () -> f tok x)
        with Token.Cancelled ->
          Metrics.add (Metrics.counter "pool.timeouts") 1;
          raise (Timeout { index = k; elapsed_s = Token.elapsed_s tok }))
  in
  Fun.protect
    ~finally:(fun () ->
      match watchdog with
      | Some (stop, dom) ->
          Atomic.set stop true;
          Domain.join dom
      | None -> ())
    (fun () -> map_core pool apply xs)

let map_supervised pool ?deadline_s ?watchdog_interval_s f xs =
  Array.to_list
    (map_supervised_array pool ?deadline_s ?watchdog_interval_s f
       (Array.of_list xs))

let map_reduce pool ~map:f ~fold ~init xs =
  List.fold_left fold init (map pool f xs)

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?jobs f xs = with_pool ?jobs (fun pool -> map pool f xs)
