(* Standard reflected CRC-32, polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

type state = int

let init () = 0xFFFFFFFF

let update st ?(off = 0) ?len data =
  let len = match len with Some l -> l | None -> Bytes.length data - off in
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Crc32.update: slice out of range";
  let t = Lazy.force table in
  let crc = ref st in
  for i = off to off + len - 1 do
    crc := t.((!crc lxor Bytes.get_uint8 data i) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc

let finish st = st lxor 0xFFFFFFFF

let bytes ?off ?len data = finish (update (init ()) ?off ?len data)
let string s = bytes (Bytes.unsafe_of_string s)
