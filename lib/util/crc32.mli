(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.

    Used by the v2 archive format to give every section an integrity
    checksum, so the reader can tell torn writes and bit rot from valid
    data before parsing. *)

(** [bytes ?off ?len data] — CRC-32 of the slice (default: all of
    [data]), as a non-negative int in [0, 2^32). *)
val bytes : ?off:int -> ?len:int -> bytes -> int

val string : string -> int
