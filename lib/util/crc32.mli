(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.

    Used by the v2 archive format to give every section an integrity
    checksum, so the reader can tell torn writes and bit rot from valid
    data before parsing.

    Two interfaces: the one-shot [bytes]/[string], and an incremental
    [init]/[update]/[finish] triple so streaming readers can checksum a
    section chunk by chunk without buffering it.  [bytes] is implemented
    on top of the incremental form, so the two always agree. *)

(** Running checksum state.  Immutable: [update] returns a new state. *)
type state

(** Fresh state (all-ones preset, per the reflected CRC-32 convention). *)
val init : unit -> state

(** [update st ?off ?len data] folds the slice (default: all of [data])
    into the running checksum.  Raises [Invalid_argument] if the slice
    is out of range. *)
val update : state -> ?off:int -> ?len:int -> bytes -> state

(** Final CRC value as a non-negative int in [0, 2^32). *)
val finish : state -> int

(** [bytes ?off ?len data] — CRC-32 of the slice (default: all of
    [data]), as a non-negative int in [0, 2^32). *)
val bytes : ?off:int -> ?len:int -> bytes -> int

val string : string -> int
