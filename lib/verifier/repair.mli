(** Flow-conservation count repair: project a fused BBEC onto the
    conservation polytope of the CFG.

    {!Flow} only {e measures} how badly a reconstruction violates
    Kirchhoff's law; this module {e fixes} the counts, the smoothing
    step that turns a noisy sampled profile into a compiler-usable one
    (Wicht et al.'s PGO correction applied to the HBBP setting).

    {1 Model}

    The feasible set is the polytope cut out by, for every block [b]
    with count [c(b)]:

    - [c(b) >= sum of guaranteed predecessor counts] (always), and
    - [c(b) <= sum of all predecessor counts] unless [b] is externally
      enterable ({!Flow.structure}'s entry exemptions: symbol entries,
      image bases, address-taken constants, post-syscall resume
      points), and
    - [c(b) >= 0].

    The zero vector satisfies every constraint, so the polytope is
    never empty and the projection always exists.

    {1 Solver}

    Deterministic Gauss–Seidel sweeps of weighted halfspace projections
    (POCS / Kaczmarz on the violated constraints): each violated bound
    is restored exactly by spreading the discrepancy over the blocks in
    the constraint, each moving {e inversely} to its confidence weight —
    so low-confidence blocks (few samples behind their estimate) absorb
    the correction and well-measured blocks barely move.  Blocks are
    visited in ascending gid order and convergence is declared when a
    sweep finds no violation above tolerance, which makes the pass
    idempotent by construction: a repaired (or exactly conserving)
    vector is returned unchanged, bit for bit.

    After the sweeps converge, the vector is rescaled to the input's
    total {e instruction} mass (sum of block length times count).  The
    constraint system is homogeneous — every bound is a linear
    inequality through the origin — so any positive rescale preserves
    feasibility exactly and leaves the conservation error (a ratio of
    linear functionals) untouched, while pinning the instruction-mix
    totals to the mass the sampling estimators calibrated.

    Two guards keep repair from doing harm on healthy input:

    - {e Materiality floor}: when the input's conservation error is
      already below [min_violation] (default
      {!default_min_violation}), the violations are indistinguishable
      from ordinary sampling noise and the input is returned untouched
      ([iterations = 0], [converged = true]).
    - {e Never worse}: if the sweep budget runs out before convergence
      {e and} the result would have a larger total residual than the
      input, the input is returned unchanged ([converged = false],
      nothing adjusted). *)

open Hbbp_analyzer

type report = {
  repaired : Bbec.t;
      (** Same [method_] as the input; counts projected (or the input
          counts verbatim when nothing was above tolerance). *)
  pre : Flow.report;  (** Conservation check of the input. *)
  post : Flow.report;  (** Conservation check of [repaired]. *)
  iterations : int;  (** Gauss–Seidel sweeps performed. *)
  converged : bool;
      (** All violations below tolerance within the sweep budget. *)
  adjusted_blocks : int;  (** Blocks whose count changed. *)
  moved_mass : float;  (** Sum of absolute count changes. *)
}

(** [confidence ~use_ebs ~ebs_raw ~lbr_weight n] — per-block solver
    weights from channel health: block [b]'s weight is
    [sqrt (1. +. density)] where density is the raw EBS sample count or
    the LBR weight mass behind the estimate, per the fusion provenance
    [use_ebs].  Unsampled blocks get weight 1 (least trusted, absorb
    corrections first); heavily sampled blocks approach immobility. *)
val confidence :
  use_ebs:bool array -> ebs_raw:int array -> lbr_weight:float array ->
  int -> float array

(** Conservation error below which repair declines to act (0.01). *)
val default_min_violation : float

(** [repair structure bbec] — project [bbec] onto the conservation
    polytope of [structure].

    @param weights per-block confidence (default: all 1.0, uniform).
    @param max_sweeps Gauss–Seidel sweep budget (default 200).
    @param tolerance per-constraint violation floor, relative to the
      input's total flow (default 1e-9): violations below
      [tolerance *. max 1. total_flow] are left alone.
    @param min_violation materiality floor on the input's
      conservation error (default {!default_min_violation}); below it
      the input passes through untouched. *)
val repair :
  ?weights:float array ->
  ?max_sweeps:int ->
  ?tolerance:float ->
  ?min_violation:float ->
  Flow.structure ->
  Bbec.t ->
  report

val pp_report : Format.formatter -> report -> unit
