(** Static lint over the program layer.

    A pass pipeline over {!Hbbp_program.Image} / {!Hbbp_program.Bb_map} /
    {!Hbbp_program.Cfg} / {!Hbbp_cpu.Exec_graph} producing typed, located
    {!Diagnostic.t}s.  The HBBP analyzer projects every PMU sample onto
    these structures, so any inconsistency between them silently corrupts
    every downstream instruction mix — the lint makes the invariants
    machine-checkable.

    Each pass is exposed individually and takes its inputs as plain data
    (a block array, a successor function, a decoded array), so the
    mutation-corpus tests can feed deliberately broken structures and
    prove each rule actually fires; {!image} and {!process} are the
    drivers that wire the passes to the real derived structures. *)

open Hbbp_program
open Hbbp_cpu

(** {1 Individual passes}

    Every pass returns the findings of exactly the rules named in its
    doc comment, and nothing else. *)

(** [image/decode]: linear sweep must decode every byte of the image. *)
val check_decode : Image.t -> Diagnostic.t list

(** [image/roundtrip]: every decoded instruction, re-encoded, must
    reproduce its image bytes (length and content). *)
val check_roundtrip : Image.t -> Disasm.decoded array -> Diagnostic.t list

(** [image/symbol-bounds]: symbols must lie inside the image, sorted and
    non-overlapping. *)
val check_symbols : Image.t -> Diagnostic.t list

(** [map/gap], [map/overlap]: blocks must exactly tile the image body —
    first at the base, consecutive blocks meeting end-to-start, last
    ending at the image end. *)
val check_tiling : Image.t -> Basic_block.t array -> Diagnostic.t list

(** [map/mid-block-terminator], [map/terminator-mismatch]: control-flow
    instructions only at block ends, and each block's recorded
    terminator agreeing with its last instruction. *)
val check_terminators : Image.t -> Basic_block.t array -> Diagnostic.t list

(** [cfg/dangling-target]: every direct branch/call target must land on
    a block entry of this image, or satisfy [resolve] (an entry of
    another mapped image).  [resolve] defaults to rejecting
    everything. *)
val check_targets :
  ?resolve:(int -> bool) -> Image.t -> Basic_block.t array ->
  Diagnostic.t list

(** [cfg/edge-mismatch]: [successors] (block id → static successor
    edges, the {!Cfg.t} view) must equal the edges the block terminators
    imply. *)
val check_cfg :
  Image.t -> Basic_block.t array ->
  successors:(int -> (int * Cfg.edge_kind) list) ->
  Diagnostic.t list

(** [cfg/fallthrough-off-end]: the last block must not fall through past
    the image end (terminators with an implied fall-through successor
    need a next block). *)
val check_fallthrough_off_end :
  Image.t -> Basic_block.t array -> Diagnostic.t list

(** [cfg/unreachable]: every block must be reachable from a root —
    symbol entries, the image base and [extra_entries] (address-taken
    targets, post-syscall resume points) — following implied static
    edges. *)
val check_reachability :
  ?extra_entries:int list -> Image.t -> Basic_block.t array ->
  Diagnostic.t list

(** [exec/missing-node]: every mapped instruction must have an
    {!Exec_graph} node at its address with the same instruction and
    length. *)
val check_exec_graph :
  Exec_graph.t -> Image.t -> Basic_block.t array -> Diagnostic.t list

(** [exec/count-mismatch]: the graph's node count vs the maps' total
    instruction count ([image] labels the finding). *)
val check_exec_count :
  Exec_graph.t -> image:string -> expected:int -> Diagnostic.t list

(** {1 Drivers} *)

(** [image img] — run every image-level pass with the real derived
    structures ({!Bb_map.of_image}, {!Cfg.of_bb_map}).  A decode failure
    short-circuits (nothing else is checkable).  [exec] additionally
    runs the executable-graph agreement pass; [resolve] and
    [extra_entries] are threaded to {!check_targets} /
    {!check_reachability}. *)
val image :
  ?exec:Exec_graph.t ->
  ?resolve:(int -> bool) ->
  ?extra_entries:int list ->
  Image.t ->
  Diagnostic.t list

(** [process p] — lint every image of [p]: cross-image branch targets
    resolve against all mapped images' symbols and bases,
    reachability roots include address-taken constants found anywhere in
    the process, and the whole process is checked against a freshly
    built {!Exec_graph} (including the node-count cross-check). *)
val process : Process.t -> Diagnostic.t list
