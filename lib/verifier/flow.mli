(** Flow-conservation analysis of reconstructed BBECs.

    A reconstructed block-count vector must satisfy Kirchhoff's law on
    the CFG: the executions flowing into a block along its static
    predecessor edges must account for the block's own count.  Sampling
    noise perturbs the balance smoothly, but systematic reconstruction
    errors — misattributed samples, broken LBR stitching, corrupt
    shards — break it sharply, which makes the residual a cheap
    whole-pipeline integrity check that needs no reference run.

    Because conditional branches split their outflow unobservably, the
    check is a {e bound} test per block [b] with count [c(b)]:

    - [inflow_min b] — flow along {e guaranteed} incoming edges:
      unconditional jumps, fall-throughs, and both edges of a direct
      call (the callee entry, and the return resumption at the call
      block's layout successor) carry the predecessor's full count.
    - [inflow_max b] — [inflow_min] plus every conditional edge's full
      predecessor count.

    The residual charges [max 0 (inflow_min - c)] always, and
    [max 0 (c - inflow_max)] unless the block is {e externally
    enterable} (symbol entry, image base, address-taken constant, or
    post-syscall resume point) where extra inflow is legitimate. *)

open Hbbp_analyzer

type block_flow = {
  gid : int;  (** Global block id in the {!Static} numbering. *)
  count : float;
  inflow_min : float;
  inflow_max : float;
  residual : float;  (** Unexplained executions charged to this block. *)
  entry : bool;  (** Externally enterable — upper bound not enforced. *)
  loop_depth : int;  (** Natural-loop nesting depth of the block. *)
}

type report = {
  total_flow : float;  (** Sum of all block counts. *)
  total_residual : float;
  conservation_error : float;
      (** [total_residual /. max 1. total_flow] — the score {!Pipeline}
          compares against its threshold. *)
  checked_blocks : int;
  entry_blocks : int;
  worst : block_flow list;
      (** Largest residuals first, capped at [worst] (default 10). *)
  by_depth : (int * float) list;
      (** Residual mass per loop-nesting depth, ascending depth —
          localises conservation damage to loop structure. *)
}

(** [check static bbec] — evaluate the conservation bounds for every
    block.  Cost is linear in the number of static blocks and edges. *)
val check : ?worst:int -> Static.t -> Bbec.t -> report

val pp_report : Format.formatter -> report -> unit
