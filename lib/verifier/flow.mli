(** Flow-conservation analysis of reconstructed BBECs.

    A reconstructed block-count vector must satisfy Kirchhoff's law on
    the CFG: the executions flowing into a block along its static
    predecessor edges must account for the block's own count.  Sampling
    noise perturbs the balance smoothly, but systematic reconstruction
    errors — misattributed samples, broken LBR stitching, corrupt
    shards — break it sharply, which makes the residual a cheap
    whole-pipeline integrity check that needs no reference run.

    Because conditional branches split their outflow unobservably, the
    check is a {e bound} test per block [b] with count [c(b)]:

    - [inflow_min b] — flow along {e guaranteed} incoming edges:
      unconditional jumps, fall-throughs, and both edges of a direct
      call (the callee entry, and the return resumption at the call
      block's layout successor) carry the predecessor's full count.
    - [inflow_max b] — [inflow_min] plus every conditional edge's full
      predecessor count.

    The residual charges [max 0 (inflow_min - c)] always, and
    [max 0 (c - inflow_max)] unless the block is {e externally
    enterable} (symbol entry, image base, address-taken constant, or
    post-syscall resume point) where extra inflow is legitimate. *)

open Hbbp_analyzer

(** The CFG flow skeleton the check (and {!Repair}) operate on: entry
    exemptions, static edges partitioned into guaranteed/conditional,
    and loop depths.  Building it walks every instruction (the
    address-taken scan) and runs natural-loop detection, so callers that
    both check and repair should build it once and share it. *)
type structure = {
  s_blocks : int;  (** Total blocks — the {!Static} numbering size. *)
  s_entry : bool array;  (** Externally enterable (exempt) per block. *)
  s_out_guaranteed : int list array;
      (** Successor gids along guaranteed edges, terminator order.  A
          direct call contributes two entries (callee, return point); a
          self-referential target may repeat. *)
  s_out_conditional : int list array;
      (** Successors along conditional edges (taken before
          fall-through). *)
  s_in_guaranteed : (int * int) list array;
      (** Guaranteed predecessors as [(gid, multiplicity)], ascending
          gid. *)
  s_in_conditional : (int * int) list array;
      (** Conditional predecessors as [(gid, multiplicity)]. *)
  s_loop_depth : int array;
  s_instrs : int array;
      (** Instructions per block — lets {!Repair} reason about
          instruction mass, not just execution mass. *)
}

val structure : Static.t -> structure

type block_flow = {
  gid : int;  (** Global block id in the {!Static} numbering. *)
  count : float;
  inflow_min : float;
  inflow_max : float;
  residual : float;  (** Unexplained executions charged to this block. *)
  entry : bool;  (** Externally enterable — upper bound not enforced. *)
  loop_depth : int;  (** Natural-loop nesting depth of the block. *)
}

type report = {
  total_flow : float;  (** Sum of all block counts. *)
  total_residual : float;
  conservation_error : float;
      (** [total_residual /. max 1. total_flow] — the score {!Pipeline}
          compares against its threshold. *)
  checked_blocks : int;
  entry_blocks : int;
  worst : block_flow list;
      (** Largest residuals first (ties broken by ascending gid so the
          order is byte-stable), capped at [worst] (default 10). *)
  by_depth : (int * float) list;
      (** Residual mass per loop-nesting depth, ascending depth —
          localises conservation damage to loop structure. *)
}

(** [check static bbec] — evaluate the conservation bounds for every
    block.  Cost is linear in the number of static blocks and edges. *)
val check : ?worst:int -> Static.t -> Bbec.t -> report

(** [check_with s bbec] — same as {!check} against a prebuilt
    {!structure}; [check static] = [check_with (structure static)]. *)
val check_with : ?worst:int -> structure -> Bbec.t -> report

val pp_report : Format.formatter -> report -> unit
