open Hbbp_analyzer

type report = {
  repaired : Bbec.t;
  pre : Flow.report;
  post : Flow.report;
  iterations : int;
  converged : bool;
  adjusted_blocks : int;
  moved_mass : float;
}

let confidence ~use_ebs ~ebs_raw ~lbr_weight n =
  Array.init n (fun gid ->
      let density =
        if gid < Array.length use_ebs && use_ebs.(gid) then
          if gid < Array.length ebs_raw then float_of_int ebs_raw.(gid)
          else 0.
        else if gid < Array.length lbr_weight then lbr_weight.(gid)
        else 0.
      in
      sqrt (1. +. Float.max 0. density))

let default_min_violation = 0.013

let repair ?weights ?(max_sweeps = 200) ?(tolerance = 1e-9)
    ?(min_violation = default_min_violation) (s : Flow.structure)
    (bbec : Bbec.t) =
  let n = s.Flow.s_blocks in
  let pre = Flow.check_with s bbec in
  if pre.Flow.conservation_error < min_violation then
    (* Materiality floor: a conservation error this small is what
       ordinary sampling noise produces on a healthy reconstruction.
       Projecting onto the polytope would only chase that noise around
       the CFG, so the profile passes through untouched. *)
    {
      repaired = bbec;
      pre;
      post = pre;
      iterations = 0;
      converged = true;
      adjusted_blocks = 0;
      moved_mass = 0.;
    }
  else
  let inv_w =
    match weights with
    | None -> Array.make n 1.
    | Some w ->
        Array.init n (fun gid ->
            let wi = if gid < Array.length w then w.(gid) else 1. in
            1. /. Float.max 1e-6 wi)
  in
  let counts = Array.init n (fun gid -> Bbec.count bbec gid) in
  let eps = tolerance *. Float.max 1. pre.Flow.total_flow in
  (* The block whose bound is violated is the one its whole neighborhood
     disagrees with, so it should move more readily than any single
     predecessor of equal confidence.  The upper bound gets a stronger
     boost: a count exceeding the sum of ALL its predecessors is almost
     always the block's own sampling excess, and raising the (plural,
     individually better-attested) predecessors to meet it spreads one
     block's error across the neighborhood. *)
  let lower_boost = 3.0 in
  let upper_boost = 1.0 in
  let inflow acc preds =
    List.fold_left
      (fun acc (p, m) -> acc +. (float_of_int m *. counts.(p)))
      acc preds
  in
  let proj_denom acc preds =
    (* sum of a_i^2 / w_i over the constraint's coefficient vector;
       an edge with multiplicity m contributes coefficient m. *)
    List.fold_left
      (fun acc (p, m) -> acc +. (float_of_int (m * m) *. inv_w.(p)))
      acc preds
  in
  (* One Gauss–Seidel sweep in ascending gid order.  Every violated
     bound is restored exactly by the weighted projection: the block and
     its predecessors split the discrepancy in proportion to 1/w, so
     low-confidence coordinates absorb it.  Returns whether any count
     moved — a clean sweep means the vector is already (tolerance-)
     feasible and must be left untouched, which is what makes the whole
     pass idempotent. *)
  let sweep () =
    let touched = ref false in
    for b = 0 to n - 1 do
      let g_in = s.Flow.s_in_guaranteed.(b) in
      let lo = inflow 0. g_in in
      let d = lo -. counts.(b) in
      if d > eps then begin
        touched := true;
        let bw = lower_boost *. inv_w.(b) in
        let nu = d /. proj_denom bw g_in in
        counts.(b) <- counts.(b) +. (nu *. bw);
        List.iter
          (fun (p, m) ->
            counts.(p) <-
              Float.max 0.
                (counts.(p) -. (nu *. float_of_int m *. inv_w.(p))))
          g_in
      end;
      if not s.Flow.s_entry.(b) then begin
        let c_in = s.Flow.s_in_conditional.(b) in
        let hi = inflow (inflow 0. g_in) c_in in
        let d = counts.(b) -. hi in
        if d > eps then begin
          touched := true;
          let bw = upper_boost *. inv_w.(b) in
          let nu = d /. proj_denom (proj_denom bw g_in) c_in in
          counts.(b) <- Float.max 0. (counts.(b) -. (nu *. bw));
          let raise_pred (p, m) =
            counts.(p) <- counts.(p) +. (nu *. float_of_int m *. inv_w.(p))
          in
          List.iter raise_pred g_in;
          List.iter raise_pred c_in
        end
      end
    done;
    !touched
  in
  let sweeps = ref 0 in
  let converged = ref false in
  (try
     for _ = 1 to max_sweeps do
       incr sweeps;
       if not (sweep ()) then begin
         converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  (* The constraint system is homogeneous (every bound is a linear
     inequality with zero constant), so scaling a feasible vector by any
     positive factor keeps it feasible and leaves the conservation
     error — a ratio of two linear functionals — untouched.  Scale the
     projected vector back to the input's total *instruction* mass
     (sum of instrs(b) * c(b)): the projections decide where the flow
     goes, the rescale keeps how much work there is pinned to what the
     sampling estimators calibrated, so instruction-mix totals don't
     drift when repair moves flow between blocks of different length.

     Only in the noise regime, though: a violation this side of
     [gross_violation] means the input's total mass is still the
     calibrated estimate and worth re-anchoring to.  Beyond it the
     damage is structural — whole blocks carrying fabricated or lost
     mass — so the input total is itself corrupt, and the projected
     vector (corrupt blocks pulled back to what their neighborhoods
     support) is the better mass estimate. *)
  let gross_violation = 0.1 in
  if
    (!sweeps > 1 || not !converged)
    && pre.Flow.conservation_error < gross_violation
  then begin
    let imass v =
      let acc = ref 0. in
      for gid = 0 to n - 1 do
        acc := !acc +. (float_of_int s.Flow.s_instrs.(gid) *. v.(gid))
      done;
      !acc
    in
    let before = imass (Array.init n (fun gid -> Bbec.count bbec gid)) in
    let after = imass counts in
    if before > 0. && after > 0. && Float.abs (after -. before) > eps then begin
      let lambda = before /. after in
      for gid = 0 to n - 1 do
        counts.(gid) <- counts.(gid) *. lambda
      done
    end
  end;
  let candidate = { Bbec.method_ = bbec.Bbec.method_; counts } in
  let post = Flow.check_with s candidate in
  let repaired, post =
    (* Budget exhausted mid-flight can in principle leave the vector
       between projections; never hand back something worse than the
       input. *)
    if (not !converged) && post.Flow.total_residual > pre.Flow.total_residual
    then (bbec, pre)
    else (candidate, post)
  in
  let adjusted_blocks = ref 0 in
  let moved_mass = ref 0. in
  Array.iteri
    (fun gid c ->
      let c0 = Bbec.count bbec gid in
      if c <> c0 then begin
        incr adjusted_blocks;
        moved_mass := !moved_mass +. Float.abs (c -. c0)
      end)
    repaired.Bbec.counts;
  {
    repaired;
    pre;
    post;
    iterations = !sweeps;
    converged = !converged;
    adjusted_blocks = !adjusted_blocks;
    moved_mass = !moved_mass;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>count repair: conservation error %.4f -> %.4f (%d sweeps%s, %d \
     blocks adjusted, %.0f executions moved)@]"
    r.pre.Flow.conservation_error r.post.Flow.conservation_error r.iterations
    (if r.converged then "" else ", not converged")
    r.adjusted_blocks r.moved_mass
