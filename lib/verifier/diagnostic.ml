type severity = Error | Warning

type rule =
  | Decode
  | Roundtrip
  | Symbol_bounds
  | Map_gap
  | Map_overlap
  | Mid_block_terminator
  | Terminator_mismatch
  | Dangling_target
  | Edge_mismatch
  | Unreachable
  | Fallthrough_off_end
  | Exec_missing_node
  | Exec_count_mismatch

type t = {
  rule : rule;
  severity : severity;
  image : string;
  addr : int option;
  block : int option;
  message : string;
}

let all_rules =
  [
    Decode;
    Roundtrip;
    Symbol_bounds;
    Map_gap;
    Map_overlap;
    Mid_block_terminator;
    Terminator_mismatch;
    Dangling_target;
    Edge_mismatch;
    Unreachable;
    Fallthrough_off_end;
    Exec_missing_node;
    Exec_count_mismatch;
  ]

let rule_id = function
  | Decode -> "image/decode"
  | Roundtrip -> "image/roundtrip"
  | Symbol_bounds -> "image/symbol-bounds"
  | Map_gap -> "map/gap"
  | Map_overlap -> "map/overlap"
  | Mid_block_terminator -> "map/mid-block-terminator"
  | Terminator_mismatch -> "map/terminator-mismatch"
  | Dangling_target -> "cfg/dangling-target"
  | Edge_mismatch -> "cfg/edge-mismatch"
  | Unreachable -> "cfg/unreachable"
  | Fallthrough_off_end -> "cfg/fallthrough-off-end"
  | Exec_missing_node -> "exec/missing-node"
  | Exec_count_mismatch -> "exec/count-mismatch"

let default_severity = function
  | Unreachable | Exec_count_mismatch -> Warning
  | Decode | Roundtrip | Symbol_bounds | Map_gap | Map_overlap
  | Mid_block_terminator | Terminator_mismatch | Dangling_target
  | Edge_mismatch | Fallthrough_off_end | Exec_missing_node ->
      Error

let make rule ~image ?addr ?block message =
  { rule; severity = default_severity rule; image; addr; block; message }

let severity_to_string = function Error -> "error" | Warning -> "warning"

let pp ppf t =
  Format.fprintf ppf "%s: %s: %s" t.image
    (severity_to_string t.severity)
    (rule_id t.rule);
  (match t.addr with
  | Some a -> Format.fprintf ppf " at %#x" a
  | None -> ());
  (match t.block with
  | Some b -> Format.fprintf ppf " (block %d)" b
  | None -> ());
  Format.fprintf ppf ": %s" t.message

let count_errors diags =
  List.length (List.filter (fun d -> d.severity = Error) diags)
