open Hbbp_isa
open Hbbp_program
open Hbbp_cpu

let dg = Diagnostic.make

(* ------------------------------------------------------------------ *)
(* Image passes                                                        *)

let check_decode (img : Image.t) =
  match Disasm.image img with
  | Ok _ -> []
  | Error (e : Disasm.error) ->
      [
        dg Diagnostic.Decode ~image:img.Image.name ~addr:e.Disasm.addr
          (Format.asprintf "image bytes do not decode: %a" Encoding.pp_error
             e.Disasm.cause);
      ]

let check_roundtrip (img : Image.t) (decoded : Disasm.decoded array) =
  let diags = ref [] in
  Array.iter
    (fun (d : Disasm.decoded) ->
      let expect_len = Encoding.encoded_length d.Disasm.instr in
      if expect_len <> d.Disasm.len then
        diags :=
          dg Diagnostic.Roundtrip ~image:img.Image.name ~addr:d.Disasm.addr
            (Printf.sprintf
               "decoded length %d but canonical encoding is %d bytes"
               d.Disasm.len expect_len)
          :: !diags
      else
        let reenc = Encoding.encode_to_bytes d.Disasm.instr in
        let offset = d.Disasm.addr - img.Image.base in
        let same = ref true in
        for k = 0 to d.Disasm.len - 1 do
          if
            Bytes.get reenc k <> Bytes.get img.Image.code (offset + k)
          then same := false
        done;
        if not !same then
          diags :=
            dg Diagnostic.Roundtrip ~image:img.Image.name ~addr:d.Disasm.addr
              (Format.asprintf "re-encoding %a differs from image bytes"
                 Instruction.pp d.Disasm.instr)
            :: !diags)
    decoded;
  List.rev !diags

let check_symbols (img : Image.t) =
  let diags = ref [] in
  let report sym msg =
    diags :=
      dg Diagnostic.Symbol_bounds ~image:img.Image.name
        ~addr:sym.Symbol.addr
        (Printf.sprintf "symbol %s %s" sym.Symbol.name msg)
      :: !diags
  in
  let rec walk = function
    | [] -> ()
    | (s : Symbol.t) :: rest ->
        if s.addr < img.Image.base || Symbol.end_addr s > Image.end_addr img
        then report s "lies outside the image";
        (match rest with
        | (next : Symbol.t) :: _ when Symbol.end_addr s > next.addr ->
            report s
              (Printf.sprintf "overlaps symbol %s at %#x" next.Symbol.name
                 next.addr)
        | _ -> ());
        walk rest
  in
  walk img.Image.symbols;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Map passes                                                          *)

let check_tiling (img : Image.t) (blocks : Basic_block.t array) =
  let diags = ref [] in
  let report rule addr block msg =
    diags := dg rule ~image:img.Image.name ~addr ~block msg :: !diags
  in
  let expected = ref img.Image.base in
  Array.iter
    (fun (b : Basic_block.t) ->
      if b.addr > !expected then
        report Diagnostic.Map_gap !expected b.id
          (Printf.sprintf "%d bytes uncovered before block %d"
             (b.addr - !expected) b.id)
      else if b.addr < !expected then
        report Diagnostic.Map_overlap b.addr b.id
          (Printf.sprintf "block %d starts %d bytes inside its predecessor"
             b.id (!expected - b.addr));
      expected := max !expected (Basic_block.end_addr b))
    blocks;
  if !expected < Image.end_addr img then
    report Diagnostic.Map_gap !expected
      (Array.length blocks - 1)
      (Printf.sprintf "%d bytes uncovered at the image tail"
         (Image.end_addr img - !expected));
  List.rev !diags

(* The terminator a block's last instruction implies — the same
   classification {!Bb_map.of_decoded} applies when building the map. *)
let implied_terminator (instr : Instruction.t) ~addr ~len :
    Basic_block.terminator =
  let target () =
    match Instruction.rel_displacement instr with
    | Some disp -> Some (addr + len + disp)
    | None -> None
  in
  match Mnemonic.branch_kind instr.Instruction.mnemonic with
  | Mnemonic.Uncond_jump -> (
      match target () with
      | Some a -> Term_jump a
      | None -> Term_indirect_jump)
  | Mnemonic.Cond_jump -> (
      match target () with
      | Some a -> Term_cond a
      | None -> Term_indirect_jump)
  | Mnemonic.Call_branch ->
      if Mnemonic.equal instr.Instruction.mnemonic SYSCALL then Term_syscall
      else Term_call (target ())
  | Mnemonic.Ret_branch ->
      if Mnemonic.equal instr.Instruction.mnemonic SYSRET then Term_sysret
      else Term_ret
  | Mnemonic.Not_branch ->
      if Mnemonic.equal instr.Instruction.mnemonic HLT then Term_halt
      else Term_fallthrough

let is_terminator_instr (instr : Instruction.t) =
  Instruction.is_branch instr || Mnemonic.equal instr.Instruction.mnemonic HLT

let check_terminators (img : Image.t) (blocks : Basic_block.t array) =
  let diags = ref [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      let n = Array.length b.instrs in
      for k = 0 to n - 2 do
        if is_terminator_instr b.instrs.(k) then
          diags :=
            dg Diagnostic.Mid_block_terminator ~image:img.Image.name
              ~addr:b.addrs.(k) ~block:b.id
              (Format.asprintf
                 "%a terminates control flow %d instruction(s) before the \
                  block end"
                 Instruction.pp b.instrs.(k)
                 (n - 1 - k))
            :: !diags
      done;
      if n > 0 then begin
        let last = b.instrs.(n - 1) in
        let last_addr = b.addrs.(n - 1) in
        let len = Basic_block.end_addr b - last_addr in
        let implied = implied_terminator last ~addr:last_addr ~len in
        if implied <> b.term then
          diags :=
            dg Diagnostic.Terminator_mismatch ~image:img.Image.name
              ~addr:last_addr ~block:b.id
              (Format.asprintf "recorded terminator %a but %a implies %a"
                 Basic_block.pp_terminator b.term Instruction.pp last
                 Basic_block.pp_terminator implied)
            :: !diags
      end)
    blocks;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* CFG passes                                                          *)

let block_index_starting_at (blocks : Basic_block.t array) addr =
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let b = blocks.(mid) in
      if b.Basic_block.addr = addr then Some mid
      else if b.Basic_block.addr < addr then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (Array.length blocks - 1)

let direct_target (b : Basic_block.t) =
  match b.term with
  | Term_jump a | Term_cond a | Term_call (Some a) -> Some a
  | Term_fallthrough | Term_indirect_jump | Term_call None | Term_ret
  | Term_syscall | Term_sysret | Term_halt ->
      None

let check_targets ?(resolve = fun _ -> false) (img : Image.t)
    (blocks : Basic_block.t array) =
  let diags = ref [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      match direct_target b with
      | None -> ()
      | Some target ->
          let ok =
            if Image.contains img target then
              Option.is_some (block_index_starting_at blocks target)
            else resolve target
          in
          if not ok then
            diags :=
              dg Diagnostic.Dangling_target ~image:img.Image.name
                ~addr:(Basic_block.last_addr b) ~block:b.id
                (Printf.sprintf
                   "branch target %#x is not a block entry or declared \
                    symbol"
                   target)
              :: !diags)
    blocks;
  List.rev !diags

(* The static successor edges a block's terminator implies, mirroring
   {!Cfg.of_bb_map}: taken edges only when the target starts a block,
   fall-through for conditional / straight-line / call terminators. *)
let implied_successors (blocks : Basic_block.t array) k =
  let b = blocks.(k) in
  let taken addr =
    match block_index_starting_at blocks addr with
    | Some id -> [ (id, Cfg.Taken) ]
    | None -> []
  in
  let fallthrough () =
    if k + 1 < Array.length blocks then [ (k + 1, Cfg.Fallthrough) ] else []
  in
  match b.Basic_block.term with
  | Term_fallthrough -> fallthrough ()
  | Term_jump a -> taken a
  | Term_cond a -> taken a @ fallthrough ()
  | Term_call (Some a) -> taken a @ fallthrough ()
  | Term_call None -> fallthrough ()
  | Term_indirect_jump | Term_ret | Term_syscall | Term_sysret | Term_halt ->
      []

let sort_edges edges = List.sort compare edges

let pp_edges ppf edges =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (id, kind) ->
      Format.fprintf ppf "%d:%s" id
        (match kind with Cfg.Taken -> "taken" | Cfg.Fallthrough -> "fall"))
    ppf edges

let check_cfg (img : Image.t) (blocks : Basic_block.t array) ~successors =
  let diags = ref [] in
  Array.iteri
    (fun k (b : Basic_block.t) ->
      let expected = sort_edges (implied_successors blocks k) in
      let got = sort_edges (successors k) in
      if expected <> got then
        diags :=
          dg Diagnostic.Edge_mismatch ~image:img.Image.name ~addr:b.addr
            ~block:b.id
            (Format.asprintf
               "CFG successors [%a] but terminator implies [%a]" pp_edges got
               pp_edges expected)
          :: !diags)
    blocks;
  List.rev !diags

let falls_through (b : Basic_block.t) =
  match b.Basic_block.term with
  | Term_fallthrough | Term_cond _ | Term_call _ -> true
  | Term_jump _ | Term_indirect_jump | Term_ret | Term_syscall | Term_sysret
  | Term_halt ->
      false

let check_fallthrough_off_end (img : Image.t) (blocks : Basic_block.t array) =
  let n = Array.length blocks in
  if n = 0 then []
  else
    let last = blocks.(n - 1) in
    if falls_through last then
      [
        dg Diagnostic.Fallthrough_off_end ~image:img.Image.name
          ~addr:(Basic_block.last_addr last) ~block:last.id
          (Format.asprintf
             "last block ends in %a and falls through past the image end"
             Basic_block.pp_terminator last.term);
      ]
    else []

let check_reachability ?(extra_entries = []) (img : Image.t)
    (blocks : Basic_block.t array) =
  let n = Array.length blocks in
  if n = 0 then []
  else begin
    let seen = Array.make n false in
    let roots = ref [] in
    let add_root id = if id >= 0 && id < n then roots := id :: !roots in
    (* Symbol entries and the image base are externally enterable; so is
       the resume point after every SYSCALL block (SYSRET lands there
       without a static edge). *)
    Option.iter add_root (block_index_starting_at blocks img.Image.base);
    List.iter
      (fun (s : Symbol.t) ->
        Option.iter add_root (block_index_starting_at blocks s.addr))
      img.Image.symbols;
    List.iter add_root extra_entries;
    Array.iteri
      (fun k (b : Basic_block.t) ->
        match b.term with
        | Term_syscall -> add_root (k + 1)
        | _ -> ())
      blocks;
    let rec visit k =
      if k >= 0 && k < n && not seen.(k) then begin
        seen.(k) <- true;
        List.iter (fun (s, _) -> visit s) (implied_successors blocks k)
      end
    in
    List.iter visit !roots;
    let diags = ref [] in
    Array.iteri
      (fun k (b : Basic_block.t) ->
        if not seen.(k) then
          diags :=
            dg Diagnostic.Unreachable ~image:img.Image.name ~addr:b.addr
              ~block:b.id
              (Printf.sprintf
                 "block %d is unreachable from every symbol entry and \
                  address-taken target"
                 b.id)
            :: !diags)
      blocks;
    List.rev !diags
  end

(* ------------------------------------------------------------------ *)
(* Executable-graph agreement                                          *)

let check_exec_graph (graph : Exec_graph.t) (img : Image.t)
    (blocks : Basic_block.t array) =
  let diags = ref [] in
  let report addr block msg =
    diags :=
      dg Diagnostic.Exec_missing_node ~image:img.Image.name ~addr ~block msg
      :: !diags
  in
  Array.iter
    (fun (b : Basic_block.t) ->
      let n = Array.length b.instrs in
      for k = 0 to n - 1 do
        let addr = b.addrs.(k) in
        let len =
          (if k + 1 < n then b.addrs.(k + 1) else Basic_block.end_addr b)
          - addr
        in
        match Exec_graph.node_at graph addr with
        | None -> report addr b.id "no executable node at this address"
        | Some node ->
            if not (Instruction.equal node.Exec_graph.instr b.instrs.(k))
            then
              report addr b.id
                (Format.asprintf
                   "executable node decodes %a but the map holds %a"
                   Instruction.pp node.Exec_graph.instr Instruction.pp
                   b.instrs.(k))
            else if node.Exec_graph.len <> len then
              report addr b.id
                (Printf.sprintf
                   "executable node is %d bytes but the map implies %d"
                   node.Exec_graph.len len)
      done)
    blocks;
  List.rev !diags

let check_exec_count (graph : Exec_graph.t) ~image ~expected =
  let got = Exec_graph.node_count graph in
  if got <> expected then
    [
      dg Diagnostic.Exec_count_mismatch ~image
        (Printf.sprintf
           "executable graph holds %d nodes but the maps hold %d \
            instructions"
           got expected);
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)

let image ?exec ?resolve ?extra_entries (img : Image.t) =
  match Disasm.image img with
  | Error (e : Disasm.error) ->
      [
        dg Diagnostic.Decode ~image:img.Image.name ~addr:e.Disasm.addr
          (Format.asprintf "image bytes do not decode: %a" Encoding.pp_error
             e.Disasm.cause);
      ]
  | Ok decoded ->
      let map = Bb_map.of_image_exn img in
      let blocks = Bb_map.blocks map in
      let cfg = Cfg.of_bb_map map in
      List.concat
        [
          check_roundtrip img decoded;
          check_symbols img;
          check_tiling img blocks;
          check_terminators img blocks;
          check_targets ?resolve img blocks;
          check_cfg img blocks ~successors:(Cfg.successors cfg);
          check_fallthrough_off_end img blocks;
          check_reachability ?extra_entries img blocks;
          (match exec with
          | Some graph -> check_exec_graph graph img blocks
          | None -> []);
        ]

let process (p : Process.t) =
  let images = Process.images p in
  (* Branch targets that leave their image must land on a declared entry
     of another mapped image (symbol or base). *)
  let resolve addr =
    List.exists
      (fun (img : Image.t) ->
        img.Image.base = addr
        || (match Image.symbol_at img addr with
           | Some s -> s.Symbol.addr = addr
           | None -> false))
      images
  in
  (* Address-taken constants: any immediate anywhere in the process that
     names a block entry makes that block an indirect-branch root. *)
  let maps =
    List.filter_map
      (fun (img : Image.t) ->
        match Bb_map.of_image img with
        | Ok map -> Some (img, map)
        | Error _ -> None)
      images
  in
  let taken = Hashtbl.create 64 in
  List.iter
    (fun ((_ : Image.t), map) ->
      Array.iter
        (fun (b : Basic_block.t) ->
          Array.iter
            (fun (instr : Instruction.t) ->
              Array.iter
                (function
                  | Operand.Imm v ->
                      let addr = Int64.to_int v in
                      List.iter
                        (fun ((img : Image.t), map) ->
                          if Image.contains img addr then
                            match Bb_map.block_starting_at map addr with
                            | Some tb ->
                                Hashtbl.replace taken
                                  (img.Image.name, tb.Basic_block.id)
                                  ()
                            | None -> ())
                        maps
                  | Operand.Reg _ | Operand.Mem _ | Operand.Rel _ -> ())
                instr.Instruction.operands)
            b.Basic_block.instrs)
        (Bb_map.blocks map))
    maps;
  let extra_entries_of (img : Image.t) =
    Hashtbl.fold
      (fun (name, id) () acc ->
        if String.equal name img.Image.name then id :: acc else acc)
      taken []
  in
  let exec =
    match Exec_graph.build p with Ok g -> Some g | Error _ -> None
  in
  let per_image =
    List.concat_map
      (fun (img : Image.t) ->
        image ?exec ~resolve ~extra_entries:(extra_entries_of img) img)
      images
  in
  let count_check =
    match exec with
    | None -> []
    | Some graph ->
        let expected =
          List.fold_left
            (fun acc ((_ : Image.t), map) ->
              acc + Bb_map.instruction_count map)
            0 maps
        in
        let image =
          match images with img :: _ -> img.Image.name | [] -> "(process)"
        in
        check_exec_count graph ~image ~expected
  in
  per_image @ count_check
