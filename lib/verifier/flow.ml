open Hbbp_isa
open Hbbp_program
open Hbbp_analyzer

type block_flow = {
  gid : int;
  count : float;
  inflow_min : float;
  inflow_max : float;
  residual : float;
  entry : bool;
  loop_depth : int;
}

type report = {
  total_flow : float;
  total_residual : float;
  conservation_error : float;
  checked_blocks : int;
  entry_blocks : int;
  worst : block_flow list;
  by_depth : (int * float) list;
}

type structure = {
  s_blocks : int;
  s_entry : bool array;
  s_out_guaranteed : int list array;
  s_out_conditional : int list array;
  s_in_guaranteed : (int * int) list array;
  s_in_conditional : (int * int) list array;
  s_loop_depth : int array;
  s_instrs : int array;
}

let loop_depths static n =
  let depth = Array.make n 0 in
  List.iter
    (fun (img : Image.t) ->
      match Static.map_of_image static img.Image.name with
      | None -> ()
      | Some map ->
          let cfg = Cfg.of_bb_map map in
          List.iter
            (fun (loop : Cfg.loop) ->
              List.iter
                (fun local ->
                  match
                    Static.global_id static map (Bb_map.block map local)
                  with
                  | Some gid -> depth.(gid) <- depth.(gid) + 1
                  | None -> ())
                loop.Cfg.body)
            (Cfg.natural_loops cfg ~entry:0))
    (Process.images (Static.process static));
  depth

(* Collapse an edge list with repeats into (endpoint, multiplicity) pairs,
   preserving first-occurrence order.  Lists are tiny (<= 2 out-edges per
   block), so the quadratic scan is irrelevant. *)
let with_multiplicity edges =
  List.fold_left
    (fun acc e ->
      let rec bump = function
        | [] -> [ (e, 1) ]
        | (e', m) :: rest when e' = e -> (e', m + 1) :: rest
        | p :: rest -> p :: bump rest
      in
      bump acc)
    [] edges

let structure static =
  let n = Static.total_blocks static in
  let entry = Array.make n false in
  let mark_entry gid = entry.(gid) <- true in
  (* External entries: symbol entries, image bases, and address-taken
     constants (immediates naming a block entry feed indirect jumps and
     calls the CFG cannot represent). *)
  List.iter
    (fun (img : Image.t) ->
      Option.iter mark_entry (Static.find_starting static img.Image.base);
      List.iter
        (fun (s : Symbol.t) ->
          Option.iter mark_entry (Static.find_starting static s.Symbol.addr))
        img.Image.symbols)
    (Process.images (Static.process static));
  Static.iter
    (fun _ _ b ->
      Array.iter
        (fun (instr : Instruction.t) ->
          Array.iter
            (function
              | Operand.Imm v ->
                  Option.iter mark_entry
                    (Static.find_starting static (Int64.to_int v))
              | Operand.Reg _ | Operand.Mem _ | Operand.Rel _ -> ())
            instr.Instruction.operands)
        b.Basic_block.instrs)
    static;
  (* Static out-edges per block, in terminator order (taken edge before
     fall-through) so float accumulation downstream is reproducible. *)
  let out_g = Array.make n [] in
  let out_c = Array.make n [] in
  Static.iter
    (fun gid _ b ->
      let g = ref [] and c = ref [] in
      let taken addr k =
        Option.iter (fun t -> k := t :: !k) (Static.find_starting static addr)
      in
      let fallthrough k =
        Option.iter (fun t -> k := t :: !k) (Static.next_in_layout static gid)
      in
      (match b.Basic_block.term with
      | Term_fallthrough -> fallthrough g
      | Term_jump a -> taken a g
      | Term_cond a ->
          taken a c;
          fallthrough c
      | Term_call (Some a) ->
          (* The call executes the callee entry AND, on return, the
             layout successor — both once per execution of the block. *)
          taken a g;
          fallthrough g
      | Term_call None -> fallthrough g
      | Term_syscall ->
          (* The kernel resumes at the layout successor eventually, but
             via SYSRET, not a static edge: treat the resume point as
             externally enterable rather than guaranteeing inflow. *)
          Option.iter mark_entry (Static.next_in_layout static gid)
      | Term_indirect_jump | Term_ret | Term_sysret | Term_halt -> ());
      out_g.(gid) <- List.rev !g;
      out_c.(gid) <- List.rev !c)
    static;
  (* Invert to predecessor lists with multiplicity, ascending gid order. *)
  let in_g = Array.make n [] in
  let in_c = Array.make n [] in
  for gid = n - 1 downto 0 do
    List.iter
      (fun t -> in_g.(t) <- gid :: in_g.(t))
      (List.rev out_g.(gid));
    List.iter
      (fun t -> in_c.(t) <- gid :: in_c.(t))
      (List.rev out_c.(gid))
  done;
  let instrs = Array.make n 0 in
  Static.iter
    (fun gid _ b ->
      instrs.(gid) <- Array.length b.Basic_block.instrs)
    static;
  {
    s_blocks = n;
    s_entry = entry;
    s_out_guaranteed = out_g;
    s_out_conditional = out_c;
    s_in_guaranteed = Array.map with_multiplicity in_g;
    s_in_conditional = Array.map with_multiplicity in_c;
    s_loop_depth = loop_depths static n;
    s_instrs = instrs;
  }

let check_with ?(worst = 10) s (bbec : Bbec.t) =
  let n = s.s_blocks in
  let counts = Array.init n (fun gid -> Bbec.count bbec gid) in
  let inflow_min = Array.make n 0. in
  let inflow_max = Array.make n 0. in
  (* Propagate each block's count along its static out-edges. *)
  for gid = 0 to n - 1 do
    let c = counts.(gid) in
    List.iter
      (fun t ->
        inflow_min.(t) <- inflow_min.(t) +. c;
        inflow_max.(t) <- inflow_max.(t) +. c)
      s.s_out_guaranteed.(gid);
    List.iter
      (fun t -> inflow_max.(t) <- inflow_max.(t) +. c)
      s.s_out_conditional.(gid)
  done;
  let flows =
    Array.init n (fun gid ->
        let c = counts.(gid) in
        let low = inflow_min.(gid) and high = inflow_max.(gid) in
        let residual =
          Float.max 0. (low -. c)
          +. (if s.s_entry.(gid) then 0. else Float.max 0. (c -. high))
        in
        {
          gid;
          count = c;
          inflow_min = low;
          inflow_max = high;
          residual;
          entry = s.s_entry.(gid);
          loop_depth = s.s_loop_depth.(gid);
        })
  in
  let total_flow = Array.fold_left (fun acc f -> acc +. f.count) 0. flows in
  let total_residual =
    Array.fold_left (fun acc f -> acc +. f.residual) 0. flows
  in
  let entry_blocks =
    Array.fold_left (fun acc f -> if f.entry then acc + 1 else acc) 0 flows
  in
  let offenders =
    Array.to_list flows
    |> List.filter (fun f -> f.residual > 0.)
    |> List.sort (fun a b ->
           (* Largest residual first; ties broken by block id so the
              listing (and lint --json) is byte-stable across runs. *)
           match Float.compare b.residual a.residual with
           | 0 -> compare a.gid b.gid
           | c -> c)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let by_depth =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        if f.residual > 0. then
          let prev =
            Option.value ~default:0. (Hashtbl.find_opt tbl f.loop_depth)
          in
          Hashtbl.replace tbl f.loop_depth (prev +. f.residual))
      flows;
    Hashtbl.fold (fun d r acc -> (d, r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    total_flow;
    total_residual;
    conservation_error = total_residual /. Float.max 1. total_flow;
    checked_blocks = n;
    entry_blocks;
    worst = take worst offenders;
    by_depth;
  }

let check ?worst static bbec = check_with ?worst (structure static) bbec

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>flow conservation: error %.4f (%.0f unexplained of %.0f \
     executions, %d blocks, %d entry points)@,"
    r.conservation_error r.total_residual r.total_flow r.checked_blocks
    r.entry_blocks;
  List.iter
    (fun (d, res) ->
      Format.fprintf ppf "  depth %d residual %.0f@," d res)
    r.by_depth;
  List.iter
    (fun f ->
      Format.fprintf ppf
        "  block %d: count %.0f outside inflow [%.0f, %.0f]%s@," f.gid
        f.count f.inflow_min f.inflow_max
        (if f.entry then " (entry)" else ""))
    r.worst;
  Format.fprintf ppf "@]"
