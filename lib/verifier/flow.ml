open Hbbp_isa
open Hbbp_program
open Hbbp_analyzer

type block_flow = {
  gid : int;
  count : float;
  inflow_min : float;
  inflow_max : float;
  residual : float;
  entry : bool;
  loop_depth : int;
}

type report = {
  total_flow : float;
  total_residual : float;
  conservation_error : float;
  checked_blocks : int;
  entry_blocks : int;
  worst : block_flow list;
  by_depth : (int * float) list;
}

let loop_depths static n =
  let depth = Array.make n 0 in
  List.iter
    (fun (img : Image.t) ->
      match Static.map_of_image static img.Image.name with
      | None -> ()
      | Some map ->
          let cfg = Cfg.of_bb_map map in
          List.iter
            (fun (loop : Cfg.loop) ->
              List.iter
                (fun local ->
                  match
                    Static.global_id static map (Bb_map.block map local)
                  with
                  | Some gid -> depth.(gid) <- depth.(gid) + 1
                  | None -> ())
                loop.Cfg.body)
            (Cfg.natural_loops cfg ~entry:0))
    (Process.images (Static.process static));
  depth

let check ?(worst = 10) static (bbec : Bbec.t) =
  let n = Static.total_blocks static in
  let counts = Array.init n (fun gid -> Bbec.count bbec gid) in
  let inflow_min = Array.make n 0. in
  let inflow_max = Array.make n 0. in
  let entry = Array.make n false in
  let mark_entry gid = entry.(gid) <- true in
  let guaranteed gid c =
    inflow_min.(gid) <- inflow_min.(gid) +. c;
    inflow_max.(gid) <- inflow_max.(gid) +. c
  in
  let possible gid c = inflow_max.(gid) <- inflow_max.(gid) +. c in
  (* External entries: symbol entries, image bases, and address-taken
     constants (immediates naming a block entry feed indirect jumps and
     calls the CFG cannot represent). *)
  List.iter
    (fun (img : Image.t) ->
      Option.iter mark_entry (Static.find_starting static img.Image.base);
      List.iter
        (fun (s : Symbol.t) ->
          Option.iter mark_entry (Static.find_starting static s.Symbol.addr))
        img.Image.symbols)
    (Process.images (Static.process static));
  Static.iter
    (fun _ _ b ->
      Array.iter
        (fun (instr : Instruction.t) ->
          Array.iter
            (function
              | Operand.Imm v ->
                  Option.iter mark_entry
                    (Static.find_starting static (Int64.to_int v))
              | Operand.Reg _ | Operand.Mem _ | Operand.Rel _ -> ())
            instr.Instruction.operands)
        b.Basic_block.instrs)
    static;
  (* Propagate each block's count along its static out-edges. *)
  Static.iter
    (fun gid _ b ->
      let c = counts.(gid) in
      let taken addr k =
        Option.iter (fun t -> k t c) (Static.find_starting static addr)
      in
      let fallthrough k =
        Option.iter (fun t -> k t c) (Static.next_in_layout static gid)
      in
      match b.Basic_block.term with
      | Term_fallthrough -> fallthrough guaranteed
      | Term_jump a -> taken a guaranteed
      | Term_cond a ->
          taken a possible;
          fallthrough possible
      | Term_call (Some a) ->
          (* The call executes the callee entry AND, on return, the
             layout successor — both once per execution of the block. *)
          taken a guaranteed;
          fallthrough guaranteed
      | Term_call None -> fallthrough guaranteed
      | Term_syscall ->
          (* The kernel resumes at the layout successor eventually, but
             via SYSRET, not a static edge: treat the resume point as
             externally enterable rather than guaranteeing inflow. *)
          Option.iter mark_entry (Static.next_in_layout static gid)
      | Term_indirect_jump | Term_ret | Term_sysret | Term_halt -> ())
    static;
  let depths = loop_depths static n in
  let flows =
    Array.init n (fun gid ->
        let c = counts.(gid) in
        let low = inflow_min.(gid) and high = inflow_max.(gid) in
        let residual =
          Float.max 0. (low -. c)
          +. (if entry.(gid) then 0. else Float.max 0. (c -. high))
        in
        {
          gid;
          count = c;
          inflow_min = low;
          inflow_max = high;
          residual;
          entry = entry.(gid);
          loop_depth = depths.(gid);
        })
  in
  let total_flow = Array.fold_left (fun acc f -> acc +. f.count) 0. flows in
  let total_residual =
    Array.fold_left (fun acc f -> acc +. f.residual) 0. flows
  in
  let entry_blocks =
    Array.fold_left (fun acc f -> if f.entry then acc + 1 else acc) 0 flows
  in
  let offenders =
    Array.to_list flows
    |> List.filter (fun f -> f.residual > 0.)
    |> List.sort (fun a b -> Float.compare b.residual a.residual)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let by_depth =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        if f.residual > 0. then
          let prev =
            Option.value ~default:0. (Hashtbl.find_opt tbl f.loop_depth)
          in
          Hashtbl.replace tbl f.loop_depth (prev +. f.residual))
      flows;
    Hashtbl.fold (fun d r acc -> (d, r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    total_flow;
    total_residual;
    conservation_error = total_residual /. Float.max 1. total_flow;
    checked_blocks = n;
    entry_blocks;
    worst = take worst offenders;
    by_depth;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>flow conservation: error %.4f (%.0f unexplained of %.0f \
     executions, %d blocks, %d entry points)@,"
    r.conservation_error r.total_residual r.total_flow r.checked_blocks
    r.entry_blocks;
  List.iter
    (fun (d, res) ->
      Format.fprintf ppf "  depth %d residual %.0f@," d res)
    r.by_depth;
  List.iter
    (fun f ->
      Format.fprintf ppf
        "  block %d: count %.0f outside inflow [%.0f, %.0f]%s@," f.gid
        f.count f.inflow_min f.inflow_max
        (if f.entry then " (entry)" else ""))
    r.worst;
  Format.fprintf ppf "@]"
