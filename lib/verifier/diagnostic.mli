(** Typed, located findings of the static verifier.

    Every lint pass reports through this type: a rule id (what invariant
    broke), a severity, a location (image, and where known an address
    and/or a block id), and a human-readable message.  Rule ids are a
    closed variant so tooling can match on them and the mutation-corpus
    tests can prove every rule fires. *)

type severity = Error | Warning

(** The rule catalogue.  Stable string ids ({!rule_id}) follow a
    [layer/check] scheme and are part of the [hbbp lint --json]
    contract. *)
type rule =
  | Decode  (** An image byte range does not decode ([image/decode]). *)
  | Roundtrip
      (** Re-encoding a decoded instruction does not reproduce the image
          bytes ([image/roundtrip]). *)
  | Symbol_bounds
      (** A symbol lies outside its image or overlaps the next symbol
          ([image/symbol-bounds]). *)
  | Map_gap
      (** Consecutive blocks leave image bytes uncovered ([map/gap]). *)
  | Map_overlap  (** Consecutive blocks overlap ([map/overlap]). *)
  | Mid_block_terminator
      (** A control-flow instruction sits before the end of its block
          ([map/mid-block-terminator]). *)
  | Terminator_mismatch
      (** A block's recorded terminator disagrees with its last decoded
          instruction ([map/terminator-mismatch]). *)
  | Dangling_target
      (** A direct branch/call target resolves to no block entry and no
          declared symbol ([cfg/dangling-target]). *)
  | Edge_mismatch
      (** CFG successors differ from what the terminators imply
          ([cfg/edge-mismatch]). *)
  | Unreachable
      (** A block no symbol entry, branch or address-taken constant can
          reach ([cfg/unreachable]). *)
  | Fallthrough_off_end
      (** The last block of an image can fall through past the image end
          ([cfg/fallthrough-off-end]). *)
  | Exec_missing_node
      (** A mapped instruction has no matching {!Hbbp_cpu.Exec_graph}
          node ([exec/missing-node]). *)
  | Exec_count_mismatch
      (** The executable graph and the BB maps disagree on the total
          instruction count ([exec/count-mismatch]). *)

type t = {
  rule : rule;
  severity : severity;
  image : string;  (** Name of the image the finding is in. *)
  addr : int option;  (** Address of the offending byte/instruction. *)
  block : int option;  (** Block id within the image's map. *)
  message : string;
}

(** All rules, in catalogue order — the mutation corpus iterates this to
    prove none is dead. *)
val all_rules : rule list

(** Stable [layer/check] identifier, e.g. ["map/overlap"]. *)
val rule_id : rule -> string

(** Severity the driver assigns to the rule ({!Unreachable} and
    {!Exec_count_mismatch} warn; everything else errors). *)
val default_severity : rule -> severity

(** [make rule ~image msg] — a finding with the rule's default
    severity. *)
val make :
  rule -> image:string -> ?addr:int -> ?block:int -> string -> t

val severity_to_string : severity -> string
val pp : Format.formatter -> t -> unit

(** [count_errors diags] — findings with severity {!Error}. *)
val count_errors : t list -> int
