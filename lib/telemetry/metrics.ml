type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

type histogram = {
  h_name : string;
  bounds : float array;
  buckets : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let registry_lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.reset registry;
  Mutex.unlock registry_lock

let register name build pick =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = build () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock registry_lock;
  match pick m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind"
           name)

let counter name =
  register name
    (fun () -> M_counter { c_name = name; c = Atomic.make 0 })
    (function M_counter c -> Some c | _ -> None)

let add c n = ignore (Atomic.fetch_and_add c.c n)
let incr c = add c 1
let counter_value c = Atomic.get c.c

let gauge name =
  register name
    (fun () -> M_gauge { g_name = name; g = Atomic.make 0.0 })
    (function M_gauge g -> Some g | _ -> None)

let set g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let default_bounds = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]

let histogram ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun k b ->
      if k > 0 && bounds.(k - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    bounds;
  register name
    (fun () ->
      M_histogram
        {
          h_name = name;
          bounds = Array.copy bounds;
          buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
        })
    (function M_histogram h -> Some h | _ -> None)

let rec atomic_add_float a v =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. v)) then atomic_add_float a v

let observe ?(n = 1) h v =
  if n > 0 then begin
    let nb = Array.length h.bounds in
    let rec bucket k = if k >= nb || v <= h.bounds.(k) then k else bucket (k + 1) in
    ignore (Atomic.fetch_and_add h.buckets.(bucket 0) n);
    ignore (Atomic.fetch_and_add h.h_count n);
    atomic_add_float h.h_sum (float_of_int n *. v)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      buckets : int array;
      count : int;
      sum : float;
    }

type snapshot = (string * value) list

(* Read one histogram consistently: the bucket array, count and sum are
   separate atomics, so a concurrent [observe] can land between reads.
   Re-read the count after the pass and retry while it moved; after
   [max_tries] accept the last pass (the residual inconsistency is then
   bounded by the updates of one in-flight [observe], i.e. one bucket
   increment vs count/sum — never a torn value). *)
let read_histogram h =
  let max_tries = 8 in
  let rec go tries =
    let before = Atomic.get h.h_count in
    let buckets = Array.map Atomic.get h.buckets in
    let sum = Atomic.get h.h_sum in
    let after = Atomic.get h.h_count in
    if before = after || tries >= max_tries then
      Histogram { bounds = Array.copy h.bounds; buckets; count = after; sum }
    else go (tries + 1)
  in
  go 1

(* Two phases: collect the metric handles under the registry lock, then
   read every value in one tight allocation-light pass.  Cross-metric
   skew is bounded by the duration of that pass (microseconds — no I/O,
   no lock waits); each individual value is a single atomic read (plus
   the histogram retry above), never torn. *)
let snapshot () =
  Mutex.lock registry_lock;
  let handles = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_lock;
  let handles =
    List.sort (fun (a, _) (b, _) -> String.compare a b) handles
  in
  List.map
    (fun (name, m) ->
      let v =
        match m with
        | M_counter c -> Counter (Atomic.get c.c)
        | M_gauge g -> Gauge (Atomic.get g.g)
        | M_histogram h -> read_histogram h
      in
      (name, v))
    handles

let find snapshot name = List.assoc_opt name snapshot

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips floats; %g keeps integers readable. *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

(* The bare {...} metrics object, for embedding (JSONL snapshot lines,
   health payloads). *)
let json_object snapshot =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun k (name, v) ->
      if k > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape name));
      match v with
      | Counter n ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" n)
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"gauge\",\"value\":%s}" (json_float g))
      | Histogram { bounds; buckets; count; sum } ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"bounds\":[%s],\"buckets\":[%s]}"
               count (json_float sum)
               (String.concat ","
                  (List.map json_float (Array.to_list bounds)))
               (String.concat ","
                  (List.map string_of_int (Array.to_list buckets)))))
    snapshot;
  Buffer.add_string buf "}";
  Buffer.contents buf

let to_json snapshot =
  Printf.sprintf "{\"metrics\":%s}\n" (json_object snapshot)

let hist_cell bounds buckets count sum =
  let mean = if count = 0 then 0.0 else sum /. float_of_int count in
  let cells = ref [] in
  Array.iteri
    (fun k n ->
      if n > 0 then
        let label =
          if k < Array.length bounds then
            Printf.sprintf "<=%g" bounds.(k)
          else Printf.sprintf ">%g" bounds.(Array.length bounds - 1)
        in
        cells := Printf.sprintf "%s:%d" label n :: !cells)
    buckets;
  Printf.sprintf "n=%d mean=%.2f  %s" count mean
    (String.concat " " (List.rev !cells))

let pp_table ppf snapshot =
  let rows =
    List.map
      (fun (name, v) ->
        let cell =
          match v with
          | Counter n -> string_of_int n
          | Gauge g -> Printf.sprintf "%.4f" g
          | Histogram { bounds; buckets; count; sum } ->
              hist_cell bounds buckets count sum
        in
        (name, cell))
      snapshot
  in
  let name_w =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 6 rows
  in
  Format.fprintf ppf "%-*s  %s@." name_w "metric" "value";
  Format.fprintf ppf "%s  %s@." (String.make name_w '-') (String.make 12 '-');
  List.iter
    (fun (name, cell) -> Format.fprintf ppf "%-*s  %s@." name_w name cell)
    rows
