type span = {
  name : string;
  cat : string;
  track : int;
  start_us : float;
  dur_us : float;
  depth : int;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Trace epoch: gettimeofday at [enable]; span timestamps are relative
   to it.  The wall clock can step backwards (NTP); [now] monotonizes it
   with a global high-water mark so exported timestamps never regress
   across domains. *)
let epoch = Atomic.make 0.0

let high_water = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let last = Atomic.get high_water in
  if t >= last then
    if Atomic.compare_and_set high_water last t then t else now ()
  else last

let now_us () = (now () -. Atomic.get epoch) *. 1e6

(* Per-domain buffer.  Only its owner domain appends; [reset] is the
   lone cross-domain write and is documented quiescent-only.  Each span
   carries a per-track sequence number taken when it {e opens}, so spans
   whose microsecond timestamps tie still sort parents-before-children
   and in program order. *)
type buffer = {
  track : int;
  mutable depth : int;
  mutable next_seq : int;
  mutable spans_rev : (int * span) list;
}

let registry_lock = Mutex.create ()
let buffers : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          track = (Domain.self () :> int);
          depth = 0;
          next_seq = 0;
          spans_rev = [];
        }
      in
      Mutex.lock registry_lock;
      buffers := b :: !buffers;
      Mutex.unlock registry_lock;
      b)

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.set epoch (Unix.gettimeofday ());
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.spans_rev <- [];
      b.depth <- 0;
      b.next_seq <- 0)
    !buffers;
  Mutex.unlock registry_lock

let with_span ?(cat = "hbbp") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get key in
    let depth = b.depth in
    b.depth <- depth + 1;
    let seq = b.next_seq in
    b.next_seq <- seq + 1;
    let t0 = now_us () in
    let finish () =
      let dur = Float.max 0.0 (now_us () -. t0) in
      b.depth <- depth;
      b.spans_rev <-
        ( seq,
          { name; cat; track = b.track; start_us = t0; dur_us = dur; depth;
            args } )
        :: b.spans_rev
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let spans () =
  Mutex.lock registry_lock;
  let all = List.concat_map (fun b -> b.spans_rev) !buffers in
  Mutex.unlock registry_lock;
  List.map snd
    (List.sort
       (fun ((seq_a : int), (a : span)) (seq_b, b) ->
         match compare a.start_us b.start_us with
         | 0 ->
             if a.track = b.track then compare seq_a seq_b
             else compare a.track b.track
         | c -> c)
       all)

let span_count () =
  Mutex.lock registry_lock;
  let n = List.fold_left (fun acc b -> acc + List.length b.spans_rev) 0 !buffers in
  Mutex.unlock registry_lock;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun k (key, v) ->
      if k > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (escape key) (escape v)))
    args;
  Buffer.add_string buf "}"

let export () =
  let all = spans () in
  let tracks =
    List.sort_uniq compare (List.map (fun (s : span) -> s.track) all)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"hbbp\"}}";
  List.iter
    (fun track ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d%s\"}}"
           track track (if track = 0 then " (main)" else "")))
    tracks;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":"
           (escape s.name) (escape s.cat) s.start_us s.dur_us s.track);
      add_args buf s.args;
      Buffer.add_string buf "}")
    all;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export ()))
