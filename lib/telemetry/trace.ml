type span = {
  name : string;
  cat : string;
  track : int;
  start_us : float;
  dur_us : float;
  depth : int;
  args : (string * string) list;
}

type event =
  | Counter of {
      e_name : string;
      e_track : int;
      e_ts_us : float;
      e_values : (string * float) list;
    }
  | Instant of {
      e_name : string;
      e_cat : string;
      e_track : int;
      e_ts_us : float;
      e_args : (string * string) list;
    }

(* One atomic word gates every instrumentation site: bit 0 = span
   recording (tracing proper), bit 1 = boundary hooks armed (runtime
   profiler probe and/or snapshot tick).  The disabled [with_span] fast
   path is a single atomic load and compare with zero — the same cost
   as the original boolean — which is what keeps the disabled span
   budget at ~2 ns. *)
let trace_bit = 1
let hook_bit = 2
let mode = Atomic.make 0

let enabled () = Atomic.get mode land trace_bit <> 0

(* Span-boundary hooks.  [probe] is consulted at span open/close (the
   runtime profiler captures GC deltas there); [tick] fires once per
   span close (the snapshot emitter counts spans there).  Both are set
   quiescently — before the instrumented work starts — and read without
   a lock; an OCaml ref read cannot tear. *)
type probe = {
  p_open : unit -> unit;
  p_close : name:string -> cat:string -> (string * string) list;
}

let probe : probe option ref = ref None
let tick : (unit -> unit) option ref = ref None

let update_hook_bit () =
  let rec go () =
    let m = Atomic.get mode in
    let m' =
      if !probe <> None || !tick <> None then m lor hook_bit
      else m land lnot hook_bit
    in
    if m <> m' && not (Atomic.compare_and_set mode m m') then go ()
  in
  go ()

let set_probe p =
  probe := p;
  update_hook_bit ()

let set_tick t =
  tick := t;
  update_hook_bit ()

(* Trace epoch: gettimeofday at [enable]; span timestamps are relative
   to it.  The wall clock can step backwards (NTP); [now] monotonizes it
   with a global high-water mark so exported timestamps never regress
   across domains. *)
let epoch = Atomic.make 0.0

let high_water = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let last = Atomic.get high_water in
  if t >= last then
    if Atomic.compare_and_set high_water last t then t else now ()
  else last

let now_us () = (now () -. Atomic.get epoch) *. 1e6

(* Convert an absolute [Unix.gettimeofday] second count into trace
   microseconds, for events recorded outside a span (e.g. the pool's
   task timeline replayed at shutdown). *)
let us_of_abs t = (t -. Atomic.get epoch) *. 1e6

(* Per-domain buffer.  Only its owner domain appends; [reset] is the
   lone cross-domain write and is documented quiescent-only.  Each span
   carries a per-track sequence number taken when it {e opens}, so spans
   whose microsecond timestamps tie still sort parents-before-children
   and in program order. *)
type buffer = {
  track : int;
  mutable depth : int;
  mutable next_seq : int;
  mutable spans_rev : (int * span) list;
  mutable events_rev : event list;
  mutable open_names : string list;
}

let registry_lock = Mutex.create ()
let buffers : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          track = (Domain.self () :> int);
          depth = 0;
          next_seq = 0;
          spans_rev = [];
          events_rev = [];
          open_names = [];
        }
      in
      Mutex.lock registry_lock;
      buffers := b :: !buffers;
      Mutex.unlock registry_lock;
      b)

let current_span () =
  match (Domain.DLS.get key).open_names with
  | name :: _ -> Some name
  | [] -> None

let enable () =
  let rec set_bit () =
    let m = Atomic.get mode in
    if m land trace_bit = 0 then begin
      Atomic.set epoch (Unix.gettimeofday ());
      if not (Atomic.compare_and_set mode m (m lor trace_bit)) then set_bit ()
    end
  in
  set_bit ()

let disable () =
  let rec clear () =
    let m = Atomic.get mode in
    if
      m land trace_bit <> 0
      && not (Atomic.compare_and_set mode m (m land lnot trace_bit))
    then clear ()
  in
  clear ()

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.spans_rev <- [];
      b.events_rev <- [];
      b.open_names <- [];
      b.depth <- 0;
      b.next_seq <- 0)
    !buffers;
  Mutex.unlock registry_lock

let counter ?ts_us name values =
  if Atomic.get mode land trace_bit <> 0 then begin
    let b = Domain.DLS.get key in
    let ts = match ts_us with Some t -> t | None -> now_us () in
    b.events_rev <-
      Counter { e_name = name; e_track = b.track; e_ts_us = ts;
                e_values = values }
      :: b.events_rev
  end

let instant ?(cat = "hbbp") ?(args = []) ?ts_us name =
  if Atomic.get mode land trace_bit <> 0 then begin
    let b = Domain.DLS.get key in
    let ts = match ts_us with Some t -> t | None -> now_us () in
    b.events_rev <-
      Instant { e_name = name; e_cat = cat; e_track = b.track; e_ts_us = ts;
                e_args = args }
      :: b.events_rev
  end

let with_span ?(cat = "hbbp") ?(args = []) name f =
  let m = Atomic.get mode in
  if m = 0 then f ()
  else begin
    let tracing = m land trace_bit <> 0 in
    let b = Domain.DLS.get key in
    let depth = b.depth in
    b.depth <- depth + 1;
    let seq = b.next_seq in
    b.next_seq <- seq + 1;
    (* Probe open runs before the new span is pushed: the GC delta since
       the previous boundary belongs to the {e enclosing} span. *)
    (match !probe with Some p -> p.p_open () | None -> ());
    b.open_names <- name :: b.open_names;
    let t0 = if tracing then now_us () else 0.0 in
    let finish () =
      let probe_args =
        match !probe with Some p -> p.p_close ~name ~cat | None -> []
      in
      if tracing then begin
        let dur = Float.max 0.0 (now_us () -. t0) in
        b.spans_rev <-
          ( seq,
            { name; cat; track = b.track; start_us = t0; dur_us = dur; depth;
              args = args @ probe_args } )
          :: b.spans_rev
      end;
      b.depth <- depth;
      (match b.open_names with _ :: tl -> b.open_names <- tl | [] -> ());
      match !tick with Some t -> t () | None -> ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let spans () =
  Mutex.lock registry_lock;
  let all = List.concat_map (fun b -> b.spans_rev) !buffers in
  Mutex.unlock registry_lock;
  List.map snd
    (List.sort
       (fun ((seq_a : int), (a : span)) (seq_b, b) ->
         match compare a.start_us b.start_us with
         | 0 ->
             if a.track = b.track then compare seq_a seq_b
             else compare a.track b.track
         | c -> c)
       all)

let span_count () =
  Mutex.lock registry_lock;
  let n = List.fold_left (fun acc b -> acc + List.length b.spans_rev) 0 !buffers in
  Mutex.unlock registry_lock;
  n

let events () =
  Mutex.lock registry_lock;
  let all = List.concat_map (fun b -> List.rev b.events_rev) !buffers in
  Mutex.unlock registry_lock;
  let ts = function Counter c -> c.e_ts_us | Instant i -> i.e_ts_us in
  List.stable_sort (fun a b -> compare (ts a) (ts b)) all

let event_count () =
  Mutex.lock registry_lock;
  let n =
    List.fold_left (fun acc b -> acc + List.length b.events_rev) 0 !buffers
  in
  Mutex.unlock registry_lock;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun k (key, v) ->
      if k > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (escape key) (escape v)))
    args;
  Buffer.add_string buf "}"

let export () =
  let all = spans () in
  let evs = events () in
  let tracks =
    List.sort_uniq compare
      (List.map (fun (s : span) -> s.track) all
      @ List.map
          (function Counter c -> c.e_track | Instant i -> i.e_track)
          evs)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"hbbp\"}}";
  List.iter
    (fun track ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d%s\"}}"
           track track (if track = 0 then " (main)" else "")))
    tracks;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":"
           (escape s.name) (escape s.cat) s.start_us s.dur_us s.track);
      add_args buf s.args;
      Buffer.add_string buf "}")
    all;
  List.iter
    (fun e ->
      match e with
      | Counter { e_name; e_track; e_ts_us; e_values } ->
          Buffer.add_string buf
            (Printf.sprintf
               ",{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
               (escape e_name) e_ts_us e_track);
          List.iteri
            (fun k (key, v) ->
              if k > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf
                (Printf.sprintf "\"%s\":%.3f" (escape key) v))
            e_values;
          Buffer.add_string buf "}}"
      | Instant { e_name; e_cat; e_track; e_ts_us; e_args } ->
          Buffer.add_string buf
            (Printf.sprintf
               ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":"
               (escape e_name) (escape e_cat) e_ts_us e_track);
          add_args buf e_args;
          Buffer.add_string buf "}")
    evs;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Atomic publish: an interrupted run leaves the previous trace (or
   nothing), never a torn JSON file Perfetto rejects. *)
let write ~path = Hbbp_durable.Durable.write_file ~fsync:false ~path (export ())
