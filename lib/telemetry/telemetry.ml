type metrics_format = [ `Json | `Table ]

let trace_path : string option ref = ref None
let metrics_format : metrics_format option ref = ref None

let parse_format = function
  | "json" -> Some `Json
  | "table" -> Some `Table
  | other ->
      Printf.eprintf
        "hbbp: ignoring HBBP_METRICS=%s (expected \"json\" or \"table\")\n%!"
        other;
      None

let configure ?trace ?metrics () =
  let trace =
    match trace with
    | Some _ as t -> t
    | None -> Sys.getenv_opt "HBBP_TRACE"
  in
  let metrics =
    match metrics with
    | Some _ as m -> m
    | None -> Option.bind (Sys.getenv_opt "HBBP_METRICS") parse_format
  in
  (match trace with
  | Some path when path <> "" ->
      trace_path := Some path;
      Trace.enable ()
  | Some _ | None -> ());
  match metrics with
  | Some fmt ->
      metrics_format := Some fmt;
      Metrics.enable ()
  | None -> ()

let active () = !trace_path <> None || !metrics_format <> None

let finalize ppf =
  (match !trace_path with
  | Some path ->
      trace_path := None;
      Trace.write ~path;
      Format.fprintf ppf
        "wrote trace %s (%d spans; load in Perfetto or chrome://tracing)@."
        path (Trace.span_count ())
  | None -> ());
  match !metrics_format with
  | Some fmt ->
      metrics_format := None;
      let snapshot = Metrics.snapshot () in
      (match fmt with
      | `Json -> Format.fprintf ppf "%s@?" (Metrics.to_json snapshot)
      | `Table -> Metrics.pp_table ppf snapshot)
  | None -> ()
