type metrics_format = [ `Json | `Table ]

let trace_path : string option ref = ref None
let metrics_format : metrics_format option ref = ref None
let profiling = ref false

let parse_format = function
  | "json" -> Some `Json
  | "table" -> Some `Table
  | other ->
      Printf.eprintf
        "hbbp: ignoring HBBP_METRICS=%s (expected \"json\" or \"table\")\n%!"
        other;
      None

let parse_bool ~var = function
  | "0" | "false" | "no" | "off" -> Some false
  | "1" | "true" | "yes" | "on" -> Some true
  | other ->
      Printf.eprintf "hbbp: ignoring %s=%s (expected a boolean)\n%!" var other;
      None

(* HBBP_ALLOC_SAMPLE accepts a boolean (default rate) or a sampling
   rate in (0, 1]. *)
let parse_sample ~var s =
  match parse_bool ~var:"" s with
  | Some true -> Some (Some 1e-3)
  | Some false -> Some None
  | None -> (
      match float_of_string_opt s with
      | Some r when r > 0.0 && r <= 1.0 -> Some (Some r)
      | Some _ | None ->
          Printf.eprintf
            "hbbp: ignoring %s=%s (expected a boolean or a rate in (0,1])\n%!"
            var s;
          None)

let opt_or_env ~parse explicit var =
  match explicit with
  | Some _ as v -> v
  | None -> Option.bind (Sys.getenv_opt var) parse

let configure ?trace ?metrics ?metrics_stream ?stream_every_spans
    ?stream_interval_s ?runtime_profile ?alloc_sample () =
  let trace =
    match trace with Some _ as t -> t | None -> Sys.getenv_opt "HBBP_TRACE"
  in
  let metrics =
    opt_or_env ~parse:parse_format metrics "HBBP_METRICS"
  in
  let metrics_stream =
    match metrics_stream with
    | Some _ as s -> s
    | None -> Sys.getenv_opt "HBBP_METRICS_STREAM"
  in
  let runtime_profile =
    opt_or_env
      ~parse:(parse_bool ~var:"HBBP_RUNTIME_PROFILE")
      runtime_profile "HBBP_RUNTIME_PROFILE"
  in
  let alloc_sample =
    match alloc_sample with
    | Some true -> Some (Some 1e-3)
    | Some false -> Some None
    | None ->
        Option.bind
          (Sys.getenv_opt "HBBP_ALLOC_SAMPLE")
          (parse_sample ~var:"HBBP_ALLOC_SAMPLE")
  in
  (match trace with
  | Some path when path <> "" ->
      trace_path := Some path;
      Trace.enable ()
  | Some _ | None -> ());
  (match metrics with
  | Some fmt ->
      metrics_format := Some fmt;
      Metrics.enable ()
  | None -> ());
  (match metrics_stream with
  | Some path when path <> "" ->
      Snapshot.configure ?every_spans:stream_every_spans
        ?interval_s:stream_interval_s ~path ()
  | Some _ | None -> ());
  (* The runtime profiler rides along whenever any sink is armed — GC
     attribution is the point of tracing/metering a run — unless
     explicitly opted out ([~runtime_profile:false] /
     HBBP_RUNTIME_PROFILE=0). *)
  let any_sink =
    !trace_path <> None || !metrics_format <> None || Snapshot.active ()
  in
  let want_profile =
    match runtime_profile with Some b -> b | None -> any_sink
  in
  if want_profile then begin
    Runtime_profiler.enable ();
    profiling := true;
    match alloc_sample with
    | Some (Some rate) ->
        ignore (Runtime_profiler.arm_sampler ~sampling_rate:rate ())
    | Some None | None -> ()
  end

let active () =
  !trace_path <> None || !metrics_format <> None || Snapshot.active ()
  || !profiling

(* Mirror the retry/durable-write tallies into the registry as
   counters (delta-based, so repeated folds never double-count) the
   same way the CLI mirrors [Faults.tally] as [faults.*]. *)
let fold_resilience_tallies () =
  List.iter
    (fun (k, v) ->
      let c = Metrics.counter k in
      let cur = Metrics.counter_value c in
      if v > cur then Metrics.add c (v - cur))
    (Hbbp_durable.Retry.tally () @ Hbbp_durable.Durable.tally ())

let health () =
  fold_resilience_tallies ();
  Health.evaluate (Metrics.snapshot ())

(* Teardown order matters: the profiler probe and the snapshot tick go
   first (so the final trace/metrics flushes see quiescent hooks), then
   outputs are written, then both subsystems are disabled and cleared so
   a span opened after finalize is a ~2 ns no-op and a later [configure]
   starts from scratch. *)
let finalize ppf =
  if !profiling then begin
    Runtime_profiler.disable ();
    profiling := false
  end;
  fold_resilience_tallies ();
  Snapshot.finalize ();
  (match !trace_path with
  | Some path ->
      trace_path := None;
      Trace.write ~path;
      Format.fprintf ppf
        "wrote trace %s (%d spans; load in Perfetto or chrome://tracing)@."
        path (Trace.span_count ())
  | None -> ());
  (match !metrics_format with
  | Some fmt ->
      metrics_format := None;
      let snapshot = Metrics.snapshot () in
      (match fmt with
      | `Json -> Format.fprintf ppf "%s@?" (Metrics.to_json snapshot)
      | `Table -> Metrics.pp_table ppf snapshot)
  | None -> ());
  Trace.disable ();
  Trace.reset ();
  Metrics.disable ();
  Metrics.reset ()
