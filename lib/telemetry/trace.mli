(** Structured span tracing with Chrome [trace_event] JSON export.

    Spans nest: [with_span] opens a span, runs the thunk, and records
    the span when the thunk returns (or raises).  Each domain owns a
    private span buffer keyed by its domain id — the trace's track —
    so tracing from inside a {!Hbbp_util.Domain_pool} worker is safe
    and renders each domain as its own row in Perfetto /
    [chrome://tracing].

    Tracing is {b off by default}.  A disabled [with_span] costs one
    atomic load and a closure call — nothing is timestamped, allocated
    or recorded — which is what keeps the instrumented pipeline's
    disabled overhead within noise (the bench [telemetry] target
    measures exactly this).  Timestamps come from a monotonized
    wall-clock (strictly non-decreasing across all domains).

    Beyond spans, the module records {e counter} samples (rendered as
    counter tracks — e.g. heap size over time) and {e instant} events
    (vertical markers — e.g. a major GC), and exposes two span-boundary
    hooks: a {!probe} the runtime profiler uses to capture GC deltas
    per span, and a per-close {!set_tick} callback the snapshot emitter
    counts spans with.  Hooks arm the instrumentation sites without
    turning span recording on, so a metrics-stream-only run still pays
    nothing for trace buffers. *)

type span = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. ["pipeline"]. *)
  track : int;  (** Domain id — the [tid] of the exported event. *)
  start_us : float;  (** Microseconds since {!enable}. *)
  dur_us : float;
  depth : int;  (** Nesting depth within its track (0 = top level). *)
  args : (string * string) list;
}

(** A non-span trace event: a counter sample (Chrome ["ph":"C"], shown
    as a counter track) or an instant marker (["ph":"i"]). *)
type event =
  | Counter of {
      e_name : string;
      e_track : int;
      e_ts_us : float;
      e_values : (string * float) list;
    }
  | Instant of {
      e_name : string;
      e_cat : string;
      e_track : int;
      e_ts_us : float;
      e_args : (string * string) list;
    }

val enabled : unit -> bool
val enable : unit -> unit

(** [disable] stops recording; already-recorded spans survive until
    {!reset}. *)
val disable : unit -> unit

(** Drop every recorded span and event.  Call only when no span is in
    flight. *)
val reset : unit -> unit

(** [with_span name f] — run [f] inside a span.  [args] become the
    Chrome event's [args] object; keep them cheap, they are evaluated
    by the caller even when tracing is disabled. *)
val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [counter name values] — record one sample of the named counter
    track ([values] are series-name/value pairs plotted together).
    No-op unless tracing is enabled.  [ts_us] overrides the timestamp
    (trace microseconds, see {!us_of_abs}) for retroactive samples. *)
val counter : ?ts_us:float -> string -> (string * float) list -> unit

(** [instant name] — record an instant marker (thread scope).  No-op
    unless tracing is enabled. *)
val instant :
  ?cat:string -> ?args:(string * string) list -> ?ts_us:float -> string ->
  unit

(** Innermost span currently open on {e this} domain, if any — the
    attribution target for sampled allocations. *)
val current_span : unit -> string option

(** {1 Span-boundary hooks} *)

(** [p_open] runs when a span opens, [p_close] when it closes; the args
    [p_close] returns are appended to the recorded span.  Both run even
    when span recording is off (the hook arms the sites), so a
    metrics-only run still gets GC deltas. *)
type probe = {
  p_open : unit -> unit;
  p_close : name:string -> cat:string -> (string * string) list;
}

(** Install (or clear, with [None]) the span-boundary probe.  Set only
    while no span is in flight. *)
val set_probe : probe option -> unit

(** Install (or clear) the per-span-close tick callback.  Set only
    while no span is in flight. *)
val set_tick : (unit -> unit) option -> unit

(** {1 Reading the buffers} *)

(** All recorded spans across every domain, ordered by start time
    (parents before children). *)
val spans : unit -> span list

val span_count : unit -> int

(** All recorded counter/instant events, ordered by timestamp. *)
val events : unit -> event list

val event_count : unit -> int

(** Convert an absolute [Unix.gettimeofday] time to trace microseconds
    (for [?ts_us] on retroactively recorded events). *)
val us_of_abs : float -> float

(** The full Chrome [trace_event] JSON document ([{"traceEvents": ...}]
    with complete-"X" events, counter-"C" and instant-"i" events, plus
    thread-name metadata), loadable in Perfetto or [chrome://tracing]. *)
val export : unit -> string

(** [write ~path] — {!export} to a file. *)
val write : path:string -> unit
