(** Structured span tracing with Chrome [trace_event] JSON export.

    Spans nest: [with_span] opens a span, runs the thunk, and records
    the span when the thunk returns (or raises).  Each domain owns a
    private span buffer keyed by its domain id — the trace's track —
    so tracing from inside a {!Hbbp_util.Domain_pool} worker is safe
    and renders each domain as its own row in Perfetto /
    [chrome://tracing].

    Tracing is {b off by default}.  A disabled [with_span] costs one
    atomic load and a closure call — nothing is timestamped, allocated
    or recorded — which is what keeps the instrumented pipeline's
    disabled overhead within noise (the bench [telemetry] target
    measures exactly this).  Timestamps come from a monotonized
    wall-clock (strictly non-decreasing across all domains). *)

type span = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. ["pipeline"]. *)
  track : int;  (** Domain id — the [tid] of the exported event. *)
  start_us : float;  (** Microseconds since {!enable}. *)
  dur_us : float;
  depth : int;  (** Nesting depth within its track (0 = top level). *)
  args : (string * string) list;
}

val enabled : unit -> bool
val enable : unit -> unit

(** [disable] stops recording; already-recorded spans survive until
    {!reset}. *)
val disable : unit -> unit

(** Drop every recorded span.  Call only when no span is in flight. *)
val reset : unit -> unit

(** [with_span name f] — run [f] inside a span.  [args] become the
    Chrome event's [args] object; keep them cheap, they are evaluated
    by the caller even when tracing is disabled. *)
val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** All recorded spans across every domain, ordered by start time
    (parents before children). *)
val spans : unit -> span list

val span_count : unit -> int

(** The full Chrome [trace_event] JSON document ([{"traceEvents": ...}]
    with complete-"X" events plus thread-name metadata), loadable in
    Perfetto or [chrome://tracing]. *)
val export : unit -> string

(** [write ~path] — {!export} to a file. *)
val write : path:string -> unit
