(* Runtime introspection: per-domain GC accounting at span boundaries
   plus an opt-in allocation sampler.

   The profiler installs a {!Trace.probe}: at every span boundary it
   takes [Gc.quick_stat] (domain-local in OCaml 5 — no stop-the-world)
   and folds the delta since the previous boundary on the same domain
   into the metrics registry.  Attribution is {e exclusive}: each
   interval between two boundaries is charged to the innermost span
   open during it, so nested spans never double-count and the per-span
   totals sum to the global ones.  Each span additionally gets
   {e inclusive} deltas (children included) appended to its trace args,
   and the trace grows per-domain counter tracks (heap size, cumulative
   allocation) and instant markers for major collections/compactions.

   Everything here only {e reads} runtime state — Gc counters, the open
   span name — so arming the profiler can never perturb profile bytes
   (test-enforced). *)

module Metrics = Metrics
module Trace = Trace

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                    *)

type dstate = {
  (* quick_stat at span open, one per open span (inclusive deltas). *)
  mutable stack : Gc.stat list;
  (* quick_stat at the last boundary on this domain (exclusive
     attribution). *)
  mutable last : Gc.stat option;
  (* Profiler generation this state belongs to; a boundary under a
     newer generation discards it, so GC activity from a disabled
     period is never attributed after re-enable. *)
  mutable gen : int;
}

(* Bumped by every [enable]. *)
let generation = Atomic.make 0

let key = Domain.DLS.new_key (fun () -> { stack = []; last = None; gen = 0 })

(* Total words allocated according to one quick_stat: minor + major
   minus promoted (promoted words would otherwise count twice). *)
let allocated_words (s : Gc.stat) =
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

type delta = {
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  d_allocated_words : float;
  d_promoted_words : float;
}

let delta ~(prev : Gc.stat) ~(cur : Gc.stat) =
  {
    d_minor_collections = cur.Gc.minor_collections - prev.Gc.minor_collections;
    d_major_collections = cur.Gc.major_collections - prev.Gc.major_collections;
    d_compactions = cur.Gc.compactions - prev.Gc.compactions;
    d_allocated_words = allocated_words cur -. allocated_words prev;
    d_promoted_words = cur.Gc.promoted_words -. prev.Gc.promoted_words;
  }

(* Charge an inter-boundary interval: global gc.* totals, plus the
   exclusive per-span allocation account when a span was open. *)
let attribute span (d : delta) =
  if Metrics.enabled () then begin
    let c name n = if n > 0 then Metrics.add (Metrics.counter name) n in
    c "gc.minor_collections" d.d_minor_collections;
    c "gc.major_collections" d.d_major_collections;
    c "gc.compactions" d.d_compactions;
    c "gc.allocated_words" (int_of_float d.d_allocated_words);
    c "gc.promoted_words" (int_of_float d.d_promoted_words);
    match span with
    | Some name when d.d_allocated_words > 0.0 ->
        Metrics.add
          (Metrics.counter (Printf.sprintf "alloc.span.%s.words" name))
          (int_of_float d.d_allocated_words)
    | Some _ | None -> ()
  end

let note_heap (s : Gc.stat) =
  if Metrics.enabled () then begin
    Metrics.set (Metrics.gauge "gc.heap_words") (float_of_int s.Gc.heap_words);
    Metrics.set
      (Metrics.gauge "gc.top_heap_words")
      (float_of_int s.Gc.top_heap_words)
  end

(* One boundary on this domain: read the GC once, attribute the closed
   interval, advance [last]. *)
let boundary st =
  let g = Atomic.get generation in
  if st.gen <> g then begin
    st.gen <- g;
    st.stack <- [];
    st.last <- None
  end;
  let s = Gc.quick_stat () in
  (match st.last with
  | Some prev -> attribute (Trace.current_span ()) (delta ~prev ~cur:s)
  | None -> ());
  st.last <- Some s;
  s

let probe_open () =
  let st = Domain.DLS.get key in
  let s = boundary st in
  st.stack <- s :: st.stack

let fmt_words w =
  if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let probe_close ~name:_ ~cat:_ =
  let st = Domain.DLS.get key in
  let s = boundary st in
  match st.stack with
  | [] -> []
  | s0 :: rest ->
      st.stack <- rest;
      let d = delta ~prev:s0 ~cur:s in
      if Trace.enabled () then begin
        Trace.counter "gc"
          [
            ("heap_words", float_of_int s.Gc.heap_words);
            ("allocated_words", allocated_words s);
          ];
        if d.d_major_collections > 0 then
          Trace.instant ~cat:"gc"
            ~args:[ ("major_collections", string_of_int d.d_major_collections) ]
            "gc.major";
        if d.d_compactions > 0 then
          Trace.instant ~cat:"gc"
            ~args:[ ("compactions", string_of_int d.d_compactions) ]
            "gc.compact"
      end;
      (* Inclusive per-span args: only the non-zero ones, so quiet spans
         stay compact in the trace. *)
      let args = ref [] in
      if d.d_allocated_words > 0.0 then
        args := ("gc.alloc", fmt_words d.d_allocated_words) :: !args;
      if d.d_promoted_words > 0.0 then
        args := ("gc.promoted", fmt_words d.d_promoted_words) :: !args;
      if d.d_minor_collections > 0 then
        args := ("gc.minor", string_of_int d.d_minor_collections) :: !args;
      if d.d_major_collections > 0 then
        args := ("gc.major", string_of_int d.d_major_collections) :: !args;
      note_heap s;
      !args

(* ------------------------------------------------------------------ *)
(* Allocation sampler                                                  *)

type sampler_mode = Sampler_off | Sampler_memprof | Sampler_words

let sampler = ref Sampler_off
let sampler_mode () = !sampler

let sampler_mode_name = function
  | Sampler_off -> "off"
  | Sampler_memprof -> "memprof"
  | Sampler_words -> "words-fallback"

(* Attribute one sampled allocation to the innermost open span of the
   allocating domain.  Pure accounting — returns [None] so memprof
   never tracks the block further. *)
let on_sample (a : Gc.Memprof.allocation) =
  if Metrics.enabled () then begin
    Metrics.add (Metrics.counter "alloc.samples") a.Gc.Memprof.n_samples;
    Metrics.add (Metrics.counter "alloc.sampled_words") a.Gc.Memprof.size;
    match Trace.current_span () with
    | Some name ->
        Metrics.add
          (Metrics.counter (Printf.sprintf "alloc.span.%s.samples" name))
          a.Gc.Memprof.n_samples
    | None -> ()
  end;
  None

(* [Gc.Memprof.start] compiles on every OCaml 5 but raises
   [Failure "not implemented in multicore"] on 5.1/5.2 (statmemprof
   returns in 5.3).  Degrade to the quick_stat word accounting the
   boundary probe already performs, and say which mode is live. *)
let arm_sampler ?(sampling_rate = 1e-3) () =
  (match !sampler with
  | Sampler_memprof -> Gc.Memprof.stop ()
  | Sampler_off | Sampler_words -> ());
  sampler :=
    (try
       let _ =
         Gc.Memprof.start ~sampling_rate ~callstack_size:0
           { Gc.Memprof.null_tracker with
             alloc_minor = on_sample;
             alloc_major = on_sample;
           }
       in
       Sampler_memprof
     with Failure _ -> Sampler_words);
  if Metrics.enabled () then
    Metrics.set
      (Metrics.gauge "alloc.sampler_memprof")
      (match !sampler with Sampler_memprof -> 1.0 | _ -> 0.0);
  !sampler

let disarm_sampler () =
  (match !sampler with
  | Sampler_memprof -> ( try Gc.Memprof.stop () with Failure _ -> ())
  | Sampler_off | Sampler_words -> ());
  sampler := Sampler_off

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.incr generation;
    Atomic.set enabled_flag true;
    Trace.set_probe (Some { Trace.p_open = probe_open; p_close = probe_close })
  end

let disable () =
  if Atomic.get enabled_flag then begin
    Trace.set_probe None;
    disarm_sampler ();
    Atomic.set enabled_flag false
  end

(* Point-in-time GC reading, independent of span boundaries — the
   doctor uses it to bracket whole analysis runs. *)
let current_stat () = Gc.quick_stat ()
