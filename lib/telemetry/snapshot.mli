(** Continuous metric export: full registry snapshots appended to a
    JSONL file while the run executes, plus a bounded in-memory ring of
    the most recent lines.

    Emission is driven by span closes (no background thread): a
    snapshot is written when [every_spans] spans have closed since the
    last one, or when [interval_s] seconds have passed — whichever
    comes first.  Each line is

    {v {"seq":N,"elapsed_s":S,"spans_closed":M,"metrics":{...}} v}

    where [seq] increases by exactly 1 per line (a gap-free monotonic
    sequence — a consumer can detect truncation), [elapsed_s] is the
    offset from {!configure}, and [metrics] is one consistent
    {!Metrics.snapshot} pass.  The CLI arms this via
    [--metrics-stream FILE] or [HBBP_METRICS_STREAM]. *)

(** [configure ~path ()] — open (truncate) [path], enable the metrics
    registry, and install the span-close tick.  [every_spans] defaults
    to 64, [interval_s] to 1.0, [retention] (ring size) to 128.
    Reconfiguring closes the previous stream. *)
val configure :
  ?every_spans:int -> ?interval_s:float -> ?retention:int -> path:string ->
  unit -> unit

val active : unit -> bool

(** Lines emitted so far (the next line's [seq]). *)
val seq : unit -> int

val path : unit -> string option

(** Force one emission now (e.g. at a phase boundary). *)
val emit_now : unit -> unit

(** The retained ring, oldest first, as [(seq, line)] pairs — the live
    view a status endpoint serves without re-reading the file. *)
val recent : unit -> (int * string) list

(** Emit one final snapshot, close the file, remove the tick.
    Idempotent. *)
val finalize : unit -> unit

val default_every_spans : int
val default_interval_s : float
val default_retention : int
