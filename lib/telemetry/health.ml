(* Health rollup: one typed verdict over the metrics registry.

   Every subsystem already reports what went wrong through its own
   metrics — degraded reconstructions, flow-conservation violations,
   LBR stream failures, injected faults, pool utilization, GC pressure.
   This module is the single place that reads them back and folds them
   into [Ok | Warn | Critical], so the CLI (and CI) ask one question
   instead of re-deriving thresholds per caller. *)

type status = Ok | Warn of string list | Critical of string list

type thresholds = {
  warn_stream_failure : float;
  crit_stream_failure : float;
  warn_pool_utilization : float;
  warn_promotion_share : float;
  min_words_for_gc_verdict : float;
}

(* warn_stream_failure mirrors Pipeline.default_thresholds
   .max_stream_failure (0.10): the same line the analyzer uses to
   declare the LBR channel starved. *)
let default_thresholds =
  {
    warn_stream_failure = 0.10;
    crit_stream_failure = 0.50;
    warn_pool_utilization = 0.50;
    warn_promotion_share = 0.40;
    min_words_for_gc_verdict = 1e6;
  }

let counter snap name =
  match Metrics.find snap name with Some (Metrics.Counter n) -> n | _ -> 0

let gauge snap name =
  match Metrics.find snap name with Some (Metrics.Gauge v) -> Some v | _ -> None

(* Sum of every counter under a dotted prefix, e.g. "faults.". *)
let prefix_sum snap prefix =
  List.fold_left
    (fun acc (name, v) ->
      match v with
      | Metrics.Counter n when String.starts_with ~prefix name -> acc + n
      | _ -> acc)
    0 snap

let evaluate ?(thresholds = default_thresholds) (snap : Metrics.snapshot) =
  let warns = ref [] and crits = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warns := s :: !warns) fmt in
  let crit fmt = Printf.ksprintf (fun s -> crits := s :: !crits) fmt in

  (* Reconstruction integrity: a flow-conservation violation means the
     fused BBEC is internally inconsistent — nothing downstream of it
     can be trusted. *)
  let flow = counter snap "verify.flow_violations" in
  if flow > 0 then
    crit "verify: %d flow-conservation violation%s (conservation_error %.4f)"
      flow
      (if flow = 1 then "" else "s")
      (Option.value ~default:0.0 (gauge snap "verify.conservation_error"));

  (* Channel health. *)
  (match gauge snap "lbr.stream_failure_rate" with
  | Some r when r >= thresholds.crit_stream_failure ->
      crit "lbr: stream failure rate %.2f >= %.2f" r
        thresholds.crit_stream_failure
  | Some r when r >= thresholds.warn_stream_failure ->
      warn "lbr: stream failure rate %.2f >= %.2f" r
        thresholds.warn_stream_failure
  | Some _ | None -> ());
  let stuck =
    counter snap "pmu.lbr_stuck_snapshots"
    + counter snap "pmu.lbr_misrotated_snapshots"
  in
  if stuck > 0 then
    warn "pmu: %d stuck/misrotated LBR snapshot%s" stuck
      (if stuck = 1 then "" else "s");

  (* Degraded reconstructions: the pipeline already decided these runs
     are below its quality bar; surface the count and the dominant
     causes. *)
  let degraded = counter snap "degrade.reconstructions" in
  if degraded > 0 then begin
    let cause name label =
      let n = counter snap name in
      if n > 0 then Some (Printf.sprintf "%s %d" label n) else None
    in
    let causes =
      List.filter_map Fun.id
        [
          cause "degrade.fallback_ebs_only" "ebs-only-fallback";
          cause "degrade.fallback_lbr_only" "lbr-only-fallback";
          cause "degrade.archive_faults" "archive-faults";
          cause "degrade.lost_records" "lost-records";
          cause "degrade.flow_violations" "flow-violations";
        ]
    in
    warn "degrade: %d degraded reconstruction%s%s" degraded
      (if degraded = 1 then "" else "s")
      (if causes = [] then "" else " (" ^ String.concat ", " causes ^ ")")
  end;

  (* Injected faults are expected in chaos runs but never in a clean
     one — a warning keeps them visible either way. *)
  let faults = prefix_sum snap "faults." in
  if faults > 0 then warn "faults: %d injected fault event%s" faults
      (if faults = 1 then "" else "s");

  (* Resilience: exhausted retry budgets mean a durable write
     ultimately failed; taken retries and resume repair work succeeded
     but point at a flaky or interrupted environment. *)
  let exhausted = counter snap "retry.exhausted" in
  if exhausted > 0 then
    crit "retry: %d retry budget%s exhausted (durable write failed)" exhausted
      (if exhausted = 1 then "" else "s");
  let retries = counter snap "retry.attempts" in
  if retries > 0 then
    warn "retry: %d transient I/O failure%s retried" retries
      (if retries = 1 then "" else "s");
  let rewritten = counter snap "recover.shards_rewritten" in
  if rewritten > 0 then
    warn "recover: %d shard%s rewritten on resume (previous run left them torn or stale)"
      rewritten
      (if rewritten = 1 then "" else "s");
  let stuck_workers = counter snap "pool.watchdog_stuck" in
  if stuck_workers > 0 then
    crit "pool: watchdog flagged %d stuck worker report%s" stuck_workers
      (if stuck_workers = 1 then "" else "s");
  let timeouts = counter snap "pool.timeouts" in
  if timeouts > 0 then
    warn "pool: %d task%s cancelled on deadline" timeouts
      (if timeouts = 1 then "" else "s");
  let restores = counter snap "checkpoint.restores" in
  if restores > 0 then
    warn "checkpoint: resumed from checkpoint (%d restore%s)" restores
      (if restores = 1 then "" else "s");

  (* Parallel efficiency: a busy pool that spent most of its time
     waiting is the signature `hbbp doctor` attributes in depth. *)
  (match (counter snap "pool.tasks", gauge snap "pool.utilization") with
  | tasks, Some u when tasks > 0 && u < thresholds.warn_pool_utilization ->
      warn "pool: utilization %.2f < %.2f over %d tasks (try `hbbp doctor`)" u
        thresholds.warn_pool_utilization tasks
  | _ -> ());

  (* GC pressure: a high promoted/allocated share means the run churns
     mid-life data through the major heap. Only judged once enough words
     have been allocated for the ratio to mean anything. *)
  let allocated = float_of_int (counter snap "gc.allocated_words") in
  let promoted = float_of_int (counter snap "gc.promoted_words") in
  if allocated >= thresholds.min_words_for_gc_verdict then begin
    let share = promoted /. allocated in
    if share >= thresholds.warn_promotion_share then
      warn "gc: promotion share %.2f >= %.2f (%.0f of %.0f words promoted)"
        share thresholds.warn_promotion_share promoted allocated
  end;

  match (List.rev !crits, List.rev !warns) with
  | [], [] -> Ok
  | [], warns -> Warn warns
  | crits, warns -> Critical (crits @ warns)

let status_name = function
  | Ok -> "ok"
  | Warn _ -> "warn"
  | Critical _ -> "critical"

let reasons = function Ok -> [] | Warn rs -> rs | Critical rs -> rs

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json status =
  Printf.sprintf "{\"status\":\"%s\",\"reasons\":[%s]}" (status_name status)
    (String.concat ","
       (List.map (fun r -> "\"" ^ escape r ^ "\"") (reasons status)))

let pp ppf status =
  Format.fprintf ppf "health: %s@." (status_name status);
  List.iter (fun r -> Format.fprintf ppf "  - %s@." r) (reasons status)
