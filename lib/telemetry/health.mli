(** Health rollup: fold the metrics registry into one typed verdict.

    Every subsystem reports its own trouble through metrics —
    [degrade.*] (reconstruction quality), [verify.*] (flow
    conservation), [lbr.*] / [pmu.*] (channel health), [faults.*]
    (injected faults), [pool.*] (parallel efficiency), [gc.*] (memory
    pressure).  {!evaluate} reads them back with one set of thresholds
    so the CLI ([hbbp stats --health]) and CI ask a single question
    instead of re-deriving cutoffs per caller. *)

type status =
  | Ok
  | Warn of string list  (** Suspicious but usable; human-readable reasons. *)
  | Critical of string list
      (** The run's output should not be trusted (e.g. flow-conservation
          violations).  Reasons list criticals first, then warnings. *)

type thresholds = {
  warn_stream_failure : float;
      (** LBR stream failure rate that draws a warning; the default
          mirrors the pipeline's own starvation cutoff (0.10). *)
  crit_stream_failure : float;
  warn_pool_utilization : float;
      (** Pool utilization below this (with tasks executed) warns and
          points at [hbbp doctor]. *)
  warn_promotion_share : float;
      (** promoted/allocated share above this warns of major-heap churn. *)
  min_words_for_gc_verdict : float;
      (** Allocation volume below which the GC ratio is not judged. *)
}

val default_thresholds : thresholds

val evaluate : ?thresholds:thresholds -> Metrics.snapshot -> status

val status_name : status -> string

(** Criticals first, then warnings; [[]] for [Ok]. *)
val reasons : status -> string list

(** [{"status":"ok"|"warn"|"critical","reasons":[...]}] — no trailing
    newline. *)
val to_json : status -> string

val pp : Format.formatter -> status -> unit
