(* Continuous metric export: periodic full-registry snapshots appended
   as JSONL while a run executes, so long collect/train jobs are
   observable from outside the process before they finish.

   There is no background thread: emission is driven by the span-close
   tick ({!Trace.set_tick}), which fires for every span the pipeline
   already opens — per-task pool spans, per-chunk analyze spans and the
   stage spans give long runs a steady pulse.  A snapshot is emitted
   when either [every_spans] closes have accumulated or [interval_s]
   wall-clock has passed since the last emission, whichever comes
   first.

   Every line carries a monotonic sequence number; the last [retention]
   lines are also kept in an in-memory ring ({!recent}) — the live
   status a future [hbbp serve] endpoint reads without touching the
   file. *)

type t = {
  oc : out_channel;
  path : string;
  every_spans : int;
  interval_s : float;
  t0 : float;
  mutable seq : int;
  (* Cumulative span closes observed via the tick — counted here, not
     via [Trace.span_count], so the field is meaningful with span
     recording off. *)
  mutable closed : int;
  mutable spans_since : int;
  mutable last_emit : float;
  (* Ring of the last [retention] emitted lines, newest at
     [(seq - 1) mod retention]. *)
  ring : string option array;
  lock : Mutex.t;
}

let state : t option ref = ref None

let active () = !state <> None

let default_every_spans = 64
let default_interval_s = 1.0
let default_retention = 128

let now = Unix.gettimeofday

(* One JSONL line.  The metrics object is one consistent registry pass
   (see {!Metrics.snapshot}); [seq] is the line's position in the
   stream, [elapsed_s] the offset from [configure]. *)
let render t =
  Printf.sprintf
    "{\"seq\":%d,\"elapsed_s\":%.6f,\"spans_closed\":%d,\"metrics\":%s}"
    t.seq (now () -. t.t0) t.closed
    (Metrics.json_object (Metrics.snapshot ()))

let emit_locked t =
  let line = render t in
  t.ring.(t.seq mod Array.length t.ring) <- Some line;
  t.seq <- t.seq + 1;
  t.spans_since <- 0;
  t.last_emit <- now ();
  (* One buffered write + flush per line: a crash between lines leaves
     the stream at a line boundary, never inside one. *)
  output_string t.oc (line ^ "\n");
  flush t.oc

let emit_now () =
  match !state with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> emit_locked t)

(* Span-close tick: cheap count-and-compare; the full snapshot price is
   paid only on emission.  Ticks arrive from every domain — the mutex
   serializes emission and ring updates. *)
let tick () =
  match !state with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          t.closed <- t.closed + 1;
          t.spans_since <- t.spans_since + 1;
          if
            t.spans_since >= t.every_spans
            || now () -. t.last_emit >= t.interval_s
          then emit_locked t)

let configure ?(every_spans = default_every_spans)
    ?(interval_s = default_interval_s) ?(retention = default_retention) ~path
    () =
  if every_spans < 1 then
    invalid_arg "Snapshot.configure: every_spans must be at least 1";
  if retention < 1 then
    invalid_arg "Snapshot.configure: retention must be at least 1";
  (match !state with
  | Some t ->
      (* Reconfigure: close the previous stream first. *)
      state := None;
      Trace.set_tick None;
      close_out_noerr t.oc
  | None -> ());
  let oc = open_out path in
  let t =
    {
      oc;
      path;
      every_spans;
      interval_s;
      t0 = now ();
      seq = 0;
      closed = 0;
      spans_since = 0;
      last_emit = now ();
      ring = Array.make retention None;
      lock = Mutex.create ();
    }
  in
  state := Some t;
  Metrics.enable ();
  Trace.set_tick (Some tick)

let seq () = match !state with None -> 0 | Some t -> t.seq
let path () = Option.map (fun t -> t.path) !state

let recent () =
  match !state with
  | None -> []
  | Some t ->
      Mutex.lock t.lock;
      let n = Array.length t.ring in
      let lines = ref [] in
      (* Oldest retained first: seq - retention .. seq - 1. *)
      for s = max 0 (t.seq - n) to t.seq - 1 do
        match t.ring.(s mod n) with
        | Some line -> lines := (s, line) :: !lines
        | None -> ()
      done;
      Mutex.unlock t.lock;
      List.rev !lines

(* Final snapshot + teardown.  Idempotent. *)
let finalize () =
  match !state with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> emit_locked t);
      state := None;
      Trace.set_tick None;
      close_out_noerr t.oc
