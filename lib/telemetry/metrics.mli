(** A process-wide metrics registry: counters, gauges and fixed-bucket
    histograms.

    Every update is a single atomic operation, so metrics may be fed
    concurrently from {!Hbbp_util.Domain_pool} workers without locks or
    lost updates.  Metrics are registered by name on first use; asking
    for the same name again returns the same metric, asking for it as a
    different kind raises [Invalid_argument].

    The registry is {b off by default}: nothing in the pipeline records
    into it unless {!enable} has been called (the instrumented code
    guards its recording on {!enabled}), so the disabled cost is one
    boolean load per potential recording site. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Drop every registered metric (registrations and values). *)
val reset : unit -> unit

(** {1 Metric kinds} *)

val counter : string -> counter
val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [histogram ?bounds name] — fixed buckets: one per upper bound
    (strictly increasing; a value [v] lands in the first bucket with
    [v <= bound]) plus an overflow bucket.  Bounds are fixed at first
    registration. *)
val histogram : ?bounds:float array -> string -> histogram

val default_bounds : float array

(** [observe ?n h v] — record [n] (default 1) observations of [v]. *)
val observe : ?n:int -> histogram -> float -> unit

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      buckets : int array;  (** [Array.length bounds + 1] (overflow last). *)
      count : int;
      sum : float;
    }

(** Sorted by metric name. *)
type snapshot = (string * value) list

(** One consistent pass over the registry: metric handles are collected
    under the registry lock, then every value is read in a single tight
    loop.  Each value is one atomic read; histograms re-read their
    count around the bucket pass and retry while it moves, so a
    histogram's [count]/[buckets]/[sum] agree unless an [observe] is
    in flight for the entire retry window (at most one update of skew,
    never a torn value).  Cross-metric skew is bounded by the duration
    of the read pass itself — no I/O or lock waits happen inside it —
    so a snapshot never mixes values from two distinct instants further
    apart than that pass. *)
val snapshot : unit -> snapshot

val find : snapshot -> string -> value option
val to_json : snapshot -> string

(** The bare [{...}] metrics object without the [{"metrics": ...}]
    wrapper or trailing newline — for embedding in JSONL stream lines
    and health payloads. *)
val json_object : snapshot -> string
val pp_table : Format.formatter -> snapshot -> unit
