(** Runtime introspection: per-domain GC accounting at span boundaries
    plus an opt-in allocation sampler.

    When enabled, every {!Trace.with_span} boundary takes a domain-local
    [Gc.quick_stat] and accounts the delta since the previous boundary
    on that domain:

    - globally, as [gc.minor_collections], [gc.major_collections],
      [gc.compactions], [gc.allocated_words], [gc.promoted_words]
      counters and [gc.heap_words] / [gc.top_heap_words] gauges;
    - {e exclusively} per innermost open span, as
      [alloc.span.<name>.words] counters (nested spans never
      double-count; span totals sum to the global total);
    - in the trace, as per-domain ["gc"] counter tracks (heap size,
      cumulative allocation — Perfetto renders them as graphs aligned
      with the pipeline stages), ["gc.major"] / ["gc.compact"] instant
      markers, and inclusive [gc.*] args on each span.

    The profiler only {e reads} runtime state, so arming it cannot
    change profile bytes (test-enforced).  Overhead is two
    [Gc.quick_stat] calls per span, paid only while enabled; the
    disabled cost of an instrumentation site is unchanged. *)

val enabled : unit -> bool

(** Install the span-boundary probe ({!Trace.set_probe}).  GC metrics
    flow only while {!Metrics.enabled}; trace tracks only while
    {!Trace.enabled}. *)
val enable : unit -> unit

(** Remove the probe and disarm the sampler.  Call only while no span
    is in flight. *)
val disable : unit -> unit

(** {1 Allocation sampler} *)

type sampler_mode =
  | Sampler_off
  | Sampler_memprof  (** statmemprof live ([Gc.Memprof]). *)
  | Sampler_words
      (** [Gc.Memprof.start] unavailable on this runtime (OCaml 5.1/5.2
          multicore raises) — allocation attribution falls back to the
          boundary probe's quick_stat word deltas. *)

(** [arm_sampler ?sampling_rate ()] — try to start [Gc.Memprof] with a
    tracker that attributes each sampled allocation to the innermost
    open span ([alloc.samples], [alloc.sampled_words],
    [alloc.span.<name>.samples]); returns the mode actually armed.
    The tracker never retains blocks, so sampling cannot perturb
    results. *)
val arm_sampler : ?sampling_rate:float -> unit -> sampler_mode

val disarm_sampler : unit -> unit
val sampler_mode : unit -> sampler_mode
val sampler_mode_name : sampler_mode -> string

(** A point-in-time [Gc.quick_stat], for bracketing whole runs (the
    doctor's per-domain GC deltas). *)
val current_stat : unit -> Gc.stat
