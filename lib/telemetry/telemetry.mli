(** Front-door configuration glue used by the CLI, the bench driver and
    the examples: turn the observability subsystems on from explicit
    settings or the environment, and flush everything once at the end of
    a run.

    Subsystems and their sources (explicit argument wins, then the
    environment variable, then off):

    - span tracing → Chrome trace file: [?trace] / [HBBP_TRACE=FILE]
    - metrics snapshot printed at exit: [?metrics] / [HBBP_METRICS=json|table]
    - continuous JSONL metric stream ({!Snapshot}): [?metrics_stream] /
      [HBBP_METRICS_STREAM=FILE]
    - runtime profiler ({!Runtime_profiler}): on automatically whenever
      any of the above is armed; opt out with [~runtime_profile:false] /
      [HBBP_RUNTIME_PROFILE=0], force on with [true] / [=1]
    - allocation sampler: opt in with [~alloc_sample:true] /
      [HBBP_ALLOC_SAMPLE=1] (or a sampling rate in (0,1]) *)

type metrics_format = [ `Json | `Table ]

(** [configure ()] — arm the subsystems listed above.  Calling it again
    re-applies (a second stream path reopens the stream; everything else
    is idempotent). *)
val configure :
  ?trace:string ->
  ?metrics:metrics_format ->
  ?metrics_stream:string ->
  ?stream_every_spans:int ->
  ?stream_interval_s:float ->
  ?runtime_profile:bool ->
  ?alloc_sample:bool ->
  unit ->
  unit

(** True when {!configure} armed anything. *)
val active : unit -> bool

(** The {!Health} verdict over the current metrics registry. *)
val health : unit -> Health.status

(** [finalize ppf] — flush and tear everything down: disable the
    profiler, emit the final stream snapshot and close the stream, write
    the trace file, print the metrics snapshot to [ppf], then disable
    {e and reset} tracing and metrics.  After [finalize] an instrumented
    span is a ~2 ns no-op again, and a later {!configure} starts from an
    empty registry.  Idempotent. *)
val finalize : Format.formatter -> unit
