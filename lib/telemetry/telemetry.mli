(** Front-door configuration glue used by the CLI, the bench driver and
    the examples: turn tracing/metrics on from explicit settings or the
    [HBBP_TRACE] / [HBBP_METRICS] environment variables, and flush the
    results once at the end of a run. *)

type metrics_format = [ `Json | `Table ]

(** [configure ?trace ?metrics ()] — enable tracing and/or metrics.
    Explicit arguments win; absent ones fall back to the environment:
    [HBBP_TRACE=FILE] sets the trace output path, [HBBP_METRICS=json]
    or [=table] selects the snapshot format (anything else draws a
    one-line warning on stderr and is ignored).  When neither source
    sets a value, the corresponding subsystem stays off. *)
val configure : ?trace:string -> ?metrics:metrics_format -> unit -> unit

(** True when {!configure} armed tracing or metrics. *)
val active : unit -> bool

(** [finalize ppf] — write the trace file (if tracing was configured)
    and print the metrics snapshot in the configured format to [ppf].
    Idempotent: a second call without a new {!configure} does
    nothing. *)
val finalize : Format.formatter -> unit
