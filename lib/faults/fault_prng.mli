(** Deterministic splitmix64 stream private to the fault-injection
    subsystem.

    [hbbp_faults] sits {e below} [hbbp_cpu] in the library stack (the CPU's
    PMU consumes fault decisions), so it cannot reuse {!Hbbp_cpu.Prng};
    this is the same splitmix64 algorithm, kept separate so arming a
    fault plan never perturbs the simulation's own random streams. *)

type t

val create : seed:int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] — uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** [float t] — uniform in [0, 1). *)
val float : t -> float

(** [bool t p] — true with probability [p]; draws nothing when [p <= 0]. *)
val bool : t -> float -> bool
