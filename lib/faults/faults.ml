(* Armed plan: written only by arm/disarm (test setup, CLI front door),
   read by injector constructors.  An Atomic so concurrent Domain_pool
   workers constructing PMUs see a consistent value. *)
let current : Fault_plan.t option Atomic.t = Atomic.make None

let arm plan = Atomic.set current (Some plan)
let disarm () = Atomic.set current None
let armed () = Atomic.get current <> None
let plan () = Atomic.get current

(* ------------------------------------------------------------------ *)
(* Tally                                                               *)

let tally_names =
  [
    "pmu.samples_dropped";
    "pmu.extra_skid";
    "lbr.forced_stuck";
    "lbr.forced_misrotated";
    "lbr.truncated_snapshots";
    "records.dropped_comm";
    "records.dropped_mmap";
    "records.dropped_sample";
    "records.reordered_windows";
    "archive.bit_flips";
    "archive.truncated_bytes";
    "io.enospc";
    "io.partial_write";
    "io.eintr";
    "io.rename_fail";
    "io.fsync_fail";
  ]

let cells : (string * int Atomic.t) list =
  List.map (fun n -> (n, Atomic.make 0)) tally_names

let bump name n =
  match List.assoc_opt name cells with
  | Some c -> ignore (Atomic.fetch_and_add c n)
  | None -> ()

let tally () =
  List.filter_map
    (fun (n, c) ->
      let v = Atomic.get c in
      if v > 0 then Some (n, v) else None)
    cells

let reset_tally () = List.iter (fun (_, c) -> Atomic.set c 0) cells

(* ------------------------------------------------------------------ *)
(* PMU layer                                                           *)

type pmu_injector = {
  pmu : Fault_plan.pmu;
  prng : Fault_prng.t;
  mutable sample_idx : int;
  mutable burst_left : int;
}

let pmu_injector () =
  match Atomic.get current with
  | Some p when Fault_plan.pmu_active p.Fault_plan.pmu ->
      Some
        {
          pmu = p.Fault_plan.pmu;
          prng = Fault_prng.create ~seed:p.Fault_plan.seed;
          sample_idx = 0;
          burst_left = 0;
        }
  | Some _ | None -> None

let drop_sample inj =
  inj.sample_idx <- inj.sample_idx + 1;
  let p = inj.pmu in
  let drop =
    if inj.burst_left > 0 then begin
      inj.burst_left <- inj.burst_left - 1;
      true
    end
    else if
      p.Fault_plan.burst_every > 0
      && p.Fault_plan.burst_len > 0
      && inj.sample_idx mod p.Fault_plan.burst_every = 0
    then begin
      inj.burst_left <- p.Fault_plan.burst_len - 1;
      true
    end
    else Fault_prng.bool inj.prng p.Fault_plan.drop_rate
  in
  if drop then bump "pmu.samples_dropped" 1;
  drop

let extra_skid inj =
  let p = inj.pmu in
  let extra =
    p.Fault_plan.extra_skid
    + (if p.Fault_plan.jitter > 0 then
         Fault_prng.int inj.prng (p.Fault_plan.jitter + 1)
       else 0)
  in
  if extra > 0 then bump "pmu.extra_skid" 1;
  extra

type lbr_fault = { stick : bool; misrotate : bool; truncate : int }

let lbr_fault inj =
  let p = inj.pmu in
  let stick = Fault_prng.bool inj.prng p.Fault_plan.lbr_stuck_rate in
  let misrotate = Fault_prng.bool inj.prng p.Fault_plan.lbr_misrotate_rate in
  if stick then bump "lbr.forced_stuck" 1;
  if misrotate then bump "lbr.forced_misrotated" 1;
  { stick; misrotate; truncate = p.Fault_plan.lbr_truncate }

(* ------------------------------------------------------------------ *)
(* Collector layer                                                     *)

type stream_injector = { coll : Fault_plan.collector; sprng : Fault_prng.t }

let stream_injector () =
  match Atomic.get current with
  | Some p when Fault_plan.collector_active p.Fault_plan.collector ->
      Some
        {
          coll = p.Fault_plan.collector;
          (* Offset the seed so collector draws never mirror PMU draws. *)
          sprng = Fault_prng.create ~seed:(Int64.add p.Fault_plan.seed 0x5EEDL);
        }
  | Some _ | None -> None

type record_class = Rec_comm | Rec_mmap | Rec_sample | Rec_other

(* Fisher–Yates over one window, in place. *)
let shuffle prng arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Fault_prng.int prng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let apply_stream inj ~classify records =
  let c = inj.coll in
  let dropped = ref 0 in
  let kept =
    List.filter
      (fun r ->
        let rate =
          match classify r with
          | Rec_comm -> c.Fault_plan.drop_comm_rate
          | Rec_mmap -> c.Fault_plan.drop_mmap_rate
          | Rec_sample -> c.Fault_plan.drop_sample_rate
          | Rec_other -> 0.0
        in
        let drop = Fault_prng.bool inj.sprng rate in
        if drop then begin
          incr dropped;
          (match classify r with
          | Rec_comm -> bump "records.dropped_comm" 1
          | Rec_mmap -> bump "records.dropped_mmap" 1
          | Rec_sample -> bump "records.dropped_sample" 1
          | Rec_other -> ())
        end;
        not drop)
      records
  in
  let kept =
    if c.Fault_plan.reorder_window > 1 then begin
      let arr = Array.of_list kept in
      let w = c.Fault_plan.reorder_window in
      let n = Array.length arr in
      let pos = ref 0 in
      while !pos < n do
        let len = min w (n - !pos) in
        if len > 1 then begin
          let window = Array.sub arr !pos len in
          shuffle inj.sprng window;
          Array.blit window 0 arr !pos len;
          bump "records.reordered_windows" 1
        end;
        pos := !pos + w
      done;
      Array.to_list arr
    end
    else kept
  in
  (kept, !dropped)

(* ------------------------------------------------------------------ *)
(* IO layer                                                            *)

type io_injector = { io : Fault_plan.io; iprng : Fault_prng.t }

let io_injector () =
  match Atomic.get current with
  | Some p when Fault_plan.io_active p.Fault_plan.io ->
      Some
        {
          io = p.Fault_plan.io;
          (* Offset the seed so IO draws never mirror the other layers. *)
          iprng = Fault_prng.create ~seed:(Int64.add p.Fault_plan.seed 0x10ADL);
        }
  | Some _ | None -> None

let io_enospc inj =
  let hit = Fault_prng.bool inj.iprng inj.io.Fault_plan.enospc_rate in
  if hit then bump "io.enospc" 1;
  hit

(* A short write keeps at least one byte of progress so the retrying
   write loop always terminates. *)
let io_short_write inj ~len =
  if len > 1 && Fault_prng.bool inj.iprng inj.io.Fault_plan.partial_write_rate
  then begin
    bump "io.partial_write" 1;
    Some (1 + Fault_prng.int inj.iprng (len - 1))
  end
  else None

let io_eintr inj =
  let hit = Fault_prng.bool inj.iprng inj.io.Fault_plan.eintr_rate in
  if hit then bump "io.eintr" 1;
  hit

let io_rename_fail inj =
  let hit = Fault_prng.bool inj.iprng inj.io.Fault_plan.rename_fail_rate in
  if hit then bump "io.rename_fail" 1;
  hit

let io_fsync_fail inj =
  let hit = Fault_prng.bool inj.iprng inj.io.Fault_plan.fsync_fail_rate in
  if hit then bump "io.fsync_fail" 1;
  hit

(* ------------------------------------------------------------------ *)
(* Archive layer                                                       *)

let mangle_archive data =
  match Atomic.get current with
  | Some p when Fault_plan.archive_active p.Fault_plan.archive ->
      let a = p.Fault_plan.archive in
      let prng = Fault_prng.create ~seed:(Int64.add p.Fault_plan.seed 0xA5CL) in
      let n = Bytes.length data in
      let cut =
        if a.Fault_plan.truncate_at > 0 then min a.Fault_plan.truncate_at n
        else if a.Fault_plan.truncate_at < 0 then
          max 0 (n + a.Fault_plan.truncate_at)
        else n
      in
      let out = Bytes.sub data 0 cut in
      if cut < n then bump "archive.truncated_bytes" (n - cut);
      if Bytes.length out > 0 then
        for _ = 1 to a.Fault_plan.bit_flips do
          let off = Fault_prng.int prng (Bytes.length out) in
          let bit = Fault_prng.int prng 8 in
          Bytes.set_uint8 out off (Bytes.get_uint8 out off lxor (1 lsl bit));
          bump "archive.bit_flips" 1
        done;
      out
  | Some _ | None -> data
