(** The global fault-injection switchboard.

    A {!Fault_plan.t} is {e armed} process-wide; each pipeline layer asks
    for its injector at construction time and gets [None] unless a plan
    with faults for that layer is armed.  The disarmed fast path is a
    single load of an immutable [option] field at each hook site —
    provably free (the fault bench and the byte-identity test enforce
    it).

    All injected faults are deterministic: every injector derives its own
    {!Fault_prng} stream from the plan seed, so a given (plan, workload)
    pair always injects the same faults, in parallel runs too.

    Injected faults are tallied in process-wide atomics (see {!tally}) so
    callers can surface them as [faults.*] telemetry metrics or human
    summaries without the faults library depending on the telemetry
    layer. *)

val arm : Fault_plan.t -> unit
val disarm : unit -> unit
val armed : unit -> bool
val plan : unit -> Fault_plan.t option

(** {1 Injected-fault tally} *)

(** Non-zero injected-fault counters since the last {!reset_tally},
    sorted by name (e.g. [pmu.samples_dropped], [records.dropped],
    [archive.bit_flips]). *)
val tally : unit -> (string * int) list

val reset_tally : unit -> unit

(** {1 PMU layer} *)

type pmu_injector

(** [None] when disarmed or the armed plan has no PMU faults. *)
val pmu_injector : unit -> pmu_injector option

(** Decide the fate of one delivered sample record (counts bursts). *)
val drop_sample : pmu_injector -> bool

(** Extra skid (deterministic + jitter draw) for one counter overflow. *)
val extra_skid : pmu_injector -> int

type lbr_fault = {
  stick : bool;  (** Force the stuck-entry[0] quirk on this snapshot. *)
  misrotate : bool;  (** Force a one-slot mis-rotation. *)
  truncate : int;  (** Keep only the newest N entries (0 = keep all). *)
}

(** Corruption decisions for one LBR snapshot. *)
val lbr_fault : pmu_injector -> lbr_fault

(** {1 Collector layer} *)

type stream_injector

(** [None] when disarmed or the armed plan has no collector faults. *)
val stream_injector : unit -> stream_injector option

type record_class = Rec_comm | Rec_mmap | Rec_sample | Rec_other

(** [apply_stream inj ~classify records] — drop records per-class and
    reorder within the plan's window; returns the surviving stream and
    the number of dropped records (so the caller can emit a synthetic
    [Lost] record, the way perf reports ring-buffer loss). *)
val apply_stream :
  stream_injector -> classify:('a -> record_class) -> 'a list -> 'a list * int

(** {1 IO layer}

    Seeded failure decisions for the durable write paths (see
    [Durable]).  One injector is created per durable operation, so
    decisions are deterministic in the (plan seed, op order) pair. *)

type io_injector

(** [None] when disarmed or the armed plan has no [io.*] faults. *)
val io_injector : unit -> io_injector option

(** Should this durable write fail as if the disk were full? *)
val io_enospc : io_injector -> bool

(** [io_short_write inj ~len] — [Some n] (with [1 <= n < len]) to cut
    one [write] syscall short, [None] to let it through whole. *)
val io_short_write : io_injector -> len:int -> int option

(** Should this [write] report [EINTR]? *)
val io_eintr : io_injector -> bool

(** Should the atomic publish [rename] fail transiently? *)
val io_rename_fail : io_injector -> bool

(** Should this [fsync] fail transiently? *)
val io_fsync_fail : io_injector -> bool

(** {1 Archive layer} *)

(** [mangle_archive data] — apply the armed plan's bit flips and
    truncation to a serialized archive; returns [data] unchanged (same
    physical bytes) when disarmed or no archive faults are armed. *)
val mangle_archive : bytes -> bytes
