type pmu = {
  drop_rate : float;
  burst_every : int;
  burst_len : int;
  extra_skid : int;
  jitter : int;
  lbr_truncate : int;
  lbr_stuck_rate : float;
  lbr_misrotate_rate : float;
}

type collector = {
  drop_comm_rate : float;
  drop_mmap_rate : float;
  drop_sample_rate : float;
  reorder_window : int;
}

type archive = { bit_flips : int; truncate_at : int }

type io = {
  enospc_rate : float;
  partial_write_rate : float;
  eintr_rate : float;
  rename_fail_rate : float;
  fsync_fail_rate : float;
}

type t = {
  seed : int64;
  pmu : pmu;
  collector : collector;
  archive : archive;
  io : io;
}

let none =
  {
    seed = 1L;
    pmu =
      {
        drop_rate = 0.0;
        burst_every = 0;
        burst_len = 0;
        extra_skid = 0;
        jitter = 0;
        lbr_truncate = 0;
        lbr_stuck_rate = 0.0;
        lbr_misrotate_rate = 0.0;
      };
    collector =
      {
        drop_comm_rate = 0.0;
        drop_mmap_rate = 0.0;
        drop_sample_rate = 0.0;
        reorder_window = 0;
      };
    archive = { bit_flips = 0; truncate_at = 0 };
    io =
      {
        enospc_rate = 0.0;
        partial_write_rate = 0.0;
        eintr_rate = 0.0;
        rename_fail_rate = 0.0;
        fsync_fail_rate = 0.0;
      };
  }

let pmu_active p =
  p.drop_rate > 0.0
  || (p.burst_every > 0 && p.burst_len > 0)
  || p.extra_skid > 0 || p.jitter > 0 || p.lbr_truncate > 0
  || p.lbr_stuck_rate > 0.0
  || p.lbr_misrotate_rate > 0.0

let collector_active c =
  c.drop_comm_rate > 0.0 || c.drop_mmap_rate > 0.0
  || c.drop_sample_rate > 0.0 || c.reorder_window > 1

let archive_active a = a.bit_flips > 0 || a.truncate_at <> 0

let io_active i =
  i.enospc_rate > 0.0 || i.partial_write_rate > 0.0 || i.eintr_rate > 0.0
  || i.rename_fail_rate > 0.0 || i.fsync_fail_rate > 0.0

(* ------------------------------------------------------------------ *)
(* Spec strings                                                        *)

let ( let* ) = Result.bind

let parse_rate key v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 && f <= 1.0 -> Ok f
  | Some _ -> Error (Printf.sprintf "%s: rate %s not in [0,1]" key v)
  | None -> Error (Printf.sprintf "%s: bad rate %S" key v)

let parse_nat key v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> Ok n
  | Some _ -> Error (Printf.sprintf "%s: %s must be non-negative" key v)
  | None -> Error (Printf.sprintf "%s: bad integer %S" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: bad integer %S" key v)

let apply plan key v =
  let p = plan.pmu and c = plan.collector and a = plan.archive in
  let i = plan.io in
  match key with
  | "seed" -> (
      match Int64.of_string_opt v with
      | Some s -> Ok { plan with seed = s }
      | None -> Error (Printf.sprintf "seed: bad integer %S" v))
  | "pmu.drop" ->
      let* f = parse_rate key v in
      Ok { plan with pmu = { p with drop_rate = f } }
  | "pmu.burst_every" ->
      let* n = parse_nat key v in
      Ok { plan with pmu = { p with burst_every = n } }
  | "pmu.burst_len" ->
      let* n = parse_nat key v in
      Ok { plan with pmu = { p with burst_len = n } }
  | "pmu.skid" ->
      let* n = parse_nat key v in
      Ok { plan with pmu = { p with extra_skid = n } }
  | "pmu.jitter" ->
      let* n = parse_nat key v in
      Ok { plan with pmu = { p with jitter = n } }
  | "lbr.truncate" ->
      let* n = parse_nat key v in
      Ok { plan with pmu = { p with lbr_truncate = n } }
  | "lbr.stuck" ->
      let* f = parse_rate key v in
      Ok { plan with pmu = { p with lbr_stuck_rate = f } }
  | "lbr.misrotate" ->
      let* f = parse_rate key v in
      Ok { plan with pmu = { p with lbr_misrotate_rate = f } }
  | "rec.drop_comm" ->
      let* f = parse_rate key v in
      Ok { plan with collector = { c with drop_comm_rate = f } }
  | "rec.drop_mmap" ->
      let* f = parse_rate key v in
      Ok { plan with collector = { c with drop_mmap_rate = f } }
  | "rec.drop_sample" ->
      let* f = parse_rate key v in
      Ok { plan with collector = { c with drop_sample_rate = f } }
  | "rec.reorder" ->
      let* n = parse_nat key v in
      Ok { plan with collector = { c with reorder_window = n } }
  | "arch.flips" ->
      let* n = parse_nat key v in
      Ok { plan with archive = { a with bit_flips = n } }
  | "arch.truncate" ->
      let* n = parse_int key v in
      Ok { plan with archive = { a with truncate_at = n } }
  | "io.enospc" ->
      let* f = parse_rate key v in
      Ok { plan with io = { i with enospc_rate = f } }
  | "io.partial_write" ->
      let* f = parse_rate key v in
      Ok { plan with io = { i with partial_write_rate = f } }
  | "io.eintr" ->
      let* f = parse_rate key v in
      Ok { plan with io = { i with eintr_rate = f } }
  | "io.rename_fail" ->
      let* f = parse_rate key v in
      Ok { plan with io = { i with rename_fail_rate = f } }
  | "io.fsync_fail" ->
      let* f = parse_rate key v in
      Ok { plan with io = { i with fsync_fail_rate = f } }
  | _ -> Error (Printf.sprintf "unknown fault key %S" key)

let of_string spec =
  let fields =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  if fields = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc field ->
        let* plan = acc in
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" field)
        | Some i ->
            let key = String.trim (String.sub field 0 i) in
            let v =
              String.trim
                (String.sub field (i + 1) (String.length field - i - 1))
            in
            apply plan key v)
      (Ok none) fields

let to_string t =
  let b = Buffer.create 64 in
  let put fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s) fmt
  in
  if t.seed <> none.seed then put "seed=%Ld" t.seed;
  let p = t.pmu in
  if p.drop_rate > 0.0 then put "pmu.drop=%g" p.drop_rate;
  if p.burst_every > 0 then put "pmu.burst_every=%d" p.burst_every;
  if p.burst_len > 0 then put "pmu.burst_len=%d" p.burst_len;
  if p.extra_skid > 0 then put "pmu.skid=%d" p.extra_skid;
  if p.jitter > 0 then put "pmu.jitter=%d" p.jitter;
  if p.lbr_truncate > 0 then put "lbr.truncate=%d" p.lbr_truncate;
  if p.lbr_stuck_rate > 0.0 then put "lbr.stuck=%g" p.lbr_stuck_rate;
  if p.lbr_misrotate_rate > 0.0 then put "lbr.misrotate=%g" p.lbr_misrotate_rate;
  let c = t.collector in
  if c.drop_comm_rate > 0.0 then put "rec.drop_comm=%g" c.drop_comm_rate;
  if c.drop_mmap_rate > 0.0 then put "rec.drop_mmap=%g" c.drop_mmap_rate;
  if c.drop_sample_rate > 0.0 then put "rec.drop_sample=%g" c.drop_sample_rate;
  if c.reorder_window > 0 then put "rec.reorder=%d" c.reorder_window;
  let a = t.archive in
  if a.bit_flips > 0 then put "arch.flips=%d" a.bit_flips;
  if a.truncate_at <> 0 then put "arch.truncate=%d" a.truncate_at;
  let i = t.io in
  if i.enospc_rate > 0.0 then put "io.enospc=%g" i.enospc_rate;
  if i.partial_write_rate > 0.0 then put "io.partial_write=%g" i.partial_write_rate;
  if i.eintr_rate > 0.0 then put "io.eintr=%g" i.eintr_rate;
  if i.rename_fail_rate > 0.0 then put "io.rename_fail=%g" i.rename_fail_rate;
  if i.fsync_fail_rate > 0.0 then put "io.fsync_fail=%g" i.fsync_fail_rate;
  if Buffer.length b = 0 then "seed=1" else Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string t)
