(** A deterministic, seeded description of the faults to inject into one
    run of the PMU → collector → archive pipeline.

    A plan is pure data; it does nothing until armed via {!Faults.arm}.
    Faults live at three layers, matching where real perf-based pipelines
    lose or corrupt data:

    - {b PMU}: sample-record loss (random and bursty — ring-buffer
      overruns), extra skid and PMI delivery jitter, and LBR snapshot
      corruption (forced stuck-entry[0] quirks, mis-rotations,
      truncated snapshots);
    - {b collector}: dropped [Comm]/[Mmap]/[Sample] records and record
      reordering within a bounded window (what a lossy ring buffer and
      an unsynchronised reader do to a perf.data stream);
    - {b archive}: bit flips at seeded offsets and truncation of the
      serialized archive (torn writes, bad storage);
    - {b io}: transient and permanent syscall-level failures at the
      durable write paths ([ENOSPC], short writes, [EINTR], failed
      [rename]/[fsync]) — what a full, slow, or flaky filesystem does
      to an unattended collector.

    Plans parse from compact [key=value] spec strings (the [--faults]
    CLI flag and the [HBBP_FAULTS] environment variable):

    {v seed=7,pmu.drop=0.05,pmu.burst_every=50,pmu.burst_len=4,
       pmu.skid=2,pmu.jitter=3,lbr.truncate=8,lbr.stuck=0.05,
       lbr.misrotate=0.02,rec.drop_sample=0.02,rec.drop_mmap=0.5,
       rec.drop_comm=1.0,rec.reorder=16,arch.flips=3,arch.truncate=-100,
       io.enospc=0.1,io.partial_write=0.2,io.eintr=0.3,
       io.rename_fail=0.05,io.fsync_fail=0.05 v} *)

type pmu = {
  drop_rate : float;  (** Probability a delivered sample record is lost. *)
  burst_every : int;
      (** Every [burst_every]-th delivered sample starts a drop burst
          (0 = no bursts). *)
  burst_len : int;  (** Samples lost per burst. *)
  extra_skid : int;  (** Deterministic skid added to every overflow. *)
  jitter : int;
      (** PMI delivery jitter: uniform extra skid in [0, jitter]. *)
  lbr_truncate : int;
      (** Keep only the newest N LBR entries per snapshot (0 = off). *)
  lbr_stuck_rate : float;  (** Probability of a forced stuck snapshot. *)
  lbr_misrotate_rate : float;
      (** Probability of a forced mis-rotated snapshot. *)
}

type collector = {
  drop_comm_rate : float;
  drop_mmap_rate : float;
  drop_sample_rate : float;
  reorder_window : int;
      (** Shuffle records within windows of this size (0 = off). *)
}

type archive = {
  bit_flips : int;  (** Single-bit flips at seeded offsets. *)
  truncate_at : int;
      (** >0: truncate the archive to that many bytes; <0: cut that many
          bytes off the end; 0: off. *)
}

type io = {
  enospc_rate : float;
      (** Probability a durable write fails with "no space left". *)
  partial_write_rate : float;
      (** Probability a [write] syscall is cut short (retried by the
          write loop, so data is never lost — only extra syscalls). *)
  eintr_rate : float;  (** Probability a [write] reports [EINTR]. *)
  rename_fail_rate : float;
      (** Probability the atomic publish [rename] fails transiently. *)
  fsync_fail_rate : float;
      (** Probability an [fsync] fails transiently. *)
}

type t = {
  seed : int64;
  pmu : pmu;
  collector : collector;
  archive : archive;
  io : io;
}

(** The inert plan: all rates and counts zero.  Arming it is
    behaviourally identical to not arming anything. *)
val none : t

val pmu_active : pmu -> bool
val collector_active : collector -> bool
val archive_active : archive -> bool
val io_active : io -> bool

(** [of_string spec] — parse a comma-separated [key=value] spec (see
    above; unknown keys, malformed values, and out-of-range rates are
    errors). *)
val of_string : string -> (t, string) result

(** Canonical spec string (only non-default fields); parses back to the
    same plan. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
