type t = { mutable state : int64 }

let create ~seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Fault_prng.int: bound must be positive";
  let v = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let bool t p = p > 0.0 && float t < p
