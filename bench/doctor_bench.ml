(* Doctor bench: runs the parallel-efficiency attribution on a small
   workload and publishes the full report as BENCH_doctor.json, so the
   scaling trajectory of the sharded analysis path is trended across
   commits alongside the raw pipeline numbers. *)

open Hbbp_core
module U = Bench_util

let run ppf =
  U.header ppf "Doctor: sharded-analysis scaling (writes BENCH_doctor.json)";
  let w = Hbbp_workloads.Registry.find "hello" in
  let max_jobs = min 4 (Domain.recommended_domain_count ()) in
  let report = Doctor.run ~max_jobs w in
  Doctor.pp ppf report;
  U.write_out "BENCH_doctor.json" {|{
  %s,
  "report": %s
}
|}
    (U.json_header ~bench:"doctor")
    (Doctor.to_json report);
  Format.fprintf ppf "wrote BENCH_doctor.json@.";
  if not report.Doctor.rep_consistent then
    failwith "BENCH doctor: reconstructions differ across job counts"
