(* Ablation studies over the design choices DESIGN.md calls out:

   1. the criteria: length-only rule vs the shipped bias-aware rule vs a
      freshly trained tree vs trusting a single source;
   2. the length cutoff: a sweep around the learned value;
   3. the hardware artefact models: what happens to each method when
      shadowing or the LBR anomalies are switched off.                  *)

open Hbbp_core
open Hbbp_cpu
module U = Bench_util

let subjects =
  [ "fitter-sse"; "fitter-avx"; "test40"; "omnetpp"; "namd"; "bzip2" ]

let subject_workload name = Hbbp_workloads.Registry.find name

(* Refuse with one source only, regardless of block. *)
let refit (p : Pipeline.profile) criteria =
  Combine.fuse p.Pipeline.static ~criteria ~bias:p.Pipeline.bias
    ~ebs:p.Pipeline.ebs ~lbr:p.Pipeline.lbr

let criteria_ablation ppf =
  U.header ppf "Ablation 1: per-block criteria";
  let tree = lazy (fst (Lazy.force U.trained)) in
  let variants =
    [
      ("HBBP (shipped rule)", fun (p : Pipeline.profile) -> p.Pipeline.hbbp);
      ("length-only (<=18)", fun p -> refit p Criteria.length_only);
      ("trained tree", fun p -> refit p (Criteria.Tree (Lazy.force tree)));
      ("LBR only", fun (p : Pipeline.profile) -> p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec);
      ("EBS only", fun (p : Pipeline.profile) -> p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec);
    ]
  in
  Format.fprintf ppf "%-22s" "criteria \\ workload";
  List.iter (fun s -> Format.fprintf ppf "%12s" s) subjects;
  Format.pp_print_newline ppf ();
  List.iter
    (fun (name, pick) ->
      Format.fprintf ppf "%-22s" name;
      List.iter
        (fun s ->
          let p = U.profile (subject_workload s) in
          Format.fprintf ppf "%11.2f%%" (100.0 *. U.avg_weighted_error p (pick p)))
        subjects;
      Format.pp_print_newline ppf ())
    variants

let cutoff_sweep ppf =
  U.header ppf "Ablation 2: block-length cutoff sweep (no bias routing)";
  Format.fprintf ppf "%-10s" "cutoff";
  List.iter (fun s -> Format.fprintf ppf "%12s" s) subjects;
  Format.pp_print_newline ppf ();
  List.iter
    (fun cutoff ->
      Format.fprintf ppf "%-10d" cutoff;
      List.iter
        (fun s ->
          let p = U.profile (subject_workload s) in
          let bbec =
            refit p (Criteria.Length_rule { cutoff; bias_to_ebs = false })
          in
          Format.fprintf ppf "%11.2f%%" (100.0 *. U.avg_weighted_error p bbec))
        subjects;
      Format.pp_print_newline ppf ())
    [ 0; 4; 8; 13; 18; 23; 30; 1000 ];
  Format.fprintf ppf
    "(cutoff 0 = EBS everywhere, 1000 = LBR everywhere; the useful band \
     sits where the paper's 18 does)@."

(* Re-profile selected workloads under modified hardware models.  These
   bypass the shared cache since the model differs; the per-model runs
   are independent, so they fan out over the bench domain pool. *)
let model_ablation ppf =
  U.header ppf "Ablation 3: hardware artefact models";
  let base = Pmu_model.default in
  let no_shadow = { base with Pmu_model.shadow_enabled = false } in
  let no_anomaly =
    {
      base with
      Pmu_model.quirk_probability = 0.0;
      quirk_drop_probability = 0.0;
      global_anomaly_probability = 0.0;
      global_drop_probability = 0.0;
    }
  in
  let no_skid =
    {
      base with
      Pmu_model.precise_skid =
        { Pmu_model.distances = [| 0 |]; weights = [| 1.0 |] };
    }
  in
  let avx_variants =
    [ ("full model", base); ("shadowing off", no_shadow);
      ("zero precise skid", no_skid) ]
  in
  let sse_variants =
    [ ("full model", base); ("LBR anomalies off", no_anomaly) ]
  in
  let runs =
    List.map (fun (label, model) -> ("fitter-avx", label, model)) avx_variants
    @ List.map (fun (label, model) -> ("fitter-sse", label, model)) sse_variants
  in
  let profiles =
    Hbbp_util.Domain_pool.run ~jobs:!U.jobs
      (fun (name, _, model) ->
        let config = { Pipeline.default_config with model } in
        Pipeline.run ~config (subject_workload name))
      runs
  in
  let results =
    List.map2 (fun (name, label, _) p -> ((name, label), p)) runs profiles
  in
  let row subject (label, _) =
    let p = List.assoc (subject, label) results in
    Format.fprintf ppf "%-26s %9.2f%% %9.2f%% %9.2f%%@." label
      (100.0 *. U.ebs_error p) (100.0 *. U.lbr_error p)
      (100.0 *. U.hbbp_error p)
  in
  Format.fprintf ppf "%-26s %10s %10s %10s@." "model / fitter-avx" "EBS" "LBR"
    "HBBP";
  List.iter (row "fitter-avx") avx_variants;
  Format.fprintf ppf "@.%-26s %10s %10s %10s@." "model / fitter-sse" "EBS"
    "LBR" "HBBP";
  List.iter (row "fitter-sse") sse_variants;
  Format.fprintf ppf
    "(with anomalies off LBR approaches ground truth — the artefacts, not \
     the estimator, are what HBBP works around; with shadowing off EBS \
     recovers on the divide-heavy AVX build)@."

let run ppf =
  criteria_ablation ppf;
  cutoff_sweep ppf;
  model_ablation ppf
