(* Executor perf gate: the superblock engine must retire at least
   [required_ratio] times the legacy engine's aggregate rate over the
   machine bench set.  The gate is a ratio between two engines measured
   in the same process on the same workloads — host-independent by
   construction — so CI can fail on an executor regression without
   pinning absolute numbers to a runner. *)

let required_ratio = 2.0

let run ppf =
  Bench_util.header ppf "Executor perf gate: superblock >= 2x legacy";
  let runs = Perf.machine_throughput () in
  List.iter
    (fun (r : Perf.engine_run) ->
      Format.fprintf ppf "%-12s %-10s %9.2fM retired/s@." r.er_workload
        r.er_engine
        (Perf.rate r /. 1e6))
    runs;
  let legacy = Perf.engine_rate runs "legacy" in
  let block = Perf.engine_rate runs "block" in
  let superblock = Perf.engine_rate runs "superblock" in
  let ratio = superblock /. legacy in
  Format.fprintf ppf
    "aggregate: legacy %.2fM/s, block %.2fM/s, superblock %.2fM/s@."
    (legacy /. 1e6) (block /. 1e6) (superblock /. 1e6);
  Format.fprintf ppf "superblock/legacy ratio: %.2fx (gate: >= %.2fx)@." ratio
    required_ratio;
  if ratio < required_ratio then begin
    Format.fprintf ppf
      "FAIL: superblock engine regressed below %.2fx legacy@." required_ratio;
    exit 1
  end;
  Format.fprintf ppf "PASS@."
