(* Static-verifier overhead: lint throughput over every bundled image,
   and the flow-conservation check's share of offline reconstruction
   time (it runs inside every [Pipeline.finalize], so it must stay well
   under 5% of the reconstruct cost).  Writes BENCH_verifier.json. *)

open Hbbp_core
module V = Hbbp_verifier
module U = Bench_util

let now = Unix.gettimeofday

let run ppf =
  U.header ppf "Static verifier (writes BENCH_verifier.json)";
  let workloads =
    List.map Hbbp_workloads.Registry.find Hbbp_workloads.Registry.names
  in
  let processes =
    List.map (fun (w : Workload.t) -> w.Workload.analysis_process) workloads
  in
  let lint_bytes =
    List.fold_left
      (fun acc p ->
        List.fold_left
          (fun acc img -> acc + Hbbp_program.Image.size img)
          acc
          (Hbbp_program.Process.images p))
      0 processes
  in
  (* Warm once (shared static structures, allocator), then measure. *)
  List.iter (fun p -> ignore (Sys.opaque_identity (V.Lint.process p))) processes;
  let iters = 5 in
  let t0 = now () in
  for _ = 1 to iters do
    List.iter
      (fun p ->
        match V.Lint.process p with
        | [] -> ()
        | d :: _ ->
            failwith
              (Format.asprintf "BENCH verifier: unexpected finding: %a"
                 V.Diagnostic.pp d))
      processes
  done;
  let lint_seconds = (now () -. t0) /. float_of_int iters in
  let lint_mb_per_s = float_of_int lint_bytes /. lint_seconds /. 1e6 in
  Format.fprintf ppf "lint: %d images, %.2f MB, %.3f s/pass, %.1f MB/s@."
    (List.fold_left
       (fun acc p -> acc + List.length (Hbbp_program.Process.images p))
       0 processes)
    (float_of_int lint_bytes /. 1e6)
    lint_seconds lint_mb_per_s;
  (* Flow-check share of reconstruction: offline-analyze the largest
     collected archive, then time the conservation check alone. *)
  let archives = Pipeline.collect_many ~jobs:!U.jobs workloads in
  let archive =
    List.fold_left
      (fun (best : Hbbp_collector.Perf_data.t) a ->
        if
          List.length a.Hbbp_collector.Perf_data.records
          > List.length best.Hbbp_collector.Perf_data.records
        then a
        else best)
      (List.hd archives) archives
  in
  let t0 = now () in
  let r = Pipeline.analyze_archive archive in
  let reconstruct_seconds = now () -. t0 in
  let flow_iters = 20 in
  let t0 = now () in
  for _ = 1 to flow_iters do
    ignore
      (Sys.opaque_identity
         (V.Flow.check r.Pipeline.r_static r.Pipeline.r_hbbp))
  done;
  let flow_seconds = (now () -. t0) /. float_of_int flow_iters in
  let flow_share = flow_seconds /. reconstruct_seconds in
  Format.fprintf ppf
    "flow check: %.2f ms vs %.0f ms reconstruct (%s, %d records) — %.2f%% \
     of reconstruct time (target < 5%%)@."
    (flow_seconds *. 1e3)
    (reconstruct_seconds *. 1e3)
    archive.Hbbp_collector.Perf_data.workload_name
    (List.length archive.Hbbp_collector.Perf_data.records)
    (100.0 *. flow_share);
  U.write_out "BENCH_verifier.json"
    {|{
  %s,
  "lint": {
    "bytes": %d,
    "seconds_per_pass": %.6f,
    "mb_per_sec": %.2f
  },
  "flow_check": {
    "workload": "%s",
    "records": %d,
    "seconds": %.6f,
    "reconstruct_seconds": %.6f,
    "share_of_reconstruct": %.6f
  }
}
|}
    (U.json_header ~bench:"verifier")
    lint_bytes lint_seconds lint_mb_per_s
    archive.Hbbp_collector.Perf_data.workload_name
    (List.length archive.Hbbp_collector.Perf_data.records)
    flow_seconds reconstruct_seconds flow_share;
  Format.fprintf ppf "wrote BENCH_verifier.json@."
