(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section from the simulated system, plus bechamel
   microbenchmarks of the library itself and the parallel-sweep perf
   bench.

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- -j 8          # everything, 8 domains
     dune exec bench/main.exe table3 figure2 micro
     dune exec bench/main.exe pipeline         # writes BENCH_pipeline.json

   Workload profiling fans out over a domain pool (-j N, or HBBP_JOBS,
   or the host core count); results are identical for every N. *)

let all : (string * (Format.formatter -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("table6", Tables.table6);
    ("table7", Tables.table7);
    ("table8", Tables.table8);
    ("figure1", Figures.figure1);
    ("figure2", Figures.figure2);
    ("figure3", Figures.figure3);
    ("figure4", Figures.figure4);
    ("ablation", Ablation.run);
    ("micro", Micro.run);
    ("pipeline", Perf.run);
    ("executor", Executor.run);
    ("streaming", Streaming.run);
    ("telemetry", Telemetry.run);
    ("faults", Faults_bench.run);
    ("verifier", Verifier_bench.run);
    ("repair", Repair_bench.run);
    ("doctor", Doctor_bench.run);
    ("recovery", Recovery_bench.run);
  ]

(* Targets that never touch the profile cache; everything else benefits
   from the parallel preload. *)
let no_sweep =
  [ "table2"; "table4"; "micro"; "pipeline"; "executor"; "streaming";
    "telemetry"; "faults"; "verifier"; "doctor"; "recovery" ]

(* "repair" sweeps the full registry through the profile cache, so it
   is NOT in [no_sweep]: the preload fills the cache it reads. *)

let () =
  let ppf = Format.std_formatter in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "-j" :: n :: rest | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some jobs when jobs >= 1 ->
            Bench_util.jobs := jobs;
            parse_args acc rest
        | Some _ | None ->
            Format.fprintf ppf "invalid -j value %S@." n;
            exit 2)
    | name :: rest -> parse_args (name :: acc) rest
  in
  let requested =
    match parse_args [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst all
    | names -> names
  in
  if List.exists (fun name -> not (List.mem name no_sweep)) requested then
    Bench_util.preload ();
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ppf
      | None ->
          Format.fprintf ppf "unknown bench %S; available: %s@." name
            (String.concat ", " (List.map fst all)))
    requested;
  Format.pp_print_flush ppf ()
