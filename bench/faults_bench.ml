(* Fault-injection overhead bench: demonstrates that the chaos hooks the
   fault subsystem threads through the PMU, the session and the archive
   writer cost nothing when disarmed, and shows what a mild armed plan
   does to throughput and output.  Writes BENCH_faults.json.

   Three series over the same workloads, interleaved so drift hits all
   of them equally, best of [rounds] each:

   - baseline:       faults disarmed (the default state);
   - armed-inert:    the all-zero plan armed — every hook still resolves
     to [None], so this must be byte-identical to baseline and its
     overhead pure run-to-run noise;
   - armed-mild:     a small multi-layer plan (sample drops, LBR
     corruption, record loss) actually injecting.

   A microbench of the disarmed PMU hook site reports the per-sample
   cost of the [option] load in nanoseconds. *)

open Hbbp_core
module Plan = Hbbp_faults.Fault_plan
module Faults = Hbbp_faults.Faults
module U = Bench_util

let now = Unix.gettimeofday

let workloads () =
  [
    Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse;
    Hbbp_workloads.Kernelbench.workload ();
  ]

let run_all ws = List.map (fun w -> Pipeline.run w) ws

let time f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)

let mild_plan =
  match
    Plan.of_string
      "seed=42,pmu.drop=0.02,lbr.stuck=0.05,rec.drop_sample=0.02,rec.reorder=8"
  with
  | Ok p -> p
  | Error e -> failwith ("BENCH faults: bad mild plan: " ^ e)

(* Per-call cost of the disarmed hook: constructing an injector and
   taking the [None] branch, amortized over [n] calls — the same load
   the PMU performs per delivered sample. *)
let disarmed_hook_ns () =
  let n = 5_000_000 in
  let sink = ref 0 in
  let body () = incr sink in
  let bare () =
    for _ = 1 to n do
      body ()
    done
  in
  let hooked () =
    for _ = 1 to n do
      (match Faults.pmu_injector () with None -> body () | Some _ -> ());
      ()
    done
  in
  bare ();
  hooked ();
  let best f =
    let b = ref infinity in
    for _ = 1 to 3 do
      let (), dt = time f in
      if dt < !b then b := dt
    done;
    !b
  in
  let bare_s = best bare and hooked_s = best hooked in
  (hooked_s -. bare_s) /. float_of_int n *. 1e9

let run ppf =
  U.header ppf "Fault-injection overhead (writes BENCH_faults.json)";
  Faults.disarm ();
  Faults.reset_tally ();
  let ws = workloads () in
  let rounds = 3 in
  let baseline_s = ref infinity
  and inert_s = ref infinity
  and mild_s = ref infinity in
  let baseline_profiles = ref [] and inert_profiles = ref [] in
  let mild_profiles = ref [] in
  for _ = 1 to rounds do
    (* baseline (disarmed) *)
    let ps, dt = time (fun () -> run_all ws) in
    if dt < !baseline_s then baseline_s := dt;
    baseline_profiles := ps;
    (* armed-inert (all-zero plan: hooks still disarmed in effect) *)
    Faults.arm Plan.none;
    let ps, dt = time (fun () -> run_all ws) in
    Faults.disarm ();
    if dt < !inert_s then inert_s := dt;
    inert_profiles := ps;
    (* armed-mild (really injecting) *)
    Faults.reset_tally ();
    Faults.arm mild_plan;
    let ps, dt = time (fun () -> run_all ws) in
    Faults.disarm ();
    if dt < !mild_s then mild_s := dt;
    mild_profiles := ps
  done;
  let tally = Faults.tally () in
  Faults.reset_tally ();
  let identical =
    List.for_all2 Perf.profiles_equal !baseline_profiles !inert_profiles
  in
  let degraded =
    List.filter
      (fun (p : Pipeline.profile) -> p.quality <> Pipeline.Full)
      !mild_profiles
  in
  let frac v = (v -. !baseline_s) /. !baseline_s in
  let inert_overhead = frac !inert_s and mild_overhead = frac !mild_s in
  let hook_ns = disarmed_hook_ns () in
  Format.fprintf ppf "%d workloads, best of %d rounds@." (List.length ws)
    rounds;
  Format.fprintf ppf "baseline (disarmed):      %8.3f s@." !baseline_s;
  Format.fprintf ppf "armed inert plan:         %8.3f s  (%+.2f%% = noise)@."
    !inert_s (100.0 *. inert_overhead);
  Format.fprintf ppf "armed mild plan:          %8.3f s  (%+.2f%%)@." !mild_s
    (100.0 *. mild_overhead);
  Format.fprintf ppf "disarmed hook cost:       %8.1f ns/site@." hook_ns;
  Format.fprintf ppf "profiles byte-identical with inert plan armed: %b@."
    identical;
  Format.fprintf ppf "mild plan: %d/%d profiles degraded, tally:@."
    (List.length degraded)
    (List.length !mild_profiles);
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  %-28s %8d@." k n)
    tally;
  if not identical then
    failwith "BENCH faults: arming the inert plan changed profile bytes";
  U.write_out "BENCH_faults.json"
    {|{
  %s,
  "workloads": %d,
  "rounds": %d,
  "baseline_s": %.4f,
  "inert_s": %.4f,
  "mild_s": %.4f,
  "inert_overhead": %.4f,
  "mild_overhead": %.4f,
  "disarmed_hook_ns": %.1f,
  "profiles_identical_inert": %b,
  "mild_degraded_profiles": %d,
  "mild_tally": {%s}
}
|}
    (U.json_header ~bench:"faults")
    (List.length ws) rounds !baseline_s !inert_s !mild_s inert_overhead
    mild_overhead hook_ns identical (List.length degraded)
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf {|"%s": %d|} k n) tally));
  Format.fprintf ppf "wrote BENCH_faults.json@."
