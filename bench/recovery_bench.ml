(* Recovery bench: what the resumable analysis driver costs when its
   crash-safety machinery is idle.  Three series over the same sharded
   archive set:

     baseline      Pipeline.analyze_archives        (PR-7 streaming path)
     driver        Recover.analyze_archives, checkpoint cadence beyond
                   the archive count — the resumable driver with zero
                   checkpoints actually saved
     checkpointed  Recover.analyze_archives, checkpoint after every
                   archive — the armed cost, reported but not gated

   CI gate: the idle driver must stay within 1% of the baseline, i.e.
   adding resumability must be free unless you use it.  Writes
   BENCH_recovery.json. *)

open Hbbp_core
module Perf_data = Hbbp_collector.Perf_data
module U = Bench_util

let now = Unix.gettimeofday
let rounds = 5
let shards = 4

let run ppf =
  U.header ppf "Recovery: resumable-driver overhead (writes BENCH_recovery.json)";
  (* Largest bundled workload by record volume, so the driver's fixed
     per-invocation cost (one extra header parse of the first shard) is
     amortized against a realistic analysis, not a toy one. *)
  let names = Hbbp_workloads.Registry.names in
  let archives =
    Pipeline.collect_many ~jobs:!U.jobs
      (List.map Hbbp_workloads.Registry.find names)
  in
  let archive =
    List.fold_left
      (fun (best : Perf_data.t) (a : Perf_data.t) ->
        if List.length a.Perf_data.records > List.length best.Perf_data.records
        then a
        else best)
      (List.hd archives) archives
  in
  let path = Filename.temp_file "hbbp-bench-recovery" ".hbbp" in
  let paths = Perf_data.save_sharded archive ~shards ~path in
  let ckpt = path ^ ".ckpt" in
  let baseline_s = ref 0.0
  and driver_s = ref 0.0
  and checkpointed_s = ref 0.0 in
  let identical = ref true in
  let time cell f =
    let t0 = now () in
    let r = f () in
    cell := !cell +. (now () -. t0);
    r
  in
  let partial_bytes = function
    | Ok ((_ : Perf_data.t), r) ->
        Pipeline.Partial.serialize r.Pipeline.r_partial
    | Error msg -> failwith ("BENCH recovery: " ^ msg)
  in
  (* Untimed warmup of every variant: the first series otherwise pays
     for page-cache population and major-heap growth on behalf of all
     three, skewing the comparison by far more than the 1% gate. *)
  let warm = ref 0.0 in
  ignore (partial_bytes (time warm (fun () -> Pipeline.analyze_archives paths)));
  ignore
    (partial_bytes
       (time warm (fun () ->
            Recover.analyze_archives ~checkpoint_every:max_int
              ~checkpoint:ckpt paths)));
  ignore
    (partial_bytes
       (time warm (fun () ->
            Recover.analyze_archives ~checkpoint_every:1 ~checkpoint:ckpt
              paths)));
  for _ = 1 to rounds do
    let base =
      partial_bytes (time baseline_s (fun () -> Pipeline.analyze_archives paths))
    in
    let driver =
      partial_bytes
        (time driver_s (fun () ->
             Recover.analyze_archives ~checkpoint_every:max_int
               ~checkpoint:ckpt paths))
    in
    let ckpted =
      partial_bytes
        (time checkpointed_s (fun () ->
             Recover.analyze_archives ~checkpoint_every:1 ~checkpoint:ckpt
               paths))
    in
    if not (Bytes.equal base driver && Bytes.equal base ckpted) then
      identical := false;
    if Sys.file_exists ckpt then
      failwith "BENCH recovery: checkpoint survived a successful analysis"
  done;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
  (try Sys.remove (Hbbp_collector.Manifest.path_for path) with Sys_error _ -> ());
  let driver_overhead = (!driver_s /. !baseline_s) -. 1.0 in
  let checkpointed_overhead = (!checkpointed_s /. !baseline_s) -. 1.0 in
  Format.fprintf ppf "archives: %d shards of %s, %d rounds@." shards
    archive.Perf_data.workload_name rounds;
  Format.fprintf ppf "baseline (Pipeline.analyze_archives): %8.3f s@."
    !baseline_s;
  Format.fprintf ppf "idle resumable driver:                %8.3f s  (%+.2f%%)@."
    !driver_s (100.0 *. driver_overhead);
  Format.fprintf ppf "checkpoint every archive:             %8.3f s  (%+.2f%%)@."
    !checkpointed_s
    (100.0 *. checkpointed_overhead);
  Format.fprintf ppf "reconstructions byte-identical: %b@." !identical;
  if not !identical then
    failwith "BENCH recovery: resumable driver changed the reconstruction";
  U.write_out "BENCH_recovery.json"
    {|{
  %s,
  "workload": "%s",
  "shards": %d,
  "rounds": %d,
  "baseline_s": %.4f,
  "driver_s": %.4f,
  "checkpointed_s": %.4f,
  "driver_overhead": %.4f,
  "checkpointed_overhead": %.4f,
  "reconstructions_identical": %b
}
|}
    (U.json_header ~bench:"recovery")
    archive.Perf_data.workload_name shards rounds !baseline_s !driver_s
    !checkpointed_s driver_overhead checkpointed_overhead !identical;
  Format.fprintf ppf "wrote BENCH_recovery.json@.";
  (* CI gate: resumability you do not use must be free.  The idle driver
     is the same streaming fold plus a should_stop poll per archive —
     anything beyond 1% is a real regression of the disarmed path. *)
  if driver_overhead > 0.01 then
    failwith
      (Printf.sprintf
         "BENCH recovery: idle resumable-driver overhead %.2f%% exceeds the \
          1%% budget"
         (100.0 *. driver_overhead))
