(* Performance trend bench: times the full table sweep at -j 1 vs -j N,
   checks that the parallel profiles are byte-identical to the
   sequential ones, measures raw executor throughput per engine over a
   representative workload set, and writes the results to
   BENCH_pipeline.json so future PRs have a machine-readable perf
   trajectory. *)

open Hbbp_core
module U = Bench_util

let now = Unix.gettimeofday

(* Byte-identity of everything the tables/figures consume. *)
let profiles_equal (a : Pipeline.profile) (b : Pipeline.profile) =
  compare a.stats b.stats = 0
  && a.clean_cycles = b.clean_cycles
  && compare a.reference.counts b.reference.counts = 0
  && compare a.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
       b.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
     = 0
  && compare a.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
       b.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
     = 0
  && compare a.hbbp.counts b.hbbp.counts = 0
  && compare a.reference_mix b.reference_mix = 0
  && compare a.pmu_counts b.pmu_counts = 0
  && compare a.sde_total b.sde_total = 0
  && a.sde_lost_kernel = b.sde_lost_kernel
  && compare a.collection_overhead b.collection_overhead = 0
  && compare a.sde_slowdown b.sde_slowdown = 0
  && compare a.records b.records = 0

let sweep ~jobs entries =
  let t0 = now () in
  let profiles =
    Hbbp_util.Domain_pool.run ~jobs
      (fun ((config, w) : Pipeline.config * Workload.t) ->
        Pipeline.run ~config w)
      entries
  in
  (profiles, now () -. t0)

(* Raw Machine.run bench set: one workload per executor stress axis, so
   engine wins can't be overfit to a single code shape. *)
let machine_workloads () =
  [
    ("mcf", "short blocks, pointer-chasing integer code");
    ("test40", "branch-heavy scientific loop nest");
    ("hello", "syscall-heavy user/kernel ping-pong");
    ("fitter-sse", "SSE vector arithmetic");
  ]
  |> List.map (fun (name, axis) -> (Hbbp_workloads.Registry.find name, axis))

type engine_run = {
  er_workload : string;
  er_engine : string;
  er_retired : int;
  er_seconds : float;
}

(* Raw Machine.run throughput (no observers) per engine; best of three.
   Also cross-checks that every engine returns identical run stats —
   the cheap always-on slice of the differential suite. *)
let machine_throughput () =
  let runs = ref [] in
  List.iter
    (fun ((w : Workload.t), _axis) ->
      let reference = ref None in
      List.iter
        (fun engine ->
          let best = ref infinity and stats = ref None in
          for _ = 1 to 3 do
            let machine =
              Hbbp_cpu.Machine.create ~process:w.Workload.live_process ~engine
                ()
            in
            let t0 = now () in
            let s = Hbbp_cpu.Machine.run machine ~entry:w.Workload.entry () in
            let dt = now () -. t0 in
            if dt < !best then best := dt;
            stats := Some s
          done;
          let s = Option.get !stats in
          (match !reference with
          | None -> reference := Some s
          | Some r ->
              if compare r s <> 0 then
                failwith
                  (Printf.sprintf
                     "BENCH pipeline: %s engine diverges from legacy on %s"
                     (Hbbp_cpu.Machine.engine_name engine) w.Workload.name));
          runs :=
            {
              er_workload = w.Workload.name;
              er_engine = Hbbp_cpu.Machine.engine_name engine;
              er_retired = s.Hbbp_cpu.Machine.retired;
              er_seconds = !best;
            }
            :: !runs)
        Hbbp_cpu.Machine.all_engines)
    (machine_workloads ());
  List.rev !runs

let rate (r : engine_run) = float_of_int r.er_retired /. r.er_seconds

(* Aggregate retired/s of one engine across the bench set (total work
   over total time, so long workloads aren't drowned out). *)
let engine_rate runs name =
  let sel = List.filter (fun r -> String.equal r.er_engine name) runs in
  let retired = List.fold_left (fun a r -> a + r.er_retired) 0 sel in
  let seconds = List.fold_left (fun a r -> a +. r.er_seconds) 0.0 sel in
  float_of_int retired /. seconds

let run ppf =
  U.header ppf "Pipeline sweep: -j 1 vs -j N (writes BENCH_pipeline.json)";
  let entries = U.sweep_entries () in
  let recommended = Domain.recommended_domain_count () in
  let requested_jobs = max 2 !U.jobs in
  (* An under-provisioned host cannot demonstrate domain scaling: -j 2
     on a 1-domain machine just measures scheduler thrash.  Measure at
     the parallelism the host can actually deliver and say so, instead
     of publishing an apples-to-oranges slowdown. *)
  let oversubscribed = requested_jobs > recommended in
  let par_jobs = max 1 (min requested_jobs recommended) in
  if oversubscribed then
    Format.fprintf ppf
      "warning: host recommends %d domain%s; measuring parallel sweep at -j \
       %d instead of the requested -j %d@."
      recommended
      (if recommended = 1 then "" else "s")
      par_jobs requested_jobs;
  let seq, seq_s = sweep ~jobs:1 entries in
  let par, par_s = sweep ~jobs:par_jobs entries in
  let identical = List.for_all2 profiles_equal seq par in
  let retired =
    List.fold_left
      (fun acc (p : Pipeline.profile) ->
        acc + p.stats.Hbbp_cpu.Machine.retired)
      0 seq
  in
  let speedup = seq_s /. par_s in
  let machine_runs = machine_throughput () in
  Format.fprintf ppf "%d workloads, %d retired instructions@."
    (List.length entries) retired;
  Format.fprintf ppf "-j 1: %8.2f s  (%.2fM retired/s)@." seq_s
    (float_of_int retired /. seq_s /. 1e6);
  Format.fprintf ppf "-j %d: %8.2f s  (%.2fM retired/s)  speedup %.2fx@."
    par_jobs par_s
    (float_of_int retired /. par_s /. 1e6)
    speedup;
  Format.fprintf ppf "profiles byte-identical across job counts: %b@."
    identical;
  List.iter
    (fun r ->
      Format.fprintf ppf
        "Machine.run %-12s %-10s %9.2fM retired/s  (%d retired, %.4f s)@."
        r.er_workload r.er_engine (rate r /. 1e6) r.er_retired r.er_seconds)
    machine_runs;
  List.iter
    (fun e ->
      let name = Hbbp_cpu.Machine.engine_name e in
      Format.fprintf ppf "Machine.run bench-set aggregate %-10s %9.2fM \
                          retired/s@."
        name
        (engine_rate machine_runs name /. 1e6))
    Hbbp_cpu.Machine.all_engines;
  if not identical then
    failwith "BENCH pipeline: parallel profiles differ from sequential";

  let machine_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             {|    { "workload": "%s", "engine": "%s", "retired": %d, "seconds": %.4f, "retired_per_sec": %.0f }|}
             r.er_workload r.er_engine r.er_retired r.er_seconds (rate r))
         machine_runs)
  in
  let aggregate_json =
    String.concat ", "
      (List.map
         (fun e ->
           let name = Hbbp_cpu.Machine.engine_name e in
           Printf.sprintf {|"%s": %.0f|} name (engine_rate machine_runs name))
         Hbbp_cpu.Machine.all_engines)
  in
  U.write_out "BENCH_pipeline.json"
    {|{
  %s,
  "oversubscribed": %b,
  "workloads": %d,
  "total_retired": %d,
  "sequential": { "jobs": 1, "seconds": %.3f, "retired_per_sec": %.0f },
  "parallel": { "jobs_requested": %d, "jobs": %d, "seconds": %.3f, "retired_per_sec": %.0f },
  "speedup": %.3f,
  "profiles_identical": %b,
  "machine_run": [
%s
  ],
  "machine_run_retired_per_sec": { %s }
}
|}
    (U.json_header ~bench:"pipeline")
    oversubscribed (List.length entries) retired seq_s
    (float_of_int retired /. seq_s)
    requested_jobs par_jobs par_s
    (float_of_int retired /. par_s)
    speedup identical machine_json aggregate_json;
  Format.fprintf ppf "wrote BENCH_pipeline.json@.";
  (* The sweep already profiled everything: seed the shared cache so any
     targets after this one in the same run are free. *)
  List.iter2
    (fun ((_, w) : Pipeline.config * Workload.t) p ->
      if not (Hashtbl.mem U.cache w.Workload.name) then
        Hashtbl.replace U.cache w.Workload.name p)
    entries seq
