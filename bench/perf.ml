(* Performance trend bench: times the full table sweep at -j 1 vs -j N,
   checks that the parallel profiles are byte-identical to the
   sequential ones, measures raw executor throughput, and writes the
   results to BENCH_pipeline.json so future PRs have a machine-readable
   perf trajectory. *)

open Hbbp_core
module U = Bench_util

let now = Unix.gettimeofday

(* Byte-identity of everything the tables/figures consume. *)
let profiles_equal (a : Pipeline.profile) (b : Pipeline.profile) =
  compare a.stats b.stats = 0
  && a.clean_cycles = b.clean_cycles
  && compare a.reference.counts b.reference.counts = 0
  && compare a.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
       b.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
     = 0
  && compare a.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
       b.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
     = 0
  && compare a.hbbp.counts b.hbbp.counts = 0
  && compare a.reference_mix b.reference_mix = 0
  && compare a.pmu_counts b.pmu_counts = 0
  && compare a.sde_total b.sde_total = 0
  && a.sde_lost_kernel = b.sde_lost_kernel
  && compare a.collection_overhead b.collection_overhead = 0
  && compare a.sde_slowdown b.sde_slowdown = 0
  && compare a.records b.records = 0

let sweep ~jobs entries =
  let t0 = now () in
  let profiles =
    Hbbp_util.Domain_pool.run ~jobs
      (fun ((config, w) : Pipeline.config * Workload.t) ->
        Pipeline.run ~config w)
      entries
  in
  (profiles, now () -. t0)

(* Raw Machine.run throughput (no observers): the single-run hot path
   the Exec_graph dense lookup optimizes.  Best of three. *)
let machine_throughput () =
  let w = Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse in
  let best = ref infinity and retired = ref 0 in
  for _ = 1 to 3 do
    let machine =
      Hbbp_cpu.Machine.create ~process:w.Workload.live_process ()
    in
    let t0 = now () in
    let stats = Hbbp_cpu.Machine.run machine ~entry:w.Workload.entry () in
    let dt = now () -. t0 in
    if dt < !best then best := dt;
    retired := stats.Hbbp_cpu.Machine.retired
  done;
  (w.Workload.name, !retired, !best)

let run ppf =
  U.header ppf "Pipeline sweep: -j 1 vs -j N (writes BENCH_pipeline.json)";
  let entries = U.sweep_entries () in
  let par_jobs = max 2 !U.jobs in
  let seq, seq_s = sweep ~jobs:1 entries in
  let par, par_s = sweep ~jobs:par_jobs entries in
  let identical = List.for_all2 profiles_equal seq par in
  let retired =
    List.fold_left
      (fun acc (p : Pipeline.profile) ->
        acc + p.stats.Hbbp_cpu.Machine.retired)
      0 seq
  in
  let speedup = seq_s /. par_s in
  let mname, mretired, mseconds = machine_throughput () in
  let mrate = float_of_int mretired /. mseconds in
  Format.fprintf ppf "%d workloads, %d retired instructions@."
    (List.length entries) retired;
  Format.fprintf ppf "-j 1: %8.2f s  (%.2fM retired/s)@." seq_s
    (float_of_int retired /. seq_s /. 1e6);
  Format.fprintf ppf "-j %d: %8.2f s  (%.2fM retired/s)  speedup %.2fx@."
    par_jobs par_s
    (float_of_int retired /. par_s /. 1e6)
    speedup;
  Format.fprintf ppf "profiles byte-identical across job counts: %b@."
    identical;
  Format.fprintf ppf "Machine.run (%s, no observers): %.2fM retired/s@."
    mname (mrate /. 1e6);
  if not identical then
    failwith "BENCH pipeline: parallel profiles differ from sequential";
  let oc = open_out "BENCH_pipeline.json" in
  Printf.fprintf oc
    {|{
  "bench": "pipeline",
  "host_recommended_domains": %d,
  "workloads": %d,
  "total_retired": %d,
  "sequential": { "jobs": 1, "seconds": %.3f, "retired_per_sec": %.0f },
  "parallel": { "jobs": %d, "seconds": %.3f, "retired_per_sec": %.0f },
  "speedup": %.3f,
  "profiles_identical": %b,
  "machine_run": { "workload": "%s", "retired": %d, "seconds": %.4f, "retired_per_sec": %.0f }
}
|}
    (Domain.recommended_domain_count ())
    (List.length entries) retired seq_s
    (float_of_int retired /. seq_s)
    par_jobs par_s
    (float_of_int retired /. par_s)
    speedup identical mname mretired mseconds mrate;
  close_out oc;
  Format.fprintf ppf "wrote BENCH_pipeline.json@.";
  (* The sweep already profiled everything: seed the shared cache so any
     targets after this one in the same run are free. *)
  List.iter2
    (fun ((_, w) : Pipeline.config * Workload.t) p ->
      if not (Hashtbl.mem U.cache w.Workload.name) then
        Hashtbl.replace U.cache w.Workload.name p)
    entries seq
