(* Shared infrastructure for the table/figure reproductions: profile
   caching (each workload is simulated once per bench run) and the
   formatting helpers the tables share.

   The cache is filled up front by [preload], which fans the whole sweep
   out over a domain pool; afterwards every [profile] call is a hit and
   the tables render from identical data regardless of the job count. *)

open Hbbp_core

let clock_ghz = 3.0

(* Simulated wall-clock seconds for a cycle count. *)
let seconds cycles = float_of_int cycles /. (clock_ghz *. 1e9)

(* Parallelism of the bench run: -j on the command line, else HBBP_JOBS,
   else the host's recommended domain count.  Set by main before any
   bench target runs. *)
let jobs = ref (Hbbp_util.Domain_pool.default_jobs ())

let cache : (string, Pipeline.profile) Hashtbl.t = Hashtbl.create 64

let profile ?(config = Pipeline.default_config) (w : Workload.t) =
  let key = w.Workload.name in
  match Hashtbl.find_opt cache key with
  | Some p -> p
  | None ->
      let p = Pipeline.run ~config w in
      Hashtbl.replace cache key p;
      p

(* x264ref is profiled with the buggy instrumentation configuration to
   reproduce the paper's footnote 2. *)
let spec_config name =
  if String.equal name Hbbp_workloads.Spec.buggy_benchmark then
    {
      Pipeline.default_config with
      sde =
        {
          Hbbp_instrument.Sde.default_config with
          bug_mnemonic = Some Hbbp_workloads.Spec.bug_mnemonic;
        };
    }
  else Pipeline.default_config

let profile_spec name =
  profile ~config:(spec_config name) (Hbbp_workloads.Spec.find name)

(* Every workload the tables/figures touch, with the config each one is
   profiled under. *)
let sweep_entries () =
  let spec =
    List.map
      (fun name -> (spec_config name, Hbbp_workloads.Spec.find name))
      Hbbp_workloads.Spec.names
  in
  let others =
    [
      Hbbp_workloads.Test40.workload ();
      Hbbp_workloads.Hydro.workload ();
      Hbbp_workloads.Kernelbench.workload ();
      Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.X87;
      Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse;
      Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Avx;
      Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Avx_noinline;
      Hbbp_workloads.Clforward.workload Hbbp_workloads.Clforward.Before;
      Hbbp_workloads.Clforward.workload Hbbp_workloads.Clforward.After;
    ]
  in
  spec
  @ List.map
      (fun w -> (Pipeline.default_config, w))
      (others @ Hbbp_workloads.Training_set.all ())

(* Profile the full sweep in parallel and fill the cache.  Workloads
   already cached (e.g. by an earlier target in the same run) are not
   re-profiled. *)
let preload ?jobs:j () =
  let jobs = match j with Some n -> n | None -> !jobs in
  let entries =
    List.filter
      (fun ((_, w) : Pipeline.config * Workload.t) ->
        not (Hashtbl.mem cache w.Workload.name))
      (sweep_entries ())
  in
  let profiles =
    Hbbp_util.Domain_pool.run ~jobs
      (fun (config, w) -> Pipeline.run ~config w)
      entries
  in
  List.iter2
    (fun ((_, w) : Pipeline.config * Workload.t) p ->
      Hashtbl.replace cache w.Workload.name p)
    entries profiles

(* ---- unified BENCH_*.json header ----------------------------------- *)

(* Every BENCH_*.json opens with the same header fields, so tooling that
   trends results across commits can join the files on one schema
   without per-bench special cases. *)
let schema_version = 1

let utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Best effort: benches must also run from an exported tree. *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when rev <> "" -> rev
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* The opening fields of a BENCH_*.json object (no surrounding braces,
   no trailing comma); writers embed it as the first line after [{]. *)
let json_header ~bench =
  Printf.sprintf
    {|"schema_version": %d,
  "bench": "%s",
  "utc": "%s",
  "host_recommended_domains": %d,
  "ocaml_version": "%s",
  "git_rev": "%s"|}
    schema_version bench (utc ())
    (Domain.recommended_domain_count ())
    Sys.ocaml_version (git_rev ())

(* Atomic publication of bench artifacts: format into memory, then
   tmp+rename through Durable (no fsync — the overhead gates measure
   the same machinery they guard).  A killed bench run never leaves a
   torn BENCH_*.json behind for the trending tooling to choke on. *)
let write_out path fmt =
  Printf.ksprintf
    (fun s -> Hbbp_durable.Durable.write_file ~fsync:false ~path s)
    fmt

let avg_weighted_error p bbec =
  (Pipeline.error_report p bbec).Hbbp_core.Error.avg_weighted_error

let hbbp_error p = avg_weighted_error p p.Pipeline.hbbp
let lbr_error p = avg_weighted_error p p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec
let ebs_error p = avg_weighted_error p p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec

let pct v = Printf.sprintf "%.2f%%" (v *. 100.0)

let header ppf title =
  Format.fprintf ppf "@.==== %s ====@." title

let training_profiles = lazy (List.map profile (Hbbp_workloads.Training_set.all ()))

let trained = lazy (Training.train (Lazy.force training_profiles))
