(* Count-repair accuracy and overhead bench.  Writes BENCH_repair.json.

   Three series:

   - accuracy: for every bundled workload, the repair pass must not
     lose ground on either axis — post-repair conservation error <=
     pre-repair, and weighted mix error of the repaired BBEC <= raw
     HBBP's.  The materiality floor passes healthy profiles through
     untouched, so equality is the common case there;
   - chaos: on degraded fixtures — healthy reconstructions with
     seeded, localized count corruption (the severe damage stuck LBR
     paths and lost shards produce, which the flow check exists to
     catch) — the improvement must be strict on both axes.  Uniform
     damage like dropped samples is not usable here: it scales counts
     evenly, conservation is scale-invariant, so repair correctly
     declines to touch it;
   - overhead: one repair pass on the worst-violating workload's
     reconstruction must cost <= 5% of its offline reconstruct time.

   Any gate failure exits nonzero so CI trends cannot silently rot. *)

open Hbbp_core
open Hbbp_analyzer
module V = Hbbp_verifier
module U = Bench_util

let now = Unix.gettimeofday
let overhead_budget = 0.05
let chaos_workloads = [ "fitter-sse"; "train-branchy" ]

(* Localized, deterministic damage: every 7th live block's count is
   zeroed — the one-sided mass loss a dropped shard or dead sampling
   region produces, far below any lower bound the neighborhood
   supports. *)
let corrupt (bbec : Bbec.t) =
  let counts = Array.copy bbec.Bbec.counts in
  let live = ref 0 in
  Array.iteri
    (fun gid c ->
      if c > 0. then begin
        incr live;
        if !live mod 7 = 0 then counts.(gid) <- 0.
      end)
    counts;
  { Bbec.method_ = bbec.Bbec.method_; counts }

type row = {
  name : string;
  pre : float;
  post : float;
  raw_mix : float;
  rep_mix : float;
  iterations : int;
  adjusted : int;
}

let row_of_profile (p : Pipeline.profile) =
  let rep =
    match p.Pipeline.repair_report with
    | Some r -> r
    | None -> failwith "BENCH repair: profile carries no repair report"
  in
  {
    name = p.Pipeline.workload.Workload.name;
    pre = rep.V.Repair.pre.V.Flow.conservation_error;
    post = rep.V.Repair.post.V.Flow.conservation_error;
    raw_mix = U.hbbp_error p;
    rep_mix = U.avg_weighted_error p rep.V.Repair.repaired;
    iterations = rep.V.Repair.iterations;
    adjusted = rep.V.Repair.adjusted_blocks;
  }

let pp_row ppf r =
  Format.fprintf ppf
    "  %-22s conservation %.4f -> %.4f   mix %.4f -> %.4f  (%d sweeps, %d \
     blocks)@."
    r.name r.pre r.post r.raw_mix r.rep_mix r.iterations r.adjusted

let json_row r =
  Printf.sprintf
    {|    {"workload": "%s", "pre_conservation_error": %.6f, "post_conservation_error": %.6f, "raw_mix_error": %.6f, "repaired_mix_error": %.6f, "iterations": %d, "adjusted_blocks": %d}|}
    r.name r.pre r.post r.raw_mix r.rep_mix r.iterations r.adjusted

let run ppf =
  U.header ppf "Count repair (writes BENCH_repair.json)";
  (* -- accuracy over every bundled workload ------------------------- *)
  let rows =
    List.map
      (fun name -> row_of_profile (U.profile (Hbbp_workloads.Registry.find name)))
      Hbbp_workloads.Registry.names
  in
  List.iter (pp_row ppf) rows;
  let slack = 1e-12 in
  let bad_conservation = List.filter (fun r -> r.post > r.pre +. slack) rows in
  let bad_mix = List.filter (fun r -> r.rep_mix > r.raw_mix +. slack) rows in
  (* -- chaos fixtures: repair must strictly improve ----------------- *)
  let chaos_rows =
    List.map
      (fun name ->
        let p = U.profile (Hbbp_workloads.Registry.find name) in
        let damaged = corrupt p.Pipeline.hbbp in
        let fstruct = V.Flow.structure p.Pipeline.static in
        let rep = V.Repair.repair fstruct damaged in
        {
          name;
          pre = rep.V.Repair.pre.V.Flow.conservation_error;
          post = rep.V.Repair.post.V.Flow.conservation_error;
          raw_mix = U.avg_weighted_error p damaged;
          rep_mix = U.avg_weighted_error p rep.V.Repair.repaired;
          iterations = rep.V.Repair.iterations;
          adjusted = rep.V.Repair.adjusted_blocks;
        })
      chaos_workloads
  in
  Format.fprintf ppf "chaos fixtures (localized corruption):@.";
  List.iter (pp_row ppf) chaos_rows;
  let weak_chaos =
    List.filter
      (fun r -> r.post >= r.pre -. slack || r.rep_mix >= r.raw_mix -. slack)
      chaos_rows
  in
  (* -- overhead on the worst-violating reconstruction --------------- *)
  let worst =
    List.fold_left (fun a b -> if b.pre > a.pre then b else a) (List.hd rows)
      rows
  in
  let archive =
    Pipeline.collect_archive (Hbbp_workloads.Registry.find worst.name)
  in
  let t0 = now () in
  let r = Pipeline.analyze_archive archive in
  let reconstruct_seconds = now () -. t0 in
  let fstruct = V.Flow.structure r.Pipeline.r_static in
  let iters = 20 in
  let t0 = now () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (V.Repair.repair fstruct r.Pipeline.r_hbbp))
  done;
  let repair_seconds = (now () -. t0) /. float_of_int iters in
  let share = repair_seconds /. reconstruct_seconds in
  Format.fprintf ppf
    "repair: %.2f ms vs %.0f ms reconstruct (%s) — %.2f%% of reconstruct \
     time (target < %.0f%%)@."
    (repair_seconds *. 1e3)
    (reconstruct_seconds *. 1e3)
    worst.name (100.0 *. share)
    (100.0 *. overhead_budget);
  (* -- verdicts ----------------------------------------------------- *)
  let fail = ref [] in
  if bad_conservation <> [] then
    fail :=
      Printf.sprintf "conservation regressed on %s"
        (String.concat ", " (List.map (fun r -> r.name) bad_conservation))
      :: !fail;
  if bad_mix <> [] then
    fail :=
      Printf.sprintf "mix error regressed on %s"
        (String.concat ", " (List.map (fun r -> r.name) bad_mix))
      :: !fail;
  if weak_chaos <> [] then
    fail :=
      Printf.sprintf "chaos fixture not strictly improved on %s"
        (String.concat ", " (List.map (fun r -> r.name) weak_chaos))
      :: !fail;
  if share > overhead_budget then
    fail :=
      Printf.sprintf "repair cost %.2f%% of reconstruct (budget %.0f%%)"
        (100.0 *. share)
        (100.0 *. overhead_budget)
      :: !fail;
  U.write_out "BENCH_repair.json"
    {|{
  %s,
  "overhead": {
    "workload": "%s",
    "repair_seconds": %.6f,
    "reconstruct_seconds": %.6f,
    "share_of_reconstruct": %.6f,
    "budget": %.2f
  },
  "chaos_fixture": "%s",
  "workloads": [
%s
  ],
  "chaos": [
%s
  ],
  "gates_passed": %b
}
|}
    (U.json_header ~bench:"repair")
    worst.name repair_seconds reconstruct_seconds share overhead_budget
    "every 7th live block zeroed"
    (String.concat ",\n" (List.map json_row rows))
    (String.concat ",\n" (List.map json_row chaos_rows))
    (!fail = []);
  Format.fprintf ppf "wrote BENCH_repair.json@.";
  match !fail with
  | [] -> ()
  | msgs -> failwith ("BENCH repair: " ^ String.concat "; " msgs)
