(* Streaming vs batch offline analysis: peak heap and wall time on the
   largest bundled workload (by record volume) at its default sampling
   periods.  Batch loads the whole archive and analyzes the materialized
   record list; streaming chunk-reads the same file(s) through the
   mergeable accumulators.  Each mode runs in a fresh child process so
   [Gc.top_heap_words] is a clean high-water mark (it never shrinks, so
   in-process comparison would measure whichever mode ran first).
   Writes BENCH_streaming.json. *)

open Hbbp_core
module Perf_data = Hbbp_collector.Perf_data
module U = Bench_util

let now = Unix.gettimeofday
let word_bytes = Sys.word_size / 8

(* Child-process protocol: the parent re-execs this benchmark binary
   with the role/paths/output file in the environment; the child does
   one measured analysis and writes "base_words peak_words records
   seconds" to the output file. *)
let role_var = "HBBP_BENCH_STREAMING_ROLE"
let paths_var = "HBBP_BENCH_STREAMING_PATHS"
let out_var = "HBBP_BENCH_STREAMING_OUT"

let child role paths out =
  let base = (Gc.quick_stat ()).Gc.top_heap_words in
  let t0 = now () in
  let records =
    match role with
    | "batch" -> (
        let path = List.hd paths in
        match Perf_data.load ~path with
        | Ok { Perf_data.archive; ledger } ->
            let r = Pipeline.analyze_archive ~ledger archive in
            ignore (Sys.opaque_identity r);
            List.length archive.Perf_data.records
        | Error e ->
            failwith
              (Format.asprintf "BENCH streaming: %s: %a" path
                 Perf_data.pp_error e))
    | _ -> (
        match Pipeline.analyze_archives paths with
        | Ok (_, r) ->
            ignore (Sys.opaque_identity r);
            Pipeline.Partial.record_count r.Pipeline.r_partial
        | Error msg -> failwith ("BENCH streaming: " ^ msg))
  in
  let dt = now () -. t0 in
  let peak = (Gc.quick_stat ()).Gc.top_heap_words in
  Bench_util.write_out out "%d %d %d %.6f\n" base peak records dt;
  exit 0

type measurement = {
  peak_bytes : int;  (** Analysis-attributable heap high-water mark. *)
  m_records : int;
  seconds : float;
}

let spawn_child role paths =
  let out = Filename.temp_file "hbbp-bench-streaming" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let env =
        Array.append (Unix.environment ())
          [|
            role_var ^ "=" ^ role;
            paths_var ^ "=" ^ String.concat ":" paths;
            out_var ^ "=" ^ out;
          |]
      in
      let prog = Sys.executable_name in
      let pid =
        Unix.create_process_env prog [| prog; "streaming" |] env Unix.stdin
          Unix.stdout Unix.stderr
      in
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> failwith ("BENCH streaming: " ^ role ^ " child failed"));
      let ic = open_in out in
      let line = input_line ic in
      close_in ic;
      Scanf.sscanf line "%d %d %d %f" (fun base peak records seconds ->
          { peak_bytes = (peak - base) * word_bytes; m_records = records; seconds }))

let run ppf =
  (match
     ( Sys.getenv_opt role_var,
       Sys.getenv_opt paths_var,
       Sys.getenv_opt out_var )
   with
  | Some role, Some paths, Some out ->
      child role (String.split_on_char ':' paths) out
  | _ -> ());
  U.header ppf "Streaming vs batch analysis (writes BENCH_streaming.json)";
  (* Largest bundled workload by collected record volume, at its default
     (runtime-class) periods. *)
  let names = Hbbp_workloads.Registry.names in
  let archives =
    Pipeline.collect_many ~jobs:!U.jobs
      (List.map Hbbp_workloads.Registry.find names)
  in
  let name, archive =
    List.fold_left2
      (fun ((_, best) as acc) name (a : Perf_data.t) ->
        if
          List.length a.Perf_data.records
          > List.length best.Perf_data.records
        then (name, a)
        else acc)
      (List.hd names, List.hd archives)
      names archives
  in
  let n_records = List.length archive.Perf_data.records in
  Format.fprintf ppf "largest workload: %s (%d records, periods %d/%d)@."
    name n_records archive.Perf_data.ebs_period archive.Perf_data.lbr_period;
  let path = Filename.temp_file "hbbp-bench" ".hbbp" in
  Perf_data.save archive ~path;
  let shard_paths = Perf_data.save_sharded archive ~shards:4 ~path in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path :: shard_paths))
  @@ fun () ->
  let batch = spawn_child "batch" [ path ] in
  let streaming = spawn_child "stream" [ path ] in
  let sharded = spawn_child "stream" shard_paths in
  List.iter
    (fun (label, m) ->
      Format.fprintf ppf
        "%-18s %8.3f s  %8.2f MB peak  %9.0f records/s@." label m.seconds
        (float_of_int m.peak_bytes /. 1e6)
        (float_of_int m.m_records /. m.seconds))
    [ ("batch", batch); ("streaming", streaming); ("4 shards", sharded) ]
  ;
  let ratio =
    float_of_int batch.peak_bytes /. float_of_int streaming.peak_bytes
  in
  Format.fprintf ppf "peak-heap ratio batch/streaming: %.2fx@." ratio;
  if batch.m_records <> n_records || streaming.m_records <> n_records then
    failwith "BENCH streaming: modes disagree on record count";
  let mode label m =
    Printf.sprintf
      {|"%s": { "seconds": %.3f, "peak_heap_bytes": %d, "records_per_sec": %.0f }|}
      label m.seconds m.peak_bytes
      (float_of_int m.m_records /. m.seconds)
  in
  U.write_out "BENCH_streaming.json"
    {|{
  %s,
  "workload": "%s",
  "records": %d,
  "ebs_period": %d,
  "lbr_period": %d,
  "chunk_records": %d,
  %s,
  %s,
  %s,
  "peak_ratio_batch_over_streaming": %.3f
}
|}
    (U.json_header ~bench:"streaming")
    name n_records archive.Perf_data.ebs_period archive.Perf_data.lbr_period
    Perf_data.Stream.default_chunk_records (mode "batch" batch)
    (mode "streaming" streaming)
    (mode "sharded" sharded) ratio;
  Format.fprintf ppf "wrote BENCH_streaming.json@."
