(* Telemetry overhead bench: demonstrates that the instrumentation the
   telemetry layer threads through the pipeline costs nothing when
   disabled and stays cheap when enabled, and that enabling it does not
   change a single profile byte.  Writes BENCH_telemetry.json.

   Three series over the same workloads, interleaved so drift hits all
   of them equally, best of [rounds] each:

   - baseline:  telemetry disabled (the default state);
   - disabled:  telemetry disabled again — the baseline re-measured, so
     the reported "disabled overhead" is pure run-to-run noise;
   - enabled:   tracing + metrics armed.

   A microbench of the disabled [with_span] fast path reports the
   per-call cost in nanoseconds. *)

open Hbbp_core
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics
module U = Bench_util

let now = Unix.gettimeofday

let workloads () =
  [
    Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse;
    Hbbp_workloads.Kernelbench.workload ();
  ]

let run_all ws = List.map (fun w -> Pipeline.run w) ws

let time f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)

(* Per-call cost of a disabled span: with_span around a cheap closure vs
   the closure alone, amortized over [n] calls. *)
let disabled_span_ns () =
  let n = 5_000_000 in
  let sink = ref 0 in
  let body () = incr sink in
  let bare () =
    for _ = 1 to n do
      body ()
    done
  in
  let spanned () =
    for _ = 1 to n do
      Trace.with_span "noop" body
    done
  in
  (* Warm both paths, then best of three each. *)
  bare ();
  spanned ();
  let best f =
    let b = ref infinity in
    for _ = 1 to 3 do
      let (), dt = time f in
      if dt < !b then b := dt
    done;
    !b
  in
  let bare_s = best bare and spanned_s = best spanned in
  (spanned_s -. bare_s) /. float_of_int n *. 1e9

let run ppf =
  U.header ppf "Telemetry overhead (writes BENCH_telemetry.json)";
  Trace.disable ();
  Trace.reset ();
  Metrics.disable ();
  Metrics.reset ();
  let ws = workloads () in
  let rounds = 3 in
  let baseline_s = ref infinity
  and disabled_s = ref infinity
  and enabled_s = ref infinity in
  let baseline_profiles = ref [] and enabled_profiles = ref [] in
  let span_count = ref 0 in
  for _ = 1 to rounds do
    (* baseline (telemetry off) *)
    let ps, dt = time (fun () -> run_all ws) in
    if dt < !baseline_s then baseline_s := dt;
    baseline_profiles := ps;
    (* enabled (tracing + metrics on) *)
    Trace.reset ();
    Metrics.reset ();
    Trace.enable ();
    Metrics.enable ();
    let ps, dt = time (fun () -> run_all ws) in
    Trace.disable ();
    Metrics.disable ();
    if dt < !enabled_s then enabled_s := dt;
    enabled_profiles := ps;
    span_count := Trace.span_count ();
    (* disabled (telemetry off again — noise floor) *)
    let _, dt = time (fun () -> run_all ws) in
    if dt < !disabled_s then disabled_s := dt
  done;
  Trace.reset ();
  Metrics.reset ();
  let identical =
    List.for_all2 Perf.profiles_equal !baseline_profiles !enabled_profiles
  in
  let frac v = (v -. !baseline_s) /. !baseline_s in
  let disabled_overhead = frac !disabled_s
  and enabled_overhead = frac !enabled_s in
  let span_ns = disabled_span_ns () in
  Format.fprintf ppf "%d workloads, best of %d rounds@." (List.length ws)
    rounds;
  Format.fprintf ppf "baseline (telemetry off): %8.3f s@." !baseline_s;
  Format.fprintf ppf "disabled re-measure:      %8.3f s  (%+.2f%% = noise)@."
    !disabled_s (100.0 *. disabled_overhead);
  Format.fprintf ppf "enabled (trace+metrics):  %8.3f s  (%+.2f%%, %d spans)@."
    !enabled_s
    (100.0 *. enabled_overhead)
    !span_count;
  Format.fprintf ppf "disabled with_span cost:  %8.1f ns/call@." span_ns;
  Format.fprintf ppf "profiles byte-identical with telemetry on: %b@."
    identical;
  if not identical then
    failwith "BENCH telemetry: enabling telemetry changed profile bytes";
  U.write_out "BENCH_telemetry.json"
    {|{
  %s,
  "workloads": %d,
  "rounds": %d,
  "baseline_s": %.4f,
  "disabled_s": %.4f,
  "enabled_s": %.4f,
  "disabled_overhead": %.4f,
  "enabled_overhead": %.4f,
  "disabled_span_ns": %.1f,
  "spans": %d,
  "profiles_identical": %b
}
|}
    (U.json_header ~bench:"telemetry")
    (List.length ws) rounds !baseline_s !disabled_s !enabled_s
    disabled_overhead enabled_overhead span_ns !span_count identical;
  Format.fprintf ppf "wrote BENCH_telemetry.json@.";
  (* CI gate: disabled telemetry must be free.  The disabled series is
     the baseline re-measured, so anything beyond 1% is a real
     regression of the disabled fast path, not noise — fail loudly. *)
  if disabled_overhead > 0.01 then
    failwith
      (Printf.sprintf
         "BENCH telemetry: disabled-telemetry overhead %.2f%% exceeds the \
          1%% budget"
         (100.0 *. disabled_overhead))
