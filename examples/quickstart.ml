(* Quickstart: write a program in the assembler DSL, profile it with
   HBBP, and read the instruction mix.

     dune exec examples/quickstart.exe
*)

open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_core

(* A little numeric kernel: sum of square roots, with a rarely-taken
   error path. *)
let program =
  [
    func "main"
      [
        i Mnemonic.MOV [ rbp; imm Hbbp_cpu.Layout.user_data_base ];
        i Mnemonic.MOV [ rcx; imm 200_000 ];
        i Mnemonic.XORPS [ xmm 5; xmm 5 ];
        label "loop";
        (* x = sqrt(rcx); acc += x *)
        i Mnemonic.CVTSI2SD [ xmm 0; rcx ];
        i Mnemonic.SQRTSD [ xmm 1; xmm 0 ];
        i Mnemonic.ADDSD [ xmm 5; xmm 1 ];
        (* every 64th iteration, spill the accumulator *)
        i Mnemonic.TEST [ rcx; imm 63 ];
        i Mnemonic.JNZ [ L "no_spill" ];
        i Mnemonic.MOVSD [ mem Operand.RBP; xmm 5 ];
        label "no_spill";
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "loop" ];
        i Mnemonic.RET_NEAR [];
      ];
  ]

let () =
  (* 1. Assemble into an image and wrap it as a workload. *)
  let image =
    assemble ~name:"quickstart" ~base:Hbbp_cpu.Layout.user_code_base
      ~ring:Ring.User program
  in
  let workload = Workload.of_user_image image ~entry_symbol:"main" in

  (* 2. Arm telemetry: a Chrome trace of the run plus the metrics
     registry.  Both are off by default; this is all it takes. *)
  Hbbp_telemetry.Telemetry.configure ~trace:"quickstart_trace.json"
    ~metrics:`Table ();

  (* 3. One call runs everything: the clean execution, the
     instrumentation reference, the dual-LBR collection and the HBBP
     reconstruction. *)
  let profile = Pipeline.run workload in

  (* 4. Inspect. *)
  Format.printf "%a@.@." Report.summary profile;
  Format.printf "Instruction mix (HBBP):@.";
  Hbbp_analyzer.Pivot.render Format.std_formatter
    (Hbbp_analyzer.Views.top_mnemonics 12
       (Pipeline.full_mix_of profile profile.Pipeline.hbbp));
  Format.printf "@.Accuracy against the instrumentation ground truth:@.";
  Report.method_comparison Format.std_formatter profile;

  (* 5. Flush telemetry: writes quickstart_trace.json (load it in
     Perfetto or chrome://tracing) and prints the metrics table. *)
  Format.printf "@.";
  Hbbp_telemetry.Telemetry.finalize Format.std_formatter
