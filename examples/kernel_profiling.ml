(* Kernel-space profiling — the paper's section VIII.D demonstration.

   The same prime-search routine runs as a user function and as a kernel
   module triggered through a syscall.  Software instrumentation only
   sees the user copy; HBBP profiles both, and the two mixes agree.

     dune exec examples/kernel_profiling.exe
*)

open Hbbp_core
open Hbbp_analyzer
module K = Hbbp_workloads.Kernelbench

let () =
  let p =
    Pipeline.run
      ~config:{ Pipeline.default_config with Pipeline.keep_records = true }
      (K.workload ())
  in
  let stats = p.Pipeline.stats in
  Format.printf
    "run: %d instructions (%d in the kernel).  Instrumentation lost all %d \
     kernel instructions; HBBP lost none.@.@."
    stats.Hbbp_cpu.Machine.retired stats.Hbbp_cpu.Machine.kernel_retired
    p.Pipeline.sde_lost_kernel;

  let full = Pipeline.full_mix_of p p.Pipeline.hbbp in
  Format.printf "Per-ring totals (HBBP):@.";
  Pivot.render Format.std_formatter (Pivot.pivot ~dims:[ Pivot.Ring_level ] full);

  Format.printf "@.Top functions across rings:@.";
  Pivot.render Format.std_formatter
    (Pivot.top 6 (Pivot.pivot ~dims:[ Pivot.Ring_level; Pivot.Symbol ] full));

  (* The self-modifying-code wrinkle: analyzing against the on-disk
     kernel text produces impossible streams until it is patched with
     the live text. *)
  let db = Sample_db.of_records p.Pipeline.records in
  let period = p.Pipeline.sim_periods.Hbbp_collector.Period.lbr in
  let unpatched =
    Lbr_estimator.estimate p.Pipeline.static_unpatched ~period
      db.Sample_db.lbr
  in
  let patched =
    Lbr_estimator.estimate p.Pipeline.static ~period db.Sample_db.lbr
  in
  Format.printf
    "@.Self-modifying kernel code: %d inconsistent streams against the \
     on-disk text, %d after patching it with the live .text (the paper's \
     remedy).@."
    unpatched.Lbr_estimator.inconsistent_streams
    patched.Lbr_estimator.inconsistent_streams;

  (* Table 7 in miniature: the user and kernel copies agree. *)
  let total_of symbol =
    Mix.total (Mix.filter (fun r -> String.equal r.Mix.symbol symbol) full)
  in
  Format.printf
    "@.%s (user): %.0f instructions; %s (kernel): %.0f — agreement within \
     %.2f%%.@."
    K.user_function (total_of K.user_function) K.kernel_function
    (total_of K.kernel_function)
    (100.0
    *. Float.abs (total_of K.user_function -. total_of K.kernel_function)
    /. total_of K.user_function)
