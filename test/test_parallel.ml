(* Tests for the multicore execution layer: Domain_pool semantics
   (ordering, exception propagation, empty input, shutdown) and the
   hard invariant that Pipeline.run_many produces byte-identical
   profiles for every job count. *)

open Hbbp_core
module Pool = Hbbp_util.Domain_pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Domain_pool                                                         *)

let test_map_empty () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_ilist "parallel empty" [] (Pool.map pool Fun.id []));
  check_ilist "sequential empty" [] (Pool.run ~jobs:1 Fun.id [])

let test_map_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Pool.with_pool ~jobs:4 (fun pool ->
      check_ilist "squares in input order" expected
        (Pool.map pool (fun x -> x * x) xs));
  check_ilist "jobs:1 identical" expected (Pool.run ~jobs:1 (fun x -> x * x) xs)

let test_exception_propagation () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (match
         Pool.map pool
           (fun x ->
             if x >= 5 then failwith (Printf.sprintf "boom %d" x) else x)
           (List.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "expected a Failure to propagate"
      | exception Failure msg ->
          Alcotest.(check string) "lowest-indexed failure wins" "boom 5" msg);
      (* A failing batch must not poison the pool. *)
      check_ilist "pool survives failure" [ 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

(* The supervised path must obey the same ordering and lowest-index
   laws as plain map, with Token.Cancelled surfacing as typed Timeout
   rather than a leaked domain or a raw exception. *)
let test_supervised_ok () =
  let xs = List.init 20 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Pool.with_pool ~jobs:4 (fun pool ->
      check_ilist "supervised squares in order" expected
        (Pool.map_supervised pool ~deadline_s:30.0
           (fun tok x ->
             Pool.Token.check tok;
             x * x)
           xs))

let test_supervised_timeout_lowest_index () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (match
         Pool.map_supervised pool ~deadline_s:0.02
           ~watchdog_interval_s:0.005
           (fun tok x ->
             if x >= 4 then begin
               (* Overrun the deadline while checking cooperatively:
                  the token, not wall clock, must end the task. *)
               let t0 = Unix.gettimeofday () in
               while Unix.gettimeofday () -. t0 < 2.0 do
                 Pool.Token.check tok
               done
             end;
             x)
           (List.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "expected a Timeout to propagate"
      | exception Pool.Timeout { index; elapsed_s } ->
          checki "lowest-indexed timed-out task wins" 4 index;
          checkb "positive elapsed time" true (elapsed_s > 0.0));
      (* A timed-out batch must not poison the pool. *)
      check_ilist "pool survives timeout" [ 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

let test_map_reduce () =
  let total =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map_reduce pool
          ~map:(fun x -> x + 1)
          ~fold:( + ) ~init:0
          (List.init 50 Fun.id))
  in
  checki "sum of 1..50" (50 * 51 / 2) total

let test_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  checki "jobs" 2 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.map pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

let test_default_jobs_positive () =
  checkb "default jobs >= 1" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Parallel profiling determinism                                      *)

let mk_workload ~seed name =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:("f_" ^ name) ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 15;
        mean_len = 5;
        len_jitter = 3;
        iterations = 6000;
        call_rate = 0.2;
        indirect_calls = false;
        profile = Hbbp_workloads.Codegen.int_only;
      }
  in
  Hbbp_workloads.Codegen.user_workload ~name funcs

let workloads () =
  [
    mk_workload ~seed:0xBEEFL "par-a";
    mk_workload ~seed:0x1234L "par-b";
    mk_workload ~seed:0xF00DL "par-c";
  ]

let keep_config =
  { Pipeline.default_config with Pipeline.keep_records = true }

(* Byte-identity of everything downstream analysis consumes. *)
let profiles_equal (a : Pipeline.profile) (b : Pipeline.profile) =
  compare a.stats b.stats = 0
  && compare a.reference.counts b.reference.counts = 0
  && compare a.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
       b.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
     = 0
  && compare a.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
       b.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
     = 0
  && compare a.hbbp.counts b.hbbp.counts = 0
  && compare a.reference_mix b.reference_mix = 0
  && compare a.pmu_counts b.pmu_counts = 0
  && compare a.records b.records = 0

let test_run_many_matches_sequential () =
  let seq = Pipeline.run_many ~jobs:1 ~config:keep_config (workloads ()) in
  let par = Pipeline.run_many ~jobs:4 ~config:keep_config (workloads ()) in
  checki "same cardinality" (List.length seq) (List.length par);
  List.iter2
    (fun a b -> checkb "profile byte-identical across job counts" true
        (profiles_equal a b))
    seq par;
  let direct = List.map (Pipeline.run ~config:keep_config) (workloads ()) in
  List.iter2
    (fun a b -> checkb "run_many jobs:1 = plain run" true (profiles_equal a b))
    seq direct

let test_run_many_mixes_and_errors_identical () =
  let seq = Pipeline.run_many ~jobs:1 ~config:keep_config (workloads ()) in
  let par = Pipeline.run_many ~jobs:4 ~config:keep_config (workloads ()) in
  List.iter2
    (fun (a : Pipeline.profile) (b : Pipeline.profile) ->
      checkb "HBBP mix identical" true
        (compare (Pipeline.mix_of a a.hbbp) (Pipeline.mix_of b b.hbbp) = 0);
      checkb "error report identical" true
        (compare
           (Pipeline.error_report a a.hbbp)
           (Pipeline.error_report b b.hbbp)
        = 0))
    seq par

let test_training_build_deterministic () =
  let ws = workloads () in
  let tree1, _ = Training.build ~jobs:1 ws in
  let tree4, _ = Training.build ~jobs:4 ws in
  checkb "trained tree identical across job counts" true
    (compare tree1 tree4 = 0)

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "empty input" `Quick test_map_empty;
          Alcotest.test_case "ordering" `Quick test_map_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "supervised ordering" `Quick test_supervised_ok;
          Alcotest.test_case "timeout lowest-index law" `Quick
            test_supervised_timeout_lowest_index;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "run_many byte-identical" `Quick
            test_run_many_matches_sequential;
          Alcotest.test_case "mixes and error reports" `Quick
            test_run_many_mixes_and_errors_identical;
          Alcotest.test_case "training build" `Quick
            test_training_build_deterministic;
        ] );
    ]
