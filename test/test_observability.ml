(* Tests for the observability additions: the continuous JSONL metric
   stream (Snapshot), the health rollup (Health), per-worker pool
   timelines, and the doctor's parallel-efficiency attribution. *)

open Hbbp_core
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics
module Snapshot = Hbbp_telemetry.Snapshot
module Health = Hbbp_telemetry.Health
module Pool = Hbbp_util.Domain_pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let clean f () =
  let finally () =
    Snapshot.finalize ();
    Trace.disable ();
    Trace.reset ();
    Metrics.disable ();
    Metrics.reset ()
  in
  Fun.protect ~finally f

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let starts_with ~prefix s = String.starts_with ~prefix s

(* ------------------------------------------------------------------ *)
(* Snapshot stream                                                     *)

let test_stream_seq_and_retention () =
  let path = Filename.temp_file "hbbp-test-stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.configure ~every_spans:1 ~retention:4 ~path ();
      checkb "stream active" true (Snapshot.active ());
      checks "path reported" path (Option.get (Snapshot.path ()));
      checkb "configure enabled metrics" true (Metrics.enabled ());
      (* Span recording stays off: the tick arms the site, not the
         buffers. *)
      checkb "tracing not required" false (Trace.enabled ());
      for _ = 1 to 6 do
        Trace.with_span "pulse" (fun () -> ())
      done;
      checki "one line per span at every_spans=1" 6 (Snapshot.seq ());
      checki "no spans recorded" 0 (Trace.span_count ());
      (* The ring retains only the newest [retention] lines. *)
      let recent = Snapshot.recent () in
      checki "ring bounded by retention" 4 (List.length recent);
      Alcotest.(check (list int))
        "ring holds the newest seqs, oldest first" [ 2; 3; 4; 5 ]
        (List.map fst recent);
      List.iter
        (fun (s, line) ->
          checkb "line carries its seq" true
            (starts_with ~prefix:(Printf.sprintf "{\"seq\":%d," s) line))
        recent;
      Snapshot.finalize ();
      checkb "inactive after finalize" false (Snapshot.active ());
      (* File holds every line (6 ticks + the final flush), seq gap-free
         from 0. *)
      let lines = read_lines path in
      checki "all lines on disk" 7 (List.length lines);
      List.iteri
        (fun i line ->
          checkb "gap-free monotonic seq" true
            (starts_with ~prefix:(Printf.sprintf "{\"seq\":%d," i) line);
          checkb "line carries a metrics object" true
            (let sub = "\"metrics\":{" in
             let n = String.length sub and m = String.length line in
             let rec go j =
               j + n <= m && (String.sub line j n = sub || go (j + 1))
             in
             go 0))
        lines;
      (* finalize is idempotent. *)
      Snapshot.finalize ())

let test_stream_interval_emission () =
  let path = Filename.temp_file "hbbp-test-stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Huge span threshold, tiny interval: emission must come from the
         clock, not the span count. *)
      Snapshot.configure ~every_spans:1_000_000 ~interval_s:0.01 ~path ();
      Trace.with_span "warm" (fun () -> ());
      Unix.sleepf 0.02;
      Trace.with_span "late" (fun () -> ());
      checkb "interval drove an emission" true (Snapshot.seq () >= 1);
      Snapshot.finalize ())

let test_stream_reconfigure () =
  let p1 = Filename.temp_file "hbbp-test-stream" ".jsonl" in
  let p2 = Filename.temp_file "hbbp-test-stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p1;
      Sys.remove p2)
    (fun () ->
      Snapshot.configure ~every_spans:1 ~path:p1 ();
      Trace.with_span "one" (fun () -> ());
      Snapshot.configure ~every_spans:1 ~path:p2 ();
      checki "seq restarts on reconfigure" 0 (Snapshot.seq ());
      checks "stream moved" p2 (Option.get (Snapshot.path ()));
      Trace.with_span "two" (fun () -> ());
      Snapshot.finalize ();
      checki "first stream kept its lines" 1 (List.length (read_lines p1));
      checki "second stream has tick + final" 2 (List.length (read_lines p2)))

let test_stream_rejects_bad_config () =
  (match Snapshot.configure ~every_spans:0 ~path:"/dev/null" () with
  | () -> Alcotest.fail "every_spans=0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Snapshot.configure ~retention:0 ~path:"/dev/null" () with
  | () -> Alcotest.fail "retention=0 must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Health rollup                                                       *)

let with_registry f =
  Metrics.reset ();
  Metrics.enable ();
  f ();
  let v = Health.evaluate (Metrics.snapshot ()) in
  Metrics.disable ();
  Metrics.reset ();
  v

let test_health_ok_on_clean_registry () =
  let s = with_registry (fun () -> ()) in
  checks "clean is ok" "ok" (Health.status_name s);
  checki "no reasons" 0 (List.length (Health.reasons s));
  checks "json shape" "{\"status\":\"ok\",\"reasons\":[]}" (Health.to_json s)

let test_health_flow_violation_is_critical () =
  let s =
    with_registry (fun () ->
        Metrics.incr (Metrics.counter "verify.flow_violations"))
  in
  checks "flow violation is critical" "critical" (Health.status_name s);
  checkb "reason names the subsystem" true
    (match Health.reasons s with r :: _ -> starts_with ~prefix:"verify:" r
                               | [] -> false)

let test_health_stream_failure_tiers () =
  let at rate =
    with_registry (fun () ->
        Metrics.set (Metrics.gauge "lbr.stream_failure_rate") rate)
  in
  checks "low failure rate is ok" "ok" (Health.status_name (at 0.05));
  checks "warn tier" "warn" (Health.status_name (at 0.20));
  checks "critical tier" "critical" (Health.status_name (at 0.60))

let test_health_pool_starvation_warns () =
  let s =
    with_registry (fun () ->
        Metrics.add (Metrics.counter "pool.tasks") 100;
        Metrics.set (Metrics.gauge "pool.utilization") 0.25)
  in
  checks "starved pool warns" "warn" (Health.status_name s);
  checkb "points at the doctor" true
    (List.exists
       (fun r ->
         let sub = "hbbp doctor" in
         let n = String.length sub and m = String.length r in
         let rec go i = i + n <= m && (String.sub r i n = sub || go (i + 1)) in
         go 0)
       (Health.reasons s))

let test_health_criticals_listed_first () =
  let s =
    with_registry (fun () ->
        Metrics.incr (Metrics.counter "faults.lost_record");
        Metrics.incr (Metrics.counter "verify.flow_violations"))
  in
  match Health.reasons s with
  | first :: rest ->
      checkb "critical reason first" true (starts_with ~prefix:"verify:" first);
      checkb "warning follows" true
        (List.exists (starts_with ~prefix:"faults:") rest)
  | [] -> Alcotest.fail "expected reasons"

let test_health_gc_promotion_gate () =
  (* Below the volume gate the ratio is not judged at all. *)
  let small =
    with_registry (fun () ->
        Metrics.add (Metrics.counter "gc.allocated_words") 1000;
        Metrics.add (Metrics.counter "gc.promoted_words") 900)
  in
  checks "tiny volume not judged" "ok" (Health.status_name small);
  let big =
    with_registry (fun () ->
        Metrics.add (Metrics.counter "gc.allocated_words") 10_000_000;
        Metrics.add (Metrics.counter "gc.promoted_words") 8_000_000)
  in
  checks "heavy promotion warns" "warn" (Health.status_name big)

(* ------------------------------------------------------------------ *)
(* Pool timelines                                                      *)

let test_pool_timeline () =
  let tasks = 8 in
  let check_timeline jobs =
    Pool.with_pool ~jobs (fun pool ->
        let (_ : unit list) =
          Pool.map pool
            (fun _ -> ignore (Sys.opaque_identity (ref 0)))
            (List.init tasks Fun.id)
        in
        let tl = Pool.timeline pool in
        checki "one timeline per worker" jobs (Array.length tl);
        let total =
          Array.fold_left
            (fun acc (w : Pool.worker_timeline) ->
              acc + Array.length w.intervals)
            0 tl
        in
        checki "every task left an interval" tasks total;
        Array.iter
          (fun (w : Pool.worker_timeline) ->
            checki "nothing dropped" 0 w.dropped;
            Array.iter
              (fun (t0, t1) -> checkb "interval well-formed" true (t1 >= t0))
              w.intervals;
            (* Chronological within a worker. *)
            ignore
              (Array.fold_left
                 (fun prev (t0, _) ->
                   checkb "intervals ordered" true (t0 >= prev);
                   t0)
                 0.0 w.intervals))
          tl)
  in
  (* The sequential path must account intervals too, not return zeros. *)
  check_timeline 1;
  check_timeline 3

(* ------------------------------------------------------------------ *)
(* Doctor                                                              *)

let mk_workload ~seed name =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:("f_" ^ name) ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 15;
        mean_len = 5;
        len_jitter = 3;
        iterations = 4000;
        call_rate = 0.2;
        indirect_calls = false;
        profile = Hbbp_workloads.Codegen.int_only;
      }
  in
  Hbbp_workloads.Codegen.user_workload ~name funcs

let test_doctor_report () =
  let w = mk_workload ~seed:0xD0C7L "doc-a" in
  let report = Doctor.run ~max_jobs:2 ~shards:4 w in
  checks "workload recorded" "doc-a" report.Doctor.rep_workload;
  checki "requested shard count" 4 report.Doctor.rep_shards;
  checkb "records counted" true (report.Doctor.rep_records > 0);
  checki "one run per job count" 2 (List.length report.Doctor.rep_runs);
  checkb "reconstruction consistent across job counts" true
    report.Doctor.rep_consistent;
  let r1 = List.hd report.Doctor.rep_runs in
  checki "first run is -j 1" 1 r1.Doctor.jr_jobs;
  Alcotest.(check (float 1e-9)) "j=1 speedup is 1" 1.0 r1.Doctor.jr_speedup;
  List.iter
    (fun (r : Doctor.jobs_run) ->
      checkb "wall covers stream phase" true (r.jr_wall_s >= r.jr_stream_s);
      checkb "efficiency positive" true (r.jr_efficiency > 0.0);
      checkb "utilization in [0,1]" true
        (r.jr_utilization >= 0.0 && r.jr_utilization <= 1.0 +. 1e-9);
      checkb "imbalance at least 1" true (r.jr_imbalance >= 1.0 -. 1e-9);
      checkb "task max >= mean" true (r.jr_task_max_s >= r.jr_task_mean_s);
      checkb "per-domain GC attributed" true (r.jr_domains <> []);
      let dg_tasks =
        List.fold_left (fun a d -> a + d.Doctor.dg_tasks) 0 r.jr_domains
      in
      checki "every task GC-bracketed" report.Doctor.rep_shards dg_tasks)
    report.Doctor.rep_runs;
  checkb "profiler attributed allocation spans" true
    (report.Doctor.rep_alloc_sites <> []);
  List.iter
    (fun (s : Doctor.alloc_site) ->
      checkb "site words positive" true (s.site_words > 0))
    report.Doctor.rep_alloc_sites;
  checkb "sampler mode reported" true (report.Doctor.rep_sampler <> "");
  (* JSON rendering is a single object with the headline fields. *)
  let json = Doctor.to_json report in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  checkb "json has workload" true (contains "\"workload\"");
  checkb "json has runs" true (contains "\"runs\"");
  checkb "json has consistency bit" true (contains "\"consistent\"");
  checkb "json has alloc sites" true (contains "\"alloc_sites\"")

let test_doctor_leaves_telemetry_off () =
  checkb "metrics off before" false (Metrics.enabled ());
  let w = mk_workload ~seed:0xD0C8L "doc-b" in
  let (_ : Doctor.report) = Doctor.run ~max_jobs:1 ~shards:2 w in
  (* The doctor armed metrics + profiler for itself and must restore the
     caller's (off) state. *)
  checkb "metrics restored to off" false (Metrics.enabled ());
  checkb "profiler restored to off" false
    (Hbbp_telemetry.Runtime_profiler.enabled ())

let () =
  Alcotest.run "observability"
    [
      ( "stream",
        [
          Alcotest.test_case "seq, retention and ring" `Quick
            (clean test_stream_seq_and_retention);
          Alcotest.test_case "interval-driven emission" `Quick
            (clean test_stream_interval_emission);
          Alcotest.test_case "reconfigure moves the stream" `Quick
            (clean test_stream_reconfigure);
          Alcotest.test_case "rejects invalid configuration" `Quick
            (clean test_stream_rejects_bad_config);
        ] );
      ( "health",
        [
          Alcotest.test_case "clean registry is ok" `Quick
            (clean test_health_ok_on_clean_registry);
          Alcotest.test_case "flow violation is critical" `Quick
            (clean test_health_flow_violation_is_critical);
          Alcotest.test_case "stream failure tiers" `Quick
            (clean test_health_stream_failure_tiers);
          Alcotest.test_case "pool starvation warns" `Quick
            (clean test_health_pool_starvation_warns);
          Alcotest.test_case "criticals listed first" `Quick
            (clean test_health_criticals_listed_first);
          Alcotest.test_case "gc promotion volume gate" `Quick
            (clean test_health_gc_promotion_gate);
        ] );
      ( "pool_timeline",
        [
          Alcotest.test_case "per-worker task intervals" `Quick
            (clean test_pool_timeline);
        ] );
      ( "doctor",
        [
          Alcotest.test_case "attribution report" `Quick
            (clean test_doctor_report);
          Alcotest.test_case "restores telemetry state" `Quick
            (clean test_doctor_leaves_telemetry_off);
        ] );
    ]
