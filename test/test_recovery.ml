(* Crash-safety tests: the durable-write layer (atomic publication,
   stale-staging cleanup), the seeded retry loop, the checkpoint and
   manifest formats (round-trip + corruption rejection), resumable
   sharded collection, checkpointed streaming analysis — and a
   kill-chaos harness that SIGKILLs a live collection at randomized
   points and asserts the resumed run converges to archives
   byte-identical to an uninterrupted one. *)

open Hbbp_core
module Perf_data = Hbbp_collector.Perf_data
module Manifest = Hbbp_collector.Manifest
module Durable = Hbbp_durable.Durable
module Retry = Hbbp_durable.Retry
module Metrics = Hbbp_telemetry.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Small deterministic synthetic workload, same shape as the fault and
   telemetry determinism tests. *)
let mk_workload ~seed name =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:("f_" ^ name) ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 14;
        mean_len = 5;
        len_jitter = 3;
        iterations = 5000;
        call_rate = 0.2;
        indirect_calls = false;
        profile = Hbbp_workloads.Codegen.int_only;
      }
  in
  Hbbp_workloads.Codegen.user_workload ~name funcs

let workload = lazy (mk_workload ~seed:0x5EC0L "recover")
let reference_archive = lazy (Pipeline.collect_archive (Lazy.force workload))

let fresh_base name = Filename.temp_file ("hbbp-recovery-" ^ name) ".hbbp"
let read_back path = In_channel.with_open_bin path In_channel.input_all

let cleanup base paths =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    ((base :: Manifest.path_for base :: paths)
    @ [ base ^ ".ckpt" ])

(* ------------------------------------------------------------------ *)
(* Durable writes                                                      *)

let test_durable_atomic () =
  let p = Filename.temp_file "hbbp-durable" ".bin" in
  Durable.write_file ~path:p "first";
  Alcotest.(check string) "first publication" "first" (read_back p);
  Durable.write_file ~path:p "second, longer than the first";
  Alcotest.(check string)
    "overwrite is complete, never blended" "second, longer than the first"
    (read_back p);
  (* A staging file a killed writer left behind is swept by resume. *)
  let stale = p ^ ".tmp.99999" in
  Out_channel.with_open_bin stale (fun oc ->
      Out_channel.output_string oc "torn");
  checki "one stale staging file removed" 1 (Durable.remove_stale ~path:p);
  checkb "stale file gone" false (Sys.file_exists stale);
  checkb "published file untouched" true
    (String.equal (read_back p) "second, longer than the first");
  Sys.remove p

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)

let quick_policy =
  { Retry.default with Retry.base_delay_s = 1e-6; max_delay_s = 1e-5 }

let test_retry () =
  let run () =
    let attempts = ref 0 in
    let v =
      Retry.with_retry ~policy:{ quick_policy with Retry.max_attempts = 5 }
        (fun () ->
          incr attempts;
          if !attempts < 4 then
            raise (Unix.Unix_error (Unix.EINTR, "test", ""));
          !attempts)
    in
    (v, !attempts)
  in
  checkb "retry schedule deterministic across runs" true (run () = run ());
  checkb "succeeds on the attempt that stops failing" true (run () = (4, 4));
  (match
     Retry.with_retry ~policy:{ quick_policy with Retry.max_attempts = 3 }
       (fun () -> raise (Unix.Unix_error (Unix.EAGAIN, "test", "")))
   with
  | () -> Alcotest.fail "expected exhaustion"
  | exception Retry.Exhausted { attempts; _ } ->
      checki "exhausted after max_attempts" 3 attempts);
  let calls = ref 0 in
  (match
     Retry.with_retry ~policy:quick_policy (fun () ->
         incr calls;
         failwith "fatal")
   with
  | () -> Alcotest.fail "expected the failure to propagate"
  | exception Failure _ -> checki "no retry on non-transient" 1 !calls)

(* ------------------------------------------------------------------ *)
(* Checkpoint format                                                   *)

let test_checkpoint_roundtrip () =
  let t =
    {
      Checkpoint.done_paths = [ "a.hbbp"; "dir with space/b.hbbp"; "" ];
      partial = Bytes.of_string "opaque partial payload";
    }
  in
  let data = Checkpoint.to_bytes t in
  (match Checkpoint.of_bytes data with
  | Ok t' -> checkb "round-trip" true (t = t')
  | Error e -> Alcotest.failf "round-trip: %s" e);
  (* Any single corrupted byte is rejected, never silently decoded. *)
  for i = 0 to Bytes.length data - 1 do
    let bad = Bytes.copy data in
    Bytes.set_uint8 bad i (Bytes.get_uint8 bad i lxor 0x40);
    match Checkpoint.of_bytes bad with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "corruption at byte %d accepted" i
  done;
  (* Every truncation is rejected. *)
  for len = 0 to Bytes.length data - 1 do
    match Checkpoint.of_bytes (Bytes.sub data 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
  done

(* ------------------------------------------------------------------ *)
(* Manifest format                                                     *)

let test_manifest_roundtrip () =
  let m =
    {
      Manifest.label = "work load with spaces";
      shards = 2;
      written =
        [
          Manifest.shard_of_bytes ~index:0 ~file:"shard 0of2.hbbp"
            (Bytes.of_string "abc");
          Manifest.shard_of_bytes ~index:1 ~file:"shard 1of2.hbbp"
            (Bytes.of_string "defg");
        ];
      complete = true;
    }
  in
  (match Manifest.of_string (Manifest.to_string m) with
  | Ok m' -> checkb "round-trip (spaces in basenames)" true (m = m')
  | Error e -> Alcotest.failf "round-trip: %s" e);
  let incomplete = { m with Manifest.complete = false } in
  (match Manifest.of_string (Manifest.to_string incomplete) with
  | Ok m' -> checkb "incomplete round-trip" true (m' = incomplete)
  | Error e -> Alcotest.failf "incomplete round-trip: %s" e);
  List.iter
    (fun bad ->
      match Manifest.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad manifest %S" bad)
    [
      "";
      "not a manifest";
      "hbbp-manifest v2\nshards 1\ncomplete\n";
      "hbbp-manifest v1\nshard 0 12 zz file\n";
    ]

(* ------------------------------------------------------------------ *)
(* Resumable sharded collection                                        *)

let expected_shards ~shards ~path =
  Perf_data.sharded_bytes (Lazy.force reference_archive) ~shards ~path

let check_archive_set ~shards ~base paths =
  List.iter2
    (fun p (p', data) ->
      Alcotest.(check string) "shard path" p' p;
      checkb
        (Printf.sprintf "%s byte-identical to uninterrupted run"
           (Filename.basename p))
        true
        (String.equal (read_back p) (Bytes.to_string data)))
    paths
    (expected_shards ~shards ~path:base);
  (match Manifest.load ~archive_path:base with
  | Some (Ok m) ->
      checkb "manifest complete" true m.Manifest.complete;
      checki "all shards verified" shards
        (List.length
           (Manifest.verified_indices ~dir:(Filename.dirname base) m))
  | Some (Error e) -> Alcotest.failf "manifest: %s" e
  | None -> Alcotest.fail "manifest missing");
  List.iter
    (fun p -> checki "no stale staging files" 0 (Durable.remove_stale ~path:p))
    (base :: paths)

let count status l = List.length (List.filter (( = ) status) l)

let test_collect_resume () =
  let shards = 3 in
  let base = fresh_base "collect" in
  let w = Lazy.force workload in
  let paths, statuses = Recover.collect_sharded ~shards ~path:base w in
  checkb "fresh run writes every shard" true
    (List.for_all (( = ) Recover.Written) statuses);
  check_archive_set ~shards ~base paths;
  (* Resume over a complete verified set touches nothing (and skips the
     collection entirely, via the manifest fast path). *)
  let _, st = Recover.collect_sharded ~resume:true ~shards ~path:base w in
  checkb "complete set fully reused" true
    (List.for_all (( = ) Recover.Reused) st);
  (* A missing shard is re-published; intact ones are reused. *)
  let victim = List.nth paths 1 in
  Sys.remove victim;
  let _, st = Recover.collect_sharded ~resume:true ~shards ~path:base w in
  checkb "missing shard rewritten" true
    (List.nth st 1 = Recover.Written
    && count Recover.Reused st = shards - 1);
  check_archive_set ~shards ~base paths;
  (* A torn shard (raw truncation, no rename) is detected and
     re-published. *)
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_string oc
        (String.sub (read_back (List.nth paths 0)) 0 64));
  let _, st = Recover.collect_sharded ~resume:true ~shards ~path:base w in
  checkb "torn shard rewritten" true (List.nth st 1 = Recover.Written);
  check_archive_set ~shards ~base paths;
  cleanup base paths

(* should_stop interruption publishes a loadable partial manifest. *)
let test_collect_interrupt () =
  let shards = 4 in
  let base = fresh_base "interrupt" in
  let w = Lazy.force workload in
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 2
  in
  (match
     Recover.collect_sharded ~should_stop:stop ~shards ~path:base w
   with
  | _ -> Alcotest.fail "expected Interrupted"
  | exception Recover.Interrupted -> ());
  (match Manifest.load ~archive_path:base with
  | Some (Ok m) ->
      checkb "interrupted manifest incomplete" false m.Manifest.complete;
      checki "two shards published before the stop" 2
        (List.length m.Manifest.written)
  | _ -> Alcotest.fail "interrupted manifest unreadable");
  let paths, st = Recover.collect_sharded ~resume:true ~shards ~path:base w in
  checki "published prefix reused" 2 (count Recover.Reused st);
  check_archive_set ~shards ~base paths;
  cleanup base paths

(* ------------------------------------------------------------------ *)
(* Kill-chaos: SIGKILL mid-collection, resume, byte-identity           *)

let test_kill_chaos () =
  let shards = 4 in
  let w = Lazy.force workload in
  List.iter
    (fun seed ->
      let base = fresh_base (Printf.sprintf "chaos%d" seed) in
      let rng = Random.State.make [| 0xC4A05; seed |] in
      let kill_delay = 0.01 +. Random.State.float rng 0.15 in
      (match Unix.fork () with
      | 0 ->
          (* Child: publish slowly so the SIGKILL lands at a random
             point of the collect/write/manifest sequence. *)
          (try
             ignore
               (Recover.collect_sharded ~inter_shard_delay_s:0.03 ~shards
                  ~path:base w)
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.sleepf kill_delay;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid));
      (* Either the kill landed (a real resume) or the child finished
         first (the complete-manifest fast path) — both are accounted. *)
      let resumes = Metrics.counter "recover.resumes" in
      let hits = Metrics.counter "recover.manifest_hits" in
      let before =
        Metrics.counter_value resumes + Metrics.counter_value hits
      in
      let paths, _ =
        Recover.collect_sharded ~resume:true ~shards ~path:base w
      in
      checki "resume or fast path accounted" (before + 1)
        (Metrics.counter_value resumes + Metrics.counter_value hits);
      check_archive_set ~shards ~base paths;
      cleanup base paths)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Checkpointed streaming analysis                                     *)

let serialize_result = function
  | Ok ((_ : Perf_data.t), r) ->
      Pipeline.Partial.serialize r.Pipeline.r_partial
  | Error msg -> Alcotest.failf "analysis failed: %s" msg

let test_partial_roundtrip () =
  let shards = 4 in
  let base = fresh_base "partial" in
  let paths =
    Perf_data.save_sharded (Lazy.force reference_archive) ~shards ~path:base
  in
  match Pipeline.analyze_archives paths with
  | Error msg -> Alcotest.failf "analyze: %s" msg
  | Ok (_, r) ->
      let p = r.Pipeline.r_partial in
      let static = Pipeline.Partial.static p in
      let blob = Pipeline.Partial.serialize p in
      (match Pipeline.Partial.restore ~static blob with
      | Error e -> Alcotest.failf "restore: %s" e
      | Ok p' ->
          checkb "serialize∘restore is the identity on the wire" true
            (Bytes.equal blob (Pipeline.Partial.serialize p')));
      (* Single-byte corruption of the blob is always rejected. *)
      let rejected = ref 0 in
      for i = 0 to Bytes.length blob - 1 do
        let bad = Bytes.copy blob in
        Bytes.set_uint8 bad i (Bytes.get_uint8 bad i lxor 0x20);
        match Pipeline.Partial.restore ~static bad with
        | Error _ -> incr rejected
        | Ok _ -> Alcotest.failf "partial corruption at byte %d accepted" i
      done;
      checki "every corruption rejected" (Bytes.length blob) !rejected;
      cleanup base paths

let test_analyze_resume_identical () =
  let shards = 4 in
  let base = fresh_base "analyze" in
  let ckpt = base ^ ".ckpt" in
  let paths =
    Perf_data.save_sharded (Lazy.force reference_archive) ~shards ~path:base
  in
  let uninterrupted = serialize_result (Pipeline.analyze_archives paths) in
  (* The resumable driver without an interruption is equivalent — and
     deletes its checkpoint on success. *)
  let straight =
    serialize_result (Recover.analyze_archives ~checkpoint:ckpt paths)
  in
  checkb "resumable driver equivalent when uninterrupted" true
    (Bytes.equal uninterrupted straight);
  checkb "checkpoint removed on success" false (Sys.file_exists ckpt);
  (* Interrupt after two archives, resume, compare. *)
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 2
  in
  (match Recover.analyze_archives ~checkpoint:ckpt ~should_stop:stop paths with
  | _ -> Alcotest.fail "expected Interrupted"
  | exception Recover.Interrupted -> ());
  checkb "checkpoint exists after interruption" true (Sys.file_exists ckpt);
  let restores = Metrics.counter "checkpoint.restores" in
  let restores0 = Metrics.counter_value restores in
  let resumed =
    serialize_result
      (Recover.analyze_archives ~resume:true ~checkpoint:ckpt paths)
  in
  checki "restore accounted" (restores0 + 1) (Metrics.counter_value restores);
  checkb "resumed analysis byte-identical" true
    (Bytes.equal uninterrupted resumed);
  checkb "checkpoint removed after resumed success" false
    (Sys.file_exists ckpt);
  (* A damaged checkpoint silently falls back to a full, correct run. *)
  Durable.write_file ~path:ckpt "garbage, not a checkpoint";
  let fallback =
    serialize_result
      (Recover.analyze_archives ~resume:true ~checkpoint:ckpt paths)
  in
  checkb "damaged checkpoint falls back to a full run" true
    (Bytes.equal uninterrupted fallback);
  cleanup base paths

let () =
  Alcotest.run "recovery"
    [
      ( "durable",
        [
          Alcotest.test_case "atomic publication" `Quick test_durable_atomic;
          Alcotest.test_case "retry" `Quick test_retry;
        ] );
      ( "formats",
        [
          Alcotest.test_case "checkpoint round-trip & corruption" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "manifest round-trip & corruption" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "partial round-trip & corruption" `Quick
            test_partial_roundtrip;
        ] );
      ( "collect",
        [
          Alcotest.test_case "resume reuses and repairs shards" `Quick
            test_collect_resume;
          Alcotest.test_case "interrupt publishes progress" `Quick
            test_collect_interrupt;
          Alcotest.test_case "kill-chaos converges byte-identical" `Quick
            test_kill_chaos;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "resume is byte-identical" `Quick
            test_analyze_resume_identical;
        ] );
    ]
