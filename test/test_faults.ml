(* Chaos, fuzz and graceful-degradation tests for the fault-injection
   subsystem: plan parsing, the zero-cost-when-disarmed guarantee,
   per-layer injection (PMU, collector, archive), salvage-and-continue
   archive reading, quality thresholds with single-channel fallback, and
   a seeded chaos grid asserting that every fault plan yields either a
   bounded-accuracy result or a typed diagnostic — never an uncaught
   exception. *)

open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_collector
open Hbbp_core
module Plan = Hbbp_faults.Fault_plan
module Faults = Hbbp_faults.Faults
module Durable = Hbbp_durable.Durable

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* profile.records is opt-in since the streaming refactor; these tests
   reconstruct from it. *)
let keep_config =
  { Pipeline.default_config with Pipeline.keep_records = true }

let run_keep w = Pipeline.run ~config:keep_config w

(* Every test leaves the global fault state as it found it: disarmed and
   with a clean tally. *)
let clean f () =
  let finally () =
    Faults.disarm ();
    Faults.reset_tally ()
  in
  Fun.protect ~finally f

let plan_of_spec spec =
  match Plan.of_string spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "bad plan %S: %s" spec msg

(* Small deterministic synthetic workload; same shape as the telemetry
   determinism tests. *)
let mk_workload ~seed name =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:("f_" ^ name) ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 14;
        mean_len = 5;
        len_jitter = 3;
        iterations = 5000;
        call_rate = 0.2;
        indirect_calls = false;
        profile = Hbbp_workloads.Codegen.int_only;
      }
  in
  Hbbp_workloads.Codegen.user_workload ~name funcs

let profiles_equal (a : Pipeline.profile) (b : Pipeline.profile) =
  compare a.stats b.stats = 0
  && compare a.pmu_health b.pmu_health = 0
  && compare a.reference.counts b.reference.counts = 0
  && compare a.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
       b.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
     = 0
  && compare a.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
       b.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
     = 0
  && compare a.hbbp.counts b.hbbp.counts = 0
  && compare a.reference_mix b.reference_mix = 0
  && compare a.pmu_counts b.pmu_counts = 0
  && compare a.records b.records = 0
  && compare a.quality b.quality = 0

let avg_err (p : Pipeline.profile) =
  (Pipeline.error_report p p.Pipeline.hbbp).Error.avg_weighted_error

let lost_in records =
  List.fold_left
    (fun acc r -> match r with Record.Lost n -> acc + n | _ -> acc)
    0 records

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

let full_spec =
  "seed=7,pmu.drop=0.05,pmu.burst_every=50,pmu.burst_len=4,pmu.skid=2,\
   pmu.jitter=3,lbr.truncate=8,lbr.stuck=0.05,lbr.misrotate=0.02,\
   rec.drop_comm=1.0,rec.drop_mmap=0.5,rec.drop_sample=0.02,rec.reorder=16,\
   arch.flips=3,arch.truncate=-100,io.enospc=0.01,io.partial_write=0.2,\
   io.eintr=0.3,io.rename_fail=0.05,io.fsync_fail=0.04"

let test_plan_parse () =
  let p = plan_of_spec full_spec in
  checkb "seed" true (p.Plan.seed = 7L);
  Alcotest.(check (float 1e-9)) "drop rate" 0.05 p.Plan.pmu.Plan.drop_rate;
  checki "burst every" 50 p.Plan.pmu.Plan.burst_every;
  checki "burst len" 4 p.Plan.pmu.Plan.burst_len;
  checki "extra skid" 2 p.Plan.pmu.Plan.extra_skid;
  checki "lbr truncate" 8 p.Plan.pmu.Plan.lbr_truncate;
  Alcotest.(check (float 1e-9))
    "drop comm" 1.0 p.Plan.collector.Plan.drop_comm_rate;
  checki "reorder window" 16 p.Plan.collector.Plan.reorder_window;
  checki "bit flips" 3 p.Plan.archive.Plan.bit_flips;
  checki "truncate at" (-100) p.Plan.archive.Plan.truncate_at;
  Alcotest.(check (float 1e-9)) "io enospc" 0.01 p.Plan.io.Plan.enospc_rate;
  Alcotest.(check (float 1e-9))
    "io partial write" 0.2 p.Plan.io.Plan.partial_write_rate;
  Alcotest.(check (float 1e-9)) "io eintr" 0.3 p.Plan.io.Plan.eintr_rate;
  Alcotest.(check (float 1e-9))
    "io rename fail" 0.05 p.Plan.io.Plan.rename_fail_rate;
  Alcotest.(check (float 1e-9))
    "io fsync fail" 0.04 p.Plan.io.Plan.fsync_fail_rate;
  checkb "io active" true (Plan.io_active p.Plan.io);
  checkb "inert io inactive" false (Plan.io_active Plan.none.Plan.io);
  (* Canonical spec strings parse back to the same plan. *)
  (match Plan.of_string (Plan.to_string p) with
  | Ok p' -> checkb "roundtrip" true (p = p')
  | Error e -> Alcotest.failf "roundtrip of %S: %s" (Plan.to_string p) e);
  match Plan.of_string (Plan.to_string Plan.none) with
  | Ok p' -> checkb "inert roundtrip" true (p' = Plan.none)
  | Error e -> Alcotest.failf "inert roundtrip: %s" e

let test_plan_bad_specs () =
  List.iter
    (fun spec ->
      match Plan.of_string spec with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
      | Error _ -> ())
    [
      "pmu.drop=1.5";
      "pmu.drop=-0.1";
      "bogus=1";
      "io.enospc=1.5";
      "io.eintr=-0.2";
      "io.bogus=1";
      "pmu.drop=abc";
      "seed=";
      "=1";
      "pmu.drop";
    ]

(* ------------------------------------------------------------------ *)
(* Zero cost when disarmed                                             *)

let test_disarmed_identity () =
  let w = mk_workload ~seed:0xFA01L "ident" in
  let p_off = run_keep w in
  Faults.arm Plan.none;
  let p_inert = run_keep w in
  Faults.disarm ();
  checkb "arming the inert plan leaves profiles byte-identical" true
    (profiles_equal p_off p_inert);
  let data = Perf_data.to_bytes (Pipeline.collect_archive w) in
  checkb "disarmed mangle is physically the identity" true
    (Faults.mangle_archive data == data);
  Faults.arm Plan.none;
  checkb "inert mangle is physically the identity" true
    (Faults.mangle_archive data == data);
  Faults.disarm ();
  checki "nothing tallied" 0 (List.length (Faults.tally ()))

(* ------------------------------------------------------------------ *)
(* Per-layer injection                                                 *)

let test_pmu_drops () =
  let w = mk_workload ~seed:0xFA02L "pmudrop" in
  let clean_p = run_keep w in
  Faults.reset_tally ();
  Faults.arm (plan_of_spec "seed=11,pmu.drop=0.05");
  let p = run_keep w in
  Faults.disarm ();
  let n_clean = List.length (Record.samples clean_p.Pipeline.records) in
  let n = List.length (Record.samples p.Pipeline.records) in
  checkb "samples were dropped" true (n < n_clean);
  let tallied =
    match List.assoc_opt "pmu.samples_dropped" (Faults.tally ()) with
    | Some v -> v
    | None -> 0
  in
  checki "tally matches the stream" (n_clean - n) tallied;
  checkb "PMIs still counted (the interrupt happened)" true
    (p.Pipeline.pmu_health.Pmu.pmi_count
    = clean_p.Pipeline.pmu_health.Pmu.pmi_count)

let test_lbr_corruption () =
  let w = mk_workload ~seed:0xFA03L "lbr" in
  Faults.reset_tally ();
  Faults.arm (plan_of_spec "seed=13,lbr.stuck=0.3,lbr.misrotate=0.3,lbr.truncate=4");
  let p = run_keep w in
  Faults.disarm ();
  let t = Faults.tally () in
  checkb "forced stuck snapshots tallied" true
    (List.mem_assoc "lbr.forced_stuck" t);
  checkb "forced misrotations tallied" true
    (List.mem_assoc "lbr.forced_misrotated" t);
  List.iter
    (fun (s : Record.sample) ->
      checkb "snapshots truncated to 4" true (Array.length s.Record.lbr <= 4))
    (Record.samples p.Pipeline.records)

let test_stream_faults_degrade () =
  let w = mk_workload ~seed:0xFA04L "stream" in
  Faults.arm (plan_of_spec "seed=5,rec.drop_sample=0.1,rec.reorder=8");
  let p = run_keep w in
  Faults.disarm ();
  let lost = lost_in p.Pipeline.records in
  checkb "drops reported via a trailing Lost record" true (lost > 0);
  match p.Pipeline.quality with
  | Pipeline.Full -> Alcotest.fail "expected degraded quality"
  | Pipeline.Degraded reasons ->
      checkb "Lost_records reason carries the count" true
        (List.exists
           (function Pipeline.Lost_records n -> n = lost | _ -> false)
           reasons)

(* ------------------------------------------------------------------ *)
(* Archive mangling, salvage and the fault ledger                      *)

let test_archive_truncation_salvage () =
  let w = mk_workload ~seed:0xFA05L "arctrunc" in
  let archive = Pipeline.collect_archive w in
  Faults.arm (plan_of_spec "seed=3,arch.truncate=-64");
  let data = Faults.mangle_archive (Perf_data.to_bytes archive) in
  Faults.disarm ();
  checki "64 bytes cut" (Bytes.length (Perf_data.to_bytes archive) - 64)
    (Bytes.length data);
  match Perf_data.of_bytes data with
  | Error e ->
      Alcotest.failf "tail truncation should salvage, got %s"
        (Format.asprintf "%a" Perf_data.pp_error e)
  | Ok { Perf_data.archive = salvaged; ledger } ->
      checkb "ledger records the damage" true (ledger <> []);
      checkb "a record prefix survived" true
        (List.length salvaged.Perf_data.records
        < List.length archive.Perf_data.records
        && salvaged.Perf_data.records <> []);
      let r = Pipeline.analyze_archive ~ledger salvaged in
      (match r.Pipeline.r_quality with
      | Pipeline.Degraded reasons ->
          checkb "archive fault surfaces as a degrade reason" true
            (List.exists
               (function Pipeline.Archive_fault _ -> true | _ -> false)
               reasons)
      | Pipeline.Full -> Alcotest.fail "salvaged archive must be degraded")

let test_archive_bit_flips () =
  let w = mk_workload ~seed:0xFA06L "arcflip" in
  let original = Perf_data.to_bytes (Pipeline.collect_archive w) in
  Faults.arm (plan_of_spec "seed=17,arch.flips=5");
  let data = Faults.mangle_archive original in
  Faults.disarm ();
  checkb "bytes actually changed" true (not (Bytes.equal data original));
  match Perf_data.of_bytes data with
  | Error _ -> () (* flips hit metadata: typed error *)
  | Ok { Perf_data.ledger; _ } ->
      checkb "flips in the payload show up in the ledger" true (ledger <> [])
  | exception e ->
      Alcotest.failf "bit flips raised %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Byte-level fuzz: truncation at every offset, flips at every byte    *)

(* Hand-built minimal archive so the O(length²) truncation sweep stays
   fast, with every record constructor represented. *)
let tiny_archive () =
  let img =
    assemble ~name:"w" ~base:Layout.user_code_base ~ring:Ring.User
      [
        func "main"
          [
            i Hbbp_isa.Mnemonic.ADD [ rax; imm 1 ];
            i Hbbp_isa.Mnemonic.RET_NEAR [];
          ];
      ]
  in
  let sample ?(lbr = [||]) event ip =
    Record.Sample { Record.event; ip; lbr; ring = Ring.User; time = ip }
  in
  {
    Perf_data.workload_name = "tiny";
    ebs_period = 97;
    lbr_period = 13;
    analysis_images = [ img ];
    live_kernel_text = [ ("vmlinux", Bytes.of_string "\x90\xc3") ];
    records =
      [
        Record.Comm { pid = 1; name = "tiny" };
        Record.Mmap
          {
            addr = Layout.user_code_base;
            len = 64;
            name = "w";
            ring = Ring.User;
          };
        Record.Fork { parent = 1; child = 2 };
        sample Pmu_event.Inst_retired_prec_dist (Layout.user_code_base + 4);
        sample
          ~lbr:
            [|
              { Lbr.src = Layout.user_code_base + 8;
                tgt = Layout.user_code_base };
              { Lbr.src = Layout.user_code_base + 16;
                tgt = Layout.user_code_base + 4 };
            |]
          Pmu_event.Br_inst_retired_near_taken
          (Layout.user_code_base + 8);
        Record.Lost 1;
      ];
  }

let test_fuzz_truncation_every_offset () =
  let a = tiny_archive () in
  List.iter
    (fun version ->
      let data = Perf_data.to_bytes ~version a in
      checkb "tiny archive stays small" true (Bytes.length data < 8192);
      for n = 0 to Bytes.length data do
        match Perf_data.of_bytes (Bytes.sub data 0 n) with
        | Ok { Perf_data.ledger; _ } ->
            if not (n = Bytes.length data || ledger <> []) then
              Alcotest.failf "v%d: clean Ok on truncated prefix %d/%d" version
                n (Bytes.length data)
        | Error _ -> ()
        | exception e ->
            Alcotest.failf "v%d: truncation at %d raised %s" version n
              (Printexc.to_string e)
      done)
    [ 1; 2 ]

let test_fuzz_bit_flip_every_byte () =
  let a = tiny_archive () in
  List.iter
    (fun version ->
      let data = Perf_data.to_bytes ~version a in
      for off = 0 to Bytes.length data - 1 do
        let flipped = Bytes.copy data in
        Bytes.set_uint8 flipped off
          (Bytes.get_uint8 flipped off lxor (1 lsl (off mod 8)));
        match Perf_data.of_bytes flipped with
        | Ok _ | Error _ -> ()
        | exception e ->
            Alcotest.failf "v%d: flip at byte %d raised %s" version off
              (Printexc.to_string e)
      done)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Round-trip edge cases                                               *)

let roundtrip_both_versions a =
  List.iter
    (fun version ->
      let data = Perf_data.to_bytes ~version a in
      match Perf_data.of_bytes data with
      | Error e ->
          Alcotest.failf "v%d: %s" version
            (Format.asprintf "%a" Perf_data.pp_error e)
      | Ok { Perf_data.archive = a'; ledger } ->
          checki "clean ledger" 0 (List.length ledger);
          checkb "canonical bytes" true
            (Bytes.equal data (Perf_data.to_bytes ~version a')))
    [ 1; 2 ]

let test_roundtrip_empty_records () =
  roundtrip_both_versions { (tiny_archive ()) with Perf_data.records = [] }

let test_roundtrip_empty_lbr_sample () =
  let a = tiny_archive () in
  roundtrip_both_versions
    {
      a with
      Perf_data.records =
        [
          Record.Sample
            {
              Record.event = Pmu_event.Br_inst_retired_near_taken;
              ip = Layout.user_code_base;
              lbr = [||];
              ring = Ring.User;
              time = 1;
            };
        ];
    }

let test_roundtrip_kernel_only_images () =
  let kimg =
    assemble ~name:"vmlinux" ~base:Layout.kernel_code_base ~ring:Ring.Kernel
      [ func "kmain" [ i Hbbp_isa.Mnemonic.RET_NEAR [] ] ]
  in
  let a =
    {
      (tiny_archive ()) with
      Perf_data.analysis_images = [ kimg ];
      live_kernel_text = [ ("vmlinux", kimg.Image.code) ];
      records = [];
    }
  in
  roundtrip_both_versions a;
  (* The patched analysis process is still constructible. *)
  let p = Perf_data.analysis_process a in
  checkb "kernel image present" true
    (Option.is_some (Process.find_image p "vmlinux"))

let test_session_records_no_run () =
  let img =
    assemble ~name:"w" ~base:Layout.user_code_base ~ring:Ring.User
      [ func "main" [ i Hbbp_isa.Mnemonic.RET_NEAR [] ] ]
  in
  let process = Process.create [ img ] in
  let session =
    Session.configure Pmu_model.default { Period.ebs = 997; lbr = 211 }
  in
  (* Never ran: the stream is just the COMM/MMAP header. *)
  let records = Session.records session process ~pid:1 ~name:"w" in
  checki "no samples" 0 (List.length (Record.samples records));
  checkb "header records present" true (List.length records >= 2);
  (* Armed sample-dropping faults have nothing to drop — and must not
     fabricate a Lost record. *)
  Faults.arm (plan_of_spec "seed=3,rec.drop_sample=1.0");
  let records' = Session.records session process ~pid:1 ~name:"w" in
  Faults.disarm ();
  checki "headers survive a sample-only drop plan" (List.length records)
    (List.length records');
  checki "no fabricated loss" 0 (lost_in records')

(* ------------------------------------------------------------------ *)
(* Quality thresholds and single-channel fallback                      *)

let reconstruct_of (p : Pipeline.profile) ?criteria ?thresholds records =
  Pipeline.reconstruct ?criteria ?thresholds ~static:p.Pipeline.static
    ~ebs_period:p.Pipeline.sim_periods.Period.ebs
    ~lbr_period:p.Pipeline.sim_periods.Period.lbr records

let bbec_counts_equal (a : Pipeline.reconstruction)
    (b : Pipeline.reconstruction) =
  compare a.Pipeline.r_hbbp.Hbbp_analyzer.Bbec.counts
    b.Pipeline.r_hbbp.Hbbp_analyzer.Bbec.counts
  = 0

let test_threshold_boundaries () =
  let w = mk_workload ~seed:0xFA07L "thresh" in
  let p = run_keep w in
  let r = reconstruct_of p p.Pipeline.records in
  checkb "clean run is full quality" true
    (r.Pipeline.r_quality = Pipeline.Full);
  let snaps = r.Pipeline.r_lbr.Hbbp_analyzer.Lbr_estimator.snapshots in
  let ebs_total =
    Array.fold_left ( + )
      r.Pipeline.r_ebs.Hbbp_analyzer.Ebs_estimator.unattributed
      r.Pipeline.r_ebs.Hbbp_analyzer.Ebs_estimator.raw
  in
  (* LBR threshold: exactly at the boundary stays Full; one past trips
     degradation and the EBS-only fallback. *)
  let at =
    { Pipeline.default_thresholds with Pipeline.min_lbr_snapshots = snaps }
  in
  checkb "snapshots = min is full" true
    ((reconstruct_of p ~thresholds:at p.Pipeline.records).Pipeline.r_quality
    = Pipeline.Full);
  let past =
    { Pipeline.default_thresholds with Pipeline.min_lbr_snapshots = snaps + 1 }
  in
  let r' = reconstruct_of p ~thresholds:past p.Pipeline.records in
  (match r'.Pipeline.r_quality with
  | Pipeline.Full -> Alcotest.fail "expected degraded"
  | Pipeline.Degraded reasons ->
      checkb "LBR starvation reported" true
        (List.exists
           (function Pipeline.Lbr_starved _ -> true | _ -> false)
           reasons);
      checkb "EBS-only fallback reported" true
        (List.mem (Pipeline.Fallback `Ebs_only) reasons));
  (* The fallback result is exactly the cutoff-0 (all-EBS) fusion. *)
  let all_ebs =
    reconstruct_of p
      ~criteria:(Criteria.Length_rule { cutoff = 0; bias_to_ebs = false })
      p.Pipeline.records
  in
  checkb "EBS-only fallback equals cutoff-0 fusion" true
    (bbec_counts_equal r' all_ebs);
  (* Same dance on the EBS side. *)
  let at =
    { Pipeline.default_thresholds with Pipeline.min_ebs_samples = ebs_total }
  in
  checkb "samples = min is full" true
    ((reconstruct_of p ~thresholds:at p.Pipeline.records).Pipeline.r_quality
    = Pipeline.Full);
  let past =
    {
      Pipeline.default_thresholds with
      Pipeline.min_ebs_samples = ebs_total + 1;
    }
  in
  let r'' = reconstruct_of p ~thresholds:past p.Pipeline.records in
  match r''.Pipeline.r_quality with
  | Pipeline.Full -> Alcotest.fail "expected degraded"
  | Pipeline.Degraded reasons ->
      checkb "LBR-only fallback reported" true
        (List.mem (Pipeline.Fallback `Lbr_only) reasons)

let strip_event event records =
  List.filter
    (fun r ->
      match r with
      | Record.Sample s -> not (Pmu_event.equal s.Record.event event)
      | _ -> true)
    records

let test_stripped_channel_fallback () =
  let w = mk_workload ~seed:0xFA08L "strip" in
  let p = run_keep w in
  (* No EBS samples at all → reconstruct from LBR alone. *)
  let no_ebs = strip_event Pmu_event.Inst_retired_prec_dist p.Pipeline.records in
  let r = reconstruct_of p no_ebs in
  (match r.Pipeline.r_quality with
  | Pipeline.Full -> Alcotest.fail "no EBS: expected degraded"
  | Pipeline.Degraded reasons ->
      checkb "EBS starvation reported" true
        (List.exists
           (function Pipeline.Ebs_starved _ -> true | _ -> false)
           reasons);
      checkb "LBR-only fallback" true
        (List.mem (Pipeline.Fallback `Lbr_only) reasons));
  (* No LBR samples at all → reconstruct from EBS alone. *)
  let no_lbr =
    strip_event Pmu_event.Br_inst_retired_near_taken p.Pipeline.records
  in
  let r = reconstruct_of p no_lbr in
  match r.Pipeline.r_quality with
  | Pipeline.Full -> Alcotest.fail "no LBR: expected degraded"
  | Pipeline.Degraded reasons ->
      checkb "EBS-only fallback" true
        (List.mem (Pipeline.Fallback `Ebs_only) reasons)

(* ------------------------------------------------------------------ *)
(* Chaos grid                                                          *)

(* Documented chaos accuracy bound: with sample loss at or below 5%, the
   HBBP average weighted mix error may exceed the clean run's by at most
   this margin (absolute).  The clean error on these synthetic workloads
   is ~2-4%; the margin is deliberately generous but still catches a
   channel collapsing. *)
let chaos_err_margin = 0.10

(* Plans exercising each layer and their combination; [bounded] marks
   plans mild enough (≤5% sample loss, no archive damage) that the
   accuracy bound must hold. *)
let chaos_plans =
  [
    ("pmu.drop=0.05", true);
    ("pmu.drop=0.02,pmu.burst_every=300,pmu.burst_len=5", true);
    ("pmu.skid=2,pmu.jitter=3", true);
    ("lbr.stuck=0.2,lbr.misrotate=0.2,lbr.truncate=6", false);
    ("rec.drop_sample=0.05,rec.reorder=8", true);
    ("rec.drop_comm=1.0,rec.drop_mmap=1.0", false);
    ("arch.flips=4", false);
    ("arch.truncate=-200", false);
    ("pmu.drop=0.03,lbr.stuck=0.1,rec.drop_sample=0.03,rec.reorder=4,arch.flips=2",
     false);
  ]

(* Fixed seeds (the CI chaos matrix), plus HBBP_CHAOS_SEED for ad-hoc
   exploration. *)
let chaos_seeds =
  let base = [ 1; 2; 3 ] in
  match Option.bind (Sys.getenv_opt "HBBP_CHAOS_SEED") int_of_string_opt with
  | Some n when not (List.mem n base) -> base @ [ n ]
  | Some _ | None -> base

(* On failure, keep the mangled archive around for post-mortem when
   HBBP_CHAOS_ARTIFACTS names a directory (the CI chaos job uploads
   it). *)
let dump_artifact ~seed ~spec data =
  match Sys.getenv_opt "HBBP_CHAOS_ARTIFACTS" with
  | None -> ()
  | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      let slug =
        String.map
          (fun c -> if c = '=' || c = ',' || c = '.' then '_' else c)
          spec
      in
      let path =
        Filename.concat dir (Printf.sprintf "chaos_s%d_%s.hbbp" seed slug)
      in
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc

let test_chaos_grid () =
  let w = mk_workload ~seed:0xC0DEL "chaos" in
  let clean_p = run_keep w in
  let clean_err = avg_err clean_p in
  List.iter
    (fun seed ->
      List.iter
        (fun (spec, bounded) ->
          let full = Printf.sprintf "seed=%d,%s" seed spec in
          let plan = plan_of_spec full in
          (* Injection itself must never raise. *)
          let p, data =
            try
              Faults.reset_tally ();
              Faults.arm plan;
              let p = run_keep w in
              let archive = Pipeline.collect_archive w in
              let data = Faults.mangle_archive (Perf_data.to_bytes archive) in
              Faults.disarm ();
              (p, data)
            with e ->
              Faults.disarm ();
              Alcotest.failf "chaos %s: uncaught exception %s" full
                (Printexc.to_string e)
          in
          (* Collection loss above threshold must be labelled. *)
          let lost = lost_in p.Pipeline.records in
          (if
             lost
             > Pipeline.default_thresholds.Pipeline.max_lost_records
           then
             match p.Pipeline.quality with
             | Pipeline.Degraded _ -> ()
             | Pipeline.Full ->
                 Alcotest.failf "chaos %s: lost %d records but quality full"
                   full lost);
          (* Mild plans: bounded accuracy loss. *)
          (if bounded then
             let err = avg_err p in
             if err > clean_err +. chaos_err_margin then
               Alcotest.failf
                 "chaos %s: error %.4f exceeds clean %.4f by more than %.2f"
                 full err clean_err chaos_err_margin);
          (* The mangled archive: typed error or salvage, and salvage
             analyzes as degraded — never an exception. *)
          match Perf_data.of_bytes data with
          | Error _ -> ()
          | Ok { Perf_data.archive; ledger } -> (
              let r =
                try Pipeline.analyze_archive ~ledger archive
                with e ->
                  dump_artifact ~seed ~spec data;
                  Alcotest.failf "chaos %s: analyze raised %s" full
                    (Printexc.to_string e)
              in
              if ledger <> [] then
                match r.Pipeline.r_quality with
                | Pipeline.Degraded _ -> ()
                | Pipeline.Full ->
                    Alcotest.failf
                      "chaos %s: %d ledger faults but full quality" full
                      (List.length ledger))
          | exception e ->
              dump_artifact ~seed ~spec data;
              Alcotest.failf "chaos %s: of_bytes raised %s" full
                (Printexc.to_string e))
        chaos_plans)
    chaos_seeds

(* ------------------------------------------------------------------ *)
(* IO-layer injection at the durable write paths                       *)

let io_payload =
  String.init 4096 (fun i -> Char.chr (((i * 31) + 7) land 0xff))

let io_target name = Filename.temp_file ("hbbp-io-" ^ name) ".bin"
let read_back path = In_channel.with_open_bin path In_channel.input_all

let no_stale path =
  checki
    ("no stale tmp beside " ^ Filename.basename path)
    0
    (Durable.remove_stale ~path)

let test_io_disarmed_identity () =
  let p1 = io_target "off" and p2 = io_target "inert" in
  Durable.write_file ~path:p1 io_payload;
  Faults.arm Plan.none;
  Durable.write_file ~path:p2 io_payload;
  Faults.disarm ();
  checkb "disarmed and inert-armed durable writes byte-identical" true
    (String.equal (read_back p1) (read_back p2));
  no_stale p1;
  no_stale p2;
  checki "nothing tallied" 0 (List.length (Faults.tally ()));
  Sys.remove p1;
  Sys.remove p2

let test_io_absorbed_faults_identical () =
  (* Transient faults at every site, at rates the in-loop absorption and
     the retry wrapper recover from: published bytes must not change. *)
  let clean = io_target "clean" and faulty = io_target "faulty" in
  Durable.write_file ~path:clean io_payload;
  Faults.reset_tally ();
  Faults.arm
    (plan_of_spec
       "seed=23,io.partial_write=1.0,io.eintr=0.5,io.rename_fail=0.3,\
        io.fsync_fail=0.3");
  Durable.write_file ~path:faulty io_payload;
  Faults.disarm ();
  checkb "published bytes identical under absorbed io faults" true
    (String.equal (read_back clean) (read_back faulty));
  no_stale faulty;
  checkb "io faults tallied" true
    (List.exists
       (fun (k, n) -> String.equal k "io.partial_write" && n > 0)
       (Faults.tally ()));
  Sys.remove clean;
  Sys.remove faulty

let test_io_enospc_typed () =
  let path = io_target "enospc" in
  Sys.remove path;
  Faults.arm (plan_of_spec "seed=29,io.enospc=1.0");
  (match Durable.write_file ~path io_payload with
  | () -> Alcotest.fail "io.enospc=1.0 write unexpectedly succeeded"
  | exception Durable.No_space _ -> ());
  Faults.disarm ();
  checkb "target absent after failed publication" false (Sys.file_exists path);
  no_stale path

let test_io_rename_exhausts () =
  let path = io_target "rename" in
  Sys.remove path;
  Faults.arm (plan_of_spec "seed=31,io.rename_fail=1.0");
  (match Durable.write_file ~path io_payload with
  | () -> Alcotest.fail "io.rename_fail=1.0 write unexpectedly succeeded"
  | exception Hbbp_durable.Retry.Exhausted _ -> ());
  Faults.disarm ();
  checkb "target absent after exhausted publication" false
    (Sys.file_exists path);
  no_stale path

let test_chaos_determinism () =
  let w = mk_workload ~seed:0xC0DEL "det" in
  let spec =
    "seed=9,pmu.drop=0.04,lbr.stuck=0.1,rec.drop_sample=0.03,rec.reorder=4,\
     arch.flips=2"
  in
  let run_once () =
    Faults.reset_tally ();
    Faults.arm (plan_of_spec spec);
    let p = run_keep w in
    let data =
      Faults.mangle_archive (Perf_data.to_bytes (Pipeline.collect_archive w))
    in
    let t = Faults.tally () in
    Faults.disarm ();
    (p, data, t)
  in
  let p1, d1, t1 = run_once () in
  let p2, d2, t2 = run_once () in
  checkb "faulted profiles identical across runs" true (profiles_equal p1 p2);
  checkb "mangled archives identical across runs" true (Bytes.equal d1 d2);
  checkb "fault tallies identical across runs" true (t1 = t2)

let () =
  let tc name speed f = Alcotest.test_case name speed (clean f) in
  Alcotest.run "faults"
    [
      ( "plan",
        [
          tc "parse and roundtrip" `Quick test_plan_parse;
          tc "bad specs rejected" `Quick test_plan_bad_specs;
        ] );
      ("disarmed", [ tc "byte-identity" `Quick test_disarmed_identity ]);
      ( "inject",
        [
          tc "pmu sample drops" `Quick test_pmu_drops;
          tc "lbr corruption" `Quick test_lbr_corruption;
          tc "stream faults degrade" `Quick test_stream_faults_degrade;
        ] );
      ( "archive",
        [
          tc "truncation salvage" `Quick test_archive_truncation_salvage;
          tc "bit flips" `Quick test_archive_bit_flips;
        ] );
      ( "io",
        [
          tc "disarmed byte-identity at write sites" `Quick
            test_io_disarmed_identity;
          tc "absorbed faults keep bytes identical" `Quick
            test_io_absorbed_faults_identical;
          tc "enospc surfaces typed" `Quick test_io_enospc_typed;
          tc "rename exhaustion surfaces typed" `Quick
            test_io_rename_exhausts;
        ] );
      ( "fuzz",
        [
          tc "truncation at every offset" `Quick
            test_fuzz_truncation_every_offset;
          tc "bit flip at every byte" `Quick test_fuzz_bit_flip_every_byte;
        ] );
      ( "roundtrip",
        [
          tc "empty records" `Quick test_roundtrip_empty_records;
          tc "empty-lbr sample" `Quick test_roundtrip_empty_lbr_sample;
          tc "kernel-only images" `Quick test_roundtrip_kernel_only_images;
          tc "session without a run" `Quick test_session_records_no_run;
        ] );
      ( "degrade",
        [
          tc "threshold boundaries" `Quick test_threshold_boundaries;
          tc "stripped-channel fallback" `Quick
            test_stripped_channel_fallback;
        ] );
      ( "chaos",
        [
          tc "seeded fault-plan grid" `Slow test_chaos_grid;
          tc "determinism under faults" `Quick test_chaos_determinism;
        ] );
    ]
