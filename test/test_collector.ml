(* Tests for the collector: periods, capabilities, the dual-LBR session
   and the record stream. *)

open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_collector

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_period_table () =
  let p = Period.paper Period.Seconds in
  checki "seconds EBS" 1_000_037 p.Period.ebs;
  checki "seconds LBR" 100_003 p.Period.lbr;
  let p = Period.paper Period.Minutes_spec in
  checki "spec EBS" 100_000_007 p.Period.ebs;
  checki "spec LBR" 10_000_019 p.Period.lbr;
  List.iter
    (fun cls ->
      let paper = Period.paper cls and sim = Period.simulation cls in
      checkb "LBR period below EBS period" true (paper.Period.lbr < paper.Period.ebs);
      checkb "sim LBR below sim EBS" true (sim.Period.lbr < sim.Period.ebs))
    Period.all_classes

let test_period_classify () =
  checkb "small run is seconds class" true
    (Period.classify ~expected_instructions:1_000_000 = Period.Seconds);
  checkb "large run is SPEC class" true
    (Period.classify ~expected_instructions:50_000_000 = Period.Minutes_spec)

let test_capabilities_decline () =
  (* The paper's point: support declines with newer generations. *)
  let count gen =
    List.length
      (List.filter
         (fun cls -> Capabilities.support gen cls = Capabilities.Supported)
         Capabilities.event_classes)
  in
  checkb "haswell supports fewer than westmere" true
    (count Capabilities.Haswell < count Capabilities.Westmere);
  checkb "avx events absent on westmere" true
    (Capabilities.support Capabilities.Westmere Capabilities.Math_avx_fp
    = Capabilities.Not_available)

let test_capabilities_event_mapping () =
  checkb "div cycles maps to an event" true
    (Option.is_some (Capabilities.event_for Capabilities.Div_cycles));
  checkb "int simd removed on ivy bridge" true
    (Option.is_none (Capabilities.event_for Capabilities.Int_simd))

let collect () =
  let funcs =
    [
      func "main"
        [
          i Hbbp_isa.Mnemonic.MOV [ rcx; imm 30000 ];
          label "l";
          i Hbbp_isa.Mnemonic.ADD [ rax; imm 1 ];
          i Hbbp_isa.Mnemonic.TEST [ rax; imm 3 ];
          i Hbbp_isa.Mnemonic.JZ [ L "skip" ];
          i Hbbp_isa.Mnemonic.SUB [ rbx; imm 1 ];
          label "skip";
          i Hbbp_isa.Mnemonic.DEC [ rcx ];
          i Hbbp_isa.Mnemonic.JNZ [ L "l" ];
          i Hbbp_isa.Mnemonic.RET_NEAR [];
        ];
    ]
  in
  let img =
    assemble ~name:"w" ~base:Layout.user_code_base ~ring:Ring.User funcs
  in
  let process = Process.create [ img ] in
  let machine = Machine.create ~process () in
  let session =
    Session.configure Pmu_model.default { Period.ebs = 997; lbr = 211 }
  in
  Machine.add_observer machine (Pmu.observer (Session.pmu session));
  let entry =
    (Option.get (Image.find_symbol img "main")).Hbbp_program.Symbol.addr
  in
  let stats = Machine.run machine ~entry () in
  (session, process, stats)

let test_session_records () =
  let session, process, stats = collect () in
  let records = Session.records session process ~pid:1 ~name:"w" in
  let samples = Record.samples records in
  checkb "has samples" true (List.length samples > 50);
  checki "one mmap per image" 1 (List.length (Record.mmaps records));
  (* Both events appear; EBS samples carry an IP, LBR samples carry a
     stack. *)
  let ebs, lbr =
    List.partition
      (fun (s : Record.sample) ->
        Pmu_event.equal s.event Pmu_event.Inst_retired_prec_dist)
      samples
  in
  checkb "ebs samples present" true (List.length ebs > 0);
  checkb "lbr samples present" true (List.length lbr > 0);
  List.iter
    (fun (s : Record.sample) ->
      checkb "lbr samples have stacks" true (Array.length s.lbr > 0))
    lbr;
  checkb "approximately retired/period EBS samples" true
    (abs (List.length ebs - (stats.Machine.retired / 997)) <= 3)

let test_overhead_model () =
  let _, _, stats = collect () in
  let small =
    Session.overhead_fraction
      ~paper:(Period.paper Period.Minutes_spec)
      ~stats ~model:Pmu_model.default
  in
  let large =
    Session.overhead_fraction
      ~paper:(Period.paper Period.Seconds)
      ~stats ~model:Pmu_model.default
  in
  checkb "overhead positive" true (small > 0.0);
  checkb "shorter periods cost more" true (large > small);
  checkb "overhead stays small" true (large < 0.1)

(* ------------------------------------------------------------------ *)
(* Perf_data archives                                                  *)

let test_archive_roundtrip () =
  let w = Hbbp_workloads.Kernelbench.workload () in
  let archive =
    Hbbp_core.Pipeline.collect_archive
      ~config:
        { Hbbp_core.Pipeline.default_config with
          periods = `Fixed { Period.ebs = 2003; lbr = 401 } }
      w
  in
  let data = Perf_data.to_bytes archive in
  match Perf_data.of_bytes data with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Perf_data.pp_error e)
  | Ok { Perf_data.archive = archive'; ledger } ->
      checki "clean ledger" 0 (List.length ledger);
      Alcotest.(check string)
        "workload name" archive.Perf_data.workload_name
        archive'.Perf_data.workload_name;
      checki "ebs period" archive.Perf_data.ebs_period
        archive'.Perf_data.ebs_period;
      checki "images" (List.length archive.Perf_data.analysis_images)
        (List.length archive'.Perf_data.analysis_images);
      checki "records" (List.length archive.Perf_data.records)
        (List.length archive'.Perf_data.records);
      checki "live kernel texts"
        (List.length archive.Perf_data.live_kernel_text)
        (List.length archive'.Perf_data.live_kernel_text);
      (* Byte-identical re-serialisation. *)
      checkb "canonical bytes" true
        (Bytes.equal data (Perf_data.to_bytes archive'))

let test_archive_errors () =
  (match Perf_data.of_bytes (Bytes.of_string "NOTHBBP!") with
  | Error Perf_data.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (match Perf_data.of_bytes (Bytes.of_string "HB") with
  | Error Perf_data.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  let bad_version = Bytes.of_string "HBBPDATA\xff" in
  match Perf_data.of_bytes bad_version with
  | Error (Perf_data.Bad_version 255) -> ()
  | _ -> Alcotest.fail "expected Bad_version"

let test_archive_kernel_patch () =
  let w = Hbbp_workloads.Kernelbench.workload () in
  let archive = Hbbp_core.Pipeline.collect_archive w in
  let process = Perf_data.analysis_process archive in
  let patched =
    Option.get (Hbbp_program.Process.find_image process "vmlinux")
  in
  let live =
    Option.get
      (Hbbp_program.Process.find_image
         w.Hbbp_core.Workload.live_process "vmlinux")
  in
  checkb "archive analysis uses live kernel text" true
    (Bytes.equal patched.Hbbp_program.Image.code live.Hbbp_program.Image.code)

let test_offline_analysis_matches_online () =
  (* The same records analyzed offline must give the same HBBP BBECs as
     the live pipeline. *)
  let w = Hbbp_workloads.Spec.find "mcf" in
  let config =
    { Hbbp_core.Pipeline.default_config with
      Hbbp_core.Pipeline.keep_records = true }
  in
  let p = Hbbp_core.Pipeline.run ~config w in
  let static = p.Hbbp_core.Pipeline.static in
  let r =
    Hbbp_core.Pipeline.reconstruct ~static
      ~ebs_period:p.Hbbp_core.Pipeline.sim_periods.Period.ebs
      ~lbr_period:p.Hbbp_core.Pipeline.sim_periods.Period.lbr
      p.Hbbp_core.Pipeline.records
  in
  Hbbp_analyzer.Static.iter
    (fun gid _ _ ->
      Alcotest.(check (float 1e-9))
        "identical hbbp count"
        (Hbbp_analyzer.Bbec.count p.Hbbp_core.Pipeline.hbbp gid)
        (Hbbp_analyzer.Bbec.count r.Hbbp_core.Pipeline.r_hbbp gid))
    static

let prop_archive_truncation_total =
  (* Parsing any truncated prefix of a valid archive returns an error
     (or, for the full length, the archive) without raising. *)
  QCheck2.Test.make ~name:"truncated archives parse totally" ~count:40
    QCheck2.Gen.(float_range 0.0 1.0)
    (fun frac ->
      let w = Hbbp_workloads.Spec.find "mcf" in
      let archive =
        Hbbp_core.Pipeline.collect_archive
          ~config:
            { Hbbp_core.Pipeline.default_config with
              periods = `Fixed { Period.ebs = 50021; lbr = 10007 } }
          w
      in
      let data = Perf_data.to_bytes archive in
      let n = int_of_float (frac *. float_of_int (Bytes.length data)) in
      (* Salvage-and-continue: a truncated records section may come back
         [Ok] with a non-empty fault ledger; anything shorter is a typed
         error.  Never an exception. *)
      match Perf_data.of_bytes (Bytes.sub data 0 n) with
      | Ok { Perf_data.ledger; _ } ->
          n = Bytes.length data || ledger <> []
      | Error _ -> n < Bytes.length data)

let () =
  Alcotest.run "collector"
    [
      ( "period",
        [
          Alcotest.test_case "table 4 values" `Quick test_period_table;
          Alcotest.test_case "classify" `Quick test_period_classify;
        ] );
      ( "capabilities",
        [
          Alcotest.test_case "decline" `Quick test_capabilities_decline;
          Alcotest.test_case "event mapping" `Quick
            test_capabilities_event_mapping;
        ] );
      ( "session",
        [
          Alcotest.test_case "records" `Quick test_session_records;
          Alcotest.test_case "overhead model" `Quick test_overhead_model;
        ] );
      ( "perf_data",
        [
          Alcotest.test_case "roundtrip" `Quick test_archive_roundtrip;
          Alcotest.test_case "errors" `Quick test_archive_errors;
          Alcotest.test_case "kernel patch" `Quick test_archive_kernel_patch;
          Alcotest.test_case "offline = online" `Slow
            test_offline_analysis_matches_online;
          QCheck_alcotest.to_alcotest prop_archive_truncation_total;
        ] );
    ]
