(* Static verifier tests.

   Three layers: (1) a mutation corpus — every lint rule is seeded with
   a deliberately broken structure and must fire, so no rule is dead;
   (2) clean-path checks — every bundled workload lints clean and its
   basic-block maps re-encode byte-identically to the assembled images;
   (3) flow conservation — reference BBECs conserve exactly, corrupted
   ones score high, and the pipeline degrades a non-conserving
   reconstruction with a typed [Flow_violation] reason. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_collector
open Hbbp_core
open Hbbp_verifier

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let base = Layout.user_code_base

(* A well-formed image touching every terminator the lint reasons
   about: fall-through into a label, a conditional loop, a direct call
   and returns. *)
let good_funcs =
  [
    func "main"
      [
        i MOV [ rax; imm 0 ];
        label "loop";
        i ADD [ rax; imm 1 ];
        i CMP [ rax; imm 10 ];
        i JNZ [ L "loop" ];
        i CALL_NEAR [ L "helper" ];
        i RET_NEAR [];
      ];
    func "helper" [ i NOP []; i RET_NEAR [] ];
  ]

let good_image () = assemble ~name:"good" ~base ~ring:Ring.User good_funcs

let good_blocks img = Bb_map.blocks (Bb_map.of_image_exn img)

let nop_i = Instruction.make NOP []
let jmp_i = Instruction.make JMP [ Operand.Rel 0 ]

(* Hand-built block — the smart constructors can never produce broken
   structures, so mutations are assembled directly from the record. *)
let block ?(id = 0) ~addr ~instrs ~term () =
  let addrs = Array.make (Array.length instrs) addr in
  let size = ref 0 in
  Array.iteri
    (fun k ins ->
      addrs.(k) <- addr + !size;
      size := !size + Encoding.encoded_length ins)
    instrs;
  { Basic_block.id; addr; instrs; addrs; size = !size; term }

let has_rule rule diags =
  List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.rule = rule) diags

(* ------------------------------------------------------------------ *)
(* Mutation corpus: one deliberately broken input per rule             *)

let mutations : (Diagnostic.rule * (unit -> Diagnostic.t list)) list =
  [
    ( Diagnostic.Decode,
      fun () ->
        let bad =
          Image.make ~name:"bad" ~base ~code:(Bytes.make 7 '\xff')
            ~symbols:[] ~ring:Ring.User
        in
        Lint.check_decode bad );
    ( Diagnostic.Roundtrip,
      fun () ->
        (* Swap one decoded instruction for a same-length impostor: the
           re-encoding no longer reproduces the image bytes. *)
        let img = good_image () in
        let decoded = Result.get_ok (Disasm.image img) in
        let tampered = Array.copy decoded in
        tampered.(0) <-
          {
            tampered.(0) with
            Disasm.instr =
              Instruction.make SUB [ Operand.Reg (Gpr RAX); Operand.Imm 0L ];
          };
        Lint.check_roundtrip img tampered );
    ( Diagnostic.Symbol_bounds,
      fun () ->
        let img = good_image () in
        let ghost =
          Symbol.make ~name:"ghost" ~addr:(Image.end_addr img + 8) ~size:4
        in
        let img =
          Image.make ~name:img.Image.name ~base ~code:img.Image.code
            ~symbols:(ghost :: img.Image.symbols) ~ring:Ring.User
        in
        Lint.check_symbols img );
    ( Diagnostic.Map_gap,
      fun () ->
        (* Drop a middle block: its bytes are no longer covered. *)
        let img = good_image () in
        let blocks = good_blocks img in
        let holed =
          Array.append (Array.sub blocks 0 1)
            (Array.sub blocks 2 (Array.length blocks - 2))
        in
        Lint.check_tiling img holed );
    ( Diagnostic.Map_overlap,
      fun () ->
        (* Duplicate a block: the copy starts inside its predecessor. *)
        let img = good_image () in
        let blocks = good_blocks img in
        let doubled =
          Array.concat
            [ Array.sub blocks 0 2; Array.sub blocks 1 1;
              Array.sub blocks 2 (Array.length blocks - 2) ]
        in
        Lint.check_tiling img doubled );
    ( Diagnostic.Mid_block_terminator,
      fun () ->
        let img = good_image () in
        let b =
          block ~addr:base ~instrs:[| jmp_i; nop_i |]
            ~term:Basic_block.Term_fallthrough ()
        in
        Lint.check_terminators img [| b |] );
    ( Diagnostic.Terminator_mismatch,
      fun () ->
        let img = good_image () in
        let b =
          block ~addr:base ~instrs:[| nop_i |] ~term:Basic_block.Term_ret ()
        in
        Lint.check_terminators img [| b |] );
    ( Diagnostic.Dangling_target,
      fun () ->
        (* Jump one byte past a block entry: inside the image, but not
           a leader and not a symbol. *)
        let img = good_image () in
        let b =
          block ~addr:base ~instrs:[| jmp_i |]
            ~term:(Basic_block.Term_jump (base + 1)) ()
        in
        Lint.check_targets img [| b |] );
    ( Diagnostic.Edge_mismatch,
      fun () ->
        let img = good_image () in
        let blocks = good_blocks img in
        Lint.check_cfg img blocks ~successors:(fun _ -> []) );
    ( Diagnostic.Unreachable,
      fun () ->
        (* An uncalled function with the symbol table stripped: nothing
           roots its block. *)
        let funcs = good_funcs @ [ func "dead" [ i NOP []; i RET_NEAR [] ] ] in
        let img = assemble ~name:"stripped" ~base ~ring:Ring.User funcs in
        let img =
          Image.make ~name:"stripped" ~base ~code:img.Image.code ~symbols:[]
            ~ring:Ring.User
        in
        Lint.check_reachability img (good_blocks img) );
    ( Diagnostic.Fallthrough_off_end,
      fun () ->
        (* A truncated tail: the last block falls off the image end. *)
        let img = good_image () in
        let b =
          block ~addr:base ~instrs:[| nop_i |]
            ~term:Basic_block.Term_fallthrough ()
        in
        Lint.check_fallthrough_off_end img [| b |] );
    ( Diagnostic.Exec_missing_node,
      fun () ->
        (* Claim an instruction at a mid-instruction address: the
           executable graph has no node there. *)
        let img = good_image () in
        let graph = Exec_graph.build_exn (Process.create [ img ]) in
        let b = block ~addr:(base + 1) ~instrs:[| nop_i |]
            ~term:Basic_block.Term_fallthrough ()
        in
        Lint.check_exec_graph graph img [| b |] );
    ( Diagnostic.Exec_count_mismatch,
      fun () ->
        let img = good_image () in
        let graph = Exec_graph.build_exn (Process.create [ img ]) in
        Lint.check_exec_count graph ~image:"good"
          ~expected:(Exec_graph.node_count graph + 1) );
  ]

(* Every rule in the catalogue has a mutation, and it fires — no dead
   rules. *)
let test_no_dead_rules () =
  List.iter
    (fun rule ->
      match List.assoc_opt rule mutations with
      | None ->
          Alcotest.failf "rule %s has no mutation fixture"
            (Diagnostic.rule_id rule)
      | Some mutate ->
          let diags = mutate () in
          checkb
            (Printf.sprintf "rule %s fires on its mutation"
               (Diagnostic.rule_id rule))
            true (has_rule rule diags))
    Diagnostic.all_rules;
  checki "catalogue and corpus sizes agree" (List.length Diagnostic.all_rules)
    (List.length mutations)

(* The good image is clean through the full driver — so each mutation
   above isolates exactly the brokenness it injects. *)
let test_good_image_clean () =
  let img = good_image () in
  let graph = Exec_graph.build_exn (Process.create [ img ]) in
  match Lint.image ~exec:graph img with
  | [] -> ()
  | diags ->
      Alcotest.failf "good image not clean: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Diagnostic.pp) diags))

let test_decode_short_circuits () =
  let bad =
    Image.make ~name:"bad" ~base ~code:(Bytes.make 7 '\xff') ~symbols:[]
      ~ring:Ring.User
  in
  match Lint.image bad with
  | [ d ] -> checkb "only decode fires" true (d.Diagnostic.rule = Diagnostic.Decode)
  | diags -> Alcotest.failf "expected exactly one decode finding, got %d"
               (List.length diags)

(* ------------------------------------------------------------------ *)
(* Clean path: every bundled workload                                  *)

let test_workloads_lint_clean () =
  List.iter
    (fun name ->
      let w = Hbbp_workloads.Registry.find name in
      let check label process =
        match Lint.process process with
        | [] -> ()
        | diags ->
            Alcotest.failf "%s (%s): %d finding(s), first: %s" name label
              (List.length diags)
              (Format.asprintf "%a" Diagnostic.pp (List.hd diags))
      in
      check "analysis" w.Workload.analysis_process;
      check "live" w.Workload.live_process)
    Hbbp_workloads.Registry.names

(* Disassembler/assembler agreement: re-encoding every block of every
   bundled image reproduces the image bytes exactly. *)
let test_bb_map_reencodes_byte_identical () =
  List.iter
    (fun name ->
      let w = Hbbp_workloads.Registry.find name in
      List.iter
        (fun (img : Image.t) ->
          let map = Bb_map.of_image_exn img in
          let out = Buffer.create (Image.size img) in
          Array.iter
            (fun (b : Basic_block.t) ->
              Array.iter
                (fun ins ->
                  Buffer.add_bytes out (Encoding.encode_to_bytes ins))
                b.Basic_block.instrs)
            (Bb_map.blocks map);
          checkb
            (Printf.sprintf "%s/%s re-encodes byte-identical" name
               img.Image.name)
            true
            (Bytes.equal (Buffer.to_bytes out) img.Image.code))
        (Process.images w.Workload.analysis_process))
    Hbbp_workloads.Registry.names

(* ------------------------------------------------------------------ *)
(* Flow conservation                                                   *)

let profile =
  lazy (Pipeline.run (Hbbp_workloads.Registry.find "fitter-sse"))

let test_reference_conserves () =
  let p = Lazy.force profile in
  let r = Flow.check p.Pipeline.static p.Pipeline.reference in
  checkb "reference flow is exactly conserved" true
    (r.Flow.conservation_error = 0.0);
  checkb "flow is non-trivial" true (r.Flow.total_flow > 0.0);
  checkb "entry blocks found" true (r.Flow.entry_blocks > 0)

let test_reconstruction_within_threshold () =
  let p = Lazy.force profile in
  let r = Flow.check p.Pipeline.static p.Pipeline.hbbp in
  checkb "sampled reconstruction conserves within threshold" true
    (r.Flow.conservation_error
    <= Pipeline.default_thresholds.Pipeline.max_conservation_error);
  checkb "clean profile stays Full" true (p.Pipeline.quality = Pipeline.Full)

let test_corrupted_bbec_flagged () =
  let p = Lazy.force profile in
  let reference = p.Pipeline.reference in
  let counts = Array.copy reference.Hbbp_analyzer.Bbec.counts in
  (* Zero every other block: every guaranteed edge into a zeroed block
     now carries unexplained flow. *)
  Array.iteri (fun k c -> if k mod 2 = 0 then counts.(k) <- 0.0 else counts.(k) <- c) counts;
  let corrupted = { reference with Hbbp_analyzer.Bbec.counts = counts } in
  let r = Flow.check p.Pipeline.static corrupted in
  checkb "corruption breaks conservation" true
    (r.Flow.conservation_error
    > Pipeline.default_thresholds.Pipeline.max_conservation_error);
  checkb "worst offender reported" true (r.Flow.worst <> [])

(* A reconstruction whose samples all land on a block with a guaranteed
   successor that never gets counted: flow conservation is violated by
   construction. *)
let skewed_fixture () =
  let img =
    assemble ~name:"skew" ~base ~ring:Ring.User
      [
        func "main"
          [ i MOV [ rax; imm 0 ]; i JMP [ L "tail" ]; label "tail";
            i RET_NEAR [] ];
      ]
  in
  let static = Hbbp_analyzer.Static.create_exn (Process.create [ img ]) in
  let records =
    List.init 16 (fun k ->
        Record.Sample
          {
            Record.event = Pmu_event.Inst_retired_prec_dist;
            ip = base;
            lbr = [||];
            ring = Ring.User;
            time = k;
          })
  in
  (static, records)

let test_pipeline_degrades_on_flow_violation () =
  let static, records = skewed_fixture () in
  let r =
    Pipeline.reconstruct ~static ~ebs_period:1 ~lbr_period:1 records
  in
  match r.Pipeline.r_quality with
  | Pipeline.Full -> Alcotest.fail "skewed reconstruction reported Full"
  | Pipeline.Degraded reasons ->
      checkb "flow violation reason present" true
        (List.exists
           (function
             | Pipeline.Flow_violation { conservation_error; _ } ->
                 conservation_error
                 > Pipeline.default_thresholds.Pipeline.max_conservation_error
             | _ -> false)
           reasons)

let test_threshold_is_plumbed () =
  let static, records = skewed_fixture () in
  let thresholds =
    { Pipeline.default_thresholds with max_conservation_error = 10.0 }
  in
  let r =
    Pipeline.reconstruct ~thresholds ~static ~ebs_period:1 ~lbr_period:1
      records
  in
  let flow_flagged =
    match r.Pipeline.r_quality with
    | Pipeline.Full -> false
    | Pipeline.Degraded reasons ->
        List.exists
          (function Pipeline.Flow_violation _ -> true | _ -> false)
          reasons
  in
  checkb "loose threshold suppresses the flow verdict" false flow_flagged

(* ------------------------------------------------------------------ *)
(* Entry-exemption edge cases of Flow.structure                        *)

(* A block that is simultaneously address-taken (an immediate names its
   entry) AND the post-syscall resume point: both rules mark it, the
   exemption holds, and the syscall contributes no guaranteed edge —
   so any count on the block is within bounds. *)
let test_entry_addr_taken_and_post_syscall () =
  let funcs target =
    [
      func "main"
        [
          i MOV [ rax; imm target ];
          i SYSCALL [];
          label "resume";
          i NOP [];
          i RET_NEAR [];
        ];
    ]
  in
  let addr_of fs =
    List.assoc "resume" (label_addresses ~name:"edge" ~base ~ring:Ring.User fs)
  in
  let resume = addr_of (funcs 0) in
  (* Patching the immediate must not shift the layout, or the address
     would name the wrong block. *)
  checki "layout stable across imm patch" resume (addr_of (funcs resume));
  let img = assemble ~name:"edge" ~base ~ring:Ring.User (funcs resume) in
  let static = Hbbp_analyzer.Static.create_exn (Process.create [ img ]) in
  let s = Flow.structure static in
  let gid =
    Option.get (Hbbp_analyzer.Static.find_starting static resume)
  in
  checkb "resume block is entry-exempt" true s.Flow.s_entry.(gid);
  checkb "syscall guarantees no inflow" true (s.Flow.s_in_guaranteed.(gid) = []);
  (* Extra inflow at the doubly-exempt block is legitimate: wild counts
     there are not charged. *)
  let counts = Array.make s.Flow.s_blocks 0. in
  counts.(gid) <- 1_000_000.;
  let r =
    Flow.check_with s { Hbbp_analyzer.Bbec.method_ = Hbbp_analyzer.Bbec.Hbbp; counts }
  in
  checkb "no residual charged at the exempt block" true
    (r.Flow.total_residual = 0.)

(* An image whose base block is named by no symbol and targeted by no
   branch — prologue padding.  The base must still be entry-exempt:
   the loader can enter there even though nothing in the CFG roots
   it. *)
let test_image_base_exempt_without_symbol () =
  let img =
    assemble ~name:"padded" ~base ~ring:Ring.User
      [
        func "pad" [ i NOP []; i RET_NEAR [] ];
        func "main" [ i MOV [ rax; imm 0 ]; i RET_NEAR [] ];
      ]
  in
  let symbols =
    List.filter
      (fun (s : Symbol.t) -> not (String.equal s.Symbol.name "pad"))
      img.Image.symbols
  in
  let img =
    Image.make ~name:"padded" ~base ~code:img.Image.code ~symbols
      ~ring:Ring.User
  in
  let static = Hbbp_analyzer.Static.create_exn (Process.create [ img ]) in
  let s = Flow.structure static in
  let gid = Option.get (Hbbp_analyzer.Static.find_starting static base) in
  checkb "no symbol names the base block" true
    (not
       (List.exists (fun (sym : Symbol.t) -> sym.Symbol.addr = base) symbols));
  checkb "image base is entry-exempt" true s.Flow.s_entry.(gid);
  let counts = Array.make s.Flow.s_blocks 0. in
  counts.(gid) <- 42.;
  let r =
    Flow.check_with s
      { Hbbp_analyzer.Bbec.method_ = Hbbp_analyzer.Bbec.Hbbp; counts }
  in
  checkb "counts at the orphan base are not charged" true
    (r.Flow.total_residual = 0.)

(* The worst-offender list breaks residual ties by ascending block id,
   so lint --json output is byte-stable run to run. *)
let test_worst_offender_tie_order () =
  let static = Lazy.force (lazy ((Lazy.force profile).Pipeline.static)) in
  let s = Flow.structure static in
  (* Two identical violations: zero two blocks fed by identical
     guaranteed inflow.  Whatever the residuals, any equal residuals
     must list in ascending gid order. *)
  let p = Lazy.force profile in
  let counts = Array.copy p.Pipeline.reference.Hbbp_analyzer.Bbec.counts in
  Array.iteri (fun k _ -> if k mod 2 = 0 then counts.(k) <- 0.) counts;
  let r =
    Flow.check_with ~worst:50 s
      { p.Pipeline.reference with Hbbp_analyzer.Bbec.counts = counts }
  in
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        (a.Flow.residual > b.Flow.residual
        || (a.Flow.residual = b.Flow.residual && a.Flow.gid < b.Flow.gid))
        && ordered rest
    | _ -> true
  in
  checkb "offenders sorted by residual desc then gid asc" true
    (ordered r.Flow.worst);
  checkb "ties exist in the fixture" true
    (List.exists
       (fun (a : Flow.block_flow) ->
         List.exists
           (fun (b : Flow.block_flow) ->
             a.Flow.gid <> b.Flow.gid && a.Flow.residual = b.Flow.residual)
           r.Flow.worst)
       r.Flow.worst)

let test_verify_metrics_exported () =
  let module Metrics = Hbbp_telemetry.Metrics in
  let module Trace = Hbbp_telemetry.Trace in
  Metrics.reset ();
  Metrics.enable ();
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ();
      Trace.disable ();
      Trace.reset ())
    (fun () ->
      let static, records = skewed_fixture () in
      let (_ : Pipeline.reconstruction) =
        Pipeline.reconstruct ~static ~ebs_period:1 ~lbr_period:1 records
      in
      let snap = Metrics.snapshot () in
      (match Metrics.find snap "verify.conservation_error" with
      | Some (Metrics.Gauge g) ->
          checkb "conservation gauge near 1" true (g > 0.5)
      | _ -> Alcotest.fail "verify.conservation_error gauge missing");
      (match Metrics.find snap "verify.flow_violations" with
      | Some (Metrics.Counter n) -> checki "violation counted" 1 n
      | _ -> Alcotest.fail "verify.flow_violations counter missing");
      checkb "flow_check span recorded" true
        (List.exists
           (fun (s : Trace.span) ->
             String.equal s.Trace.name "flow_check"
             && String.equal s.Trace.cat "verify")
           (Trace.spans ())))

let () =
  Alcotest.run "verifier"
    [
      ( "mutations",
        [
          Alcotest.test_case "no dead rules" `Quick test_no_dead_rules;
          Alcotest.test_case "good image clean" `Quick test_good_image_clean;
          Alcotest.test_case "decode short-circuits" `Quick
            test_decode_short_circuits;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all bundled workloads lint clean" `Quick
            test_workloads_lint_clean;
          Alcotest.test_case "bb maps re-encode byte-identical" `Quick
            test_bb_map_reencodes_byte_identical;
        ] );
      ( "flow",
        [
          Alcotest.test_case "reference conserves exactly" `Slow
            test_reference_conserves;
          Alcotest.test_case "reconstruction within threshold" `Slow
            test_reconstruction_within_threshold;
          Alcotest.test_case "corrupted bbec flagged" `Slow
            test_corrupted_bbec_flagged;
          Alcotest.test_case "pipeline degrades on violation" `Quick
            test_pipeline_degrades_on_flow_violation;
          Alcotest.test_case "threshold plumbed" `Quick
            test_threshold_is_plumbed;
          Alcotest.test_case "verify metrics + span exported" `Quick
            test_verify_metrics_exported;
        ] );
      ( "structure",
        [
          Alcotest.test_case "address-taken + post-syscall block exempt"
            `Quick test_entry_addr_taken_and_post_syscall;
          Alcotest.test_case "orphan image base exempt" `Quick
            test_image_base_exempt_without_symbol;
          Alcotest.test_case "worst-offender tie order byte-stable" `Slow
            test_worst_offender_tie_order;
        ] );
    ]
