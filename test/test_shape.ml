(* Shape tests: the paper's headline claims must hold on our simulated
   system.  These run full profiling pipelines and are the repository's
   regression net for the calibrated PMU model. *)

open Hbbp_core

let checkb = Alcotest.(check bool)

let profile w =
  (* records are opt-in now; the kernel-patch test re-estimates from them. *)
  Pipeline.run
    ~config:{ Pipeline.default_config with Pipeline.keep_records = true }
    w

let err p bbec = (Pipeline.error_report p bbec).Error.avg_weighted_error
let hbbp_err p = err p p.Pipeline.hbbp
let lbr_err (p : Pipeline.profile) = err p p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec
let ebs_err (p : Pipeline.profile) = err p p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec

(* Section VIII.C: "In the SSE variant, we observe 13% errors on LBR, vs.
   2-3% for EBS and HBBP." *)
let test_fitter_sse_lbr_fails () =
  let p = profile (Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse) in
  checkb "LBR clearly worse than HBBP" true (lbr_err p > 1.5 *. hbbp_err p);
  checkb "HBBP under 5%" true (hbbp_err p < 0.05)

(* "the same benchmark in AVX mode has 12% errors on EBS, vs. 2% for LBR
   and HBBP" *)
let test_fitter_avx_ebs_fails () =
  let p = profile (Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Avx) in
  checkb "EBS clearly worse than HBBP" true (ebs_err p > 3.0 *. hbbp_err p);
  checkb "HBBP under 3%" true (hbbp_err p < 0.03)

(* Section VIII.B: Test40 — "the average weighted error for HBBP remains
   below 1%" (we allow 3%), with EBS visibly worse on this short-method
   OO code. *)
let test_test40 () =
  let p = profile (Hbbp_workloads.Test40.workload ()) in
  checkb "HBBP small" true (hbbp_err p < 0.03);
  checkb "EBS worse than HBBP" true (ebs_err p > hbbp_err p);
  checkb "collection overhead ~2%" true
    (p.Pipeline.collection_overhead > 0.005
    && p.Pipeline.collection_overhead < 0.04);
  checkb "SDE ~9x slower" true
    (p.Pipeline.sde_slowdown > 5.0 && p.Pipeline.sde_slowdown < 20.0)

(* Section VIII.D: the kernel experiment — user- and kernel-space copies
   of the same code agree under HBBP; instrumentation sees no kernel. *)
let test_kernel_agreement () =
  let p = profile (Hbbp_workloads.Kernelbench.workload ()) in
  checkb "SDE lost the whole kernel" true
    (p.Pipeline.sde_lost_kernel
    = p.Pipeline.stats.Hbbp_cpu.Machine.kernel_retired);
  let full = Pipeline.full_mix_of p p.Pipeline.hbbp in
  let kernel_mass = Hbbp_analyzer.Mix.total (Hbbp_analyzer.Mix.kernel_only full) in
  checkb "HBBP sees kernel instructions" true (kernel_mass > 1000.0);
  (* Same code, both rings: per-ring totals agree within a few %. *)
  let user_fn =
    Hbbp_analyzer.Mix.filter
      (fun r -> String.equal r.Hbbp_analyzer.Mix.symbol
                  Hbbp_workloads.Kernelbench.user_function)
      full
  and kernel_fn =
    Hbbp_analyzer.Mix.filter
      (fun r -> String.equal r.Hbbp_analyzer.Mix.symbol
                  Hbbp_workloads.Kernelbench.kernel_function)
      full
  in
  let u = Hbbp_analyzer.Mix.total user_fn
  and k = Hbbp_analyzer.Mix.total kernel_fn in
  checkb "user/kernel agreement within 5%" true
    (Float.abs (u -. k) /. Float.max u k < 0.05)

(* Without the kernel text patch, the disassembly of the on-disk kernel
   disagrees with the execution stream: inconsistent streams appear. *)
let test_kernel_patch_matters () =
  let w = Hbbp_workloads.Kernelbench.workload () in
  let p = profile w in
  (* Re-estimate LBR against the UNPATCHED static view. *)
  let db =
    Hbbp_analyzer.Sample_db.of_records p.Pipeline.records
  in
  let unpatched =
    Hbbp_analyzer.Lbr_estimator.estimate p.Pipeline.static_unpatched
      ~period:p.Pipeline.sim_periods.Hbbp_collector.Period.lbr db.Hbbp_analyzer.Sample_db.lbr
  in
  let patched =
    Hbbp_analyzer.Lbr_estimator.estimate p.Pipeline.static
      ~period:p.Pipeline.sim_periods.Hbbp_collector.Period.lbr db.Hbbp_analyzer.Sample_db.lbr
  in
  (* Each syscall's stream across the NOP-patched tracepoint looks like
     impossible straight-line flow against the on-disk text; the patch
     makes those streams walkable again. *)
  checkb "unpatched view yields extra inconsistent streams" true
    (unpatched.Hbbp_analyzer.Lbr_estimator.inconsistent_streams
    > patched.Hbbp_analyzer.Lbr_estimator.inconsistent_streams + 50)

(* Section IV.B: training recovers a block-length rule with a cutoff
   near the paper's 18. *)
let test_learned_cutoff () =
  let profiles =
    List.map profile (Hbbp_workloads.Training_set.all ())
  in
  let tree, _ = Training.train profiles in
  match Training.learned_cutoff tree with
  | Some cutoff ->
      checkb "cutoff in a plausible band around 18" true
        (cutoff >= 10.0 && cutoff <= 30.0)
  | None -> Alcotest.fail "root split not on block length"

(* The instrumentation cross-check catches the injected x264ref bug. *)
let test_buggy_benchmark_caught () =
  let w = Hbbp_workloads.Spec.find Hbbp_workloads.Spec.buggy_benchmark in
  let config =
    {
      Pipeline.default_config with
      sde =
        {
          Hbbp_instrument.Sde.default_config with
          bug_mnemonic = Some Hbbp_workloads.Spec.bug_mnemonic;
        };
    }
  in
  let p = Pipeline.run ~config w in
  checkb "cross-check trips" true (Pipeline.sde_pmu_discrepancy p > 0.01);
  let clean = Pipeline.run (Hbbp_workloads.Spec.find "mcf") in
  checkb "clean benchmark passes" true (Pipeline.sde_pmu_discrepancy clean < 0.001)

(* A couple of SPEC-like benchmarks where one method collapses and HBBP
   holds (the Figure 2 texture). *)
let test_spec_examples () =
  let namd = profile (Hbbp_workloads.Spec.find "namd") in
  checkb "namd: HBBP beats LBR (long blocks)" true
    (hbbp_err namd < lbr_err namd);
  let povray = profile (Hbbp_workloads.Spec.find "povray") in
  checkb "povray: HBBP beats EBS (short FP blocks)" true
    (hbbp_err povray < ebs_err povray)

let () =
  Alcotest.run "shape"
    [
      ( "paper claims",
        [
          Alcotest.test_case "fitter sse: LBR fails" `Slow
            test_fitter_sse_lbr_fails;
          Alcotest.test_case "fitter avx: EBS fails" `Slow
            test_fitter_avx_ebs_fails;
          Alcotest.test_case "test40" `Slow test_test40;
          Alcotest.test_case "kernel agreement" `Slow test_kernel_agreement;
          Alcotest.test_case "kernel patch matters" `Slow
            test_kernel_patch_matters;
          Alcotest.test_case "learned cutoff" `Slow test_learned_cutoff;
          Alcotest.test_case "buggy benchmark caught" `Slow
            test_buggy_benchmark_caught;
          Alcotest.test_case "spec examples" `Slow test_spec_examples;
        ] );
    ]
