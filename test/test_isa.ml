(* Unit and property tests for the ISA layer: mnemonic attributes, the
   binary encoding, latency model and taxonomies. *)

open Hbbp_isa

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let gen_mnemonic =
  QCheck2.Gen.map
    (fun code ->
      match Mnemonic.of_code (code mod (Mnemonic.max_code + 1)) with
      | Some m -> m
      | None -> Mnemonic.NOP)
    QCheck2.Gen.nat

let gen_gpr =
  QCheck2.Gen.map
    (fun code -> Option.get (Operand.gpr_of_code (code mod 16)))
    QCheck2.Gen.nat

let gen_reg =
  QCheck2.Gen.(
    oneof
      [
        map (fun g -> Operand.Gpr g) gen_gpr;
        map (fun i -> Operand.Xmm (i mod 16)) nat;
        map (fun i -> Operand.Ymm (i mod 16)) nat;
        map (fun i -> Operand.St (i mod 8)) nat;
      ])

let gen_operand =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Operand.Reg r) gen_reg;
        map3
          (fun base index disp ->
            Operand.Mem { base; index; scale = 8; disp = disp mod 100000 })
          gen_gpr
          (opt gen_gpr)
          nat;
        map (fun v -> Operand.Imm (Int64.of_int v)) int;
        map (fun d -> Operand.Rel ((d mod 100000) - 50000)) nat;
      ])

let gen_instruction =
  QCheck2.Gen.(
    map2
      (fun m ops -> Instruction.make m ops)
      gen_mnemonic
      (list_size (int_bound 3) gen_operand))

(* ------------------------------------------------------------------ *)
(* Mnemonic tests                                                      *)

let test_code_roundtrip () =
  List.iter
    (fun m ->
      match Mnemonic.of_code (Mnemonic.to_code m) with
      | Some m' -> checkb "roundtrip" true (Mnemonic.equal m m')
      | None -> Alcotest.fail "of_code failed")
    Mnemonic.all

let test_string_roundtrip () =
  List.iter
    (fun m ->
      match Mnemonic.of_string (Mnemonic.to_string m) with
      | Some m' -> checkb "roundtrip" true (Mnemonic.equal m m')
      | None -> Alcotest.fail ("of_string failed for " ^ Mnemonic.to_string m))
    Mnemonic.all

let test_all_dense () =
  checki "all mnemonics enumerated" (Mnemonic.max_code + 1)
    (List.length Mnemonic.all)

let test_branch_kind_consistent () =
  List.iter
    (fun m ->
      let k = Mnemonic.branch_kind m in
      checkb
        ("is_branch consistent for " ^ Mnemonic.to_string m)
        (k <> Mnemonic.Not_branch) (Mnemonic.is_branch m))
    Mnemonic.all

let test_known_attributes () =
  checkb "DIVSD is SSE" true
    (Mnemonic.equal_isa_set (Mnemonic.isa_set DIVSD) Mnemonic.Sse);
  checkb "VADDPS is AVX" true
    (Mnemonic.equal_isa_set (Mnemonic.isa_set VADDPS) Mnemonic.Avx);
  checkb "FSIN is transcendental" true
    (Mnemonic.equal_category (Mnemonic.category FSIN) Mnemonic.Transcendental);
  checkb "ADDPS is packed" true
    (Mnemonic.equal_packing (Mnemonic.packing ADDPS) Mnemonic.Packed);
  checkb "ADDSD is scalar fp" true
    (Mnemonic.equal_packing (Mnemonic.packing ADDSD) Mnemonic.Scalar_fp);
  checkb "RET is a ret branch" true
    (Mnemonic.branch_kind RET_NEAR = Mnemonic.Ret_branch);
  checkb "SYSCALL is a call branch" true
    (Mnemonic.branch_kind SYSCALL = Mnemonic.Call_branch)

let test_packed_implies_vector_isa () =
  List.iter
    (fun m ->
      match Mnemonic.packing m with
      | Mnemonic.Packed ->
          checkb
            ("packed implies SIMD isa: " ^ Mnemonic.to_string m)
            true
            (match Mnemonic.isa_set m with
            | Mnemonic.Sse | Mnemonic.Avx | Mnemonic.Avx2 -> true
            | Mnemonic.Base | Mnemonic.X87 -> false)
      | _ -> ())
    Mnemonic.all

(* ------------------------------------------------------------------ *)
(* Instruction predicates                                              *)

let ins = Instruction.make
let memop = Operand.mem Operand.RAX

let test_memory_predicates () =
  checkb "MOV r, [m] reads" true
    (Instruction.reads_memory (ins MOV [ Operand.Reg (Gpr RBX); memop ]));
  checkb "MOV r, [m] does not write" false
    (Instruction.writes_memory (ins MOV [ Operand.Reg (Gpr RBX); memop ]));
  checkb "MOV [m], r writes" true
    (Instruction.writes_memory (ins MOV [ memop; Operand.Reg (Gpr RBX) ]));
  checkb "MOV [m], r does not read" false
    (Instruction.reads_memory (ins MOV [ memop; Operand.Reg (Gpr RBX) ]));
  checkb "ADD [m], r reads (rmw)" true
    (Instruction.reads_memory (ins ADD [ memop; Operand.Reg (Gpr RBX) ]));
  checkb "ADD [m], r writes (rmw)" true
    (Instruction.writes_memory (ins ADD [ memop; Operand.Reg (Gpr RBX) ]));
  checkb "CMP [m], r reads only" true
    (Instruction.reads_memory (ins CMP [ memop; Operand.Reg (Gpr RBX) ]));
  checkb "CMP [m], r no write" false
    (Instruction.writes_memory (ins CMP [ memop; Operand.Reg (Gpr RBX) ]));
  checkb "LEA never reads" false
    (Instruction.reads_memory (ins LEA [ Operand.Reg (Gpr RBX); memop ]));
  checkb "PUSH writes stack" true
    (Instruction.writes_memory (ins PUSH [ Operand.Reg (Gpr RBX) ]));
  checkb "POP reads stack" true
    (Instruction.reads_memory (ins POP [ Operand.Reg (Gpr RBX) ]))

let test_rel_helpers () =
  let j = ins JMP [ Operand.Rel 42 ] in
  check Alcotest.(option int) "rel" (Some 42) (Instruction.rel_displacement j);
  let j' = Instruction.with_rel j (-7) in
  check Alcotest.(option int) "rel updated" (Some (-7))
    (Instruction.rel_displacement j');
  Alcotest.check_raises "with_rel without Rel" (Invalid_argument
    "Instruction.with_rel: no Rel operand") (fun () ->
      ignore (Instruction.with_rel (ins NOP []) 0))

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let test_encode_lengths () =
  let i = ins NOP [] in
  checki "nop is 3 bytes" 3 (Encoding.encoded_length i);
  let i = ins MOV [ Operand.Reg (Gpr RAX); Operand.Imm 5L ] in
  checki "mov r, imm is 3+3+9" 15 (Encoding.encoded_length i)

let test_decode_errors () =
  let buf = Bytes.make 2 '\255' in
  (match Encoding.decode buf 0 with
  | Error Encoding.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  let buf = Bytes.make 8 '\255' in
  (match Encoding.decode buf 0 with
  | Error (Encoding.Bad_mnemonic _) -> ()
  | _ -> Alcotest.fail "expected Bad_mnemonic");
  (* Valid mnemonic, bad operand tag. *)
  let buf = Bytes.make 8 '\000' in
  Bytes.set_uint8 buf 2 1;
  Bytes.set_uint8 buf 3 0x7f;
  match Encoding.decode buf 0 with
  | Error (Encoding.Bad_operand_tag 0x7f) -> ()
  | _ -> Alcotest.fail "expected Bad_operand_tag"

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:500 gen_instruction
    (fun i ->
      let buf = Encoding.encode_to_bytes i in
      match Encoding.decode buf 0 with
      | Ok (i', len) ->
          Instruction.equal i i'
          && len = Bytes.length buf
          && len = Encoding.encoded_length i
      | Error _ -> false)

let prop_length_positive =
  QCheck2.Test.make ~name:"encoded length >= 3" ~count:200 gen_instruction
    (fun i -> Encoding.encoded_length i >= 3)

(* Exhaustive complement to [prop_roundtrip]: every mnemonic crossed
   with every operand form (all register classes, memory with and
   without an index, immediate, relative) at every arity the encoding
   supports, plus the scale/disp corner values random sampling rarely
   hits.  Catches a dead row in either lookup table, which the sampled
   property can miss. *)
let all_operand_forms =
  [
    Operand.Reg (Gpr RAX);
    Operand.Reg (Xmm 15);
    Operand.Reg (Ymm 7);
    Operand.Reg (St 5);
    Operand.Mem { base = RBX; index = None; scale = 1; disp = -8 };
    Operand.Mem { base = RSP; index = Some RDI; scale = 8; disp = 0x7fffffff };
    Operand.Imm Int64.min_int;
    Operand.Rel (-42);
  ]

let test_exhaustive_roundtrip () =
  let n_forms = List.length all_operand_forms in
  List.iter
    (fun m ->
      for arity = 0 to 3 do
        for rot = 0 to n_forms - 1 do
          let ops =
            List.init arity (fun j ->
                List.nth all_operand_forms ((rot + j) mod n_forms))
          in
          let i = Instruction.make m ops in
          match Encoding.decode (Encoding.encode_to_bytes i) 0 with
          | Ok (i', len) ->
              if
                not
                  (Instruction.equal i i'
                  && len = Encoding.encoded_length i)
              then
                Alcotest.failf "roundtrip mismatch for %s"
                  (Instruction.to_string i)
          | Error e ->
              Alcotest.failf "roundtrip failed for %s: %s"
                (Instruction.to_string i)
                (Encoding.error_to_string e)
        done
      done)
    Mnemonic.all

(* ------------------------------------------------------------------ *)
(* Latency and taxonomy                                                *)

let test_latency_positive () =
  List.iter
    (fun m ->
      checkb ("latency positive: " ^ Mnemonic.to_string m) true
        (Latency.latency m >= 1))
    Mnemonic.all

let test_long_latency_examples () =
  checkb "DIV is long" true (Latency.is_long_latency DIV);
  checkb "FSIN is long" true (Latency.is_long_latency FSIN);
  checkb "ADD is short" false (Latency.is_long_latency ADD);
  checkb "MOV is short" false (Latency.is_long_latency MOV)

let test_cost_includes_memory () =
  let reg_form = ins ADD [ Operand.Reg (Gpr RAX); Operand.Reg (Gpr RBX) ] in
  let mem_form = ins ADD [ Operand.Reg (Gpr RAX); memop ] in
  checki "memory cost delta" Latency.memory_access_cost
    (Latency.cost mem_form - Latency.cost reg_form)

let test_taxonomy_groups () =
  let div = ins DIV [ Operand.Reg (Gpr RBX) ] in
  let fence = ins MFENCE [] in
  let addps = ins ADDPS [ Operand.Reg (Xmm 0); Operand.Reg (Xmm 1) ] in
  checkb "DIV in long latency group" true (Taxonomy.long_latency.matches div);
  checkb "MFENCE in sync group" true (Taxonomy.synchronization.matches fence);
  checkb "ADDPS in packed group" true (Taxonomy.vector_packed.matches addps);
  checkb "ADDPS in fp math" true (Taxonomy.fp_math.matches addps);
  let names = Taxonomy.classify Taxonomy.builtins div in
  checkb "classify includes long latency" true
    (List.mem "long latency instructions" names)

let test_taxonomy_of_attributes () =
  let g = Taxonomy.of_isa_set Mnemonic.Avx in
  checkb "VADDPS in Avx group" true
    (g.Taxonomy.matches (ins VADDPS [ Operand.Reg (Ymm 0); Operand.Reg (Ymm 1); Operand.Reg (Ymm 2) ]));
  checkb "ADD not in Avx group" false
    (g.Taxonomy.matches (ins ADD [ Operand.Reg (Gpr RAX); Operand.Imm 1L ]))

(* Decoding arbitrary bytes must never raise — it returns a value or a
   typed error. *)
let prop_decode_total =
  QCheck2.Test.make ~name:"decode is total on random bytes" ~count:500
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Encoding.decode (Bytes.of_string s) 0 with
      | Ok (_, len) -> len > 0
      | Error _ -> true)

(* Attributes agree pairwise: an Fp element implies an FP-capable isa
   set for computational categories. *)
let prop_fp_attribute_consistency =
  QCheck2.Test.make ~name:"fp arithmetic lives in fp isa sets" ~count:200
    gen_mnemonic (fun m ->
      match (Mnemonic.category m, Mnemonic.element m) with
      | (Mnemonic.Divide | Mnemonic.Sqrt | Mnemonic.Fma), _ -> true
      | Mnemonic.Arithmetic, (Mnemonic.Fp32 | Mnemonic.Fp64) -> (
          match Mnemonic.isa_set m with
          | Mnemonic.Base -> false
          | _ -> true)
      | _ -> true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_length_positive; prop_decode_total;
      prop_fp_attribute_consistency ]

let () =
  Alcotest.run "isa"
    [
      ( "mnemonic",
        [
          Alcotest.test_case "code roundtrip" `Quick test_code_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "dense codes" `Quick test_all_dense;
          Alcotest.test_case "branch kinds" `Quick test_branch_kind_consistent;
          Alcotest.test_case "known attributes" `Quick test_known_attributes;
          Alcotest.test_case "packed implies simd" `Quick
            test_packed_implies_vector_isa;
        ] );
      ( "instruction",
        [
          Alcotest.test_case "memory predicates" `Quick test_memory_predicates;
          Alcotest.test_case "rel helpers" `Quick test_rel_helpers;
        ] );
      ( "encoding",
        Alcotest.test_case "lengths" `Quick test_encode_lengths
        :: Alcotest.test_case "decode errors" `Quick test_decode_errors
        :: Alcotest.test_case "exhaustive mnemonic x operand-form roundtrip"
             `Quick test_exhaustive_roundtrip
        :: qsuite );
      ( "latency+taxonomy",
        [
          Alcotest.test_case "latency positive" `Quick test_latency_positive;
          Alcotest.test_case "long latency" `Quick test_long_latency_examples;
          Alcotest.test_case "memory cost" `Quick test_cost_includes_memory;
          Alcotest.test_case "builtin groups" `Quick test_taxonomy_groups;
          Alcotest.test_case "attribute groups" `Quick
            test_taxonomy_of_attributes;
        ] );
    ]
