(* Differential tests for the tiered executor: every engine (legacy
   per-instruction loop, cached block closures, chained superblocks)
   must retire a bit-identical stream.  Identity is checked at four
   depths — run statistics, the full observer-visible retirement
   stream (hashed), PMU sample archives byte for byte, and fused
   pipeline reconstructions — over the bundled registry workloads,
   tight-budget Runaway runs and seeded random synthetic programs. *)

open Hbbp_cpu
open Hbbp_core

let checkb = Alcotest.(check bool)
let engines = Machine.all_engines

(* ------------------------------------------------------------------ *)
(* Harness: run one engine, observer-armed, folding every field the
   observer can see into a rolling hash.  The retirement record is a
   reused scratch buffer, so the fold reads everything before
   returning.  Runaway runs hash their whole prefix, so a budget-capped
   comparison still checks stream identity instruction by
   instruction.                                                        *)

type outcome =
  | Finished of Machine.run_stats
  | Ran_away of int
  | Faulted of string

let mix h v = (h * 0x1000193) lxor v

let run_hashed engine ?max_instructions (w : Workload.t) =
  let machine = Machine.create ~process:w.Workload.live_process ~engine () in
  let hash = ref 0x811c9dc5 and retired = ref 0 in
  Machine.add_observer machine (fun r ->
      incr retired;
      let h = mix !hash r.Machine.node.Exec_graph.addr in
      let h = mix h r.Machine.taken_src in
      let h = mix h r.Machine.taken_tgt in
      let h = mix h r.Machine.retired_index in
      let h = mix h r.Machine.cycles in
      hash := mix h (Bool.to_int r.Machine.shadow_active));
  let outcome =
    match Machine.run machine ~entry:w.Workload.entry ?max_instructions () with
    | stats -> Finished stats
    | exception Machine.Runaway n -> Ran_away n
    | exception Machine.Machine_fault msg -> Faulted msg
  in
  (outcome, !hash, !retired)

let run_bare engine ?max_instructions (w : Workload.t) =
  let machine = Machine.create ~process:w.Workload.live_process ~engine () in
  match Machine.run machine ~entry:w.Workload.entry ?max_instructions () with
  | stats -> Finished stats
  | exception Machine.Runaway n -> Ran_away n
  | exception Machine.Machine_fault msg -> Faulted msg

let pp_outcome = function
  | Finished s ->
      Printf.sprintf "finished retired=%d cycles=%d taken=%d kernel=%d"
        s.Machine.retired s.Machine.cycles s.Machine.taken_branches
        s.Machine.kernel_retired
  | Ran_away n -> Printf.sprintf "runaway %d" n
  | Faulted msg -> Printf.sprintf "fault %s" msg

(* Compare every engine's (outcome, stream hash, retirement count)
   against the legacy reference. *)
let check_differential ~what ?max_instructions (w : Workload.t) =
  let reference = run_hashed Machine.Legacy ?max_instructions w in
  List.iter
    (fun engine ->
      let got = run_hashed engine ?max_instructions w in
      let ro, rh, rn = reference and go, gh, gn = got in
      if (ro, rh, rn) <> (go, gh, gn) then
        Alcotest.failf "%s: %s engine diverged from legacy: %s / %s (%d vs %d \
                        retirements, hash %x vs %x)"
          what
          (Machine.engine_name engine)
          (pp_outcome go) (pp_outcome ro) gn rn gh rh)
    engines

(* ------------------------------------------------------------------ *)
(* Registry sweep: every bundled workload, budget-capped so the suite
   stays fast.  Workloads larger than the budget raise Runaway at the
   same retirement in every engine (the due-by-N budgeting identity);
   smaller ones finish and compare full stats.                         *)

let test_registry_differential () =
  List.iter
    (fun name ->
      let w = Hbbp_workloads.Registry.find name in
      check_differential ~what:name ~max_instructions:400_000 w)
    Hbbp_workloads.Registry.names

(* Full, uncapped runs on the machine-bench set: short blocks (mcf),
   branch/x87-heavy (test40), syscall-heavy (hello), SSE (fitter-sse). *)
let bench_set = [ "mcf"; "test40"; "hello"; "fitter-sse" ]

let test_bench_set_full_runs () =
  List.iter
    (fun name ->
      let w = Hbbp_workloads.Registry.find name in
      check_differential ~what:name w;
      (* Bare runs (no observers) take the separate no-observer path;
         their stats must match the armed stats too. *)
      let armed, _, _ = run_hashed Machine.Legacy w in
      List.iter
        (fun engine ->
          let bare = run_bare engine w in
          if bare <> armed then
            Alcotest.failf "%s: bare %s run disagrees with armed legacy: %s \
                            vs %s"
              name
              (Machine.engine_name engine)
              (pp_outcome bare) (pp_outcome armed))
        engines)
    bench_set

(* Runaway budgeting: sweep awkward budgets (mid-block, block boundary,
   budget 1) and require identical truncation points. *)
let test_runaway_budgets () =
  let w = Hbbp_workloads.Registry.find "hello" in
  List.iter
    (fun budget ->
      check_differential
        ~what:(Printf.sprintf "hello budget=%d" budget)
        ~max_instructions:budget w)
    [ 1; 2; 3; 7; 100; 1_001; 65_537 ]

(* ------------------------------------------------------------------ *)
(* Archive and reconstruction identity through the pipeline.           *)

let config_for engine =
  { Pipeline.default_config with Pipeline.engine; keep_records = true }

let test_archives_byte_identical () =
  List.iter
    (fun name ->
      let w = Hbbp_workloads.Registry.find name in
      let bytes_of engine =
        Hbbp_collector.Perf_data.to_bytes
          (Pipeline.collect_archive ~config:(config_for engine) w)
      in
      let reference = bytes_of Machine.Legacy in
      List.iter
        (fun engine ->
          checkb
            (Printf.sprintf "%s: %s archive byte-identical to legacy" name
               (Machine.engine_name engine))
            true
            (Bytes.equal (bytes_of engine) reference))
        engines)
    [ "hello"; "test40" ]

let profiles_equal (a : Pipeline.profile) (b : Pipeline.profile) =
  compare a.stats b.stats = 0
  && compare a.pmu_health b.pmu_health = 0
  && compare a.reference.counts b.reference.counts = 0
  && compare a.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
       b.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
     = 0
  && compare a.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
       b.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
     = 0
  && compare a.hbbp.counts b.hbbp.counts = 0
  && compare a.reference_mix b.reference_mix = 0
  && compare a.pmu_counts b.pmu_counts = 0
  && compare a.records b.records = 0
  && compare a.quality b.quality = 0

let test_reconstructions_identical () =
  let w = Hbbp_workloads.Registry.find "hello" in
  let reference = Pipeline.run ~config:(config_for Machine.Legacy) w in
  List.iter
    (fun engine ->
      let p = Pipeline.run ~config:(config_for engine) w in
      checkb
        (Printf.sprintf "%s profile equals legacy" (Machine.engine_name engine))
        true
        (profiles_equal p reference))
    engines

(* ------------------------------------------------------------------ *)
(* Seeded random-program fuzz: synthetic workloads spanning the
   generator's space (block shapes, FP flavours, indirect calls,
   long-latency density) must agree across engines, full-run.          *)

let fuzz_params seed =
  let module C = Hbbp_workloads.Codegen in
  let bit n = Int64.(to_int (logand (shift_right_logical seed n) 1L)) = 1 in
  let pick n k = Int64.(to_int (rem (shift_right_logical seed n) (of_int k))) in
  {
    C.blocks = 3 + pick 0 14;
    mean_len = 2 + pick 4 9;
    len_jitter = pick 8 4;
    iterations = 200 + (100 * pick 10 8);
    call_rate = float_of_int (pick 13 4) /. 8.0;
    indirect_calls = bit 16;
    profile =
      {
        C.fp =
          [| C.No_fp; C.X87_fp; C.Sse_scalar_fp; C.Sse_packed_fp;
             C.Avx_fp; C.Mixed_fp |].(pick 17 6);
        fp_rate = float_of_int (pick 20 5) /. 8.0;
        mem_rate = float_of_int (pick 23 5) /. 8.0;
        long_rate = float_of_int (pick 26 3) /. 16.0;
        simd_int_rate = float_of_int (pick 28 3) /. 8.0;
      };
  }

let test_fuzz_random_programs () =
  for i = 0 to 11 do
    let seed = Int64.of_int ((i * 0x9e3779b9) + 1) in
    let name = Printf.sprintf "fuzz%d" i in
    let ctx = Hbbp_workloads.Codegen.create_ctx ~seed in
    let funcs =
      Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:("f_" ^ name)
        ~helpers:(1 + (i mod 3))
        (fuzz_params seed)
    in
    let w = Hbbp_workloads.Codegen.user_workload ~name funcs in
    check_differential ~what:name w
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "executor"
    [
      ( "differential",
        [
          Alcotest.test_case "registry sweep (capped)" `Quick
            test_registry_differential;
          Alcotest.test_case "bench set full runs + bare path" `Quick
            test_bench_set_full_runs;
          Alcotest.test_case "runaway budget sweep" `Quick test_runaway_budgets;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "archives byte-identical" `Quick
            test_archives_byte_identical;
          Alcotest.test_case "reconstructions identical" `Quick
            test_reconstructions_identical;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random programs" `Quick test_fuzz_random_programs;
        ] );
    ]
