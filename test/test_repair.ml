(* Count-repair tests.

   Three layers: (1) solver laws as QCheck properties — idempotence,
   exact-conservation fixpoint (scale-closed), and determinism across
   shard splits of the same collection; (2) solver unit behavior —
   materiality floor, never-worse budget fallback, confidence mapping,
   zero-vector feasibility; (3) pipeline integration — the report on
   every profile, [Apply] semantics (counts replaced, verdict still
   pre-repair), repair.* metrics and the verify span. *)

open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_collector
open Hbbp_analyzer
open Hbbp_core
open Hbbp_verifier

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let base = Layout.user_code_base

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let profile = lazy (Pipeline.run (Hbbp_workloads.Registry.find "fitter-sse"))

let structure_of (p : Pipeline.profile) = Flow.structure p.Pipeline.static

(* A diamond CFG with a loop — enough structure for both bound kinds:
   entry -> cond -> (left | right) -> join -> cond (back edge), exit. *)
let diamond_static =
  lazy
    (let img =
       assemble ~name:"diamond" ~base ~ring:Ring.User
         [
           func "main"
             [
               i MOV [ rax; imm 0 ];
               label "cond";
               i CMP [ rax; imm 10 ];
               i JNZ [ L "right" ];
               i ADD [ rax; imm 1 ];
               i JMP [ L "join" ];
               label "right";
               i ADD [ rax; imm 2 ];
               label "join";
               i CMP [ rax; imm 20 ];
               i JNZ [ L "cond" ];
               i RET_NEAR [];
             ];
         ]
     in
     Static.create_exn (Process.create [ img ]))

let bbec_of counts = { Bbec.method_ = Bbec.Hbbp; counts }

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let gen_counts n =
  QCheck2.Gen.(array_size (pure n) (float_range 0.0 1000.0))

(* Idempotence: once the solver converges, feeding its output back in
   changes nothing — bit for bit. *)
let prop_idempotent =
  let static = Lazy.force diamond_static in
  let s = Flow.structure static in
  QCheck2.Test.make ~name:"repair is idempotent" ~count:200
    (gen_counts s.Flow.s_blocks)
    (fun counts ->
      let r1 = Repair.repair ~min_violation:0. s (bbec_of counts) in
      if not r1.Repair.converged then QCheck2.assume_fail ();
      let r2 = Repair.repair ~min_violation:0. s r1.Repair.repaired in
      r2.Repair.adjusted_blocks = 0
      && r2.Repair.repaired.Bbec.counts = r1.Repair.repaired.Bbec.counts)

(* Exact conservation is a fixpoint, and the polytope is closed under
   positive scaling: any scaled reference BBEC passes through the
   solver untouched. *)
let prop_conserving_fixpoint =
  QCheck2.Test.make ~name:"conserving vectors are fixpoints under scaling"
    ~count:50
    QCheck2.Gen.(float_range 0.1 8.0)
    (fun lambda ->
      let p = Lazy.force profile in
      let s = structure_of p in
      let scaled =
        bbec_of
          (Array.map (fun c -> c *. lambda) p.Pipeline.reference.Bbec.counts)
      in
      let r = Repair.repair ~min_violation:0. s scaled in
      r.Repair.iterations = 1 && r.Repair.converged
      && r.Repair.adjusted_blocks = 0
      && r.Repair.repaired.Bbec.counts = scaled.Bbec.counts)

(* Merge compatibility: analyzing any shard split of one collection
   with repair applied produces the same repaired counts as the
   unsharded analysis — repair is a pure function of the merged
   reconstruction, so sharding cannot leak into it. *)
let prop_sharded_repair_identical =
  QCheck2.Test.make ~name:"repair invariant under shard splits" ~count:8
    QCheck2.Gen.(int_range 2 5)
    (fun shards ->
      let archive =
        Pipeline.collect_archive
          (Hbbp_workloads.Registry.find "train-short-int")
      in
      let whole = Pipeline.analyze_archive ~repair:Pipeline.Apply archive in
      let path =
        Filename.temp_file "hbbp_repair_shard" ".hbbp"
      in
      let shard_paths = Perf_data.save_sharded archive ~shards ~path in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            (path :: shard_paths))
        (fun () ->
          match
            Pipeline.analyze_archives ~repair:Pipeline.Apply shard_paths
          with
          | Error e -> QCheck2.Test.fail_reportf "sharded analysis: %s" e
          | Ok (_, sharded) ->
              sharded.Pipeline.r_hbbp.Bbec.counts
              = whole.Pipeline.r_hbbp.Bbec.counts
              && Option.is_some sharded.Pipeline.r_repair))

(* ------------------------------------------------------------------ *)
(* Solver unit behavior                                                *)

(* The skewed fixture from the verifier tests: all counts on a block
   whose guaranteed successor never gets counted. *)
let skewed () =
  let static = Lazy.force diamond_static in
  let s = Flow.structure static in
  let counts = Array.make s.Flow.s_blocks 0. in
  counts.(0) <- 1000.;
  (s, bbec_of counts)

let test_skewed_repaired () =
  let s, bbec = skewed () in
  let r = Repair.repair s bbec in
  checkb "violation was material" true
    (r.Repair.pre.Flow.conservation_error > Repair.default_min_violation);
  checkb "post strictly below pre" true
    (r.Repair.post.Flow.conservation_error
    < r.Repair.pre.Flow.conservation_error);
  checkb "converged" true r.Repair.converged;
  checkb "blocks adjusted" true (r.Repair.adjusted_blocks > 0);
  checkb "mass moved" true (r.Repair.moved_mass > 0.)

let test_materiality_floor () =
  let p = Lazy.force profile in
  let s = structure_of p in
  (* Perturb the reference by well under the floor: repair must
     decline. *)
  let counts = Array.copy p.Pipeline.reference.Bbec.counts in
  let total = Array.fold_left ( +. ) 0. counts in
  counts.(0) <- counts.(0) +. (1e-4 *. total);
  let bbec = bbec_of counts in
  let r = Repair.repair s bbec in
  checkb "below floor" true
    (r.Repair.pre.Flow.conservation_error < Repair.default_min_violation);
  checki "zero sweeps" 0 r.Repair.iterations;
  checki "nothing adjusted" 0 r.Repair.adjusted_blocks;
  checkb "input returned verbatim" true
    (r.Repair.repaired.Bbec.counts == bbec.Bbec.counts);
  (* The same perturbation with the floor disabled is repaired. *)
  let r = Repair.repair ~min_violation:0. s bbec in
  checkb "repaired without floor" true (r.Repair.adjusted_blocks > 0)

let test_never_worse_on_budget () =
  let s, bbec = skewed () in
  let r = Repair.repair ~max_sweeps:1 s bbec in
  checkb "budget of one sweep does not converge here" true
    (not r.Repair.converged || r.Repair.iterations <= 1);
  checkb "result never worse than input" true
    (r.Repair.post.Flow.total_residual
    <= r.Repair.pre.Flow.total_residual +. 1e-9)

let test_zero_vector_fixpoint () =
  let static = Lazy.force diamond_static in
  let s = Flow.structure static in
  let bbec = bbec_of (Array.make s.Flow.s_blocks 0.) in
  let r = Repair.repair ~min_violation:0. s bbec in
  checki "zero vector untouched" 0 r.Repair.adjusted_blocks;
  checkb "zero vector feasible" true
    (r.Repair.post.Flow.total_residual = 0.)

let test_confidence_weights () =
  let w =
    Repair.confidence
      ~use_ebs:[| true; false; true |]
      ~ebs_raw:[| 99; 7; 0 |]
      ~lbr_weight:[| 0.; 63.; 0. |]
      4
  in
  checki "length covers all blocks" 4 (Array.length w);
  checkb "EBS density drives EBS-fused blocks" true
    (w.(0) = sqrt 100.);
  checkb "LBR weight drives LBR-fused blocks" true (w.(1) = sqrt 64.);
  checkb "unsampled blocks get unit weight" true (w.(2) = 1.);
  checkb "blocks past provenance arrays get unit weight" true (w.(3) = 1.);
  (* Heavier evidence must never lower the weight. *)
  checkb "monotone in density" true (w.(0) > w.(1) && w.(1) > w.(2))

let test_weighted_repair_protects_confident_blocks () =
  let s, bbec = skewed () in
  let n = s.Flow.s_blocks in
  (* Block 0 maximally trusted, everything else not: the correction
     must land away from block 0. *)
  let weights = Array.make n 1. in
  weights.(0) <- 1e6;
  let r = Repair.repair ~weights s bbec in
  let moved_0 =
    Float.abs (Bbec.count r.Repair.repaired 0 -. Bbec.count bbec 0)
  in
  let weights' = Array.make n 1. in
  weights'.(0) <- 1e-6;
  let r' = Repair.repair ~weights:weights' s bbec in
  let moved_0' =
    Float.abs (Bbec.count r'.Repair.repaired 0 -. Bbec.count bbec 0)
  in
  checkb "trusted block moves less than distrusted block" true
    (moved_0 < moved_0')

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)

let test_report_mode_default () =
  let p = Lazy.force profile in
  match p.Pipeline.repair_report with
  | None -> Alcotest.fail "default config carries no repair report"
  | Some r ->
      checkb "post never above pre" true
        (r.Repair.post.Flow.conservation_error
        <= r.Repair.pre.Flow.conservation_error +. 1e-12);
      (* Report mode must not touch the published counts. *)
      checkb "hbbp counts untouched in Report mode" true
        (Bbec.count p.Pipeline.hbbp 0 = Bbec.count p.Pipeline.hbbp 0)

let test_off_mode () =
  let config = { Pipeline.default_config with repair = Pipeline.Off } in
  let p =
    Pipeline.run ~config (Hbbp_workloads.Registry.find "train-short-int")
  in
  checkb "Off mode carries no report" true
    (Option.is_none p.Pipeline.repair_report)

let test_apply_mode_replaces_counts () =
  let w = Hbbp_workloads.Registry.find "train-short-int" in
  let report_p = Pipeline.run w in
  let apply_p =
    Pipeline.run
      ~config:{ Pipeline.default_config with repair = Pipeline.Apply }
      w
  in
  let rep =
    match report_p.Pipeline.repair_report with
    | Some r -> r
    | None -> Alcotest.fail "no repair report"
  in
  checkb "fixture actually repairs" true (rep.Repair.adjusted_blocks > 0);
  checkb "Apply publishes the repaired counts" true
    (apply_p.Pipeline.hbbp.Bbec.counts = rep.Repair.repaired.Bbec.counts);
  checkb "Report leaves raw counts" true
    (report_p.Pipeline.hbbp.Bbec.counts <> rep.Repair.repaired.Bbec.counts)

(* Apply must not launder a corrupt reconstruction: the quality verdict
   reflects the PRE-repair flow check. *)
let test_apply_does_not_launder_quality () =
  let img =
    assemble ~name:"skew" ~base ~ring:Ring.User
      [
        func "main"
          [ i MOV [ rax; imm 0 ]; i JMP [ L "tail" ]; label "tail";
            i RET_NEAR [] ];
      ]
  in
  let static = Static.create_exn (Process.create [ img ]) in
  let records =
    List.init 16 (fun k ->
        Record.Sample
          {
            Record.event = Pmu_event.Inst_retired_prec_dist;
            ip = base;
            lbr = [||];
            ring = Ring.User;
            time = k;
          })
  in
  let r =
    Pipeline.reconstruct ~repair:Pipeline.Apply ~static ~ebs_period:1
      ~lbr_period:1 records
  in
  (match r.Pipeline.r_quality with
  | Pipeline.Full -> Alcotest.fail "repaired corruption reported Full"
  | Pipeline.Degraded reasons ->
      checkb "flow violation verdict survives Apply" true
        (List.exists
           (function Pipeline.Flow_violation _ -> true | _ -> false)
           reasons));
  match r.Pipeline.r_repair with
  | None -> Alcotest.fail "Apply carries no repair report"
  | Some rep ->
      checkb "published counts are the repaired ones" true
        (r.Pipeline.r_hbbp.Bbec.counts = rep.Repair.repaired.Bbec.counts);
      checkb "repair reduced the residual" true
        (rep.Repair.post.Flow.total_residual
        < rep.Repair.pre.Flow.total_residual)

let test_repair_metrics_and_span () =
  let module Metrics = Hbbp_telemetry.Metrics in
  let module Trace = Hbbp_telemetry.Trace in
  Metrics.reset ();
  Metrics.enable ();
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ();
      Trace.disable ();
      Trace.reset ())
    (fun () ->
      let w = Hbbp_workloads.Registry.find "train-short-int" in
      let (_ : Pipeline.profile) =
        Pipeline.run
          ~config:{ Pipeline.default_config with repair = Pipeline.Apply }
          w
      in
      let snap = Metrics.snapshot () in
      (match Metrics.find snap "repair.runs" with
      | Some (Metrics.Counter n) -> checkb "repair ran" true (n >= 1)
      | _ -> Alcotest.fail "repair.runs counter missing");
      (match Metrics.find snap "repair.applied" with
      | Some (Metrics.Counter n) -> checkb "apply counted" true (n >= 1)
      | _ -> Alcotest.fail "repair.applied counter missing");
      (match Metrics.find snap "repair.post_conservation_error" with
      | Some (Metrics.Gauge g) ->
          checkb "post error gauge finite" true (Float.is_finite g)
      | _ -> Alcotest.fail "repair.post_conservation_error gauge missing");
      checkb "verify.repair span recorded" true
        (List.exists
           (fun (s : Trace.span) ->
             String.equal s.Trace.name "repair"
             && String.equal s.Trace.cat "verify")
           (Trace.spans ())))

(* ------------------------------------------------------------------ *)
(* Profile export                                                      *)

let test_profile_export_shape () =
  let p = Lazy.force profile in
  let json =
    Profile_export.to_json ~workload:p.Pipeline.workload.Workload.name
      p.Pipeline.static p.Pipeline.hbbp
  in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "export contains %s" needle) true
        (let len = String.length json and nlen = String.length needle in
         let rec scan i =
           i + nlen <= len
           && (String.equal (String.sub json i nlen) needle || scan (i + 1))
         in
         scan 0))
    [
      {|"schema_version": 1|};
      {|"format": "hbbp-pgo"|};
      {|"workload": "fitter-sse"|};
      {|"functions": [|};
      {|"branches"|};
      {|"probability"|};
    ];
  (* Byte-stable: the same reconstruction exports identical bytes. *)
  let again =
    Profile_export.to_json ~workload:p.Pipeline.workload.Workload.name
      p.Pipeline.static p.Pipeline.hbbp
  in
  checkb "export is byte-stable" true (String.equal json again)

let () =
  Alcotest.run "repair"
    [
      ( "laws",
        [
          QCheck_alcotest.to_alcotest prop_idempotent;
          QCheck_alcotest.to_alcotest prop_conserving_fixpoint;
          QCheck_alcotest.to_alcotest prop_sharded_repair_identical;
        ] );
      ( "solver",
        [
          Alcotest.test_case "skewed fixture repaired" `Quick
            test_skewed_repaired;
          Alcotest.test_case "materiality floor" `Slow test_materiality_floor;
          Alcotest.test_case "never worse on exhausted budget" `Quick
            test_never_worse_on_budget;
          Alcotest.test_case "zero vector is a fixpoint" `Quick
            test_zero_vector_fixpoint;
          Alcotest.test_case "confidence weight mapping" `Quick
            test_confidence_weights;
          Alcotest.test_case "weights steer the correction" `Quick
            test_weighted_repair_protects_confident_blocks;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "Report is the default and never regresses"
            `Slow test_report_mode_default;
          Alcotest.test_case "Off carries no report" `Slow test_off_mode;
          Alcotest.test_case "Apply replaces counts" `Slow
            test_apply_mode_replaces_counts;
          Alcotest.test_case "Apply cannot launder quality" `Quick
            test_apply_does_not_launder_quality;
          Alcotest.test_case "repair metrics + span exported" `Slow
            test_repair_metrics_and_span;
        ] );
      ( "export",
        [
          Alcotest.test_case "profile export shape and stability" `Slow
            test_profile_export_shape;
        ] );
    ]
