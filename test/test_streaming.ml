(* Streaming/merge equivalence tests: the chunked reader, the
   incremental CRC, the mergeable accumulators and the multi-archive
   pipeline must all be *bit-identical* to their batch counterparts —
   over every bundled workload, over random shard splits (including
   empty shards), and over damaged archives, where the streaming
   reader's salvage ledger must match the batch reader's exactly. *)

open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_collector
open Hbbp_core
open Hbbp_analyzer
module Crc32 = Hbbp_util.Crc32

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Scratch files                                                       *)

let with_tmp_file f =
  let path = Filename.temp_file "hbbp-stream" ".hbbp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_file path data =
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let drain_stream s =
  let rec go acc =
    match Perf_data.Stream.next s with
    | Some chunk -> go (chunk :: acc)
    | None -> List.concat (List.rev acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Incremental CRC-32                                                  *)

let prop_crc_incremental =
  QCheck2.Test.make ~name:"incremental crc32 = one-shot" ~count:200
    QCheck2.Gen.(pair string (list_size (0 -- 6) nat))
    (fun (s, cuts) ->
      let data = Bytes.of_string s in
      let len = Bytes.length data in
      let cuts =
        List.sort_uniq compare
          (0 :: len :: List.map (fun c -> if len = 0 then 0 else c mod (len + 1)) cuts)
      in
      (* Fold the slices [c_i, c_i+1) through the stateful interface. *)
      let rec fold st = function
        | lo :: (hi :: _ as rest) ->
            fold (Crc32.update st ~off:lo ~len:(hi - lo) data) rest
        | _ -> st
      in
      Crc32.finish (fold (Crc32.init ()) cuts) = Crc32.bytes data
      && Crc32.finish (Crc32.update (Crc32.init ()) data) = Crc32.bytes data
      && Crc32.string s = Crc32.bytes data)

let test_crc_slice_validation () =
  let data = Bytes.of_string "0123456789" in
  let bad f = match f () with
    | (_ : Crc32.state) -> false
    | exception Invalid_argument _ -> true
  in
  checkb "negative off rejected" true
    (bad (fun () -> Crc32.update (Crc32.init ()) ~off:(-1) ~len:2 data));
  checkb "overlong len rejected" true
    (bad (fun () -> Crc32.update (Crc32.init ()) ~off:8 ~len:3 data));
  checkb "negative len rejected" true
    (bad (fun () -> Crc32.update (Crc32.init ()) ~off:0 ~len:(-1) data))

(* ------------------------------------------------------------------ *)
(* Shared fixtures: one collected archive, its static view, its db     *)

let fixture =
  lazy
    (let w = Hbbp_workloads.Registry.find "mcf" in
     let archive = Pipeline.collect_archive w in
     let static = Static.create_exn (Perf_data.analysis_process archive) in
     let db = Sample_db.of_records archive.Perf_data.records in
     (archive, static, db))

(* ------------------------------------------------------------------ *)
(* Sample_db.Builder                                                   *)

let test_builder_matches_of_records () =
  let archive, _, db = Lazy.force fixture in
  let records = archive.Perf_data.records in
  (* Feed in uneven chunks through separate builders, then merge. *)
  List.iter
    (fun chunk_size ->
      let rec chunks = function
        | [] -> []
        | l ->
            let rec take n = function
              | x :: rest when n > 0 ->
                  let got, rem = take (n - 1) rest in
                  (x :: got, rem)
              | l -> ([], l)
            in
            let got, rem = take chunk_size l in
            got :: chunks rem
      in
      let builders =
        List.map
          (fun chunk ->
            let b = Sample_db.Builder.create () in
            Sample_db.Builder.add_list b chunk;
            b)
          (chunks records)
      in
      let merged =
        match builders with
        | [] -> Sample_db.Builder.create ()
        | b :: rest -> List.fold_left Sample_db.Builder.merge b rest
      in
      checkb
        (Printf.sprintf "builder(chunk=%d) = of_records" chunk_size)
        true
        (compare (Sample_db.Builder.finalize merged) db = 0))
    [ 1; 7; 256; 100_000 ]

let test_builder_on_salvaged_truncation () =
  let archive, _, _ = Lazy.force fixture in
  let data = Perf_data.to_bytes archive in
  (* Cut inside the records section so batch salvage yields a proper
     prefix with a ledger. *)
  let cut = Bytes.length data * 4 / 5 in
  let truncated = Bytes.sub data 0 cut in
  let { Perf_data.archive = salvaged; ledger } =
    match Perf_data.of_bytes truncated with
    | Ok read -> read
    | Error e ->
        Alcotest.failf "batch salvage failed: %a" Perf_data.pp_error e
  in
  checkb "truncation left a ledger" true (ledger <> []);
  checkb "a record prefix survived" true (salvaged.Perf_data.records <> []);
  with_tmp_file @@ fun path ->
  write_file path truncated;
  let s =
    match Perf_data.Stream.open_file ~chunk_records:64 path with
    | Ok s -> s
    | Error e -> Alcotest.failf "stream open: %a" Perf_data.pp_error e
  in
  let b = Sample_db.Builder.create () in
  let rec pump () =
    match Perf_data.Stream.next s with
    | Some chunk ->
        Sample_db.Builder.add_list b chunk;
        pump ()
    | None -> ()
  in
  pump ();
  let stream_ledger = Perf_data.Stream.ledger s in
  Perf_data.Stream.close s;
  checkb "stream ledger = batch ledger" true (compare stream_ledger ledger = 0);
  checkb "builder over streamed salvage = of_records over batch salvage" true
    (compare
       (Sample_db.Builder.finalize b)
       (Sample_db.of_records salvaged.Perf_data.records)
    = 0)

(* ------------------------------------------------------------------ *)
(* Accumulator merge laws over random shard splits                     *)

(* Split [arr] at the given cut points (normalised into range, so empty
   slices happen whenever two cuts coincide). *)
let split_at cuts arr =
  let n = Array.length arr in
  let cuts =
    List.sort compare (0 :: n :: List.map (fun c -> if n = 0 then 0 else c mod (n + 1)) cuts)
  in
  let rec slices = function
    | lo :: (hi :: _ as rest) -> Array.sub arr lo (hi - lo) :: slices rest
    | _ -> []
  in
  slices cuts

let gen_cuts = QCheck2.Gen.(list_size (1 -- 6) nat)

let prop_ebs_merge_shard_split =
  QCheck2.Test.make ~name:"EBS acc: any shard split reconstructs batch"
    ~count:30 gen_cuts
    (fun cuts ->
      let archive, static, db = Lazy.force fixture in
      let period = archive.Perf_data.ebs_period in
      let parts = split_at cuts db.Sample_db.ebs in
      let acc_of part =
        let a = Ebs_estimator.Acc.create static in
        Array.iter (Ebs_estimator.Acc.add static a) part;
        a
      in
      let accs = List.map acc_of parts in
      let fold_l = List.fold_left Ebs_estimator.Acc.merge (acc_of [||]) accs in
      let fold_r =
        List.fold_right Ebs_estimator.Acc.merge accs (acc_of [||])
      in
      let rev = List.fold_left Ebs_estimator.Acc.merge (acc_of [||]) (List.rev accs) in
      let batch = Ebs_estimator.estimate static ~period db.Sample_db.ebs in
      compare (Ebs_estimator.finalize static ~period fold_l) batch = 0
      && compare (Ebs_estimator.finalize static ~period fold_r) batch = 0
      && compare (Ebs_estimator.finalize static ~period rev) batch = 0)

let prop_lbr_merge_shard_split =
  QCheck2.Test.make ~name:"LBR acc: any shard split reconstructs batch"
    ~count:30 gen_cuts
    (fun cuts ->
      let archive, static, db = Lazy.force fixture in
      let period = archive.Perf_data.lbr_period in
      let parts = split_at cuts db.Sample_db.lbr in
      let acc_of part =
        let a = Lbr_estimator.Acc.create static in
        Array.iter (Lbr_estimator.Acc.add static a) part;
        a
      in
      let accs = List.map acc_of parts in
      let fold_l = List.fold_left Lbr_estimator.Acc.merge (acc_of [||]) accs in
      let fold_r =
        List.fold_right Lbr_estimator.Acc.merge accs (acc_of [||])
      in
      let rev = List.fold_left Lbr_estimator.Acc.merge (acc_of [||]) (List.rev accs) in
      let batch = Lbr_estimator.estimate static ~period db.Sample_db.lbr in
      compare (Lbr_estimator.finalize static ~period fold_l) batch = 0
      && compare (Lbr_estimator.finalize static ~period fold_r) batch = 0
      && compare (Lbr_estimator.finalize static ~period rev) batch = 0)

let prop_bbec_merge_laws =
  (* Integer-valued counts (what both estimators hold before period
     scaling) make float addition exact, so merge is associative and
     commutative on the nose. *)
  QCheck2.Test.make ~name:"Bbec.merge associative + commutative" ~count:100
    QCheck2.Gen.(
      pair (1 -- 12)
        (triple (list_size (0 -- 12) (0 -- 1000))
           (list_size (0 -- 12) (0 -- 1000))
           (list_size (0 -- 12) (0 -- 1000))))
    (fun (n, (xs, ys, zs)) ->
      let bbec ints =
        let b = Bbec.create Bbec.Ebs n in
        List.iteri
          (fun k v -> if k < n then b.Bbec.counts.(k) <- float_of_int v)
          ints;
        b
      in
      let a = bbec xs and b = bbec ys and c = bbec zs in
      compare (Bbec.merge a b).Bbec.counts (Bbec.merge b a).Bbec.counts = 0
      && compare
           (Bbec.merge (Bbec.merge a b) c).Bbec.counts
           (Bbec.merge a (Bbec.merge b c)).Bbec.counts
         = 0)

(* ------------------------------------------------------------------ *)
(* Whole-pipeline byte identity: batch = streamed = sharded = merged   *)

let recon_equal (a : Pipeline.reconstruction) (b : Pipeline.reconstruction) =
  compare a.Pipeline.r_ebs.Ebs_estimator.raw b.Pipeline.r_ebs.Ebs_estimator.raw
    = 0
  && a.Pipeline.r_ebs.Ebs_estimator.unattributed
     = b.Pipeline.r_ebs.Ebs_estimator.unattributed
  && compare a.Pipeline.r_ebs.Ebs_estimator.bbec.Bbec.counts
       b.Pipeline.r_ebs.Ebs_estimator.bbec.Bbec.counts
     = 0
  && compare a.Pipeline.r_lbr b.Pipeline.r_lbr = 0
  && compare a.Pipeline.r_bias.Bias.flags b.Pipeline.r_bias.Bias.flags = 0
  && compare a.Pipeline.r_bias.Bias.stats b.Pipeline.r_bias.Bias.stats = 0
  && a.Pipeline.r_bias.Bias.snapshots = b.Pipeline.r_bias.Bias.snapshots
  && compare a.Pipeline.r_hbbp.Bbec.counts b.Pipeline.r_hbbp.Bbec.counts = 0
  && compare a.Pipeline.r_quality b.Pipeline.r_quality = 0

let test_streaming_identity_every_workload () =
  let names = Hbbp_workloads.Registry.names in
  let ws = List.map Hbbp_workloads.Registry.find names in
  let archives = Pipeline.collect_many ws in
  List.iter2
    (fun name archive ->
      with_tmp_file @@ fun path ->
      Perf_data.save archive ~path;
      let batch =
        match Perf_data.load ~path with
        | Ok { Perf_data.archive; ledger } ->
            Pipeline.analyze_archive ~ledger archive
        | Error e -> Alcotest.failf "%s: load: %a" name Perf_data.pp_error e
      in
      let check_same how r =
        checkb (Printf.sprintf "%s: %s = batch" name how) true
          (recon_equal batch r)
      in
      let _, streamed =
        ok_or_fail (name ^ ": streamed") (Pipeline.analyze_archives [ path ])
      in
      check_same "streamed" streamed;
      let _, tiny_chunks =
        ok_or_fail
          (name ^ ": tiny chunks")
          (Pipeline.analyze_archives ~chunk_records:17 [ path ])
      in
      check_same "chunk_records=17" tiny_chunks;
      let shard_paths = Perf_data.save_sharded archive ~shards:3 ~path in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> if p <> path then try Sys.remove p with Sys_error _ -> ())
            shard_paths)
        (fun () ->
          let _, sharded =
            ok_or_fail (name ^ ": sharded")
              (Pipeline.analyze_archives shard_paths)
          in
          check_same "3 shards merged" sharded))
    names archives

let test_merge_reconstructions_matches_batch () =
  let archive, _, _ = Lazy.force fixture in
  with_tmp_file @@ fun path ->
  let shard_paths = Perf_data.save_sharded archive ~shards:3 ~path in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) shard_paths)
    (fun () ->
      match shard_paths with
      | [ p0; p1; p2 ] ->
          (* Merging partials requires one shared static view, so build
             both reconstructions over the same one (the documented
             discipline for [merge_reconstructions]). *)
          let static =
            Static.create_exn (Perf_data.analysis_process archive)
          in
          let partial_of paths =
            let p =
              Pipeline.Partial.create ~static
                ~ebs_period:archive.Perf_data.ebs_period
                ~lbr_period:archive.Perf_data.lbr_period ()
            in
            List.iter
              (fun path ->
                match Perf_data.Stream.open_file path with
                | Error e ->
                    Alcotest.failf "%s: %a" path Perf_data.pp_error e
                | Ok s ->
                    let rec pump () =
                      match Perf_data.Stream.next s with
                      | Some chunk ->
                          Pipeline.Partial.feed p chunk;
                          pump ()
                      | None -> ()
                    in
                    pump ();
                    Pipeline.Partial.note_faults p
                      (Perf_data.Stream.ledger s);
                    Perf_data.Stream.close s)
              paths;
            p
          in
          let head = Pipeline.finalize (partial_of [ p0 ]) in
          let tail = Pipeline.finalize (partial_of [ p1; p2 ]) in
          let replay f =
            List.iter
              (fun p ->
                match Perf_data.Stream.open_file p with
                | Error _ -> ()
                | Ok s ->
                    let rec pump () =
                      match Perf_data.Stream.next s with
                      | Some chunk -> f chunk; pump ()
                      | None -> ()
                    in
                    pump ();
                    Perf_data.Stream.close s)
              shard_paths
          in
          let merged = Pipeline.merge_reconstructions ~replay head tail in
          let _, all =
            ok_or_fail "all shards" (Pipeline.analyze_archives shard_paths)
          in
          checkb "merge_reconstructions = one-shot shard analysis" true
            (recon_equal merged all)
      | _ -> Alcotest.fail "expected exactly 3 shards")

(* ------------------------------------------------------------------ *)
(* Damaged archives: streaming salvage = batch salvage, byte for byte  *)

(* Same construction as test_faults's fuzz target: small enough that a
   per-offset sweep with file I/O stays fast, with every record
   constructor represented. *)
let tiny_archive () =
  let img =
    assemble ~name:"w" ~base:Layout.user_code_base ~ring:Ring.User
      [
        func "main"
          [
            i Hbbp_isa.Mnemonic.ADD [ rax; imm 1 ];
            i Hbbp_isa.Mnemonic.RET_NEAR [];
          ];
      ]
  in
  let sample ?(lbr = [||]) event ip =
    Record.Sample { Record.event; ip; lbr; ring = Ring.User; time = ip }
  in
  {
    Perf_data.workload_name = "tiny";
    ebs_period = 97;
    lbr_period = 13;
    analysis_images = [ img ];
    live_kernel_text = [ ("vmlinux", Bytes.of_string "\x90\xc3") ];
    records =
      [
        Record.Comm { pid = 1; name = "tiny" };
        Record.Mmap
          {
            addr = Layout.user_code_base;
            len = 64;
            name = "w";
            ring = Ring.User;
          };
        Record.Fork { parent = 1; child = 2 };
        sample Pmu_event.Inst_retired_prec_dist (Layout.user_code_base + 4);
        sample
          ~lbr:
            [|
              { Lbr.src = Layout.user_code_base + 8;
                tgt = Layout.user_code_base };
              { Lbr.src = Layout.user_code_base + 16;
                tgt = Layout.user_code_base + 4 };
            |]
          Pmu_event.Br_inst_retired_near_taken
          (Layout.user_code_base + 8);
        Record.Lost 1;
      ];
  }

(* Batch-vs-stream verdict on one byte string.  [chunk_records:1]
   maximises refill/retry churn in the streaming reader. *)
let check_same_verdict ~what path data =
  write_file path data;
  let batch = Perf_data.of_bytes data in
  let stream =
    match Perf_data.Stream.open_file ~chunk_records:1 path with
    | Error e -> Error e
    | Ok s ->
        let records = drain_stream s in
        let ledger = Perf_data.Stream.ledger s in
        Perf_data.Stream.close s;
        Ok (records, ledger)
  in
  match (batch, stream) with
  | Ok { Perf_data.archive; ledger }, Ok (records, s_ledger) ->
      if compare archive.Perf_data.records records <> 0 then
        Alcotest.failf "%s: records differ (batch %d, stream %d)" what
          (List.length archive.Perf_data.records)
          (List.length records);
      if compare ledger s_ledger <> 0 then
        Alcotest.failf "%s: ledgers differ (batch %s / stream %s)" what
          (String.concat "; "
             (List.map (Format.asprintf "%a" Perf_data.pp_fault) ledger))
          (String.concat "; "
             (List.map (Format.asprintf "%a" Perf_data.pp_fault) s_ledger))
  | Error a, Error b ->
      if compare a b <> 0 then
        Alcotest.failf "%s: errors differ (batch %a, stream %a)" what
          Perf_data.pp_error a Perf_data.pp_error b
  | Ok _, Error e ->
      Alcotest.failf "%s: batch salvaged, stream errored %a" what
        Perf_data.pp_error e
  | Error e, Ok _ ->
      Alcotest.failf "%s: batch errored %a, stream salvaged" what
        Perf_data.pp_error e

let test_fuzz_stream_truncation_every_offset () =
  let a = tiny_archive () in
  with_tmp_file @@ fun path ->
  List.iter
    (fun version ->
      let data = Perf_data.to_bytes ~version a in
      for n = 0 to Bytes.length data do
        check_same_verdict
          ~what:(Printf.sprintf "v%d truncated to %d" version n)
          path (Bytes.sub data 0 n)
      done)
    [ 1; 2 ]

let test_fuzz_stream_bit_flip_every_byte () =
  let a = tiny_archive () in
  with_tmp_file @@ fun path ->
  List.iter
    (fun version ->
      let data = Perf_data.to_bytes ~version a in
      for off = 0 to Bytes.length data - 1 do
        let flipped = Bytes.copy data in
        Bytes.set_uint8 flipped off
          (Bytes.get_uint8 flipped off lxor (1 lsl (off mod 8)));
        check_same_verdict
          ~what:(Printf.sprintf "v%d flip at %d" version off)
          path flipped
      done)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* keep_records opt-in and sharded writing                             *)

let test_keep_records_default () =
  let w = Hbbp_workloads.Registry.find "mcf" in
  let p = Pipeline.run w in
  checki "records dropped by default" 0 (List.length p.Pipeline.records);
  checkb "record_count still populated" true (p.Pipeline.record_count > 0);
  let kept =
    Pipeline.run
      ~config:{ Pipeline.default_config with Pipeline.keep_records = true }
      w
  in
  checki "keep_records retains the stream" kept.Pipeline.record_count
    (List.length kept.Pipeline.records);
  checki "same collection either way" p.Pipeline.record_count
    kept.Pipeline.record_count

let test_save_sharded_naming_and_concat () =
  let archive, _, _ = Lazy.force fixture in
  with_tmp_file @@ fun path ->
  let dir = Filename.dirname path in
  let base = Filename.remove_extension (Filename.basename path) in
  (* shards=1 writes [path] itself. *)
  (match Perf_data.save_sharded archive ~shards:1 ~path with
  | [ p ] -> checkb "single shard keeps the path" true (p = path)
  | ps -> Alcotest.failf "expected 1 path, got %d" (List.length ps));
  let shards = 4 in
  let paths = Perf_data.save_sharded archive ~shards ~path in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
    (fun () ->
      List.iteri
        (fun k p ->
          checkb
            (Printf.sprintf "shard %d named <base>.%dof%d.hbbp" k k shards)
            true
            (p = Filename.concat dir
                   (Printf.sprintf "%s.%dof%d.hbbp" base k shards)))
        paths;
      let loaded =
        List.map
          (fun p ->
            match Perf_data.load ~path:p with
            | Ok { Perf_data.archive; ledger = [] } -> archive
            | Ok _ -> Alcotest.failf "%s: unexpected salvage" p
            | Error e -> Alcotest.failf "%s: %a" p Perf_data.pp_error e)
          paths
      in
      List.iter
        (fun (shard : Perf_data.t) ->
          checkb "shard metadata matches" true
            (shard.Perf_data.workload_name = archive.Perf_data.workload_name
            && shard.Perf_data.ebs_period = archive.Perf_data.ebs_period
            && shard.Perf_data.lbr_period = archive.Perf_data.lbr_period))
        loaded;
      checkb "concatenated shard records = original" true
        (compare
           (List.concat_map (fun (a : Perf_data.t) -> a.Perf_data.records) loaded)
           archive.Perf_data.records
        = 0));
  (* More shards than records: the surplus shards are empty but valid. *)
  let tiny = { (tiny_archive ()) with Perf_data.records = [] } in
  let paths = Perf_data.save_sharded tiny ~shards:3 ~path in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
    (fun () ->
      List.iter
        (fun p ->
          match Perf_data.load ~path:p with
          | Ok { Perf_data.archive = a; ledger = [] } ->
              checki "empty shard has no records" 0
                (List.length a.Perf_data.records)
          | Ok _ | Error _ -> Alcotest.failf "%s: empty shard unreadable" p)
        paths)

let () =
  Alcotest.run "streaming"
    [
      ( "crc32",
        [
          QCheck_alcotest.to_alcotest prop_crc_incremental;
          Alcotest.test_case "slice validation" `Quick
            test_crc_slice_validation;
        ] );
      ( "builder",
        [
          Alcotest.test_case "chunked = of_records" `Quick
            test_builder_matches_of_records;
          Alcotest.test_case "salvaged truncation" `Quick
            test_builder_on_salvaged_truncation;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest prop_ebs_merge_shard_split;
          QCheck_alcotest.to_alcotest prop_lbr_merge_shard_split;
          QCheck_alcotest.to_alcotest prop_bbec_merge_laws;
          Alcotest.test_case "merge_reconstructions = one-shot" `Quick
            test_merge_reconstructions_matches_batch;
        ] );
      ( "identity",
        [
          Alcotest.test_case "batch = streamed = sharded, every workload"
            `Slow test_streaming_identity_every_workload;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "truncation at every offset" `Slow
            test_fuzz_stream_truncation_every_offset;
          Alcotest.test_case "bit flip at every byte" `Slow
            test_fuzz_stream_bit_flip_every_byte;
        ] );
      ( "records",
        [
          Alcotest.test_case "keep_records opt-in" `Quick
            test_keep_records_default;
          Alcotest.test_case "sharded naming + concat" `Quick
            test_save_sharded_naming_and_concat;
        ] );
    ]
