(* Tests for the telemetry layer: metrics-registry semantics (including
   atomicity under the domain pool), span nesting and ordering in the
   Chrome trace export, Domain_pool stats accounting, and the invariant
   that enabling telemetry leaves Pipeline.run profiles byte-identical. *)

open Hbbp_core
module Trace = Hbbp_telemetry.Trace
module Metrics = Hbbp_telemetry.Metrics
module Telemetry = Hbbp_telemetry.Telemetry
module Profiler = Hbbp_telemetry.Runtime_profiler
module Pool = Hbbp_util.Domain_pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Every test leaves the global telemetry state as it found it: off and
   empty. *)
let clean f () =
  let finally () =
    Trace.disable ();
    Trace.reset ();
    Metrics.disable ();
    Metrics.reset ()
  in
  Fun.protect ~finally f

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_metrics_kinds () =
  Metrics.enable ();
  let c = Metrics.counter "t.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  checki "counter accumulates" 42 (Metrics.counter_value c);
  checki "same name, same counter" 42
    (Metrics.counter_value (Metrics.counter "t.counter"));
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 1.5;
  Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "gauge keeps last" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram ~bounds:[| 1.0; 10.0 |] "t.hist" in
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Metrics.observe h 100.0;
  (match Metrics.find (Metrics.snapshot ()) "t.hist" with
  | Some (Metrics.Histogram { buckets; count; sum; _ }) ->
      checki "bucket <=1" 1 buckets.(0);
      checki "bucket <=10" 1 buckets.(1);
      checki "overflow bucket" 1 buckets.(2);
      checki "count" 3 count;
      Alcotest.(check (float 1e-9)) "sum" 105.5 sum
  | _ -> Alcotest.fail "histogram missing from snapshot");
  (match Metrics.gauge "t.counter" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  (* Snapshot is sorted by name. *)
  let names = List.map fst (Metrics.snapshot ()) in
  checkb "snapshot sorted" true (names = List.sort compare names)

let test_metrics_atomic_under_pool () =
  Metrics.enable ();
  let c = Metrics.counter "t.pool_counter" in
  let h = Metrics.histogram ~bounds:[| 10.0 |] "t.pool_hist" in
  let per_task = 10_000 and tasks = 32 in
  Pool.with_pool ~jobs:4 (fun pool ->
      let (_ : unit list) =
        Pool.map pool
          (fun _ ->
            for _ = 1 to per_task do
              Metrics.incr c;
              Metrics.observe h 1.0
            done)
          (List.init tasks Fun.id)
      in
      ());
  checki "no lost counter increments" (per_task * tasks)
    (Metrics.counter_value c);
  match Metrics.find (Metrics.snapshot ()) "t.pool_hist" with
  | Some (Metrics.Histogram { count; sum; _ }) ->
      checki "no lost observations" (per_task * tasks) count;
      Alcotest.(check (float 1e-3))
        "histogram sum exact" (float_of_int (per_task * tasks)) sum
  | _ -> Alcotest.fail "histogram missing"

let test_metrics_disabled_invisible () =
  (* Not enabled: instrumented code guards on [enabled], so the registry
     must report empty after a guarded run. *)
  checkb "disabled by default" false (Metrics.enabled ());
  if Metrics.enabled () then Metrics.incr (Metrics.counter "t.ghost");
  checki "nothing recorded" 0 (List.length (Metrics.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Span tracing                                                        *)

let test_span_nesting_and_order () =
  Trace.enable ();
  let v =
    Trace.with_span ~cat:"test" "outer" (fun () ->
        Trace.with_span "inner-1" (fun () -> ());
        Trace.with_span "inner-2" (fun () ->
            Trace.with_span "leaf" (fun () -> ()));
        17)
  in
  checki "with_span returns the thunk's value" 17 v;
  let spans = Trace.spans () in
  checki "span count" 4 (Trace.span_count ());
  let names = List.map (fun (s : Trace.span) -> s.name) spans in
  Alcotest.(check (list string))
    "start order, parents first"
    [ "outer"; "inner-1"; "inner-2"; "leaf" ]
    names;
  let by_name n =
    List.find (fun (s : Trace.span) -> s.name = n) spans
  in
  checki "outer at depth 0" 0 (by_name "outer").depth;
  checki "inner at depth 1" 1 (by_name "inner-1").depth;
  checki "leaf at depth 2" 2 (by_name "leaf").depth;
  checks "category recorded" "test" (by_name "outer").cat;
  let outer = by_name "outer" and leaf = by_name "leaf" in
  checkb "child starts within parent" true (leaf.start_us >= outer.start_us);
  checkb "child ends within parent" true
    (leaf.start_us +. leaf.dur_us <= outer.start_us +. outer.dur_us +. 1e-6)

let test_span_survives_exception () =
  Trace.enable ();
  (match Trace.with_span "boom" (fun () -> failwith "x") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  checki "raising span still recorded" 1 (Trace.span_count ())

let test_trace_export_shape () =
  Trace.enable ();
  Trace.with_span ~cat:"test"
    ~args:[ ("workload", "quo\"ted") ]
    "exported"
    (fun () -> ());
  let json = Trace.export () in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  checkb "has traceEvents" true (contains "\"traceEvents\"");
  checkb "has complete event" true (contains "\"ph\":\"X\"");
  checkb "has span name" true (contains "\"exported\"");
  checkb "has thread metadata" true (contains "thread_name");
  checkb "escapes arg strings" true (contains "quo\\\"ted")

let test_counter_and_instant_export () =
  Trace.enable ();
  Trace.counter "t.heap" [ ("words", 123.0); ("top", 456.0) ];
  Trace.instant ~cat:"gc" "major";
  checki "both events recorded" 2 (Trace.event_count ());
  let json = Trace.export () in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  checkb "counter event exported" true (contains "\"ph\":\"C\"");
  checkb "counter series exported" true (contains "\"words\":123.000");
  checkb "instant event exported" true (contains "\"ph\":\"i\"");
  checkb "instant name exported" true (contains "\"major\"")

let test_spans_across_domains () =
  Trace.enable ();
  Pool.with_pool ~jobs:3 (fun pool ->
      let (_ : int list) =
        Pool.map pool
          (fun x -> Trace.with_span "work" (fun () -> x * 2))
          [ 1; 2; 3; 4; 5; 6 ]
      in
      ());
  let work =
    List.filter (fun (s : Trace.span) -> s.name = "work") (Trace.spans ())
  in
  (* The pool wraps every task in its own "task" span too. *)
  checki "every task traced" 6 (List.length work);
  checkb "worker domains have distinct tracks" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun (s : Trace.span) -> s.track) (Trace.spans ())))
    >= 1)

(* ------------------------------------------------------------------ *)
(* Domain_pool stats                                                   *)

let test_pool_stats_accounting () =
  let spin () = ignore (Sys.opaque_identity (ref 0)) in
  let check_pool jobs =
    Pool.with_pool ~jobs (fun pool ->
        let (_ : unit list) =
          Pool.map pool (fun _ -> spin ()) (List.init 12 Fun.id)
        in
        let stats = Pool.stats pool in
        checki "one cell per worker" jobs (Array.length stats);
        let tasks =
          Array.fold_left (fun acc s -> acc + s.Pool.tasks) 0 stats
        in
        checki "all tasks accounted" 12 tasks;
        Array.iter
          (fun (s : Pool.worker_stats) ->
            checkb "busy time non-negative" true (s.busy_s >= 0.0);
            checkb "wait time non-negative" true (s.wait_s >= 0.0))
          stats)
  in
  (* The sequential path must report equivalent accounting, not zeros. *)
  check_pool 1;
  check_pool 3

(* ------------------------------------------------------------------ *)
(* Pipeline determinism with telemetry enabled                         *)

let mk_workload ~seed name =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:("f_" ^ name) ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 15;
        mean_len = 5;
        len_jitter = 3;
        iterations = 6000;
        call_rate = 0.2;
        indirect_calls = false;
        profile = Hbbp_workloads.Codegen.int_only;
      }
  in
  Hbbp_workloads.Codegen.user_workload ~name funcs

let profiles_equal (a : Pipeline.profile) (b : Pipeline.profile) =
  compare a.stats b.stats = 0
  && compare a.pmu_health b.pmu_health = 0
  && compare a.reference.counts b.reference.counts = 0
  && compare a.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
       b.ebs.Hbbp_analyzer.Ebs_estimator.bbec.counts
     = 0
  && compare a.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
       b.lbr.Hbbp_analyzer.Lbr_estimator.bbec.counts
     = 0
  && compare a.hbbp.counts b.hbbp.counts = 0
  && compare a.reference_mix b.reference_mix = 0
  && compare a.pmu_counts b.pmu_counts = 0
  && compare a.records b.records = 0

let test_telemetry_does_not_change_profiles () =
  let ws =
    [ mk_workload ~seed:0xBEEFL "tel-a"; mk_workload ~seed:0x5EEDL "tel-b" ]
  in
  let keep = { Pipeline.default_config with Pipeline.keep_records = true } in
  let off = List.map (Pipeline.run ~config:keep) ws in
  Trace.enable ();
  Metrics.enable ();
  let on = List.map (Pipeline.run ~config:keep) ws in
  Trace.disable ();
  Metrics.disable ();
  List.iter2
    (fun a b ->
      checkb "profile byte-identical with telemetry enabled" true
        (profiles_equal a b))
    off on;
  checkb "pipeline emitted spans" true (Trace.span_count () > 0);
  match Metrics.find (Metrics.snapshot ()) "pipeline.runs" with
  | Some (Metrics.Counter n) -> checki "runs counted" 2 n
  | _ -> Alcotest.fail "pipeline.runs counter missing"

(* ------------------------------------------------------------------ *)
(* Runtime profiler                                                    *)

let test_profiler_gc_metrics () =
  Metrics.enable ();
  Profiler.enable ();
  Fun.protect
    ~finally:(fun () -> Profiler.disable ())
    (fun () ->
      Trace.with_span "rp-outer" (fun () ->
          Trace.with_span "rp-inner" (fun () ->
              (* Allocate enough that the quick_stat word delta is
                 unmistakably nonzero. *)
              ignore (Sys.opaque_identity (Array.init 100_000 string_of_int)))));
  let snap = Metrics.snapshot () in
  (match Metrics.find snap "gc.allocated_words" with
  | Some (Metrics.Counter n) -> checkb "allocation accounted" true (n > 0)
  | _ -> Alcotest.fail "gc.allocated_words counter missing");
  (* Exclusive attribution: the allocation happened inside rp-inner, so
     the inner span owns (nearly all of) it; rp-outer must not
     double-count. *)
  let span_words name =
    match Metrics.find snap ("alloc.span." ^ name ^ ".words") with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let inner = span_words "rp-inner" and outer = span_words "rp-outer" in
  checkb "inner span owns the allocation" true (inner > 100_000);
  checkb "outer span does not double-count" true (outer < inner);
  match Metrics.find snap "gc.heap_words" with
  | Some (Metrics.Gauge v) -> checkb "heap gauge sampled" true (v > 0.0)
  | _ -> Alcotest.fail "gc.heap_words gauge missing"

let test_profiler_disabled_leaves_no_trace () =
  Metrics.enable ();
  Profiler.enable ();
  Profiler.disable ();
  Trace.with_span "rp-after" (fun () ->
      ignore (Sys.opaque_identity (Array.make 1000 0)));
  let snap = Metrics.snapshot () in
  checkb "no gc metrics after disable" true
    (Metrics.find snap "gc.allocated_words" = None)

let test_sampler_armed_byte_identity () =
  let ws = [ mk_workload ~seed:0xACEDL "samp-a" ] in
  let off = List.map Pipeline.run ws in
  Metrics.enable ();
  Profiler.enable ();
  let mode = Profiler.arm_sampler () in
  let on =
    Fun.protect
      ~finally:(fun () ->
        Profiler.disarm_sampler ();
        Profiler.disable ())
      (fun () -> List.map Pipeline.run ws)
  in
  checkb "sampler armed in some mode" true (mode <> Profiler.Sampler_off);
  List.iter2
    (fun a b ->
      checkb "profiles byte-identical with sampler armed" true
        (profiles_equal a b))
    off on;
  (* Whichever mode armed, the per-span allocation attribution must have
     landed somewhere. *)
  let snap = Metrics.snapshot () in
  let any_span_alloc =
    List.exists
      (fun (name, v) ->
        String.length name > 11
        && String.sub name 0 11 = "alloc.span."
        && (match v with Metrics.Counter n -> n > 0 | _ -> false))
      snap
  in
  checkb "span allocation attributed" true any_span_alloc

(* ------------------------------------------------------------------ *)
(* Telemetry.configure / finalize lifecycle                            *)

let null_ppf =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_configure_finalize_lifecycle () =
  let trace_path = Filename.temp_file "hbbp-test-trace" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.finalize null_ppf;
      Sys.remove trace_path)
    (fun () ->
      Telemetry.configure ~trace:trace_path ();
      checkb "configure armed tracing" true (Trace.enabled ());
      checkb "profiler auto-armed with a sink" true (Profiler.enabled ());
      (* Double-configure: re-applying the same settings must not lose
         already-recorded spans. *)
      Trace.with_span "before-reconfigure" (fun () -> ());
      Telemetry.configure ~trace:trace_path ();
      Trace.with_span "after-reconfigure" (fun () -> ());
      checkb "reconfigure keeps spans" true (Trace.span_count () >= 2);
      Telemetry.finalize null_ppf;
      (* finalize wrote the trace and tore everything down. *)
      checkb "trace file written" true
        (let ic = open_in trace_path in
         let len = in_channel_length ic in
         close_in ic;
         len > 0);
      checkb "tracing off after finalize" false (Trace.enabled ());
      checkb "metrics off after finalize" false (Metrics.enabled ());
      checkb "profiler off after finalize" false (Profiler.enabled ());
      (* finalize-then-span: a silent no-op, nothing recorded. *)
      Trace.with_span "ghost" (fun () -> ());
      checki "no spans after finalize" 0 (Trace.span_count ());
      (* finalize is idempotent. *)
      Telemetry.finalize null_ppf;
      (* Re-configure after finalize: starts from an empty registry. *)
      Telemetry.configure ~trace:trace_path ();
      checkb "re-armed after finalize" true (Trace.enabled ());
      checki "fresh span buffer" 0 (Trace.span_count ());
      Trace.with_span "reborn" (fun () -> ());
      checki "recording again" 1 (Trace.span_count ()))

let test_configure_metrics_only () =
  Fun.protect
    ~finally:(fun () -> Telemetry.finalize null_ppf)
    (fun () ->
      Telemetry.configure ~metrics:`Json ();
      checkb "metrics armed" true (Metrics.enabled ());
      checkb "tracing stays off" false (Trace.enabled ());
      checkb "active" true (Telemetry.active ());
      (* The health rollup over a clean registry is Ok. *)
      checks "clean registry is healthy" "ok"
        (Hbbp_telemetry.Health.status_name (Telemetry.health ())))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "kinds and registry" `Quick
            (clean test_metrics_kinds);
          Alcotest.test_case "atomic under domain pool" `Quick
            (clean test_metrics_atomic_under_pool);
          Alcotest.test_case "disabled records nothing" `Quick
            (clean test_metrics_disabled_invisible);
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and order" `Quick
            (clean test_span_nesting_and_order);
          Alcotest.test_case "exception safety" `Quick
            (clean test_span_survives_exception);
          Alcotest.test_case "export shape" `Quick
            (clean test_trace_export_shape);
          Alcotest.test_case "counter and instant export" `Quick
            (clean test_counter_and_instant_export);
          Alcotest.test_case "spans across domains" `Quick
            (clean test_spans_across_domains);
        ] );
      ( "profiler",
        [
          Alcotest.test_case "gc metrics at span boundaries" `Quick
            (clean test_profiler_gc_metrics);
          Alcotest.test_case "disable removes the probe" `Quick
            (clean test_profiler_disabled_leaves_no_trace);
          Alcotest.test_case "sampler armed keeps profiles byte-identical"
            `Quick
            (clean test_sampler_armed_byte_identity);
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "configure / finalize / re-configure" `Quick
            (clean test_configure_finalize_lifecycle);
          Alcotest.test_case "metrics-only configure and health" `Quick
            (clean test_configure_metrics_only);
        ] );
      ( "pool_stats",
        [
          Alcotest.test_case "accounting for every job count" `Quick
            (clean test_pool_stats_accounting);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "telemetry leaves profiles byte-identical"
            `Quick
            (clean test_telemetry_does_not_change_profiles);
        ] );
    ]
