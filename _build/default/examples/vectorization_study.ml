(* Vectorization study — the paper's Fitter case study (section VIII.C).

   A track-fitting kernel exists in x87, SSE and AVX builds, plus an AVX
   build where the compiler silently stopped inlining.  Instruction
   mixes localise the regression: the vector-instruction counts look
   fine, but CALLs explode.

     dune exec examples/vectorization_study.exe
*)

open Hbbp_core
open Hbbp_analyzer
module F = Hbbp_workloads.Fitter

let isa_counts mix =
  List.map
    (fun set ->
      ( Hbbp_isa.Mnemonic.isa_set_to_string set,
        List.fold_left
          (fun acc (r : Mix.row) ->
            if
              Hbbp_isa.Mnemonic.equal_isa_set
                (Hbbp_isa.Mnemonic.isa_set r.mnemonic)
                set
            then acc +. r.count
            else acc)
          0.0 mix.Mix.rows ))
    [ Hbbp_isa.Mnemonic.X87; Hbbp_isa.Mnemonic.Sse; Hbbp_isa.Mnemonic.Avx ]

let calls mix =
  List.fold_left
    (fun acc (r : Mix.row) ->
      match Hbbp_isa.Mnemonic.category r.mnemonic with
      | Hbbp_isa.Mnemonic.Call -> acc +. r.count
      | _ -> acc)
    0.0 mix.Mix.rows

let () =
  Format.printf "%-22s %10s %10s %10s %10s %12s@." "variant" "x87" "SSE" "AVX"
    "CALLs" "time/track";
  List.iter
    (fun variant ->
      let p = Pipeline.run (F.workload variant) in
      let mix = Pipeline.mix_of p p.Pipeline.hbbp in
      let by_isa = isa_counts mix in
      Format.printf "%-22s %10.0f %10.0f %10.0f %10.0f %9.3f us@."
        (F.variant_name variant)
        (List.assoc "X87" by_isa) (List.assoc "Sse" by_isa)
        (List.assoc "Avx" by_isa) (calls mix)
        (float_of_int p.Pipeline.clean_cycles /. 3.0 /. float_of_int F.tracks
        /. 1000.0))
    F.all_variants;
  Format.printf
    "@.Diagnosis: the broken AVX build executes a normal number of vector@.\
     instructions but ~7x the CALLs — an inlining regression, not an@.\
     instruction-selection one.  (Paper section VIII.C reached the same@.\
     conclusion for the real compiler bug.)@."
