(* Custom instruction taxonomies — paper section V.B: "a user-defined
   instruction group called 'long latency instructions' would contain
   instructions such as DIV, SQRT, XCHG R,M, or a group called
   'synchronization instructions'...".

   This example profiles a scientific workload and breaks its dynamic
   mix down by user-defined groups, then drills into where the
   long-latency instructions live.

     dune exec examples/custom_taxonomy.exe
*)

open Hbbp_isa
open Hbbp_core
open Hbbp_analyzer

(* A custom group beyond the built-ins: transcendental math only. *)
let transcendentals =
  Taxonomy.make "transcendentals" (fun (ins : Instruction.t) ->
      match Mnemonic.category ins.mnemonic with
      | Mnemonic.Transcendental -> true
      | _ -> false)

let groups =
  [
    Taxonomy.long_latency;
    Taxonomy.synchronization;
    Taxonomy.fp_math;
    Taxonomy.vector_packed;
    Taxonomy.memory_read;
    Taxonomy.memory_write;
    transcendentals;
  ]

let () =
  let p = Pipeline.run (Hbbp_workloads.Spec.find "soplex") in
  let mix = Pipeline.full_mix_of p p.Pipeline.hbbp in
  let total = Mix.total mix in
  Format.printf "workload: soplex — %.1fM dynamic instructions@.@."
    (total /. 1e6);
  Format.printf "%-28s %12s %8s@." "group" "executions" "share";
  List.iter
    (fun (name, count) ->
      Format.printf "%-28s %12.0f %7.2f%%@." name count
        (100.0 *. count /. total))
    (Views.group_totals groups p.Pipeline.static p.Pipeline.hbbp);

  (* Where do the long-latency instructions live?  Pivot the mix rows
     that belong to the group by function. *)
  Format.printf "@.Long-latency hotspots by function:@.";
  let in_group (r : Mix.row) =
    Taxonomy.long_latency.Taxonomy.matches (Instruction.make r.mnemonic [])
  in
  Pivot.render Format.std_formatter
    (Pivot.top 5 (Pivot.pivot ~dims:[ Pivot.Symbol; Pivot.Mnem ] ~filter:in_group mix))
