examples/kernel_profiling.mli:
