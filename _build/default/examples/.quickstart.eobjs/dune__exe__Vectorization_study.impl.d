examples/vectorization_study.ml: Format Hbbp_analyzer Hbbp_core Hbbp_isa Hbbp_workloads List Mix Pipeline
