examples/kernel_profiling.ml: Float Format Hbbp_analyzer Hbbp_collector Hbbp_core Hbbp_cpu Hbbp_workloads Lbr_estimator Mix Pipeline Pivot Sample_db String
