examples/custom_taxonomy.mli:
