examples/quickstart.ml: Format Hbbp_analyzer Hbbp_core Hbbp_cpu Hbbp_isa Hbbp_program Mnemonic Operand Pipeline Report Ring Workload
