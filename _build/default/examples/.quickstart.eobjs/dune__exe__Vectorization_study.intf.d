examples/vectorization_study.mli:
