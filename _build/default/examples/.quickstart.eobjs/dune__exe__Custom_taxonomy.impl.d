examples/custom_taxonomy.ml: Format Hbbp_analyzer Hbbp_core Hbbp_isa Hbbp_workloads Instruction List Mix Mnemonic Pipeline Pivot Taxonomy Views
