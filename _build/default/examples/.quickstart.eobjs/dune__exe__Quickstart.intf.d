examples/quickstart.mli:
