(* Bechamel microbenchmarks of the library's hot components: one
   Test.make per table/figure driver plus the core primitives they rest
   on (decode, execution, estimation, tree training). *)

open Bechamel
open Toolkit

let fitter_image =
  lazy
    (let w = Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse in
     List.hd (Hbbp_program.Process.images w.Hbbp_core.Workload.live_process))

let encode_decode () =
  let img = Lazy.force fitter_image in
  match Hbbp_program.Disasm.image img with
  | Ok decoded -> Array.length decoded
  | Error _ -> 0

let bb_map () =
  let img = Lazy.force fitter_image in
  Hbbp_program.Bb_map.block_count (Hbbp_program.Bb_map.of_image_exn img)

let small_run () =
  let w = Hbbp_workloads.Clforward.workload Hbbp_workloads.Clforward.After in
  let machine =
    Hbbp_cpu.Machine.create ~process:w.Hbbp_core.Workload.live_process ()
  in
  (Hbbp_cpu.Machine.run machine ~entry:w.Hbbp_core.Workload.entry ()).retired

let training_data =
  lazy
    (let prng = Hbbp_cpu.Prng.create ~seed:7L in
     let n = 2000 in
     let features =
       Array.init n (fun _ ->
           Array.init 6 (fun _ -> Hbbp_cpu.Prng.float prng))
     in
     let labels =
       Array.map (fun f -> if f.(0) +. f.(3) > 1.0 then 1 else 0) features
     in
     Hbbp_mltree.Dataset.create
       ~feature_names:(Array.init 6 (Printf.sprintf "f%d"))
       ~class_names:[| "a"; "b" |] ~features ~labels
       ~weights:(Array.make n 1.0))

let cart_train () =
  Hbbp_mltree.Cart.leaf_count
    (Hbbp_mltree.Cart.train (Lazy.force training_data))

let tests =
  Test.make_grouped ~name:"hbbp"
    [
      Test.make ~name:"disassemble-fitter" (Staged.stage encode_decode);
      Test.make ~name:"bb-map-fitter" (Staged.stage bb_map);
      Test.make ~name:"simulate-clforward" (Staged.stage small_run);
      Test.make ~name:"cart-train-2k" (Staged.stage cart_train);
    ]

let run ppf =
  Bench_util.header ppf "Microbenchmarks (bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          Format.fprintf ppf "%-28s %12.2f us/run@." name (est /. 1e3)
      | Some _ | None -> Format.fprintf ppf "%-28s (no estimate)@." name)
    results
