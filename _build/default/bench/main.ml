(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section from the simulated system, plus bechamel
   microbenchmarks of the library itself.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table3 figure2 micro
*)

let all : (string * (Format.formatter -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("table6", Tables.table6);
    ("table7", Tables.table7);
    ("table8", Tables.table8);
    ("figure1", Figures.figure1);
    ("figure2", Figures.figure2);
    ("figure3", Figures.figure3);
    ("figure4", Figures.figure4);
    ("ablation", Ablation.run);
    ("micro", Micro.run);
  ]

let () =
  let ppf = Format.std_formatter in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ppf
      | None ->
          Format.fprintf ppf "unknown bench %S; available: %s@." name
            (String.concat ", " (List.map fst all)))
    requested;
  Format.pp_print_flush ppf ()
