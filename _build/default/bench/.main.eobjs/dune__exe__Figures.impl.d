bench/figures.ml: Array Bench_util Error Feature Format Hbbp_analyzer Hbbp_core Hbbp_isa Hbbp_mltree Hbbp_workloads Lazy List Option Pipeline Training
