bench/main.mli:
