bench/ablation.ml: Bench_util Combine Criteria Format Hbbp_analyzer Hbbp_core Hbbp_cpu Hbbp_workloads Lazy List Pipeline Pmu_model
