bench/bench_util.ml: Format Hashtbl Hbbp_analyzer Hbbp_core Hbbp_instrument Hbbp_workloads Lazy List Pipeline Printf String Training Workload
