bench/main.ml: Ablation Array Figures Format List Micro String Sys Tables
