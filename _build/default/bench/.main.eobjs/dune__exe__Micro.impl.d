bench/micro.ml: Analyze Array Bechamel Bench_util Benchmark Format Hashtbl Hbbp_core Hbbp_cpu Hbbp_mltree Hbbp_program Hbbp_workloads Instance Lazy List Measure Printf Staged Test Time Toolkit
