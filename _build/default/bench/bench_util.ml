(* Shared infrastructure for the table/figure reproductions: profile
   caching (each workload is simulated once per bench run) and the
   formatting helpers the tables share. *)

open Hbbp_core

let clock_ghz = 3.0

(* Simulated wall-clock seconds for a cycle count. *)
let seconds cycles = float_of_int cycles /. (clock_ghz *. 1e9)

let cache : (string, Pipeline.profile) Hashtbl.t = Hashtbl.create 64

let profile ?(config = Pipeline.default_config) (w : Workload.t) =
  let key = w.Workload.name in
  match Hashtbl.find_opt cache key with
  | Some p -> p
  | None ->
      let p = Pipeline.run ~config w in
      Hashtbl.replace cache key p;
      p

(* x264ref is profiled with the buggy instrumentation configuration to
   reproduce the paper's footnote 2. *)
let profile_spec name =
  let w = Hbbp_workloads.Spec.find name in
  if String.equal name Hbbp_workloads.Spec.buggy_benchmark then
    profile
      ~config:
        {
          Pipeline.default_config with
          sde =
            {
              Hbbp_instrument.Sde.default_config with
              bug_mnemonic = Some Hbbp_workloads.Spec.bug_mnemonic;
            };
        }
      w
  else profile w

let avg_weighted_error p bbec =
  (Pipeline.error_report p bbec).Hbbp_core.Error.avg_weighted_error

let hbbp_error p = avg_weighted_error p p.Pipeline.hbbp
let lbr_error p = avg_weighted_error p p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec
let ebs_error p = avg_weighted_error p p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec

let pct v = Printf.sprintf "%.2f%%" (v *. 100.0)

let header ppf title =
  Format.fprintf ppf "@.==== %s ====@." title

let training_profiles = lazy (List.map profile (Hbbp_workloads.Training_set.all ()))

let trained = lazy (Training.train (Lazy.force training_profiles))
