(* Reproductions of the paper's Tables 1-8.  Each function prints the
   same rows the paper reports, from our simulated runs, with the paper's
   own numbers alongside where a direct comparison is meaningful. *)

open Hbbp_core
open Hbbp_analyzer
module U = Bench_util

(* ------------------------------------------------------------------ *)
(* Table 1: wall-clock runtimes, clean vs software instrumentation.    *)

let table1 ppf =
  U.header ppf "Table 1: clean vs SDE runtimes";
  let spec = List.map U.profile_spec Hbbp_workloads.Spec.names in
  let others =
    [
      U.profile (Hbbp_workloads.Test40.workload ());
      U.profile (Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse);
      U.profile (Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Avx);
      U.profile (Hbbp_workloads.Clforward.workload Hbbp_workloads.Clforward.Before);
    ]
  in
  let hydro = U.profile (Hbbp_workloads.Hydro.workload ()) in
  let sum_clean ps =
    List.fold_left (fun acc (p : Pipeline.profile) -> acc +. U.seconds p.clean_cycles) 0.0 ps
  in
  let sum_sde ps =
    List.fold_left
      (fun acc (p : Pipeline.profile) ->
        acc +. (U.seconds p.clean_cycles *. p.sde_slowdown))
      0.0 ps
  in
  let row name ps paper_factor =
    let clean = sum_clean ps and sde = sum_sde ps in
    Format.fprintf ppf "%-22s %10.2f ms %10.2f ms  %6.2fx   (paper: %s)@."
      name (clean *. 1e3) (sde *. 1e3) (sde /. clean) paper_factor
  in
  Format.fprintf ppf "%-22s %13s %13s %8s@." "benchmark" "(1) clean"
    "(2) SDE" "factor";
  row "SPEC all" spec "4.11x";
  row "SPEC povray" [ U.profile_spec "povray" ] "12.1x";
  row "SPEC omnetpp" [ U.profile_spec "omnetpp" ] "7.56x";
  row "All other benchmarks" others "68x";
  row "Hydro-post benchmark" [ hydro ] "76.6x"

(* ------------------------------------------------------------------ *)
(* Table 2: instruction-specific counting-event support by PMU
   generation.                                                         *)

let table2 ppf =
  U.header ppf "Table 2: instruction-specific event support by PMU generation";
  let module C = Hbbp_collector.Capabilities in
  Format.fprintf ppf "%-14s" "";
  List.iter
    (fun g ->
      Format.fprintf ppf "%-18s"
        (Printf.sprintf "%s (%d)" (C.generation_to_string g) (C.year g)))
    C.generations;
  Format.pp_print_newline ppf ();
  List.iter
    (fun cls ->
      Format.fprintf ppf "%-14s" (C.event_class_to_string cls);
      List.iter
        (fun g ->
          Format.fprintf ppf "%-18s" (C.support_to_string (C.support g cls)))
        C.generations;
      Format.pp_print_newline ppf ())
    C.event_classes

(* ------------------------------------------------------------------ *)
(* Table 3: per-block BBECs in Fitter (SSE), EBS vs LBR vs SDE.        *)

let table3 ppf =
  U.header ppf "Table 3: Fitter (SSE) BBECs — EBS vs LBR vs SDE";
  let p = U.profile (Hbbp_workloads.Fitter.workload Hbbp_workloads.Fitter.Sse) in
  let blocks = ref [] in
  Static.iter
    (fun gid _ _ ->
      if Bbec.count p.reference gid > 0.0 then blocks := gid :: !blocks)
    p.static;
  let sorted =
    List.sort
      (fun a b -> compare (Bbec.count p.reference b) (Bbec.count p.reference a))
      !blocks
  in
  Format.fprintf ppf "%4s %12s %12s %12s %5s %6s  (errors >25%% marked *)@."
    "BB" "EBS" "LBR" "SDE" "len" "bias";
  List.iteri
    (fun k gid ->
      if k < 15 then begin
        let _, _, b = Static.block p.static gid in
        let sde = Bbec.count p.reference gid in
        let mark v =
          if sde > 0.0 && Float.abs (v -. sde) /. sde > 0.25 then "*" else " "
        in
        let ebs = Bbec.count p.ebs.Ebs_estimator.bbec gid in
        let lbr = Bbec.count p.lbr.Lbr_estimator.bbec gid in
        Format.fprintf ppf "%4d %11.0f%s %11.0f%s %12.0f %5d %6b@." (k + 1)
          ebs (mark ebs) lbr (mark lbr) sde
          (Hbbp_program.Basic_block.length b)
          p.bias.Bias.flags.(gid)
      end)
    sorted

(* ------------------------------------------------------------------ *)
(* Table 4: sampling periods.                                          *)

let table4 ppf =
  U.header ppf "Table 4: EBS and LBR sampling periods in HBBP";
  let module P = Hbbp_collector.Period in
  Format.fprintf ppf "%-26s %16s %16s %14s %12s@." "runtime" "EBS period"
    "LBR period" "EBS (sim)" "LBR (sim)";
  List.iter
    (fun cls ->
      let paper = P.paper cls and sim = P.simulation cls in
      Format.fprintf ppf "%-26s %16d %16d %14d %12d@." (P.class_to_string cls)
        paper.P.ebs paper.P.lbr sim.P.ebs sim.P.lbr)
    P.all_classes

(* ------------------------------------------------------------------ *)
(* Table 5: Test40.                                                    *)

let table5 ppf =
  U.header ppf "Table 5: Test40 evaluation";
  let p = U.profile (Hbbp_workloads.Test40.workload ()) in
  let clean = U.seconds p.clean_cycles *. 1e3 in
  let hbbp = clean *. (1.0 +. p.collection_overhead) in
  let sde = clean *. p.sde_slowdown in
  Format.fprintf ppf "%-14s %10s %10s %10s@." "" "Clean" "HBBP" "SDE";
  Format.fprintf ppf "%-14s %8.2fms %8.2fms %8.2fms@." "Runtime" clean hbbp sde;
  Format.fprintf ppf "%-14s %10s %9.1f%% %8.0f%%@." "Time penalty" "N/A"
    (p.collection_overhead *. 100.0)
    ((p.sde_slowdown -. 1.0) *. 100.0);
  Format.fprintf ppf "%-14s %10s %10s %10s@." "Avg W Error" "N/A"
    (U.pct (U.hbbp_error p))
    "0%";
  Format.fprintf ppf "(paper: 27.1s / 27.7s / 277.0s; penalties 2.3%% / 923%%; \
                      HBBP error 0.94%%)@."

(* ------------------------------------------------------------------ *)
(* Table 6: Fitter expected vs measured across build variants.         *)

let table6 ppf =
  U.header ppf "Table 6: Fitter expected vs measured (millions)";
  let module F = Hbbp_workloads.Fitter in
  let variants = [ F.X87; F.Sse; F.Avx_noinline; F.Avx ] in
  let labels = [ "x87"; "SSE"; "AVX"; "AVX fix" ] in
  let profiles = List.map (fun v -> U.profile (F.workload v)) variants in
  let isa_total mix set =
    List.fold_left
      (fun acc (r : Mix.row) ->
        if Hbbp_isa.Mnemonic.equal_isa_set (Hbbp_isa.Mnemonic.isa_set r.mnemonic) set
        then acc +. r.count
        else acc)
      0.0 mix.Mix.rows
  in
  let calls mix =
    List.fold_left
      (fun acc (r : Mix.row) ->
        match Hbbp_isa.Mnemonic.category r.mnemonic with
        | Hbbp_isa.Mnemonic.Call -> acc +. r.count
        | _ -> acc)
      0.0 mix.Mix.rows
  in
  (* "Expected" = ground truth of the healthy build of each column; the
     broken AVX column's expectation comes from the fixed build, exactly
     as the paper's came from earlier compilations. *)
  let expected_profile v =
    match v with F.Avx_noinline -> U.profile (F.workload F.Avx) | _ -> U.profile (F.workload v)
  in
  let print_row name value_of =
    Format.fprintf ppf "%-22s" name;
    List.iter (fun v -> Format.fprintf ppf "%12s" (value_of v)) variants;
    Format.pp_print_newline ppf ()
  in
  let m v = Printf.sprintf "%.2f" (v /. 1e6) in
  Format.fprintf ppf "%-22s" "";
  List.iter (fun l -> Format.fprintf ppf "%12s" l) labels;
  Format.pp_print_newline ppf ();
  let expected_mix v =
    let p = expected_profile v in
    Mix.of_bbec p.Pipeline.static p.Pipeline.reference
  in
  let measured_mix v =
    let p = U.profile (F.workload v) in
    Pipeline.mix_of p p.Pipeline.hbbp
  in
  print_row "Expected x87 inst" (fun v -> m (isa_total (expected_mix v) Hbbp_isa.Mnemonic.X87));
  print_row "Expected SSE inst" (fun v -> m (isa_total (expected_mix v) Hbbp_isa.Mnemonic.Sse));
  print_row "Expected AVX inst" (fun v -> m (isa_total (expected_mix v) Hbbp_isa.Mnemonic.Avx));
  print_row "Expected CALLs" (fun v -> m (calls (expected_mix v)));
  print_row "Expected time/track" (fun v ->
      let p = expected_profile v in
      Printf.sprintf "%.3fus"
        (U.seconds p.Pipeline.clean_cycles /. float_of_int F.tracks *. 1e6));
  print_row "Measured x87 inst" (fun v -> m (isa_total (measured_mix v) Hbbp_isa.Mnemonic.X87));
  print_row "Measured SSE inst" (fun v -> m (isa_total (measured_mix v) Hbbp_isa.Mnemonic.Sse));
  print_row "Measured AVX inst" (fun v -> m (isa_total (measured_mix v) Hbbp_isa.Mnemonic.Avx));
  print_row "Measured CALLs" (fun v -> m (calls (measured_mix v)));
  print_row "Measured time/track" (fun v ->
      let p = U.profile (F.workload v) in
      Printf.sprintf "%.3fus"
        (U.seconds p.Pipeline.clean_cycles /. float_of_int F.tracks *. 1e6));
  print_row "AvgW Err" (fun v -> U.pct (U.hbbp_error (U.profile (F.workload v))));
  ignore profiles;
  Format.fprintf ppf
    "(broken AVX column: measured CALLs explode while vector counts stay \
     unsuspicious — the paper's inlining-regression signature)@."

(* ------------------------------------------------------------------ *)
(* Table 7: the kernel-space sample.                                   *)

let table7 ppf =
  U.header ppf "Table 7: instructions in the kernel sample";
  let p = U.profile (Hbbp_workloads.Kernelbench.workload ()) in
  let module K = Hbbp_workloads.Kernelbench in
  let mnemonic_totals_for mix symbol =
    let table = Hashtbl.create 32 in
    List.iter
      (fun (r : Mix.row) ->
        if String.equal r.symbol symbol then
          Hashtbl.replace table r.mnemonic
            (r.count +. Option.value ~default:0.0 (Hashtbl.find_opt table r.mnemonic)))
      mix.Mix.rows;
    table
  in
  let sde_mix = Mix.of_bbec p.static p.reference in
  let hbbp_mix = Pipeline.full_mix_of p p.hbbp in
  let sde_user = mnemonic_totals_for sde_mix K.user_function in
  let hbbp_user = mnemonic_totals_for hbbp_mix K.user_function in
  let hbbp_kernel = mnemonic_totals_for hbbp_mix K.kernel_function in
  let mnemonics =
    Hashtbl.fold (fun m _ acc -> m :: acc) sde_user []
    |> List.sort (fun a b ->
           compare (Hbbp_isa.Mnemonic.to_string a) (Hbbp_isa.Mnemonic.to_string b))
  in
  Format.fprintf ppf "%-10s %14s %14s %14s@." "Method" "SDE" "HBBP" "HBBP";
  Format.fprintf ppf "%-10s %14s %14s %14s@." "Module" "hello(user)"
    "hello.ko(krn)" "hello(user)";
  Format.fprintf ppf "%-10s %14s %14s %14s@." "Function" K.user_function
    K.kernel_function K.user_function;
  let get table m = Option.value ~default:0.0 (Hashtbl.find_opt table m) in
  let total_sde = ref 0.0 and total_k = ref 0.0 and total_u = ref 0.0 in
  List.iter
    (fun m ->
      let s = get sde_user m and k = get hbbp_kernel m and u = get hbbp_user m in
      total_sde := !total_sde +. s;
      total_k := !total_k +. k;
      total_u := !total_u +. u;
      Format.fprintf ppf "%-10s %14.0f %14.0f %14.0f@."
        (Hbbp_isa.Mnemonic.to_string m) s k u)
    mnemonics;
  Format.fprintf ppf "%-10s %14.0f %14.0f %14.0f@." "Total" !total_sde !total_k
    !total_u;
  Format.fprintf ppf
    "(SDE cannot see hello.ko at all: %d kernel instructions were invisible \
     to it)@."
    p.sde_lost_kernel

(* ------------------------------------------------------------------ *)
(* Table 8: CLForward vectorization before/after.                      *)

let table8 ppf =
  U.header ppf "Table 8: CLForward packing breakdown (HBBP view)";
  let module C = Hbbp_workloads.Clforward in
  let show variant label =
    let p = U.profile (C.workload variant) in
    let mix = Pipeline.mix_of p p.Pipeline.hbbp in
    Format.fprintf ppf "--- %s ---@." label;
    Pivot.render ppf (Views.packing_breakdown mix);
    Format.fprintf ppf "TOTAL: %.2fM instructions, %.3f ms runtime@."
      (Mix.total mix /. 1e6)
      (U.seconds p.Pipeline.clean_cycles *. 1e3)
  in
  show C.Before "BEFORE (scalar #omp simd reduction)";
  show C.After "AFTER (compiler-friendly, packed)";
  Format.fprintf ppf
    "(paper: scalar AVX 14.7G -> 0.4G, packed 1.5G -> 10.6G, total 19.2G -> \
     15.8G, +8%% performance)@."
