(* Reproductions of the paper's Figures 1-4 as printed series. *)

open Hbbp_core
module U = Bench_util

(* ------------------------------------------------------------------ *)
(* Figure 1: the decision tree generated from HBBP training data.      *)

let figure1 ppf =
  U.header ppf "Figure 1: decision tree generated from HBBP training data";
  let tree, dataset = Lazy.force U.trained in
  Format.fprintf ppf "%s" (Hbbp_mltree.Render.ascii dataset tree);
  (match Training.learned_cutoff tree with
  | Some c ->
      Format.fprintf ppf
        "root split: block length, cutoff %.1f (paper: consistently close \
         to 18)@."
        c
  | None -> Format.fprintf ppf "root split not on block length@.");
  let importances =
    Hbbp_mltree.Cart.feature_importances tree
      ~n_features:(Array.length Feature.names)
  in
  Format.fprintf ppf "feature importances:@.";
  Array.iteri
    (fun k v -> Format.fprintf ppf "  %-20s %.3f@." Feature.names.(k) v)
    importances;
  Format.fprintf ppf "training corpus: %d basic blocks (paper: ~1,100)@."
    (Hbbp_workloads.Training_set.total_static_blocks ())

(* ------------------------------------------------------------------ *)
(* Figure 2: SPEC overheads and per-benchmark weighted errors.         *)

let figure2 ppf =
  U.header ppf
    "Figure 2: SDE/HBBP overhead and HBBP/LBR/EBS errors on the SPEC-like \
     suite";
  Format.fprintf ppf "%-12s %9s %10s | %8s %8s %8s@." "benchmark" "SDE"
    "HBBP ovh" "HBBP" "LBR" "EBS";
  let excluded = ref [] in
  let sum_h = ref 0.0 and sum_l = ref 0.0 and sum_e = ref 0.0 and n = ref 0 in
  List.iter
    (fun name ->
      let p = U.profile_spec name in
      let h = U.hbbp_error p and l = U.lbr_error p and e = U.ebs_error p in
      (* The paper's footnote 2: benchmarks whose instrumentation result
         fails the PMU cross-check are excluded from the average. *)
      let bad_reference = Pipeline.sde_pmu_discrepancy p > 0.01 in
      if bad_reference then excluded := name :: !excluded
      else begin
        sum_h := !sum_h +. h;
        sum_l := !sum_l +. l;
        sum_e := !sum_e +. e;
        incr n
      end;
      Format.fprintf ppf "%-12s %8.2fx %9.2f%% | %8s %8s %8s%s@." name
        p.sde_slowdown
        (p.collection_overhead *. 100.0)
        (U.pct h) (U.pct l) (U.pct e)
        (if bad_reference then "  [excluded: SDE fails PMU cross-check]"
         else ""))
    Hbbp_workloads.Spec.names;
  let avg v = v /. float_of_int !n in
  Format.fprintf ppf
    "overall avg weighted error: HBBP %s | LBR %s | EBS %s  (paper: 1.83%% \
     / 3.15%% / 4.43%%)@."
    (U.pct (avg !sum_h)) (U.pct (avg !sum_l)) (U.pct (avg !sum_e));
  List.iter
    (fun name ->
      Format.fprintf ppf
        "%s excluded from averages (instrumentation bug caught by PMU \
         counts, as the paper's footnote 2 reports for x264ref)@."
        name)
    !excluded

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: Test40 top-20 mnemonics.                           *)

let test40_top20 () =
  let p = U.profile (Hbbp_workloads.Test40.workload ()) in
  let report = Pipeline.error_report p p.Pipeline.hbbp in
  let lbr_report = Pipeline.error_report p p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec in
  let ebs_report = Pipeline.error_report p p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec in
  (p, report, lbr_report, ebs_report)

let figure3 ppf =
  U.header ppf
    "Figure 3: Test40 instruction counts and HBBP errors (top 20 mnemonics)";
  let _, report, _, _ = test40_top20 () in
  Format.fprintf ppf "%-12s %14s %10s@." "mnemonic" "executions" "HBBP err";
  List.iteri
    (fun k (e : Error.per_mnemonic) ->
      if k < 20 then
        Format.fprintf ppf "%-12s %14.0f %9.2f%%@."
          (Hbbp_isa.Mnemonic.to_string e.mnemonic)
          e.reference (e.error *. 100.0))
    report.Error.per_mnemonic

let figure4 ppf =
  U.header ppf
    "Figure 4: Test40 per-mnemonic errors, HBBP vs LBR vs EBS (top 20)";
  let _, hbbp_r, lbr_r, ebs_r = test40_top20 () in
  Format.fprintf ppf "%-12s %10s %10s %10s@." "mnemonic" "HBBP" "LBR" "EBS";
  List.iteri
    (fun k (e : Error.per_mnemonic) ->
      if k < 20 then begin
        let find (r : Error.report) =
          Option.value ~default:0.0 (Error.error_for r e.mnemonic)
        in
        Format.fprintf ppf "%-12s %9.2f%% %9.2f%% %9.2f%%@."
          (Hbbp_isa.Mnemonic.to_string e.mnemonic)
          (e.error *. 100.0)
          (find lbr_r *. 100.0)
          (find ebs_r *. 100.0)
      end)
    hbbp_r.Error.per_mnemonic
