(** A fully-decoded instruction: a mnemonic plus its operands.

    By x86 (Intel-syntax) convention, operand 0 is the destination. *)

type t = { mnemonic : Mnemonic.t; operands : Operand.t array }

val make : Mnemonic.t -> Operand.t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [reads_memory i] — true when any source operand (or an implicit
    access such as [POP]) references memory. *)
val reads_memory : t -> bool

(** [writes_memory i] — true when the destination operand (or an implicit
    access such as [PUSH]) references memory. *)
val writes_memory : t -> bool

val is_branch : t -> bool
val branch_kind : t -> Mnemonic.branch_kind

(** [rel_displacement i] is the PC-relative displacement of a direct
    branch, if the instruction has one. *)
val rel_displacement : t -> int option

(** [with_rel i disp] replaces the [Rel] operand of a direct branch.
    Raises [Invalid_argument] if the instruction has no [Rel] operand. *)
val with_rel : t -> int -> t
