(** Binary instruction encoding — the role XED plays for the paper's tool.

    The encoding is a compact variable-length format:
    {v
      u16le  mnemonic code
      u8     operand count
      per operand:
        0x01 class:u8 idx:u8                         register   (3 bytes)
        0x02 base:u8 index:u8 scale:u8 disp:i32le    memory     (8 bytes)
        0x03 imm:i64le                               immediate  (9 bytes)
        0x04 disp:i32le                              pc-relative(5 bytes)
    v}
    Instruction lengths therefore vary between 3 and ~30 bytes, giving the
    disassembler and the basic-block address maps real work to do. *)

type error =
  | Truncated  (** Ran past the end of the buffer. *)
  | Bad_mnemonic of int
  | Bad_operand_tag of int
  | Bad_register of int * int  (** class, index *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** [encoded_length i] is the number of bytes [encode] will produce. *)
val encoded_length : Instruction.t -> int

(** [encode buf pos i] writes [i] at [pos] and returns the number of bytes
    written.  Raises [Invalid_argument] if the buffer is too small. *)
val encode : bytes -> int -> Instruction.t -> int

(** [encode_to_bytes i] is a fresh buffer holding exactly [i]. *)
val encode_to_bytes : Instruction.t -> bytes

(** [decode buf pos] decodes one instruction starting at [pos], returning
    it together with its encoded length. *)
val decode : bytes -> int -> (Instruction.t * int, error) result
