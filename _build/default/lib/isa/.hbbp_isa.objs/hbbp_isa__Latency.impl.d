lib/isa/latency.pp.ml: Instruction Mnemonic
