lib/isa/mnemonic.pp.mli: Format
