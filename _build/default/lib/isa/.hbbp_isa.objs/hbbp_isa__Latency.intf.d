lib/isa/latency.pp.mli: Instruction Mnemonic
