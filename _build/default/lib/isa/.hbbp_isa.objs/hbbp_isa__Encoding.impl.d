lib/isa/encoding.pp.ml: Array Bytes Format Instruction Int32 List Mnemonic Operand Option Result
