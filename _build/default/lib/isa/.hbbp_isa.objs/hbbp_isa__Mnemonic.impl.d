lib/isa/mnemonic.pp.ml: Hashtbl List Ppx_deriving_runtime
