lib/isa/operand.pp.mli: Format
