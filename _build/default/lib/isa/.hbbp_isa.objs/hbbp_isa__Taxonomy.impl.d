lib/isa/taxonomy.pp.ml: Instruction Latency List Mnemonic
