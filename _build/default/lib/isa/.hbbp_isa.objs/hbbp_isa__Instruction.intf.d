lib/isa/instruction.pp.mli: Format Mnemonic Operand
