lib/isa/taxonomy.pp.mli: Instruction Mnemonic
