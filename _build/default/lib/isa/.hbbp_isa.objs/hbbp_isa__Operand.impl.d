lib/isa/operand.pp.ml: Ppx_deriving_runtime
