lib/isa/encoding.pp.mli: Format Instruction
