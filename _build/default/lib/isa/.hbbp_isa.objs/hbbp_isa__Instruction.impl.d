lib/isa/instruction.pp.ml: Array Format Mnemonic Operand
