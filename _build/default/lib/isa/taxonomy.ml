type group = { name : string; matches : Instruction.t -> bool }

let make name matches = { name; matches }

let long_latency =
  make "long latency instructions" (fun (i : Instruction.t) ->
      Latency.is_long_latency i.mnemonic
      || (Mnemonic.equal i.mnemonic XCHG && Instruction.writes_memory i))

let synchronization =
  make "synchronization instructions" (fun (i : Instruction.t) ->
      match Mnemonic.category i.mnemonic with
      | Mnemonic.Sync -> true
      | _ -> Mnemonic.equal i.mnemonic XCHG && Instruction.writes_memory i)

let memory_read = make "memory read" Instruction.reads_memory
let memory_write = make "memory write" Instruction.writes_memory

let vector_packed =
  make "packed vector" (fun (i : Instruction.t) ->
      Mnemonic.equal_packing (Mnemonic.packing i.mnemonic) Mnemonic.Packed)

let vector_scalar_fp =
  make "scalar fp" (fun (i : Instruction.t) ->
      Mnemonic.equal_packing (Mnemonic.packing i.mnemonic) Mnemonic.Scalar_fp)

let control_flow = make "control flow" Instruction.is_branch

let fp_math =
  make "fp math" (fun (i : Instruction.t) ->
      (match Mnemonic.element i.mnemonic with
      | Mnemonic.Fp32 | Mnemonic.Fp64 -> true
      | Mnemonic.Int_elem | Mnemonic.No_elem -> false)
      &&
      match Mnemonic.category i.mnemonic with
      | Mnemonic.Arithmetic | Mnemonic.Divide | Mnemonic.Sqrt
      | Mnemonic.Transcendental | Mnemonic.Fma ->
          true
      | _ -> false)

let builtins =
  [
    long_latency;
    synchronization;
    memory_read;
    memory_write;
    vector_packed;
    vector_scalar_fp;
    control_flow;
    fp_math;
  ]

let classify groups i =
  List.filter_map (fun g -> if g.matches i then Some g.name else None) groups

let of_isa_set s =
  make
    (Mnemonic.isa_set_to_string s)
    (fun (i : Instruction.t) ->
      Mnemonic.equal_isa_set (Mnemonic.isa_set i.mnemonic) s)

let of_category c =
  make
    (Mnemonic.category_to_string c)
    (fun (i : Instruction.t) ->
      Mnemonic.equal_category (Mnemonic.category i.mnemonic) c)
