type gpr =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15
[@@deriving show { with_path = false }, eq, ord, enum]

type reg = Gpr of gpr | Xmm of int | Ymm of int | St of int
[@@deriving show { with_path = false }, eq, ord]

type mem = { base : gpr; index : gpr option; scale : int; disp : int }
[@@deriving show { with_path = false }, eq, ord]

type t = Reg of reg | Mem of mem | Imm of int64 | Rel of int
[@@deriving show { with_path = false }, eq, ord]

let gpr_code = gpr_to_enum
let gpr_of_code = gpr_of_enum

let all_gprs =
  let rec collect code acc =
    if code < min_gpr then acc
    else
      match gpr_of_enum code with
      | Some g -> collect (code - 1) (g :: acc)
      | None -> collect (code - 1) acc
  in
  collect max_gpr []

let mem ?index ?(scale = 1) ?(disp = 0) base = Mem { base; index; scale; disp }

let is_mem = function Mem _ -> true | Reg _ | Imm _ | Rel _ -> false
