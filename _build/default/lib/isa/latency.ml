let latency (m : Mnemonic.t) =
  match m with
  (* Division: the paper's canonical long-latency example. *)
  | DIV | IDIV -> 26
  | DIVSS -> 11
  | DIVSD -> 14
  | DIVPS -> 13
  | DIVPD -> 20
  | VDIVSS -> 11
  | VDIVSD -> 14
  | VDIVPS -> 21
  | VDIVPD -> 35
  | FDIV -> 24
  (* Square roots. *)
  | SQRTSS -> 11
  | SQRTSD -> 16
  | SQRTPS -> 14
  | SQRTPD -> 22
  | VSQRTPS -> 28
  | VSQRTPD -> 43
  | VSQRTSD -> 16
  | FSQRT -> 24
  (* Transcendentals (x87 microcode). *)
  | FSIN | FCOS -> 90
  | FPTAN -> 120
  | F2XM1 -> 70
  | FYL2X -> 100
  (* Multiplies. *)
  | IMUL | MUL -> 3
  | MULSS | MULSD | MULPS | MULPD | VMULPS | VMULPD | VMULSS | VMULSD -> 5
  | PMULLD | VPMULLD -> 10
  | FMUL -> 5
  (* FP add/sub/cmp. *)
  | ADDSS | ADDSD | SUBSS | SUBSD | ADDPS | ADDPD | SUBPS | SUBPD
  | VADDPS | VADDPD | VSUBPS | VSUBPD | VADDSS | VADDSD | VSUBSS
  | MAXSS | MINSS | MAXPS | MINPS | VMAXPS | VMINPS | CMPPS
  | FADD | FSUB -> 3
  | COMISS | COMISD | UCOMISS | UCOMISD | VUCOMISD | VCOMISS | FCOM | FCOMI
    -> 2
  (* FMA. *)
  | VFMADD213PS | VFMADD213PD | VFMADD231SS | VFMADD231SD -> 5
  (* Conversions. *)
  | CVTSI2SS | CVTSI2SD | CVTSD2SI | CVTSS2SI | CVTSS2SD | CVTSD2SS
  | CVTTSD2SI | VCVTSI2SD | VCVTSD2SI -> 4
  (* Shuffles / lane moves. *)
  | SHUFPS | UNPCKLPS | UNPCKHPS | MOVHLPS | MOVLHPS | PSHUFD | PUNPCKLDQ
  | VSHUFPS | VPERMILPS | VPBROADCASTD -> 1
  | VBROADCASTSS | VBROADCASTSD -> 3
  | VINSERTF128 | VEXTRACTF128 | VPERM2F128 -> 3
  | VGATHERDPS -> 12
  (* Synchronisation: serialising and slow. *)
  | XADD | CMPXCHG -> 8
  | LOCK_XADD | LOCK_CMPXCHG -> 22
  | MFENCE -> 33
  | LFENCE | SFENCE -> 6
  (* System. *)
  | CPUID -> 100
  | RDTSC -> 27
  | SYSCALL | SYSRET -> 75
  | HLT -> 20
  | PAUSE -> 9
  (* x87 data movement. *)
  | FLD | FST | FSTP | FXCH | FILD | FISTP | FABS | FCHS -> 1
  (* Everything else is simple single-cycle integer work.  Listing the
     remaining mnemonics explicitly would add no information; the model is
     "1 cycle unless stated above". *)
  | MOV | MOVZX | MOVSX | MOVSXD | LEA | XCHG | CMOVZ | CMOVNZ
  | SETZ | SETNZ | SETLE | PUSH | POP
  | ADD | ADC | SUB | SBB | INC | DEC | NEG | CDQ | CDQE
  | AND | OR | XOR | NOT | TEST | CMP
  | SHL | SHR | SAR | ROL | ROR
  | JMP | JZ | JNZ | JLE | JNLE | JL | JNL | JB | JNB | JBE | JNBE | JS | JNS
  | CALL_NEAR | RET_NEAR | NOP
  | MOVSS | MOVSD | MOVAPS | MOVUPS | MOVAPD | MOVUPD | MOVDQA | MOVDQU
  | VMOVAPS | VMOVUPS | VMOVAPD | VMOVUPD | VMOVSS | VMOVSD
  | ANDPS | ORPS | XORPS | ANDPD | XORPD | PAND | POR | PXOR
  | VANDPS | VXORPS | VXORPD | VPAND | VPXOR
  | PADDD | PADDQ | PSUBD | PCMPEQD | PSLLD | PSRLD | VPADDD
  | VZEROUPPER | VZEROALL -> 1

let memory_access_cost = 4
let long_latency_threshold = 10
let is_long_latency m = latency m >= long_latency_threshold

let cost (i : Instruction.t) =
  let base = latency i.mnemonic in
  if Instruction.reads_memory i || Instruction.writes_memory i then
    base + memory_access_cost
  else base
