(** Instruction mnemonics of the synthetic x86-flavoured ISA.

    The set is large enough to express the workload families the paper
    evaluates: base integer code, x87 scalar floating point, SSE
    scalar/packed, AVX/AVX2 and FMA.  Every mnemonic carries static
    attributes (ISA set, category, vector packing, element type) that the
    analyzer uses to build instruction taxonomies and pivot tables. *)

(** ISA extension a mnemonic belongs to (cf. the paper's "INST SET"
    breakdown in Table 8). *)
type isa_set =
  | Base  (** Scalar integer / control flow. *)
  | X87  (** Legacy x87 floating-point stack. *)
  | Sse  (** 128-bit SSE/SSE2, scalar and packed. *)
  | Avx  (** 256-bit AVX. *)
  | Avx2  (** AVX2 integer / FMA. *)

(** Coarse functional category, used for taxonomies and for the
    instrumentation-cost and latency models. *)
type category =
  | Data_transfer
  | Arithmetic
  | Logical
  | Shift
  | Compare
  | Branch  (** Conditional and unconditional jumps. *)
  | Call
  | Ret
  | Convert  (** CVT* data conversions (paper section VIII.E). *)
  | Divide
  | Sqrt
  | Transcendental  (** FSIN and friends: very long latency. *)
  | Fma
  | Shuffle  (** Shuffles, permutes, unpacks, broadcasts. *)
  | Stack  (** PUSH/POP. *)
  | Sync  (** LOCK-prefixed and fences (paper's example group). *)
  | Nop
  | System  (** CPUID, RDTSC, SYSCALL/SYSRET, HLT. *)

(** Vector packing attribute (Table 8 distinguishes SCALAR vs PACKED). *)
type packing =
  | Packed
  | Scalar_fp  (** Scalar floating point (SSE/AVX scalar, x87). *)
  | Not_vector

(** Element type operated on. *)
type element =
  | Int_elem
  | Fp32
  | Fp64
  | No_elem

(** Branch behaviour of a mnemonic. *)
type branch_kind =
  | Cond_jump
  | Uncond_jump
  | Call_branch
  | Ret_branch
  | Not_branch

type t =
  (* Base data transfer *)
  | MOV | MOVZX | MOVSX | MOVSXD | LEA | XCHG | CMOVZ | CMOVNZ
  | SETZ | SETNZ | SETLE
  | PUSH | POP
  (* Base arithmetic *)
  | ADD | ADC | SUB | SBB | INC | DEC | NEG | IMUL | MUL | IDIV | DIV
  | CDQ | CDQE
  (* Base logical / compare / shift *)
  | AND | OR | XOR | NOT | TEST | CMP
  | SHL | SHR | SAR | ROL | ROR
  (* Branches *)
  | JMP | JZ | JNZ | JLE | JNLE | JL | JNL | JB | JNB | JBE | JNBE | JS | JNS
  | CALL_NEAR | RET_NEAR
  (* System / sync *)
  | NOP | PAUSE | CPUID | RDTSC | SYSCALL | SYSRET | HLT
  | XADD | CMPXCHG | LOCK_XADD | LOCK_CMPXCHG | MFENCE | LFENCE | SFENCE
  (* x87 *)
  | FLD | FST | FSTP | FXCH | FILD | FISTP
  | FADD | FSUB | FMUL | FDIV | FSQRT | FABS | FCHS | FCOM | FCOMI
  | FSIN | FCOS | FPTAN | F2XM1 | FYL2X
  (* SSE scalar fp *)
  | MOVSS | MOVSD
  | ADDSS | ADDSD | SUBSS | SUBSD | MULSS | MULSD | DIVSS | DIVSD
  | SQRTSS | SQRTSD | MAXSS | MINSS
  | COMISS | COMISD | UCOMISS | UCOMISD
  | CVTSI2SS | CVTSI2SD | CVTSD2SI | CVTSS2SI | CVTSS2SD | CVTSD2SS
  | CVTTSD2SI
  (* SSE packed fp *)
  | MOVAPS | MOVUPS | MOVAPD | MOVUPD
  | ADDPS | ADDPD | SUBPS | SUBPD | MULPS | MULPD | DIVPS | DIVPD
  | SQRTPS | SQRTPD | MAXPS | MINPS
  | ANDPS | ORPS | XORPS | ANDPD | XORPD
  | SHUFPS | UNPCKLPS | UNPCKHPS | MOVHLPS | MOVLHPS | CMPPS
  (* SSE integer *)
  | MOVDQA | MOVDQU
  | PADDD | PADDQ | PSUBD | PMULLD | PAND | POR | PXOR
  | PSLLD | PSRLD | PCMPEQD | PSHUFD | PUNPCKLDQ
  (* AVX *)
  | VMOVAPS | VMOVUPS | VMOVAPD | VMOVUPD | VMOVSS | VMOVSD
  | VADDPS | VADDPD | VSUBPS | VSUBPD | VMULPS | VMULPD
  | VDIVPS | VDIVPD | VSQRTPS | VSQRTPD
  | VADDSS | VADDSD | VSUBSS | VMULSS | VMULSD | VDIVSS | VDIVSD | VSQRTSD
  | VMAXPS | VMINPS | VANDPS | VXORPS | VXORPD | VSHUFPS
  | VBROADCASTSS | VBROADCASTSD | VINSERTF128 | VEXTRACTF128
  | VPERM2F128 | VPERMILPS | VZEROUPPER | VZEROALL
  | VCVTSI2SD | VCVTSD2SI | VUCOMISD | VCOMISS
  (* AVX2 / FMA *)
  | VFMADD213PS | VFMADD213PD | VFMADD231SS | VFMADD231SD
  | VPADDD | VPMULLD | VPAND | VPXOR | VPBROADCASTD | VGATHERDPS

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [to_string m] is the canonical upper-case mnemonic string, e.g.
    ["RET_NEAR"]. *)
val to_string : t -> string

(** [of_string s] parses a canonical mnemonic string (case-sensitive). *)
val of_string : string -> t option

(** Stable numeric code used by the binary encoding.  Codes are dense in
    [0, max_code]. *)
val to_code : t -> int

val of_code : int -> t option
val max_code : int

(** All mnemonics, in code order. *)
val all : t list

val isa_set : t -> isa_set
val category : t -> category
val packing : t -> packing
val element : t -> element
val branch_kind : t -> branch_kind

(** [is_branch m] is true for every mnemonic that can redirect control
    flow (jumps, calls, returns, syscall/sysret). *)
val is_branch : t -> bool

val isa_set_to_string : isa_set -> string
val category_to_string : category -> string
val packing_to_string : packing -> string
val pp_isa_set : Format.formatter -> isa_set -> unit
val pp_category : Format.formatter -> category -> unit
val pp_packing : Format.formatter -> packing -> unit
val equal_isa_set : isa_set -> isa_set -> bool
val equal_category : category -> category -> bool
val equal_packing : packing -> packing -> bool
