(** Registers and instruction operands. *)

(** General-purpose 64-bit registers. *)
type gpr =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

(** Any architectural register. *)
type reg =
  | Gpr of gpr
  | Xmm of int  (** [Xmm i], 0 <= i < 16 — 128-bit vector register. *)
  | Ymm of int  (** [Ymm i], 0 <= i < 16 — 256-bit vector register. *)
  | St of int  (** [St i], 0 <= i < 8 — x87 stack slot, relative to top. *)

(** A memory reference: [base + index*scale + disp]. *)
type mem = {
  base : gpr;
  index : gpr option;
  scale : int;  (** 1, 2, 4 or 8; meaningful only when [index] is set. *)
  disp : int;
}

type t =
  | Reg of reg
  | Mem of mem
  | Imm of int64
  | Rel of int
      (** PC-relative branch displacement, from the address of the {e next}
          instruction, in bytes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_gpr : Format.formatter -> gpr -> unit
val equal_gpr : gpr -> gpr -> bool

val gpr_code : gpr -> int
val gpr_of_code : int -> gpr option
val all_gprs : gpr list

(** [mem base] is a simple [base + 0] reference. *)
val mem : ?index:gpr -> ?scale:int -> ?disp:int -> gpr -> t

val is_mem : t -> bool
