(** Instruction taxonomies.

    The paper's analyzer "enables the easy creation of custom instruction
    taxonomies based on instruction properties" (section V.B) — e.g. a
    user-defined "long latency instructions" group containing DIV, SQRT,
    XCHG R,M, or a "synchronization instructions" group with XADD and LOCK
    variants.  A {!group} is a named predicate over instructions; built-in
    groups cover the paper's examples. *)

type group = { name : string; matches : Instruction.t -> bool }

val make : string -> (Instruction.t -> bool) -> group

(** Paper's example: DIV, SQRT, transcendentals, "XCHG R,M", … *)
val long_latency : group

(** Paper's example: XADD, LOCK variants, fences. *)
val synchronization : group

val memory_read : group
val memory_write : group
val vector_packed : group
val vector_scalar_fp : group
val control_flow : group
val fp_math : group

(** All built-in groups, in a stable order. *)
val builtins : group list

(** [classify groups i] is the names of every group [i] belongs to. *)
val classify : group list -> Instruction.t -> string list

(** [of_isa_set s] / [of_category c] build groups from static attributes —
    the dimensions used by pivot tables. *)
val of_isa_set : Mnemonic.isa_set -> group

val of_category : Mnemonic.category -> group
