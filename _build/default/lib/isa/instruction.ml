type t = { mnemonic : Mnemonic.t; operands : Operand.t array }

let make mnemonic operands = { mnemonic; operands = Array.of_list operands }

let equal a b =
  Mnemonic.equal a.mnemonic b.mnemonic
  && Array.length a.operands = Array.length b.operands
  && Array.for_all2 Operand.equal a.operands b.operands

let pp ppf { mnemonic; operands } =
  if Array.length operands = 0 then Mnemonic.pp ppf mnemonic
  else
    Format.fprintf ppf "%a %a" Mnemonic.pp mnemonic
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Operand.pp)
      operands

let to_string i = Format.asprintf "%a" pp i

(* Implicit stack accesses: PUSH/CALL write the stack, POP/RET read it. *)
let implicit_mem_read m =
  match (m : Mnemonic.t) with
  | POP | RET_NEAR | FLD | FILD -> true
  | _ -> false

let implicit_mem_write m =
  match (m : Mnemonic.t) with
  | PUSH | CALL_NEAR | FSTP | FST | FISTP -> true
  | _ -> false

(* Mnemonics whose first operand is read-only (no destination write). *)
let first_operand_is_source m =
  match (m : Mnemonic.t) with
  | CMP | TEST | COMISS | COMISD | UCOMISS | UCOMISD | FCOM | FCOMI
  | VUCOMISD | VCOMISS | PUSH | FLD | FILD ->
      true
  | _ -> false

(* Pure moves overwrite their destination without reading it, so a memory
   destination is not a memory read.  Everything else with a memory
   destination is read-modify-write (e.g. ADD [m], r). *)
let overwrites_destination m =
  match Mnemonic.category m with
  | Mnemonic.Data_transfer | Mnemonic.Shuffle -> true
  | Mnemonic.Arithmetic | Mnemonic.Logical | Mnemonic.Shift
  | Mnemonic.Compare | Mnemonic.Branch | Mnemonic.Call | Mnemonic.Ret
  | Mnemonic.Convert | Mnemonic.Divide | Mnemonic.Sqrt
  | Mnemonic.Transcendental | Mnemonic.Fma | Mnemonic.Stack | Mnemonic.Sync
  | Mnemonic.Nop | Mnemonic.System ->
      false

let reads_memory { mnemonic; operands } =
  if implicit_mem_read mnemonic then true
  else
    match mnemonic with
    | LEA -> false (* only computes the address *)
    | _ ->
        let n = Array.length operands in
        let source_start =
          if n = 0 then 0
          else if first_operand_is_source mnemonic then 0
          else if overwrites_destination mnemonic then 1
          else 0 (* read-modify-write: the destination is also read *)
        in
        let rec scan k =
          k < n && (Operand.is_mem operands.(k) || scan (k + 1))
        in
        scan source_start

let writes_memory { mnemonic; operands } =
  if implicit_mem_write mnemonic then true
  else if first_operand_is_source mnemonic then false
  else
    match mnemonic with
    | LEA -> false
    | _ -> Array.length operands > 0 && Operand.is_mem operands.(0)

let is_branch i = Mnemonic.is_branch i.mnemonic
let branch_kind i = Mnemonic.branch_kind i.mnemonic

let rel_displacement { operands; _ } =
  let rec find k =
    if k >= Array.length operands then None
    else match operands.(k) with
      | Operand.Rel d -> Some d
      | Operand.Reg _ | Operand.Mem _ | Operand.Imm _ -> find (k + 1)
  in
  find 0

let with_rel i disp =
  let found = ref false in
  let operands =
    Array.map
      (function
        | Operand.Rel _ ->
            found := true;
            Operand.Rel disp
        | (Operand.Reg _ | Operand.Mem _ | Operand.Imm _) as op -> op)
      i.operands
  in
  if not !found then invalid_arg "Instruction.with_rel: no Rel operand";
  { i with operands }
