type error =
  | Truncated
  | Bad_mnemonic of int
  | Bad_operand_tag of int
  | Bad_register of int * int

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated instruction"
  | Bad_mnemonic c -> Format.fprintf ppf "bad mnemonic code %#x" c
  | Bad_operand_tag t -> Format.fprintf ppf "bad operand tag %#x" t
  | Bad_register (c, i) -> Format.fprintf ppf "bad register (class %d, idx %d)" c i

let error_to_string e = Format.asprintf "%a" pp_error e

let operand_length = function
  | Operand.Reg _ -> 3
  | Operand.Mem _ -> 8
  | Operand.Imm _ -> 9
  | Operand.Rel _ -> 5

let encoded_length (i : Instruction.t) =
  Array.fold_left (fun acc op -> acc + operand_length op) 3 i.operands

let reg_class_and_index = function
  | Operand.Gpr g -> (0, Operand.gpr_code g)
  | Operand.Xmm i -> (1, i)
  | Operand.Ymm i -> (2, i)
  | Operand.St i -> (3, i)

let reg_of_class_and_index cls idx =
  match cls with
  | 0 -> Option.map (fun g -> Operand.Gpr g) (Operand.gpr_of_code idx)
  | 1 -> if idx < 16 then Some (Operand.Xmm idx) else None
  | 2 -> if idx < 16 then Some (Operand.Ymm idx) else None
  | 3 -> if idx < 8 then Some (Operand.St idx) else None
  | _ -> None

let set_u16 buf pos v =
  Bytes.set_uint8 buf pos (v land 0xff);
  Bytes.set_uint8 buf (pos + 1) ((v lsr 8) land 0xff)

let set_i32 buf pos v = Bytes.set_int32_le buf pos (Int32.of_int v)
let get_i32 buf pos = Int32.to_int (Bytes.get_int32_le buf pos)

let encode buf pos (i : Instruction.t) =
  let len = encoded_length i in
  if pos + len > Bytes.length buf then
    invalid_arg "Encoding.encode: buffer too small";
  set_u16 buf pos (Mnemonic.to_code i.mnemonic);
  Bytes.set_uint8 buf (pos + 2) (Array.length i.operands);
  let cursor = ref (pos + 3) in
  let put_operand op =
    let p = !cursor in
    (match op with
    | Operand.Reg r ->
        let cls, idx = reg_class_and_index r in
        Bytes.set_uint8 buf p 0x01;
        Bytes.set_uint8 buf (p + 1) cls;
        Bytes.set_uint8 buf (p + 2) idx
    | Operand.Mem { base; index; scale; disp } ->
        Bytes.set_uint8 buf p 0x02;
        Bytes.set_uint8 buf (p + 1) (Operand.gpr_code base);
        Bytes.set_uint8 buf (p + 2)
          (match index with None -> 0xff | Some g -> Operand.gpr_code g);
        Bytes.set_uint8 buf (p + 3) scale;
        set_i32 buf (p + 4) disp
    | Operand.Imm v ->
        Bytes.set_uint8 buf p 0x03;
        Bytes.set_int64_le buf (p + 1) v
    | Operand.Rel d ->
        Bytes.set_uint8 buf p 0x04;
        set_i32 buf (p + 1) d);
    cursor := p + operand_length op
  in
  Array.iter put_operand i.operands;
  len

let encode_to_bytes i =
  let buf = Bytes.create (encoded_length i) in
  ignore (encode buf 0 i);
  buf

let ( let* ) = Result.bind

let decode buf pos =
  let avail = Bytes.length buf - pos in
  if avail < 3 then Error Truncated
  else
    let code = Bytes.get_uint8 buf pos lor (Bytes.get_uint8 buf (pos + 1) lsl 8) in
    match Mnemonic.of_code code with
    | None -> Error (Bad_mnemonic code)
    | Some mnemonic ->
        let count = Bytes.get_uint8 buf (pos + 2) in
        let rec operands k cursor acc =
          if k = count then Ok (List.rev acc, cursor - pos)
          else if cursor >= Bytes.length buf then Error Truncated
          else
            let tag = Bytes.get_uint8 buf cursor in
            let need =
              match tag with
              | 0x01 -> Some 3
              | 0x02 -> Some 8
              | 0x03 -> Some 9
              | 0x04 -> Some 5
              | _ -> None
            in
            match need with
            | None -> Error (Bad_operand_tag tag)
            | Some n when cursor + n > Bytes.length buf -> Error Truncated
            | Some n ->
                let* op =
                  match tag with
                  | 0x01 ->
                      let cls = Bytes.get_uint8 buf (cursor + 1) in
                      let idx = Bytes.get_uint8 buf (cursor + 2) in
                      (match reg_of_class_and_index cls idx with
                      | Some r -> Ok (Operand.Reg r)
                      | None -> Error (Bad_register (cls, idx)))
                  | 0x02 ->
                      let base_code = Bytes.get_uint8 buf (cursor + 1) in
                      let index_code = Bytes.get_uint8 buf (cursor + 2) in
                      let scale = Bytes.get_uint8 buf (cursor + 3) in
                      let disp = get_i32 buf (cursor + 4) in
                      let* base =
                        match Operand.gpr_of_code base_code with
                        | Some g -> Ok g
                        | None -> Error (Bad_register (0, base_code))
                      in
                      let* index =
                        if index_code = 0xff then Ok None
                        else
                          match Operand.gpr_of_code index_code with
                          | Some g -> Ok (Some g)
                          | None -> Error (Bad_register (0, index_code))
                      in
                      Ok (Operand.Mem { base; index; scale; disp })
                  | 0x03 -> Ok (Operand.Imm (Bytes.get_int64_le buf (cursor + 1)))
                  | 0x04 -> Ok (Operand.Rel (get_i32 buf (cursor + 1)))
                  | _ -> assert false
                in
                operands (k + 1) (cursor + n) (op :: acc)
        in
        let* ops, len = operands 0 (pos + 3) [] in
        Ok ({ Instruction.mnemonic; operands = Array.of_list ops }, len)
