(** Instruction latency model.

    Latencies are loosely modelled on published Ivy Bridge numbers (Fog's
    instruction tables, which the paper cites as [22]).  They drive the
    simulator's timing and — critically for the reproduction — define which
    instructions cast a {e shadow} over subsequent PMU samples
    (paper section III.A). *)

(** Cycles until the result of the instruction is available. *)
val latency : Mnemonic.t -> int

(** Additional cycles charged when the instruction accesses memory
    (a flat L1-hit cost). *)
val memory_access_cost : int

(** Threshold above which an instruction is considered "long latency"
    and creates a sampling shadow. *)
val long_latency_threshold : int

val is_long_latency : Mnemonic.t -> bool

(** [cost i] is the total timing charge for one execution of [i]:
    [latency i.mnemonic] plus [memory_access_cost] if it touches memory. *)
val cost : Instruction.t -> int
