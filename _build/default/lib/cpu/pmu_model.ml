type skid = { distances : int array; weights : float array }

type t = {
  lbr_depth : int;
  precise_skid : skid;
  imprecise_skid : skid;
  branch_skid : skid;
  shadow_enabled : bool;
  shadow_slide_probability : float;
  quirk_hash_mod : int;
  quirk_probability : float;
  quirk_drop_probability : float;
  global_anomaly_probability : float;
  global_drop_probability : float;
  pmi_cost_cycles : int;
  seed : int64;
}

let default =
  {
    lbr_depth = 16;
    precise_skid =
      {
        distances = [| 0; 1; 2; 3; 4; 5; 6; 8 |];
        weights = [| 0.12; 0.18; 0.20; 0.17; 0.13; 0.10; 0.06; 0.04 |];
      };
    imprecise_skid =
      {
        distances = [| 1; 2; 3; 4; 5; 6; 8 |];
        weights = [| 0.10; 0.20; 0.25; 0.20; 0.12; 0.08; 0.05 |];
      };
    branch_skid = { distances = [| 0; 1 |]; weights = [| 0.85; 0.15 |] };
    shadow_enabled = true;
    shadow_slide_probability = 0.2;
    quirk_hash_mod = 31;
    quirk_probability = 0.45;
    quirk_drop_probability = 0.45;
    global_anomaly_probability = 0.03;
    global_drop_probability = 0.012;
    (* ~3us at 3GHz: PMI + LBR read-out + perf record write.  Calibrated
       against the paper's time penalties: 2.3% on Test40 at the
       "seconds" periods, ~0.02% at SPEC periods. *)
    pmi_cost_cycles = 9000;
    seed = 0x5EEDCAFEL;
  }

(* The quirk is a fixed property of the branch's address, as observed on
   real hardware: the same branches misbehave run after run. *)
let hash_addr addr =
  let z = Int64.of_int addr in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFL)

let is_quirk_branch t src = hash_addr src mod t.quirk_hash_mod = 0

let draw_skid prng skid = skid.distances.(Prng.choose prng skid.weights)
