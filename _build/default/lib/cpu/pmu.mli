(** The Performance Monitoring Unit.

    Counters can run in counting mode (exact totals, used for
    cross-checking instrumentation results — paper section VII.B) or in
    sampling mode with a period; sampling counters may have LBR capture
    enabled.  The sampling path implements the skid, shadowing and LBR
    anomaly models from {!Pmu_model}. *)

open Hbbp_program

type counter_mode =
  | Counting
  | Sampling of { period : int; lbr : bool }

type counter_config = { event : Pmu_event.t; mode : counter_mode }

type sample = {
  event : Pmu_event.t;
  ip : int;  (** Eventing IP (where the PMI observed retirement). *)
  lbr : Lbr.entry array;  (** Oldest first; empty if LBR capture is off. *)
  ring : Ring.t;
  retired_index : int;
  cycles : int;
}

type t

(** [create model configs] —
    @raise Invalid_argument for more than 4 counters or more than one
    precise sampling event (the x86 restriction the paper works around
    with its dual-LBR collection). *)
val create : Pmu_model.t -> counter_config list -> t

(** Register this PMU on a machine. *)
val observer : t -> Machine.observer

(** Samples in delivery order. *)
val samples : t -> sample list

(** Final totals of every counter, including sampling ones. *)
val counts : t -> (Pmu_event.t * int64) list

(** Number of PMIs taken — input to the overhead model. *)
val pmi_count : t -> int

val reset : t -> unit
