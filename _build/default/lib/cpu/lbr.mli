(** The Last Branch Record facility: a circular hardware buffer of the
    most recently retired taken branches, stored as source → target
    address pairs (paper section III.B). *)

type entry = { src : int; tgt : int }

type t

(** [create ~depth] — the paper's hardware has [depth = 16]. *)
val create : depth:int -> t

val depth : t -> int

(** [push t ~src ~tgt] records a retired taken branch, evicting the oldest
    entry once full. *)
val push : t -> src:int -> tgt:int -> unit

(** [snapshot t] — entries ordered oldest first.  Fewer than [depth]
    entries are returned if the buffer has not filled yet. *)
val snapshot : t -> entry array

(** [overwrite_oldest t e] — the anomaly path: clobber the oldest slot
    with [e] without rotating the buffer.  No-op on an empty buffer. *)
val overwrite_oldest : t -> entry -> unit

val clear : t -> unit
val fill_level : t -> int
