type region = { base : int; data : Bytes.t }
type t = { regions : region array }

exception Fault of int

let create specs =
  let regions =
    specs
    |> List.map (fun (base, size) -> { base; data = Bytes.make size '\000' })
    |> List.sort (fun a b -> compare a.base b.base)
    |> Array.of_list
  in
  Array.iteri
    (fun k r ->
      if k > 0 then
        let prev = regions.(k - 1) in
        if prev.base + Bytes.length prev.data > r.base then
          invalid_arg "Memory.create: overlapping regions")
    regions;
  { regions }

(* Hot path: small number of regions, last-hit cache would be overkill —
   a linear scan over <= 4 regions is branch-predictable. *)
let find t addr len =
  let n = Array.length t.regions in
  let rec scan k =
    if k = n then raise (Fault addr)
    else
      let r = t.regions.(k) in
      let off = addr - r.base in
      if off >= 0 && off + len <= Bytes.length r.data then (r.data, off)
      else scan (k + 1)
  in
  scan 0

let read_u8 t addr =
  let data, off = find t addr 1 in
  Bytes.get_uint8 data off

let write_u8 t addr v =
  let data, off = find t addr 1 in
  Bytes.set_uint8 data off (v land 0xff)

let read_i64 t addr =
  let data, off = find t addr 8 in
  Bytes.get_int64_le data off

let write_i64 t addr v =
  let data, off = find t addr 8 in
  Bytes.set_int64_le data off v

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

let read_i32 t addr =
  let data, off = find t addr 4 in
  Bytes.get_int32_le data off

let write_i32 t addr v =
  let data, off = find t addr 4 in
  Bytes.set_int32_le data off v

let read_f32 t addr = Int32.float_of_bits (read_i32 t addr)
let write_f32 t addr v = write_i32 t addr (Int32.bits_of_float v)

let is_mapped t addr =
  match find t addr 1 with
  | _ -> true
  | exception Fault _ -> false
