(** A miniature operating-system kernel, built as code for the simulated
    ISA.

    The kernel exists in two forms (paper section III.C): the {b disk}
    image, whose tracepoint sites hold unconditional jumps to trace
    probes, and the {b live} image, in which those sites are patched to
    same-length multi-byte NOPs because tracing is disabled.  Execution
    always uses the live image; an analyzer that disassembles the disk
    image sees branches the execution stream ignores — until it applies
    {!Image.patch_code} with the live text. *)

open Hbbp_program

type built = {
  disk : Image.t;  (** What the analyzer finds "on disk". *)
  live : Image.t;  (** What actually executes. *)
}

(** An externally provided (kernel-module) syscall handler. *)
type external_service = {
  number : int;  (** >= {!Kernel_abi.first_module_syscall}. *)
  name : string;
  entry_addr : int;  (** Absolute address of the handler (RET-terminated). *)
}

(** [build ()] assembles the kernel at {!Layout.kernel_code_base} with the
    built-in services of {!Kernel_abi} plus any [external_services].
    Disk and live images have identical layout. *)
val build : ?external_services:external_service list -> unit -> built
