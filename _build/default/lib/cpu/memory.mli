(** Simulated physical memory: a small set of non-overlapping regions. *)

type t

exception Fault of int  (** Access to an unmapped address. *)

(** [create regions] — [(base, size)] pairs, zero-initialised. *)
val create : (int * int) list -> t

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_f32 : t -> int -> float
val write_f32 : t -> int -> float -> unit
val read_i32 : t -> int -> int32
val write_i32 : t -> int -> int32 -> unit

val is_mapped : t -> int -> bool
