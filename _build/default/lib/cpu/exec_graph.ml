open Hbbp_isa
open Hbbp_program

type node = {
  addr : int;
  instr : Instruction.t;
  len : int;
  ring : Ring.t;
  issue_cost : int;
  latency : int;
  long_latency : bool;
  mutable fall : node option;
  mutable target : node option;
}

type t = { nodes : (int, node) Hashtbl.t }

(* Retirement charge: one issue slot, plus a flat memory penalty, plus a
   fraction of long latencies that out-of-order execution cannot hide. *)
let issue_cost_of instr =
  let lat = Latency.latency instr.Instruction.mnemonic in
  let mem =
    if Instruction.reads_memory instr || Instruction.writes_memory instr then 2
    else 0
  in
  let stall =
    (* Out-of-order execution hides short latencies entirely; only the
       long tail leaks into retirement. *)
    if lat >= Latency.long_latency_threshold then lat / 4
    else if lat >= 8 then 1
    else 0
  in
  1 + mem + stall

let build (process : Process.t) =
  let nodes = Hashtbl.create 4096 in
  let decode_image (img : Image.t) =
    match Disasm.image img with
    | Error e -> Error e
    | Ok decoded ->
        Array.iter
          (fun (d : Disasm.decoded) ->
            let latency = Latency.latency d.instr.mnemonic in
            Hashtbl.replace nodes d.addr
              {
                addr = d.addr;
                instr = d.instr;
                len = d.len;
                ring = img.ring;
                issue_cost = issue_cost_of d.instr;
                latency;
                long_latency = latency >= Latency.long_latency_threshold;
                fall = None;
                target = None;
              })
          decoded;
        Ok ()
  in
  let rec decode_all = function
    | [] -> Ok ()
    | img :: rest -> (
        match decode_image img with
        | Ok () -> decode_all rest
        | Error _ as e -> e)
  in
  match decode_all (Process.images process) with
  | Error e -> Error e
  | Ok () ->
      Hashtbl.iter
        (fun _ node ->
          node.fall <- Hashtbl.find_opt nodes (node.addr + node.len);
          match Instruction.rel_displacement node.instr with
          | Some disp when Instruction.is_branch node.instr ->
              node.target <- Hashtbl.find_opt nodes (node.addr + node.len + disp)
          | Some _ | None -> ())
        nodes;
      Ok { nodes }

let build_exn process =
  match build process with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "%a" Disasm.pp_error e)

let node_at t addr = Hashtbl.find_opt t.nodes addr
let node_count t = Hashtbl.length t.nodes
