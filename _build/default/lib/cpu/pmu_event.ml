type t =
  | Inst_retired_any
  | Inst_retired_prec_dist
  | Br_inst_retired_near_taken
  | Cpu_clk_unhalted
  | Fp_comp_ops_sse
  | Fp_comp_ops_avx
  | Fp_comp_ops_x87
  | Simd_int_128
  | Arith_divider_cycles

let equal (a : t) b = a = b

let to_string = function
  | Inst_retired_any -> "INST_RETIRED:ANY"
  | Inst_retired_prec_dist -> "INST_RETIRED:PREC_DIST"
  | Br_inst_retired_near_taken -> "BR_INST_RETIRED:NEAR_TAKEN"
  | Cpu_clk_unhalted -> "CPU_CLK_UNHALTED:THREAD"
  | Fp_comp_ops_sse -> "FP_COMP_OPS_EXE:SSE"
  | Fp_comp_ops_avx -> "SIMD_FP_256:PACKED"
  | Fp_comp_ops_x87 -> "FP_COMP_OPS_EXE:X87"
  | Simd_int_128 -> "SIMD_INT_128:ALL"
  | Arith_divider_cycles -> "ARITH:FPU_DIV_ACTIVE"

let all =
  [
    Inst_retired_any;
    Inst_retired_prec_dist;
    Br_inst_retired_near_taken;
    Cpu_clk_unhalted;
    Fp_comp_ops_sse;
    Fp_comp_ops_avx;
    Fp_comp_ops_x87;
    Simd_int_128;
    Arith_divider_cycles;
  ]

let of_string s =
  List.find_opt (fun e -> String.equal (to_string e) s) all

let pp ppf e = Format.pp_print_string ppf (to_string e)

let is_precise = function
  | Inst_retired_prec_dist -> true
  | Inst_retired_any | Br_inst_retired_near_taken | Cpu_clk_unhalted
  | Fp_comp_ops_sse | Fp_comp_ops_avx | Fp_comp_ops_x87 | Simd_int_128
  | Arith_divider_cycles ->
      false
