type t = { mutable state : int64 }

let create ~seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let choose t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if Array.length weights = 0 || total <= 0.0 then
    invalid_arg "Prng.choose: empty or all-zero weights";
  let mark = float t *. total in
  let rec pick k acc =
    if k = Array.length weights - 1 then k
    else
      let acc = acc +. weights.(k) in
      if mark < acc then k else pick (k + 1) acc
  in
  pick 0 0.0

let split t = create ~seed:(next t)
