open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm

type built = { disk : Image.t; live : Image.t }
type external_service = { number : int; name : string; entry_addr : int }

(* Tracepoint site: an 8-byte instruction that is a JMP to the probe in
   the disk image and a same-length multi-byte NOP in the live one.  The
   return label is placed immediately after, for the probe to jump back
   to. *)
let tracepoint ~live id =
  let probe = Printf.sprintf "ktp_probe_%d" id in
  let ret = Printf.sprintf "ktp_ret_%d" id in
  [ i (if live then Mnemonic.NOP else Mnemonic.JMP) [ L probe ]; label ret ]

let probe_func id =
  let ret = Printf.sprintf "ktp_ret_%d" id in
  func
    (Printf.sprintf "ktp_probe_%d" id)
    [
      (* Bump the per-tracepoint hit counter in kernel data. *)
      i Mnemonic.INC [ mem Operand.R14 ~disp:(0x100 + (8 * id)) ];
      i Mnemonic.JMP [ L ret ];
    ]

let dispatch_entry ~live external_services =
  let compare_and_jump number target =
    [ i Mnemonic.CMP [ rax; imm number ]; i Mnemonic.JZ [ L target ] ]
  in
  func Kernel_abi.syscall_entry
    (tracepoint ~live 0
    @ [ i Mnemonic.MOV [ r14; imm Layout.kernel_data_base ] ]
    @ compare_and_jump Kernel_abi.sys_nop "sys_nop"
    @ compare_and_jump Kernel_abi.sys_getpid "sys_getpid"
    @ compare_and_jump Kernel_abi.sys_bufclear "sys_bufclear"
    @ compare_and_jump Kernel_abi.sys_copy "sys_copy"
    @ compare_and_jump Kernel_abi.sys_stat "sys_stat"
    @ List.concat_map
        (fun svc -> compare_and_jump svc.number ("ext_" ^ svc.name))
        external_services
    @ [ i Mnemonic.MOV [ rax; imm (-1) ]; i Mnemonic.SYSRET [] ])

let sys_nop ~live =
  func "sys_nop"
    (tracepoint ~live 1
    @ [ i Mnemonic.XOR [ rax; rax ]; i Mnemonic.SYSRET [] ])

let sys_getpid ~live =
  func "sys_getpid"
    (tracepoint ~live 2
    @ [ i Mnemonic.MOV [ rax; imm 4242 ]; i Mnemonic.SYSRET [] ])

(* "calloc-like" page clear: the heap-pressure pattern of section VIII.E. *)
let sys_bufclear ~live =
  func "sys_bufclear"
    (tracepoint ~live 3
    @ [
        i Mnemonic.MOV [ rcx; imm 512 ];
        i Mnemonic.XOR [ rdx; rdx ];
        label "kbufclear_loop";
        i Mnemonic.MOV
          [ mem Operand.R14 ~index:Operand.RCX ~scale:8 ~disp:0x200; rdx ];
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "kbufclear_loop" ];
        i Mnemonic.XOR [ rax; rax ];
        i Mnemonic.SYSRET [];
      ])

let sys_copy ~live =
  func "sys_copy"
    (tracepoint ~live 4
    @ [
        i Mnemonic.MOV [ rcx; imm 256 ];
        label "kcopy_loop";
        i Mnemonic.MOV
          [ rdx; mem Operand.R14 ~index:Operand.RCX ~scale:8 ~disp:0x200 ];
        i Mnemonic.MOV
          [ mem Operand.R14 ~index:Operand.RCX ~scale:8 ~disp:0x1200; rdx ];
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "kcopy_loop" ];
        i Mnemonic.XOR [ rax; rax ];
        i Mnemonic.SYSRET [];
      ])

(* A service with a long-latency divide — kernel-side shadowing. *)
let sys_stat ~live =
  func "sys_stat"
    (tracepoint ~live 5
    @ [
        i Mnemonic.MOV [ rax; imm 987654321 ];
        i Mnemonic.MOV [ r11; imm 1000003 ];
        i Mnemonic.DIV [ r11 ];
        i Mnemonic.ADD [ rax; rdx ];
        i Mnemonic.SYSRET [];
      ])

let external_stub svc =
  func ("ext_" ^ svc.name)
    [
      i Mnemonic.MOV [ r11; imm svc.entry_addr ];
      i Mnemonic.CALL_NEAR [ r11 ];
      i Mnemonic.SYSRET [];
    ]

let tracepoint_ids = [ 0; 1; 2; 3; 4; 5 ]

let build ?(external_services = []) () =
  List.iter
    (fun svc ->
      if svc.number < Kernel_abi.first_module_syscall then
        invalid_arg "Kernel.build: external service number reserved")
    external_services;
  let make ~live =
    let funcs =
      dispatch_entry ~live external_services
      :: sys_nop ~live :: sys_getpid ~live :: sys_bufclear ~live
      :: sys_copy ~live :: sys_stat ~live
      :: List.map external_stub external_services
      @ List.map probe_func tracepoint_ids
    in
    Asm.assemble ~name:"vmlinux" ~base:Layout.kernel_code_base
      ~ring:Ring.Kernel funcs
  in
  { disk = make ~live:false; live = make ~live:true }
