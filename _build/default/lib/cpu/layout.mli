(** Standard address-space layout used by all workloads. *)

val user_code_base : int
val kernel_code_base : int
val module_code_base : int
val user_data_base : int
val user_data_size : int
val user_stack_base : int
val user_stack_size : int
val kernel_data_base : int
val kernel_data_size : int

(** Initial stack pointer (top of the user stack, 16-byte aligned). *)
val initial_rsp : int

(** Data regions handed to {!Memory.create}. *)
val memory_regions : (int * int) list
