(** Tunable parameters of the PMU inaccuracy model.

    These constants encode the microarchitectural artefacts the paper
    identifies as the reason neither EBS nor LBR alone suffices
    (sections III.A and III.C):

    - {b skid}: the IP reported by a PMI belongs to an instruction a few
      retirement slots after the one that caused the overflow; precise
      (PEBS-like) event variants shrink but do not eliminate it;
    - {b shadowing}: PMIs cannot be delivered while a long-latency
      instruction is still executing, so samples pile up on the first
      instruction after it;
    - {b LBR entry[0] anomaly}: for certain branches (a hardware quirk —
      the paper's footnote 1 notes the vendor fixed it in later designs),
      the snapshot shows the triggering branch in the oldest LBR slot,
      corrupting the first stream.

    The values shipped as {!default} are calibrated (see the calibration
    test) so that the EBS-vs-LBR accuracy crossover in training data falls
    near a block length of 18, the cutoff the paper's tree learns. *)

(** A small discrete distribution of skid distances. *)
type skid = {
  distances : int array;
  weights : float array;  (** Same length as [distances], non-negative. *)
}

type t = {
  lbr_depth : int;  (** 16 on the paper's hardware. *)
  precise_skid : skid;  (** For [INST_RETIRED:PREC_DIST], in retirements. *)
  imprecise_skid : skid;  (** For plain [INST_RETIRED:ANY]. *)
  branch_skid : skid;  (** For the branch event, in taken branches. *)
  shadow_enabled : bool;
  shadow_slide_probability : float;
      (** Chance that a PMI landing inside a shadow window actually slides
          to the end of the window (shadowing is statistical on real
          hardware; 1.0 would pile every affected sample on the same
          instruction). *)
  quirk_hash_mod : int;
      (** A branch whose source address hashes to [0 mod quirk_hash_mod]
          is anomaly-prone. *)
  quirk_probability : float;
      (** Chance an anomaly-prone triggering branch corrupts entry[0]. *)
  quirk_drop_probability : float;
      (** Chance that, after an anomaly-prone branch is recorded, the
          {e next} taken branch fails to be recorded — merging two streams
          and mis-counting the blocks around the quirky branch. *)
  global_anomaly_probability : float;
      (** Low-rate corruption applying to every snapshot. *)
  global_drop_probability : float;
      (** Low-rate loss of LBR records after {e any} branch: the flat
          systematic error floor that makes EBS competitive on long
          blocks. *)
  pmi_cost_cycles : int;
      (** Cost of taking one PMI, for the overhead model. *)
  seed : int64;  (** Seed of the PMU's private PRNG stream. *)
}

val default : t

(** [is_quirk_branch t src] — deterministic per branch source address. *)
val is_quirk_branch : t -> int -> bool

(** [draw_skid prng skid] — one skid distance. *)
val draw_skid : Prng.t -> skid -> int
