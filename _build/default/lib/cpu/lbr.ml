type entry = { src : int; tgt : int }

type t = {
  entries : entry array;
  mutable head : int;  (* slot receiving the next push *)
  mutable filled : int;
}

let none = { src = 0; tgt = 0 }
let create ~depth = { entries = Array.make depth none; head = 0; filled = 0 }
let depth t = Array.length t.entries

let push t ~src ~tgt =
  t.entries.(t.head) <- { src; tgt };
  t.head <- (t.head + 1) mod Array.length t.entries;
  if t.filled < Array.length t.entries then t.filled <- t.filled + 1

let snapshot t =
  let d = Array.length t.entries in
  let oldest = if t.filled < d then 0 else t.head in
  Array.init t.filled (fun k -> t.entries.((oldest + k) mod d))

let overwrite_oldest t e =
  if t.filled > 0 then begin
    let d = Array.length t.entries in
    let oldest = if t.filled < d then 0 else t.head in
    t.entries.(oldest) <- e
  end

let clear t =
  t.head <- 0;
  t.filled <- 0

let fill_level t = t.filled
