let user_code_base = 0x400000
let kernel_code_base = 0x8000000
let module_code_base = 0x9000000
let user_data_base = 0x1000000
let user_data_size = 8 * 1024 * 1024
let user_stack_base = 0x2800000
let user_stack_size = 1024 * 1024
let kernel_data_base = 0xA000000
let kernel_data_size = 1024 * 1024
let initial_rsp = user_stack_base + user_stack_size - 16

let memory_regions =
  [
    (user_data_base, user_data_size);
    (user_stack_base, user_stack_size);
    (kernel_data_base, kernel_data_size);
  ]
