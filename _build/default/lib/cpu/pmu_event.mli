(** Hardware performance events.

    [Inst_retired_prec_dist] and [Br_inst_retired_near_taken] are the two
    events HBBP's collector programs (paper section V.A).  The
    instruction-specific computational events exist to reproduce Table 2
    and to cross-check instrumentation results against PMU counts
    (section VII.B). *)

type t =
  | Inst_retired_any
  | Inst_retired_prec_dist  (** Precise variant: reduced (not zero) skid. *)
  | Br_inst_retired_near_taken
  | Cpu_clk_unhalted  (** Core cycles. *)
  | Fp_comp_ops_sse  (** Computational SSE FP instructions retired. *)
  | Fp_comp_ops_avx  (** Computational AVX FP instructions retired. *)
  | Fp_comp_ops_x87  (** Computational x87 instructions retired. *)
  | Simd_int_128  (** Integer SIMD instructions retired. *)
  | Arith_divider_cycles  (** Cycles the divider is busy. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** The libpfm4-style user-friendly event string,
    e.g. ["INST_RETIRED:PREC_DIST"]. *)
val to_string : t -> string

val of_string : string -> t option

(** [is_precise e] — can the event be requested in a precise (PEBS-like)
    variant?  On x86 precise events can only run on one counter at a
    time; the collector relies on this restriction being modelled. *)
val is_precise : t -> bool

val all : t list
