lib/cpu/pmu_model.mli: Prng
