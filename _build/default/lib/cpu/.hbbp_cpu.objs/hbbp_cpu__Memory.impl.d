lib/cpu/memory.ml: Array Bytes Int32 Int64 List
