lib/cpu/machine.mli: Exec_graph Hbbp_program Process State
