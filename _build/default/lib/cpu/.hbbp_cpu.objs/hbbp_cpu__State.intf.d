lib/cpu/state.mli: Hbbp_isa Hbbp_program Memory Mnemonic Operand Prng Ring
