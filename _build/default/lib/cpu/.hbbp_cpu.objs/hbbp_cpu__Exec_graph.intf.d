lib/cpu/exec_graph.mli: Disasm Hbbp_isa Hbbp_program Instruction Process Ring
