lib/cpu/kernel_abi.mli:
