lib/cpu/pmu_event.mli: Format
