lib/cpu/pmu_model.ml: Array Int64 Prng
