lib/cpu/machine.ml: Array Exec Exec_graph Format Hbbp_isa Hbbp_program Image Int64 Kernel_abi Layout List Memory Operand Option Process Ring State Symbol
