lib/cpu/pmu_event.ml: Format List String
