lib/cpu/lbr.ml: Array
