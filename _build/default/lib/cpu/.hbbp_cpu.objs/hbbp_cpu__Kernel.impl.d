lib/cpu/kernel.ml: Asm Hbbp_isa Hbbp_program Image Kernel_abi Layout List Mnemonic Operand Printf Ring
