lib/cpu/layout.mli:
