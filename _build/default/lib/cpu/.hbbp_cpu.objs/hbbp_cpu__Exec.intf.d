lib/cpu/exec.mli: Exec_graph State
