lib/cpu/kernel.mli: Hbbp_program Image
