lib/cpu/pmu.ml: Array Exec_graph Hbbp_isa Hbbp_program Instruction Int64 Latency Lbr List Machine Mnemonic Pmu_event Pmu_model Prng Ring
