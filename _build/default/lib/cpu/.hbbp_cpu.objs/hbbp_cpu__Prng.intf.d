lib/cpu/prng.mli:
