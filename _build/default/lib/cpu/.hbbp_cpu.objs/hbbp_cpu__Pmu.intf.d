lib/cpu/pmu.mli: Hbbp_program Lbr Machine Pmu_event Pmu_model Ring
