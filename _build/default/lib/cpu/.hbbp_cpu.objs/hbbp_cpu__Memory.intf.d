lib/cpu/memory.mli:
