lib/cpu/lbr.mli:
