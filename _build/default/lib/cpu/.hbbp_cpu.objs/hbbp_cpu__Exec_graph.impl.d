lib/cpu/exec_graph.ml: Array Disasm Format Hashtbl Hbbp_isa Hbbp_program Image Instruction Latency Process Ring
