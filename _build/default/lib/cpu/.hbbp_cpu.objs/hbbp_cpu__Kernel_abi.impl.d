lib/cpu/kernel_abi.ml:
