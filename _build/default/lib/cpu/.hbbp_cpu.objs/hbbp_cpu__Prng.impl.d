lib/cpu/prng.ml: Array Int64
