lib/cpu/state.ml: Array Hbbp_isa Hbbp_program Int64 Layout Memory Mnemonic Operand Prng Ring
