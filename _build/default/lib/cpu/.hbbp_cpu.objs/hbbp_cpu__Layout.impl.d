lib/cpu/layout.ml:
