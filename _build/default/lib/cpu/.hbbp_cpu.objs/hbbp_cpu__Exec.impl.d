lib/cpu/exec.ml: Array Exec_graph Float Format Hbbp_isa Instruction Int32 Int64 Memory Mnemonic Operand Prng State
