(** Deterministic splitmix64 PRNG.

    Every stochastic element of the simulation (skid draws, LBR anomaly
    draws, workload data) flows through seeded instances of this generator,
    so runs are reproducible bit-for-bit. *)

type t

val create : seed:int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] — uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** [float t] — uniform in [0, 1). *)
val float : t -> float

(** [bool t p] — true with probability [p]. *)
val bool : t -> float -> bool

(** [choose t weights] — index drawn from the (unnormalised, non-negative)
    weight vector.  Raises [Invalid_argument] on an empty or all-zero
    vector. *)
val choose : t -> float array -> int

(** [split t] — an independent generator derived from [t]'s stream. *)
val split : t -> t
