open Hbbp_program

type result = Blocks of int list | Inconsistent | Bad

let max_walk = 512

let walk static ~target ~src =
  if src < target then Bad
  else
    match Static.find_starting static target with
    | None -> Bad
    | Some start_gid ->
        let rec go gid acc steps =
          if steps > max_walk then Bad
          else
            let _, _, block = Static.block static gid in
            if Basic_block.contains block src then Blocks (List.rev (gid :: acc))
            else
              (* The stream claims execution fell through this block. *)
              match block.term with
              | Basic_block.Term_cond _ | Basic_block.Term_fallthrough -> (
                  match Static.next_in_layout static gid with
                  | Some next -> go next (gid :: acc) (steps + 1)
                  | None -> Bad)
              | Basic_block.Term_jump _ | Basic_block.Term_indirect_jump
              | Basic_block.Term_call _ | Basic_block.Term_ret
              | Basic_block.Term_syscall | Basic_block.Term_sysret
              | Basic_block.Term_halt ->
                  Inconsistent
        in
        go start_gid [] 0
