open Hbbp_program
open Hbbp_cpu
module Record = Hbbp_collector.Record

type ebs_sample = { ip : int; ring : Ring.t }
type lbr_sample = { entries : Lbr.entry array; ring : Ring.t }

type t = {
  ebs : ebs_sample array;
  lbr : lbr_sample array;
  lost : int;
  other : int;
}

let of_records records =
  let ebs = ref [] and lbr = ref [] and lost = ref 0 and other = ref 0 in
  List.iter
    (fun (r : Record.t) ->
      match r with
      | Record.Sample s -> (
          match s.event with
          | Pmu_event.Inst_retired_prec_dist ->
              ebs := { ip = s.ip; ring = s.ring } :: !ebs
          | Pmu_event.Br_inst_retired_near_taken ->
              lbr := { entries = s.lbr; ring = s.ring } :: !lbr
          | _ -> incr other)
      | Record.Lost n -> lost := !lost + n
      | Record.Comm _ | Record.Mmap _ | Record.Fork _ -> ())
    records;
  {
    ebs = Array.of_list (List.rev !ebs);
    lbr = Array.of_list (List.rev !lbr);
    lost = !lost;
    other = !other;
  }
