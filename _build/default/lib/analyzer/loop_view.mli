(** Loop composition and trip-count estimates.

    The paper's motivation section calls this use out directly:
    "instruction mixes can reveal not only estimated trip counts but also
    loop composition and architectural efficiency".  This view joins the
    static natural-loop structure (CFG dominators) with dynamic BBECs. *)

type loop_stat = {
  image : string;
  symbol : string;  (** Function containing the loop header. *)
  header_addr : int;
  blocks : int;  (** Static blocks in the loop body. *)
  static_instructions : int;
  dynamic_instructions : float;  (** Executed inside the body. *)
  header_count : float;  (** Executions of the header block. *)
  trips_per_entry : float;
      (** Estimated iterations per loop entry (header count over
          preheader count; 0 when unknown). *)
}

(** [report static bbec] — all natural loops, sorted by dynamic
    instructions, descending. *)
val report : Static.t -> Bbec.t -> loop_stat list

val render : Format.formatter -> ?top:int -> loop_stat list -> unit
