open Hbbp_program

type loop_stat = {
  image : string;
  symbol : string;
  header_addr : int;
  blocks : int;
  static_instructions : int;
  dynamic_instructions : float;
  header_count : float;
  trips_per_entry : float;
}

let report static bbec =
  let stats = ref [] in
  List.iter
    (fun (img : Image.t) ->
      match Static.map_of_image static img.name with
      | None -> ()
      | Some map ->
          let cfg = Cfg.of_bb_map map in
          let idom = Cfg.immediate_dominators cfg ~entry:0 in
          List.iter
            (fun (l : Cfg.loop) ->
              let block id = Bb_map.block map id in
              let gid id =
                Option.get (Static.global_id static map (block id))
              in
              let header_block = block l.header in
              let header_count = Bbec.count bbec (gid l.header) in
              let static_instructions =
                List.fold_left
                  (fun acc id -> acc + Basic_block.length (block id))
                  0 l.body
              in
              let dynamic_instructions =
                List.fold_left
                  (fun acc id ->
                    acc
                    +. (Bbec.count bbec (gid id)
                       *. float_of_int (Basic_block.length (block id))))
                  0.0 l.body
              in
              let trips_per_entry =
                (* Preheader = the header's immediate dominator, provided
                   it sits outside the loop. *)
                let pre = idom.(l.header) in
                if pre >= 0 && pre <> l.header && not (List.mem pre l.body)
                then
                  let pre_count = Bbec.count bbec (gid pre) in
                  if pre_count > 0.0 then header_count /. pre_count else 0.0
                else 0.0
              in
              let symbol =
                match Image.symbol_at img header_block.Basic_block.addr with
                | Some s -> s.Symbol.name
                | None -> "<unknown>"
              in
              stats :=
                {
                  image = img.name;
                  symbol;
                  header_addr = header_block.Basic_block.addr;
                  blocks = List.length l.body;
                  static_instructions;
                  dynamic_instructions;
                  header_count;
                  trips_per_entry;
                }
                :: !stats)
            (Cfg.natural_loops cfg ~entry:0))
    (Process.images (Static.process static));
  List.sort
    (fun a b -> compare b.dynamic_instructions a.dynamic_instructions)
    !stats

let render ppf ?(top = 15) stats =
  Format.fprintf ppf "%-12s %-22s %10s %6s %8s %12s %10s@." "module" "function"
    "header" "blocks" "instrs" "dyn instrs" "trips";
  List.iteri
    (fun k s ->
      if k < top then
        Format.fprintf ppf "%-12s %-22s %#10x %6d %8d %12.0f %10.1f@." s.image
          s.symbol s.header_addr s.blocks s.static_instructions
          s.dynamic_instructions s.trips_per_entry)
    stats
