open Hbbp_isa
open Hbbp_program [@@warning "-33"]

let top_mnemonics n mix = Pivot.top n (Pivot.pivot ~dims:[ Pivot.Mnem ] mix)
let top_functions n mix =
  Pivot.top n (Pivot.pivot ~dims:[ Pivot.Image; Pivot.Symbol ] mix)

let isa_breakdown mix = Pivot.pivot ~dims:[ Pivot.Isa_set ] mix
let packing_breakdown mix =
  Pivot.pivot ~dims:[ Pivot.Isa_set; Pivot.Packing ] mix

let group_totals groups static bbec =
  let totals = Array.make (List.length groups) 0.0 in
  Static.iter
    (fun gid _ block ->
      let count = Bbec.count bbec gid in
      if count > 0.0 then
        Array.iter
          (fun instr ->
            List.iteri
              (fun k (g : Taxonomy.group) ->
                if g.Taxonomy.matches instr then
                  totals.(k) <- totals.(k) +. count)
              groups)
          block.Hbbp_program.Basic_block.instrs)
    static;
  List.mapi (fun k (g : Taxonomy.group) -> (g.Taxonomy.name, totals.(k))) groups

let group_total group static bbec =
  match group_totals [ group ] static bbec with
  | [ (_, v) ] -> v
  | _ -> assert false
