lib/analyzer/stream_walk.mli: Static
