lib/analyzer/ebs_estimator.mli: Bbec Sample_db Static
