lib/analyzer/mix.mli: Bbec Hbbp_isa Hbbp_program Mnemonic Ring Static
