lib/analyzer/static.ml: Array Basic_block Bb_map Disasm Format Hbbp_program Image List Option Process String
