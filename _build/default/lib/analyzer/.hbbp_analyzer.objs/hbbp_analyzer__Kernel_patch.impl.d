lib/analyzer/kernel_patch.ml: Hbbp_program Image List Process Ring Static
