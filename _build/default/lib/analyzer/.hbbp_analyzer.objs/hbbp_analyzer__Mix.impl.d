lib/analyzer/mix.ml: Array Basic_block Bbec Hashtbl Hbbp_isa Hbbp_program Image Instruction Int64 List Mnemonic Option Ring Static Symbol
