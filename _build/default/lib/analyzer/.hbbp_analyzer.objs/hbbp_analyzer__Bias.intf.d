lib/analyzer/bias.mli: Sample_db Static
