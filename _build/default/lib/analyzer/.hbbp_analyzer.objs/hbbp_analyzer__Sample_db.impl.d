lib/analyzer/sample_db.ml: Array Hbbp_collector Hbbp_cpu Hbbp_program Lbr List Pmu_event Ring
