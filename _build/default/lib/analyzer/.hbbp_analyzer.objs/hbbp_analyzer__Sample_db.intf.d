lib/analyzer/sample_db.mli: Hbbp_collector Hbbp_cpu Hbbp_program Lbr Ring
