lib/analyzer/stream_walk.ml: Basic_block Hbbp_program List Static
