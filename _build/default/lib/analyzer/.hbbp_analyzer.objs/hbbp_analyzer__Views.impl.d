lib/analyzer/views.ml: Array Bbec Hbbp_isa Hbbp_program List Pivot Static Taxonomy
