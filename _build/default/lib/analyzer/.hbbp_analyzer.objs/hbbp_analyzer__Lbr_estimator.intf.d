lib/analyzer/lbr_estimator.mli: Bbec Sample_db Static
