lib/analyzer/lbr_estimator.ml: Array Bbec Hbbp_cpu List Sample_db Static Stream_walk
