lib/analyzer/ebs_estimator.ml: Array Bbec Hbbp_program Sample_db Static
