lib/analyzer/bbec.ml: Array Hbbp_program List Static
