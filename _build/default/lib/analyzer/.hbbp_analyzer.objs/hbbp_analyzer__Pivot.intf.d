lib/analyzer/pivot.mli: Format Mix
