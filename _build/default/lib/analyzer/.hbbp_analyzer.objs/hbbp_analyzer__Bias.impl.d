lib/analyzer/bias.ml: Array Hashtbl Hbbp_cpu Hbbp_program List Option Sample_db Static Stream_walk
