lib/analyzer/loop_view.ml: Array Basic_block Bb_map Bbec Cfg Format Hbbp_program Image List Option Process Static Symbol
