lib/analyzer/loop_view.mli: Bbec Format Static
