lib/analyzer/kernel_patch.mli: Hbbp_program Process Static
