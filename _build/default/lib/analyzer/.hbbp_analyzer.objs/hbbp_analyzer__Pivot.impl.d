lib/analyzer/pivot.ml: Buffer Format Hashtbl Hbbp_isa Hbbp_program List Mix Mnemonic Option Printf String
