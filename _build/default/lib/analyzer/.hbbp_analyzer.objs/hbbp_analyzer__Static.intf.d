lib/analyzer/static.mli: Basic_block Bb_map Disasm Hbbp_program Image Process
