lib/analyzer/views.mli: Bbec Hbbp_isa Mix Pivot Static
