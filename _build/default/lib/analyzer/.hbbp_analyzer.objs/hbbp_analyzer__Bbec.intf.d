lib/analyzer/bbec.mli: Hbbp_program Static
