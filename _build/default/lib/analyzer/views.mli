(** Canned analysis views ("custom or traditional views such as top
    functions, top mnemonics, or instruction family breakdowns, produced
    in a few clicks" — paper section V.B). *)

val top_mnemonics : int -> Mix.t -> Pivot.table
val top_functions : int -> Mix.t -> Pivot.table
val isa_breakdown : Mix.t -> Pivot.table

(** ISA set × packing — the Table 8 view. *)
val packing_breakdown : Mix.t -> Pivot.table

(** Totals for custom taxonomy groups, computed over the real static
    instructions (operand-level predicates like memory read/write need
    the full instruction, which mix rows no longer carry). *)
val group_totals :
  Hbbp_isa.Taxonomy.group list -> Static.t -> Bbec.t ->
  (string * float) list

(** [group_total g static bbec] — single-group convenience. *)
val group_total : Hbbp_isa.Taxonomy.group -> Static.t -> Bbec.t -> float
